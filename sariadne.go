// Package sariadne is a from-scratch reproduction of "Efficient Semantic
// Service Discovery in Pervasive Computing Environments" (Ben Mokhtar,
// Kaul, Georgantas, Issarny — Middleware 2006): the S-Ariadne semantic
// service discovery protocol together with every substrate it builds on.
//
// The package is a facade over the internal subsystems:
//
//   - ontologies: an OWL-subset model with XML serialization,
//     classification (subsumption reasoning) and the Constantinescu–
//     Faltings interval encoding that reduces runtime reasoning to
//     numeric comparisons (paper Section 3.2);
//   - Amigo-S service profiles: multi-capability semantic service
//     descriptions (Section 2.2);
//   - the Match relation and SemanticDistance scoring (Section 2.3);
//   - semantic directories that classify capability advertisements into
//     DAGs indexed by ontology sets (Section 3.3);
//   - the S-Ariadne protocol: elected directories over a (simulated)
//     MANET, Bloom-filter content summaries and selective query
//     forwarding (Section 4).
//
// # Quick start
//
//	sys := sariadne.NewSystem()
//	_ = sys.AddOntologyXML(mediaOntologyXML)
//	dir := sys.NewDirectory()
//	_ = dir.Register(myService)
//	results := dir.Query(myRequest)
//
// See examples/ for full runnable programs, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for the reproduction of the paper's
// measurements.
package sariadne

import (
	"io"

	"sariadne/internal/codes"
	"sariadne/internal/discovery"
	"sariadne/internal/election"
	"sariadne/internal/match"
	"sariadne/internal/ontology"
	"sariadne/internal/profile"
	"sariadne/internal/registry"
	"sariadne/internal/simnet"
)

// Re-exported core types. The aliases make the public API self-contained:
// downstream code imports only this package.
type (
	// Ref is a fully qualified concept reference (ontology URI + name).
	Ref = ontology.Ref
	// Ontology is a parsed OWL-subset ontology.
	Ontology = ontology.Ontology
	// Class declares a named concept inside an ontology.
	Class = ontology.Class
	// Property declares a named relationship inside an ontology.
	Property = ontology.Property
	// Service is an Amigo-S service description.
	Service = profile.Service
	// Capability is a named semantic functionality of a service.
	Capability = profile.Capability
	// Result is a directory query answer.
	Result = registry.Result
	// Hit is a protocol-level discovery answer.
	Hit = discovery.Hit
	// NodeID identifies a node in a network.
	NodeID = simnet.NodeID
	// EncodingParams are the interval-subdivision constants (p, k).
	EncodingParams = codes.Params
	// ElectionConfig tunes directory self-deployment.
	ElectionConfig = election.Config
	// QoSValue is a provided non-functional guarantee of a capability.
	QoSValue = profile.QoSValue
	// QoSConstraint is a required acceptable range for a QoS dimension.
	QoSConstraint = profile.QoSConstraint
)

// UnboundedQoS is the sentinel for one-sided QoS constraints.
func UnboundedQoS() float64 { return profile.Unbounded() }

// DefaultEncodingParams are the constants the paper evaluates (p=2, k=5).
var DefaultEncodingParams = codes.DefaultParams

// NewOntology starts an empty ontology with the given URI and version.
func NewOntology(uri, version string) *Ontology { return ontology.New(uri, version) }

// ParseOntology reads an ontology XML document.
func ParseOntology(r io.Reader) (*Ontology, error) { return ontology.Decode(r) }

// MarshalOntology renders an ontology as XML.
func MarshalOntology(o *Ontology) ([]byte, error) { return ontology.Marshal(o) }

// ParseService reads an Amigo-S service XML document.
func ParseService(r io.Reader) (*Service, error) { return profile.Decode(r) }

// MarshalService renders a service description as XML.
func MarshalService(s *Service) ([]byte, error) { return profile.Marshal(s) }

// System holds the ontology knowledge of a deployment: classified,
// interval-encoded ontologies shared by matchers, directories and
// protocol nodes. Populate it during bootstrap (AddOntology*) before
// creating directories; the paper performs all encoding offline.
type System struct {
	params codes.Params
	reg    *codes.Registry
}

// NewSystem returns a System with the paper's default encoding parameters.
func NewSystem() *System { return NewSystemWithParams(DefaultEncodingParams) }

// NewSystemWithParams returns a System with custom interval-subdivision
// constants.
func NewSystemWithParams(params codes.Params) *System {
	return &System{params: params, reg: codes.NewRegistry()}
}

// AddOntology classifies and encodes an ontology into the system.
func (s *System) AddOntology(o *Ontology) error {
	cl, err := ontology.Classify(o)
	if err != nil {
		return err
	}
	table, err := codes.Encode(cl, s.params)
	if err != nil {
		return err
	}
	s.reg.Register(table)
	return nil
}

// AddOntologyXML parses, classifies and encodes an ontology document.
func (s *System) AddOntologyXML(r io.Reader) error {
	o, err := ontology.Decode(r)
	if err != nil {
		return err
	}
	return s.AddOntology(o)
}

// Ontologies lists the URIs of encoded ontologies.
func (s *System) Ontologies() []string { return s.reg.URIs() }

// Match reports whether the provided capability can substitute for the
// requested one, and at which semantic distance, using encoded matching.
func (s *System) Match(provided, requested *Capability) (distance int, ok bool) {
	return match.SemanticDistance(match.NewCodeMatcher(s.reg), provided, requested)
}

// Subsumes reports whether concept a subsumes concept b by numeric code
// comparison. Unknown concepts never subsume.
func (s *System) Subsumes(a, b Ref) bool {
	if a.Ontology != b.Ontology {
		return false
	}
	t, ok := s.reg.Resolve(a.Ontology)
	if !ok {
		return false
	}
	return t.Subsumes(a.Name, b.Name)
}

// ConceptDistance returns the paper's d(a, b): hierarchy levels from a
// down to b when a subsumes b, ok=false otherwise.
func (s *System) ConceptDistance(a, b Ref) (int, bool) {
	if a.Ontology != b.Ontology {
		return 0, false
	}
	t, ok := s.reg.Resolve(a.Ontology)
	if !ok {
		return 0, false
	}
	return t.Distance(a.Name, b.Name)
}

// Directory is a local semantic service directory: advertisements are
// classified into capability DAGs and queries resolved by root probing,
// exactly as an S-Ariadne directory node does for its vicinity.
type Directory struct {
	dir *registry.Directory
}

// NewDirectory creates an empty directory bound to the system's encoded
// ontologies.
func (s *System) NewDirectory() *Directory {
	return &Directory{dir: registry.NewDirectory(match.NewCodeMatcher(s.reg))}
}

// Register classifies a service's provided capabilities into the
// directory. Re-registering a service name replaces its advertisement.
func (d *Directory) Register(svc *Service) error { return d.dir.Register(svc) }

// Deregister removes a service's advertisements.
func (d *Directory) Deregister(service string) bool { return d.dir.Deregister(service) }

// Query returns the advertisements matching the required capability,
// best (smallest semantic distance) first.
func (d *Directory) Query(req *Capability) []Result { return d.dir.Query(req) }

// Best returns the single best match, if any.
func (d *Directory) Best(req *Capability) (Result, bool) { return d.dir.Best(req) }

// NumCapabilities returns the number of stored advertisements.
func (d *Directory) NumCapabilities() int { return d.dir.NumCapabilities() }

// NumGraphs returns the number of capability DAGs (diagnostics).
func (d *Directory) NumGraphs() int { return d.dir.NumGraphs() }

// Snapshot renders the graph structure for inspection.
func (d *Directory) Snapshot() string { return d.dir.Snapshot() }

// Explain reports the detailed pairing behind Match(provided, requested).
func (s *System) Explain(provided, requested *Capability) match.Report {
	return match.Explain(match.NewCodeMatcher(s.reg), provided, requested)
}

// MatchReport re-exports the detailed match explanation type.
type MatchReport = match.Report
