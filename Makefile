GO ?= go

.PHONY: build test race bench lint check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# lint runs go vet plus the project analyzers (lockcheck, goroutinecheck,
# detrand, sleeptest). Exit status 1 means findings.
lint:
	$(GO) run ./cmd/sdplint ./...

# check is the full CI gate.
check: build lint test race

clean:
	$(GO) clean ./...
