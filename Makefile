GO ?= go

.PHONY: build test race bench lint metrics-smoke check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# lint runs go vet plus the project analyzers (lockcheck, goroutinecheck,
# detrand, sleeptest, metricnames). Exit status 1 means findings.
lint:
	$(GO) run ./cmd/sdplint ./...

# metrics-smoke boots a real sdpd, scrapes GET /metrics, and fails on
# malformed Prometheus exposition or missing acceptance metrics.
metrics-smoke:
	$(GO) run ./cmd/metricsmoke

# check is the full CI gate.
check: build lint test race metrics-smoke

clean:
	$(GO) clean ./...
