GO ?= go

.PHONY: build test race bench bench-smoke chaos lint lint-json metrics-smoke federation-smoke check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# chaos replays the deterministic fault-injection suite (seeded
# partitions, burst loss, directory crashes, hedged forwarding) under the
# race detector. The seed matrix lives in the tests themselves.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Hedge|Evicted|Fault|Churn|Partition' \
		./internal/discovery/ ./internal/simnet/ -v

# lint runs go vet plus the ten project analyzers (lockcheck,
# goroutinecheck, detrand, sleeptest, metricnames, simnetimport,
# atomicmix, immutcheck, hotalloc, errdrop). Exit status 1 means
# findings; `make lint-json` emits them machine-readable.
lint:
	$(GO) run ./cmd/sdplint ./...

lint-json:
	$(GO) run ./cmd/sdplint -json ./...

# bench-smoke runs the parallel discovery benchmark once under the race
# detector: a cheap CI gate that the lock-free snapshot read path stays
# publication-safe under concurrent register/query load.
bench-smoke:
	$(GO) test -race -run '^$$' -bench BenchmarkParallelDiscovery -benchtime=1x ./internal/registry/

# metrics-smoke boots a real sdpd, scrapes GET /metrics, and fails on
# malformed Prometheus exposition or missing acceptance metrics.
metrics-smoke:
	$(GO) run ./cmd/metricsmoke

# federation-smoke boots three sdpd processes federated over loopback
# UDP, registers a service on one daemon, resolves it from another, and
# checks /metrics shows real backbone traffic.
federation-smoke:
	$(GO) run ./cmd/fedsmoke

# check is the full CI gate.
check: build lint test race metrics-smoke federation-smoke

clean:
	$(GO) clean ./...
