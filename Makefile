GO ?= go

.PHONY: build test race bench chaos lint metrics-smoke federation-smoke check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# chaos replays the deterministic fault-injection suite (seeded
# partitions, burst loss, directory crashes, hedged forwarding) under the
# race detector. The seed matrix lives in the tests themselves.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Hedge|Evicted|Fault|Churn|Partition' \
		./internal/discovery/ ./internal/simnet/ -v

# lint runs go vet plus the project analyzers (lockcheck, goroutinecheck,
# detrand, sleeptest, metricnames, simnetimport). Exit status 1 means
# findings.
lint:
	$(GO) run ./cmd/sdplint ./...

# metrics-smoke boots a real sdpd, scrapes GET /metrics, and fails on
# malformed Prometheus exposition or missing acceptance metrics.
metrics-smoke:
	$(GO) run ./cmd/metricsmoke

# federation-smoke boots three sdpd processes federated over loopback
# UDP, registers a service on one daemon, resolves it from another, and
# checks /metrics shows real backbone traffic.
federation-smoke:
	$(GO) run ./cmd/fedsmoke

# check is the full CI gate.
check: build lint test race metrics-smoke federation-smoke

clean:
	$(GO) clean ./...
