GO ?= go

.PHONY: build test race bench bench-smoke chaos lint lint-json metrics-smoke federation-smoke soak-smoke slo-check store-conformance check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# chaos replays the deterministic fault-injection suite (seeded
# partitions, burst loss, directory crashes, hedged forwarding) under the
# race detector. The seed matrix lives in the tests themselves.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Hedge|Evicted|Fault|Churn|Partition' \
		./internal/discovery/ ./internal/simnet/ -v

# lint runs go vet plus the ten project analyzers (lockcheck,
# goroutinecheck, detrand, sleeptest, metricnames, simnetimport,
# atomicmix, immutcheck, hotalloc, errdrop). Exit status 1 means
# findings; `make lint-json` emits them machine-readable.
lint:
	$(GO) run ./cmd/sdplint ./...

lint-json:
	$(GO) run ./cmd/sdplint -json ./...

# bench-smoke runs the parallel discovery benchmark once under the race
# detector (a cheap gate that the lock-free snapshot read path stays
# publication-safe), then regenerates the Fig. 9/10 latency series as
# BENCH_fig9.json / BENCH_fig10.json — CI uploads both as artifacts so
# every run leaves a comparable trace.
bench-smoke:
	$(GO) test -race -run '^$$' -bench BenchmarkParallelDiscovery -benchtime=1x ./internal/registry/
	$(GO) run ./cmd/benchfig -fig 9 -max 60 -step 30 -reps 25 -benchjson
	$(GO) run ./cmd/benchfig -fig 10 -max 60 -step 30 -reps 25 -benchjson

# slo-check replays each load scenario with exactly the flags that
# produced its checked-in baseline (bench/baselines/) and diffs the fresh
# report against it under the tolerance bands documented there. Non-zero
# exit = latency/throughput regression or workload drift.
SLO_FLAGS = -seed 42 -nodes 9 -services 60 -ontologies 12 -ops 600 -warmup 60

slo-check:
	$(GO) run ./cmd/sdpload -scenario flash-crowd $(SLO_FLAGS) -sample 100ms \
		-out BENCH_load_flash-crowd.json
	$(GO) run ./cmd/slocheck -baseline bench/baselines/BENCH_load_flash-crowd.json \
		-run BENCH_load_flash-crowd.json -tolerance bench/baselines/tolerances.json
	$(GO) run ./cmd/sdpload -scenario thundering-herd $(SLO_FLAGS) -rate 300 -sample 250ms \
		-fault-scale 2s -out BENCH_load_thundering-herd.json
	$(GO) run ./cmd/slocheck -baseline bench/baselines/BENCH_load_thundering-herd.json \
		-run BENCH_load_thundering-herd.json -tolerance bench/baselines/tolerances-faulty.json
	$(GO) run ./cmd/sdpload -scenario brownout $(SLO_FLAGS) -rate 300 -sample 250ms \
		-fault-scale 2s -out BENCH_load_brownout.json
	$(GO) run ./cmd/slocheck -baseline bench/baselines/BENCH_load_brownout.json \
		-run BENCH_load_brownout.json -tolerance bench/baselines/tolerances-faulty.json

# store-conformance runs the cross-backend storage suite under the race
# detector: every backend (memstore, filestore, boltlike) against the
# shared storetest contract — ordered replay, idempotent reopen,
# concurrent append/replay, crash-recovery by injected truncation — plus
# the sdpd replay/migration integration tests and a short run of the
# record-codec fuzzer over its seed corpus.
store-conformance:
	$(GO) test -race -count=1 ./internal/store/... ./cmd/sdpd/
	$(GO) test -run '^$$' -fuzz FuzzDecodeRecord -fuzztime 10s ./internal/store/

# metrics-smoke boots a real sdpd, scrapes GET /metrics, and fails on
# malformed Prometheus exposition or missing acceptance metrics.
metrics-smoke:
	$(GO) run ./cmd/metricsmoke

# federation-smoke boots three sdpd processes federated over loopback
# UDP, registers a service on one daemon, resolves it from another, and
# checks /metrics shows real backbone traffic.
federation-smoke:
	$(GO) run ./cmd/fedsmoke

# soak-smoke is the 90-second miniature of an overnight soak: a
# three-daemon federation with durable telemetry journals and drift
# watchdogs must stay silent while healthy, serve pre-restart history
# after a restart, and fire goroutine_growth on an injected leak.
soak-smoke:
	$(GO) run ./cmd/soaksmoke

# check is the full CI gate.
check: build lint test race store-conformance metrics-smoke federation-smoke soak-smoke slo-check

clean:
	$(GO) clean ./...
