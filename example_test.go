package sariadne_test

import (
	"fmt"

	"sariadne"
)

// Example reproduces the paper's Figure 1 worked example through the
// public API: the workstation's SendDigitalStream capability substitutes
// for the PDA's GetVideoStream request at semantic distance 3.
func Example() {
	media := sariadne.NewOntology("http://example.org/ont/media", "1")
	for _, c := range []sariadne.Class{
		{Name: "Resource"},
		{Name: "DigitalResource", SubClassOf: []string{"Resource"}},
		{Name: "VideoResource", SubClassOf: []string{"DigitalResource"}},
		{Name: "Stream"},
	} {
		media.MustAddClass(c)
	}
	servers := sariadne.NewOntology("http://example.org/ont/servers", "1")
	for _, c := range []sariadne.Class{
		{Name: "Server"},
		{Name: "DigitalServer", SubClassOf: []string{"Server"}},
		{Name: "StreamingServer", SubClassOf: []string{"DigitalServer"}},
		{Name: "VideoServer", SubClassOf: []string{"StreamingServer"}},
	} {
		servers.MustAddClass(c)
	}

	sys := sariadne.NewSystem()
	if err := sys.AddOntology(media); err != nil {
		panic(err)
	}
	if err := sys.AddOntology(servers); err != nil {
		panic(err)
	}

	mediaRef := func(n string) sariadne.Ref {
		return sariadne.Ref{Ontology: media.URI, Name: n}
	}
	serverRef := func(n string) sariadne.Ref {
		return sariadne.Ref{Ontology: servers.URI, Name: n}
	}

	dir := sys.NewDirectory()
	if err := dir.Register(&sariadne.Service{
		Name: "MediaWorkstation",
		Provided: []*sariadne.Capability{{
			Name:     "SendDigitalStream",
			Category: serverRef("DigitalServer"),
			Inputs:   []sariadne.Ref{mediaRef("DigitalResource")},
			Outputs:  []sariadne.Ref{mediaRef("Stream")},
		}},
	}); err != nil {
		panic(err)
	}

	results := dir.Query(&sariadne.Capability{
		Name:     "GetVideoStream",
		Category: serverRef("VideoServer"),
		Inputs:   []sariadne.Ref{mediaRef("VideoResource")},
		Outputs:  []sariadne.Ref{mediaRef("Stream")},
	})
	for _, r := range results {
		fmt.Printf("%s/%s at distance %d\n",
			r.Entry.Service, r.Entry.Capability.Name, r.Distance)
	}
	// Output: MediaWorkstation/SendDigitalStream at distance 3
}

// ExampleSystem_Subsumes shows encoded subsumption: after AddOntology the
// check is a numeric comparison, no reasoner involved.
func ExampleSystem_Subsumes() {
	o := sariadne.NewOntology("http://example.org/ont", "1")
	o.MustAddClass(sariadne.Class{Name: "Resource"})
	o.MustAddClass(sariadne.Class{Name: "Video", SubClassOf: []string{"Resource"}})
	o.MustAddClass(sariadne.Class{Name: "Movie", SubClassOf: []string{"Video"}})

	sys := sariadne.NewSystem()
	if err := sys.AddOntology(o); err != nil {
		panic(err)
	}
	ref := func(n string) sariadne.Ref {
		return sariadne.Ref{Ontology: "http://example.org/ont", Name: n}
	}
	fmt.Println(sys.Subsumes(ref("Resource"), ref("Movie")))
	fmt.Println(sys.Subsumes(ref("Movie"), ref("Resource")))
	d, ok := sys.ConceptDistance(ref("Resource"), ref("Movie"))
	fmt.Println(d, ok)
	// Output:
	// true
	// false
	// 2 true
}
