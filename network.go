package sariadne

import (
	"context"
	"time"

	"sariadne/internal/discovery"
	"sariadne/internal/election"
	"sariadne/internal/simnet"
)

// NetworkConfig parameterizes a simulated pervasive network and the
// protocol nodes running on it.
type NetworkConfig struct {
	// LatencyPerHop simulates radio latency; zero keeps delivery
	// synchronous.
	LatencyPerHop time.Duration
	// DropRate is the per-link message loss probability.
	DropRate float64
	// Seed makes the simulation reproducible.
	Seed int64
	// Election tunes directory self-deployment; zero values use protocol
	// defaults.
	Election ElectionConfig
	// QueryTimeout bounds cross-directory query forwarding.
	QueryTimeout time.Duration
	// SummaryPushEvery pushes a directory's Bloom summary to its peers
	// after this many registrations (default 4).
	SummaryPushEvery int
	// AnnounceInterval re-broadcasts directory backbone announcements
	// (default 500ms).
	AnnounceInterval time.Duration
	// MaxForwardPeers bounds query fan-out across directories,
	// nearest-first (0 = unbounded).
	MaxForwardPeers int
	// LeaseTTL expires advertisements that stop being refreshed (soft
	// state); 0 disables. Publishers refresh automatically at
	// LeaseTTL/3.
	LeaseTTL time.Duration
}

// Network is a simulated pervasive network populated by S-Ariadne nodes.
// Create one with System.NewNetwork, add nodes, link them, then Start.
type Network struct {
	sys   *System
	cfg   NetworkConfig
	net   *simnet.Network
	nodes map[NodeID]*Node
}

// NewNetwork creates an empty simulated network bound to this system's
// ontologies.
func (s *System) NewNetwork(cfg NetworkConfig) *Network {
	return &Network{
		sys: s,
		cfg: cfg,
		net: simnet.New(simnet.Config{
			LatencyPerHop: cfg.LatencyPerHop,
			DropRate:      cfg.DropRate,
			Seed:          cfg.Seed,
		}),
		nodes: make(map[NodeID]*Node),
	}
}

// Node is one device participating in discovery: it can publish its own
// services, discover others', and may be (or become, via election) a
// directory for its vicinity.
type Node struct {
	inner *discovery.Node
}

// AddNode registers a device on the network.
func (n *Network) AddNode(id NodeID) (*Node, error) {
	ep, err := n.net.AddNode(id)
	if err != nil {
		return nil, err
	}
	cfg := discovery.Config{
		Election:         n.cfg.Election,
		QueryTimeout:     n.cfg.QueryTimeout,
		SummaryPushEvery: n.cfg.SummaryPushEvery,
		AnnounceInterval: n.cfg.AnnounceInterval,
		MaxForwardPeers:  n.cfg.MaxForwardPeers,
		LeaseTTL:         n.cfg.LeaseTTL,
	}
	if cfg.Election.Score == nil {
		// The paper elects directories on network coverage, mobility and
		// remaining resources; with a simulator the live neighbor count is
		// the natural coverage signal.
		net := n.net
		cfg.Election.Score = func() election.Score {
			return election.Score{
				Coverage:  len(net.Neighbors(id)),
				Resources: 0.5,
				Willing:   true,
			}
		}
	}
	node := &Node{inner: discovery.NewNode(ep, discovery.NewSemanticBackend(n.sys.reg), cfg)}
	n.nodes[id] = node
	return node, nil
}

// Link connects two nodes with a bidirectional radio link.
func (n *Network) Link(a, b NodeID) error { return n.net.Connect(a, b) }

// Unlink removes the link between two nodes (mobility).
func (n *Network) Unlink(a, b NodeID) { n.net.Disconnect(a, b) }

// RemoveNode detaches a node entirely (device leaving). The node's loop
// should be stopped by the caller via Network.Stop or ctx cancellation.
func (n *Network) RemoveNode(id NodeID) {
	if node, ok := n.nodes[id]; ok {
		node.inner.Stop()
		delete(n.nodes, id)
	}
	n.net.RemoveNode(id)
}

// Start launches every node's protocol loop.
func (n *Network) Start(ctx context.Context) {
	for _, node := range n.nodes {
		node.inner.Start(ctx)
	}
}

// Stop shuts every node down and closes the network.
func (n *Network) Stop() {
	for _, node := range n.nodes {
		node.inner.Stop()
	}
	n.net.Close()
}

// Node returns a previously added node.
func (n *Network) Node(id NodeID) (*Node, bool) {
	node, ok := n.nodes[id]
	return node, ok
}

// Stats exposes the underlying traffic counters.
func (n *Network) Stats() simnet.Stats { return n.net.Stats() }

// ID returns the node's network identity.
func (nd *Node) ID() NodeID { return nd.inner.ID() }

// BecomeDirectory promotes the node to a directory immediately (static
// deployment); with elections enabled promotion can also happen on its
// own.
func (nd *Node) BecomeDirectory() { nd.inner.BecomeDirectory() }

// IsDirectory reports whether the node currently acts as a directory.
func (nd *Node) IsDirectory() bool { return nd.inner.Role() == election.Directory }

// DirectoryID returns the directory this node currently uses.
func (nd *Node) DirectoryID() (NodeID, bool) { return nd.inner.DirectoryID() }

// Publish registers a service description with the node's vicinity
// directory; the node re-publishes automatically after directory churn.
func (nd *Node) Publish(ctx context.Context, svc *Service) error {
	doc, err := MarshalService(svc)
	if err != nil {
		return err
	}
	return nd.inner.Publish(ctx, doc)
}

// Discover resolves the required capabilities of the given service
// description (its Required list) through the discovery protocol.
func (nd *Node) Discover(ctx context.Context, request *Service) ([]Hit, error) {
	doc, err := MarshalService(request)
	if err != nil {
		return nil, err
	}
	return nd.inner.Discover(ctx, doc)
}

// StepDown gracefully retires the node's directory role, transferring its
// cached advertisements to the named successor directory.
func (nd *Node) StepDown(successor NodeID) error {
	return nd.inner.StepDown(successor)
}

// Deregister withdraws a previously published service from the node's
// directory.
func (nd *Node) Deregister(ctx context.Context, service string) error {
	return nd.inner.Deregister(ctx, service)
}

// DiscoverCapability is a convenience wrapper building a one-capability
// request.
func (nd *Node) DiscoverCapability(ctx context.Context, req *Capability) ([]Hit, error) {
	return nd.Discover(ctx, &Service{
		Name:     "request-" + string(nd.ID()),
		Required: []*Capability{req},
	})
}
