// Command composition demonstrates semantic service composition on top of
// discovery: Amigo-S services declare required capabilities alongside
// provided ones, and the resolver binds a whole dependency tree — a
// follow-me video session needs a display, the display needs a media
// source, the media source needs storage.
package main

import (
	"errors"
	"fmt"
	"log"

	"sariadne"
)

const (
	devURI = "http://compose.example/ont/devices"
	resURI = "http://compose.example/ont/resources"
)

func dev(n string) sariadne.Ref { return sariadne.Ref{Ontology: devURI, Name: n} }
func res(n string) sariadne.Ref { return sariadne.Ref{Ontology: resURI, Name: n} }

func main() {
	sys := sariadne.NewSystem()
	devices := sariadne.NewOntology(devURI, "1")
	for _, c := range []sariadne.Class{
		{Name: "Device"},
		{Name: "Display", SubClassOf: []string{"Device"}},
		{Name: "Projector", SubClassOf: []string{"Display"}},
		{Name: "MediaSource", SubClassOf: []string{"Device"}},
		{Name: "Storage", SubClassOf: []string{"Device"}},
	} {
		devices.MustAddClass(c)
	}
	resources := sariadne.NewOntology(resURI, "1")
	for _, c := range []sariadne.Class{
		{Name: "Data"},
		{Name: "MediaFile", SubClassOf: []string{"Data"}},
		{Name: "VideoFile", SubClassOf: []string{"MediaFile"}},
		{Name: "Stream"},
		{Name: "VideoStream", SubClassOf: []string{"Stream"}},
		{Name: "Picture"},
	} {
		resources.MustAddClass(c)
	}
	for _, o := range []*sariadne.Ontology{devices, resources} {
		if err := sys.AddOntology(o); err != nil {
			log.Fatal(err)
		}
	}

	// The device fleet. Note the chain of requirements: each device
	// sources what it consumes through its own required capability —
	// the projector needs a stream source, the media server needs
	// storage, the NAS needs nothing.
	projector := &sariadne.Service{
		Name: "CeilingProjector", Provider: "meeting-room",
		Provided: []*sariadne.Capability{{
			Name:     "ProjectPicture",
			Category: dev("Projector"),
			Outputs:  []sariadne.Ref{res("Picture")},
		}},
		Required: []*sariadne.Capability{{
			Name:     "NeedVideoStream",
			Category: dev("MediaSource"),
			Outputs:  []sariadne.Ref{res("VideoStream")},
		}},
	}
	mediaServer := &sariadne.Service{
		Name: "RackMediaServer", Provider: "server-room",
		Provided: []*sariadne.Capability{{
			Name:     "StreamVideo",
			Category: dev("MediaSource"),
			Outputs:  []sariadne.Ref{res("VideoStream")},
		}},
		Required: []*sariadne.Capability{{
			Name:     "NeedFiles",
			Category: dev("Storage"),
			Outputs:  []sariadne.Ref{res("VideoFile")},
		}},
	}
	nas := &sariadne.Service{
		Name: "OfficeNAS", Provider: "closet",
		Provided: []*sariadne.Capability{{
			Name:     "ServeFiles",
			Category: dev("Storage"),
			Outputs:  []sariadne.Ref{res("MediaFile")},
		}},
	}

	dir := sys.NewDirectory()
	for _, s := range []*sariadne.Service{projector, mediaServer, nas} {
		if err := dir.Register(s); err != nil {
			log.Fatal(err)
		}
	}

	// A user task: show a presentation video in the meeting room. The
	// process model is the task's conversation: first secure a projection,
	// then (preferring a dedicated projector over any display) hold it.
	task := &sariadne.Service{
		Name: "ShowPresentation",
		Required: []*sariadne.Capability{{
			Name:     "NeedProjection",
			Category: dev("Projector"),
			Outputs:  []sariadne.Ref{res("Picture")},
		}, {
			// Nobody in this room provides holographic display — the
			// process model's Choice falls back to the projector.
			Name:     "NeedHologram",
			Category: dev("Display"),
			Outputs:  []sariadne.Ref{res("Picture")},
			QoSRequired: []sariadne.QoSConstraint{
				{Name: "dimensions", Min: 3, Max: sariadne.UnboundedQoS()},
			},
		}},
		Process: sariadne.SequenceProcess(
			sariadne.ChoiceProcess(
				sariadne.InvokeStep("NeedHologram"),   // preferred, unavailable
				sariadne.InvokeStep("NeedProjection"), // fallback
			),
		),
	}

	catalog := sariadne.NewServiceCatalog(projector, mediaServer, nas)
	plan, err := dir.ResolveComposition(task, sariadne.CompositionOptions{
		Resolver: catalog,
		Partial:  true, // the process model routes around missing options
	})
	if err != nil {
		log.Fatal(err)
	}
	if len(plan.Missing) > 0 {
		fmt.Printf("unbound (optional) requirements: %v\n", plan.Missing)
	}
	fmt.Println("composition plan:")
	fmt.Print(plan)
	fmt.Printf("\nparticipating services: %v\n", plan.Services())

	// Execute the task's conversation (its OWL-S process model) against
	// the plan's bindings.
	steps, err := sariadne.Conversation(task, plan)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nconversation trace:")
	for _, s := range steps {
		fmt.Printf("  %-20s -> %-20s (%s)\n", s.Capability, s.Provider, s.Branch)
	}

	// Remove the NAS: the plan can no longer be completed, and the error
	// says exactly which requirement of which service broke.
	fmt.Println("\n-- OfficeNAS leaves --")
	dir.Deregister("OfficeNAS")
	if _, err := dir.ResolveComposition(task, sariadne.CompositionOptions{Resolver: catalog}); err != nil {
		if errors.Is(err, sariadne.ErrUnresolvable) {
			fmt.Printf("composition now fails as expected: %v\n", err)
		} else {
			log.Fatal(err)
		}
	}
}
