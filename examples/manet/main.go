// Command manet demonstrates the full S-Ariadne protocol on a simulated
// mobile ad hoc network: nodes on a grid elect their own directories,
// devices publish semantic services, queries are resolved locally or
// forwarded across the directory backbone using Bloom-filter summaries,
// and the system survives the death of a directory (re-election plus
// automatic re-publication).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"sariadne"
)

const (
	devURI = "http://manet.example/ont/devices"
	resURI = "http://manet.example/ont/resources"
)

func dev(name string) sariadne.Ref { return sariadne.Ref{Ontology: devURI, Name: name} }
func res(name string) sariadne.Ref { return sariadne.Ref{Ontology: resURI, Name: name} }

func main() {
	sys := sariadne.NewSystem()
	devices := sariadne.NewOntology(devURI, "1")
	for _, c := range []sariadne.Class{
		{Name: "Device"},
		{Name: "Camera", SubClassOf: []string{"Device"}},
		{Name: "Display", SubClassOf: []string{"Device"}},
		{Name: "Sensor", SubClassOf: []string{"Device"}},
		{Name: "GPSSensor", SubClassOf: []string{"Sensor"}},
	} {
		devices.MustAddClass(c)
	}
	resources := sariadne.NewOntology(resURI, "1")
	for _, c := range []sariadne.Class{
		{Name: "Data"},
		{Name: "Image", SubClassOf: []string{"Data"}},
		{Name: "Position", SubClassOf: []string{"Data"}},
		{Name: "Coordinates", SubClassOf: []string{"Position"}},
	} {
		resources.MustAddClass(c)
	}
	for _, o := range []*sariadne.Ontology{devices, resources} {
		if err := sys.AddOntology(o); err != nil {
			log.Fatal(err)
		}
	}

	// A 4×4 grid of mobile nodes; elections run with fast timers so the
	// example converges quickly.
	net := sys.NewNetwork(sariadne.NetworkConfig{
		QueryTimeout:     time.Second,
		SummaryPushEvery: 1,
		AnnounceInterval: 100 * time.Millisecond,
		Election: sariadne.ElectionConfig{
			AdvertiseInterval: 20 * time.Millisecond,
			AdvertiseTTL:      2,
			ElectionTimeout:   80 * time.Millisecond,
			CandidacyWait:     30 * time.Millisecond,
		},
	})
	defer net.Stop()

	const side = 4
	id := func(r, c int) sariadne.NodeID {
		return sariadne.NodeID(fmt.Sprintf("n%d%d", r, c))
	}
	nodes := map[sariadne.NodeID]*sariadne.Node{}
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			n, err := net.AddNode(id(r, c))
			if err != nil {
				log.Fatal(err)
			}
			nodes[id(r, c)] = n
		}
	}
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if c+1 < side {
				mustLink(net, id(r, c), id(r, c+1))
			}
			if r+1 < side {
				mustLink(net, id(r, c), id(r+1, c))
			}
		}
	}
	net.Start(context.Background())

	fmt.Println("waiting for directory elections...")
	waitFor(5*time.Second, func() bool {
		for _, n := range nodes {
			if _, ok := n.DirectoryID(); !ok {
				return false
			}
		}
		return true
	})
	var directories []sariadne.NodeID
	for nid, n := range nodes {
		if n.IsDirectory() {
			directories = append(directories, nid)
		}
	}
	fmt.Printf("elected directories: %v\n\n", directories)

	// A camera node in one corner publishes; a display node in the
	// opposite corner discovers.
	camera := &sariadne.Service{
		Name: "CornerCamera", Provider: "n00",
		Provided: []*sariadne.Capability{{
			Name:     "CaptureImage",
			Category: dev("Camera"),
			Outputs:  []sariadne.Ref{res("Image")},
		}},
	}
	gps := &sariadne.Service{
		Name: "EdgeGPS", Provider: "n03",
		Provided: []*sariadne.Capability{{
			Name:     "ReportPosition",
			Category: dev("GPSSensor"),
			Outputs:  []sariadne.Ref{res("Coordinates")},
		}},
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := nodes[id(0, 0)].Publish(ctx, camera); err != nil {
		log.Fatalf("publish camera: %v", err)
	}
	if err := nodes[id(0, 3)].Publish(ctx, gps); err != nil {
		log.Fatalf("publish gps: %v", err)
	}
	// Give summary pushes a moment to cross the backbone.
	time.Sleep(100 * time.Millisecond)

	discover := func(from sariadne.NodeID, what string, req *sariadne.Capability) {
		// Summaries and backbone handshakes propagate asynchronously;
		// retry briefly like a real client would.
		var hits []sariadne.Hit
		var err error
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			hits, err = nodes[from].DiscoverCapability(ctx, req)
			if err == nil && len(hits) > 0 {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		if err != nil {
			fmt.Printf("%s from %s: error: %v\n", what, from, err)
			return
		}
		if len(hits) == 0 {
			fmt.Printf("%s from %s: not found\n", what, from)
			return
		}
		for _, h := range hits {
			fmt.Printf("%s from %s: %s/%s (distance %d, via directory %s)\n",
				what, from, h.Service, h.Capability, h.Distance, h.Directory)
		}
	}

	discover(id(3, 3), "find a camera", &sariadne.Capability{
		Name: "NeedCamera", Category: dev("Camera"),
		Outputs: []sariadne.Ref{res("Image")},
	})
	discover(id(3, 0), "find a position source", &sariadne.Capability{
		Name: "NeedPosition", Category: dev("GPSSensor"),
		Outputs: []sariadne.Ref{res("Coordinates")},
	})

	// Kill every elected directory: the network re-elects and publishers
	// re-register automatically.
	fmt.Println("\n-- all directories fail --")
	for _, d := range directories {
		if d == id(0, 0) || d == id(3, 3) {
			continue // keep the endpoints of the demo alive
		}
		net.RemoveNode(d)
		delete(nodes, d)
	}
	fmt.Println("waiting for re-election and re-publication...")
	waitFor(10*time.Second, func() bool {
		hits, err := nodes[id(3, 3)].DiscoverCapability(ctx, &sariadne.Capability{
			Name: "NeedCamera", Category: dev("Camera"),
			Outputs: []sariadne.Ref{res("Image")},
		})
		return err == nil && len(hits) > 0
	})
	discover(id(3, 3), "find a camera (after churn)", &sariadne.Capability{
		Name: "NeedCamera", Category: dev("Camera"),
		Outputs: []sariadne.Ref{res("Image")},
	})

	st := net.Stats()
	fmt.Printf("\ntraffic: %d unicasts, %d broadcasts, %d deliveries, %d link traversals\n",
		st.UnicastsSent, st.BroadcastsSent, st.MessagesDelivered, st.LinkTraversals)
}

func mustLink(net *sariadne.Network, a, b sariadne.NodeID) {
	if err := net.Link(a, b); err != nil {
		log.Fatal(err)
	}
}

func waitFor(timeout time.Duration, cond func() bool) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	log.Fatal("timeout waiting for condition")
}
