// Command quickstart is the smallest end-to-end use of the library: define
// two tiny ontologies, describe a provided and a required capability, and
// let a semantic directory find and rank the match — including the paper's
// Figure 1 worked example, whose semantic distance is 3.
package main

import (
	"fmt"
	"log"

	"sariadne"
)

func main() {
	// 1. Define the ontologies (normally loaded from XML documents).
	media := sariadne.NewOntology("http://example.org/ont/media", "1")
	for _, c := range []sariadne.Class{
		{Name: "Resource"},
		{Name: "DigitalResource", SubClassOf: []string{"Resource"}},
		{Name: "VideoResource", SubClassOf: []string{"DigitalResource"}},
		{Name: "GameResource", SubClassOf: []string{"DigitalResource"}},
		{Name: "Stream"},
	} {
		media.MustAddClass(c)
	}
	servers := sariadne.NewOntology("http://example.org/ont/servers", "1")
	for _, c := range []sariadne.Class{
		{Name: "Server"},
		{Name: "DigitalServer", SubClassOf: []string{"Server"}},
		{Name: "StreamingServer", SubClassOf: []string{"DigitalServer"}},
		{Name: "VideoServer", SubClassOf: []string{"StreamingServer"}},
		{Name: "GameServer", SubClassOf: []string{"DigitalServer"}},
	} {
		servers.MustAddClass(c)
	}

	// 2. Bootstrap the system: classification + interval encoding happen
	// here, offline, so matching below is pure numeric comparison.
	sys := sariadne.NewSystem()
	for _, o := range []*sariadne.Ontology{media, servers} {
		if err := sys.AddOntology(o); err != nil {
			log.Fatalf("add ontology: %v", err)
		}
	}

	ref := func(ont, name string) sariadne.Ref {
		return sariadne.Ref{Ontology: "http://example.org/ont/" + ont, Name: name}
	}

	// 3. A workstation advertises two capabilities.
	workstation := &sariadne.Service{
		Name:     "MediaWorkstation",
		Provider: "livingroom-pc",
		Provided: []*sariadne.Capability{
			{
				Name:     "SendDigitalStream",
				Category: ref("servers", "DigitalServer"),
				Inputs:   []sariadne.Ref{ref("media", "DigitalResource")},
				Outputs:  []sariadne.Ref{ref("media", "Stream")},
			},
			{
				Name:     "ProvideGame",
				Category: ref("servers", "GameServer"),
				Inputs:   []sariadne.Ref{ref("media", "GameResource")},
				Outputs:  []sariadne.Ref{ref("media", "Stream")},
			},
		},
	}

	dir := sys.NewDirectory()
	if err := dir.Register(workstation); err != nil {
		log.Fatalf("register: %v", err)
	}
	fmt.Println("directory after registration:")
	fmt.Print(dir.Snapshot())

	// 4. A PDA asks for a video stream — note: no name in common with the
	// advertisement; the match is purely semantic.
	request := &sariadne.Capability{
		Name:     "GetVideoStream",
		Category: ref("servers", "VideoServer"),
		Inputs:   []sariadne.Ref{ref("media", "VideoResource")},
		Outputs:  []sariadne.Ref{ref("media", "Stream")},
	}

	results := dir.Query(request)
	if len(results) == 0 {
		log.Fatal("no match found")
	}
	for _, r := range results {
		fmt.Printf("match: %s/%s at semantic distance %d\n",
			r.Entry.Service, r.Entry.Capability.Name, r.Distance)
	}

	// 5. Explain the best match pair by pair.
	rep := sys.Explain(results[0].Entry.Capability, request)
	fmt.Println("\nwhy it matches:")
	for _, p := range rep.Pairs {
		fmt.Printf("  %-8s required %-45s matched by %-45s (d=%d)\n",
			p.Kind, p.Required, p.Matched, p.Distance)
	}
	fmt.Printf("total semantic distance: %d\n", rep.Distance)
}
