// Command smarthome models the pervasive home environment that motivates
// the paper: heterogeneous devices (media server, printer, climate
// control, game console) advertise semantic capabilities in a home
// directory, and user tasks discover them by meaning rather than by
// interface names — including graceful behaviour when devices leave and
// when requests are only approximately satisfiable (ranking by semantic
// distance).
package main

import (
	"fmt"
	"log"

	"sariadne"
)

const (
	devURI   = "http://home.example/ont/devices"
	mediaURI = "http://home.example/ont/media"
	docURI   = "http://home.example/ont/documents"
	locURI   = "http://home.example/ont/locations"
)

func buildOntologies(sys *sariadne.System) error {
	devices := sariadne.NewOntology(devURI, "1")
	for _, c := range []sariadne.Class{
		{Name: "Device"},
		{Name: "AVDevice", SubClassOf: []string{"Device"}},
		{Name: "MediaServer", SubClassOf: []string{"AVDevice"}},
		{Name: "MusicServer", SubClassOf: []string{"MediaServer"}},
		{Name: "MovieServer", SubClassOf: []string{"MediaServer"}},
		{Name: "GameConsole", SubClassOf: []string{"AVDevice"}},
		{Name: "OfficeDevice", SubClassOf: []string{"Device"}},
		{Name: "Printer", SubClassOf: []string{"OfficeDevice"}},
		{Name: "ColorPrinter", SubClassOf: []string{"Printer"}},
		{Name: "ClimateDevice", SubClassOf: []string{"Device"}},
		{Name: "Thermostat", SubClassOf: []string{"ClimateDevice"}},
	} {
		devices.MustAddClass(c)
	}
	media := sariadne.NewOntology(mediaURI, "1")
	for _, c := range []sariadne.Class{
		{Name: "Content"},
		{Name: "Audio", SubClassOf: []string{"Content"}},
		{Name: "Music", SubClassOf: []string{"Audio"}},
		{Name: "Podcast", SubClassOf: []string{"Audio"}},
		{Name: "Video", SubClassOf: []string{"Content"}},
		{Name: "Movie", SubClassOf: []string{"Video"}},
		{Name: "Stream"},
		{Name: "AudioStream", SubClassOf: []string{"Stream"}},
		{Name: "VideoStream", SubClassOf: []string{"Stream"}},
		{Name: "Temperature"},
		{Name: "Celsius", SubClassOf: []string{"Temperature"}},
	} {
		media.MustAddClass(c)
	}
	docs := sariadne.NewOntology(docURI, "1")
	for _, c := range []sariadne.Class{
		{Name: "Document"},
		{Name: "TextDocument", SubClassOf: []string{"Document"}},
		{Name: "PDF", SubClassOf: []string{"TextDocument"}},
		{Name: "Photo", SubClassOf: []string{"Document"}},
		{Name: "PrintJob"},
	} {
		docs.MustAddClass(c)
	}
	// Context awareness (Amigo-S §2.2): locations are just another
	// ontology, attached to capabilities as semantic properties.
	locations := sariadne.NewOntology(locURI, "1")
	for _, c := range []sariadne.Class{
		{Name: "Home"},
		{Name: "Downstairs", SubClassOf: []string{"Home"}},
		{Name: "Upstairs", SubClassOf: []string{"Home"}},
		{Name: "LivingRoom", SubClassOf: []string{"Downstairs"}},
		{Name: "Kitchen", SubClassOf: []string{"Downstairs"}},
		{Name: "Study", SubClassOf: []string{"Upstairs"}},
	} {
		locations.MustAddClass(c)
	}
	for _, o := range []*sariadne.Ontology{devices, media, docs, locations} {
		if err := sys.AddOntology(o); err != nil {
			return err
		}
	}
	return nil
}

func loc(name string) sariadne.Ref { return sariadne.Ref{Ontology: locURI, Name: name} }

func dev(name string) sariadne.Ref  { return sariadne.Ref{Ontology: devURI, Name: name} }
func med(name string) sariadne.Ref  { return sariadne.Ref{Ontology: mediaURI, Name: name} }
func docR(name string) sariadne.Ref { return sariadne.Ref{Ontology: docURI, Name: name} }

func homeServices() []*sariadne.Service {
	return []*sariadne.Service{
		{
			Name: "LivingRoomMediaCenter", Provider: "livingroom",
			Provided: []*sariadne.Capability{
				{
					Name:       "StreamAnyContent",
					Category:   dev("MediaServer"),
					Inputs:     []sariadne.Ref{med("Content")},
					Outputs:    []sariadne.Ref{med("Stream")},
					Properties: []sariadne.Ref{loc("Downstairs")},
				},
				{
					Name:       "StreamMovies",
					Category:   dev("MovieServer"),
					Inputs:     []sariadne.Ref{med("Video")},
					Outputs:    []sariadne.Ref{med("VideoStream")},
					Properties: []sariadne.Ref{loc("Downstairs")},
				},
			},
		},
		{
			Name: "KitchenRadio", Provider: "kitchen",
			Provided: []*sariadne.Capability{{
				Name:       "PlayAudio",
				Category:   dev("MusicServer"),
				Inputs:     []sariadne.Ref{med("Audio")},
				Outputs:    []sariadne.Ref{med("AudioStream")},
				Properties: []sariadne.Ref{loc("Downstairs")},
			}},
		},
		{
			Name: "StudyPrinter", Provider: "study",
			Provided: []*sariadne.Capability{{
				Name:       "PrintDocument",
				Category:   dev("ColorPrinter"),
				Inputs:     []sariadne.Ref{docR("Document")},
				Outputs:    []sariadne.Ref{docR("PrintJob")},
				Properties: []sariadne.Ref{loc("Upstairs")},
			}},
		},
		{
			Name: "HallwayThermostat", Provider: "hallway",
			Provided: []*sariadne.Capability{{
				Name:     "ReportTemperature",
				Category: dev("Thermostat"),
				Outputs:  []sariadne.Ref{med("Celsius")},
			}},
		},
	}
}

func main() {
	sys := sariadne.NewSystem()
	if err := buildOntologies(sys); err != nil {
		log.Fatal(err)
	}
	dir := sys.NewDirectory()
	for _, svc := range homeServices() {
		if err := dir.Register(svc); err != nil {
			log.Fatalf("register %s: %v", svc.Name, err)
		}
	}
	fmt.Printf("home directory: %d capabilities in %d graphs\n\n",
		dir.NumCapabilities(), dir.NumGraphs())

	show := func(task string, req *sariadne.Capability) {
		fmt.Printf("task: %s\n", task)
		results := dir.Query(req)
		if len(results) == 0 {
			fmt.Println("  no device can do this")
		}
		for _, r := range results {
			fmt.Printf("  %-22s %-18s distance %d\n",
				r.Entry.Service, r.Entry.Capability.Name, r.Distance)
		}
		fmt.Println()
	}

	// Watch a movie: both the dedicated movie server (exact) and the
	// generic media center (more generic, larger distance) qualify.
	show("watch a movie", &sariadne.Capability{
		Name:     "WatchMovie",
		Category: dev("MovieServer"),
		Inputs:   []sariadne.Ref{med("Movie")},
		Outputs:  []sariadne.Ref{med("VideoStream")},
	})

	// Listen to a podcast: the kitchen radio serves Audio ⊒ Podcast.
	show("listen to a podcast", &sariadne.Capability{
		Name:     "ListenPodcast",
		Category: dev("MusicServer"),
		Inputs:   []sariadne.Ref{med("Podcast")},
		Outputs:  []sariadne.Ref{med("AudioStream")},
	})

	// Print a PDF in color. Note the direction of the paper's relation:
	// the request names the specific category (ColorPrinter) and a
	// provider advertising an equal-or-more-generic category qualifies,
	// while the Document-accepting input happily consumes the PDF.
	show("print a PDF in color", &sariadne.Capability{
		Name:     "PrintPDF",
		Category: dev("ColorPrinter"),
		Inputs:   []sariadne.Ref{docR("PDF")},
		Outputs:  []sariadne.Ref{docR("PrintJob")},
	})

	// Read the temperature — a capability with no inputs.
	show("read the temperature", &sariadne.Capability{
		Name:     "ReadTemperature",
		Category: dev("Thermostat"),
		Outputs:  []sariadne.Ref{med("Celsius")},
	})

	// Context-aware task: listen to music specifically in the kitchen.
	// The request requires the location property loc(Kitchen); providers
	// declaring the broader Downstairs location qualify (they cover the
	// kitchen), an Upstairs device would not.
	show("listen to music in the kitchen", &sariadne.Capability{
		Name:       "KitchenMusic",
		Category:   dev("MusicServer"),
		Inputs:     []sariadne.Ref{med("Music")},
		Outputs:    []sariadne.Ref{med("AudioStream")},
		Properties: []sariadne.Ref{loc("Kitchen")},
	})

	// The same task upstairs finds nothing: no upstairs device plays music.
	show("listen to music in the study", &sariadne.Capability{
		Name:       "StudyMusic",
		Category:   dev("MusicServer"),
		Inputs:     []sariadne.Ref{med("Music")},
		Outputs:    []sariadne.Ref{med("AudioStream")},
		Properties: []sariadne.Ref{loc("Study")},
	})

	// The media center is switched off: the movie task degrades but the
	// home keeps working (no match now — nothing else serves video).
	fmt.Println("-- LivingRoomMediaCenter leaves the home --")
	dir.Deregister("LivingRoomMediaCenter")
	show("watch a movie (after departure)", &sariadne.Capability{
		Name:     "WatchMovie",
		Category: dev("MovieServer"),
		Inputs:   []sariadne.Ref{med("Movie")},
		Outputs:  []sariadne.Ref{med("VideoStream")},
	})
}
