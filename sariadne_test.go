package sariadne

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"sariadne/internal/profile"
	"sariadne/internal/testutil"
)

// newFixtureSystem loads the Figure 1 ontologies.
func newFixtureSystem(t testing.TB) *System {
	t.Helper()
	sys := NewSystem()
	for _, o := range []*Ontology{profile.MediaOntology(), profile.ServersOntology()} {
		if err := sys.AddOntology(o); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

func TestSystemOntologyLifecycle(t *testing.T) {
	sys := newFixtureSystem(t)
	uris := sys.Ontologies()
	if len(uris) != 2 {
		t.Fatalf("Ontologies = %v", uris)
	}
	// XML path.
	o := NewOntology("http://x.example/ont", "1")
	o.MustAddClass(Class{Name: "A"})
	o.MustAddClass(Class{Name: "B", SubClassOf: []string{"A"}})
	data, err := MarshalOntology(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddOntologyXML(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	if len(sys.Ontologies()) != 3 {
		t.Fatal("XML ontology not added")
	}
	if err := sys.AddOntologyXML(strings.NewReader("junk")); err == nil {
		t.Fatal("accepted junk ontology")
	}
	if !sys.Subsumes(Ref{Ontology: "http://x.example/ont", Name: "A"}, Ref{Ontology: "http://x.example/ont", Name: "B"}) {
		t.Fatal("Subsumes lost after XML round trip")
	}
	if sys.Subsumes(Ref{Ontology: "http://x.example/ont", Name: "A"}, Ref{Ontology: "other", Name: "B"}) {
		t.Fatal("cross-ontology subsumption")
	}
	if _, ok := sys.ConceptDistance(Ref{Ontology: "missing", Name: "A"}, Ref{Ontology: "missing", Name: "B"}); ok {
		t.Fatal("distance over unknown ontology")
	}
	d, ok := sys.ConceptDistance(
		Ref{Ontology: "http://x.example/ont", Name: "A"},
		Ref{Ontology: "http://x.example/ont", Name: "B"})
	if !ok || d != 1 {
		t.Fatalf("ConceptDistance = %d, %v", d, ok)
	}
}

func TestSystemMatchFigure1(t *testing.T) {
	sys := newFixtureSystem(t)
	provided := profile.WorkstationService().Capability("SendDigitalStream")
	requested := profile.PDAService().Required[0]
	d, ok := sys.Match(provided, requested)
	if !ok || d != 3 {
		t.Fatalf("Match = (%d, %v), want (3, true)", d, ok)
	}
	rep := sys.Explain(provided, requested)
	if !rep.Matched || rep.Distance != 3 || len(rep.Pairs) != 3 {
		t.Fatalf("Explain = %+v", rep)
	}
}

func TestDirectoryFacade(t *testing.T) {
	sys := newFixtureSystem(t)
	dir := sys.NewDirectory()
	if err := dir.Register(profile.WorkstationService()); err != nil {
		t.Fatal(err)
	}
	if dir.NumCapabilities() != 2 || dir.NumGraphs() == 0 {
		t.Fatalf("directory shape: %d caps, %d graphs", dir.NumCapabilities(), dir.NumGraphs())
	}
	req := profile.PDAService().Required[0]
	results := dir.Query(req)
	if len(results) != 1 || results[0].Distance != 3 {
		t.Fatalf("Query = %v", results)
	}
	best, ok := dir.Best(req)
	if !ok || best.Entry.Capability.Name != "SendDigitalStream" {
		t.Fatalf("Best = %v, %v", best, ok)
	}
	if !strings.Contains(dir.Snapshot(), "SendDigitalStream") {
		t.Fatal("Snapshot missing capability")
	}
	if !dir.Deregister("MediaWorkstation") {
		t.Fatal("Deregister failed")
	}
	if dir.NumCapabilities() != 0 {
		t.Fatal("directory not empty")
	}
}

func TestMarshalParseService(t *testing.T) {
	svc := profile.WorkstationService()
	data, err := MarshalService(svc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseService(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != svc.Name {
		t.Fatalf("name = %q", back.Name)
	}
	if _, err := ParseService(strings.NewReader("junk")); err == nil {
		t.Fatal("accepted junk")
	}
	if _, err := ParseOntology(strings.NewReader("junk")); err == nil {
		t.Fatal("accepted junk ontology")
	}
}

// TestNetworkEndToEnd drives the whole public API: simulated network,
// static directory, publish on one device, discover from another.
func TestNetworkEndToEnd(t *testing.T) {
	sys := newFixtureSystem(t)
	net := sys.NewNetwork(NetworkConfig{
		QueryTimeout: 500 * time.Millisecond,
		Election: ElectionConfig{
			AdvertiseInterval: 15 * time.Millisecond,
			AdvertiseTTL:      3,
			ElectionTimeout:   time.Hour, // static deployment in this test
		},
	})
	defer net.Stop()

	ids := []NodeID{"pda", "hub", "workstation"}
	nodes := make([]*Node, 0, len(ids))
	for _, id := range ids {
		n, err := net.AddNode(id)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	if err := net.Link("pda", "hub"); err != nil {
		t.Fatal(err)
	}
	if err := net.Link("hub", "workstation"); err != nil {
		t.Fatal(err)
	}
	net.Start(context.Background())
	nodes[1].BecomeDirectory()
	if !nodes[1].IsDirectory() {
		t.Fatal("hub not a directory")
	}

	testutil.WaitFor(t, 2*time.Second, func() bool {
		_, ok0 := nodes[0].DirectoryID()
		_, ok2 := nodes[2].DirectoryID()
		return ok0 && ok2
	}, "directory advertisement")

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := nodes[2].Publish(ctx, profile.WorkstationService()); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	hits, err := nodes[0].Discover(ctx, profile.PDAService())
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if len(hits) != 1 || hits[0].Capability != "SendDigitalStream" || hits[0].Distance != 3 {
		t.Fatalf("hits = %v", hits)
	}

	// Convenience wrapper.
	hits, err = nodes[0].DiscoverCapability(ctx, profile.PDAService().Required[0])
	if err != nil || len(hits) != 1 {
		t.Fatalf("DiscoverCapability = %v, %v", hits, err)
	}

	if st := net.Stats(); st.MessagesDelivered == 0 {
		t.Fatal("no traffic recorded")
	}
	if _, ok := net.Node("hub"); !ok {
		t.Fatal("Node lookup failed")
	}
	net.Unlink("pda", "hub")
	net.RemoveNode("pda")
	if _, ok := net.Node("pda"); ok {
		t.Fatal("pda still present")
	}
}
