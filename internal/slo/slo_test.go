package slo

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func sampleReport() *Report {
	return &Report{
		Schema:   Schema,
		Scenario: "flash-crowd",
		Seed:     42,
		Config:   Config{Nodes: 9, Topology: "grid", Services: 60, Mode: "closed", Concurrency: 4, Ops: 400},
		Schedule: Schedule{QueryOps: 400, HotService: "svc0007", HotQueryOps: 320, TopShareMilli: 800},
		Results:  Results{OK: 400, Hits: 812},
		Points: []Point{
			{Services: 60, Series: "query", Reps: 400, OpsPerSec: 5000, P50Nanos: 100_000, P95Nanos: 400_000, P99Nanos: 900_000, P999Nanos: 2_000_000},
		},
		Curve: []CurvePoint{{Series: "query", ElapsedMs: 1000, WindowMs: 250, Count: 100, RatePerS: 400, P99Nanos: 900_000}},
		Wall:  Wall{StartedAt: time.Now(), DurationMs: 1234},
	}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	base, run := sampleReport(), sampleReport()
	run.Points[0].P99Nanos = 3_000_000 // 3.3x < default 4x band
	run.Points[0].OpsPerSec = 2000     // 0.4x > default 0.25 floor
	if v := Compare(base, run, Tolerance{}); len(v) != 0 {
		t.Fatalf("within-band run flagged: %v", v)
	}
}

func TestCompareP99RegressionFails(t *testing.T) {
	base, run := sampleReport(), sampleReport()
	run.Points[0].P99Nanos = 10_000_000 // 11x the baseline
	vs := Compare(base, run, Tolerance{})
	if len(vs) != 1 || vs[0].Field != "p99_ns" {
		t.Fatalf("violations = %v, want exactly the p99 band", vs)
	}
	if !strings.Contains(vs[0].String(), "p99_ns") {
		t.Fatalf("violation string unusable: %q", vs[0].String())
	}
}

func TestCompareTightBand(t *testing.T) {
	base, run := sampleReport(), sampleReport()
	run.Points[0].P999Nanos = 4_100_000 // 2.05x
	if v := Compare(base, run, Tolerance{MaxQuantileRatio: 2}); len(v) != 1 || v[0].Field != "p999_ns" {
		t.Fatalf("violations = %v, want p999 with a 2x band", v)
	}
}

func TestCompareThroughputCollapseFails(t *testing.T) {
	base, run := sampleReport(), sampleReport()
	run.Points[0].OpsPerSec = 100 // 2% of baseline
	vs := Compare(base, run, Tolerance{})
	if len(vs) != 1 || vs[0].Field != "ops_per_sec" {
		t.Fatalf("violations = %v, want the throughput floor", vs)
	}
}

func TestCompareMissingSeriesFails(t *testing.T) {
	base, run := sampleReport(), sampleReport()
	run.Points = nil
	vs := Compare(base, run, Tolerance{})
	if len(vs) != 1 || vs[0].Field != "missing_point" {
		t.Fatalf("violations = %v, want missing_point", vs)
	}
}

func TestCompareStrictSchedule(t *testing.T) {
	base, run := sampleReport(), sampleReport()
	run.Schedule.HotQueryOps = 999
	vs := Compare(base, run, Tolerance{StrictSchedule: true})
	if len(vs) != 1 || vs[0].Field != "schedule" {
		t.Fatalf("violations = %v, want schedule drift", vs)
	}
	run2 := sampleReport()
	if vs := Compare(base, run2, Tolerance{StrictSchedule: true}); len(vs) != 0 {
		t.Fatalf("identical schedules flagged: %v", vs)
	}
}

func TestCompareFailedOps(t *testing.T) {
	base, run := sampleReport(), sampleReport()
	run.Results.Failed = 3
	if vs := Compare(base, run, Tolerance{MaxFailedOps: 2}); len(vs) != 1 || vs[0].Field != "failed_ops" {
		t.Fatalf("violations = %v, want failed_ops", vs)
	}
	if vs := Compare(base, run, Tolerance{MaxFailedOps: 5}); len(vs) != 0 {
		t.Fatalf("failures under the cap flagged: %v", vs)
	}
	if vs := Compare(base, run, Tolerance{MaxFailedOps: -1}); len(vs) != 0 {
		t.Fatalf("disabled failure cap still flagged: %v", vs)
	}
}

func TestCanonicalBytesStripsWallClock(t *testing.T) {
	a, b := sampleReport(), sampleReport()
	b.Wall.StartedAt = b.Wall.StartedAt.Add(time.Hour)
	b.Wall.DurationMs = 9999
	b.Points[0].P99Nanos = 123
	b.Curve[0].Count = 7

	ca, err := a.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.CanonicalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if string(ca) != string(cb) {
		t.Fatalf("canonical bytes differ across wall-clock-only changes:\n%s\nvs\n%s", ca, cb)
	}
	if strings.Contains(string(ca), "p99_ns") {
		t.Fatalf("canonical form kept wall-clock points:\n%s", ca)
	}
	// Determinism-critical sections must survive the stripping.
	for _, want := range []string{"flash-crowd", "hot_service", "svc0007", `"ok": 400`} {
		if !strings.Contains(string(ca), want) {
			t.Fatalf("canonical form lost %q:\n%s", want, ca)
		}
	}
}

func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_load_test.json")
	r := sampleReport()
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Scenario != r.Scenario || len(got.Points) != 1 || got.Points[0].P999Nanos != 2_000_000 {
		t.Fatalf("round trip lost data: %+v", got)
	}

	// A wrong schema tag must be rejected, not silently compared.
	bad := sampleReport()
	bad.Schema = "sdp-load/v0"
	badPath := filepath.Join(dir, "bad.json")
	if err := bad.WriteFile(badPath); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReport(badPath); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}

func TestLoadTolerance(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tolerances.json")
	if err := writeFile(path, `{"max_quantile_ratio": 6, "min_ops_ratio": 0.1, "max_failed_ops": 0, "strict_schedule": true}`); err != nil {
		t.Fatal(err)
	}
	tol, err := LoadTolerance(path)
	if err != nil {
		t.Fatal(err)
	}
	if tol.MaxQuantileRatio != 6 || tol.MinOpsRatio != 0.1 || !tol.StrictSchedule {
		t.Fatalf("tolerance = %+v", tol)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
