// Package slo defines the machine-readable schema of a load run
// (BENCH_load_<scenario>.json) and the comparator that diffs a run
// against a checked-in baseline under configurable tolerance bands —
// the referee every scaling PR is judged against.
//
// The schema splits cleanly into deterministic and wall-clock halves.
// Everything outside Points/Curve/Wall is a pure function of the scenario
// and seed: two runs of `sdpload -scenario flash-crowd -seed 42` produce
// byte-identical canonical encodings (CanonicalBytes), which CI asserts.
// Points keeps the field names BENCH_fig9/10.json introduced (services,
// series, reps, ops_per_sec, p50_ns...), so figure and load trajectories
// share tooling.
package slo

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Schema is the format tag emitted into every report.
const Schema = "sdp-load/v1"

// Report is one load run's complete result file.
type Report struct {
	Schema   string   `json:"schema"`
	Scenario string   `json:"scenario"`
	Seed     int64    `json:"seed"`
	Config   Config   `json:"config"`
	Schedule Schedule `json:"schedule"`
	Results  Results  `json:"results"`

	// Points and Curve are wall-clock measurements; Wall stamps the run.
	// CanonicalBytes strips all three.
	Points []Point      `json:"points"`
	Curve  []CurvePoint `json:"curve"`
	Wall   Wall         `json:"wall"`
}

// Config echoes the requested run parameters (inputs, not measurements).
type Config struct {
	Nodes       int     `json:"nodes"`
	Topology    string  `json:"topology"`
	Services    int     `json:"services"`
	Ontologies  int     `json:"ontologies"`
	Mode        string  `json:"mode"` // closed | open
	Concurrency int     `json:"concurrency"`
	RatePerSec  float64 `json:"rate_per_sec,omitempty"`
	Ops         int     `json:"ops"`
	WarmupOps   int     `json:"warmup_ops"`
	// DurationMs is the soak deadline of a timed run: the plan cycles
	// open-loop until it passes (0 = classic fixed-op run; omitted from
	// the JSON so pre-soak reports keep their canonical bytes).
	DurationMs int64   `json:"duration_ms,omitempty"`
	SampleMs   int64   `json:"sample_ms"`
	ZipfSkew   float64 `json:"zipf_skew,omitempty"`
	Target     string  `json:"target,omitempty"` // live cluster, empty = simnet
}

// Schedule summarizes the seeded op plan — fully derived from the RNG
// before execution starts, so it is deterministic across runs and the
// comparator checks it for strict equality (workload drift would make
// latency comparisons meaningless).
type Schedule struct {
	PublishOps int `json:"publish_ops"`
	QueryOps   int `json:"query_ops"`
	ChurnOps   int `json:"churn_ops"`
	// HotService is the capability a flash crowd converges on.
	HotService string `json:"hot_service,omitempty"`
	// HotQueryOps counts scheduled queries targeting HotService.
	HotQueryOps int `json:"hot_query_ops,omitempty"`
	// TopShareMilli is the popularity share of the most-queried service
	// in thousandths (zipfian skew made visible without floats).
	TopShareMilli int `json:"top_share_milli"`
	// Faults names the armed fault-plan phases, in order.
	Faults []string `json:"faults,omitempty"`
}

// Results counts op outcomes. Deterministic for fault-free scenarios;
// fault scenarios may vary Failed/Partial run to run.
type Results struct {
	OK      int `json:"ok"`
	Empty   int `json:"empty"`
	Failed  int `json:"failed"`
	Partial int `json:"partial"`
	Hits    int `json:"hits"`
}

// Point is one series' end-of-run aggregate, in the BENCH_fig9/10.json
// field layout plus the p999 tail.
type Point struct {
	Services  int     `json:"services"`
	Series    string  `json:"series"`
	Reps      int     `json:"reps"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Nanos  int64   `json:"p50_ns"`
	P95Nanos  int64   `json:"p95_ns"`
	P99Nanos  int64   `json:"p99_ns"`
	P999Nanos int64   `json:"p999_ns"`
}

// CurvePoint is one warmup-trimmed observation window of a series: the
// latency distribution over time, not just at the end.
type CurvePoint struct {
	Series    string  `json:"series"`
	ElapsedMs int64   `json:"elapsed_ms"`
	WindowMs  int64   `json:"window_ms"`
	Count     uint64  `json:"count"`
	RatePerS  float64 `json:"rate_per_sec"`
	P50Nanos  int64   `json:"p50_ns"`
	P95Nanos  int64   `json:"p95_ns"`
	P99Nanos  int64   `json:"p99_ns"`
	P999Nanos int64   `json:"p999_ns"`
}

// Wall stamps the run with wall-clock context.
type Wall struct {
	StartedAt  time.Time `json:"started_at"`
	DurationMs int64     `json:"duration_ms"`
}

// Marshal renders the report as indented JSON with a trailing newline.
func (r *Report) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// CanonicalBytes renders the report with every wall-clock field zeroed:
// the part of the file that must be byte-identical across same-seed runs.
func (r *Report) CanonicalBytes() ([]byte, error) {
	c := *r
	c.Points = nil
	c.Curve = nil
	c.Wall = Wall{}
	return c.Marshal()
}

// WriteFile writes the report to path.
func (r *Report) WriteFile(path string) error {
	data, err := r.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadReport reads and validates a report file.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("slo: %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("slo: %s: schema %q, want %q", path, r.Schema, Schema)
	}
	return &r, nil
}
