package slo

import (
	"encoding/json"
	"fmt"
	"os"
)

// Tolerance is the band around a baseline inside which a run passes.
// Latency bands are ratios because absolute nanoseconds differ across
// machines; the power-of-two histograms behind the curves quantize to 2x
// steps, so any ratio below 2 degenerates to exact-bucket equality.
type Tolerance struct {
	// MaxQuantileRatio bounds run_quantile / baseline_quantile for each
	// of p50/p95/p99/p999. Zero picks the default of 4 (two bucket
	// steps of genuine regression headroom on shared CI hardware).
	MaxQuantileRatio float64 `json:"max_quantile_ratio"`
	// MinOpsRatio bounds run_ops_per_sec / baseline_ops_per_sec from
	// below. Zero picks the default of 0.25.
	MinOpsRatio float64 `json:"min_ops_ratio"`
	// MaxFailedOps bounds the run's absolute failed-op count. Negative
	// disables; zero means no failures tolerated.
	MaxFailedOps int `json:"max_failed_ops"`
	// StrictSchedule additionally requires the run's Schedule section to
	// equal the baseline's: same seed, same plan, or the latency diff is
	// comparing different workloads.
	StrictSchedule bool `json:"strict_schedule"`
}

func (t Tolerance) withDefaults() Tolerance {
	if t.MaxQuantileRatio <= 0 {
		t.MaxQuantileRatio = 4
	}
	if t.MinOpsRatio <= 0 {
		t.MinOpsRatio = 0.25
	}
	return t
}

// LoadTolerance reads a tolerance-band file (JSON Tolerance object).
func LoadTolerance(path string) (Tolerance, error) {
	var t Tolerance
	data, err := os.ReadFile(path)
	if err != nil {
		return t, err
	}
	if err := json.Unmarshal(data, &t); err != nil {
		return t, fmt.Errorf("slo: %s: %w", path, err)
	}
	return t, nil
}

// Violation is one exceeded band.
type Violation struct {
	Series   string  `json:"series"`
	Field    string  `json:"field"`
	Baseline float64 `json:"baseline"`
	Run      float64 `json:"run"`
	Limit    float64 `json:"limit"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s %s: run %.0f vs baseline %.0f exceeds limit %.0f",
		v.Series, v.Field, v.Run, v.Baseline, v.Limit)
}

// Compare diffs a run against its baseline and returns every violated
// band, empty when the run is within tolerance. Points are matched by
// (series, services); a run missing a baseline series is itself a
// violation (coverage must not silently shrink).
func Compare(baseline, run *Report, tol Tolerance) []Violation {
	tol = tol.withDefaults()
	var out []Violation

	if baseline.Scenario != run.Scenario {
		out = append(out, Violation{Series: "-", Field: "scenario"})
	}
	if tol.StrictSchedule {
		if baseline.Seed != run.Seed {
			out = append(out, Violation{Series: "-", Field: "seed",
				Baseline: float64(baseline.Seed), Run: float64(run.Seed)})
		}
		if bs, rs := canonicalSchedule(baseline.Schedule), canonicalSchedule(run.Schedule); bs != rs {
			out = append(out, Violation{Series: "-", Field: "schedule"})
		}
	}
	if tol.MaxFailedOps >= 0 && run.Results.Failed > tol.MaxFailedOps {
		out = append(out, Violation{Series: "-", Field: "failed_ops",
			Baseline: float64(baseline.Results.Failed),
			Run:      float64(run.Results.Failed),
			Limit:    float64(tol.MaxFailedOps)})
	}

	runPoints := make(map[string]Point, len(run.Points))
	for _, p := range run.Points {
		runPoints[pointKey(p)] = p
	}
	for _, base := range baseline.Points {
		rp, ok := runPoints[pointKey(base)]
		if !ok {
			out = append(out, Violation{Series: base.Series, Field: "missing_point"})
			continue
		}
		out = append(out, comparePoint(base, rp, tol)...)
	}
	return out
}

func pointKey(p Point) string { return fmt.Sprintf("%s/%d", p.Series, p.Services) }

func canonicalSchedule(s Schedule) string {
	data, _ := json.Marshal(s) //nolint:errcheck // plain struct cannot fail
	return string(data)
}

// comparePoint checks one series' latency quantiles and throughput.
func comparePoint(base, run Point, tol Tolerance) []Violation {
	var out []Violation
	quantile := func(field string, b, r int64) {
		if b <= 0 {
			return // empty baseline series carries no band
		}
		limit := float64(b) * tol.MaxQuantileRatio
		if float64(r) > limit {
			out = append(out, Violation{Series: run.Series, Field: field,
				Baseline: float64(b), Run: float64(r), Limit: limit})
		}
	}
	quantile("p50_ns", base.P50Nanos, run.P50Nanos)
	quantile("p95_ns", base.P95Nanos, run.P95Nanos)
	quantile("p99_ns", base.P99Nanos, run.P99Nanos)
	quantile("p999_ns", base.P999Nanos, run.P999Nanos)
	if base.OpsPerSec > 0 {
		floor := base.OpsPerSec * tol.MinOpsRatio
		if run.OpsPerSec < floor {
			out = append(out, Violation{Series: run.Series, Field: "ops_per_sec",
				Baseline: base.OpsPerSec, Run: run.OpsPerSec, Limit: floor})
		}
	}
	return out
}
