package gist

import (
	"testing"

	"sariadne/internal/codes"
	"sariadne/internal/gen"
	"sariadne/internal/match"
	"sariadne/internal/registry"
)

// TestGistAgreesOnEvaluationWorkload is the regression test for the DAG
// cover-span bug: on the full evaluation workload (22 ontologies with
// extra-parent DAG edges, 5 inputs / 3 outputs per capability), the
// rectangle-filtered directory must return exactly what the DAG directory
// returns for every derived request. The original rectangle bounds used
// primary intervals only and silently dropped matches reached through
// non-tree Covers intervals.
func TestGistAgreesOnEvaluationWorkload(t *testing.T) {
	w := gen.MustNewWorkload(gen.WorkloadConfig{
		Ontologies: 22, Services: 100,
		InputsPerCapability: 5, OutputsPerCapability: 3, Seed: 42,
	})
	reg, err := w.Registry(codes.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	dag := registry.NewDirectory(match.NewCodeMatcher(reg))
	g := NewDirectory(reg)
	for _, svc := range w.Services {
		if err := dag.Register(svc); err != nil {
			t.Fatal(err)
		}
		if err := g.Register(svc); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		req := w.Request(i, 1)
		a := dag.Query(req)
		b := g.Query(req)
		if len(a) != len(b) {
			t.Fatalf("request %d: dag=%d gist=%d", i, len(a), len(b))
		}
		for j := range a {
			if a[j].Entry.Capability.Name != b[j].Entry.Capability.Name || a[j].Distance != b[j].Distance {
				t.Fatalf("request %d result %d: %v vs %v", i, j, a[j], b[j])
			}
		}
	}
}
