package gist

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"sariadne/internal/codes"
	"sariadne/internal/match"
	"sariadne/internal/ontology"
	"sariadne/internal/profile"
	"sariadne/internal/registry"
)

func fixtureRegistry(t testing.TB) *codes.Registry {
	t.Helper()
	reg := codes.NewRegistry()
	for _, o := range []*ontology.Ontology{profile.MediaOntology(), profile.ServersOntology()} {
		reg.Register(codes.MustEncode(ontology.MustClassify(o), codes.DefaultParams))
	}
	return reg
}

func mediaRef(name string) ontology.Ref {
	return ontology.Ref{Ontology: profile.MediaOntologyURI, Name: name}
}

func serversRef(name string) ontology.Ref {
	return ontology.Ref{Ontology: profile.ServersOntologyURI, Name: name}
}

func capability(name, category, input, output string) *profile.Capability {
	c := &profile.Capability{Name: name, Category: serversRef(category)}
	if input != "" {
		c.Inputs = []ontology.Ref{mediaRef(input)}
	}
	if output != "" {
		c.Outputs = []ontology.Ref{mediaRef(output)}
	}
	return c
}

func service(name string, caps ...*profile.Capability) *profile.Service {
	return &profile.Service{Name: name, Provider: name + "-host", Provided: caps}
}

func TestTreeInsertSearch(t *testing.T) {
	tree := NewTree(4)
	if tree.Len() != 0 || tree.Depth() != 1 {
		t.Fatal("fresh tree wrong")
	}
	// Insert 100 unit rectangles on a diagonal; splits must occur.
	for i := 0; i < 100; i++ {
		f := float64(i)
		tree.Insert(Rect{XLo: f, XHi: f + 10, YLo: f, YHi: f + 10},
			&registry.Entry{Service: fmt.Sprintf("s%d", i)})
	}
	if tree.Len() != 100 {
		t.Fatalf("Len = %d", tree.Len())
	}
	if tree.Depth() < 2 {
		t.Fatalf("Depth = %d, want splits to have occurred", tree.Depth())
	}
	// Query: rect must contain point 55 in X and cover [50, 52] in Y.
	var got []string
	tree.Search(Query{InPoints: []float64{55}, OutLo: 50, OutHi: 52}, func(e *registry.Entry) {
		got = append(got, e.Service)
	})
	// Candidates: rects [i, i+10] containing x=55 → i in 45..55; and Y
	// covering [50,52] → i in 42..50. Intersection: 45..50.
	want := map[string]bool{}
	for i := 45; i <= 50; i++ {
		want[fmt.Sprintf("s%d", i)] = true
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for _, s := range got {
		if !want[s] {
			t.Fatalf("unexpected %s in %v", s, got)
		}
	}
}

func TestTreeSearchEmpty(t *testing.T) {
	tree := NewTree(4)
	called := false
	tree.Search(Query{Unbounded: true}, func(*registry.Entry) { called = true })
	if called {
		t.Fatal("visited entries in an empty tree")
	}
}

func TestDirectoryFigure1(t *testing.T) {
	d := NewDirectory(fixtureRegistry(t))
	if err := d.Register(profile.WorkstationService()); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	req := profile.PDAService().Required[0]
	results := d.Query(req)
	if len(results) != 1 || results[0].Entry.Capability.Name != "SendDigitalStream" || results[0].Distance != 3 {
		t.Fatalf("results = %v", results)
	}
}

func TestDirectoryRejectsUnknownConcepts(t *testing.T) {
	d := NewDirectory(fixtureRegistry(t))
	bad := service("s", &profile.Capability{
		Name:     "C",
		Category: serversRef("VideoServer"),
		Inputs:   []ontology.Ref{{Ontology: "http://unknown.example", Name: "X"}},
	})
	if err := d.Register(bad); err == nil {
		t.Fatal("registered capability over unknown ontology")
	}
	if err := d.Register(&profile.Service{}); err == nil {
		t.Fatal("registered invalid service")
	}
}

func TestDirectoryUnknownRequestOutput(t *testing.T) {
	d := NewDirectory(fixtureRegistry(t))
	if err := d.Register(profile.WorkstationService()); err != nil {
		t.Fatal(err)
	}
	req := profile.PDAService().Required[0].Clone()
	req.Outputs = []ontology.Ref{{Ontology: "http://unknown.example", Name: "X"}}
	if results := d.Query(req); len(results) != 0 {
		t.Fatalf("results = %v", results)
	}
}

// TestPropertyGistAgreesWithDAGDirectory: the rectangle-filtered directory
// returns exactly the same matches as the paper's DAG directory on random
// workloads — i.e., the geometric filter is sound and the exact match
// identical.
func TestPropertyGistAgreesWithDAGDirectory(t *testing.T) {
	categories := []string{"Server", "DigitalServer", "StreamingServer", "VideoServer", "SoundServer", "GameServer"}
	inputs := []string{"Resource", "DigitalResource", "VideoResource", "SoundResource", "GameResource", "Movie", ""}
	outputs := []string{"Stream", "VideoStream", "AudioStream", ""}

	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reg := fixtureRegistry(t)
		dag := registry.NewDirectory(match.NewCodeMatcher(reg))
		gist := NewDirectory(reg)
		n := rng.Intn(20) + 1
		for i := 0; i < n; i++ {
			c := capability(
				fmt.Sprintf("C%d", i),
				categories[rng.Intn(len(categories))],
				inputs[rng.Intn(len(inputs))],
				outputs[rng.Intn(len(outputs))],
			)
			s := service(fmt.Sprintf("s%d", i), c)
			if err := dag.Register(s); err != nil {
				return false
			}
			if err := gist.Register(s); err != nil {
				return false
			}
		}
		for trial := 0; trial < 5; trial++ {
			req := capability("Req",
				categories[rng.Intn(len(categories))],
				inputs[rng.Intn(len(inputs))],
				outputs[rng.Intn(len(outputs))],
			)
			a := dag.Query(req)
			b := gist.Query(req)
			if len(a) != len(b) {
				t.Logf("seed %d: dag %d vs gist %d results", seed, len(a), len(b))
				return false
			}
			for i := range a {
				if a[i].Entry.Capability.Name != b[i].Entry.Capability.Name || a[i].Distance != b[i].Distance {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeManyInsertsStayBalanced(t *testing.T) {
	tree := NewTree(8)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		x := rng.Float64() * 1000
		y := rng.Float64() * 1000
		tree.Insert(Rect{XLo: x, XHi: x + rng.Float64()*20, YLo: y, YHi: y + rng.Float64()*20},
			&registry.Entry{Service: fmt.Sprintf("s%d", i)})
	}
	if tree.Len() != 2000 {
		t.Fatalf("Len = %d", tree.Len())
	}
	if d := tree.Depth(); d < 3 || d > 12 {
		t.Fatalf("Depth = %d, suspicious balance", d)
	}
	// Spot check: everything is reachable.
	count := 0
	tree.Search(Query{Unbounded: true}, func(*registry.Entry) { count++ })
	if count != 2000 {
		t.Fatalf("full scan visited %d, want 2000", count)
	}
}
