// Package gist implements a simplified GiST-style spatial index over
// numerically encoded capability descriptions, after the directory design
// of Constantinescu & Faltings discussed in Section 3.1 of the paper:
// each capability maps to a rectangle in code space (input dimension ×
// output dimension) stored in an R-tree, so a query prunes by rectangle
// geometry before any exact semantic match runs.
//
// The package serves as the ablation backend DESIGN.md calls for: the
// same workloads can be run against the paper's capability-DAG directory
// (package registry), this rectangle index, and a flat scan, reproducing
// the qualitative result of [3] — queries in the order of fractions of a
// millisecond, insertions notably heavier than searches as the tree
// splits.
package gist

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"sariadne/internal/codes"
	"sariadne/internal/match"
	"sariadne/internal/profile"
	"sariadne/internal/registry"
)

// Rect is an axis-aligned rectangle in code space: X bounds the capability
// input codes, Y the output codes.
type Rect struct {
	XLo, XHi float64
	YLo, YHi float64
}

// fullRange marks a wildcard dimension (capability with no inputs or no
// outputs).
var fullRange = [2]float64{math.Inf(-1), math.Inf(1)}

// union grows r to cover other.
func (r Rect) union(other Rect) Rect {
	return Rect{
		XLo: math.Min(r.XLo, other.XLo), XHi: math.Max(r.XHi, other.XHi),
		YLo: math.Min(r.YLo, other.YLo), YHi: math.Max(r.YHi, other.YHi),
	}
}

// area returns the rectangle's area, with infinite dimensions clamped so
// the split heuristics stay finite.
func (r Rect) area() float64 {
	w := clampSpan(r.XHi - r.XLo)
	h := clampSpan(r.YHi - r.YLo)
	return w * h
}

func clampSpan(s float64) float64 {
	const cap = 1e9
	if math.IsInf(s, 1) || s > cap {
		return cap
	}
	if s < 0 {
		return 0
	}
	return s
}

// Query is the geometric pre-filter derived from a request capability:
// a stored rectangle qualifies when its X range contains at least one
// offered input point and its Y range covers the whole expected output
// span. Both conditions are necessary for the semantic Match relation, so
// pruning by them never drops a true match.
type Query struct {
	// InPoints are the request's offered input code points; empty means no
	// input constraint.
	InPoints []float64
	// OutLo/OutHi bound the request's expected output code points; a
	// request with no outputs sets Unbounded.
	OutLo, OutHi float64
	Unbounded    bool
}

func (q Query) matchesRect(r Rect) bool {
	if len(q.InPoints) > 0 && !(r.XLo == fullRange[0] && r.XHi == fullRange[1]) {
		any := false
		for _, p := range q.InPoints {
			if r.XLo <= p && p <= r.XHi {
				any = true
				break
			}
		}
		if !any {
			return false
		}
	}
	if !q.Unbounded {
		if !(r.YLo <= q.OutLo && q.OutHi <= r.YHi) {
			return false
		}
	}
	return true
}

// couldMatchMBR is the node-level pruning test: a child rectangle inside
// this MBR can only satisfy the query if the MBR does.
func (q Query) couldMatchMBR(r Rect) bool { return q.matchesRect(r) }

// entry is a stored rectangle with its advertisement.
type entry struct {
	rect Rect
	val  *registry.Entry
}

// node is an R-tree node.
type node struct {
	mbr      Rect
	leaf     bool
	entries  []entry // when leaf
	children []*node // when internal
}

// Tree is an in-memory R-tree with quadratic split. Not safe for
// concurrent mutation; Directory adds locking.
type Tree struct {
	root       *node
	maxEntries int
	size       int
}

// NewTree returns an empty tree with the given node capacity (minimum 4).
func NewTree(maxEntries int) *Tree {
	if maxEntries < 4 {
		maxEntries = 4
	}
	return &Tree{root: &node{leaf: true}, maxEntries: maxEntries}
}

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.size }

// Insert adds a rectangle.
func (t *Tree) Insert(r Rect, val *registry.Entry) {
	t.size++
	path := t.choosePath(r)
	leaf := path[len(path)-1]
	leaf.entries = append(leaf.entries, entry{rect: r, val: val})
	// Every node on the descent path must cover the new rectangle, or
	// Search would prune the branch that now holds it.
	for _, n := range path {
		if len(n.entries) == 1 && n.leaf && len(path) == 1 && t.size == 1 {
			n.mbr = r // very first entry: no previous MBR to union with
			continue
		}
		n.mbr = n.mbr.union(r)
	}
	if t.size == 1 {
		leaf.mbr = r
	}
	if len(leaf.entries) > t.maxEntries {
		t.splitAndPropagate(leaf)
	}
}

// choosePath descends to the leaf whose MBR needs least enlargement,
// recording the nodes visited (root first, leaf last).
func (t *Tree) choosePath(r Rect) []*node {
	n := t.root
	path := []*node{n}
	for !n.leaf {
		best := n.children[0]
		bestGrowth := math.Inf(1)
		for _, c := range n.children {
			growth := c.mbr.union(r).area() - c.mbr.area()
			if growth < bestGrowth || (growth == bestGrowth && c.mbr.area() < best.mbr.area()) {
				best, bestGrowth = c, growth
			}
		}
		n = best
		path = append(path, n)
	}
	return path
}

// splitAndPropagate rebuilds the tree bottom-up after an overflow. For
// simplicity and robustness the overflown node splits quadratically and,
// when the root overflows, a new root is grown.
func (t *Tree) splitAndPropagate(n *node) {
	// Find the parent chain by searching from the root (trees are small in
	// the directory sizes of the evaluation; clarity over pointer
	// bookkeeping).
	parent := t.findParent(t.root, n)
	a, b := t.splitNode(n)
	if parent == nil {
		t.root = &node{
			leaf:     false,
			children: []*node{a, b},
		}
		t.root.mbr = a.mbr.union(b.mbr)
		return
	}
	// Replace n with a and b in the parent.
	kept := parent.children[:0]
	for _, c := range parent.children {
		if c != n {
			kept = append(kept, c)
		}
	}
	parent.children = append(kept, a, b)
	parent.mbr = recomputeMBR(parent)
	if len(parent.children) > t.maxEntries {
		t.splitAndPropagate(parent)
	} else {
		t.recomputeUp(t.root)
	}
}

func (t *Tree) findParent(cur, target *node) *node {
	if cur.leaf {
		return nil
	}
	for _, c := range cur.children {
		if c == target {
			return cur
		}
		if p := t.findParent(c, target); p != nil {
			return p
		}
	}
	return nil
}

func (t *Tree) recomputeUp(n *node) Rect {
	if n.leaf {
		n.mbr = recomputeMBR(n)
		return n.mbr
	}
	first := true
	for _, c := range n.children {
		r := t.recomputeUp(c)
		if first {
			n.mbr = r
			first = false
		} else {
			n.mbr = n.mbr.union(r)
		}
	}
	return n.mbr
}

// splitNode performs a quadratic split of an overflown node.
func (t *Tree) splitNode(n *node) (*node, *node) {
	if n.leaf {
		groups := quadraticSplit(len(n.entries), func(i int) Rect { return n.entries[i].rect })
		a := &node{leaf: true}
		b := &node{leaf: true}
		for _, i := range groups[0] {
			a.entries = append(a.entries, n.entries[i])
		}
		for _, i := range groups[1] {
			b.entries = append(b.entries, n.entries[i])
		}
		a.mbr = recomputeMBR(a)
		b.mbr = recomputeMBR(b)
		return a, b
	}
	groups := quadraticSplit(len(n.children), func(i int) Rect { return n.children[i].mbr })
	a := &node{leaf: false}
	b := &node{leaf: false}
	for _, i := range groups[0] {
		a.children = append(a.children, n.children[i])
	}
	for _, i := range groups[1] {
		b.children = append(b.children, n.children[i])
	}
	a.mbr = recomputeMBR(a)
	b.mbr = recomputeMBR(b)
	return a, b
}

// quadraticSplit picks the two rectangles wasting the most area together
// as seeds and assigns the rest by least enlargement.
func quadraticSplit(n int, rect func(int) Rect) [2][]int {
	seedA, seedB := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			waste := rect(i).union(rect(j)).area() - rect(i).area() - rect(j).area()
			if waste > worst {
				worst = waste
				seedA, seedB = i, j
			}
		}
	}
	var groups [2][]int
	groups[0] = append(groups[0], seedA)
	groups[1] = append(groups[1], seedB)
	mbrA, mbrB := rect(seedA), rect(seedB)
	minFill := n / 3
	for i := 0; i < n; i++ {
		if i == seedA || i == seedB {
			continue
		}
		remaining := n - i - 1
		// Force balance when one group risks starving.
		switch {
		case len(groups[0])+remaining < minFill:
			groups[0] = append(groups[0], i)
			mbrA = mbrA.union(rect(i))
			continue
		case len(groups[1])+remaining < minFill:
			groups[1] = append(groups[1], i)
			mbrB = mbrB.union(rect(i))
			continue
		}
		growA := mbrA.union(rect(i)).area() - mbrA.area()
		growB := mbrB.union(rect(i)).area() - mbrB.area()
		if growA < growB || (growA == growB && len(groups[0]) <= len(groups[1])) {
			groups[0] = append(groups[0], i)
			mbrA = mbrA.union(rect(i))
		} else {
			groups[1] = append(groups[1], i)
			mbrB = mbrB.union(rect(i))
		}
	}
	return groups
}

func recomputeMBR(n *node) Rect {
	var out Rect
	first := true
	if n.leaf {
		for _, e := range n.entries {
			if first {
				out = e.rect
				first = false
			} else {
				out = out.union(e.rect)
			}
		}
	} else {
		for _, c := range n.children {
			if first {
				out = c.mbr
				first = false
			} else {
				out = out.union(c.mbr)
			}
		}
	}
	return out
}

// Search visits every stored entry whose rectangle satisfies the query,
// pruning whole subtrees by MBR.
func (t *Tree) Search(q Query, visit func(*registry.Entry)) {
	var walk func(n *node)
	walk = func(n *node) {
		if t.size == 0 {
			return
		}
		if !q.couldMatchMBR(n.mbr) {
			return
		}
		if n.leaf {
			for _, e := range n.entries {
				if q.matchesRect(e.rect) {
					visit(e.val)
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	if t.size > 0 {
		walk(t.root)
	}
}

// Depth returns the tree height (diagnostics).
func (t *Tree) Depth() int {
	d := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		d++
	}
	return d
}

// Directory is a capability directory backed by the rectangle index: the
// geometric filter selects candidates, then the exact encoded Match
// relation scores them. It answers the same queries as registry.Directory
// and is safe for concurrent use.
type Directory struct {
	mu      sync.RWMutex
	tree    *Tree // guarded by mu
	reg     *codes.Registry
	matcher *match.CodeMatcher
	byName  map[string][]*registry.Entry // guarded by mu
}

// NewDirectory builds a directory over encoded code tables.
func NewDirectory(reg *codes.Registry) *Directory {
	return &Directory{
		tree:    NewTree(8),
		reg:     reg,
		matcher: match.NewCodeMatcher(reg),
		byName:  make(map[string][]*registry.Entry),
	}
}

// rectFor computes a capability's rectangle. The provider side must bound
// everything its concepts SUBSUME, and with DAG hierarchies a concept's
// descendants can lie outside its primary interval (they are reached via
// the additional Covers intervals) — so provider bounds span the full
// cover set of each input/output concept.
func (d *Directory) rectFor(c *profile.Capability) (Rect, error) {
	r := Rect{XLo: fullRange[0], XHi: fullRange[1], YLo: fullRange[0], YHi: fullRange[1]}
	first := true
	for _, ref := range c.Inputs {
		lo, hi, err := d.coverSpan(ref.Ontology, ref.Name)
		if err != nil {
			return Rect{}, err
		}
		if first {
			r.XLo, r.XHi = lo, hi
			first = false
		} else {
			r.XLo = math.Min(r.XLo, lo)
			r.XHi = math.Max(r.XHi, hi)
		}
	}
	first = true
	for _, ref := range c.Outputs {
		lo, hi, err := d.coverSpan(ref.Ontology, ref.Name)
		if err != nil {
			return Rect{}, err
		}
		if first {
			r.YLo, r.YHi = lo, hi
			first = false
		} else {
			r.YLo = math.Min(r.YLo, lo)
			r.YHi = math.Max(r.YHi, hi)
		}
	}
	return r, nil
}

// interval returns a concept's primary interval (the request side: a
// request concept is the subsumed one, located by its own primary).
func (d *Directory) interval(uri, name string) (codes.Interval, error) {
	code, err := d.code(uri, name)
	if err != nil {
		return codes.Interval{}, err
	}
	return code.Primary, nil
}

// coverSpan returns the bounding span of a concept's full cover set.
func (d *Directory) coverSpan(uri, name string) (lo, hi float64, err error) {
	code, err := d.code(uri, name)
	if err != nil {
		return 0, 0, err
	}
	lo, hi = code.Primary.Lo, code.Primary.Hi
	for _, iv := range code.Covers {
		lo = math.Min(lo, iv.Lo)
		hi = math.Max(hi, iv.Hi)
	}
	return lo, hi, nil
}

func (d *Directory) code(uri, name string) (codes.Code, error) {
	t, ok := d.reg.Resolve(uri)
	if !ok {
		return codes.Code{}, fmt.Errorf("gist: no code table for %q", uri)
	}
	c, ok := t.Code(name)
	if !ok {
		return codes.Code{}, fmt.Errorf("gist: unknown concept %s#%s", uri, name)
	}
	return c, nil
}

// Register stores every provided capability of the service.
func (d *Directory) Register(s *profile.Service) error {
	if err := s.Validate(); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, c := range s.Provided {
		e := &registry.Entry{Capability: c.Clone(), Service: s.Name, Provider: s.Provider}
		r, err := d.rectFor(c)
		if err != nil {
			return err
		}
		d.tree.Insert(r, e)
		d.byName[s.Name] = append(d.byName[s.Name], e)
	}
	return nil
}

// Query returns matching advertisements sorted by semantic distance.
func (d *Directory) Query(req *profile.Capability) []registry.Result {
	d.mu.RLock()
	defer d.mu.RUnlock()
	q := Query{Unbounded: len(req.Outputs) == 0}
	for _, ref := range req.Inputs {
		if iv, err := d.interval(ref.Ontology, ref.Name); err == nil {
			q.InPoints = append(q.InPoints, iv.Lo)
		}
	}
	first := true
	for _, ref := range req.Outputs {
		iv, err := d.interval(ref.Ontology, ref.Name)
		if err != nil {
			// Unknown output concept: nothing can subsume it.
			return nil
		}
		if first {
			q.OutLo, q.OutHi = iv.Lo, iv.Hi
			first = false
		} else {
			q.OutLo = math.Min(q.OutLo, iv.Lo)
			q.OutHi = math.Max(q.OutHi, iv.Hi)
		}
	}

	var results []registry.Result
	d.tree.Search(q, func(e *registry.Entry) {
		if dist, ok := match.SemanticDistance(d.matcher, e.Capability, req); ok {
			if !profile.QoSSatisfies(e.Capability, req) {
				return
			}
			results = append(results, registry.Result{Entry: e, Distance: dist})
		}
	})
	sort.Slice(results, func(i, j int) bool {
		if results[i].Distance != results[j].Distance {
			return results[i].Distance < results[j].Distance
		}
		if results[i].Entry.Service != results[j].Entry.Service {
			return results[i].Entry.Service < results[j].Entry.Service
		}
		return results[i].Entry.Capability.Name < results[j].Entry.Capability.Name
	})
	return results
}

// Len returns the number of stored capabilities.
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.tree.Len()
}

// Depth exposes the tree height for diagnostics.
func (d *Directory) Depth() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.tree.Depth()
}
