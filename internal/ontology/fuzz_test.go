package ontology

import (
	"testing"
)

// FuzzDecode hardens the ontology parser: arbitrary bytes must never
// panic, and anything that decodes successfully must survive a
// marshal/decode round trip with classification intact.
func FuzzDecode(f *testing.F) {
	seed := [][]byte{
		[]byte(`<ontology uri="u" version="1"><class name="A"/><class name="B"><subClassOf>A</subClassOf></class></ontology>`),
		[]byte(`<ontology uri="u"><class name="A"><equivalentTo>A</equivalentTo></class></ontology>`),
		[]byte(`<ontology uri="u"><property name="p" domain="A"/></ontology>`),
		[]byte(`<ontology`),
		[]byte(``),
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		o, err := Unmarshal(data)
		if err != nil {
			return
		}
		out, err := Marshal(o)
		if err != nil {
			t.Fatalf("decoded ontology fails to marshal: %v", err)
		}
		back, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("marshal output fails to decode: %v", err)
		}
		cl1, err := Classify(o)
		if err != nil {
			t.Fatalf("decoded ontology fails to classify: %v", err)
		}
		cl2, err := Classify(back)
		if err != nil {
			t.Fatalf("round-tripped ontology fails to classify: %v", err)
		}
		if cl1.NumConcepts() != cl2.NumConcepts() {
			t.Fatalf("concept count changed across round trip: %d vs %d", cl1.NumConcepts(), cl2.NumConcepts())
		}
	})
}
