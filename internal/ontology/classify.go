package ontology

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Classified is the result of classifying an ontology: an explicit
// subsumption hierarchy over equivalence classes of named classes.
//
// Classification is the paper's step 2 ("loading and classifying the
// ontologies using a semantic reasoner", Section 2.4). A Classified value
// answers subsumption and level-distance queries directly; package codes
// turns it into an interval-encoded table so those queries become numeric
// comparisons at discovery time.
type Classified struct {
	uri     string
	version string

	// names maps every declared class name to its canonical index.
	names map[string]int
	// canon[i] is the sorted list of class names in equivalence class i.
	canon [][]string
	// parents[i] lists direct superclass indices (transitive reduction).
	parents [][]int
	// children[i] lists direct subclass indices (transitive reduction).
	children [][]int
	// ancestors[i] maps each strict-ancestor index to its minimum hop
	// distance (number of hierarchy levels) from i.
	ancestors []map[int]int
	// depth[i] is the minimum number of subclass edges from a root to i.
	depth []int
	// roots lists indices with no parents.
	roots []int
}

// Classify computes the subsumption hierarchy of o.
//
// Equivalence handling: classes connected by EquivalentTo axioms — or by
// subclass cycles, which entail mutual subsumption — are collapsed into a
// single canonical concept. Subclass axioms between members of the same
// equivalence class are dropped; all other axioms are lifted to the
// canonical concepts, and the transitive reduction plus transitive closure
// (with minimum hop counts) are computed.
//
// Classify returns an error if the ontology fails Validate.
func Classify(o *Ontology) (*Classified, error) {
	start := time.Now()
	defer classifySeconds.ObserveSince(start)
	if err := o.Validate(); err != nil {
		return nil, err
	}

	order := o.classOrder
	idx := make(map[string]int, len(order))
	for i, n := range order {
		idx[n] = i
	}

	// Union-find over declared classes for equivalence collapsing.
	uf := newUnionFind(len(order))
	for _, name := range order {
		c := o.classes[name]
		for _, eq := range c.EquivalentTo {
			uf.union(idx[name], idx[eq])
		}
	}

	// Subclass cycles entail mutual subsumption: find strongly connected
	// components of the subclass graph (quotiented by current unions) and
	// union each component.
	unionSubclassCycles(o, idx, uf)

	// Build canonical concept list in deterministic order: smallest member
	// declaration index first.
	repToCanon := make(map[int]int)
	var canonNames [][]string
	for i := range order {
		r := uf.find(i)
		if _, ok := repToCanon[r]; !ok {
			repToCanon[r] = len(canonNames)
			canonNames = append(canonNames, nil)
		}
	}
	names := make(map[string]int, len(order))
	for i, n := range order {
		ci := repToCanon[uf.find(i)]
		canonNames[ci] = append(canonNames[ci], n)
		names[n] = ci
	}
	for _, members := range canonNames {
		sort.Strings(members)
	}
	n := len(canonNames)

	// Direct-edge sets between canonical concepts (excluding self-loops).
	direct := make([]map[int]bool, n)
	for i := range direct {
		direct[i] = make(map[int]bool)
	}
	for _, name := range order {
		c := o.classes[name]
		from := names[name]
		for _, sup := range c.SubClassOf {
			to := names[sup]
			if to != from {
				direct[from][to] = true // from ⊑ to: to is a parent of from
			}
		}
	}

	cl := &Classified{
		uri:       o.URI,
		version:   o.Version,
		names:     names,
		canon:     canonNames,
		parents:   make([][]int, n),
		children:  make([][]int, n),
		ancestors: make([]map[int]int, n),
		depth:     make([]int, n),
	}

	// Transitive closure with minimum hop counts, computed per concept by
	// BFS over parent edges. Ontologies here are small (the paper's largest
	// is 99 classes), so O(n·(n+e)) is comfortably fast.
	for i := 0; i < n; i++ {
		dist := map[int]int{}
		frontier := []int{i}
		hops := 0
		seen := map[int]bool{i: true}
		for len(frontier) > 0 {
			hops++
			var next []int
			for _, u := range frontier {
				for p := range direct[u] {
					if !seen[p] {
						seen[p] = true
						dist[p] = hops
						next = append(next, p)
					}
				}
			}
			frontier = next
		}
		cl.ancestors[i] = dist
	}

	// Transitive reduction: a direct edge (i -> p) is redundant when some
	// other strict ancestor of i also has p as a strict ancestor.
	for i := 0; i < n; i++ {
		for p := range direct[i] {
			redundant := false
			for a := range cl.ancestors[i] {
				if a == p {
					continue
				}
				if _, ok := cl.ancestors[a][p]; ok {
					redundant = true
					break
				}
			}
			if !redundant {
				cl.parents[i] = append(cl.parents[i], p)
				cl.children[p] = append(cl.children[p], i)
			}
		}
		sort.Ints(cl.parents[i])
	}
	for i := range cl.children {
		sort.Ints(cl.children[i])
	}

	// Roots and min-depth levels (BFS down from roots).
	for i := 0; i < n; i++ {
		if len(cl.parents[i]) == 0 {
			cl.roots = append(cl.roots, i)
		}
		cl.depth[i] = math.MaxInt
	}
	frontier := append([]int(nil), cl.roots...)
	d := 0
	for len(frontier) > 0 {
		var next []int
		for _, u := range frontier {
			if cl.depth[u] <= d {
				continue
			}
			cl.depth[u] = d
			next = append(next, cl.children[u]...)
		}
		frontier = next
		d++
	}
	return cl, nil
}

// MustClassify is Classify that panics on error; for static fixtures.
func MustClassify(o *Ontology) *Classified {
	cl, err := Classify(o)
	if err != nil {
		panic(err)
	}
	return cl
}

// URI returns the URI of the classified ontology.
func (c *Classified) URI() string { return c.uri }

// Version returns the ontology version the classification was derived from.
func (c *Classified) Version() string { return c.version }

// NumConcepts returns the number of canonical concepts (equivalence classes).
func (c *Classified) NumConcepts() int { return len(c.canon) }

// Concept returns the canonical index for a class name. The second result
// is false if the name is not declared.
func (c *Classified) Concept(name string) (int, bool) {
	i, ok := c.names[name]
	return i, ok
}

// Members returns the class names collapsed into canonical concept i.
func (c *Classified) Members(i int) []string {
	return append([]string(nil), c.canon[i]...)
}

// CanonicalName returns a deterministic representative name for concept i
// (the lexicographically smallest member).
func (c *Classified) CanonicalName(i int) string { return c.canon[i][0] }

// Parents returns the direct superclass indices of concept i in the
// transitive reduction.
func (c *Classified) Parents(i int) []int {
	return append([]int(nil), c.parents[i]...)
}

// Children returns the direct subclass indices of concept i.
func (c *Classified) Children(i int) []int {
	return append([]int(nil), c.children[i]...)
}

// Roots returns the indices of concepts with no superclass.
func (c *Classified) Roots() []int { return append([]int(nil), c.roots...) }

// Depth returns the minimum number of subclass edges from any root to i.
func (c *Classified) Depth(i int) int { return c.depth[i] }

// SubsumesIndex reports whether concept a subsumes concept b (a is b, or a
// is a strict ancestor of b).
func (c *Classified) SubsumesIndex(a, b int) bool {
	if a == b {
		return true
	}
	_, ok := c.ancestors[b][a]
	return ok
}

// Subsumes reports whether the class named a subsumes the class named b.
// Unknown names never subsume anything.
func (c *Classified) Subsumes(a, b string) bool {
	ai, ok := c.names[a]
	if !ok {
		return false
	}
	bi, ok := c.names[b]
	if !ok {
		return false
	}
	return c.SubsumesIndex(ai, bi)
}

// DistanceIndex implements the paper's d(concept1, concept2): if concept a
// subsumes concept b it returns the number of hierarchy levels separating
// them (minimum hop count; 0 when equivalent) and true. Otherwise it
// returns 0 and false (the paper's NULL).
func (c *Classified) DistanceIndex(a, b int) (int, bool) {
	if a == b {
		return 0, true
	}
	d, ok := c.ancestors[b][a]
	return d, ok
}

// Distance is DistanceIndex over class names.
func (c *Classified) Distance(a, b string) (int, bool) {
	ai, ok := c.names[a]
	if !ok {
		return 0, false
	}
	bi, ok := c.names[b]
	if !ok {
		return 0, false
	}
	return c.DistanceIndex(ai, bi)
}

// AncestorsIndex returns a copy of the strict-ancestor distance map of i.
func (c *Classified) AncestorsIndex(i int) map[int]int {
	out := make(map[int]int, len(c.ancestors[i]))
	for k, v := range c.ancestors[i] {
		out[k] = v
	}
	return out
}

// String summarizes the hierarchy, mainly for debugging and tests.
func (c *Classified) String() string {
	return fmt.Sprintf("classified %s v%s: %d concepts, %d roots", c.uri, c.version, len(c.canon), len(c.roots))
}

// unionSubclassCycles unions together classes that participate in subclass
// cycles (mutual subsumption implies equivalence). It runs Tarjan's SCC
// algorithm iteratively over the subclass graph quotiented by the current
// union-find state.
func unionSubclassCycles(o *Ontology, idx map[string]int, uf *unionFind) {
	n := len(o.classOrder)
	adj := make([][]int, n)
	for i, name := range o.classOrder {
		c := o.classes[name]
		for _, sup := range c.SubClassOf {
			adj[uf.find(i)] = append(adj[uf.find(i)], uf.find(idx[sup]))
		}
	}

	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var stack []int
	counter := 0

	type frame struct {
		v  int
		ei int
	}
	for s := 0; s < n; s++ {
		v0 := uf.find(s)
		if index[v0] != unvisited {
			continue
		}
		var frames []frame
		frames = append(frames, frame{v: v0})
		index[v0] = counter
		low[v0] = counter
		counter++
		stack = append(stack, v0)
		onStack[v0] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// finished v
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
			if low[v] == index[v] {
				// pop component
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				for _, w := range comp[1:] {
					uf.union(comp[0], w)
				}
			}
		}
	}
}

// unionFind is a standard disjoint-set structure with path compression and
// union by rank.
type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}
