package ontology

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"time"
)

// The XML vocabulary is a deliberately small OWL subset. A document looks
// like:
//
//	<ontology uri="http://amigo.example/ont/media" version="1">
//	  <class name="Resource"/>
//	  <class name="DigitalResource">
//	    <subClassOf>Resource</subClassOf>
//	    <label>Digital resource</label>
//	  </class>
//	  <class name="Movie">
//	    <subClassOf>DigitalResource</subClassOf>
//	    <equivalentTo>Film</equivalentTo>
//	  </class>
//	  <class name="Film"/>
//	  <property name="hasTitle" domain="DigitalResource" range="Title"/>
//	</ontology>
//
// Parsing this vocabulary is what the evaluation's "time to parse" phases
// measure for ontologies; it intentionally goes through encoding/xml the
// same way real OWL tooling goes through an RDF/XML parser.

type xmlOntology struct {
	XMLName    xml.Name      `xml:"ontology"`
	URI        string        `xml:"uri,attr"`
	Version    string        `xml:"version,attr"`
	Classes    []xmlClass    `xml:"class"`
	Properties []xmlProperty `xml:"property"`
}

type xmlClass struct {
	Name         string   `xml:"name,attr"`
	SubClassOf   []string `xml:"subClassOf"`
	EquivalentTo []string `xml:"equivalentTo"`
	Label        string   `xml:"label,omitempty"`
	Comment      string   `xml:"comment,omitempty"`
}

type xmlProperty struct {
	Name          string   `xml:"name,attr"`
	Domain        string   `xml:"domain,attr,omitempty"`
	Range         string   `xml:"range,attr,omitempty"`
	SubPropertyOf []string `xml:"subPropertyOf"`
}

// Decode parses an ontology document from r and validates it.
func Decode(r io.Reader) (*Ontology, error) {
	start := time.Now()
	defer parseSeconds.ObserveSince(start)
	var doc xmlOntology
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("ontology: decode: %w", err)
	}
	if doc.URI == "" {
		return nil, fmt.Errorf("ontology: document missing uri attribute")
	}
	o := New(doc.URI, doc.Version)
	for _, c := range doc.Classes {
		if err := o.AddClass(Class{
			Name:         c.Name,
			SubClassOf:   c.SubClassOf,
			EquivalentTo: c.EquivalentTo,
			Label:        c.Label,
			Comment:      c.Comment,
		}); err != nil {
			return nil, err
		}
	}
	for _, p := range doc.Properties {
		if err := o.AddProperty(Property{
			Name:          p.Name,
			Domain:        p.Domain,
			Range:         p.Range,
			SubPropertyOf: p.SubPropertyOf,
		}); err != nil {
			return nil, err
		}
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return o, nil
}

// Unmarshal parses an ontology document from a byte slice.
func Unmarshal(data []byte) (*Ontology, error) {
	return Decode(bytes.NewReader(data))
}

// Encode writes the ontology as an XML document to w.
func Encode(w io.Writer, o *Ontology) error {
	doc := xmlOntology{URI: o.URI, Version: o.Version}
	for _, c := range o.Classes() {
		doc.Classes = append(doc.Classes, xmlClass{
			Name:         c.Name,
			SubClassOf:   c.SubClassOf,
			EquivalentTo: c.EquivalentTo,
			Label:        c.Label,
			Comment:      c.Comment,
		})
	}
	for _, p := range o.Properties() {
		doc.Properties = append(doc.Properties, xmlProperty{
			Name:          p.Name,
			Domain:        p.Domain,
			Range:         p.Range,
			SubPropertyOf: p.SubPropertyOf,
		})
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("ontology: encode: %w", err)
	}
	return enc.Close()
}

// Marshal renders the ontology as an XML document.
func Marshal(o *Ontology) ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, o); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
