// Package ontology implements the OWL-subset ontology model that underlies
// every semantic service description in the system: named classes related by
// subclass and equivalence axioms, and named properties with domains and
// ranges.
//
// The package covers the "load" half of the paper's expensive
// "load and classify ontologies" phase (Section 2.4 of Ben Mokhtar et al.,
// Middleware 2006): ontologies are parsed from a self-contained XML
// vocabulary (see codec.go) and classified into an explicit subsumption
// hierarchy (see classify.go). Classified hierarchies are then encoded by
// package codes so that runtime subsumption checks reduce to numeric
// interval comparisons.
package ontology

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Common errors returned by ontology construction and lookup.
var (
	// ErrDuplicateClass is returned when a class name is declared twice.
	ErrDuplicateClass = errors.New("ontology: duplicate class")
	// ErrDuplicateProperty is returned when a property name is declared twice.
	ErrDuplicateProperty = errors.New("ontology: duplicate property")
	// ErrUnknownClass is returned when an axiom references an undeclared class.
	ErrUnknownClass = errors.New("ontology: unknown class")
	// ErrEmptyName is returned when a class or property has an empty name.
	ErrEmptyName = errors.New("ontology: empty name")
)

// Class is a named concept. SubClassOf and EquivalentTo reference other
// classes of the same ontology by local name.
type Class struct {
	// Name is the local name of the class, unique within its ontology.
	Name string
	// SubClassOf lists the local names of the direct superclasses.
	SubClassOf []string
	// EquivalentTo lists local names of classes declared equivalent to this
	// one. Equivalence is symmetric; declaring it on either side suffices.
	EquivalentTo []string
	// Label is an optional human-readable label.
	Label string
	// Comment is optional free-form documentation.
	Comment string
}

// Property is a named relationship between classes.
type Property struct {
	// Name is the local name of the property, unique within its ontology.
	Name string
	// Domain and Range are local class names; either may be empty when
	// unconstrained.
	Domain string
	Range  string
	// SubPropertyOf lists local names of direct super-properties.
	SubPropertyOf []string
}

// Ontology is a set of classes and properties published under a URI.
// The zero value is not usable; construct with New and populate with
// AddClass/AddProperty, or parse one with Decode.
type Ontology struct {
	// URI identifies the ontology; concept references in service
	// descriptions are (URI, class name) pairs.
	URI string
	// Version is bumped whenever the ontology evolves; encoded code tables
	// record the version they were derived from (Section 3.2 of the paper).
	Version string

	classes    map[string]*Class
	properties map[string]*Property
	classOrder []string // declaration order, for deterministic iteration
	propOrder  []string
}

// New returns an empty ontology with the given URI and version.
func New(uri, version string) *Ontology {
	return &Ontology{
		URI:        uri,
		Version:    version,
		classes:    make(map[string]*Class),
		properties: make(map[string]*Property),
	}
}

// AddClass adds a class declaration. The class is copied; later mutation of
// the argument does not affect the ontology.
func (o *Ontology) AddClass(c Class) error {
	if c.Name == "" {
		return ErrEmptyName
	}
	if _, ok := o.classes[c.Name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateClass, c.Name)
	}
	cc := c
	cc.SubClassOf = append([]string(nil), c.SubClassOf...)
	cc.EquivalentTo = append([]string(nil), c.EquivalentTo...)
	o.classes[c.Name] = &cc
	o.classOrder = append(o.classOrder, c.Name)
	return nil
}

// MustAddClass is AddClass that panics on error; intended for tests and
// in-code fixture construction where the input is static.
func (o *Ontology) MustAddClass(c Class) {
	if err := o.AddClass(c); err != nil {
		panic(err)
	}
}

// AddProperty adds a property declaration. The property is copied.
func (o *Ontology) AddProperty(p Property) error {
	if p.Name == "" {
		return ErrEmptyName
	}
	if _, ok := o.properties[p.Name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateProperty, p.Name)
	}
	pp := p
	pp.SubPropertyOf = append([]string(nil), p.SubPropertyOf...)
	o.properties[p.Name] = &pp
	o.propOrder = append(o.propOrder, p.Name)
	return nil
}

// Class returns the class with the given local name, or nil.
func (o *Ontology) Class(name string) *Class {
	return o.classes[name]
}

// Property returns the property with the given local name, or nil.
func (o *Ontology) Property(name string) *Property {
	return o.properties[name]
}

// Classes returns all class declarations in declaration order.
func (o *Ontology) Classes() []*Class {
	out := make([]*Class, 0, len(o.classOrder))
	for _, n := range o.classOrder {
		out = append(out, o.classes[n])
	}
	return out
}

// Properties returns all property declarations in declaration order.
func (o *Ontology) Properties() []*Property {
	out := make([]*Property, 0, len(o.propOrder))
	for _, n := range o.propOrder {
		out = append(out, o.properties[n])
	}
	return out
}

// NumClasses returns the number of declared classes.
func (o *Ontology) NumClasses() int { return len(o.classes) }

// NumProperties returns the number of declared properties.
func (o *Ontology) NumProperties() int { return len(o.properties) }

// Validate checks referential integrity: every class name referenced by a
// subclass, equivalence, domain or range axiom must be declared.
func (o *Ontology) Validate() error {
	for _, name := range o.classOrder {
		c := o.classes[name]
		for _, sup := range c.SubClassOf {
			if _, ok := o.classes[sup]; !ok {
				return fmt.Errorf("%w: class %q has undeclared superclass %q", ErrUnknownClass, name, sup)
			}
		}
		for _, eq := range c.EquivalentTo {
			if _, ok := o.classes[eq]; !ok {
				return fmt.Errorf("%w: class %q declared equivalent to undeclared %q", ErrUnknownClass, name, eq)
			}
		}
	}
	for _, name := range o.propOrder {
		p := o.properties[name]
		if p.Domain != "" {
			if _, ok := o.classes[p.Domain]; !ok {
				return fmt.Errorf("%w: property %q has undeclared domain %q", ErrUnknownClass, name, p.Domain)
			}
		}
		if p.Range != "" {
			if _, ok := o.classes[p.Range]; !ok {
				return fmt.Errorf("%w: property %q has undeclared range %q", ErrUnknownClass, name, p.Range)
			}
		}
		for _, sup := range p.SubPropertyOf {
			if _, ok := o.properties[sup]; !ok {
				return fmt.Errorf("%w: property %q has undeclared super-property %q", ErrUnknownClass, name, sup)
			}
		}
	}
	return nil
}

// Ref is a fully qualified concept reference: an ontology URI plus a local
// class name. Service inputs, outputs and properties are Refs.
type Ref struct {
	Ontology string
	Name     string
}

// String renders the reference in the conventional uri#name form.
func (r Ref) String() string {
	return r.Ontology + "#" + r.Name
}

// IsZero reports whether the reference is empty.
func (r Ref) IsZero() bool { return r.Ontology == "" && r.Name == "" }

// ParseRef parses a uri#name string into a Ref. The last '#' separates the
// ontology URI from the local name.
func ParseRef(s string) (Ref, error) {
	i := strings.LastIndexByte(s, '#')
	if i < 0 || i == len(s)-1 {
		return Ref{}, fmt.Errorf("ontology: malformed concept reference %q (want uri#name)", s)
	}
	return Ref{Ontology: s[:i], Name: s[i+1:]}, nil
}

// SortRefs sorts a slice of Refs lexicographically (ontology, then name).
func SortRefs(refs []Ref) {
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Ontology != refs[j].Ontology {
			return refs[i].Ontology < refs[j].Ontology
		}
		return refs[i].Name < refs[j].Name
	})
}
