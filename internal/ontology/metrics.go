package ontology

import "sariadne/internal/telemetry"

// Fig. 2 of the paper decomposes semantic matching into parse, classify
// and match phases; these timers expose the first two for ontology
// documents (profile documents and the match phase are timed in their
// own packages).
var (
	parseSeconds = telemetry.NewHistogram("ontology_parse_seconds",
		"latency of parsing one ontology XML document")
	classifySeconds = telemetry.NewHistogram("ontology_classify_seconds",
		"latency of classifying one ontology (equivalence collapse + closure)")
)
