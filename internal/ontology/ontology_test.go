package ontology

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// mediaOntology builds the ontology from Figure 1 of the paper (digital
// resources side), used as a fixture across packages.
func mediaOntology(t testing.TB) *Ontology {
	t.Helper()
	o := New("http://amigo.example/ont/media", "1")
	for _, c := range []Class{
		{Name: "Resource"},
		{Name: "DigitalResource", SubClassOf: []string{"Resource"}},
		{Name: "VideoResource", SubClassOf: []string{"DigitalResource"}},
		{Name: "SoundResource", SubClassOf: []string{"DigitalResource"}},
		{Name: "GameResource", SubClassOf: []string{"DigitalResource"}},
		{Name: "Movie", SubClassOf: []string{"VideoResource"}},
		{Name: "Film", EquivalentTo: []string{"Movie"}},
		{Name: "Stream"},
		{Name: "VideoStream", SubClassOf: []string{"Stream"}},
	} {
		if err := o.AddClass(c); err != nil {
			t.Fatalf("AddClass(%q): %v", c.Name, err)
		}
	}
	if err := o.AddProperty(Property{Name: "hasTitle", Domain: "DigitalResource"}); err != nil {
		t.Fatalf("AddProperty: %v", err)
	}
	return o
}

func TestAddClassDuplicate(t *testing.T) {
	o := New("u", "1")
	if err := o.AddClass(Class{Name: "A"}); err != nil {
		t.Fatalf("first add: %v", err)
	}
	err := o.AddClass(Class{Name: "A"})
	if !errors.Is(err, ErrDuplicateClass) {
		t.Fatalf("got %v, want ErrDuplicateClass", err)
	}
}

func TestAddClassEmptyName(t *testing.T) {
	o := New("u", "1")
	if err := o.AddClass(Class{}); !errors.Is(err, ErrEmptyName) {
		t.Fatalf("got %v, want ErrEmptyName", err)
	}
	if err := o.AddProperty(Property{}); !errors.Is(err, ErrEmptyName) {
		t.Fatalf("got %v, want ErrEmptyName", err)
	}
}

func TestAddPropertyDuplicate(t *testing.T) {
	o := New("u", "1")
	if err := o.AddProperty(Property{Name: "p"}); err != nil {
		t.Fatalf("first add: %v", err)
	}
	if err := o.AddProperty(Property{Name: "p"}); !errors.Is(err, ErrDuplicateProperty) {
		t.Fatalf("got %v, want ErrDuplicateProperty", err)
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		build   func(*Ontology)
		wantErr bool
	}{
		{
			name: "valid",
			build: func(o *Ontology) {
				o.MustAddClass(Class{Name: "A"})
				o.MustAddClass(Class{Name: "B", SubClassOf: []string{"A"}})
			},
		},
		{
			name: "undeclared superclass",
			build: func(o *Ontology) {
				o.MustAddClass(Class{Name: "B", SubClassOf: []string{"Nope"}})
			},
			wantErr: true,
		},
		{
			name: "undeclared equivalent",
			build: func(o *Ontology) {
				o.MustAddClass(Class{Name: "B", EquivalentTo: []string{"Nope"}})
			},
			wantErr: true,
		},
		{
			name: "undeclared domain",
			build: func(o *Ontology) {
				if err := o.AddProperty(Property{Name: "p", Domain: "Nope"}); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: true,
		},
		{
			name: "undeclared range",
			build: func(o *Ontology) {
				if err := o.AddProperty(Property{Name: "p", Range: "Nope"}); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: true,
		},
		{
			name: "undeclared super-property",
			build: func(o *Ontology) {
				if err := o.AddProperty(Property{Name: "p", SubPropertyOf: []string{"q"}}); err != nil {
					t.Fatal(err)
				}
			},
			wantErr: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			o := New("u", "1")
			tt.build(o)
			err := o.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
			if tt.wantErr && !errors.Is(err, ErrUnknownClass) {
				t.Fatalf("error %v does not wrap ErrUnknownClass", err)
			}
		})
	}
}

func TestClassifySubsumption(t *testing.T) {
	cl := MustClassify(mediaOntology(t))

	tests := []struct {
		a, b string
		want bool
	}{
		{"Resource", "Movie", true},
		{"Resource", "Resource", true},
		{"DigitalResource", "VideoResource", true},
		{"VideoResource", "DigitalResource", false},
		{"Movie", "Film", true},     // equivalent both ways
		{"Film", "Movie", true},     //
		{"Stream", "Movie", false},  // unrelated hierarchies
		{"Movie", "Unknown", false}, // unknown names never subsume
		{"Unknown", "Movie", false},
	}
	for _, tt := range tests {
		if got := cl.Subsumes(tt.a, tt.b); got != tt.want {
			t.Errorf("Subsumes(%q, %q) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestClassifyDistance(t *testing.T) {
	cl := MustClassify(mediaOntology(t))

	tests := []struct {
		a, b   string
		want   int
		wantOK bool
	}{
		{"Resource", "Resource", 0, true},
		{"Movie", "Film", 0, true},
		{"Resource", "DigitalResource", 1, true},
		{"Resource", "Movie", 3, true},
		{"DigitalResource", "Movie", 2, true},
		{"Movie", "Resource", 0, false},
		{"Stream", "Movie", 0, false},
	}
	for _, tt := range tests {
		got, ok := cl.Distance(tt.a, tt.b)
		if got != tt.want || ok != tt.wantOK {
			t.Errorf("Distance(%q, %q) = (%d, %v), want (%d, %v)", tt.a, tt.b, got, ok, tt.want, tt.wantOK)
		}
	}
}

func TestClassifyEquivalenceCollapse(t *testing.T) {
	cl := MustClassify(mediaOntology(t))
	mi, ok := cl.Concept("Movie")
	if !ok {
		t.Fatal("Movie not found")
	}
	fi, ok := cl.Concept("Film")
	if !ok {
		t.Fatal("Film not found")
	}
	if mi != fi {
		t.Fatalf("Movie and Film have distinct canonical concepts %d, %d", mi, fi)
	}
	members := cl.Members(mi)
	if len(members) != 2 || members[0] != "Film" || members[1] != "Movie" {
		t.Fatalf("Members = %v, want [Film Movie]", members)
	}
	if cl.CanonicalName(mi) != "Film" {
		t.Fatalf("CanonicalName = %q, want Film", cl.CanonicalName(mi))
	}
}

func TestClassifySubclassCycleIsEquivalence(t *testing.T) {
	o := New("u", "1")
	o.MustAddClass(Class{Name: "A", SubClassOf: []string{"C"}})
	o.MustAddClass(Class{Name: "B", SubClassOf: []string{"A"}})
	o.MustAddClass(Class{Name: "C", SubClassOf: []string{"B"}})
	o.MustAddClass(Class{Name: "D", SubClassOf: []string{"A"}})
	cl := MustClassify(o)

	ai, _ := cl.Concept("A")
	bi, _ := cl.Concept("B")
	ci, _ := cl.Concept("C")
	if ai != bi || bi != ci {
		t.Fatalf("cycle not collapsed: A=%d B=%d C=%d", ai, bi, ci)
	}
	if !cl.Subsumes("C", "D") {
		t.Error("C should subsume D through the collapsed cycle")
	}
	if d, ok := cl.Distance("B", "D"); !ok || d != 1 {
		t.Errorf("Distance(B, D) = (%d, %v), want (1, true)", d, ok)
	}
	if cl.NumConcepts() != 2 {
		t.Errorf("NumConcepts = %d, want 2", cl.NumConcepts())
	}
}

func TestClassifyMultipleInheritanceMinLevels(t *testing.T) {
	// Diamond with unequal path lengths:
	//   Top ← Mid ← Low ← X   and   Top ← X
	o := New("u", "1")
	o.MustAddClass(Class{Name: "Top"})
	o.MustAddClass(Class{Name: "Mid", SubClassOf: []string{"Top"}})
	o.MustAddClass(Class{Name: "Low", SubClassOf: []string{"Mid"}})
	o.MustAddClass(Class{Name: "X", SubClassOf: []string{"Low", "Top"}})
	cl := MustClassify(o)

	// The direct X→Top edge is redundant in the transitive reduction
	// (Top is reachable via Low), but the minimum hop distance keeps the
	// reduction-independent value derived from the full closure.
	if d, ok := cl.Distance("Top", "X"); !ok || d != 1 {
		t.Errorf("Distance(Top, X) = (%d, %v), want (1, true)", d, ok)
	}
	if d, ok := cl.Distance("Mid", "X"); !ok || d != 2 {
		t.Errorf("Distance(Mid, X) = (%d, %v), want (2, true)", d, ok)
	}

	xi, _ := cl.Concept("X")
	parents := cl.Parents(xi)
	if len(parents) != 1 {
		t.Fatalf("Parents(X) = %v, want single parent (transitive reduction keeps Low only... or Top)", parents)
	}
}

func TestClassifyTransitiveReduction(t *testing.T) {
	o := New("u", "1")
	o.MustAddClass(Class{Name: "A"})
	o.MustAddClass(Class{Name: "B", SubClassOf: []string{"A"}})
	o.MustAddClass(Class{Name: "C", SubClassOf: []string{"B", "A"}}) // A redundant
	cl := MustClassify(o)

	ci, _ := cl.Concept("C")
	bi, _ := cl.Concept("B")
	parents := cl.Parents(ci)
	if len(parents) != 1 || parents[0] != bi {
		t.Fatalf("Parents(C) = %v, want [%d] (B only)", parents, bi)
	}
}

func TestClassifyRootsAndDepth(t *testing.T) {
	cl := MustClassify(mediaOntology(t))
	roots := cl.Roots()
	if len(roots) != 2 {
		t.Fatalf("Roots = %v, want 2 roots (Resource, Stream)", roots)
	}
	ri, _ := cl.Concept("Resource")
	if cl.Depth(ri) != 0 {
		t.Errorf("Depth(Resource) = %d, want 0", cl.Depth(ri))
	}
	mi, _ := cl.Concept("Movie")
	if cl.Depth(mi) != 3 {
		t.Errorf("Depth(Movie) = %d, want 3", cl.Depth(mi))
	}
}

func TestClassifyRejectsInvalid(t *testing.T) {
	o := New("u", "1")
	o.MustAddClass(Class{Name: "A", SubClassOf: []string{"Missing"}})
	if _, err := Classify(o); err == nil {
		t.Fatal("Classify accepted an invalid ontology")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	o := mediaOntology(t)
	data, err := Marshal(o)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.URI != o.URI || back.Version != o.Version {
		t.Fatalf("URI/Version mismatch: got (%q,%q), want (%q,%q)", back.URI, back.Version, o.URI, o.Version)
	}
	if back.NumClasses() != o.NumClasses() || back.NumProperties() != o.NumProperties() {
		t.Fatalf("size mismatch after round trip")
	}
	for _, c := range o.Classes() {
		bc := back.Class(c.Name)
		if bc == nil {
			t.Fatalf("class %q lost in round trip", c.Name)
		}
		if len(bc.SubClassOf) != len(c.SubClassOf) || len(bc.EquivalentTo) != len(c.EquivalentTo) {
			t.Errorf("class %q axioms changed in round trip", c.Name)
		}
	}
	// Classification of the round-tripped ontology must agree.
	cl1 := MustClassify(o)
	cl2 := MustClassify(back)
	for _, a := range o.Classes() {
		for _, b := range o.Classes() {
			if cl1.Subsumes(a.Name, b.Name) != cl2.Subsumes(a.Name, b.Name) {
				t.Fatalf("subsumption disagreement after round trip: %s vs %s", a.Name, b.Name)
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name string
		doc  string
	}{
		{"not xml", "this is not xml"},
		{"missing uri", `<ontology version="1"><class name="A"/></ontology>`},
		{"duplicate class", `<ontology uri="u"><class name="A"/><class name="A"/></ontology>`},
		{"dangling subclass", `<ontology uri="u"><class name="A"><subClassOf>B</subClassOf></class></ontology>`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(strings.NewReader(tt.doc)); err == nil {
				t.Fatal("Decode accepted invalid document")
			}
		})
	}
}

func TestEncodeDeterministic(t *testing.T) {
	o := mediaOntology(t)
	var a, b bytes.Buffer
	if err := Encode(&a, o); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&b, o); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("Encode is not deterministic")
	}
}

func TestParseRef(t *testing.T) {
	tests := []struct {
		in      string
		want    Ref
		wantErr bool
	}{
		{"http://x/ont#Movie", Ref{"http://x/ont", "Movie"}, false},
		{"a#b#c", Ref{"a#b", "c"}, false},
		{"noseparator", Ref{}, true},
		{"trailing#", Ref{}, true},
	}
	for _, tt := range tests {
		got, err := ParseRef(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseRef(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseRef(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestRefString(t *testing.T) {
	r := Ref{Ontology: "http://x/ont", Name: "Movie"}
	if r.String() != "http://x/ont#Movie" {
		t.Fatalf("String = %q", r.String())
	}
	back, err := ParseRef(r.String())
	if err != nil || back != r {
		t.Fatalf("round trip failed: %v %v", back, err)
	}
	if r.IsZero() {
		t.Error("non-zero ref reported zero")
	}
	if !(Ref{}).IsZero() {
		t.Error("zero ref not reported zero")
	}
}

func TestSortRefs(t *testing.T) {
	refs := []Ref{{"b", "x"}, {"a", "z"}, {"a", "a"}}
	SortRefs(refs)
	want := []Ref{{"a", "a"}, {"a", "z"}, {"b", "x"}}
	for i := range want {
		if refs[i] != want[i] {
			t.Fatalf("SortRefs = %v, want %v", refs, want)
		}
	}
}

func TestClassifiedAccessors(t *testing.T) {
	cl := MustClassify(mediaOntology(t))
	if cl.URI() != "http://amigo.example/ont/media" || cl.Version() != "1" {
		t.Fatalf("URI/Version = %q/%q", cl.URI(), cl.Version())
	}
	if _, ok := cl.Concept("NoSuch"); ok {
		t.Error("Concept found a missing name")
	}
	di, _ := cl.Concept("DigitalResource")
	kids := cl.Children(di)
	if len(kids) != 3 {
		t.Errorf("Children(DigitalResource) = %v, want 3 children", kids)
	}
	anc := cl.AncestorsIndex(di)
	if len(anc) != 1 {
		t.Errorf("AncestorsIndex(DigitalResource) = %v, want 1 ancestor", anc)
	}
	if s := cl.String(); !strings.Contains(s, "concepts") {
		t.Errorf("String() = %q", s)
	}
}
