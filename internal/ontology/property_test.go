package ontology

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForce is an independent oracle: boolean reachability closure over
// the raw axiom edges, equivalence classes from mutual reachability, a
// condensed graph built by direct member-to-member axioms, and BFS hop
// counts over the condensation. It shares no code with Classify (which
// uses Tarjan SCCs and per-concept BFS with transitive reduction).
type bruteForce struct {
	names []string
	// reach[a][b]: a is reachable from b going up (i.e. a subsumes b).
	reach map[string]map[string]bool
	// class[x] = sorted key of x's equivalence class
	class map[string]string
	// hops[keyA][keyB] = min condensed hops from class B up to class A
	hops map[string]map[string]int
}

func newBruteForce(o *Ontology) *bruteForce {
	bf := &bruteForce{
		reach: map[string]map[string]bool{},
		class: map[string]string{},
		hops:  map[string]map[string]int{},
	}
	up := map[string][]string{}
	for _, c := range o.Classes() {
		bf.names = append(bf.names, c.Name)
		up[c.Name] = append(up[c.Name], c.SubClassOf...)
		for _, eq := range c.EquivalentTo {
			up[c.Name] = append(up[c.Name], eq)
			up[eq] = append(up[eq], c.Name)
		}
	}
	// Reachability closure by repeated expansion.
	upSet := map[string]map[string]bool{}
	for _, n := range bf.names {
		upSet[n] = map[string]bool{n: true}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range bf.names {
			for target := range upSet[n] {
				for _, next := range up[target] {
					if !upSet[n][next] {
						upSet[n][next] = true
						changed = true
					}
				}
			}
		}
	}
	for _, a := range bf.names {
		bf.reach[a] = map[string]bool{}
	}
	for _, b := range bf.names {
		for a := range upSet[b] {
			bf.reach[a][b] = true // a subsumes b
		}
	}
	// Equivalence classes: mutual reachability; key = lexicographically
	// smallest member.
	for _, x := range bf.names {
		key := x
		for _, y := range bf.names {
			if upSet[x][y] && upSet[y][x] && y < key {
				key = y
			}
		}
		bf.class[x] = key
	}
	// Condensed adjacency from raw subclass/equivalence axioms between
	// distinct classes.
	condUp := map[string]map[string]bool{}
	for from, tos := range up {
		for _, to := range tos {
			cf, ct := bf.class[from], bf.class[to]
			if cf == ct {
				continue
			}
			if condUp[cf] == nil {
				condUp[cf] = map[string]bool{}
			}
			condUp[cf][ct] = true
		}
	}
	// BFS per class.
	for _, n := range bf.names {
		key := bf.class[n]
		if _, done := bf.hops[key]; done {
			continue
		}
		d := map[string]int{key: 0}
		frontier := []string{key}
		for len(frontier) > 0 {
			var next []string
			for _, u := range frontier {
				for v := range condUp[u] {
					if _, seen := d[v]; !seen {
						d[v] = d[u] + 1
						next = append(next, v)
					}
				}
			}
			frontier = next
		}
		bf.hops[key] = d
	}
	return bf
}

func (bf *bruteForce) subsumes(a, b string) bool {
	m, ok := bf.reach[a]
	return ok && m[b]
}

func (bf *bruteForce) distance(a, b string) (int, bool) {
	if !bf.subsumes(a, b) {
		return 0, false
	}
	d, ok := bf.hops[bf.class[b]][bf.class[a]]
	if !ok {
		return 0, false
	}
	return d, true
}

func randomAxioms(rng *rand.Rand, n int) *Ontology {
	o := New("http://prop.example/ont", "1")
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("C%02d", i)
	}
	for i := 0; i < n; i++ {
		c := Class{Name: names[i]}
		// Edges may go in any direction, creating cycles sometimes.
		for j := 0; j < rng.Intn(3); j++ {
			c.SubClassOf = append(c.SubClassOf, names[rng.Intn(n)])
		}
		if rng.Intn(6) == 0 {
			c.EquivalentTo = append(c.EquivalentTo, names[rng.Intn(n)])
		}
		o.MustAddClass(c)
	}
	return o
}

// TestPropertyClassifyMatchesBruteForce checks Classify's subsumption and
// distances against the independent oracle, including cyclic axioms.
func TestPropertyClassifyMatchesBruteForce(t *testing.T) {
	prop := func(seed int64, sz uint8) bool {
		n := int(sz%12) + 2
		rng := rand.New(rand.NewSource(seed))
		o := randomAxioms(rng, n)
		cl, err := Classify(o)
		if err != nil {
			return false
		}
		bf := newBruteForce(o)
		for _, a := range bf.names {
			for _, b := range bf.names {
				if got, want := cl.Subsumes(a, b), bf.subsumes(a, b); got != want {
					t.Logf("seed=%d: Subsumes(%s,%s)=%v oracle=%v", seed, a, b, got, want)
					return false
				}
				gd, gok := cl.Distance(a, b)
				wd, wok := bf.distance(a, b)
				if gok != wok || (gok && gd != wd) {
					t.Logf("seed=%d: Distance(%s,%s)=(%d,%v) oracle=(%d,%v)", seed, a, b, gd, gok, wd, wok)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTransitiveReductionMinimal: no kept parent edge is implied
// by another path, and dropping any kept edge changes reachability.
func TestPropertyTransitiveReductionMinimal(t *testing.T) {
	prop := func(seed int64, sz uint8) bool {
		n := int(sz%20) + 2
		rng := rand.New(rand.NewSource(seed))
		o := New("u", "1")
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("C%02d", i)
			c := Class{Name: names[i]}
			for j := 0; j < rng.Intn(4); j++ {
				c.SubClassOf = append(c.SubClassOf, names[rng.Intn(i+1)])
			}
			o.MustAddClass(c)
		}
		cl, err := Classify(o)
		if err != nil {
			return false
		}
		for i := 0; i < cl.NumConcepts(); i++ {
			for _, p := range cl.Parents(i) {
				// The edge i->p must not be implied by another parent.
				for _, q := range cl.Parents(i) {
					if q == p {
						continue
					}
					if cl.SubsumesIndex(p, q) && p != q {
						// p subsumes q means path i->q->...->p exists,
						// making i->p redundant.
						t.Logf("seed=%d: redundant edge %d->%d via %d", seed, i, p, q)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
