// Package election implements S-Ariadne's on-the-fly directory deployment
// (Section 4 of the paper): nodes that hear no directory advertisement for
// a while initiate an election in their vicinity; nodes answer with their
// candidacy — scored by network coverage, mobility and remaining resources
// — and the best candidate is appointed and starts advertising as a
// directory. The mechanism keeps directories homogeneously distributed,
// since elections trigger exactly in the areas no directory covers.
//
// The protocol logic lives in Machine, a pure state machine: messages and
// clock ticks go in, actions (sends, broadcasts, role changes) come out.
// That keeps every protocol decision deterministic and unit-testable.
// Runner (runner.go) drives a Machine over a transport endpoint (the
// simulator or a real socket) with real timers.
package election

import (
	"fmt"
	"time"

	"sariadne/internal/transport"
)

// Role is a node's current protocol role.
type Role int

// Roles.
const (
	// Member nodes rely on a nearby directory.
	Member Role = iota + 1
	// Initiator nodes are running an election they started.
	Initiator
	// Directory nodes host a service directory and advertise it.
	Directory
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case Member:
		return "member"
	case Initiator:
		return "initiator"
	case Directory:
		return "directory"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Score is a node's directory candidacy: the paper elects nodes on network
// coverage, mobility and remaining/available resources.
type Score struct {
	// Coverage is the number of neighbors within advertisement range.
	Coverage int
	// Resources is remaining battery/CPU headroom in [0, 1].
	Resources float64
	// Mobility is expected movement in [0, 1]; lower is better.
	Mobility float64
	// Willing is false for nodes that refuse to act as a directory.
	Willing bool
}

// Value folds the score into a single comparable number; higher wins.
func (s Score) Value() float64 {
	if !s.Willing {
		return -1
	}
	return float64(s.Coverage) + 2*s.Resources - s.Mobility
}

// Config parameterizes the protocol.
type Config struct {
	// AdvertiseInterval is how often a directory re-advertises its
	// presence in the vicinity.
	AdvertiseInterval time.Duration
	// AdvertiseTTL is the hop radius of advertisements and elections
	// (the paper's vicinity).
	AdvertiseTTL int
	// ElectionTimeout is how long a member waits without hearing any
	// directory advertisement before initiating an election.
	ElectionTimeout time.Duration
	// CandidacyWait is how long an initiator collects candidacies before
	// appointing the winner.
	CandidacyWait time.Duration
	// Score reports this node's current candidacy when asked.
	Score func() Score
}

func (c Config) withDefaults() Config {
	if c.AdvertiseInterval <= 0 {
		c.AdvertiseInterval = 2 * time.Second
	}
	if c.AdvertiseTTL <= 0 {
		c.AdvertiseTTL = 2
	}
	if c.ElectionTimeout <= 0 {
		c.ElectionTimeout = 3 * c.AdvertiseInterval
	}
	if c.CandidacyWait <= 0 {
		c.CandidacyWait = c.AdvertiseInterval / 2
	}
	if c.Score == nil {
		c.Score = func() Score { return Score{Coverage: 1, Resources: 0.5, Willing: true} }
	}
	return c
}

// Protocol messages. They are exported so transports can route them.

// Advertisement announces a live directory to its vicinity.
type Advertisement struct {
	Directory transport.Addr
}

// Call opens an election run by Initiator.
type Call struct {
	Initiator transport.Addr
	Election  uint64
}

// Candidacy answers a Call with the sender's score.
type Candidacy struct {
	Initiator transport.Addr
	Election  uint64
	Candidate transport.Addr
	Score     Score
}

// Appointment closes an election, naming the winner.
type Appointment struct {
	Initiator transport.Addr
	Election  uint64
	Winner    transport.Addr
}

// Actions returned by the machine.

// SendAction asks the transport to unicast a payload.
type SendAction struct {
	To      transport.Addr
	Payload any
}

// BroadcastAction asks the transport to flood a payload in the vicinity.
type BroadcastAction struct {
	TTL     int
	Payload any
}

// RoleChange reports that the node's role changed (for observers).
type RoleChange struct {
	Role Role
}

// Machine is the deterministic election state machine for one node. It is
// not safe for concurrent use; Runner serializes access.
type Machine struct {
	self transport.Addr
	cfg  Config

	role          Role
	directory     transport.Addr
	lastAdvert    time.Time
	lastSelfAdv   time.Time
	electionID    uint64
	electionOpen  bool
	electionStart time.Time
	best          Candidacy
	seenCalls     map[string]struct{}
	timeoutJitter time.Duration
}

// NewMachine returns a Member machine for the given node. The now argument
// anchors the advertisement timeout clock.
func NewMachine(self transport.Addr, cfg Config, now time.Time) *Machine {
	m := &Machine{
		self:       self,
		cfg:        cfg.withDefaults(),
		role:       Member,
		lastAdvert: now,
		seenCalls:  make(map[string]struct{}),
	}
	// Deterministic per-node jitter (0–50% of the timeout) desynchronizes
	// members that lost their directory at the same instant.
	var h uint64 = 14695981039346656037
	for _, b := range []byte(self) {
		h = (h ^ uint64(b)) * 1099511628211
	}
	m.timeoutJitter = time.Duration(h % uint64(m.cfg.ElectionTimeout/2+1))
	return m
}

// Self returns the node ID the machine runs on.
func (m *Machine) Self() transport.Addr { return m.self }

// Role returns the current role.
func (m *Machine) Role() Role { return m.role }

// Directory returns the directory this node currently uses: itself when it
// is a directory, the last advertised one otherwise.
func (m *Machine) Directory() (transport.Addr, bool) {
	if m.role == Directory {
		return m.self, true
	}
	if m.directory == "" {
		return "", false
	}
	return m.directory, true
}

// BecomeDirectory forces the directory role (used for statically deployed
// directories and in tests). It returns the initial advertisement action.
func (m *Machine) BecomeDirectory(now time.Time) []any {
	m.role = Directory
	m.directory = m.self
	m.lastSelfAdv = now
	return []any{
		RoleChange{Role: Directory},
		BroadcastAction{TTL: m.cfg.AdvertiseTTL, Payload: Advertisement{Directory: m.self}},
	}
}

// Demote returns a Directory machine to Member (graceful shutdown of the
// directory role); the advertisement-timeout clock restarts at now so the
// node does not immediately self-elect while another directory takes over.
func (m *Machine) Demote(now time.Time) []any {
	if m.role != Directory {
		return nil
	}
	m.role = Member
	m.directory = ""
	m.lastAdvert = now
	return []any{RoleChange{Role: Member}}
}

// HandleMessage feeds one received protocol message into the machine and
// returns the actions to execute. Non-election payloads yield nil.
func (m *Machine) HandleMessage(from transport.Addr, payload any, now time.Time) []any {
	switch p := payload.(type) {
	case Advertisement:
		return m.onAdvertisement(p, now)
	case Call:
		return m.onCall(p, now)
	case Candidacy:
		return m.onCandidacy(p, now)
	case Appointment:
		return m.onAppointment(p, now)
	default:
		return nil
	}
}

// Tick advances the machine's timers and returns due actions.
func (m *Machine) Tick(now time.Time) []any {
	var actions []any
	switch m.role {
	case Directory:
		if now.Sub(m.lastSelfAdv) >= m.cfg.AdvertiseInterval {
			m.lastSelfAdv = now
			actions = append(actions, BroadcastAction{
				TTL:     m.cfg.AdvertiseTTL,
				Payload: Advertisement{Directory: m.self},
			})
		}
	case Initiator:
		if m.electionOpen && now.Sub(m.electionStart) >= m.cfg.CandidacyWait {
			actions = append(actions, m.closeElection(now)...)
		}
	case Member:
		if now.Sub(m.lastAdvert) >= m.cfg.ElectionTimeout+m.timeoutJitter {
			actions = append(actions, m.openElection(now)...)
		}
	}
	return actions
}

func (m *Machine) onAdvertisement(adv Advertisement, now time.Time) []any {
	if m.role == Directory {
		// Two directories covering each other's vicinity is tolerated by
		// the paper's homogeneous deployment; no action.
		return nil
	}
	// Stickiness: with overlapping vicinities a member keeps its current
	// directory while it stays live, and only adopts another one when the
	// current one has gone silent — otherwise nodes between two
	// directories would flap (re-publishing on every flip).
	switch {
	case m.directory == "" || m.directory == adv.Directory:
		m.directory = adv.Directory
		m.lastAdvert = now
	case now.Sub(m.lastAdvert) > 2*m.cfg.AdvertiseInterval:
		m.directory = adv.Directory
		m.lastAdvert = now
	default:
		return nil // foreign directory; ours is still live
	}
	if m.role == Initiator {
		// A directory appeared while electing: abort the election.
		m.role = Member
		m.electionOpen = false
		return []any{RoleChange{Role: Member}}
	}
	return nil
}

func (m *Machine) onCall(call Call, now time.Time) []any {
	key := fmt.Sprintf("%s/%d", call.Initiator, call.Election)
	if _, seen := m.seenCalls[key]; seen {
		return nil
	}
	m.seenCalls[key] = struct{}{}
	if call.Initiator == m.self {
		return nil
	}
	if m.role == Directory {
		// An existing directory answers a call by re-advertising: the area
		// is already covered.
		return []any{BroadcastAction{TTL: m.cfg.AdvertiseTTL, Payload: Advertisement{Directory: m.self}}}
	}
	score := m.cfg.Score()
	if !score.Willing {
		return nil // refusal: stay silent
	}
	// Concurrent elections tie-break bully-style on node ID: an initiator
	// keeps its own election when it outranks the caller (and stays
	// silent), and yields and answers otherwise. Without this, two
	// simultaneous initiators suppress each other and no election closes.
	if m.role == Initiator {
		if m.self < call.Initiator {
			return nil
		}
		m.role = Member
		m.electionOpen = false
	}
	// Receiving a call also counts as recent coverage activity, so we do
	// not immediately start a competing election.
	m.lastAdvert = now
	return []any{SendAction{To: call.Initiator, Payload: Candidacy{
		Initiator: call.Initiator,
		Election:  call.Election,
		Candidate: m.self,
		Score:     score,
	}}}
}

func (m *Machine) onCandidacy(c Candidacy, _ time.Time) []any {
	if !m.electionOpen || c.Initiator != m.self || c.Election != m.electionID {
		return nil
	}
	if better(c, m.best) {
		m.best = c
	}
	return nil
}

func (m *Machine) onAppointment(a Appointment, now time.Time) []any {
	if a.Winner == m.self && m.role != Directory {
		return m.BecomeDirectory(now)
	}
	if a.Winner != m.self {
		m.directory = a.Winner
		m.lastAdvert = now
		if m.role == Initiator {
			m.role = Member
			m.electionOpen = false
			return []any{RoleChange{Role: Member}}
		}
	}
	return nil
}

func (m *Machine) openElection(now time.Time) []any {
	m.role = Initiator
	m.electionID++
	m.electionOpen = true
	m.electionStart = now
	self := m.cfg.Score()
	m.best = Candidacy{Initiator: m.self, Election: m.electionID, Candidate: m.self, Score: self}
	if !self.Willing {
		m.best.Candidate = "" // we cannot win ourselves
	}
	return []any{
		RoleChange{Role: Initiator},
		BroadcastAction{TTL: m.cfg.AdvertiseTTL, Payload: Call{Initiator: m.self, Election: m.electionID}},
	}
}

func (m *Machine) closeElection(now time.Time) []any {
	m.electionOpen = false
	winner := m.best.Candidate
	if winner == "" {
		// Nobody (including us) was willing; return to Member and let the
		// timeout fire again later.
		m.role = Member
		m.lastAdvert = now
		return []any{RoleChange{Role: Member}}
	}
	actions := []any{BroadcastAction{TTL: m.cfg.AdvertiseTTL, Payload: Appointment{
		Initiator: m.self,
		Election:  m.electionID,
		Winner:    winner,
	}}}
	if winner == m.self {
		actions = append(actions, m.BecomeDirectory(now)...)
	} else {
		m.role = Member
		m.directory = winner
		m.lastAdvert = now
		actions = append(actions, RoleChange{Role: Member})
	}
	return actions
}

// better orders candidacies by score value, breaking ties by node ID so
// every initiator picks the same winner.
func better(a, b Candidacy) bool {
	if b.Candidate == "" {
		return a.Candidate != ""
	}
	av, bv := a.Score.Value(), b.Score.Value()
	if av != bv {
		return av > bv
	}
	return a.Candidate < b.Candidate
}
