package election

import (
	"context"
	"sync"
	"time"

	"sariadne/internal/transport"
)

// Runner drives a Machine over a transport endpoint with a real clock: it
// consumes the endpoint's inbox, fires ticks, and executes the machine's
// actions. Runner is used by the standalone election examples and tests;
// the discovery package embeds Machine directly in its own loop so a node
// has a single inbox consumer.
type Runner struct {
	ep transport.Endpoint
	m  *Machine

	mu     sync.Mutex
	cancel context.CancelFunc // guarded by mu
	done   chan struct{}      // guarded by mu
	roleCh chan Role
}

// NewRunner wraps a machine around an endpoint.
func NewRunner(ep transport.Endpoint, cfg Config) *Runner {
	return &Runner{
		ep:     ep,
		m:      NewMachine(ep.ID(), cfg, time.Now()),
		roleCh: make(chan Role, 16),
	}
}

// Start launches the protocol loop. It returns immediately; Stop shuts the
// loop down and waits for it to exit.
func (r *Runner) Start(ctx context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	r.mu.Lock()
	r.cancel = cancel
	r.done = done
	r.mu.Unlock()

	go func() {
		defer close(done)
		ticker := time.NewTicker(r.tickInterval())
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case msg, ok := <-r.ep.Inbox():
				if !ok {
					return
				}
				r.step(func(now time.Time) []any {
					return r.m.HandleMessage(msg.From, msg.Payload, now)
				})
			case <-ticker.C:
				r.step(func(now time.Time) []any {
					return r.m.Tick(now)
				})
			}
		}
	}()
}

// tickInterval picks a resolution fine enough for the configured timers.
func (r *Runner) tickInterval() time.Duration {
	cfg := r.m.cfg
	min := cfg.AdvertiseInterval
	if cfg.CandidacyWait < min {
		min = cfg.CandidacyWait
	}
	if min > 50*time.Millisecond {
		return min / 4
	}
	if min <= 4 {
		return time.Millisecond
	}
	return min / 4
}

// step runs one machine transition under the lock and executes actions.
func (r *Runner) step(f func(now time.Time) []any) {
	r.mu.Lock()
	actions := f(time.Now())
	r.mu.Unlock()
	r.execute(actions)
}

// execute performs transport actions and surfaces role changes.
func (r *Runner) execute(actions []any) {
	for _, a := range actions {
		switch act := a.(type) {
		case SendAction:
			// Losses and routing failures are protocol-survivable: the
			// timeout machinery recovers, so errors are intentionally not
			// fatal here.
			_ = r.ep.Send(act.To, act.Payload)
		case BroadcastAction:
			_, _ = r.ep.Broadcast(act.TTL, act.Payload)
		case RoleChange:
			select {
			case r.roleCh <- act.Role:
			default:
			}
		}
	}
}

// Stop cancels the loop and waits for it to exit.
func (r *Runner) Stop() {
	r.mu.Lock()
	cancel, done := r.cancel, r.done
	r.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if done != nil {
		<-done
	}
}

// BecomeDirectory promotes this node immediately (static deployment).
func (r *Runner) BecomeDirectory() {
	r.mu.Lock()
	actions := r.m.BecomeDirectory(time.Now())
	r.mu.Unlock()
	r.execute(actions)
}

// Role returns the node's current role.
func (r *Runner) Role() Role {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.m.Role()
}

// Directory returns the directory the node currently uses.
func (r *Runner) Directory() (transport.Addr, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.m.Directory()
}

// RoleChanges exposes role transitions for tests and observers; the
// channel drops when not drained.
func (r *Runner) RoleChanges() <-chan Role { return r.roleCh }
