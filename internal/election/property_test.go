package election

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"sariadne/internal/simnet"
)

// TestPropertyMachineRobust feeds random interleavings of protocol
// messages and clock ticks into a machine and checks structural
// invariants: the role is always valid, a Directory role always reports
// itself as its directory, actions reference real payload types, and no
// input sequence panics or wedges the machine.
func TestPropertyMachineRobust(t *testing.T) {
	peers := []simnet.NodeID{"p1", "p2", "p3", "self"}
	prop := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			AdvertiseInterval: 20 * time.Millisecond,
			AdvertiseTTL:      2,
			ElectionTimeout:   60 * time.Millisecond,
			CandidacyWait:     20 * time.Millisecond,
			Score: func() Score {
				return Score{Coverage: rng.Intn(5), Resources: rng.Float64(), Willing: rng.Intn(4) > 0}
			},
		}
		now := time.Unix(0, 0)
		m := NewMachine("self", cfg, now)
		if rng.Intn(2) == 0 {
			m.BecomeDirectory(now)
		}
		for i := 0; i < int(steps); i++ {
			now = now.Add(time.Duration(rng.Intn(30)) * time.Millisecond)
			var actions []any
			switch rng.Intn(6) {
			case 0:
				actions = m.Tick(now)
			case 1:
				actions = m.HandleMessage(peers[rng.Intn(len(peers))],
					Advertisement{Directory: peers[rng.Intn(len(peers))]}, now)
			case 2:
				actions = m.HandleMessage(peers[rng.Intn(len(peers))],
					Call{Initiator: peers[rng.Intn(len(peers))], Election: uint64(rng.Intn(4))}, now)
			case 3:
				actions = m.HandleMessage(peers[rng.Intn(len(peers))],
					Candidacy{
						Initiator: peers[rng.Intn(len(peers))],
						Election:  uint64(rng.Intn(4)),
						Candidate: peers[rng.Intn(len(peers))],
						Score:     Score{Coverage: rng.Intn(9), Resources: rng.Float64(), Willing: true},
					}, now)
			case 4:
				actions = m.HandleMessage(peers[rng.Intn(len(peers))],
					Appointment{
						Initiator: peers[rng.Intn(len(peers))],
						Election:  uint64(rng.Intn(4)),
						Winner:    peers[rng.Intn(len(peers))],
					}, now)
			case 5:
				actions = m.HandleMessage(peers[rng.Intn(len(peers))], "not-an-election-message", now)
			}
			// Invariants after every step.
			switch m.Role() {
			case Member, Initiator, Directory:
			default:
				t.Logf("seed=%d step=%d: invalid role %v", seed, i, m.Role())
				return false
			}
			if m.Role() == Directory {
				if dir, ok := m.Directory(); !ok || dir != "self" {
					t.Logf("seed=%d step=%d: directory role but Directory()=%q,%v", seed, i, dir, ok)
					return false
				}
			}
			for _, a := range actions {
				switch act := a.(type) {
				case SendAction:
					if act.To == "" || act.Payload == nil {
						return false
					}
				case BroadcastAction:
					if act.TTL <= 0 || act.Payload == nil {
						return false
					}
				case RoleChange:
					if act.Role < Member || act.Role > Directory {
						return false
					}
				default:
					t.Logf("seed=%d step=%d: unknown action %T", seed, i, a)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEventualDirectory: from any scrambled starting state, if the
// machine then runs alone (no competing messages), it elects itself within
// a bounded number of ticks — the self-healing core of the paper's
// on-the-fly deployment.
func TestPropertyEventualDirectory(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{
			AdvertiseInterval: 10 * time.Millisecond,
			AdvertiseTTL:      2,
			ElectionTimeout:   30 * time.Millisecond,
			CandidacyWait:     10 * time.Millisecond,
		}
		now := time.Unix(0, 0)
		m := NewMachine("self", cfg, now)
		// Scramble with a few random messages.
		for i := 0; i < rng.Intn(10); i++ {
			m.HandleMessage("px", Advertisement{Directory: "px"}, now)
			m.HandleMessage("py", Call{Initiator: "py", Election: uint64(i)}, now)
			now = now.Add(time.Duration(rng.Intn(10)) * time.Millisecond)
		}
		// Then silence: tick forward; must become Directory eventually.
		for i := 0; i < 100; i++ {
			now = now.Add(10 * time.Millisecond)
			m.Tick(now)
			if m.Role() == Directory {
				return true
			}
		}
		return false
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
