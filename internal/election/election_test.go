package election

import (
	"context"
	"testing"
	"time"

	"sariadne/internal/simnet"
	"sariadne/internal/testutil"
)

// testConfig returns a config with fast, deterministic-friendly timers.
func testConfig(score Score) Config {
	return Config{
		AdvertiseInterval: 20 * time.Millisecond,
		AdvertiseTTL:      2,
		ElectionTimeout:   60 * time.Millisecond,
		CandidacyWait:     20 * time.Millisecond,
		Score:             func() Score { return score },
	}
}

func at(ms int) time.Time {
	return time.Unix(0, int64(ms)*int64(time.Millisecond))
}

func TestScoreValue(t *testing.T) {
	unwilling := Score{Coverage: 100, Resources: 1, Willing: false}
	if unwilling.Value() >= 0 {
		t.Fatal("unwilling candidate must have negative value")
	}
	strong := Score{Coverage: 5, Resources: 1, Mobility: 0, Willing: true}
	weak := Score{Coverage: 5, Resources: 0.1, Mobility: 0.9, Willing: true}
	if strong.Value() <= weak.Value() {
		t.Fatal("score ordering wrong")
	}
}

func TestRoleString(t *testing.T) {
	for r, want := range map[Role]string{Member: "member", Initiator: "initiator", Directory: "directory", Role(9): "Role(9)"} {
		if r.String() != want {
			t.Errorf("Role(%d).String() = %q", int(r), r.String())
		}
	}
}

func TestMachineTimeoutOpensElection(t *testing.T) {
	cfg := testConfig(Score{Coverage: 1, Resources: 0.5, Willing: true})
	m := NewMachine("n0", cfg, at(0))
	if m.Role() != Member {
		t.Fatal("fresh machine not Member")
	}
	if acts := m.Tick(at(10)); len(acts) != 0 {
		t.Fatalf("premature actions: %v", acts)
	}
	acts := m.Tick(at(100))
	if m.Role() != Initiator {
		t.Fatalf("role = %v after timeout", m.Role())
	}
	var call *Call
	for _, a := range acts {
		if b, ok := a.(BroadcastAction); ok {
			if c, ok := b.Payload.(Call); ok {
				call = &c
			}
		}
	}
	if call == nil {
		t.Fatalf("no Call broadcast in %v", acts)
	}
}

func TestMachineElectsSelfWithoutCompetition(t *testing.T) {
	cfg := testConfig(Score{Coverage: 1, Resources: 0.5, Willing: true})
	m := NewMachine("n0", cfg, at(0))
	m.Tick(at(100)) // open election
	acts := m.Tick(at(200))
	if m.Role() != Directory {
		t.Fatalf("role = %v, want Directory", m.Role())
	}
	foundAppointment := false
	for _, a := range acts {
		if b, ok := a.(BroadcastAction); ok {
			if ap, ok := b.Payload.(Appointment); ok {
				foundAppointment = true
				if ap.Winner != "n0" {
					t.Fatalf("winner = %s", ap.Winner)
				}
			}
		}
	}
	if !foundAppointment {
		t.Fatalf("no appointment in %v", acts)
	}
	if dir, ok := m.Directory(); !ok || dir != "n0" {
		t.Fatalf("Directory = %s, %v", dir, ok)
	}
}

func TestMachinePicksBestCandidate(t *testing.T) {
	cfg := testConfig(Score{Coverage: 1, Resources: 0.2, Willing: true})
	m := NewMachine("n0", cfg, at(0))
	m.Tick(at(100)) // open election
	m.HandleMessage("n1", Candidacy{
		Initiator: "n0", Election: 1, Candidate: "n1",
		Score: Score{Coverage: 9, Resources: 0.9, Willing: true},
	}, at(110))
	m.HandleMessage("n2", Candidacy{
		Initiator: "n0", Election: 1, Candidate: "n2",
		Score: Score{Coverage: 2, Resources: 0.5, Willing: true},
	}, at(111))
	// Stale candidacy for a different election is ignored.
	m.HandleMessage("n9", Candidacy{
		Initiator: "n0", Election: 99, Candidate: "n9",
		Score: Score{Coverage: 100, Resources: 1, Willing: true},
	}, at(112))
	acts := m.Tick(at(200))
	if m.Role() != Member {
		t.Fatalf("role = %v, want Member (lost election)", m.Role())
	}
	for _, a := range acts {
		if b, ok := a.(BroadcastAction); ok {
			if ap, ok := b.Payload.(Appointment); ok {
				if ap.Winner != "n1" {
					t.Fatalf("winner = %s, want n1", ap.Winner)
				}
				if dir, ok := m.Directory(); !ok || dir != "n1" {
					t.Fatalf("Directory = %s, %v", dir, ok)
				}
				return
			}
		}
	}
	t.Fatalf("no appointment in %v", acts)
}

func TestMachineAnswersCallOnce(t *testing.T) {
	cfg := testConfig(Score{Coverage: 3, Resources: 0.7, Willing: true})
	m := NewMachine("n5", cfg, at(0))
	acts := m.HandleMessage("n0", Call{Initiator: "n0", Election: 1}, at(10))
	if len(acts) != 1 {
		t.Fatalf("actions = %v", acts)
	}
	send, ok := acts[0].(SendAction)
	if !ok || send.To != "n0" {
		t.Fatalf("action = %v", acts[0])
	}
	cand, ok := send.Payload.(Candidacy)
	if !ok || cand.Candidate != "n5" || cand.Election != 1 {
		t.Fatalf("candidacy = %+v", cand)
	}
	// Duplicate call (flooding re-delivery) is ignored.
	if acts := m.HandleMessage("n0", Call{Initiator: "n0", Election: 1}, at(11)); len(acts) != 0 {
		t.Fatalf("duplicate call answered: %v", acts)
	}
}

func TestUnwillingNodeStaysSilent(t *testing.T) {
	cfg := testConfig(Score{Willing: false})
	m := NewMachine("n5", cfg, at(0))
	if acts := m.HandleMessage("n0", Call{Initiator: "n0", Election: 1}, at(10)); len(acts) != 0 {
		t.Fatalf("unwilling node answered: %v", acts)
	}
	// An unwilling initiator with no candidates returns to Member.
	m2 := NewMachine("n6", cfg, at(0))
	m2.Tick(at(100))
	m2.Tick(at(200))
	if m2.Role() != Member {
		t.Fatalf("role = %v, want Member", m2.Role())
	}
}

func TestAdvertisementSuppressesElection(t *testing.T) {
	cfg := testConfig(Score{Coverage: 1, Resources: 0.5, Willing: true})
	m := NewMachine("n0", cfg, at(0))
	m.HandleMessage("d1", Advertisement{Directory: "d1"}, at(50))
	if acts := m.Tick(at(100)); len(acts) != 0 {
		t.Fatalf("election started despite advertisement: %v", acts)
	}
	if dir, ok := m.Directory(); !ok || dir != "d1" {
		t.Fatalf("Directory = %s, %v", dir, ok)
	}
	// Advertisement during an election aborts it.
	m.Tick(at(200))
	if m.Role() != Initiator {
		t.Fatalf("role = %v", m.Role())
	}
	m.HandleMessage("d2", Advertisement{Directory: "d2"}, at(210))
	if m.Role() != Member {
		t.Fatalf("role = %v after advertisement, want Member", m.Role())
	}
}

func TestDirectoryAdvertisesPeriodically(t *testing.T) {
	cfg := testConfig(Score{Coverage: 1, Resources: 0.5, Willing: true})
	m := NewMachine("n0", cfg, at(0))
	m.BecomeDirectory(at(0))
	if acts := m.Tick(at(5)); len(acts) != 0 {
		t.Fatalf("advertised too soon: %v", acts)
	}
	acts := m.Tick(at(25))
	if len(acts) != 1 {
		t.Fatalf("actions = %v", acts)
	}
	b, ok := acts[0].(BroadcastAction)
	if !ok {
		t.Fatalf("action = %v", acts[0])
	}
	if adv, ok := b.Payload.(Advertisement); !ok || adv.Directory != "n0" {
		t.Fatalf("payload = %v", b.Payload)
	}
	// A directory answers election calls by re-advertising.
	acts = m.HandleMessage("n9", Call{Initiator: "n9", Election: 4}, at(30))
	if len(acts) != 1 {
		t.Fatalf("directory call response = %v", acts)
	}
	if _, ok := acts[0].(BroadcastAction); !ok {
		t.Fatalf("directory response = %v", acts[0])
	}
}

func TestAppointmentPromotesWinner(t *testing.T) {
	cfg := testConfig(Score{Coverage: 2, Resources: 0.5, Willing: true})
	m := NewMachine("n3", cfg, at(0))
	acts := m.HandleMessage("n0", Appointment{Initiator: "n0", Election: 1, Winner: "n3"}, at(10))
	if m.Role() != Directory {
		t.Fatalf("role = %v, want Directory", m.Role())
	}
	if len(acts) == 0 {
		t.Fatal("no announcement actions")
	}
	// Losing nodes record the winner.
	m2 := NewMachine("n4", cfg, at(0))
	m2.HandleMessage("n0", Appointment{Initiator: "n0", Election: 1, Winner: "n3"}, at(10))
	if dir, ok := m2.Directory(); !ok || dir != "n3" {
		t.Fatalf("Directory = %s, %v", dir, ok)
	}
}

func TestCallSuppressesCompetingInitiator(t *testing.T) {
	cfg := testConfig(Score{Coverage: 2, Resources: 0.5, Willing: true})
	m := NewMachine("n7", cfg, at(0))
	m.Tick(at(100))
	if m.Role() != Initiator {
		t.Fatal("setup failed")
	}
	acts := m.HandleMessage("n1", Call{Initiator: "n1", Election: 3}, at(110))
	if m.Role() != Member {
		t.Fatalf("role = %v, want Member (yielded)", m.Role())
	}
	if len(acts) != 1 {
		t.Fatalf("actions = %v", acts)
	}
}

// TestRunnerConvergence is the integration test: a 9-node grid with no
// directory converges to at least one elected directory, and every node
// learns one.
func TestRunnerConvergence(t *testing.T) {
	net := simnet.New(simnet.Config{})
	defer net.Close()
	eps, err := simnet.BuildGrid(net, "n", 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		AdvertiseInterval: 10 * time.Millisecond,
		AdvertiseTTL:      4,
		ElectionTimeout:   30 * time.Millisecond,
		CandidacyWait:     15 * time.Millisecond,
	}
	ctx := context.Background()
	runners := make([]*Runner, len(eps))
	for i, ep := range eps {
		i := i
		c := cfg
		c.Score = func() Score {
			return Score{Coverage: len(net.Neighbors(eps[i].ID())), Resources: 0.5, Willing: true}
		}
		runners[i] = NewRunner(ep, c)
		runners[i].Start(ctx)
	}
	defer func() {
		for _, r := range runners {
			r.Stop()
		}
	}()

	// On failure, dump each runner's view so divergence is diagnosable.
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		for i, r := range runners {
			dir, ok := r.Directory()
			t.Logf("node %d: role=%v directory=%s ok=%v", i, r.Role(), dir, ok)
		}
	})
	waitFor(t, 3*time.Second, func() bool {
		directories := 0
		covered := 0
		for _, r := range runners {
			if r.Role() == Directory {
				directories++
			}
			if _, ok := r.Directory(); ok {
				covered++
			}
		}
		return directories >= 1 && covered == len(runners)
	}, "election convergence")
}

// TestRunnerReelection: when the only directory dies, members elect a new
// one.
func TestRunnerReelection(t *testing.T) {
	net := simnet.New(simnet.Config{})
	defer net.Close()
	eps, err := simnet.BuildLine(net, "n", 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		AdvertiseInterval: 10 * time.Millisecond,
		AdvertiseTTL:      4,
		ElectionTimeout:   40 * time.Millisecond,
		CandidacyWait:     15 * time.Millisecond,
	}
	ctx := context.Background()
	runners := make([]*Runner, len(eps))
	for i, ep := range eps {
		runners[i] = NewRunner(ep, cfg)
		runners[i].Start(ctx)
	}
	defer func() {
		for _, r := range runners {
			r.Stop()
		}
	}()
	runners[0].BecomeDirectory()

	// Wait until everyone sees n0.
	waitFor(t, 2*time.Second, func() bool {
		for _, r := range runners[1:] {
			if dir, ok := r.Directory(); !ok || dir != "n0" {
				return false
			}
		}
		return true
	}, "initial advertisement")

	// Kill the directory.
	runners[0].Stop()
	net.RemoveNode("n0")

	waitFor(t, 3*time.Second, func() bool {
		for _, r := range runners[1:] {
			if r.Role() == Directory {
				return true
			}
		}
		return false
	}, "re-election after directory death")
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	testutil.WaitFor(t, timeout, cond, "%s", what)
}
