package telemetry

// Drift watchdog: pluggable detectors sweep a window of journal samples
// at a cadence and raise typed alerts for the slow failure modes a soak
// run exists to catch — goroutine/heap creep, summary staleness,
// election flapping, append-latency steps, tenant-denial spikes.
//
// Detector contract: Examine sees the window's samples oldest first and
// answers (alert, firing). Detectors are pure functions of the window —
// no clocks, no side effects — so the same window always yields the same
// verdict and tests can drive them with synthetic samples. The watchdog
// owns the lifecycle around that verdict: an alert fires once when its
// code first turns firing (flight recorder entry, alert_fired_total
// increment, OnAlert hook), stays active while firing, and resolves
// after ResolveAfter consecutive quiet sweeps so a flapping signal does
// not re-fire every interval.

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Alert severities: warnings flag drift worth a look, critical flags
// drift that will take the daemon down if it continues.
const (
	SeverityWarning  = "warning"
	SeverityCritical = "critical"
)

// Alert codes emitted by the standard detector set.
const (
	AlertGoroutineGrowth   = "goroutine_growth"
	AlertMemoryGrowth      = "memory_growth"
	AlertSummaryStale      = "summary_stale"
	AlertElectionFlap      = "election_flap"
	AlertAppendLatencyStep = "append_latency_step"
	AlertDenialSpike       = "denial_spike"
)

// Alert is one typed watchdog finding.
type Alert struct {
	// Code identifies the failure mode; one lifecycle is tracked per code.
	Code string `json:"code"`
	// Severity is SeverityWarning or SeverityCritical.
	Severity string `json:"severity"`
	// Metric is the series the detector examined.
	Metric string `json:"metric,omitempty"`
	// At is when the watchdog observed the condition.
	At time.Time `json:"at"`
	// Window is the span of samples the verdict covers.
	Window time.Duration `json:"window"`
	// Value is the measured signal, Threshold the configured bound it
	// crossed; their unit is detector-specific and named in Evidence.
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	// Evidence is a human-readable one-liner with the numbers.
	Evidence string `json:"evidence,omitempty"`
}

// Detector examines one window of samples (oldest first) and reports
// whether its failure mode is present.
type Detector interface {
	// Code returns the alert code this detector owns.
	Code() string
	// Examine inspects the window and returns the alert to raise when
	// firing. The watchdog stamps At and Window on the result.
	Examine(samples []JournalSample) (Alert, bool)
}

// SampleLog is the watchdog's read surface: the Journal when telemetry
// is durable, a MemLog when it is not.
type SampleLog interface {
	Recent(window time.Duration) []JournalSample
}

// MemLog is a bounded in-memory SampleLog for daemons running without a
// telemetry journal: same window reads, no durability.
type MemLog struct {
	mu      sync.Mutex
	cap     int
	samples []JournalSample
}

// NewMemLog returns a log retaining up to capacity samples (minimum 2).
func NewMemLog(capacity int) *MemLog {
	if capacity < 2 {
		capacity = 2
	}
	return &MemLog{cap: capacity}
}

// Append adds one sample, evicting the oldest past capacity.
func (l *MemLog) Append(s JournalSample) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.samples = append(l.samples, s)
	if over := len(l.samples) - l.cap; over > 0 {
		l.samples = append(l.samples[:0], l.samples[over:]...)
	}
}

// Recent returns samples newer than now-window, oldest first.
func (l *MemLog) Recent(window time.Duration) []JournalSample {
	cutoff := time.Now().Add(-window)
	l.mu.Lock()
	defer l.mu.Unlock()
	i := sort.Search(len(l.samples), func(i int) bool { return l.samples[i].Time.After(cutoff) })
	return append([]JournalSample(nil), l.samples[i:]...)
}

// --- detectors ---

// series extracts (seconds-since-first-sample, value) points for one
// counter/gauge metric across the window.
func series(samples []JournalSample, metric string) (xs, ys []float64) {
	var t0 time.Time
	for _, s := range samples {
		m, ok := s.Metric(metric)
		if !ok {
			continue
		}
		if t0.IsZero() {
			t0 = s.Time
		}
		xs = append(xs, s.Time.Sub(t0).Seconds())
		ys = append(ys, m.Value)
	}
	return xs, ys
}

// slope fits y = a + b*x by least squares and returns b (units/second).
func slope(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// GrowthDetector fires when a gauge's least-squares slope exceeds a
// per-minute bound AND the window's net growth exceeds a fraction of its
// starting value — the fraction gate keeps a large steady-state gauge
// with a tiny wiggle from alerting.
type GrowthDetector struct {
	code        string
	severity    string
	metric      string
	slopePerMin float64 // fire at or above this fitted growth rate
	minFrac     float64 // and only if (last-first)/max(first,1) reaches this
	minSamples  int
}

// NewGrowthDetector builds a growth detector over one gauge metric.
func NewGrowthDetector(code, severity, metric string, slopePerMin, minFrac float64) *GrowthDetector {
	return &GrowthDetector{code: code, severity: severity, metric: metric,
		slopePerMin: slopePerMin, minFrac: minFrac, minSamples: 4}
}

// Code implements Detector.
func (d *GrowthDetector) Code() string { return d.code }

// Examine implements Detector.
func (d *GrowthDetector) Examine(samples []JournalSample) (Alert, bool) {
	xs, ys := series(samples, d.metric)
	if len(xs) < d.minSamples {
		return Alert{}, false
	}
	perMin := slope(xs, ys) * 60
	first, last := ys[0], ys[len(ys)-1]
	base := first
	if base < 1 {
		base = 1
	}
	frac := (last - first) / base
	if perMin < d.slopePerMin || frac < d.minFrac {
		return Alert{}, false
	}
	return Alert{
		Code:      d.code,
		Severity:  d.severity,
		Metric:    d.metric,
		Value:     perMin,
		Threshold: d.slopePerMin,
		Evidence: fmt.Sprintf("%s grew %s -> %s over %d samples (+%.1f/min, +%.0f%%)",
			d.metric, formatFloat(first), formatFloat(last), len(ys), perMin, frac*100),
	}, true
}

// StalenessDetector fires when a counter that has moved before stops
// moving for longer than maxAge — the summary-refresh pipeline going
// quiet while the daemon stays up.
type StalenessDetector struct {
	code     string
	severity string
	counter  string
	maxAge   time.Duration
}

// NewStalenessDetector builds a staleness detector over one counter.
func NewStalenessDetector(code, severity, counter string, maxAge time.Duration) *StalenessDetector {
	return &StalenessDetector{code: code, severity: severity, counter: counter, maxAge: maxAge}
}

// Code implements Detector.
func (d *StalenessDetector) Code() string { return d.code }

// Examine implements Detector.
func (d *StalenessDetector) Examine(samples []JournalSample) (Alert, bool) {
	if len(samples) < 2 {
		return Alert{}, false
	}
	var lastMove, firstSeen, lastSeen time.Time
	var prev float64
	seen := false
	everNonzero := false
	for _, s := range samples {
		m, ok := s.Metric(d.counter)
		if !ok {
			continue
		}
		if !seen {
			seen = true
			firstSeen, lastMove, prev = s.Time, s.Time, m.Value
		} else if m.Value != prev {
			lastMove, prev = s.Time, m.Value
		}
		if m.Value > 0 {
			everNonzero = true
		}
		lastSeen = s.Time
	}
	if !seen || !everNonzero {
		// Never active (single-node daemon with no summary pipeline):
		// silence is the steady state, not staleness.
		return Alert{}, false
	}
	age := lastSeen.Sub(lastMove)
	if span := lastSeen.Sub(firstSeen); age < d.maxAge || span < d.maxAge {
		return Alert{}, false
	}
	return Alert{
		Code:      d.code,
		Severity:  d.severity,
		Metric:    d.counter,
		Value:     age.Seconds(),
		Threshold: d.maxAge.Seconds(),
		Evidence: fmt.Sprintf("%s stuck at %s for %s (limit %s)",
			d.counter, formatFloat(prev), age.Round(time.Second), d.maxAge),
	}, true
}

// RateDetector fires when a counter's average rate across the window
// exceeds a per-minute bound — election transitions churning instead of
// settling.
type RateDetector struct {
	code      string
	severity  string
	counter   string
	maxPerMin float64
}

// NewRateDetector builds a rate detector over one counter.
func NewRateDetector(code, severity, counter string, maxPerMin float64) *RateDetector {
	return &RateDetector{code: code, severity: severity, counter: counter, maxPerMin: maxPerMin}
}

// Code implements Detector.
func (d *RateDetector) Code() string { return d.code }

// Examine implements Detector.
func (d *RateDetector) Examine(samples []JournalSample) (Alert, bool) {
	xs, ys := series(samples, d.counter)
	if len(xs) < 2 {
		return Alert{}, false
	}
	span := xs[len(xs)-1] - xs[0]
	if span <= 0 {
		return Alert{}, false
	}
	delta := ys[len(ys)-1] - ys[0]
	if delta < 0 {
		// Counter reset inside the window (restart): count only what
		// accumulated after it.
		delta = ys[len(ys)-1]
	}
	perMin := delta / span * 60
	if perMin < d.maxPerMin {
		return Alert{}, false
	}
	return Alert{
		Code:      d.code,
		Severity:  d.severity,
		Metric:    d.counter,
		Value:     perMin,
		Threshold: d.maxPerMin,
		Evidence: fmt.Sprintf("%s advanced %s in %s (%.1f/min, limit %.1f/min)",
			d.counter, formatFloat(delta), (time.Duration(span * float64(time.Second))).Round(time.Second), perMin, d.maxPerMin),
	}, true
}

// QuantileStepDetector splits the window in half, derives each half's
// windowed quantile of a histogram via DeltaSnapshot, and fires when the
// recent half's quantile stepped up by more than a factor — the store
// append path suddenly slower. The factor should be at least 4: the
// power-of-two buckets quantize quantiles, so one real doubling is the
// smallest observable step.
type QuantileStepDetector struct {
	code     string
	severity string
	metric   string
	q        float64
	factor   float64
	minCount uint64 // per-half observation floor; quiet halves are noise
}

// NewQuantileStepDetector builds a p-quantile step detector over one
// *_seconds histogram.
func NewQuantileStepDetector(code, severity, metric string, q, factor float64, minCount uint64) *QuantileStepDetector {
	return &QuantileStepDetector{code: code, severity: severity, metric: metric,
		q: q, factor: factor, minCount: minCount}
}

// Code implements Detector.
func (d *QuantileStepDetector) Code() string { return d.code }

// Examine implements Detector.
func (d *QuantileStepDetector) Examine(samples []JournalSample) (Alert, bool) {
	if len(samples) < 4 {
		return Alert{}, false
	}
	mid := len(samples) / 2
	firstM, ok1 := samples[0].Metric(d.metric)
	midM, ok2 := samples[mid].Metric(d.metric)
	lastM, ok3 := samples[len(samples)-1].Metric(d.metric)
	if !ok1 || !ok2 || !ok3 || lastM.Kind != KindHistogram {
		return Alert{}, false
	}
	baseline := DeltaSnapshot(firstM, midM)
	recent := DeltaSnapshot(midM, lastM)
	if baseline.Count < d.minCount || recent.Count < d.minCount {
		return Alert{}, false
	}
	bq := baseline.Quantile(d.q)
	rq := recent.Quantile(d.q)
	if bq <= 0 || rq < bq*d.factor {
		return Alert{}, false
	}
	return Alert{
		Code:      d.code,
		Severity:  d.severity,
		Metric:    d.metric,
		Value:     rq,
		Threshold: bq * d.factor,
		Evidence: fmt.Sprintf("%s p%g stepped %ss -> %ss (x%.1f, limit x%.1f)",
			d.metric, d.q*100, formatFloat(bq), formatFloat(rq), rq/bq, d.factor),
	}, true
}

// SpikeDetector splits the window in half and fires when a counter's
// recent-half rate both clears an absolute per-minute floor and exceeds
// the baseline half's rate by a factor — tenant denials bursting above
// their background level. A silent baseline plus an over-floor recent
// half also fires: a spike from zero is the clearest spike there is.
type SpikeDetector struct {
	code      string
	severity  string
	counter   string
	factor    float64
	minPerMin float64
}

// NewSpikeDetector builds a spike detector over one counter.
func NewSpikeDetector(code, severity, counter string, factor, minPerMin float64) *SpikeDetector {
	return &SpikeDetector{code: code, severity: severity, counter: counter,
		factor: factor, minPerMin: minPerMin}
}

// Code implements Detector.
func (d *SpikeDetector) Code() string { return d.code }

// Examine implements Detector.
func (d *SpikeDetector) Examine(samples []JournalSample) (Alert, bool) {
	xs, ys := series(samples, d.counter)
	if len(xs) < 4 {
		return Alert{}, false
	}
	mid := len(xs) / 2
	baseRate := windowRate(xs[:mid+1], ys[:mid+1])
	recentRate := windowRate(xs[mid:], ys[mid:])
	if recentRate < d.minPerMin {
		return Alert{}, false
	}
	if baseRate > 0 && recentRate < baseRate*d.factor {
		return Alert{}, false
	}
	limit := d.minPerMin
	if baseRate > 0 {
		limit = baseRate * d.factor
	}
	return Alert{
		Code:      d.code,
		Severity:  d.severity,
		Metric:    d.counter,
		Value:     recentRate,
		Threshold: limit,
		Evidence: fmt.Sprintf("%s rate %.1f/min vs baseline %.1f/min (limit %.1f/min)",
			d.counter, recentRate, baseRate, limit),
	}, true
}

// windowRate is a counter's per-minute rate over (x, y) points, clamping
// resets to zero.
func windowRate(xs, ys []float64) float64 {
	span := xs[len(xs)-1] - xs[0]
	if span <= 0 {
		return 0
	}
	delta := ys[len(ys)-1] - ys[0]
	if delta < 0 {
		delta = ys[len(ys)-1]
	}
	return delta / span * 60
}

// Thresholds parameterizes StandardDetectors; zero fields take the
// listed defaults, negative fields disable that detector.
type Thresholds struct {
	// GoroutinesPerMin fires goroutine_growth at this fitted slope
	// (default 30/min sustained across the window).
	GoroutinesPerMin float64
	// HeapBytesPerMin fires memory_growth at this fitted heap slope
	// (default 8 MiB/min).
	HeapBytesPerMin float64
	// SummaryStaleAfter fires summary_stale when summary pushes stall
	// this long (default 5m).
	SummaryStaleAfter time.Duration
	// ElectionsPerMin fires election_flap at this transition rate
	// (default 6/min).
	ElectionsPerMin float64
	// AppendP99Factor fires append_latency_step when the recent-half
	// store append p99 is this many times the baseline half (default 8;
	// minimum meaningful value is 4 given power-of-two buckets).
	AppendP99Factor float64
	// DenialsPerMin is the absolute floor for denial_spike (default
	// 30/min, with an 8x over-baseline factor).
	DenialsPerMin float64
}

func (t Thresholds) withDefaults() Thresholds {
	if t.GoroutinesPerMin == 0 {
		t.GoroutinesPerMin = 30
	}
	if t.HeapBytesPerMin == 0 {
		t.HeapBytesPerMin = 8 << 20
	}
	if t.SummaryStaleAfter == 0 {
		t.SummaryStaleAfter = 5 * time.Minute
	}
	if t.ElectionsPerMin == 0 {
		t.ElectionsPerMin = 6
	}
	if t.AppendP99Factor == 0 {
		t.AppendP99Factor = 8
	}
	if t.DenialsPerMin == 0 {
		t.DenialsPerMin = 30
	}
	return t
}

// StandardDetectors returns the stock detector set over the repo's
// metric families, tuned by t. Disabled (negative-threshold) detectors
// are omitted.
func StandardDetectors(t Thresholds) []Detector {
	t = t.withDefaults()
	var out []Detector
	if t.GoroutinesPerMin > 0 {
		out = append(out, NewGrowthDetector(AlertGoroutineGrowth, SeverityCritical,
			"runtime_goroutines", t.GoroutinesPerMin, 0.5))
	}
	if t.HeapBytesPerMin > 0 {
		out = append(out, NewGrowthDetector(AlertMemoryGrowth, SeverityCritical,
			"runtime_heap_alloc_bytes", t.HeapBytesPerMin, 0.25))
	}
	if t.SummaryStaleAfter > 0 {
		out = append(out, NewStalenessDetector(AlertSummaryStale, SeverityWarning,
			"discovery_summary_pushes_total", t.SummaryStaleAfter))
	}
	if t.ElectionsPerMin > 0 {
		out = append(out, NewRateDetector(AlertElectionFlap, SeverityWarning,
			"discovery_election_transitions_total", t.ElectionsPerMin))
	}
	if t.AppendP99Factor > 0 {
		out = append(out, NewQuantileStepDetector(AlertAppendLatencyStep, SeverityWarning,
			"store_append_seconds", 0.99, t.AppendP99Factor, 16))
	}
	if t.DenialsPerMin > 0 {
		out = append(out, NewSpikeDetector(AlertDenialSpike, SeverityWarning,
			"tenant_denied_total", 8, t.DenialsPerMin))
	}
	return out
}

// WatchdogConfig wires a watchdog. Log and Detectors are required.
type WatchdogConfig struct {
	// Log supplies detector windows (Journal or MemLog).
	Log SampleLog
	// Detectors run each sweep; one alert lifecycle per Code.
	Detectors []Detector
	// Interval is the sweep cadence (default 30s).
	Interval time.Duration
	// Window is the sample span each sweep examines (default 10x
	// Interval).
	Window time.Duration
	// ResolveAfter is how many consecutive quiet sweeps retire an
	// active alert (default 2).
	ResolveAfter int
	// Recorder receives fired alerts; nil records nowhere.
	Recorder *Recorder
	// OnAlert, when set, runs once per firing transition (not per
	// sweep) outside the watchdog lock — the pprof heap capture hook.
	OnAlert func(Alert)
}

// Watchdog runs the detector sweep on its own goroutine; see the package
// comment for the lifecycle.
type Watchdog struct {
	cfg WatchdogConfig

	mu     sync.Mutex
	active map[string]*activeAlert

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

type activeAlert struct {
	alert Alert
	quiet int // consecutive non-firing sweeps
}

// NewWatchdog builds (but does not start) a watchdog.
func NewWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	if cfg.Window <= 0 {
		cfg.Window = 10 * cfg.Interval
	}
	if cfg.ResolveAfter <= 0 {
		cfg.ResolveAfter = 2
	}
	return &Watchdog{
		cfg:    cfg,
		active: make(map[string]*activeAlert),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Start launches the sweep loop.
func (w *Watchdog) Start() {
	go w.loop()
}

func (w *Watchdog) loop() {
	defer close(w.done)
	t := time.NewTicker(w.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			w.RunOnce()
		case <-w.stop:
			return
		}
	}
}

// Stop halts the sweep loop and joins it. Idempotent; active alerts stay
// readable afterwards.
func (w *Watchdog) Stop() {
	w.once.Do(func() {
		close(w.stop)
		<-w.done
	})
}

// RunOnce executes one detector sweep and returns the alerts that fired
// (i.e. newly transitioned to active) during it. Exported so tests and
// one-shot tools can drive the watchdog without its goroutine.
func (w *Watchdog) RunOnce() []Alert {
	samples := w.cfg.Log.Recent(w.cfg.Window)
	now := time.Now()
	var fired []Alert

	w.mu.Lock()
	for _, d := range w.cfg.Detectors {
		code := d.Code()
		alert, firing := d.Examine(samples)
		st := w.active[code]
		switch {
		case firing && st == nil:
			alert.At = now
			alert.Window = w.cfg.Window
			w.active[code] = &activeAlert{alert: alert}
			fired = append(fired, alert)
		case firing:
			// Still firing: refresh the reading, reset the quiet run.
			at := st.alert.At
			st.alert = alert
			st.alert.At = at
			st.alert.Window = w.cfg.Window
			st.quiet = 0
		case st != nil:
			st.quiet++
			if st.quiet >= w.cfg.ResolveAfter {
				delete(w.active, code)
				alertActive.With(code).Set(0)
				alertResolvedTotal.Inc()
			}
		}
	}
	w.mu.Unlock()

	for _, a := range fired {
		alertFiredTotal.With(a.Code).Inc()
		alertActive.With(a.Code).Set(1)
		if w.cfg.Recorder != nil {
			w.cfg.Recorder.RecordAlert(a)
		}
		if w.cfg.OnAlert != nil {
			w.cfg.OnAlert(a)
		}
	}
	watchdogSweepsTotal.Inc()
	return fired
}

// Active returns the currently-firing alerts sorted by code.
func (w *Watchdog) Active() []Alert {
	w.mu.Lock()
	out := make([]Alert, 0, len(w.active))
	for _, st := range w.active {
		out = append(out, st.alert)
	}
	w.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Code < out[b].Code })
	return out
}

// Watchdog instruments, registered at package init.
var (
	alertFiredTotal = NewLabeledCounter("alert_fired_total",
		"drift-watchdog alerts fired, by code", "code")
	alertResolvedTotal = NewCounter("alert_resolved_total",
		"active alerts retired after enough consecutive quiet sweeps")
	alertActive = NewLabeledGauge("alert_active",
		"drift-watchdog alerts currently firing (1 = active), by code", "code")
	watchdogSweepsTotal = NewCounter("alert_watchdog_sweeps_total",
		"detector sweeps executed by drift watchdogs")
)
