package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestNextTraceIDNonZeroAndUnique(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		id := NextTraceID()
		if id == 0 {
			t.Fatal("zero trace ID")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %d", id)
		}
		seen[id] = true
	}
}

// TestTraceIDEntropyMixedIn pins the cross-process collision fix: every
// minted ID carries the process entropy word in its high 32 bits, and
// generators with distinct entropy words emit provably disjoint ID sets
// — which is why two federated daemons can never mint the same ID.
func TestTraceIDEntropyMixedIn(t *testing.T) {
	if TraceIDEntropy() == 0 {
		t.Fatal("process trace-ID entropy is zero")
	}
	if hi := uint32(NextTraceID() >> 32); hi != TraceIDEntropy() {
		t.Fatalf("ID high word %#x, want process entropy %#x", hi, TraceIDEntropy())
	}

	a, b := NewTraceIDGen(0x11), NewTraceIDGen(0x22)
	seen := make(map[uint64]string, 20000)
	for i := 0; i < 10000; i++ {
		for name, g := range map[string]*TraceIDGen{"a": a, "b": b} {
			id := g.Next()
			if id == 0 {
				t.Fatalf("generator %s minted zero", name)
			}
			if prev, dup := seen[id]; dup {
				t.Fatalf("ID %#x minted by both %s and %s", id, prev, name)
			}
			seen[id] = name
		}
	}
}

// TestSetTraceIDEntropy checks the deterministic-injection hook seeded
// simulations use, and restores random entropy afterwards.
func TestSetTraceIDEntropy(t *testing.T) {
	defer SetTraceIDEntropy(0)
	SetTraceIDEntropy(7)
	if got := NextTraceID(); got != 7<<32|1 {
		t.Fatalf("first seeded ID = %#x, want %#x", got, uint64(7<<32|1))
	}
	SetTraceIDEntropy(0)
	if TraceIDEntropy() == 0 {
		t.Fatal("reseeding with zero kept zero entropy")
	}
}

func TestSpanOrdering(t *testing.T) {
	a := NewSpan(1, "n0", EventReceived)
	b := NewSpan(1, "n0", EventLocalMatch)
	c := NewSpan(1, "n0", EventReply)
	shuffled := []Span{c, a, b}
	SortSpans(shuffled)
	if shuffled[0].Event != EventReceived || shuffled[1].Event != EventLocalMatch || shuffled[2].Event != EventReply {
		t.Fatalf("wrong order: %+v", shuffled)
	}
}

func TestFormatSpans(t *testing.T) {
	s := NewSpan(7, "n1", EventForward)
	s.Peer = "n3"
	out := FormatSpans([]Span{s})
	for _, want := range []string{"[7]", "n1", "forward", "peer=n3", "t="} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatSpans missing %q: %q", want, out)
		}
	}
}

// TestNewSpanStampsWallClock pins the PR-5 contract: spans carry a
// wall-clock stamp for humans, while Seq remains the sort key.
func TestNewSpanStampsWallClock(t *testing.T) {
	before := time.Now()
	s := NewSpan(1, "n0", EventReceived)
	if s.Time.Before(before) || time.Since(s.Time) > time.Minute {
		t.Fatalf("span time %v not stamped from the wall clock", s.Time)
	}
}

// TestFormatSpansGolden is the rendering golden test: every field a span
// can carry (peer, hits, duration, give-up reason, wall-clock stamp)
// shows up in its documented position, byte for byte.
func TestFormatSpansGolden(t *testing.T) {
	at := func(ms int) time.Time {
		return time.Date(2026, 8, 6, 12, 30, 4, ms*1e6, time.UTC)
	}
	spans := []Span{
		{Trace: 9, Node: "n1", Event: EventReceived, Peer: "n0", Seq: 1, Time: at(0)},
		{Trace: 9, Node: "n1", Event: EventLocalMatch, Hits: 0, Dur: 1500 * time.Microsecond, Seq: 2, Time: at(2)},
		{Trace: 9, Node: "n1", Event: EventForward, Peer: "n5", Seq: 3, Time: at(3)},
		{Trace: 9, Node: "n1", Event: EventUnreach, Peer: "n5", Reason: ReasonRetries, Seq: 4, Time: at(250)},
		{Trace: 9, Node: "n1", Event: EventReply, Peer: "n0", Hits: 2, Seq: 5}, // no stamp: stays bare
	}
	got := FormatSpans(spans)
	want := "" +
		"  [9] n1 received peer=n0 t=12:30:04.000\n" +
		"  [9] n1 local-match hits=0 dur=1.5ms t=12:30:04.002\n" +
		"  [9] n1 forward peer=n5 t=12:30:04.003\n" +
		"  [9] n1 unreachable peer=n5 reason=retries-exhausted t=12:30:04.250\n" +
		"  [9] n1 reply peer=n0 hits=2\n"
	if got != want {
		t.Fatalf("FormatSpans golden mismatch:\ngot:\n%swant:\n%s", got, want)
	}
}
