package telemetry

import (
	"strings"
	"testing"
)

func TestNextTraceIDNonZeroAndUnique(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		id := NextTraceID()
		if id == 0 {
			t.Fatal("zero trace ID")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %d", id)
		}
		seen[id] = true
	}
}

func TestSpanOrdering(t *testing.T) {
	a := NewSpan(1, "n0", EventReceived)
	b := NewSpan(1, "n0", EventLocalMatch)
	c := NewSpan(1, "n0", EventReply)
	shuffled := []Span{c, a, b}
	SortSpans(shuffled)
	if shuffled[0].Event != EventReceived || shuffled[1].Event != EventLocalMatch || shuffled[2].Event != EventReply {
		t.Fatalf("wrong order: %+v", shuffled)
	}
}

func TestFormatSpans(t *testing.T) {
	s := NewSpan(7, "n1", EventForward)
	s.Peer = "n3"
	out := FormatSpans([]Span{s})
	for _, want := range []string{"[7]", "n1", "forward", "peer=n3"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatSpans missing %q: %q", want, out)
		}
	}
}
