package telemetry

import (
	"testing"
	"time"

	"sariadne/internal/testutil"
)

func TestRingEvictsOldest(t *testing.T) {
	r := NewRing(3)
	for i := 1; i <= 5; i++ {
		r.Add(Sample{Elapsed: time.Duration(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	got := r.Samples()
	if len(got) != 3 || got[0].Elapsed != 3 || got[2].Elapsed != 5 {
		t.Fatalf("Samples = %v, want elapsed 3,4,5", got)
	}
}

func TestRingMinimumCapacity(t *testing.T) {
	r := NewRing(0)
	r.Add(Sample{Elapsed: 1})
	r.Add(Sample{Elapsed: 2})
	r.Add(Sample{Elapsed: 3})
	if got := r.Samples(); len(got) != 2 || got[0].Elapsed != 2 {
		t.Fatalf("Samples = %v, want elapsed 2,3", got)
	}
}

func TestDeltaSnapshotHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewSizeHistogram("test_delta_units", "")
	h.ObserveInt(3) // bucket le=4
	h.ObserveInt(100)
	prev := reg.Snapshot()[0]
	h.ObserveInt(3)
	h.ObserveInt(1000)
	h.ObserveInt(1000)
	cur := reg.Snapshot()[0]

	d := DeltaSnapshot(prev, cur)
	if d.Count != 3 {
		t.Fatalf("delta Count = %d, want 3", d.Count)
	}
	if d.Sum != 2003 {
		t.Fatalf("delta Sum = %v, want 2003", d.Sum)
	}
	// The window held one observation of 3 and two of 1000: p50 falls in
	// the le=1024 bucket? No — ranked: 3, 1000, 1000; p50 is the 2nd.
	if q := d.Quantile(0.50); q != 1024 {
		t.Fatalf("windowed p50 = %v, want 1024", q)
	}
	if q := d.Quantile(0.001); q != 4 {
		t.Fatalf("windowed p0.1 = %v, want 4 (the lone small observation)", q)
	}
	// The 100-valued observation belongs to prev's window only, so the
	// cumulative count must not grow between the le=4 and le=128 edges.
	var cumAt4, cumAt128 uint64
	for _, b := range d.Buckets {
		switch b.UpperBound {
		case 4:
			cumAt4 = b.Count
		case 128:
			cumAt128 = b.Count
		}
	}
	if cumAt4 != 1 || (cumAt128 != 0 && cumAt128 != cumAt4) {
		t.Fatalf("prev's observation leaked into the window: %+v", d.Buckets)
	}
}

func TestDeltaSnapshotCounterAndGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("test_delta_total", "")
	g := reg.NewGauge("test_delta_live", "")
	c.Add(5)
	g.Set(7)
	prev := reg.Snapshot()
	c.Add(2)
	g.Set(3)
	cur := reg.Snapshot()
	if d := DeltaSnapshot(prev[0], cur[0]); d.Value != 2 {
		t.Fatalf("counter delta = %v, want 2", d.Value)
	}
	if d := DeltaSnapshot(prev[1], cur[1]); d.Value != 3 {
		t.Fatalf("gauge delta keeps current value, got %v want 3", d.Value)
	}
}

func TestQuantileCurveWindowsAndWarmup(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewSizeHistogram("test_curve_units", "")

	var samples []Sample
	snap := func(at time.Duration) {
		samples = append(samples, Sample{Elapsed: at, Metrics: reg.Snapshot()})
	}
	snap(0)
	// Warmup window: slow ops that the trim must discard.
	for i := 0; i < 10; i++ {
		h.ObserveInt(1 << 20)
	}
	snap(1 * time.Second)
	// Steady window: fast ops.
	for i := 0; i < 100; i++ {
		h.ObserveInt(10)
	}
	snap(2 * time.Second)
	// Idle window: nothing observed.
	snap(3 * time.Second)

	curve := QuantileCurve(samples, "test_curve_units", time.Second)
	if len(curve) != 2 {
		t.Fatalf("curve has %d points, want 2 (warmup window trimmed): %+v", len(curve), curve)
	}
	steady := curve[0]
	if steady.Count != 100 || steady.Rate != 100 {
		t.Fatalf("steady window count=%d rate=%v, want 100/100", steady.Count, steady.Rate)
	}
	if steady.P99 != 16 {
		t.Fatalf("steady p99 = %v, want 16 (all observations were 10); warmup leaked in", steady.P99)
	}
	idle := curve[1]
	if idle.Count != 0 || idle.P50 != 0 {
		t.Fatalf("idle window not empty: %+v", idle)
	}
}

func TestSamplerCadenceAndStop(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("test_sampler_total", "")
	s := StartSampler(reg, 2*time.Millisecond, 64)
	c.Inc()
	testutil.WaitFor(t, time.Second, func() bool { return s.Ring().Len() >= 3 })
	s.Stop()
	s.Stop() // idempotent
	n := s.Ring().Len()
	if n < 3 {
		t.Fatalf("ring has %d samples, want >= 3", n)
	}
	last := s.Ring().Samples()[n-1]
	m, ok := last.Metric("test_sampler_total")
	if !ok || m.Value != 1 {
		t.Fatalf("final sample lost the counter: %+v", last.Metrics)
	}
}

// TestRingWraparoundPreservesWindowOrder drives a ring far past its
// capacity and checks the surviving samples stay a contiguous,
// oldest-first suffix — the property QuantileCurve's windowing relies on
// during soak runs, where the ring wraps thousands of times.
func TestRingWraparoundPreservesWindowOrder(t *testing.T) {
	r := NewRing(4)
	for i := 1; i <= 103; i++ {
		r.Add(Sample{Elapsed: time.Duration(i) * time.Second})
	}
	got := r.Samples()
	if len(got) != 4 {
		t.Fatalf("Samples = %d, want capacity 4", len(got))
	}
	for i, s := range got {
		want := time.Duration(100+i) * time.Second
		if s.Elapsed != want {
			t.Fatalf("sample %d elapsed = %v, want %v (contiguous newest suffix)", i, s.Elapsed, want)
		}
	}
}

// TestDeltaSnapshotAcrossReset covers the counter-reset boundary: a
// Registry.Reset (or daemon restart in journal-backed history) between
// two samples must clamp the windowed delta to post-reset activity, not
// underflow uint64 subtraction into astronomically large counts.
func TestDeltaSnapshotAcrossReset(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewSizeHistogram("test_reset_units", "")
	c := reg.NewCounter("test_reset_total", "")

	for i := 0; i < 100; i++ {
		h.ObserveInt(100)
		c.Inc()
	}
	var prevH, prevC MetricSnapshot
	for _, m := range reg.Snapshot() {
		switch m.Name {
		case "test_reset_units":
			prevH = m
		case "test_reset_total":
			prevC = m
		}
	}

	reg.Reset()
	h.ObserveInt(3)
	h.ObserveInt(3)
	c.Inc()
	var curH, curC MetricSnapshot
	for _, m := range reg.Snapshot() {
		switch m.Name {
		case "test_reset_units":
			curH = m
		case "test_reset_total":
			curC = m
		}
	}

	dh := DeltaSnapshot(prevH, curH)
	if dh.Count != 2 {
		t.Fatalf("histogram delta across reset: Count = %d, want 2 (underflow?)", dh.Count)
	}
	if dh.Sum != 6 {
		t.Fatalf("histogram delta across reset: Sum = %v, want 6", dh.Sum)
	}
	if got := dh.Quantile(0.99); got != 4 {
		t.Fatalf("windowed p99 across reset = %v, want 4 (bucket of 3)", got)
	}
	for _, b := range dh.Buckets {
		if b.Count > 2 {
			t.Fatalf("bucket %+v exceeds window count 2", b)
		}
	}

	dc := DeltaSnapshot(prevC, curC)
	if dc.Value != 1 {
		t.Fatalf("counter delta across reset = %v, want 1 (post-reset activity)", dc.Value)
	}
}

// TestDeltaSnapshotPartialBucketRegression: a reset that leaves the
// total count higher but individual buckets lower must still never
// underflow a bucket subtraction.
func TestDeltaSnapshotPartialBucketRegression(t *testing.T) {
	prev := MetricSnapshot{Name: "x_units", Kind: KindHistogram, Count: 10, Sum: 40,
		Buckets: []BucketCount{{UpperBound: 4, Count: 10}}}
	cur := MetricSnapshot{Name: "x_units", Kind: KindHistogram, Count: 12, Sum: 300,
		Buckets: []BucketCount{{UpperBound: 4, Count: 2}, {UpperBound: 32, Count: 12}}}
	d := DeltaSnapshot(prev, cur)
	if d.Count != 2 {
		t.Fatalf("Count = %d, want 2", d.Count)
	}
	for _, b := range d.Buckets {
		if b.Count > 1<<40 {
			t.Fatalf("bucket %+v underflowed", b)
		}
	}
}

// TestQuantileCurveAcrossReset: the composed path — a curve spanning a
// reset must not emit a poisoned point.
func TestQuantileCurveAcrossReset(t *testing.T) {
	reg := NewRegistry()
	h := reg.NewSizeHistogram("test_curve_reset_units", "")
	r := NewRing(8)

	h.ObserveInt(10)
	h.ObserveInt(10)
	r.Add(Sample{Elapsed: 1 * time.Second, Metrics: reg.Snapshot()})
	reg.Reset()
	h.ObserveInt(10)
	r.Add(Sample{Elapsed: 2 * time.Second, Metrics: reg.Snapshot()})

	curve := QuantileCurve(r.Samples(), "test_curve_reset_units", 0)
	if len(curve) != 1 {
		t.Fatalf("curve has %d points, want 1", len(curve))
	}
	if curve[0].Count != 1 {
		t.Fatalf("post-reset window count = %d, want 1", curve[0].Count)
	}
}
