package telemetry

import (
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"sariadne/internal/testutil"
)

func TestSampleRuntimePopulatesGauges(t *testing.T) {
	SampleRuntime()
	if got := runtimeGoroutines.Value(); got < 1 {
		t.Fatalf("runtime_goroutines = %d, want >= 1", got)
	}
	if got := runtimeHeapAllocBytes.Value(); got <= 0 {
		t.Fatalf("runtime_heap_alloc_bytes = %d, want > 0", got)
	}
	if got := runtimeSysBytes.Value(); got <= 0 {
		t.Fatalf("runtime_sys_bytes = %d, want > 0", got)
	}
	if got := runtimeUptimeSeconds.Value(); got < 0 {
		t.Fatalf("runtime_uptime_seconds = %v, want >= 0", got)
	}
}

func TestSampleRuntimeSeesGoroutineGrowth(t *testing.T) {
	SampleRuntime()
	before := runtimeGoroutines.Value()

	stop := make(chan struct{})
	defer close(stop)
	const n = 50
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func() {
			started <- struct{}{}
			<-stop
		}()
	}
	for i := 0; i < n; i++ {
		<-started
	}
	SampleRuntime()
	if got := runtimeGoroutines.Value(); got < before+n {
		t.Fatalf("runtime_goroutines = %d after leaking %d, want >= %d", got, n, before+n)
	}
}

func TestSampleRuntimeCountsGCCycles(t *testing.T) {
	SampleRuntime()
	before := runtimeGcCyclesTotal.Value()
	pausesBefore := runtimeGcPauseSeconds.Count()
	runtime.GC()
	runtime.GC()
	SampleRuntime()
	if got := runtimeGcCyclesTotal.Value(); got < before+2 {
		t.Fatalf("runtime_gc_cycles_total = %d, want >= %d", got, before+2)
	}
	if got := runtimeGcPauseSeconds.Count(); got < pausesBefore+2 {
		t.Fatalf("gc pause observations = %d, want >= %d", got, pausesBefore+2)
	}
	// A second sample with no GC in between must not re-observe pauses.
	mid := runtimeGcPauseSeconds.Count()
	SampleRuntime()
	// GC may run on its own between the two samples; only assert we did
	// not double-count the cycles already folded in.
	if got := runtimeGcPauseSeconds.Count(); got < mid {
		t.Fatalf("pause observations went backwards: %d -> %d", mid, got)
	}
}

func TestCountOpenFds(t *testing.T) {
	n := countOpenFds()
	if _, err := os.Stat("/proc/self/fd"); err != nil {
		if n != -1 {
			t.Fatalf("countOpenFds = %d without procfs, want -1", n)
		}
		return
	}
	if n < 1 {
		t.Fatalf("countOpenFds = %d, want >= 1 (stdio)", n)
	}
	f, err := os.Open(os.DevNull)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if n2 := countOpenFds(); n2 < n+1 {
		t.Fatalf("countOpenFds after extra open = %d, want >= %d", n2, n+1)
	}
}

func TestCaptureHeapProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.pprof")
	if err := CaptureHeapProfile(path); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Fatal("heap profile is empty")
	}
	// No temp litter left behind.
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("profile dir holds %d entries, want 1", len(ents))
	}
}

func TestSamplerHooksRun(t *testing.T) {
	reg := NewRegistry()
	c := reg.NewCounter("hooked_total", "")

	var mu sync.Mutex
	collects := 0
	var samples []Sample
	s := StartSamplerConfig(reg, 5*time.Millisecond, 16, SamplerConfig{
		Collect: func() {
			mu.Lock()
			defer mu.Unlock()
			collects++
			c.Inc()
		},
		OnSample: func(sm Sample) {
			mu.Lock()
			defer mu.Unlock()
			samples = append(samples, sm)
		},
	})
	testutil.WaitFor(t, time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(samples) >= 3
	}, "sampler hooks never ran")
	s.Stop()

	mu.Lock()
	defer mu.Unlock()
	if collects != len(samples) {
		t.Fatalf("collects = %d, samples = %d, want equal", collects, len(samples))
	}
	// Collect runs before the snapshot, so each sample sees its own tick.
	for i, sm := range samples {
		m, ok := sm.Metric("hooked_total")
		if !ok || m.Value != float64(i+1) {
			t.Fatalf("sample %d sees hooked_total=%v, want %d", i, m.Value, i+1)
		}
	}
}
