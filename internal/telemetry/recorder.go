package telemetry

import (
	"sync"
	"time"
)

// Protocol event kinds held by the flight recorder alongside traces.
// Like span events the vocabulary is closed, so surfaces and tests can
// match on it.
const (
	ProtoElection    = "election"     // a node changed election role
	ProtoPeerUp      = "peer-up"      // a backbone peer was first heard from
	ProtoPeerEvicted = "peer-evicted" // a peer was dropped after consecutive give-ups
	ProtoGiveUp      = "give-up"      // a forward was abandoned
	ProtoFault       = "fault"        // a fault was injected (simnet plans, manual crashes)
)

// TraceRecord is one retained traced query: the merged span tree plus
// the origin-side envelope (who asked, how long it took, how it was
// selected for retention).
type TraceRecord struct {
	// ID is the query's trace ID; the recorder keys retained traces by it.
	ID uint64 `json:"id"`
	// Node is the origin node that deposited the record.
	Node string `json:"node"`
	// Start is when the origin dispatched the query.
	Start time.Time `json:"start"`
	// Dur is the origin-observed end-to-end latency.
	Dur time.Duration `json:"dur"`
	// Hits counts the results returned to the caller.
	Hits int `json:"hits"`
	// Partial marks replies that carried an unreachable-peers marker.
	Partial bool `json:"partial,omitempty"`
	// Sampled marks queries traced by the 1-in-N sampler (as opposed to
	// an explicit DiscoverTrace or the slow-query latch).
	Sampled bool `json:"sampled,omitempty"`
	// Slow marks queries that exceeded the slow-query threshold.
	Slow bool `json:"slow,omitempty"`
	// Spans is the merged cross-daemon span tree, in Seq order. Empty for
	// slow queries that were not carrying a trace ID when dispatched.
	Spans []Span `json:"spans,omitempty"`
}

// ProtoEvent is one retained protocol event: elections, peer state
// transitions, forward give-ups, fault injections.
type ProtoEvent struct {
	Seq    uint64    `json:"seq"`              // recorder-local monotonic order
	Time   time.Time `json:"time"`             // wall-clock stamp
	Node   string    `json:"node"`             // node the event happened on
	Kind   string    `json:"kind"`             // one of the Proto* constants
	Peer   string    `json:"peer,omitempty"`   // remote party, when there is one
	Detail string    `json:"detail,omitempty"` // free-form context (reason, role, counts)
}

// Recorder is a bounded flight recorder: a fixed-size ring of recent
// traced queries keyed by trace ID plus a fixed-size ring of protocol
// events. Appends are O(1) and never grow memory past the configured
// capacities — the oldest entry is overwritten — so it is safe to leave
// recording always-on in production daemons. All methods are
// goroutine-safe; a nil *Recorder ignores appends and answers reads
// empty, so call sites need no guards.
type Recorder struct {
	mu       sync.Mutex
	traces   []TraceRecord // ring; grows to traceCap then wraps
	traceCap int
	nextT    int            // slot the next trace overwrites
	byID     map[uint64]int // trace ID -> ring slot
	events   []ProtoEvent   // ring; grows to eventCap then wraps
	eventCap int
	nextE    int // slot the next event overwrites
	seq      uint64
	alerts   []Alert // ring; grows to alertCap then wraps
	alertCap int
	nextA    int // slot the next alert overwrites
}

// Capacity defaults for the process-wide recorder: enough to hold the
// recent past of a busy daemon without unbounded growth.
const (
	DefaultTraceCap = 256
	DefaultEventCap = 1024
	DefaultAlertCap = 256
)

// NewRecorder builds a recorder retaining up to traceCap traced queries
// and eventCap protocol events; non-positive capacities get the
// defaults.
func NewRecorder(traceCap, eventCap int) *Recorder {
	if traceCap <= 0 {
		traceCap = DefaultTraceCap
	}
	if eventCap <= 0 {
		eventCap = DefaultEventCap
	}
	return &Recorder{
		traceCap: traceCap,
		eventCap: eventCap,
		alertCap: DefaultAlertCap,
		byID:     make(map[uint64]int),
	}
}

// flight is the process-wide recorder behind FlightRecorder.
var flight = NewRecorder(DefaultTraceCap, DefaultEventCap)

// FlightRecorder returns the process-wide flight recorder that sdpd's
// /traces and /events surfaces serve. Components record into it by
// default; tests inject private recorders.
func FlightRecorder() *Recorder { return flight }

// RecordTrace retains one traced query, evicting the oldest retained
// trace when the ring is full. Re-recording an ID overwrites in place is
// NOT attempted: trace IDs are unique per query, so duplicates only
// arise from callers recording twice, and both land in the ring.
func (r *Recorder) RecordTrace(tr TraceRecord) {
	if r == nil || tr.ID == 0 {
		return
	}
	r.mu.Lock()
	if len(r.traces) < r.traceCap {
		r.byID[tr.ID] = len(r.traces)
		r.traces = append(r.traces, tr)
		r.nextT = len(r.traces) % r.traceCap
	} else {
		old := r.traces[r.nextT]
		if r.byID[old.ID] == r.nextT {
			delete(r.byID, old.ID)
		}
		recorderTraceEvictionsTotal.Inc()
		r.byID[tr.ID] = r.nextT
		r.traces[r.nextT] = tr
		r.nextT = (r.nextT + 1) % r.traceCap
	}
	r.mu.Unlock()
	recorderTracesTotal.Inc()
}

// Trace returns the retained record for a trace ID.
func (r *Recorder) Trace(id uint64) (TraceRecord, bool) {
	if r == nil {
		return TraceRecord{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	slot, ok := r.byID[id]
	if !ok {
		return TraceRecord{}, false
	}
	return r.traces[slot], true
}

// Traces returns the retained traces, newest first. Span slices are
// shared with the ring; treat them as read-only.
func (r *Recorder) Traces() []TraceRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceRecord, 0, len(r.traces))
	for i := 0; i < len(r.traces); i++ {
		// Walk backward from the most recently written slot.
		slot := (r.nextT - 1 - i + 2*len(r.traces)) % len(r.traces)
		out = append(out, r.traces[slot])
	}
	return out
}

// RecordEvent retains one protocol event, stamped with the wall clock
// and a recorder-local sequence number, evicting the oldest when full.
func (r *Recorder) RecordEvent(node, kind, peer, detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.seq++
	ev := ProtoEvent{Seq: r.seq, Time: time.Now(), Node: node, Kind: kind, Peer: peer, Detail: detail}
	if len(r.events) < r.eventCap {
		r.events = append(r.events, ev)
		r.nextE = len(r.events) % r.eventCap
	} else {
		r.events[r.nextE] = ev
		r.nextE = (r.nextE + 1) % r.eventCap
	}
	r.mu.Unlock()
	recorderEventsTotal.Inc()
}

// Events returns the retained protocol events, newest first.
func (r *Recorder) Events() []ProtoEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ProtoEvent, 0, len(r.events))
	for i := 0; i < len(r.events); i++ {
		slot := (r.nextE - 1 - i + 2*len(r.events)) % len(r.events)
		out = append(out, r.events[slot])
	}
	return out
}

// RecordAlert retains one watchdog alert in the alert ring, evicting the
// oldest when full. The watchdog's fire-transition is the only writer,
// so the ring is a fired-alert history, not an active set — Active
// status lives on the Watchdog.
func (r *Recorder) RecordAlert(a Alert) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.alerts) < r.alertCap {
		r.alerts = append(r.alerts, a)
		r.nextA = len(r.alerts) % r.alertCap
	} else {
		r.alerts[r.nextA] = a
		r.nextA = (r.nextA + 1) % r.alertCap
	}
	r.mu.Unlock()
	recorderAlertsTotal.Inc()
}

// Alerts returns the retained fired-alert history, newest first.
func (r *Recorder) Alerts() []Alert {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Alert, 0, len(r.alerts))
	for i := 0; i < len(r.alerts); i++ {
		slot := (r.nextA - 1 - i + 2*len(r.alerts)) % len(r.alerts)
		out = append(out, r.alerts[slot])
	}
	return out
}

// Recorder occupancy and churn instruments. Registered here (package
// init) like every other metric; the recorder itself stays registry-free
// so private recorders in tests share them harmlessly.
var (
	recorderTracesTotal = NewCounter("telemetry_recorder_traces_total",
		"traced queries deposited into flight recorders")
	recorderTraceEvictionsTotal = NewCounter("telemetry_recorder_trace_evictions_total",
		"retained traces overwritten by newer ones in a full ring")
	recorderEventsTotal = NewCounter("telemetry_recorder_events_total",
		"protocol events deposited into flight recorders")
	recorderAlertsTotal = NewCounter("telemetry_recorder_alerts_total",
		"watchdog alerts deposited into flight recorders")
)
