package telemetry

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// sampleAt builds a synthetic journal sample with one counter reading.
func sampleAt(t time.Time, counter string, v float64) JournalSample {
	return JournalSample{Time: t, Metrics: []MetricSnapshot{
		{Name: counter, Kind: KindCounter, Value: v},
	}}
}

func TestJournalRoundTrip(t *testing.T) {
	in := JournalSample{
		Time: time.UnixMilli(1700000000123),
		Metrics: []MetricSnapshot{
			{Name: "a_total", Kind: KindCounter, Value: 42},
			{Name: "b_gauge", Kind: KindGauge, Value: -7},
			{Name: "fam_total", Kind: KindCounter, Label: "code", LabelValue: "x", Value: 3},
			{Name: "h_seconds", Kind: KindHistogram, Count: 5, Sum: 1.25,
				Buckets: []BucketCount{{UpperBound: 0.5, Count: 3}, {UpperBound: 2, Count: 5}}},
		},
	}
	payload, err := EncodeJournalSample(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeJournalSample(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Time.Equal(in.Time) {
		t.Fatalf("Time = %v, want %v", out.Time, in.Time)
	}
	if len(out.Metrics) != len(in.Metrics) {
		t.Fatalf("Metrics len = %d, want %d", len(out.Metrics), len(in.Metrics))
	}
	for i := range in.Metrics {
		a, b := in.Metrics[i], out.Metrics[i]
		a.Help = "" // Help is deliberately not persisted
		if a.Name != b.Name || a.Kind != b.Kind || a.Label != b.Label ||
			a.LabelValue != b.LabelValue || a.Value != b.Value ||
			a.Count != b.Count || a.Sum != b.Sum || len(a.Buckets) != len(b.Buckets) {
			t.Fatalf("metric %d: got %+v, want %+v", i, b, a)
		}
	}
}

func TestJournalRejectsNewerVersion(t *testing.T) {
	_, err := DecodeJournalSample([]byte(`{"v":99,"t":0}`))
	var ve *JournalVersionError
	if err == nil {
		t.Fatal("decoding a v99 record succeeded")
	}
	if !errors.As(err, &ve) || ve.Version != 99 {
		t.Fatalf("err = %v, want JournalVersionError{99}", err)
	}
}

func TestJournalPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now().Add(-time.Minute)
	for i := 0; i < 10; i++ {
		if err := j.Append(sampleAt(base.Add(time.Duration(i)*time.Second), "x_total", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = j2.Close() }()
	hist := j2.History()
	if len(hist) != 10 {
		t.Fatalf("History after reopen = %d samples, want 10", len(hist))
	}
	if m, ok := hist[9].Metric("x_total"); !ok || m.Value != 9 {
		t.Fatalf("last sample = %+v, want x_total=9", hist[9])
	}
	if j2.TornTail() {
		t.Fatal("clean reopen reported a torn tail")
	}
	// New appends continue the same history.
	if err := j2.Append(sampleAt(base.Add(time.Minute), "x_total", 10)); err != nil {
		t.Fatal(err)
	}
	if got := len(j2.History()); got != 11 {
		t.Fatalf("History after continued append = %d, want 11", got)
	}
}

func TestJournalTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now().Add(-time.Minute)
	for i := 0; i < 5; i++ {
		if err := j.Append(sampleAt(base.Add(time.Duration(i)*time.Second), "x_total", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash simulation: append half a frame to the active segment.
	seg := filepath.Join(dir, "000000000001.tjseg")
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var torn [12]byte
	binary.LittleEndian.PutUint32(torn[0:4], 500) // promises 500 payload bytes
	binary.LittleEndian.PutUint32(torn[4:8], crc32.ChecksumIEEE([]byte("x")))
	if _, err := f.Write(torn[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = j2.Close() }()
	if !j2.TornTail() {
		t.Fatal("reopen over a half-written frame did not report a torn tail")
	}
	if got := len(j2.History()); got != 5 {
		t.Fatalf("History after torn-tail recovery = %d samples, want 5", got)
	}
	if fi2, err := os.Stat(seg); err != nil || fi2.Size() != fi.Size() {
		t.Fatalf("segment size after truncation = %v (err %v), want %d", fi2.Size(), err, fi.Size())
	}
	// The journal must accept appends on the cleaned edge and read them
	// back after another reopen.
	if err := j2.Append(sampleAt(base.Add(time.Minute), "x_total", 5)); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = j3.Close() }()
	if got := len(j3.History()); got != 6 {
		t.Fatalf("History after post-recovery append = %d samples, want 6", got)
	}
}

func TestJournalCorruptPayloadStopsSegment(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now().Add(-time.Minute)
	for i := 0; i < 3; i++ {
		if err := j.Append(sampleAt(base.Add(time.Duration(i)*time.Second), "x_total", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte of the last frame: CRC must catch it.
	seg := filepath.Join(dir, "000000000001.tjseg")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = j2.Close() }()
	if !j2.TornTail() {
		t.Fatal("bit flip in the tail frame went undetected")
	}
	if got := len(j2.History()); got != 2 {
		t.Fatalf("History after corrupt tail = %d samples, want 2", got)
	}
}

func TestJournalRotatesAndPrunes(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force a rotation roughly every append.
	j, err := OpenJournal(dir, JournalOptions{MaxSegmentBytes: 64, MaxSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = j.Close() }()
	base := time.Now().Add(-time.Minute)
	for i := 0; i < 12; i++ {
		if err := j.Append(sampleAt(base.Add(time.Duration(i)*time.Second), "x_total", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) > 3 {
		t.Fatalf("segment files = %d, want <= 3 after pruning", len(ents))
	}
	// The in-memory tail still holds everything within its own bound.
	if got := len(j.History()); got != 12 {
		t.Fatalf("History = %d samples, want 12", got)
	}
	// Replay only sees what disk retained, newest segments, oldest first.
	var replayed []JournalSample
	if err := j.Replay(func(s JournalSample) error { replayed = append(replayed, s); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(replayed) == 0 || len(replayed) >= 12 {
		t.Fatalf("Replay = %d samples, want pruned-but-nonzero subset", len(replayed))
	}
	for i := 1; i < len(replayed); i++ {
		if replayed[i].Time.Before(replayed[i-1].Time) {
			t.Fatal("Replay out of order")
		}
	}
}

func TestJournalRecentWindow(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = j.Close() }()
	now := time.Now()
	for _, off := range []time.Duration{-10 * time.Minute, -5 * time.Minute, -30 * time.Second, -time.Second} {
		if err := j.Append(sampleAt(now.Add(off), "x_total", 1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(j.Recent(time.Minute)); got != 2 {
		t.Fatalf("Recent(1m) = %d samples, want 2", got)
	}
	if got := len(j.Recent(time.Hour)); got != 4 {
		t.Fatalf("Recent(1h) = %d samples, want 4", got)
	}
}

func TestJournalCacheBound(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{CacheSamples: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = j.Close() }()
	base := time.Now().Add(-time.Minute)
	for i := 0; i < 10; i++ {
		if err := j.Append(sampleAt(base.Add(time.Duration(i)*time.Second), "x_total", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	hist := j.History()
	if len(hist) != 4 {
		t.Fatalf("History = %d samples, want cache bound 4", len(hist))
	}
	if m, _ := hist[0].Metric("x_total"); m.Value != 6 {
		t.Fatalf("oldest cached sample = %v, want x_total=6", m.Value)
	}
}

func TestJournalAppendAfterClose(t *testing.T) {
	j, err := OpenJournal(t.TempDir(), JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(sampleAt(time.Now(), "x_total", 1)); err != ErrJournalClosed {
		t.Fatalf("Append after Close = %v, want ErrJournalClosed", err)
	}
}
