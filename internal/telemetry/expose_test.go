package telemetry

import (
	"encoding/json"
	"regexp"
	"strings"
	"testing"
)

func testRegistry() *Registry {
	r := NewRegistry()
	c := r.NewCounter("demo_ops_total", "operations")
	c.Add(3)
	g := r.NewFloatGauge("demo_rate", "a rate")
	g.Set(0.25)
	h := r.NewSizeHistogram("demo_depth", "depths")
	h.ObserveInt(1)
	h.ObserveInt(3)
	return r
}

func TestWritePrometheusFormat(t *testing.T) {
	var b strings.Builder
	if err := testRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP demo_ops_total operations\n",
		"# TYPE demo_ops_total counter\n",
		"demo_ops_total 3\n",
		"# TYPE demo_rate gauge\n",
		"demo_rate 0.25\n",
		"# TYPE demo_depth histogram\n",
		"demo_depth_bucket{le=\"2\"} 1\n",
		"demo_depth_bucket{le=\"4\"} 2\n",
		"demo_depth_bucket{le=\"+Inf\"} 2\n",
		"demo_depth_sum 4\n",
		"demo_depth_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	checkExposition(t, out)
}

// checkExposition validates the Prometheus text format line by line —
// the same check the metrics-smoke CI target applies to a live sdpd.
func checkExposition(t *testing.T, out string) {
	t.Helper()
	sample := regexp.MustCompile(`^[a-z][a-z0-9_]*(\{le="[^"]+"\})? -?[0-9][0-9eE.+-]*$|^[a-z][a-z0-9_]*(\{le="[^"]+"\})? \+Inf$`)
	comment := regexp.MustCompile(`^# (HELP|TYPE) [a-z][a-z0-9_]* .+$`)
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if comment.MatchString(line) || sample.MatchString(line) {
			continue
		}
		t.Errorf("malformed exposition line: %q", line)
	}
}

func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := testRegistry().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var obj map[string]any
	if err := json.Unmarshal([]byte(b.String()), &obj); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if got := obj["demo_ops_total"]; got != 3.0 {
		t.Errorf("demo_ops_total = %v, want 3", got)
	}
	h, ok := obj["demo_depth"].(map[string]any)
	if !ok {
		t.Fatalf("demo_depth = %T, want object", obj["demo_depth"])
	}
	if h["count"] != 2.0 {
		t.Errorf("histogram count = %v, want 2", h["count"])
	}
}

func TestWriteSummaryElidesZeroes(t *testing.T) {
	r := testRegistry()
	r.NewCounter("demo_unused_total", "never incremented")
	out := r.Summary()
	if strings.Contains(out, "demo_unused_total") {
		t.Errorf("summary includes zero metric:\n%s", out)
	}
	for _, want := range []string{"-- telemetry --", "demo_ops_total: 3", "demo_depth: count=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
