package telemetry

import (
	"testing"
	"time"

	"sariadne/internal/testutil"
)

// syntheticWindow builds n samples one second apart ending now, with
// per-sample metric values supplied by gen(i).
func syntheticWindow(n int, gen func(i int) []MetricSnapshot) []JournalSample {
	base := time.Now().Add(-time.Duration(n) * time.Second)
	out := make([]JournalSample, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, JournalSample{Time: base.Add(time.Duration(i) * time.Second), Metrics: gen(i)})
	}
	return out
}

func gaugeAt(name string, v float64) []MetricSnapshot {
	return []MetricSnapshot{{Name: name, Kind: KindGauge, Value: v}}
}

func counterAt(name string, v float64) []MetricSnapshot {
	return []MetricSnapshot{{Name: name, Kind: KindCounter, Value: v}}
}

func TestGrowthDetectorFiresOnLeak(t *testing.T) {
	d := NewGrowthDetector(AlertGoroutineGrowth, SeverityCritical, "runtime_goroutines", 30, 0.5)
	// 100 goroutines growing by 10/sec = 600/min across 30 samples.
	leak := syntheticWindow(30, func(i int) []MetricSnapshot {
		return gaugeAt("runtime_goroutines", float64(100+10*i))
	})
	a, firing := d.Examine(leak)
	if !firing {
		t.Fatal("leak window did not fire")
	}
	if a.Code != AlertGoroutineGrowth || a.Severity != SeverityCritical {
		t.Fatalf("alert = %+v", a)
	}
	if a.Value < 500 || a.Value > 700 {
		t.Fatalf("fitted slope = %.1f/min, want ~600", a.Value)
	}
	if a.Evidence == "" {
		t.Fatal("alert carries no evidence")
	}
}

func TestGrowthDetectorQuietOnSteadyState(t *testing.T) {
	d := NewGrowthDetector(AlertGoroutineGrowth, SeverityCritical, "runtime_goroutines", 30, 0.5)
	// Big but flat gauge with a one-unit wiggle.
	steady := syntheticWindow(30, func(i int) []MetricSnapshot {
		return gaugeAt("runtime_goroutines", float64(5000+i%2))
	})
	if _, firing := d.Examine(steady); firing {
		t.Fatal("steady window fired")
	}
	// Fast slope but tiny fraction of a large base must stay quiet too.
	bigBase := syntheticWindow(30, func(i int) []MetricSnapshot {
		return gaugeAt("runtime_goroutines", float64(100000+2*i))
	})
	if _, firing := d.Examine(bigBase); firing {
		t.Fatal("proportionally-insignificant growth fired")
	}
	// Too few samples: no verdict.
	if _, firing := d.Examine(syntheticWindow(3, func(i int) []MetricSnapshot {
		return gaugeAt("runtime_goroutines", float64(100*i))
	})); firing {
		t.Fatal("three-sample window fired")
	}
}

func TestStalenessDetector(t *testing.T) {
	d := NewStalenessDetector(AlertSummaryStale, SeverityWarning, "discovery_summary_pushes_total", 10*time.Second)
	// Counter moved early, then froze for the rest of the window.
	stale := syntheticWindow(30, func(i int) []MetricSnapshot {
		v := float64(i)
		if i > 5 {
			v = 5
		}
		return counterAt("discovery_summary_pushes_total", v)
	})
	a, firing := d.Examine(stale)
	if !firing {
		t.Fatal("stalled counter did not fire")
	}
	if a.Value < (24-1) || a.Code != AlertSummaryStale {
		t.Fatalf("alert = %+v, want ~24s staleness", a)
	}

	// Still moving: quiet.
	moving := syntheticWindow(30, func(i int) []MetricSnapshot {
		return counterAt("discovery_summary_pushes_total", float64(i))
	})
	if _, firing := d.Examine(moving); firing {
		t.Fatal("moving counter fired")
	}

	// Never nonzero (single-node daemon, no summary pipeline): quiet.
	silent := syntheticWindow(30, func(i int) []MetricSnapshot {
		return counterAt("discovery_summary_pushes_total", 0)
	})
	if _, firing := d.Examine(silent); firing {
		t.Fatal("never-active counter fired")
	}
}

func TestRateDetectorElectionFlap(t *testing.T) {
	d := NewRateDetector(AlertElectionFlap, SeverityWarning, "discovery_election_transitions_total", 6)
	// One transition per second = 60/min.
	flapping := syntheticWindow(30, func(i int) []MetricSnapshot {
		return counterAt("discovery_election_transitions_total", float64(i))
	})
	a, firing := d.Examine(flapping)
	if !firing {
		t.Fatal("flapping window did not fire")
	}
	if a.Value < 50 || a.Value > 70 {
		t.Fatalf("rate = %.1f/min, want ~60", a.Value)
	}
	// One transition over the whole window = 2/min: quiet.
	settled := syntheticWindow(30, func(i int) []MetricSnapshot {
		v := 0.0
		if i > 15 {
			v = 1
		}
		return counterAt("discovery_election_transitions_total", v)
	})
	if _, firing := d.Examine(settled); firing {
		t.Fatal("settled window fired")
	}
	// Counter reset mid-window (daemon restart): only post-reset
	// transitions count, so one transition after a restart stays quiet
	// even though the raw delta is -999.
	reset := syntheticWindow(30, func(i int) []MetricSnapshot {
		v := float64(1000)
		if i > 15 {
			v = 1
		}
		return counterAt("discovery_election_transitions_total", v)
	})
	if a, firing := d.Examine(reset); firing {
		t.Fatalf("reset window fired with rate %.1f/min", a.Value)
	}
}

func TestQuantileStepDetector(t *testing.T) {
	d := NewQuantileStepDetector(AlertAppendLatencyStep, SeverityWarning, "store_append_seconds", 0.99, 8, 16)
	// Build cumulative histogram snapshots: first half fast appends
	// (~1ms), second half slow ones (~100ms).
	hist := func(fast, slow uint64) []MetricSnapshot {
		var b []BucketCount
		cum := fast
		b = append(b, BucketCount{UpperBound: 0.002, Count: cum})
		if slow > 0 {
			cum += slow
			b = append(b, BucketCount{UpperBound: 0.15, Count: cum})
		}
		return []MetricSnapshot{{Name: "store_append_seconds", Kind: KindHistogram,
			Count: cum, Sum: float64(fast)*0.001 + float64(slow)*0.1, Buckets: b}}
	}
	// The split sample (index 10) must close an all-fast baseline half;
	// slow appends start strictly after it.
	stepped := syntheticWindow(20, func(i int) []MetricSnapshot {
		if i <= 10 {
			return hist(uint64(10*(i+1)), 0)
		}
		return hist(110, uint64(10*(i-10)))
	})
	a, firing := d.Examine(stepped)
	if !firing {
		t.Fatal("latency step did not fire")
	}
	if a.Value < 0.1 {
		t.Fatalf("stepped p99 = %vs, want >= 0.1", a.Value)
	}
	// Uniform latency: quiet.
	flat := syntheticWindow(20, func(i int) []MetricSnapshot {
		return hist(uint64(10*(i+1)), 0)
	})
	if _, firing := d.Examine(flat); firing {
		t.Fatal("flat latency fired")
	}
	// Too few observations per half: quiet regardless of shape.
	thin := syntheticWindow(20, func(i int) []MetricSnapshot {
		if i <= 10 {
			return hist(uint64(i+1), 0)
		}
		return hist(11, uint64(i-10))
	})
	if _, firing := d.Examine(thin); firing {
		t.Fatal("under-minCount window fired")
	}
}

func TestSpikeDetectorDenials(t *testing.T) {
	d := NewSpikeDetector(AlertDenialSpike, SeverityWarning, "tenant_denied_total", 8, 30)
	// Quiet baseline, then 60/min of denials in the second half.
	spike := syntheticWindow(30, func(i int) []MetricSnapshot {
		v := 0.0
		if i > 15 {
			v = float64(i-15) * 1.0
		}
		return counterAt("tenant_denied_total", v)
	})
	a, firing := d.Examine(spike)
	if !firing {
		t.Fatal("denial spike did not fire")
	}
	if a.Code != AlertDenialSpike {
		t.Fatalf("alert = %+v", a)
	}
	// Steady low-level denials under the floor: quiet.
	trickle := syntheticWindow(30, func(i int) []MetricSnapshot {
		return counterAt("tenant_denied_total", float64(i)/10)
	})
	if _, firing := d.Examine(trickle); firing {
		t.Fatal("trickle fired")
	}
	// High but steady rate: over the floor in both halves, no spike
	// over baseline, quiet.
	steady := syntheticWindow(30, func(i int) []MetricSnapshot {
		return counterAt("tenant_denied_total", float64(i))
	})
	if _, firing := d.Examine(steady); firing {
		t.Fatal("steady rate fired despite flat baseline")
	}
}

func TestWatchdogLifecycle(t *testing.T) {
	log := NewMemLog(64)
	rec := NewRecorder(4, 4)
	wd := NewWatchdog(WatchdogConfig{
		Log:          log,
		Detectors:    []Detector{NewGrowthDetector(AlertGoroutineGrowth, SeverityCritical, "runtime_goroutines", 30, 0.5)},
		Interval:     time.Hour, // driven manually via RunOnce
		Window:       time.Hour,
		ResolveAfter: 2,
		Recorder:     rec,
	})

	var hooked []Alert
	wd.cfg.OnAlert = func(a Alert) { hooked = append(hooked, a) }

	// Healthy window: nothing fires.
	for _, s := range syntheticWindow(10, func(i int) []MetricSnapshot {
		return gaugeAt("runtime_goroutines", 100)
	}) {
		log.Append(s)
	}
	if fired := wd.RunOnce(); len(fired) != 0 || len(wd.Active()) != 0 {
		t.Fatalf("healthy sweep fired %v", fired)
	}

	// Leak: fires exactly once while it persists.
	for _, s := range syntheticWindow(20, func(i int) []MetricSnapshot {
		return gaugeAt("runtime_goroutines", float64(100+50*i))
	}) {
		log.Append(s)
	}
	fired := wd.RunOnce()
	if len(fired) != 1 || fired[0].Code != AlertGoroutineGrowth {
		t.Fatalf("leak sweep fired %v", fired)
	}
	if again := wd.RunOnce(); len(again) != 0 {
		t.Fatalf("second sweep re-fired %v", again)
	}
	if act := wd.Active(); len(act) != 1 || act[0].Code != AlertGoroutineGrowth {
		t.Fatalf("Active = %v", act)
	}
	if len(hooked) != 1 {
		t.Fatalf("OnAlert ran %d times, want 1", len(hooked))
	}
	if recs := rec.Alerts(); len(recs) != 1 || recs[0].Code != AlertGoroutineGrowth {
		t.Fatalf("recorder alerts = %v", recs)
	}

	// Recovery: after ResolveAfter quiet sweeps the alert retires.
	log2 := NewMemLog(64)
	for _, s := range syntheticWindow(10, func(i int) []MetricSnapshot {
		return gaugeAt("runtime_goroutines", 100)
	}) {
		log2.Append(s)
	}
	wd.cfg.Log = log2
	wd.RunOnce()
	if len(wd.Active()) != 1 {
		t.Fatal("alert resolved after a single quiet sweep (ResolveAfter=2)")
	}
	wd.RunOnce()
	if len(wd.Active()) != 0 {
		t.Fatal("alert still active after ResolveAfter quiet sweeps")
	}
	// A recurrence fires fresh.
	wd.cfg.Log = log
	if fired := wd.RunOnce(); len(fired) != 1 {
		t.Fatalf("recurrence fired %v", fired)
	}
}

func TestWatchdogStartStop(t *testing.T) {
	log := NewMemLog(8)
	wd := NewWatchdog(WatchdogConfig{
		Log:       log,
		Detectors: StandardDetectors(Thresholds{}),
		Interval:  time.Millisecond,
	})
	before := watchdogSweepsTotal.Value()
	wd.Start()
	testutil.WaitFor(t, time.Second, func() bool {
		return watchdogSweepsTotal.Value() > before
	}, "watchdog never swept")
	wd.Stop()
	wd.Stop() // idempotent
}

func TestStandardDetectorsCoverage(t *testing.T) {
	dets := StandardDetectors(Thresholds{})
	want := map[string]bool{
		AlertGoroutineGrowth: true, AlertMemoryGrowth: true, AlertSummaryStale: true,
		AlertElectionFlap: true, AlertAppendLatencyStep: true, AlertDenialSpike: true,
	}
	for _, d := range dets {
		delete(want, d.Code())
	}
	if len(want) != 0 {
		t.Fatalf("standard set missing detectors: %v", want)
	}
	// Negative thresholds disable individual detectors.
	trimmed := StandardDetectors(Thresholds{GoroutinesPerMin: -1})
	if len(trimmed) != len(dets)-1 {
		t.Fatalf("disable left %d detectors, want %d", len(trimmed), len(dets)-1)
	}
}

func TestMemLogBoundAndWindow(t *testing.T) {
	l := NewMemLog(4)
	base := time.Now().Add(-time.Minute)
	for i := 0; i < 10; i++ {
		l.Append(sampleAt(base.Add(time.Duration(i)*time.Second), "x_total", float64(i)))
	}
	if got := len(l.Recent(time.Hour)); got != 4 {
		t.Fatalf("Recent over full window = %d samples, want cap 4", got)
	}
	if got := len(l.Recent(time.Millisecond)); got != 0 {
		t.Fatalf("Recent over empty window = %d samples, want 0", got)
	}
}
