package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus writes the registry in Prometheus text exposition
// format 0.0.4: HELP/TYPE comments followed by samples, histograms as
// cumulative le-labelled buckets plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	// Children of a labeled family share one name; HELP/TYPE print once
	// per name, not once per sample.
	lastHeader := ""
	for _, s := range r.Snapshot() {
		if s.Name != lastHeader {
			lastHeader = s.Name
			if s.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, s.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
		}
		if s.Label != "" {
			if _, err := fmt.Fprintf(w, "%s{%s=%q} %s\n", s.Name, s.Label, s.LabelValue, formatFloat(s.Value)); err != nil {
				return err
			}
			continue
		}
		switch s.Kind {
		case KindHistogram:
			for _, b := range s.Buckets {
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", s.Name, formatFloat(b.UpperBound), b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", s.Name, s.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", s.Name, formatFloat(s.Sum), s.Name, s.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s %s\n", s.Name, formatFloat(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatFloat renders a sample value the way Prometheus expects: shortest
// representation that round-trips, no exponent for integral values.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// jsonHistogram is the /debug/vars shape for histograms.
type jsonHistogram struct {
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// WriteJSON writes the registry as a single expvar-style JSON object
// mapping metric name to value (histograms become {count, sum, buckets}).
func (r *Registry) WriteJSON(w io.Writer) error {
	obj := make(map[string]any)
	for _, s := range r.Snapshot() {
		if s.Label != "" {
			obj[fmt.Sprintf("%s{%s=%q}", s.Name, s.Label, s.LabelValue)] = s.Value
			continue
		}
		switch s.Kind {
		case KindHistogram:
			h := jsonHistogram{Count: s.Count, Sum: s.Sum}
			if len(s.Buckets) > 0 {
				h.Buckets = make(map[string]uint64, len(s.Buckets))
				for _, b := range s.Buckets {
					h.Buckets[formatFloat(b.UpperBound)] = b.Count
				}
			}
			obj[s.Name] = h
		default:
			obj[s.Name] = s.Value
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(obj)
}

// WriteSummary writes a compact human-readable snapshot — the end-of-run
// report sdpsim and benchfig print. Metrics that never moved are elided
// so short runs stay readable.
func (r *Registry) WriteSummary(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "-- telemetry --"); err != nil {
		return err
	}
	for _, s := range r.Snapshot() {
		if s.Label != "" {
			if s.Value == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s{%s=%q}: %s\n", s.Name, s.Label, s.LabelValue, formatFloat(s.Value)); err != nil {
				return err
			}
			continue
		}
		switch s.Kind {
		case KindHistogram:
			if s.Count == 0 {
				continue
			}
			mean := s.Sum / float64(s.Count)
			_, err := fmt.Fprintf(w, "%s: count=%d sum=%s mean=%s p50<=%s p99<=%s\n",
				s.Name, s.Count, formatFloat(s.Sum), formatFloat(mean),
				formatFloat(s.Quantile(0.50)), formatFloat(s.Quantile(0.99)))
			if err != nil {
				return err
			}
		default:
			if s.Value == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w, "%s: %s\n", s.Name, formatFloat(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Summary returns WriteSummary's output as a string.
func (r *Registry) Summary() string {
	var b strings.Builder
	_ = r.WriteSummary(&b)
	return b.String()
}
