package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Span event names appended by directories while serving a traced query.
// The vocabulary is closed so tests and dashboards can match on it.
const (
	EventReceived   = "received"    // query arrived at a directory
	EventLocalMatch = "local-match" // local registry lookup finished
	EventBloomPrune = "bloom-prune" // peer skipped because its summary cannot match
	EventForward    = "forward"     // query forwarded to a peer directory
	EventReply      = "reply"       // reply (full or partial) sent back
	EventRetry      = "retry"       // forward retransmitted after a silent timeout
	EventHedge      = "hedge"       // query hedged to a spare peer directory
	EventUnreach    = "unreachable" // forward abandoned; peer marked unreachable
)

// Span is one hop-level event in a traced discovery query. Spans are
// appended by every directory that touches the query and travel back to
// the querier inside QueryReply messages.
type Span struct {
	Trace uint64        `json:"trace"`          // query trace ID
	Node  string        `json:"node"`           // directory that recorded the span
	Event string        `json:"event"`          // one of the Event* constants
	Peer  string        `json:"peer,omitempty"` // remote party (source, prune/forward target)
	Hits  int           `json:"hits,omitempty"` // result count for local-match / reply
	Dur   time.Duration `json:"dur,omitempty"`  // elapsed time for timed events
	Seq   uint64        `json:"seq"`            // per-process monotonic order
}

// traceSeq orders spans recorded within one process without consulting
// the wall clock (simulated runs compress time too far for timestamps
// to discriminate).
var traceSeq atomic.Uint64

// NewSpan builds a span stamped with the next process-wide sequence
// number.
func NewSpan(trace uint64, node, event string) Span {
	return Span{Trace: trace, Node: node, Event: event, Seq: traceSeq.Add(1)}
}

// traceID hands out non-zero query trace IDs. Zero means "untraced", so
// the counter starts at one.
var traceID atomic.Uint64

// NextTraceID returns a process-unique non-zero trace ID.
func NextTraceID() uint64 { return traceID.Add(1) }

// SortSpans orders spans by recording sequence. Spans from different
// processes interleave arbitrarily but each node's causal order holds.
func SortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool { return spans[i].Seq < spans[j].Seq })
}

// FormatSpans renders spans one per line for logs and CLI output.
func FormatSpans(spans []Span) string {
	var b strings.Builder
	for _, s := range spans {
		fmt.Fprintf(&b, "  [%d] %s %s", s.Trace, s.Node, s.Event)
		if s.Peer != "" {
			fmt.Fprintf(&b, " peer=%s", s.Peer)
		}
		if s.Event == EventLocalMatch || s.Event == EventReply {
			fmt.Fprintf(&b, " hits=%d", s.Hits)
		}
		if s.Dur > 0 {
			fmt.Fprintf(&b, " dur=%s", s.Dur)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
