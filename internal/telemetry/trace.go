package telemetry

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Span event names appended by directories while serving a traced query.
// The vocabulary is closed so tests and dashboards can match on it.
const (
	EventReceived   = "received"    // query arrived at a directory
	EventLocalMatch = "local-match" // local registry lookup finished
	EventBloomPrune = "bloom-prune" // peer skipped because its summary cannot match
	EventForward    = "forward"     // query forwarded to a peer directory
	EventReply      = "reply"       // reply (full or partial) sent back
	EventRetry      = "retry"       // forward retransmitted after a silent timeout
	EventHedge      = "hedge"       // query hedged to a spare peer directory
	EventUnreach    = "unreachable" // forward abandoned; peer marked unreachable
)

// Give-up reasons carried on EventUnreach spans: why the forward was
// abandoned. Like the event names, the vocabulary is closed.
const (
	// ReasonTimeout marks a forward abandoned because the whole
	// aggregation hit its query deadline while the forward was pending.
	ReasonTimeout = "timeout"
	// ReasonRetries marks a forward abandoned after exhausting its
	// per-peer retransmission budget; repeated occurrences evict the
	// peer from the backbone view.
	ReasonRetries = "retries-exhausted"
)

// Span is one hop-level event in a traced discovery query. Spans are
// appended by every directory that touches the query and travel back to
// the querier inside QueryReply messages.
type Span struct {
	Trace  uint64        `json:"trace"`            // query trace ID
	Node   string        `json:"node"`             // directory that recorded the span
	Event  string        `json:"event"`            // one of the Event* constants
	Peer   string        `json:"peer,omitempty"`   // remote party (source, prune/forward target)
	Hits   int           `json:"hits,omitempty"`   // result count for local-match / reply
	Dur    time.Duration `json:"dur,omitempty"`    // elapsed time for timed events
	Seq    uint64        `json:"seq"`              // per-process monotonic order
	Time   time.Time     `json:"time,omitzero"`    // wall-clock stamp (Seq stays the sort key)
	Reason string        `json:"reason,omitempty"` // give-up reason on unreachable spans
}

// traceSeq orders spans recorded within one process without consulting
// the wall clock (simulated runs compress time too far for timestamps
// to discriminate).
var traceSeq atomic.Uint64

// NewSpan builds a span stamped with the next process-wide sequence
// number and the current wall-clock time. The wall clock is for humans
// reading cross-process traces; ordering always uses Seq.
func NewSpan(trace uint64, node, event string) Span {
	return Span{Trace: trace, Node: node, Event: event, Seq: traceSeq.Add(1), Time: time.Now()}
}

// TraceIDGen mints non-zero trace IDs whose high 32 bits are a fixed
// per-generator entropy word and whose low 32 bits count up. Every
// process seeds its default generator with random entropy, so trace IDs
// minted by different federated daemons never collide (two generators
// with distinct entropy words emit disjoint ID sets) and cross-process
// span merging stays unambiguous.
type TraceIDGen struct {
	hi  uint64
	ctr atomic.Uint64
}

// NewTraceIDGen builds a generator over the given entropy word. Zero
// draws fresh random entropy (the normal case); tests that need
// reproducible IDs pass an explicit non-zero word.
func NewTraceIDGen(entropy uint32) *TraceIDGen {
	for entropy == 0 {
		entropy = randomEntropy()
	}
	return &TraceIDGen{hi: uint64(entropy) << 32}
}

// Next returns the generator's next trace ID. IDs are non-zero (zero
// means "untraced"): the entropy high word is never zero, so even a
// wrapped counter cannot produce zero.
func (g *TraceIDGen) Next() uint64 {
	return g.hi | (g.ctr.Add(1) & 0xffffffff)
}

// Entropy returns the generator's fixed high word, for diagnostics and
// cross-process collision tests.
func (g *TraceIDGen) Entropy() uint32 { return uint32(g.hi >> 32) }

// randomEntropy draws 32 bits from the OS entropy pool, falling back to
// the wall clock if that fails (a degraded but still useful mix).
func randomEntropy() uint32 {
	var b [4]byte
	if _, err := crand.Read(b[:]); err != nil {
		return uint32(time.Now().UnixNano())
	}
	return binary.LittleEndian.Uint32(b[:])
}

// traceIDs is the process-wide generator behind NextTraceID.
var traceIDs atomic.Pointer[TraceIDGen]

func init() {
	traceIDs.Store(NewTraceIDGen(0))
}

// NextTraceID returns a non-zero trace ID unique to this process and,
// with overwhelming probability, across every process in a federation.
func NextTraceID() uint64 { return traceIDs.Load().Next() }

// TraceIDEntropy returns the current process entropy word mixed into
// every minted trace ID.
func TraceIDEntropy() uint32 { return traceIDs.Load().Entropy() }

// SetTraceIDEntropy replaces the process generator's entropy word and
// restarts its counter — the trace-ID analog of the seedable-rand
// injection the simulator uses, so seeded sdpsim runs print reproducible
// trace IDs. Zero reseeds randomly.
func SetTraceIDEntropy(entropy uint32) {
	traceIDs.Store(NewTraceIDGen(entropy))
}

// SortSpans orders spans by recording sequence. Spans from different
// processes interleave arbitrarily but each node's causal order holds.
func SortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool { return spans[i].Seq < spans[j].Seq })
}

// FormatSpans renders spans one per line for logs and CLI output.
func FormatSpans(spans []Span) string {
	var b strings.Builder
	for _, s := range spans {
		fmt.Fprintf(&b, "  [%d] %s %s", s.Trace, s.Node, s.Event)
		if s.Peer != "" {
			fmt.Fprintf(&b, " peer=%s", s.Peer)
		}
		if s.Event == EventLocalMatch || s.Event == EventReply {
			fmt.Fprintf(&b, " hits=%d", s.Hits)
		}
		if s.Reason != "" {
			fmt.Fprintf(&b, " reason=%s", s.Reason)
		}
		if s.Dur > 0 {
			fmt.Fprintf(&b, " dur=%s", s.Dur)
		}
		if !s.Time.IsZero() {
			fmt.Fprintf(&b, " t=%s", s.Time.Format("15:04:05.000"))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
