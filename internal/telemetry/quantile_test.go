package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// The power-of-two histogram trades per-bucket resolution for an
// allocation-free Observe: a quantile estimate is the upper bound of the
// bucket holding the target rank. The contract these tests pin down: the
// estimate is always >= the exact value (pessimistic, never flattering)
// and always < 2x the exact value (one bucket spans [2^(i-1), 2^i)), so
// an SLO comparison against it can only over-report latency, never hide
// a regression.

// exactQuantile returns the nearest-rank q-quantile of vs.
func exactQuantile(vs []int64, q float64) int64 {
	sorted := append([]int64(nil), vs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// snapshotOf observes vs into a fresh size histogram and snapshots it.
func snapshotOf(t *testing.T, vs []int64) MetricSnapshot {
	t.Helper()
	reg := NewRegistry()
	h := reg.NewSizeHistogram("test_quantile_units", "")
	for _, v := range vs {
		h.ObserveInt(v)
	}
	return reg.Snapshot()[0]
}

// checkBounds asserts estimate ∈ [exact, 2*exact] for every probed
// quantile (upper edge inclusive: exact values on a bucket boundary are
// their own upper bound).
func checkBounds(t *testing.T, name string, vs []int64) {
	t.Helper()
	s := snapshotOf(t, vs)
	for _, q := range []float64{0.50, 0.95, 0.99, 0.999} {
		got := s.Quantile(q)
		exact := float64(exactQuantile(vs, q))
		if exact == 0 {
			if got != 0 && got != 1 {
				t.Errorf("%s: q%v = %v, want 0 or 1 for exact 0", name, q, got)
			}
			continue
		}
		if got < exact || got > 2*exact {
			t.Errorf("%s: q%v = %v outside [exact, 2*exact] = [%v, %v]", name, q, got, exact, 2*exact)
		}
	}
}

func TestQuantileUniformDistribution(t *testing.T) {
	vs := make([]int64, 10000)
	for i := range vs {
		vs[i] = int64(i + 1)
	}
	checkBounds(t, "uniform 1..10000", vs)
	// Spot-check the actual bucket edges: p50 of 1..10000 is 5000, whose
	// bucket is (4096, 8192]; p999 is 9990 -> (8192, 16384].
	s := snapshotOf(t, vs)
	if got := s.Quantile(0.50); got != 8192 {
		t.Errorf("p50 = %v, want 8192", got)
	}
	if got := s.Quantile(0.999); got != 16384 {
		t.Errorf("p999 = %v, want 16384", got)
	}
}

func TestQuantileLognormalDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vs := make([]int64, 20000)
	for i := range vs {
		vs[i] = int64(math.Exp(rng.NormFloat64()*1.5 + 10))
	}
	checkBounds(t, "lognormal", vs)
}

func TestQuantileHeavyTail(t *testing.T) {
	// 99% fast ops at 100, 1% stragglers at 100000: p50/p95 must stay in
	// the fast bucket, p99/p999 must surface the tail.
	var vs []int64
	for i := 0; i < 9900; i++ {
		vs = append(vs, 100)
	}
	for i := 0; i < 100; i++ {
		vs = append(vs, 100000)
	}
	s := snapshotOf(t, vs)
	if got := s.Quantile(0.50); got != 128 {
		t.Errorf("p50 = %v, want 128", got)
	}
	if got := s.Quantile(0.95); got != 128 {
		t.Errorf("p95 = %v, want 128", got)
	}
	if got := s.Quantile(0.999); got != 131072 {
		t.Errorf("p999 = %v, want 131072 (tail hidden)", got)
	}
	checkBounds(t, "heavy tail", vs)
}

func TestQuantileSingleSample(t *testing.T) {
	s := snapshotOf(t, []int64{777})
	for _, q := range []float64{0.50, 0.95, 0.99, 0.999} {
		if got := s.Quantile(q); got != 1024 {
			t.Errorf("q%v = %v, want 1024 (the lone sample's bucket)", q, got)
		}
	}
}

func TestQuantileBucketBoundaries(t *testing.T) {
	// Powers of two land in the bucket whose upper bound is the next
	// power: bits.Len64(2^k) = k+1, so 2^k lives in (2^k, 2^(k+1)]'s
	// le=2^(k+1) slot. The estimate is exactly 2x for boundary values —
	// the worst case the [exact, 2*exact] contract allows.
	for _, v := range []int64{1, 2, 4, 1024, 1 << 20} {
		s := snapshotOf(t, []int64{v})
		want := float64(2 * v)
		if got := s.Quantile(0.5); got != want {
			t.Errorf("p50 of {%d} = %v, want %v", v, got, want)
		}
	}
	// One below a power of two is that power's own bucket.
	s := snapshotOf(t, []int64{1023})
	if got := s.Quantile(0.5); got != 1024 {
		t.Errorf("p50 of {1023} = %v, want 1024", got)
	}
}

func TestQuantileZeroAndEmpty(t *testing.T) {
	if got := (MetricSnapshot{Kind: KindHistogram}).Quantile(0.99); got != 0 {
		t.Errorf("empty histogram q99 = %v, want 0", got)
	}
	// Zero observations land in bucket 0 with upper bound 2^0 = 1.
	s := snapshotOf(t, []int64{0, 0, 0})
	if got := s.Quantile(0.99); got != 1 {
		t.Errorf("all-zero q99 = %v, want 1 (bucket 0 edge)", got)
	}
}

func TestQuantileMonotoneInQ(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vs := make([]int64, 5000)
	for i := range vs {
		vs[i] = rng.Int63n(1 << 30)
	}
	s := snapshotOf(t, vs)
	prev := 0.0
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0} {
		got := s.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile not monotone: q%v = %v < %v", q, got, prev)
		}
		prev = got
	}
}
