// Package telemetry is the in-process observability core for S-Ariadne:
// atomic counters, gauges and fixed-bucket latency histograms registered
// in a process-wide Registry, plus the hop-level trace spans discovery
// queries carry (trace.go).
//
// The package is deliberately stdlib-only and allocation-free on the hot
// path: a Counter.Inc is one atomic add, a Histogram.Observe is two
// atomic adds plus a bits.Len64. Metrics are created once at package
// init (the metricnames sdplint analyzer enforces this) and never
// looked up by name at runtime, so instrumented code pays no map or
// lock cost.
//
// Snapshot/Reset semantics: Registry.Snapshot copies every metric's
// current value without stopping writers, and Registry.Reset zeroes
// them, so benchmarks and simulation runs can meter exactly their own
// window of activity.
package telemetry

import (
	"fmt"
	"math"
	"math/bits"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// nameRe is the naming scheme the metricnames analyzer enforces
// statically and New* re-checks at registration time: snake_case with at
// least a subsystem prefix and one further word (e.g. registry_edges,
// match_encoded_total).
var nameRe = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)+$`)

// Kind discriminates metric types in snapshots and expositions.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindFloatGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge, KindFloatGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// metric is the private interface every registered instrument satisfies.
type metric interface {
	kind() Kind
	reset()
}

// Counter is a monotonically increasing uint64. The zero value is usable
// but unregistered; create through NewCounter so it appears in /metrics.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) kind() Kind { return KindCounter }
func (c *Counter) reset()     { c.v.Store(0) }

// Gauge is an int64 that can go up and down. Components that exist many
// times per process (every Directory, every Node) call Add with signed
// deltas at their mutation sites, so the process-wide gauge is the sum
// over all live instances.
type Gauge struct {
	v atomic.Int64
}

// Set stores an absolute value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add applies a signed delta.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) kind() Kind { return KindGauge }
func (g *Gauge) reset()     { g.v.Store(0) }

// BoolGauge is a 0/1 gauge for binary component states (healthy, ready,
// transport live). It exposes like a gauge; the Set(bool) surface keeps
// call sites from inventing their own truthiness encodings.
type BoolGauge struct {
	v atomic.Int64
}

// Set stores the state: true exposes as 1, false as 0.
func (g *BoolGauge) Set(ok bool) {
	var v int64
	if ok {
		v = 1
	}
	g.v.Store(v)
}

// Value returns the current state.
func (g *BoolGauge) Value() bool { return g.v.Load() != 0 }

func (g *BoolGauge) kind() Kind { return KindGauge }
func (g *BoolGauge) reset()     { g.v.Store(0) }

// FloatGauge is a float64 gauge (e.g. an estimated false-positive rate).
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores an absolute value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *FloatGauge) kind() Kind { return KindFloatGauge }
func (g *FloatGauge) reset()     { g.bits.Store(0) }

// histBuckets is the number of power-of-two histogram buckets. Bucket i
// counts observations v (in the histogram's unit) with bits.Len64(v) == i,
// i.e. 2^(i-1) <= v < 2^i; bucket 0 holds v == 0. 48 buckets cover
// 2^47 ns ≈ 39 hours when the unit is nanoseconds, and any realistic
// depth or byte count when it is not.
const histBuckets = 48

// Histogram is a fixed-bucket power-of-two histogram. Observe is
// allocation-free: one bits.Len64 plus three atomic adds. The unit is
// whatever the caller observes — nanoseconds for the *_seconds latency
// histograms (the exposition converts to seconds), plain counts for
// depth/size histograms.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Uint64
	scale   float64 // exposition multiplier: 1e-9 for ns→seconds, 1 for counts
}

// Observe records one duration in nanoseconds.
func (h *Histogram) Observe(d time.Duration) { h.ObserveInt(int64(d)) }

// ObserveSince records the time elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.ObserveInt(int64(time.Since(start))) }

// ObserveInt records one raw observation in the histogram's unit.
func (h *Histogram) ObserveInt(v int64) {
	if v < 0 {
		v = 0
	}
	i := bits.Len64(uint64(v))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of raw observations (histogram units).
func (h *Histogram) Sum() int64 { return h.sum.Load() }

func (h *Histogram) kind() Kind { return KindHistogram }

func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// labelRe is the naming scheme for label keys on labeled metrics: a
// single lowercase snake_case word (no leading/trailing underscore).
var labelRe = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// LabeledGauge is a family of integer gauges split by one label — the
// per-tenant usage surfaces (tenant_live_services{tenant="alice"}). The
// family registers once at init like every other metric; children are
// created on demand via With as label values (tenants) appear. Each child
// is an ordinary *Gauge, so updates stay a single atomic op; only the
// first With for a new value takes the family lock's write path.
type LabeledGauge struct {
	label string

	mu       sync.Mutex
	children map[string]*Gauge
	order    []string // first-use order, for stable exposition
}

// With returns the child gauge for one label value, creating it on first
// use. Callers with a hot path should retain the returned *Gauge.
func (g *LabeledGauge) With(value string) *Gauge {
	g.mu.Lock()
	defer g.mu.Unlock()
	c := g.children[value]
	if c == nil {
		c = &Gauge{}
		g.children[value] = c
		g.order = append(g.order, value)
	}
	return c
}

// Values snapshots the family as label value -> gauge reading.
func (g *LabeledGauge) Values() map[string]int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[string]int64, len(g.children))
	for v, c := range g.children {
		out[v] = c.Value()
	}
	return out
}

func (g *LabeledGauge) kind() Kind { return KindGauge }

func (g *LabeledGauge) reset() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, c := range g.children {
		c.reset()
	}
}

// snapshotChildren copies the family in first-use order under its lock.
func (g *LabeledGauge) snapshotChildren() (values []string, readings []int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	values = append(values, g.order...)
	readings = make([]int64, 0, len(values))
	for _, v := range values {
		readings = append(readings, g.children[v].Value())
	}
	return values, readings
}

// LabeledCounter is a family of counters split by one label — alert
// firings by code (alert_fired_total{code="goroutine_growth"}). It
// follows the LabeledGauge discipline exactly: the family registers once
// at init, children appear on demand via With, and each child is an
// ordinary *Counter so increments stay a single atomic op.
type LabeledCounter struct {
	label string

	mu       sync.Mutex
	children map[string]*Counter
	order    []string // first-use order, for stable exposition
}

// With returns the child counter for one label value, creating it on
// first use. Callers with a hot path should retain the returned *Counter.
func (c *LabeledCounter) With(value string) *Counter {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := c.children[value]
	if ch == nil {
		ch = &Counter{}
		c.children[value] = ch
		c.order = append(c.order, value)
	}
	return ch
}

// Values snapshots the family as label value -> count.
func (c *LabeledCounter) Values() map[string]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]uint64, len(c.children))
	for v, ch := range c.children {
		out[v] = ch.Value()
	}
	return out
}

func (c *LabeledCounter) kind() Kind { return KindCounter }

func (c *LabeledCounter) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, ch := range c.children {
		ch.reset()
	}
}

// snapshotChildren copies the family in first-use order under its lock.
func (c *LabeledCounter) snapshotChildren() (values []string, readings []uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	values = append(values, c.order...)
	readings = make([]uint64, 0, len(values))
	for _, v := range values {
		readings = append(readings, c.children[v].Value())
	}
	return values, readings
}

// BucketCount is one cumulative histogram bucket in a snapshot.
type BucketCount struct {
	// UpperBound is the inclusive upper edge in exposition units
	// (seconds for latency histograms, raw counts otherwise).
	UpperBound float64
	// Count is the cumulative number of observations <= UpperBound.
	Count uint64
}

// MetricSnapshot is one metric's state at snapshot time.
type MetricSnapshot struct {
	Name string
	Help string
	Kind Kind

	// Label and LabelValue identify one child of a labeled metric family
	// (both empty for plain metrics). Children share the family's Name;
	// expositions render them as name{label="value"}.
	Label      string
	LabelValue string

	// Value holds the counter/gauge reading (unset for histograms).
	Value float64

	// Count, Sum and Buckets hold histogram state in exposition units.
	Count   uint64
	Sum     float64
	Buckets []BucketCount
}

// Registry owns a named set of metrics. Most code uses the process-wide
// Default registry through the package-level New* constructors.
type Registry struct {
	mu      sync.Mutex
	order   []string // registration order, for stable exposition
	metrics map[string]*entry
}

type entry struct {
	help string
	m    metric
}

// NewRegistry returns an empty registry (tests use private registries;
// production code shares Default).
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*entry)}
}

// std is the process-wide registry behind the package-level helpers.
var std = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// register validates the name and adds m, panicking on duplicates or
// malformed names: both are programming errors caught at init.
func (r *Registry) register(name, help string, m metric) {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("telemetry: metric name %q is not prefixed snake_case", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.metrics[name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
	r.metrics[name] = &entry{help: help, m: m}
	r.order = append(r.order, name)
}

// NewCounter registers and returns a counter. Counter names end in
// _total by convention.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, c)
	return c
}

// NewGauge registers and returns an integer gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, g)
	return g
}

// NewBoolGauge registers and returns a 0/1 gauge.
func (r *Registry) NewBoolGauge(name, help string) *BoolGauge {
	g := &BoolGauge{}
	r.register(name, help, g)
	return g
}

// NewFloatGauge registers and returns a float gauge.
func (r *Registry) NewFloatGauge(name, help string) *FloatGauge {
	g := &FloatGauge{}
	r.register(name, help, g)
	return g
}

// NewLabeledGauge registers a one-label gauge family. The family name
// follows the usual naming rule; the label key must be a lowercase
// snake_case word. Children are created on demand with With — the family
// itself is what registers at init time, so the metricnames analyzer's
// init-only rule applies to the family, not to label values.
func (r *Registry) NewLabeledGauge(name, help, label string) *LabeledGauge {
	if !labelRe.MatchString(label) {
		panic(fmt.Sprintf("telemetry: label key %q on metric %q is not snake_case", label, name))
	}
	g := &LabeledGauge{label: label, children: make(map[string]*Gauge)}
	r.register(name, help, g)
	return g
}

// NewLabeledCounter registers a one-label counter family under the same
// naming and init-time discipline as NewLabeledGauge.
func (r *Registry) NewLabeledCounter(name, help, label string) *LabeledCounter {
	if !labelRe.MatchString(label) {
		panic(fmt.Sprintf("telemetry: label key %q on metric %q is not snake_case", label, name))
	}
	c := &LabeledCounter{label: label, children: make(map[string]*Counter)}
	r.register(name, help, c)
	return c
}

// NewHistogram registers a latency histogram whose observations are
// nanoseconds and whose exposition is in seconds; name it *_seconds.
func (r *Registry) NewHistogram(name, help string) *Histogram {
	h := &Histogram{scale: 1e-9}
	r.register(name, help, h)
	return h
}

// NewSizeHistogram registers a histogram over dimensionless magnitudes
// (depths, byte counts): observations are exposed unscaled.
func (r *Registry) NewSizeHistogram(name, help string) *Histogram {
	h := &Histogram{scale: 1}
	r.register(name, help, h)
	return h
}

// Package-level constructors registering in the Default registry.

// NewCounter registers a counter in the Default registry.
func NewCounter(name, help string) *Counter { return std.NewCounter(name, help) }

// NewGauge registers an integer gauge in the Default registry.
func NewGauge(name, help string) *Gauge { return std.NewGauge(name, help) }

// NewBoolGauge registers a 0/1 gauge in the Default registry.
func NewBoolGauge(name, help string) *BoolGauge { return std.NewBoolGauge(name, help) }

// NewFloatGauge registers a float gauge in the Default registry.
func NewFloatGauge(name, help string) *FloatGauge { return std.NewFloatGauge(name, help) }

// NewLabeledGauge registers a one-label gauge family in the Default
// registry.
func NewLabeledGauge(name, help, label string) *LabeledGauge {
	return std.NewLabeledGauge(name, help, label)
}

// NewLabeledCounter registers a one-label counter family in the Default
// registry.
func NewLabeledCounter(name, help, label string) *LabeledCounter {
	return std.NewLabeledCounter(name, help, label)
}

// NewHistogram registers a seconds histogram in the Default registry.
func NewHistogram(name, help string) *Histogram { return std.NewHistogram(name, help) }

// NewSizeHistogram registers an unscaled histogram in the Default registry.
func NewSizeHistogram(name, help string) *Histogram { return std.NewSizeHistogram(name, help) }

// Reset zeroes every registered metric. Benchmarks and simulation
// harnesses call it before their measured window.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.metrics {
		e.m.reset()
	}
}

// Snapshot copies every metric's current value in registration order.
// Writers are not paused; each individual value is read atomically.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MetricSnapshot, 0, len(r.order))
	for _, name := range r.order {
		e := r.metrics[name]
		s := MetricSnapshot{Name: name, Help: e.help, Kind: e.m.kind()}
		switch m := e.m.(type) {
		case *LabeledGauge:
			// One snapshot entry per child, sharing the family's name and
			// help; a family with no children yet exposes nothing.
			values, readings := m.snapshotChildren()
			for i, v := range values {
				c := s
				c.Label, c.LabelValue = m.label, v
				c.Value = float64(readings[i])
				out = append(out, c)
			}
			continue
		case *LabeledCounter:
			values, readings := m.snapshotChildren()
			for i, v := range values {
				c := s
				c.Label, c.LabelValue = m.label, v
				c.Value = float64(readings[i])
				out = append(out, c)
			}
			continue
		case *Counter:
			s.Value = float64(m.Value())
		case *Gauge:
			s.Value = float64(m.Value())
		case *BoolGauge:
			if m.Value() {
				s.Value = 1
			}
		case *FloatGauge:
			s.Value = m.Value()
		case *Histogram:
			s.Count = m.Count()
			s.Sum = float64(m.Sum()) * m.scale
			var cum uint64
			for i := 0; i < histBuckets; i++ {
				n := m.buckets[i].Load()
				if n == 0 {
					continue
				}
				cum += n
				// Bucket i holds v < 2^i; the inclusive upper
				// bound in raw units is 2^i - 1, but le edges are
				// conventionally the open edge value.
				s.Buckets = append(s.Buckets, BucketCount{
					UpperBound: math.Ldexp(1, i) * m.scale,
					Count:      cum,
				})
			}
			// Cumulative counts can momentarily trail Count under
			// concurrent writes; clamp so the +Inf bucket stays
			// consistent in the exposition.
			if cum > s.Count {
				s.Count = cum
			}
		}
		out = append(out, s)
	}
	return out
}

// Quantile estimates the q-quantile (0..1) of a histogram snapshot from
// its bucket upper bounds. It returns 0 for empty histograms.
func (s MetricSnapshot) Quantile(q float64) float64 {
	if s.Kind != KindHistogram || s.Count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(s.Count)))
	i := sort.Search(len(s.Buckets), func(i int) bool { return s.Buckets[i].Count >= target })
	if i >= len(s.Buckets) {
		i = len(s.Buckets) - 1
	}
	return s.Buckets[i].UpperBound
}
