package telemetry

// Runtime collector: process-level drift signals — goroutine count, heap
// occupancy, GC pauses, open file descriptors — sampled into the Default
// registry as runtime_* metrics. SampleRuntime is designed to run as a
// Sampler's Collect hook so every journal tick carries current readings;
// the soak watchdog's growth detectors regress over exactly these series.
//
// Everything here is stdlib-only: runtime.ReadMemStats for heap and GC
// state (a brief stop-the-world, fine at multi-second cadences; do not
// call per request) and /proc/self/fd for the descriptor count, which
// degrades to -1 on platforms without procfs.

import (
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"
)

var (
	runtimeGoroutines = NewGauge("runtime_goroutines",
		"live goroutines in the process")
	runtimeHeapAllocBytes = NewGauge("runtime_heap_alloc_bytes",
		"bytes of live heap objects (runtime.MemStats.HeapAlloc)")
	runtimeHeapObjects = NewGauge("runtime_heap_objects",
		"live objects on the heap")
	runtimeSysBytes = NewGauge("runtime_sys_bytes",
		"total bytes obtained from the OS by the Go runtime (RSS upper bound)")
	runtimeOpenFds = NewGauge("runtime_open_fds",
		"open file descriptors per /proc/self/fd (-1 where procfs is unavailable)")
	runtimeGcCyclesTotal = NewCounter("runtime_gc_cycles_total",
		"completed garbage-collection cycles")
	runtimeGcPauseSeconds = NewHistogram("runtime_gc_pause_seconds",
		"stop-the-world pause latency of completed GC cycles")
	runtimeUptimeSeconds = NewFloatGauge("runtime_uptime_seconds",
		"seconds since this process first sampled runtime metrics")
)

// rtState remembers the last GC cycle folded into the pause histogram so
// repeated SampleRuntime calls observe each pause exactly once.
var rtState struct {
	mu        sync.Mutex
	started   time.Time
	lastNumGC uint32
}

// SampleRuntime refreshes every runtime_* metric from the Go runtime and
// procfs. Safe for concurrent use; intended as SamplerConfig.Collect.
func SampleRuntime() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	runtimeGoroutines.Set(int64(runtime.NumGoroutine()))
	runtimeHeapAllocBytes.Set(int64(ms.HeapAlloc))
	runtimeHeapObjects.Set(int64(ms.HeapObjects))
	runtimeSysBytes.Set(int64(ms.Sys))
	runtimeOpenFds.Set(countOpenFds())

	rtState.mu.Lock()
	if rtState.started.IsZero() {
		rtState.started = time.Now()
	}
	runtimeUptimeSeconds.Set(time.Since(rtState.started).Seconds())
	// PauseNs is a circular buffer of the last 256 pause durations,
	// indexed by (cycle-1) mod 256; fold in only the cycles completed
	// since the previous sample.
	from := rtState.lastNumGC
	if ms.NumGC > from {
		runtimeGcCyclesTotal.Add(uint64(ms.NumGC - from))
		if ms.NumGC-from > uint32(len(ms.PauseNs)) {
			from = ms.NumGC - uint32(len(ms.PauseNs))
		}
		for c := from + 1; c <= ms.NumGC; c++ {
			runtimeGcPauseSeconds.ObserveInt(int64(ms.PauseNs[(c+255)%256]))
		}
		rtState.lastNumGC = ms.NumGC
	}
	rtState.mu.Unlock()
}

// countOpenFds counts entries in /proc/self/fd, or returns -1 where the
// procfs view does not exist (non-Linux platforms).
func countOpenFds() int64 {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	// The ReadDir call itself holds one descriptor on the directory;
	// exclude it so the gauge reflects steady-state usage.
	n := int64(len(ents)) - 1
	if n < 0 {
		n = 0
	}
	return n
}

// CaptureHeapProfile writes a pprof heap profile to path — the watchdog's
// first-memory-alert hook, so an operator finds the allocation evidence
// for a creep alert next to the telemetry journal. The write is atomic
// (temp file + rename): a crash mid-capture never leaves a torn profile.
func CaptureHeapProfile(path string) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".heap-*")
	if err != nil {
		return err
	}
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	return os.Rename(f.Name(), path)
}
