package telemetry

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestRecorderRoundTrip: a deposited trace is retrievable by ID and
// appears in the newest-first listing.
func TestRecorderRoundTrip(t *testing.T) {
	r := NewRecorder(4, 4)
	r.RecordTrace(TraceRecord{ID: 10, Node: "a", Hits: 1, Dur: time.Millisecond})
	r.RecordTrace(TraceRecord{ID: 11, Node: "a", Slow: true})

	rec, ok := r.Trace(10)
	if !ok || rec.Hits != 1 || rec.Dur != time.Millisecond {
		t.Fatalf("Trace(10) = %+v, %v", rec, ok)
	}
	traces := r.Traces()
	if len(traces) != 2 || traces[0].ID != 11 || traces[1].ID != 10 {
		t.Fatalf("Traces() = %+v, want newest first [11 10]", traces)
	}
	if _, ok := r.Trace(99); ok {
		t.Fatal("unknown trace ID resolved")
	}
}

// TestRecorderZeroIDIgnored: zero means "untraced" everywhere, so the
// recorder refuses it instead of creating an unreachable entry.
func TestRecorderZeroIDIgnored(t *testing.T) {
	r := NewRecorder(4, 4)
	r.RecordTrace(TraceRecord{ID: 0})
	if got := r.Traces(); len(got) != 0 {
		t.Fatalf("zero-ID trace retained: %+v", got)
	}
}

// TestRecorderEviction fills the trace ring past capacity and checks the
// oldest entries are gone — from the listing AND from the by-ID index.
func TestRecorderEviction(t *testing.T) {
	const capN = 8
	r := NewRecorder(capN, capN)
	for id := uint64(1); id <= 3*capN; id++ {
		r.RecordTrace(TraceRecord{ID: id, Node: "a"})
	}
	traces := r.Traces()
	if len(traces) != capN {
		t.Fatalf("ring holds %d traces, want %d", len(traces), capN)
	}
	for i, rec := range traces {
		if want := uint64(3*capN - i); rec.ID != want {
			t.Fatalf("traces[%d].ID = %d, want %d", i, rec.ID, want)
		}
	}
	for id := uint64(1); id <= 2*capN; id++ {
		if _, ok := r.Trace(id); ok {
			t.Fatalf("evicted trace %d still resolvable", id)
		}
	}
	for id := uint64(2*capN + 1); id <= 3*capN; id++ {
		if _, ok := r.Trace(id); !ok {
			t.Fatalf("retained trace %d not resolvable", id)
		}
	}
}

// TestRecorderEventEviction mirrors the trace test for the event ring.
func TestRecorderEventEviction(t *testing.T) {
	r := NewRecorder(4, 4)
	for i := 0; i < 10; i++ {
		r.RecordEvent("n1", ProtoGiveUp, fmt.Sprintf("p%d", i), "")
	}
	events := r.Events()
	if len(events) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(events))
	}
	for i, ev := range events {
		if want := fmt.Sprintf("p%d", 9-i); ev.Peer != want {
			t.Fatalf("events[%d].Peer = %s, want %s (newest first)", i, ev.Peer, want)
		}
		if ev.Time.IsZero() || ev.Seq == 0 {
			t.Fatalf("event missing stamps: %+v", ev)
		}
	}
}

// TestRecorderConcurrentAppend hammers both rings from many goroutines
// while readers walk them; run under -race this is the concurrency
// soundness check for the always-on production path.
func TestRecorderConcurrentAppend(t *testing.T) {
	r := NewRecorder(32, 32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := uint64(g)<<32 | uint64(i+1)
				r.RecordTrace(TraceRecord{ID: id, Node: "n", Spans: []Span{{Trace: id}}})
				r.RecordEvent("n", ProtoGiveUp, "p", "timeout")
				if i%17 == 0 {
					r.Traces()
					r.Events()
					r.Trace(id)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := len(r.Traces()); got != 32 {
		t.Fatalf("post-hammer ring size %d, want 32", got)
	}
	if got := len(r.Events()); got != 32 {
		t.Fatalf("post-hammer event ring size %d, want 32", got)
	}
}

// TestNilRecorderSafe: call sites pass recorders through configs where
// nil means "default"; a literal nil must still be inert, not a panic.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.RecordTrace(TraceRecord{ID: 1})
	r.RecordEvent("n", ProtoFault, "", "")
	if got := r.Traces(); got != nil {
		t.Fatalf("nil recorder listed traces: %v", got)
	}
	if _, ok := r.Trace(1); ok {
		t.Fatal("nil recorder resolved a trace")
	}
	if got := r.Events(); got != nil {
		t.Fatalf("nil recorder listed events: %v", got)
	}
}
