package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestLabeledGaugeChildren(t *testing.T) {
	r := NewRegistry()
	g := r.NewLabeledGauge("tenant_live_services", "live services per tenant", "tenant")

	g.With("alice").Set(3)
	g.With("bob").Add(2)
	if g.With("alice") != g.With("alice") {
		t.Fatal("With must return the same child for the same value")
	}
	vals := g.Values()
	if vals["alice"] != 3 || vals["bob"] != 2 {
		t.Fatalf("Values() = %v, want alice=3 bob=2", vals)
	}

	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries, want one per child: %+v", len(snap), snap)
	}
	for _, s := range snap {
		if s.Name != "tenant_live_services" || s.Label != "tenant" {
			t.Fatalf("child snapshot %+v lacks family name/label", s)
		}
	}
	// First-use order is the exposition order.
	if snap[0].LabelValue != "alice" || snap[1].LabelValue != "bob" {
		t.Fatalf("children out of first-use order: %+v", snap)
	}

	r.Reset()
	if vals := g.Values(); vals["alice"] != 0 || vals["bob"] != 0 {
		t.Fatalf("Reset left values %v", vals)
	}
}

func TestLabeledGaugeEmptyFamilyExposesNothing(t *testing.T) {
	r := NewRegistry()
	r.NewLabeledGauge("tenant_live_services", "x", "tenant")
	if snap := r.Snapshot(); len(snap) != 0 {
		t.Fatalf("empty family produced snapshot entries: %+v", snap)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("empty family produced exposition:\n%s", b.String())
	}
}

func TestLabeledGaugePrometheusExposition(t *testing.T) {
	r := NewRegistry()
	g := r.NewLabeledGauge("tenant_live_services", "live services per tenant", "tenant")
	g.With("alice").Set(3)
	g.With("bob").Set(1)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "# HELP tenant_live_services live services per tenant\n" +
		"# TYPE tenant_live_services gauge\n" +
		"tenant_live_services{tenant=\"alice\"} 3\n" +
		"tenant_live_services{tenant=\"bob\"} 1\n"
	if got != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", got, want)
	}
}

func TestLabeledGaugeRejectsBadLabelKey(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"Tenant", "", "tenant-id", "_tenant"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("label key %q accepted", bad)
				}
			}()
			r.NewLabeledGauge("tenant_live_services", "x", bad)
		}()
	}
}

func TestLabeledGaugeConcurrentWith(t *testing.T) {
	r := NewRegistry()
	g := r.NewLabeledGauge("tenant_publishes_minute", "x", "tenant")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			tenants := []string{"alice", "bob", "carol"}
			for j := 0; j < 500; j++ {
				g.With(tenants[(n+j)%len(tenants)]).Add(1)
			}
		}(i)
	}
	wg.Wait()
	total := int64(0)
	for _, v := range g.Values() {
		total += v
	}
	if total != 8*500 {
		t.Fatalf("lost updates: total = %d, want %d", total, 8*500)
	}
}

func TestLabeledCounterChildren(t *testing.T) {
	r := NewRegistry()
	c := r.NewLabeledCounter("alert_fired_testfam_total", "alerts fired per code", "code")

	c.With("goroutine_growth").Inc()
	c.With("goroutine_growth").Inc()
	c.With("memory_growth").Add(3)
	if c.With("goroutine_growth") != c.With("goroutine_growth") {
		t.Fatal("With must return the same child for the same value")
	}
	vals := c.Values()
	if vals["goroutine_growth"] != 2 || vals["memory_growth"] != 3 {
		t.Fatalf("Values() = %v", vals)
	}

	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries, want one per child: %+v", len(snap), snap)
	}
	for _, s := range snap {
		if s.Name != "alert_fired_testfam_total" || s.Label != "code" || s.Kind != KindCounter {
			t.Fatalf("child snapshot %+v lacks family name/label/kind", s)
		}
	}

	r.Reset()
	if vals := c.Values(); vals["goroutine_growth"] != 0 || vals["memory_growth"] != 0 {
		t.Fatalf("Values() after Reset = %v, want zeros", vals)
	}
}

func TestLabeledCounterBadLabelPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("bad label key did not panic")
		}
	}()
	r.NewLabeledCounter("x_total", "", "Bad-Label")
}

func TestLabeledCounterConcurrentWith(t *testing.T) {
	r := NewRegistry()
	c := r.NewLabeledCounter("race_fam_total", "", "code")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.With("shared").Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Values()["shared"]; got != 800 {
		t.Fatalf("shared counter = %d, want 800", got)
	}
}
