package telemetry

// Time-series sampling: a fixed-capacity ring of registry snapshots taken
// at a cadence, so a run reports latency *distributions over time* —
// p50/p95/p99/p999 curves windowed between consecutive samples — instead
// of a single end-of-run aggregate that averages a flash crowd away.
//
// The ring stores full MetricSnapshot slices. Histogram snapshots are
// cumulative since process start (or the last Reset), so the windowed view
// between two samples is recovered by bucket-wise subtraction
// (DeltaSnapshot); QuantileCurve composes the two into the curve a load
// run emits and sdpd serves on GET /timeseries.

import (
	"sync"
	"time"
)

// Sample is one cadence snapshot of a registry.
type Sample struct {
	// Elapsed is the offset from the ring's creation; consecutive samples
	// define half-open observation windows (prev.Elapsed, Elapsed].
	Elapsed time.Duration
	// Metrics is the full registry snapshot in registration order.
	Metrics []MetricSnapshot
}

// Metric finds a snapshot by name.
func (s Sample) Metric(name string) (MetricSnapshot, bool) {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return MetricSnapshot{}, false
}

// Ring is a bounded time-series of samples: once capacity is reached the
// oldest sample is overwritten, so a long-running daemon keeps a sliding
// window of recent history at constant memory.
type Ring struct {
	mu    sync.Mutex
	start time.Time
	buf   []Sample
	next  int
	full  bool
}

// NewRing returns a ring holding up to capacity samples (minimum 2: one
// window needs two edges).
func NewRing(capacity int) *Ring {
	if capacity < 2 {
		capacity = 2
	}
	return &Ring{start: time.Now(), buf: make([]Sample, capacity)}
}

// Sample snapshots reg now, appends it, and returns it.
func (r *Ring) Sample(reg *Registry) Sample {
	s := Sample{Elapsed: time.Since(r.start), Metrics: reg.Snapshot()}
	r.Add(s)
	return s
}

// Add appends a pre-built sample (tests and offline replays).
func (r *Ring) Add(s Sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Len reports how many samples are held.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Samples returns the held samples oldest first.
func (r *Ring) Samples() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Sample
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	return append(out, r.buf[:r.next]...)
}

// Sampler drives a Ring at a fixed cadence from its own goroutine. Stop
// joins the goroutine, so callers can rely on the ring being quiescent
// (and holding a final sample) when Stop returns.
type Sampler struct {
	ring *Ring
	reg  *Registry
	cfg  SamplerConfig
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// SamplerConfig hooks a sampler into the soak-horizon pipeline. Both
// hooks run on the sampler goroutine (and once more synchronously during
// Stop), so they must not block for long and must not call Stop.
type SamplerConfig struct {
	// Collect, when set, runs immediately before each snapshot — the
	// runtime collector (SampleRuntime) refreshes point-in-time gauges
	// here so every sample carries current readings.
	Collect func()
	// OnSample, when set, receives each sample after it lands in the
	// ring — the telemetry journal appends from here.
	OnSample func(Sample)
}

// StartSampler samples reg every interval into a fresh ring of the given
// capacity. An immediate first sample anchors the first window.
func StartSampler(reg *Registry, interval time.Duration, capacity int) *Sampler {
	return StartSamplerConfig(reg, interval, capacity, SamplerConfig{})
}

// StartSamplerConfig is StartSampler with collection and per-sample
// hooks attached.
func StartSamplerConfig(reg *Registry, interval time.Duration, capacity int, cfg SamplerConfig) *Sampler {
	s := &Sampler{
		ring: NewRing(capacity),
		reg:  reg,
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	s.take()
	go s.loop(interval)
	return s
}

// take runs one full sampling round: collect, snapshot into the ring,
// then hand the sample to the journal hook.
func (s *Sampler) take() {
	if s.cfg.Collect != nil {
		s.cfg.Collect()
	}
	sample := s.ring.Sample(s.reg)
	if s.cfg.OnSample != nil {
		s.cfg.OnSample(sample)
	}
}

func (s *Sampler) loop(interval time.Duration) {
	defer close(s.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.take()
		case <-s.stop:
			return
		}
	}
}

// Ring returns the sampler's ring; safe to read while sampling continues.
func (s *Sampler) Ring() *Ring { return s.ring }

// Stop halts sampling, takes one final sample so the last partial window
// is closed, and joins the goroutine. Idempotent.
func (s *Sampler) Stop() {
	s.once.Do(func() {
		close(s.stop)
		<-s.done
		s.take()
	})
}

// DeltaSnapshot returns the observations cur accumulated since prev: for
// histograms a bucket-wise cumulative subtraction (both snapshots must be
// of the same metric, prev taken earlier on the same registry), for
// counters the value delta, for gauges the current value (a gauge has no
// meaningful delta). The result's Quantile is the windowed quantile.
//
// Windows that straddle a counter reset (Registry.Reset between samples,
// or a daemon restart in journal-backed history) clamp instead of
// underflowing: when cur trails prev the window is taken to be everything
// accumulated since the reset, i.e. cur's own cumulative state.
func DeltaSnapshot(prev, cur MetricSnapshot) MetricSnapshot {
	out := MetricSnapshot{Name: cur.Name, Help: cur.Help, Kind: cur.Kind}
	switch cur.Kind {
	case KindHistogram:
		if cur.Count < prev.Count {
			// Reset boundary: the uint64 subtraction below would wrap to
			// a near-2^64 count and poison every downstream rate/quantile.
			out.Count = cur.Count
			out.Sum = cur.Sum
			out.Buckets = append([]BucketCount(nil), cur.Buckets...)
			return out
		}
		out.Count = cur.Count - prev.Count
		out.Sum = cur.Sum - prev.Sum
		// Both bucket lists are sparse cumulative series over the same
		// power-of-two edges; prev's cumulative count at an edge missing
		// from its list is the count of its largest present edge below.
		pi := 0
		var prevCum uint64
		for _, b := range cur.Buckets {
			for pi < len(prev.Buckets) && prev.Buckets[pi].UpperBound <= b.UpperBound {
				prevCum = prev.Buckets[pi].Count
				pi++
			}
			// Per-bucket counts can also trail prev's across a reset
			// that left the totals higher; guard each subtraction.
			if b.Count > prevCum {
				out.Buckets = append(out.Buckets, BucketCount{UpperBound: b.UpperBound, Count: b.Count - prevCum})
			}
		}
	default:
		out.Value = cur.Value
		if cur.Kind == KindCounter && cur.Value >= prev.Value {
			out.Value = cur.Value - prev.Value
		}
	}
	return out
}

// CurvePoint is one observation window of a histogram time-series.
type CurvePoint struct {
	// Elapsed is the window's closing edge (the later sample's offset).
	Elapsed time.Duration
	// Window is the span between the two samples.
	Window time.Duration
	// Count is the number of observations inside the window; Rate is
	// Count per second of window.
	Count uint64
	Rate  float64
	// Quantile upper bounds in exposition units (seconds for *_seconds
	// histograms). Zero when the window saw no observations.
	P50, P95, P99, P999 float64
}

// QuantileCurve derives the windowed quantile curve of one histogram
// metric from consecutive ring samples, dropping windows that close at or
// before the warmup offset (cold-start load/classify costs would
// otherwise dominate the first windows of every run).
func QuantileCurve(samples []Sample, metric string, warmup time.Duration) []CurvePoint {
	var out []CurvePoint
	for i := 1; i < len(samples); i++ {
		if samples[i].Elapsed <= warmup {
			continue
		}
		prev, okPrev := samples[i-1].Metric(metric)
		cur, okCur := samples[i].Metric(metric)
		if !okPrev || !okCur || cur.Kind != KindHistogram {
			continue
		}
		d := DeltaSnapshot(prev, cur)
		p := CurvePoint{
			Elapsed: samples[i].Elapsed,
			Window:  samples[i].Elapsed - samples[i-1].Elapsed,
			Count:   d.Count,
		}
		if p.Window > 0 {
			p.Rate = float64(p.Count) / p.Window.Seconds()
		}
		if d.Count > 0 {
			p.P50 = d.Quantile(0.50)
			p.P95 = d.Quantile(0.95)
			p.P99 = d.Quantile(0.99)
			p.P999 = d.Quantile(0.999)
		}
		out = append(out, p)
	}
	return out
}
