package telemetry

// Telemetry journal: a size-bounded on-disk segment log of sampler ticks,
// so GET /timeseries serves hours of history that survives restarts
// instead of a RAM ring that dies with the process.
//
// The format follows internal/store's framing discipline scaled down to
// telemetry's needs: each segment file opens with a magic+version header
// and then carries length-prefixed CRC32-framed records; a torn tail
// (crash mid-write) is detected at open and truncated away rather than
// poisoning reads; records carry their own version field so future
// readers can skip shapes they do not understand. Unlike the service
// store the journal is a ring at file granularity — when the active
// segment passes the size bound a new one starts, and the oldest segment
// is deleted once the directory exceeds its segment budget. Losing the
// oldest telemetry is the design, not a failure: the journal bounds disk
// like the Ring bounds memory.
//
// A bounded in-memory tail (rebuilt from disk at open) backs the
// watchdog's window reads and /timeseries, so steady-state reads never
// touch the filesystem; Replay streams the full on-disk history for
// tools that want everything.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// JournalVersion is the record version this code writes. Readers accept
// any version up to it and fail typed on newer ones.
const JournalVersion = 1

// journalMagic opens every segment file: format name plus format
// revision, so a foreign or corrupted file is rejected before any frame
// is parsed.
var journalMagic = [8]byte{'s', 'd', 'p', 't', 'j', 'n', 'l', 1}

// journalSuffix names segment files: <seq>.tjseg with a fixed-width
// decimal sequence so lexical order is creation order.
const journalSuffix = ".tjseg"

// JournalSample is one persisted sampler tick: a wall-clock stamp plus
// the full registry snapshot taken then. Wall-clock (not elapsed) time is
// what makes history stitch across restarts.
type JournalSample struct {
	Time    time.Time
	Metrics []MetricSnapshot
}

// Metric finds a snapshot by name.
func (s JournalSample) Metric(name string) (MetricSnapshot, bool) {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return MetricSnapshot{}, false
}

// JournalVersionError reports a record written by a newer format
// revision than this reader understands.
type JournalVersionError struct {
	Version int
}

func (e *JournalVersionError) Error() string {
	return fmt.Sprintf("telemetry journal: record version %d is newer than supported %d",
		e.Version, JournalVersion)
}

// journalWire is the persisted record shape: compact keys, no Help text,
// buckets as (upper bound, cumulative count) pairs. Versioned so the
// shape can evolve without invalidating old segments.
type journalWire struct {
	V int             `json:"v"`
	T int64           `json:"t"` // sample time, Unix milliseconds
	M []journalMetric `json:"m"`
}

type journalMetric struct {
	N  string          `json:"n"`
	K  Kind            `json:"k"`
	L  string          `json:"l,omitempty"`
	LV string          `json:"lv,omitempty"`
	F  float64         `json:"f,omitempty"`
	C  uint64          `json:"c,omitempty"`
	S  float64         `json:"s,omitempty"`
	B  []journalBucket `json:"b,omitempty"`
}

type journalBucket struct {
	U float64 `json:"u"`
	C uint64  `json:"c"`
}

// EncodeJournalSample serializes one sample to its framed payload bytes
// (version field included, frame header excluded).
func EncodeJournalSample(s JournalSample) ([]byte, error) {
	w := journalWire{V: JournalVersion, T: s.Time.UnixMilli(), M: make([]journalMetric, 0, len(s.Metrics))}
	for _, m := range s.Metrics {
		jm := journalMetric{N: m.Name, K: m.Kind, L: m.Label, LV: m.LabelValue,
			F: m.Value, C: m.Count, S: m.Sum}
		for _, b := range m.Buckets {
			jm.B = append(jm.B, journalBucket{U: b.UpperBound, C: b.Count})
		}
		w.M = append(w.M, jm)
	}
	return json.Marshal(w)
}

// DecodeJournalSample parses payload bytes produced by
// EncodeJournalSample, failing typed on newer-versioned records.
func DecodeJournalSample(payload []byte) (JournalSample, error) {
	var w journalWire
	if err := json.Unmarshal(payload, &w); err != nil {
		return JournalSample{}, err
	}
	if w.V > JournalVersion {
		return JournalSample{}, &JournalVersionError{Version: w.V}
	}
	s := JournalSample{Time: time.UnixMilli(w.T), Metrics: make([]MetricSnapshot, 0, len(w.M))}
	for _, jm := range w.M {
		m := MetricSnapshot{Name: jm.N, Kind: jm.K, Label: jm.L, LabelValue: jm.LV,
			Value: jm.F, Count: jm.C, Sum: jm.S}
		for _, b := range jm.B {
			m.Buckets = append(m.Buckets, BucketCount{UpperBound: b.U, Count: b.C})
		}
		s.Metrics = append(s.Metrics, m)
	}
	return s, nil
}

// JournalOptions bounds a journal. Zero values take defaults.
type JournalOptions struct {
	// MaxSegmentBytes rotates the active segment once it reaches this
	// size (default 4 MiB).
	MaxSegmentBytes int64
	// MaxSegments caps the directory; the oldest segment is deleted when
	// a rotation would exceed it (default 8).
	MaxSegments int
	// CacheSamples bounds the in-memory tail serving Recent/History
	// (default 4096 — about 5.5 hours at a 5 s cadence).
	CacheSamples int
}

func (o JournalOptions) withDefaults() JournalOptions {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 4 << 20
	}
	if o.MaxSegments <= 0 {
		o.MaxSegments = 8
	}
	if o.CacheSamples <= 0 {
		o.CacheSamples = 4096
	}
	return o
}

// Journal is the durable sample log. All methods are goroutine-safe.
type Journal struct {
	dir  string
	opts JournalOptions

	mu       sync.Mutex
	f        *os.File // active segment, opened for append
	seq      uint64   // active segment sequence number
	size     int64    // active segment size including header
	segments []uint64 // existing segment sequences, ascending (incl. active)
	cache    []JournalSample
	tornTail bool
	closed   bool
}

// ErrJournalClosed is returned by appends after Close.
var ErrJournalClosed = errors.New("telemetry journal: closed")

// OpenJournal opens (creating if needed) the journal in dir, recovers
// its history into the in-memory tail, and truncates any torn tail left
// by a crash mid-append.
func OpenJournal(dir string, opts JournalOptions) (*Journal, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	j := &Journal{dir: dir, opts: opts}
	if err := j.recover(); err != nil {
		return nil, err
	}
	journalSegments.Set(int64(len(j.segments)))
	journalSizeBytes.Set(j.diskSize())
	return j, nil
}

// recover lists segments, replays them oldest-first into the cache, and
// opens the newest for append after truncating any torn tail.
func (j *Journal) recover() error {
	ents, err := os.ReadDir(j.dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, journalSuffix) {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, journalSuffix), 10, 64)
		if err != nil {
			continue // foreign file; leave it alone
		}
		j.segments = append(j.segments, seq)
	}
	sort.Slice(j.segments, func(a, b int) bool { return j.segments[a] < j.segments[b] })

	for i, seq := range j.segments {
		last := i == len(j.segments)-1
		samples, good, torn, err := scanSegment(j.segmentPath(seq))
		if err != nil {
			return err
		}
		if torn {
			j.tornTail = true
			journalTornTailsTotal.Inc()
			if last {
				// Only the active segment is ever mid-write; chop the
				// torn frame so the next append lands on a clean edge.
				if err := truncateSegment(j.segmentPath(seq), good); err != nil {
					return err
				}
			}
		}
		for _, s := range samples {
			j.cacheAdd(s)
		}
		if last {
			j.seq, j.size = seq, good
		}
	}

	if len(j.segments) == 0 {
		return j.startSegment(1)
	}
	if j.size < int64(len(journalMagic)) {
		// The crash landed before the active segment's header sync;
		// rewrite the header so appends land in a well-formed file.
		f, err := os.OpenFile(j.segmentPath(j.seq), os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write(journalMagic[:]); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		j.f = f
		j.size = int64(len(journalMagic))
		return nil
	}
	f, err := os.OpenFile(j.segmentPath(j.seq), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	j.f = f
	return nil
}

// startSegment creates and headers a fresh active segment.
func (j *Journal) startSegment(seq uint64) error {
	f, err := os.OpenFile(j.segmentPath(seq), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(journalMagic[:]); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	j.f = f
	j.seq = seq
	j.size = int64(len(journalMagic))
	j.segments = append(j.segments, seq)
	return nil
}

func (j *Journal) segmentPath(seq uint64) string {
	return filepath.Join(j.dir, fmt.Sprintf("%012d%s", seq, journalSuffix))
}

// Append frames and persists one sample, rotating and pruning segments
// as the size bounds require, and feeds the in-memory tail.
func (j *Journal) Append(s JournalSample) error {
	start := time.Now()
	payload, err := EncodeJournalSample(s)
	if err != nil {
		return err
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrJournalClosed
	}
	if j.size >= j.opts.MaxSegmentBytes {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := j.f.Write(frame); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.size += int64(len(frame))
	j.cacheAdd(s)
	journalAppendsTotal.Inc()
	journalAppendSeconds.ObserveSince(start)
	journalSizeBytes.Set(j.diskSizeLocked())
	return nil
}

// rotateLocked closes the active segment, starts the next one, and
// prunes the oldest segments past the budget. Caller holds j.mu.
func (j *Journal) rotateLocked() error {
	if err := j.f.Close(); err != nil {
		return err
	}
	if err := j.startSegment(j.seq + 1); err != nil {
		return err
	}
	journalRotationsTotal.Inc()
	for len(j.segments) > j.opts.MaxSegments {
		oldest := j.segments[0]
		if err := os.Remove(j.segmentPath(oldest)); err != nil && !os.IsNotExist(err) {
			return err
		}
		j.segments = j.segments[1:]
		journalDroppedSegmentsTotal.Inc()
	}
	journalSegments.Set(int64(len(j.segments)))
	return nil
}

// cacheAdd appends to the bounded in-memory tail. Caller holds j.mu (or
// is single-threaded recovery).
func (j *Journal) cacheAdd(s JournalSample) {
	j.cache = append(j.cache, s)
	if over := len(j.cache) - j.opts.CacheSamples; over > 0 {
		j.cache = append(j.cache[:0], j.cache[over:]...)
	}
}

// Recent returns cached samples newer than now-window, oldest first —
// the watchdog's detector feed. Purely in-memory.
func (j *Journal) Recent(window time.Duration) []JournalSample {
	cutoff := time.Now().Add(-window)
	j.mu.Lock()
	defer j.mu.Unlock()
	i := sort.Search(len(j.cache), func(i int) bool { return j.cache[i].Time.After(cutoff) })
	return append([]JournalSample(nil), j.cache[i:]...)
}

// History returns every cached sample oldest first (bounded by
// CacheSamples; Replay streams the full disk history).
func (j *Journal) History() []JournalSample {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]JournalSample(nil), j.cache...)
}

// TornTail reports whether open-time recovery truncated a torn frame.
func (j *Journal) TornTail() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.tornTail
}

// Replay streams every decodable on-disk sample oldest first. Damaged or
// newer-versioned frames end the segment they sit in (matching open-time
// recovery) without failing the replay.
func (j *Journal) Replay(fn func(JournalSample) error) error {
	j.mu.Lock()
	segs := append([]uint64(nil), j.segments...)
	j.mu.Unlock()
	for _, seq := range segs {
		samples, _, _, err := scanSegment(j.segmentPath(seq))
		if err != nil {
			return err
		}
		for _, s := range samples {
			if err := fn(s); err != nil {
				return err
			}
		}
	}
	return nil
}

// Close syncs and closes the active segment. Appends after Close fail
// with ErrJournalClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// diskSize sums segment sizes; diskSizeLocked is the under-lock variant.
func (j *Journal) diskSize() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.diskSizeLocked()
}

func (j *Journal) diskSizeLocked() int64 {
	var total int64
	for _, seq := range j.segments {
		if fi, err := os.Stat(j.segmentPath(seq)); err == nil {
			total += fi.Size()
		}
	}
	return total
}

// scanSegment reads one segment, returning its decodable samples, the
// byte offset of the last clean frame edge, and whether the file ends in
// a torn or corrupt frame. A missing/short header counts as torn at
// offset 0 with no samples; a wrong-magic header is a hard error (the
// file is not ours to truncate).
func scanSegment(path string) (samples []JournalSample, good int64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, false, err
	}
	defer f.Close()

	var hdr [8]byte
	n, err := io.ReadFull(f, hdr[:])
	if err != nil {
		// Shorter than a header: a crash before the header sync landed.
		return nil, 0, n > 0 || err != io.EOF, nil
	}
	if hdr != journalMagic {
		return nil, 0, false, fmt.Errorf("telemetry journal: %s: bad segment magic", path)
	}
	good = int64(len(hdr))

	var lenCrc [8]byte
	for {
		if _, err := io.ReadFull(f, lenCrc[:]); err != nil {
			if err == io.EOF {
				return samples, good, false, nil // clean end
			}
			return samples, good, true, nil // partial frame header
		}
		plen := binary.LittleEndian.Uint32(lenCrc[0:4])
		want := binary.LittleEndian.Uint32(lenCrc[4:8])
		if plen == 0 || plen > 64<<20 {
			return samples, good, true, nil // garbage length
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(f, payload); err != nil {
			return samples, good, true, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != want {
			return samples, good, true, nil // bit rot or torn rewrite
		}
		s, err := DecodeJournalSample(payload)
		if err != nil {
			// Framed but undecodable (newer version, malformed JSON):
			// stop here like a torn tail so old readers degrade safely.
			return samples, good, true, nil
		}
		samples = append(samples, s)
		good += int64(len(lenCrc)) + int64(plen)
	}
}

// truncateSegment chops path to size and syncs, discarding a torn tail.
func truncateSegment(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Journal instruments, registered at package init like every metric.
var (
	journalAppendsTotal = NewCounter("telemetry_journal_appends_total",
		"samples appended to the telemetry journal")
	journalAppendSeconds = NewHistogram("telemetry_journal_append_seconds",
		"latency of one journal append, fsync included")
	journalRotationsTotal = NewCounter("telemetry_journal_rotations_total",
		"segment rotations triggered by the size bound")
	journalDroppedSegmentsTotal = NewCounter("telemetry_journal_dropped_segments_total",
		"oldest segments deleted to stay inside the segment budget")
	journalTornTailsTotal = NewCounter("telemetry_journal_torn_tails_total",
		"torn or corrupt segment tails detected during open-time recovery")
	journalSegments = NewGauge("telemetry_journal_segments",
		"segment files currently on disk")
	journalSizeBytes = NewGauge("telemetry_journal_size_bytes",
		"total bytes of journal segments on disk")
)
