package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_ops_total", "ops")
	g := r.NewGauge("test_depth", "depth")
	f := r.NewFloatGauge("test_rate", "rate")

	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	f.Set(0.125)
	if got := f.Value(); got != 0.125 {
		t.Fatalf("float gauge = %v, want 0.125", got)
	}

	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || f.Value() != 0 {
		t.Fatalf("reset left values: %d %d %v", c.Value(), g.Value(), f.Value())
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "X", "camelCase", "noprefix", "has space", "trailing_", "_leading"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q: expected panic", bad)
				}
			}()
			r.NewCounter(bad, "")
		}()
	}
	r.NewCounter("ok_name_total", "")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate registration: expected panic")
			}
		}()
		r.NewGauge("ok_name_total", "")
	}()
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewSizeHistogram("test_depth_hist", "")
	// 0 lands in bucket 0; 1 in bucket 1 (le 2); 5 in bucket 3 (le 8).
	h.ObserveInt(0)
	h.ObserveInt(1)
	h.ObserveInt(5)
	h.ObserveInt(5)
	if h.Count() != 4 || h.Sum() != 11 {
		t.Fatalf("count=%d sum=%d, want 4, 11", h.Count(), h.Sum())
	}
	snaps := r.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("snapshot size %d", len(snaps))
	}
	s := snaps[0]
	if s.Count != 4 || s.Sum != 11 {
		t.Fatalf("snapshot count=%d sum=%v", s.Count, s.Sum)
	}
	// Buckets are cumulative and only non-empty ones appear.
	want := []BucketCount{{1, 1}, {2, 2}, {8, 4}}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
	for i, b := range want {
		if s.Buckets[i] != b {
			t.Fatalf("bucket %d = %+v, want %+v", i, s.Buckets[i], b)
		}
	}
	if q := s.Quantile(0.5); q != 2 {
		t.Fatalf("p50 = %v, want 2", q)
	}
	if q := s.Quantile(0.99); q != 8 {
		t.Fatalf("p99 = %v, want 8", q)
	}
}

func TestHistogramSecondsScaling(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("test_latency_seconds", "")
	h.Observe(1500 * time.Nanosecond)
	s := r.Snapshot()[0]
	if got, want := s.Sum, 1.5e-6; math.Abs(got-want) > 1e-15 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// 1500 ns has bit length 11 → upper bound 2^11 ns = 2.048 µs.
	if got, want := s.Buckets[0].UpperBound, 2048e-9; math.Abs(got-want) > 1e-15 {
		t.Fatalf("bucket edge = %v, want %v", got, want)
	}
}

func TestHistogramExtremes(t *testing.T) {
	r := NewRegistry()
	h := r.NewSizeHistogram("test_extreme_hist", "")
	h.ObserveInt(-5) // clamped to 0
	h.ObserveInt(math.MaxInt64)
	s := r.Snapshot()[0]
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2", s.Count)
	}
	if s.Buckets[len(s.Buckets)-1].Count != 2 {
		t.Fatalf("last cumulative = %d, want 2", s.Buckets[len(s.Buckets)-1].Count)
	}
}

func TestConcurrentWrites(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_conc_total", "")
	h := r.NewHistogram("test_conc_seconds", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.ObserveInt(int64(j))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestSnapshotOrderIsRegistrationOrder(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("zz_last_total", "")
	r.NewCounter("aa_first_total", "")
	snaps := r.Snapshot()
	if snaps[0].Name != "zz_last_total" || snaps[1].Name != "aa_first_total" {
		t.Fatalf("order = %s, %s", snaps[0].Name, snaps[1].Name)
	}
}

func TestDefaultRegistryHasCoreMetrics(t *testing.T) {
	// The instrumented packages register at init; importing telemetry
	// alone must at least yield a working default registry.
	if Default() == nil {
		t.Fatal("nil default registry")
	}
	var b strings.Builder
	if err := Default().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
}
