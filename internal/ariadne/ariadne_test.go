package ariadne

import (
	"context"
	"testing"
	"time"

	"sariadne/internal/discovery"
	"sariadne/internal/election"
	"sariadne/internal/gen"
	"sariadne/internal/simnet"
	"sariadne/internal/testutil"
	"sariadne/internal/wsdl"
)

func sampleDef(name string) *wsdl.Definition {
	return &wsdl.Definition{
		Name:            name,
		TargetNamespace: "http://x/" + name,
		Messages: []wsdl.Message{
			{Name: "In", Parts: []wsdl.Part{{Name: "a", Type: "xsd:string"}}},
			{Name: "Out", Parts: []wsdl.Part{{Name: "b", Type: "xsd:int"}}},
		},
		PortTypes: []wsdl.PortType{
			{Name: "Port", Operations: []wsdl.Operation{{Name: "Op", Input: "In", Output: "Out"}}},
		},
	}
}

func mustMarshal(t *testing.T, d *wsdl.Definition) []byte {
	t.Helper()
	data, err := wsdl.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestBackendRegisterQuery(t *testing.T) {
	b := NewBackend()
	if b.Name() != "ariadne" {
		t.Fatalf("Name = %q", b.Name())
	}
	name, err := b.Register(mustMarshal(t, sampleDef("svc1")))
	if err != nil || name != "svc1" {
		t.Fatalf("Register = %q, %v", name, err)
	}
	if _, err := b.Register([]byte("junk")); err == nil {
		t.Fatal("registered junk")
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d", b.Len())
	}

	hits, err := b.Query(mustMarshal(t, sampleDef("request")))
	if err != nil || len(hits) != 1 || hits[0].Service != "svc1" {
		t.Fatalf("hits = %v, err = %v", hits, err)
	}
	if hits[0].Distance != 0 {
		t.Fatalf("syntactic hit distance = %d, want 0", hits[0].Distance)
	}
	if _, err := b.Query([]byte("junk")); err == nil {
		t.Fatal("queried junk")
	}

	// Renamed operation: syntactic match fails.
	renamed := sampleDef("request2")
	renamed.PortTypes[0].Operations[0].Name = "Other"
	hits, err = b.Query(mustMarshal(t, renamed))
	if err != nil || len(hits) != 0 {
		t.Fatalf("renamed hits = %v, err = %v", hits, err)
	}
}

func TestBackendReRegisterReplaces(t *testing.T) {
	b := NewBackend()
	doc := mustMarshal(t, sampleDef("svc1"))
	for i := 0; i < 3; i++ {
		if _, err := b.Register(doc); err != nil {
			t.Fatal(err)
		}
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d after re-registrations, want 1", b.Len())
	}
}

func TestBackendDeregister(t *testing.T) {
	b := NewBackend()
	if _, err := b.Register(mustMarshal(t, sampleDef("svc1"))); err != nil {
		t.Fatal(err)
	}
	if !b.Deregister("svc1") || b.Deregister("svc1") {
		t.Fatal("Deregister semantics wrong")
	}
}

func TestBackendKeys(t *testing.T) {
	b := NewBackend()
	if _, err := b.Register(mustMarshal(t, sampleDef("svc1"))); err != nil {
		t.Fatal(err)
	}
	keys := b.Keys()
	if len(keys) != 1 || keys[0] != "Port" {
		t.Fatalf("Keys = %v", keys)
	}
	k, err := b.RequestKey(mustMarshal(t, sampleDef("req")))
	if err != nil || k != "Port" {
		t.Fatalf("RequestKey = %q, %v", k, err)
	}
	if _, err := b.RequestKey([]byte("junk")); err == nil {
		t.Fatal("RequestKey accepted junk")
	}
	name, err := b.ServiceName(mustMarshal(t, sampleDef("svc9")))
	if err != nil || name != "svc9" {
		t.Fatalf("ServiceName = %q, %v", name, err)
	}
	if _, err := b.ServiceName([]byte("junk")); err == nil {
		t.Fatal("ServiceName accepted junk")
	}
}

// TestAriadneOverProtocolShell runs the syntactic backend through the same
// discovery.Node protocol as S-Ariadne: publish on one node, discover from
// another.
func TestAriadneOverProtocolShell(t *testing.T) {
	net := simnet.New(simnet.Config{})
	t.Cleanup(net.Close)
	eps, err := simnet.BuildLine(net, "n", 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := discovery.Config{
		QueryTimeout:     500 * time.Millisecond,
		TickInterval:     2 * time.Millisecond,
		SummaryPushEvery: 1,
		Election: election.Config{
			AdvertiseInterval: 15 * time.Millisecond,
			AdvertiseTTL:      3,
			ElectionTimeout:   time.Hour,
		},
	}
	nodes := make([]*discovery.Node, len(eps))
	for i, ep := range eps {
		nodes[i] = discovery.NewNode(ep, NewBackend(), cfg)
		nodes[i].Start(context.Background())
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
	})
	nodes[1].BecomeDirectory()

	testutil.WaitFor(t, 2*time.Second, func() bool {
		_, ok0 := nodes[0].DirectoryID()
		_, ok2 := nodes[2].DirectoryID()
		return ok0 && ok2
	}, "directory advertisement")

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	w := gen.MustNewWorkload(gen.WorkloadConfig{Ontologies: 3, Services: 5, Seed: 11})
	for i := range w.Definitions {
		doc, err := wsdl.Marshal(w.Definitions[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := nodes[0].Publish(ctx, doc); err != nil {
			t.Fatalf("Publish %d: %v", i, err)
		}
	}
	reqDoc, err := wsdl.Marshal(w.WSDLRequest(2))
	if err != nil {
		t.Fatal(err)
	}
	hits, err := nodes[2].Discover(ctx, reqDoc)
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	found := false
	for _, h := range hits {
		if h.Service == w.Definitions[2].Name {
			found = true
		}
	}
	if !found {
		t.Fatalf("hits = %v, want %s", hits, w.Definitions[2].Name)
	}
}
