// Package ariadne implements the syntactic baseline S-Ariadne is compared
// against in Figure 10: the original Ariadne discovery protocol's
// directory behaviour, where advertisements are WSDL descriptions and a
// query is answered by syntactically comparing the required interface with
// every cached description.
//
// It plugs into the same protocol shell as the semantic backend
// (discovery.Node), so both systems run the identical election, Bloom
// summary and forwarding machinery — the measured difference is exactly
// the local description handling and matching, as in the paper.
package ariadne

import (
	"sort"
	"sync"

	"sariadne/internal/discovery"
	"sariadne/internal/wsdl"
)

// Backend is the syntactic directory store. It is safe for concurrent use.
//
// Faithful to the original Ariadne's behaviour — and to the paper's
// explanation of Figure 10 ("using S-Ariadne, the services are parsed once
// at the publishing phase ... while using Ariadne the matching is
// performed by syntactically comparing the WSDL descriptions") — the
// backend stores the advertisement documents and processes them again
// when answering a query, which is what makes its response time grow
// with the number of cached services.
type Backend struct {
	mu   sync.RWMutex
	defs []*storedDef
}

type storedDef struct {
	name string
	doc  []byte
	def  *wsdl.Definition // parsed form, used for summaries only
}

// NewBackend returns an empty syntactic backend.
func NewBackend() *Backend { return &Backend{} }

// Name implements discovery.Backend.
func (b *Backend) Name() string { return "ariadne" }

// Register implements discovery.Backend: parse the WSDL document and store
// it (flat, as Ariadne's directories do).
func (b *Backend) Register(doc []byte) (string, error) {
	d, err := wsdl.Unmarshal(doc)
	if err != nil {
		return "", err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	stored := &storedDef{name: d.Name, doc: append([]byte(nil), doc...), def: d}
	// Re-registration replaces the previous description of the service.
	for i, old := range b.defs {
		if old.name == d.Name {
			b.defs[i] = stored
			return d.Name, nil
		}
	}
	b.defs = append(b.defs, stored)
	return d.Name, nil
}

// Deregister implements discovery.Backend.
func (b *Backend) Deregister(service string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, d := range b.defs {
		if d.name == service {
			b.defs = append(b.defs[:i], b.defs[i+1:]...)
			return true
		}
	}
	return false
}

// Query implements discovery.Backend: parse the required interface, then
// process every cached WSDL description and compare it syntactically —
// the per-advertisement document handling whose linear growth Figure 10
// shows.
func (b *Backend) Query(doc []byte) ([]discovery.Hit, error) {
	req, err := wsdl.Unmarshal(doc)
	if err != nil {
		return nil, err
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	var hits []discovery.Hit
	for _, stored := range b.defs {
		d, err := wsdl.Unmarshal(stored.doc)
		if err != nil {
			continue // a corrupt cached description must not fail the query
		}
		if wsdl.Satisfies(d, req) {
			cap := ""
			if len(req.PortTypes) > 0 && len(req.PortTypes[0].Operations) > 0 {
				cap = req.PortTypes[0].Operations[0].Name
			}
			hits = append(hits, discovery.Hit{
				Service:    d.Name,
				Capability: cap,
				Provider:   d.TargetNamespace,
				For:        req.Name,
			})
		}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].Service < hits[j].Service })
	return hits, nil
}

// Keys implements discovery.Backend: Ariadne summarizes directory content
// by hashing description identifiers (port type names stand in for the
// WSDL vocabulary of [12]).
func (b *Backend) Keys() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	seen := make(map[string]struct{})
	for _, stored := range b.defs {
		for _, pt := range stored.def.PortTypes {
			seen[pt.Name] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// RequestKey implements discovery.Backend.
func (b *Backend) RequestKey(doc []byte) (string, error) {
	req, err := wsdl.Unmarshal(doc)
	if err != nil {
		return "", err
	}
	if len(req.PortTypes) == 0 {
		return req.Name, nil
	}
	return req.PortTypes[0].Name, nil
}

// RequiredNames implements discovery.Backend: a WSDL request asks for its
// port types as a unit (Satisfies is all-or-nothing), so the request
// itself is the single "required capability".
func (b *Backend) RequiredNames(doc []byte) ([]string, error) {
	req, err := wsdl.Unmarshal(doc)
	if err != nil {
		return nil, err
	}
	return []string{req.Name}, nil
}

// Subset implements discovery.Backend; with a single syntactic unit the
// subset is the request itself.
func (b *Backend) Subset(doc []byte, _ []string) ([]byte, error) {
	if _, err := wsdl.Unmarshal(doc); err != nil {
		return nil, err
	}
	return doc, nil
}

// Len implements discovery.Backend.
func (b *Backend) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.defs)
}

// Snapshot implements discovery.Backend.
func (b *Backend) Snapshot() map[string][]byte {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make(map[string][]byte, len(b.defs))
	for _, stored := range b.defs {
		out[stored.name] = append([]byte(nil), stored.doc...)
	}
	return out
}

// ServiceName lets the protocol shell name documents without registering.
func (b *Backend) ServiceName(doc []byte) (string, error) {
	d, err := wsdl.Unmarshal(doc)
	if err != nil {
		return "", err
	}
	return d.Name, nil
}

var _ discovery.Backend = (*Backend)(nil)
