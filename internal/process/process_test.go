package process

import (
	"encoding/xml"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func demoTree() *Node {
	return Sequence(
		Invoke("NeedProjection"),
		Parallel(
			Invoke("NeedAudio"),
			Choice(
				Invoke("NeedSubtitlesLocal"),
				Invoke("NeedSubtitlesRemote"),
			),
		),
	)
}

func TestValidate(t *testing.T) {
	known := map[string]bool{
		"NeedProjection": true, "NeedAudio": true,
		"NeedSubtitlesLocal": true, "NeedSubtitlesRemote": true,
	}
	if err := demoTree().Validate(known); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		n    *Node
	}{
		{"nil", nil},
		{"invoke without capability", &Node{Kind: KindInvoke}},
		{"invoke with children", &Node{Kind: KindInvoke, Capability: "x", Children: []*Node{Invoke("y")}}},
		{"empty sequence", &Node{Kind: KindSequence}},
		{"control with capability", &Node{Kind: KindChoice, Capability: "x", Children: []*Node{Invoke("y")}}},
		{"unknown kind", &Node{Kind: "loop", Children: []*Node{Invoke("y")}}},
		{"undeclared capability", Invoke("Nope")},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.n.Validate(known); !errors.Is(err, ErrMalformed) {
				t.Fatalf("Validate = %v, want ErrMalformed", err)
			}
		})
	}
	// nil known skips the reference check.
	if err := Invoke("Anything").Validate(nil); err != nil {
		t.Fatalf("Validate(nil known) = %v", err)
	}
}

func TestInvocationsAndString(t *testing.T) {
	tree := demoTree()
	got := tree.Invocations()
	want := []string{"NeedProjection", "NeedAudio", "NeedSubtitlesLocal", "NeedSubtitlesRemote"}
	if len(got) != len(want) {
		t.Fatalf("Invocations = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Invocations = %v, want %v", got, want)
		}
	}
	s := tree.String()
	if !strings.HasPrefix(s, "seq(invoke(NeedProjection), par(") {
		t.Fatalf("String = %q", s)
	}
	if (*Node)(nil).String() != "<nil>" {
		t.Fatal("nil String")
	}
}

func TestExecuteFullBinding(t *testing.T) {
	b := MapBinding{
		"NeedProjection":     "Projector",
		"NeedAudio":          "Speakers",
		"NeedSubtitlesLocal": "LocalSubs",
	}
	steps, err := Execute(demoTree(), b)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 3 {
		t.Fatalf("steps = %v", steps)
	}
	if steps[0].Capability != "NeedProjection" || steps[0].Provider != "Projector" {
		t.Fatalf("step 0 = %+v", steps[0])
	}
	if steps[2].Capability != "NeedSubtitlesLocal" {
		t.Fatalf("choice picked %q, want first viable branch", steps[2].Capability)
	}
	if !strings.Contains(steps[2].Branch, "choice[0]") {
		t.Fatalf("branch = %q", steps[2].Branch)
	}
}

func TestExecuteChoiceFallback(t *testing.T) {
	// Local subtitles unbound: the choice falls through to the remote
	// branch.
	b := MapBinding{
		"NeedProjection":      "Projector",
		"NeedAudio":           "Speakers",
		"NeedSubtitlesRemote": "CloudSubs",
	}
	steps, err := Execute(demoTree(), b)
	if err != nil {
		t.Fatal(err)
	}
	last := steps[len(steps)-1]
	if last.Capability != "NeedSubtitlesRemote" || last.Provider != "CloudSubs" {
		t.Fatalf("fallback step = %+v", last)
	}
	if !strings.Contains(last.Branch, "choice[1]") {
		t.Fatalf("branch = %q", last.Branch)
	}
}

func TestExecuteUnbound(t *testing.T) {
	b := MapBinding{"NeedProjection": "Projector"} // audio missing
	_, err := Execute(demoTree(), b)
	if !errors.Is(err, ErrUnboundInvocation) {
		t.Fatalf("Execute = %v, want ErrUnboundInvocation", err)
	}
	// Neither subtitle branch bound: the choice reports the failure.
	b = MapBinding{"NeedProjection": "P", "NeedAudio": "A"}
	if _, err := Execute(demoTree(), b); !errors.Is(err, ErrUnboundInvocation) {
		t.Fatalf("Execute = %v, want ErrUnboundInvocation", err)
	}
}

func TestExecuteRejectsInvalid(t *testing.T) {
	if _, err := Execute(&Node{Kind: KindSequence}, MapBinding{}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("Execute = %v, want ErrMalformed", err)
	}
}

func TestXMLRoundTrip(t *testing.T) {
	tree := demoTree()
	data, err := xml.Marshal(XMLNode{Node: tree})
	if err != nil {
		t.Fatal(err)
	}
	var back XMLNode
	if err := xml.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal: %v\n%s", err, data)
	}
	if back.Node.String() != tree.String() {
		t.Fatalf("round trip changed tree:\n%s\n%s", back.Node, tree)
	}
}

func TestXMLUnknownElement(t *testing.T) {
	var back XMLNode
	if err := xml.Unmarshal([]byte(`<loop capability="x"/>`), &back); err == nil {
		t.Fatal("accepted unknown element")
	}
}

// TestPropertyExecuteRespectsBindings: on random trees, every step of a
// successful execution is bound, choice always selects its first viable
// branch, and execution is deterministic.
func TestPropertyExecuteRespectsBindings(t *testing.T) {
	caps := []string{"a", "b", "c", "d", "e"}
	prop := func(seed int64, depth uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var build func(d int) *Node
		build = func(d int) *Node {
			if d <= 0 || rng.Intn(3) == 0 {
				return Invoke(caps[rng.Intn(len(caps))])
			}
			n := rng.Intn(3) + 1
			children := make([]*Node, 0, n)
			for i := 0; i < n; i++ {
				children = append(children, build(d-1))
			}
			switch rng.Intn(3) {
			case 0:
				return Sequence(children...)
			case 1:
				return Parallel(children...)
			default:
				return Choice(children...)
			}
		}
		tree := build(int(depth%4) + 1)
		b := MapBinding{}
		for _, c := range caps {
			if rng.Intn(3) > 0 {
				b[c] = "provider-" + c
			}
		}
		steps1, err1 := Execute(tree, b)
		steps2, err2 := Execute(tree, b)
		if (err1 == nil) != (err2 == nil) || len(steps1) != len(steps2) {
			return false // nondeterministic
		}
		if err1 != nil {
			return errors.Is(err1, ErrUnboundInvocation) || errors.Is(err1, ErrMalformed)
		}
		for i, s := range steps1 {
			if b[s.Capability] != s.Provider {
				return false
			}
			if steps2[i] != s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
