package process

import (
	"encoding/xml"
	"fmt"
)

// XML form of a process tree, designed to compose into Amigo-S service
// documents (profile embeds a <process> element):
//
//	<process>
//	  <sequence>
//	    <invoke capability="NeedProjection"/>
//	    <parallel>
//	      <invoke capability="NeedAudio"/>
//	      <choice>
//	        <invoke capability="NeedSubtitlesLocal"/>
//	        <invoke capability="NeedSubtitlesRemote"/>
//	      </choice>
//	    </parallel>
//	  </sequence>
//	</process>
//
// The tree is encoded structurally: element name = node kind.

// XMLNode is the xml.Marshaler/Unmarshaler wire form of a Node.
type XMLNode struct {
	Node *Node
}

// MarshalXML implements xml.Marshaler (the element name comes from the
// node's kind).
func (x XMLNode) MarshalXML(e *xml.Encoder, _ xml.StartElement) error {
	return marshalNode(e, x.Node)
}

func marshalNode(e *xml.Encoder, n *Node) error {
	if n == nil {
		return fmt.Errorf("%w: nil node", ErrMalformed)
	}
	start := xml.StartElement{Name: xml.Name{Local: string(n.Kind)}}
	if n.Kind == KindInvoke {
		start.Attr = append(start.Attr, xml.Attr{Name: xml.Name{Local: "capability"}, Value: n.Capability})
	}
	if err := e.EncodeToken(start); err != nil {
		return err
	}
	for _, c := range n.Children {
		if err := marshalNode(e, c); err != nil {
			return err
		}
	}
	return e.EncodeToken(start.End())
}

// UnmarshalXML implements xml.Unmarshaler: it decodes the element it is
// invoked on into the node tree.
func (x *XMLNode) UnmarshalXML(d *xml.Decoder, start xml.StartElement) error {
	n, err := unmarshalNode(d, start)
	if err != nil {
		return err
	}
	x.Node = n
	return nil
}

func unmarshalNode(d *xml.Decoder, start xml.StartElement) (*Node, error) {
	n := &Node{Kind: Kind(start.Name.Local)}
	switch n.Kind {
	case KindInvoke:
		for _, a := range start.Attr {
			if a.Name.Local == "capability" {
				n.Capability = a.Value
			}
		}
	case KindSequence, KindParallel, KindChoice:
	default:
		return nil, fmt.Errorf("%w: unknown element <%s>", ErrMalformed, start.Name.Local)
	}
	for {
		tok, err := d.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			child, err := unmarshalNode(d, t)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, child)
		case xml.EndElement:
			return n, nil
		}
	}
}
