// Package process implements the conversation side of service
// descriptions: OWL-S — and therefore Amigo-S, which incorporates it
// (paper Section 2.1) — describes a service as profile + process model +
// grounding, where "the process model is a representation of the service
// conversation, i.e., the interaction protocol between a service and its
// client".
//
// A process is a tree of control constructs over capability invocations:
//
//   - Invoke: one interaction through a named (required) capability;
//   - Sequence: children run in order;
//   - Parallel: children run concurrently (traces interleave);
//   - Choice: exactly one child runs — the first whose invocations can all
//     be bound.
//
// Given the bindings produced by discovery/composition (which provider
// answers which required capability), Execute walks the tree and yields
// the conversation trace, or reports precisely which invocation cannot be
// bound.
package process

import (
	"errors"
	"fmt"
	"strings"
)

// Kind discriminates process nodes.
type Kind string

// Node kinds.
const (
	KindInvoke   Kind = "invoke"
	KindSequence Kind = "sequence"
	KindParallel Kind = "parallel"
	KindChoice   Kind = "choice"
)

// Common errors.
var (
	// ErrMalformed is returned for structurally invalid process trees.
	ErrMalformed = errors.New("process: malformed")
	// ErrUnboundInvocation is returned by Execute when an invocation has
	// no binding and no Choice branch can avoid it.
	ErrUnboundInvocation = errors.New("process: unbound invocation")
)

// Node is one vertex of the process tree.
type Node struct {
	Kind Kind
	// Capability names the required capability an Invoke node interacts
	// through; empty for control nodes.
	Capability string
	// Children are the sub-processes of control nodes; empty for Invoke.
	Children []*Node
}

// Invoke builds an invocation leaf.
func Invoke(capability string) *Node {
	return &Node{Kind: KindInvoke, Capability: capability}
}

// Sequence builds an in-order control node.
func Sequence(children ...*Node) *Node {
	return &Node{Kind: KindSequence, Children: children}
}

// Parallel builds a concurrent control node.
func Parallel(children ...*Node) *Node {
	return &Node{Kind: KindParallel, Children: children}
}

// Choice builds an alternative control node.
func Choice(children ...*Node) *Node {
	return &Node{Kind: KindChoice, Children: children}
}

// Validate checks structural well-formedness: invocations carry a
// capability name and no children; control nodes carry children and no
// capability; every referenced capability must appear in known (when
// non-nil — services validate against their required capability names).
func (n *Node) Validate(known map[string]bool) error {
	if n == nil {
		return fmt.Errorf("%w: nil node", ErrMalformed)
	}
	switch n.Kind {
	case KindInvoke:
		if n.Capability == "" {
			return fmt.Errorf("%w: invoke without capability", ErrMalformed)
		}
		if len(n.Children) != 0 {
			return fmt.Errorf("%w: invoke %q with children", ErrMalformed, n.Capability)
		}
		if known != nil && !known[n.Capability] {
			return fmt.Errorf("%w: invoke references undeclared capability %q", ErrMalformed, n.Capability)
		}
	case KindSequence, KindParallel, KindChoice:
		if n.Capability != "" {
			return fmt.Errorf("%w: %s node with capability attribute", ErrMalformed, n.Kind)
		}
		if len(n.Children) == 0 {
			return fmt.Errorf("%w: empty %s", ErrMalformed, n.Kind)
		}
		for _, c := range n.Children {
			if err := c.Validate(known); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("%w: unknown kind %q", ErrMalformed, n.Kind)
	}
	return nil
}

// Invocations returns the capability names referenced by the tree, in
// first-appearance order.
func (n *Node) Invocations() []string {
	seen := map[string]bool{}
	var out []string
	var walk func(x *Node)
	walk = func(x *Node) {
		if x == nil {
			return
		}
		if x.Kind == KindInvoke {
			if !seen[x.Capability] {
				seen[x.Capability] = true
				out = append(out, x.Capability)
			}
			return
		}
		for _, c := range x.Children {
			walk(c)
		}
	}
	walk(n)
	return out
}

// String renders the tree compactly, e.g.
// "seq(invoke(a), par(invoke(b), invoke(c)))".
func (n *Node) String() string {
	if n == nil {
		return "<nil>"
	}
	switch n.Kind {
	case KindInvoke:
		return fmt.Sprintf("invoke(%s)", n.Capability)
	default:
		parts := make([]string, 0, len(n.Children))
		for _, c := range n.Children {
			parts = append(parts, c.String())
		}
		name := map[Kind]string{KindSequence: "seq", KindParallel: "par", KindChoice: "choice"}[n.Kind]
		return fmt.Sprintf("%s(%s)", name, strings.Join(parts, ", "))
	}
}

// Binding resolves a required capability name to the provider chosen for
// it (as discovery/composition does). Missing capabilities return ok=false.
type Binding interface {
	Provider(capability string) (string, bool)
}

// MapBinding is the trivial Binding over a map.
type MapBinding map[string]string

// Provider implements Binding.
func (m MapBinding) Provider(capability string) (string, bool) {
	p, ok := m[capability]
	return p, ok
}

// Step is one interaction of an executed conversation.
type Step struct {
	// Capability is the required capability invoked.
	Capability string
	// Provider is the bound provider service.
	Provider string
	// Branch is the path of control constructs leading to the invocation
	// (diagnostics), e.g. "seq[1]/par[0]".
	Branch string
}

// Execute walks the process with the given bindings and returns the
// conversation trace. Sequence children contribute in order; Parallel
// children are traced left-to-right (a deterministic linearization of the
// concurrent conversation); Choice picks the first child whose whole
// subtree can be bound, so alternatives degrade gracefully when providers
// are missing. Execute fails only when no choice can avoid an unbound
// invocation.
func Execute(n *Node, b Binding) ([]Step, error) {
	if err := n.Validate(nil); err != nil {
		return nil, err
	}
	return execute(n, b, "")
}

func execute(n *Node, b Binding, branch string) ([]Step, error) {
	switch n.Kind {
	case KindInvoke:
		provider, ok := b.Provider(n.Capability)
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnboundInvocation, n.Capability)
		}
		return []Step{{Capability: n.Capability, Provider: provider, Branch: branch}}, nil
	case KindSequence, KindParallel:
		label := "seq"
		if n.Kind == KindParallel {
			label = "par"
		}
		var steps []Step
		for i, c := range n.Children {
			sub, err := execute(c, b, childBranch(branch, label, i))
			if err != nil {
				return nil, err
			}
			steps = append(steps, sub...)
		}
		return steps, nil
	case KindChoice:
		var firstErr error
		for i, c := range n.Children {
			sub, err := execute(c, b, childBranch(branch, "choice", i))
			if err == nil {
				return sub, nil
			}
			if firstErr == nil {
				firstErr = err
			}
		}
		return nil, fmt.Errorf("process: no viable choice branch: %w", firstErr)
	default:
		return nil, fmt.Errorf("%w: unknown kind %q", ErrMalformed, n.Kind)
	}
}

func childBranch(parent, label string, i int) string {
	part := fmt.Sprintf("%s[%d]", label, i)
	if parent == "" {
		return part
	}
	return parent + "/" + part
}
