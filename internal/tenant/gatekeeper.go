package tenant

import (
	"sort"
	"sync"
	"time"
)

// Config assembles a Gatekeeper.
type Config struct {
	// Auth resolves tokens. nil runs the gate in open mode: every op is
	// admitted under a wildcard identity and nothing is enforced — the
	// pre-tenancy daemon, bit for bit.
	Auth Authenticator
	// AnonymousReads admits token-less requests as the anonymous reader
	// instead of rejecting them outright (the explicit read-only mode).
	// Mutating ops still require a real identity either way.
	AnonymousReads bool
	// Rate is the per-tenant token-bucket refill in mutating ops/second;
	// 0 disables rate limiting. Burst is the bucket size (min 1).
	Rate  float64
	Burst int
	// MaxLiveServices caps concurrently live advertisements per tenant;
	// 0 is unlimited.
	MaxLiveServices int
	// MaxPublishesPerMinute caps admitted mutating ops per wall-clock
	// minute per tenant; 0 is unlimited.
	MaxPublishesPerMinute int
	// Now is the admission clock (rate refill, quota windows, token
	// expiry); nil means time.Now.
	Now func() time.Time
}

// usage is one tenant's admission ledger.
type usage struct {
	live        int
	window      minuteWindow
	publishes   uint64
	rateLimited uint64
	denied      uint64
}

// Gatekeeper is the admission facade sdpd's front ends call: it
// authenticates, enforces the namespace rule, spends rate-limit tokens
// and checks quotas — all before an advertisement touches the semantic
// backend, so a denied publish never reaches the capability DAG or a
// Bloom summary.
type Gatekeeper struct {
	cfg     Config
	limiter *Limiter
	now     func() time.Time

	mu      sync.Mutex
	tenants map[string]*usage
	order   []string
}

// NewGatekeeper builds the admission layer. A nil cfg.Auth yields an
// open gate (Enforcing reports false).
func NewGatekeeper(cfg Config) *Gatekeeper {
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	g := &Gatekeeper{
		cfg:     cfg,
		limiter: NewLimiter(cfg.Rate, cfg.Burst, now),
		now:     now,
		tenants: make(map[string]*usage),
	}
	// Pre-seed the admission table with the statically known tenants so
	// GET /tenants lists them before their first publish.
	if s, ok := cfg.Auth.(*Static); ok {
		names := s.Tenants()
		sort.Strings(names)
		for _, name := range names {
			g.usageLocked(name)
		}
	}
	return g
}

// Enforcing reports whether an authenticator is configured.
func (g *Gatekeeper) Enforcing() bool { return g.cfg.Auth != nil }

// AuthName names the configured authenticator ("open" when none).
func (g *Gatekeeper) AuthName() string {
	if g.cfg.Auth == nil {
		return "open"
	}
	return g.cfg.Auth.Name()
}

// Authenticate resolves a bearer token into an identity. Open mode
// returns the wildcard; an empty token becomes the anonymous reader when
// AnonymousReads is on. Failures are *Denial (CodeUnauthenticated).
func (g *Gatekeeper) Authenticate(token string) (Identity, error) {
	if g.cfg.Auth == nil {
		return Identity{Open: true, Role: RoleAdmin}, nil
	}
	if token == "" && g.cfg.AnonymousReads {
		return Identity{Tenant: Anonymous, Role: RoleReader}, nil
	}
	id, err := g.cfg.Auth.Authenticate(token)
	if err != nil {
		if _, isDenial := Denied(err); isDenial {
			deniedTotal.Inc()
		}
		return Identity{}, err
	}
	return id, nil
}

// usageLocked returns (creating if needed) a tenant's ledger.
func (g *Gatekeeper) usageLocked(tenant string) *usage {
	u := g.tenants[tenant]
	if u == nil {
		u = &usage{}
		g.tenants[tenant] = u
		g.order = append(g.order, tenant)
		knownGauge.Set(int64(len(g.order)))
	}
	return u
}

// deny books a 401/403 against the tenant and returns the denial.
func (g *Gatekeeper) deny(tenant string, d *Denial) error {
	deniedTotal.Inc()
	if tenant != "" {
		g.mu.Lock()
		g.usageLocked(tenant).denied++
		g.mu.Unlock()
	}
	return d
}

// throttle books a 429 against the tenant and returns the denial.
func (g *Gatekeeper) throttle(tenant string, d *Denial) error {
	rateLimitedTotal.Inc()
	g.mu.Lock()
	g.usageLocked(tenant).rateLimited++
	g.mu.Unlock()
	return d
}

// AdmitPublish authorizes one register of the (namespaced) advertisement
// name: role, namespace ownership, rate limit, then quotas, in that
// order, so the cheapest rejection wins and a rejected op never spends a
// quota it did not pass. newService marks a register that would create a
// live advertisement (rather than supersede one), which is what the
// max-live-services quota counts.
func (g *Gatekeeper) AdmitPublish(id Identity, name string, newService bool) error {
	if id.Open {
		return nil
	}
	if id.Role < RolePublisher {
		return g.deny(id.Tenant, forbidden("role %s may not publish", id.Role))
	}
	owner, _, namespaced := SplitName(name)
	if !namespaced {
		return g.deny(id.Tenant, forbidden("advertisement %q is not namespaced; publish as %s", name, Qualify(id.Tenant, name)))
	}
	if owner != id.Tenant && id.Role < RoleAdmin {
		return g.deny(id.Tenant, forbidden("tenant %s may not publish into namespace %s/", id.Tenant, owner))
	}
	return g.spend(id.Tenant, newService)
}

// AdmitDeregister authorizes withdrawing the named advertisement. It is
// a mutating op: same role and namespace rules, and it spends a rate
// token (withdraw-storms are as disruptive as publish-storms), but never
// the live-services quota.
func (g *Gatekeeper) AdmitDeregister(id Identity, name string) error {
	if id.Open {
		return nil
	}
	if id.Role < RolePublisher {
		return g.deny(id.Tenant, forbidden("role %s may not deregister", id.Role))
	}
	owner, _, namespaced := SplitName(name)
	if namespaced && owner != id.Tenant && id.Role < RoleAdmin {
		return g.deny(id.Tenant, forbidden("tenant %s may not withdraw from namespace %s/", id.Tenant, owner))
	}
	if !namespaced && id.Role < RoleAdmin {
		return g.deny(id.Tenant, forbidden("advertisement %q is outside tenant namespaces", name))
	}
	return g.spend(id.Tenant, false)
}

// AdmitOntology authorizes an ontology upload: publisher or better, rate
// limited, namespace-free (ontologies are shared vocabulary).
func (g *Gatekeeper) AdmitOntology(id Identity) error {
	if id.Open {
		return nil
	}
	if id.Role < RolePublisher {
		return g.deny(id.Tenant, forbidden("role %s may not upload ontologies", id.Role))
	}
	return g.spend(id.Tenant, false)
}

// AdmitAdmin authorizes the admin surfaces (GET /tenants).
func (g *Gatekeeper) AdmitAdmin(id Identity) error {
	if id.Open {
		return nil
	}
	if id.Role < RoleAdmin {
		return g.deny(id.Tenant, forbidden("role %s may not read the admission table", id.Role))
	}
	return nil
}

// spend runs the rate limiter and quota checks for one admitted mutating
// op and books it.
func (g *Gatekeeper) spend(tenant string, newService bool) error {
	if !g.limiter.Allow(tenant) {
		return g.throttle(tenant, rateLimited("tenant %s exceeded %g mutating ops/sec (burst %d)",
			tenant, g.cfg.Rate, g.cfg.Burst))
	}
	now := g.now()
	g.mu.Lock()
	defer g.mu.Unlock()
	u := g.usageLocked(tenant)
	inWindow := u.window.tick(now)
	if g.cfg.MaxPublishesPerMinute > 0 && inWindow >= g.cfg.MaxPublishesPerMinute {
		u.rateLimited++
		rateLimitedTotal.Inc()
		return rateLimited("tenant %s exhausted its %d publishes/minute quota", tenant, g.cfg.MaxPublishesPerMinute)
	}
	if newService && g.cfg.MaxLiveServices > 0 && u.live >= g.cfg.MaxLiveServices {
		u.rateLimited++
		rateLimitedTotal.Inc()
		return rateLimited("tenant %s is at its %d live-services quota", tenant, g.cfg.MaxLiveServices)
	}
	u.window.count++
	u.publishes++
	publishesMinuteGauge.With(tenant).Set(int64(u.window.count))
	publishesTotal.Inc()
	return nil
}

// ServiceLive books a live-advertisement delta for a tenant: +1 on a
// fresh register, -1 on deregister. Replay calls it too, so the quota
// state is durable — a restarted daemon rebuilds per-tenant live counts
// from its store. Tenant "" (legacy, un-namespaced records) books
// nothing.
func (g *Gatekeeper) ServiceLive(tenant string, delta int) {
	if tenant == "" {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	u := g.usageLocked(tenant)
	u.live += delta
	if u.live < 0 {
		u.live = 0
	}
	liveServicesGauge.With(tenant).Set(int64(u.live))
}

// Status is one row of the admission table (GET /tenants).
type Status struct {
	Tenant       string `json:"tenant"`
	LiveServices int    `json:"live_services"`
	// PublishesTotal counts mutating ops admitted since boot;
	// PublishesThisMinute counts against the per-minute quota window.
	PublishesTotal      uint64 `json:"publishes_total"`
	PublishesThisMinute int    `json:"publishes_this_minute"`
	RateLimitedTotal    uint64 `json:"rate_limited_total"`
	DeniedTotal         uint64 `json:"denied_total"`
	// RateTokens is the current token-bucket fill.
	RateTokens float64 `json:"rate_tokens"`
}

// Limits is the quota configuration echoed by GET /tenants.
type Limits struct {
	RatePerSec            float64 `json:"rate_per_sec,omitempty"`
	Burst                 int     `json:"burst,omitempty"`
	MaxLiveServices       int     `json:"max_live_services,omitempty"`
	MaxPublishesPerMinute int     `json:"max_publishes_per_minute,omitempty"`
}

// Limits returns the configured quota bounds.
func (g *Gatekeeper) Limits() Limits {
	return Limits{
		RatePerSec:            g.cfg.Rate,
		Burst:                 g.cfg.Burst,
		MaxLiveServices:       g.cfg.MaxLiveServices,
		MaxPublishesPerMinute: g.cfg.MaxPublishesPerMinute,
	}
}

// Tenants snapshots the admission table in first-seen order.
func (g *Gatekeeper) Tenants() []Status {
	now := g.now()
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Status, 0, len(g.order))
	for _, name := range g.order {
		u := g.tenants[name]
		out = append(out, Status{
			Tenant:              name,
			LiveServices:        u.live,
			PublishesTotal:      u.publishes,
			PublishesThisMinute: u.window.tick(now),
			RateLimitedTotal:    u.rateLimited,
			DeniedTotal:         u.denied,
			RateTokens:          g.limiter.Tokens(name),
		})
	}
	return out
}
