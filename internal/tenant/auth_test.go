package tenant

import (
	"sort"
	"strings"
	"testing"
	"time"

	"sariadne/internal/testutil"
)

func TestParseStatic(t *testing.T) {
	s, err := ParseStatic(strings.NewReader(`
# operator tokens
tok-alice alice
tok-bob   bob    reader
tok-root  platform admin
`))
	if err != nil {
		t.Fatalf("ParseStatic: %v", err)
	}
	id, err := s.Authenticate("tok-alice")
	if err != nil || id.Tenant != "alice" || id.Role != RolePublisher {
		t.Fatalf("alice = %+v, %v (want publisher default)", id, err)
	}
	id, err = s.Authenticate("tok-bob")
	if err != nil || id.Role != RoleReader {
		t.Fatalf("bob = %+v, %v", id, err)
	}
	id, err = s.Authenticate("tok-root")
	if err != nil || id.Role != RoleAdmin {
		t.Fatalf("root = %+v, %v", id, err)
	}
	if _, err := s.Authenticate("nope"); err == nil {
		t.Fatal("unknown token accepted")
	} else if d, ok := Denied(err); !ok || d.Code != CodeUnauthenticated {
		t.Fatalf("unknown token error = %v", err)
	}
	if _, err := s.Authenticate(""); err == nil {
		t.Fatal("empty token accepted")
	}
	tenants := s.Tenants()
	sort.Strings(tenants)
	if want := []string{"alice", "bob", "platform"}; len(tenants) != 3 ||
		tenants[0] != want[0] || tenants[1] != want[1] || tenants[2] != want[2] {
		t.Fatalf("Tenants = %v", tenants)
	}
}

func TestParseStaticErrors(t *testing.T) {
	cases := map[string]string{
		"missing tenant": "tok-only\n",
		"too many":       "tok a publisher extra\n",
		"bad tenant":     "tok Not_A_Tenant\n",
		"bad role":       "tok alice root\n",
		"duplicate":      "tok alice\ntok bob\n",
	}
	for name, input := range cases {
		if _, err := ParseStatic(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted %q", name, input)
		}
	}
}

func TestHMACRoundTrip(t *testing.T) {
	secret := []byte("0123456789abcdef")
	clock := testutil.NewClock(time.Time{})
	tok, err := MintToken(secret, "alice", RolePublisher, time.Hour, clock.Now)
	if err != nil {
		t.Fatalf("MintToken: %v", err)
	}
	h, err := NewHMAC(secret, clock.Now)
	if err != nil {
		t.Fatalf("NewHMAC: %v", err)
	}
	id, err := h.Authenticate(tok)
	if err != nil || id.Tenant != "alice" || id.Role != RolePublisher {
		t.Fatalf("Authenticate = %+v, %v", id, err)
	}

	// Self-description: sdpctl reads the tenant out of the token without
	// the secret.
	if tn, role, ok := TokenTenant(tok); !ok || tn != "alice" || role != RolePublisher {
		t.Fatalf("TokenTenant = %q, %v, %v", tn, role, ok)
	}
	if _, _, ok := TokenTenant("opaque-static-token"); ok {
		t.Fatal("TokenTenant described an opaque token")
	}

	// Expiry honors the injected clock.
	clock.Advance(time.Hour + time.Second)
	if _, err := h.Authenticate(tok); err == nil {
		t.Fatal("expired token accepted")
	}

	// ttl 0 never expires.
	forever, err := MintToken(secret, "alice", RoleReader, 0, clock.Now)
	if err != nil {
		t.Fatalf("MintToken(ttl=0): %v", err)
	}
	clock.Advance(1000 * time.Hour)
	if _, err := h.Authenticate(forever); err != nil {
		t.Fatalf("non-expiring token rejected: %v", err)
	}
}

func TestHMACRejections(t *testing.T) {
	secret := []byte("0123456789abcdef")
	h, err := NewHMAC(secret, nil)
	if err != nil {
		t.Fatal(err)
	}
	tok, err := MintToken(secret, "alice", RolePublisher, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Tampered payload fails the signature check.
	parts := strings.Split(tok, ".")
	tampered := parts[0] + "." + parts[1] + "x." + parts[2]
	for name, bad := range map[string]string{
		"empty":        "",
		"garbage":      "not-a-token",
		"wrong prefix": "sdp9." + parts[1] + "." + parts[2],
		"tampered":     tampered,
	} {
		if _, err := h.Authenticate(bad); err == nil {
			t.Errorf("%s token accepted", name)
		} else if d, ok := Denied(err); !ok || d.Code != CodeUnauthenticated {
			t.Errorf("%s token error = %v", name, err)
		}
	}
	// A different secret fails verification.
	other, err := NewHMAC([]byte("fedcba9876543210"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Authenticate(tok); err == nil {
		t.Error("token verified under the wrong secret")
	}
	// Short secrets are refused at both ends.
	if _, err := NewHMAC([]byte("short"), nil); err == nil {
		t.Error("NewHMAC accepted a short secret")
	}
	if _, err := MintToken([]byte("short"), "alice", RoleReader, 0, nil); err == nil {
		t.Error("MintToken accepted a short secret")
	}
	if _, err := MintToken(secret, "Not Valid", RoleReader, 0, nil); err == nil {
		t.Error("MintToken accepted a bad tenant name")
	}
}

func TestChain(t *testing.T) {
	static, err := ParseStatic(strings.NewReader("tok-op ops admin\n"))
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("0123456789abcdef")
	h, err := NewHMAC(secret, nil)
	if err != nil {
		t.Fatal(err)
	}
	chain := Chain{static, h}
	if chain.Name() != "static+hmac" {
		t.Errorf("Name = %q", chain.Name())
	}

	if id, err := chain.Authenticate("tok-op"); err != nil || id.Tenant != "ops" {
		t.Fatalf("static via chain = %+v, %v", id, err)
	}
	minted, err := MintToken(secret, "alice", RolePublisher, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if id, err := chain.Authenticate(minted); err != nil || id.Tenant != "alice" {
		t.Fatalf("hmac via chain = %+v, %v", id, err)
	}
	if _, err := chain.Authenticate("bogus"); err == nil {
		t.Fatal("chain accepted a bogus token")
	}
	if _, err := (Chain{}).Authenticate("anything"); err == nil {
		t.Fatal("empty chain accepted a token")
	}
}
