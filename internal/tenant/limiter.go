package tenant

import (
	"sync"
	"time"
)

// Limiter is a per-tenant token bucket over mutating operations: each
// tenant owns an independent bucket refilled at rate tokens/second up to
// burst. A publish spends one token; an empty bucket means 429.
//
// The clock is injected so tests drive refill deterministically
// (testutil.Clock); production passes nil for time.Now. One mutex guards
// the bucket map — admission runs once per mutating request, which is
// orders of magnitude off the query hot path, so contention is a
// non-issue and the simplicity keeps the math auditable.
type Limiter struct {
	rate  float64 // tokens per second
	burst float64 // bucket capacity, also the initial fill
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewLimiter builds a limiter refilling rate tokens/second with the given
// burst capacity. rate <= 0 disables limiting (Allow always true);
// burst < 1 is clamped to 1 so a positive rate always admits something.
func NewLimiter(rate float64, burst int, now func() time.Time) *Limiter {
	if now == nil {
		now = time.Now
	}
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &Limiter{rate: rate, burst: b, now: now, buckets: make(map[string]*bucket)}
}

// Allow spends one token from the tenant's bucket, reporting whether one
// was available. A brand-new tenant starts with a full bucket.
func (l *Limiter) Allow(tenant string) bool {
	if l.rate <= 0 {
		return true
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	} else {
		elapsed := now.Sub(b.last).Seconds()
		if elapsed > 0 {
			b.tokens += elapsed * l.rate
			if b.tokens > l.burst {
				b.tokens = l.burst
			}
			b.last = now
		}
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tokens reports the tenant's current bucket fill (after refill), for the
// admission table. Unknown tenants report the full burst.
func (l *Limiter) Tokens(tenant string) float64 {
	if l.rate <= 0 {
		return l.burst
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[tenant]
	if b == nil {
		return l.burst
	}
	t := b.tokens + now.Sub(b.last).Seconds()*l.rate
	if t > l.burst {
		t = l.burst
	}
	return t
}

// minuteWindow counts events inside the current wall-clock minute — the
// publishes-per-minute quota. The window snaps to minute boundaries so
// the quota reads naturally in the admission table ("12/60 this minute").
type minuteWindow struct {
	start time.Time
	count int
}

// tick rolls the window if now crossed into a new minute, then reports
// the in-window count.
func (w *minuteWindow) tick(now time.Time) int {
	minute := now.Truncate(time.Minute)
	if !w.start.Equal(minute) {
		w.start = minute
		w.count = 0
	}
	return w.count
}
