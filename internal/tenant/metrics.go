package tenant

import "sariadne/internal/telemetry"

// Admission instruments. The per-tenant families are labeled gauges —
// one child per tenant, created the first time a tenant shows up — so a
// single /metrics scrape shows every tenant's standing against its
// quotas; the totals are plain counters for alerting thresholds.
var (
	deniedTotal = telemetry.NewCounter("tenant_denied_total",
		"mutating operations rejected with 401/403 by the admission layer")
	rateLimitedTotal = telemetry.NewCounter("tenant_rate_limited_total",
		"mutating operations rejected with 429: token bucket empty or quota exhausted")
	publishesTotal = telemetry.NewCounter("tenant_publishes_total",
		"mutating operations admitted past the tenant gate")
	knownGauge = telemetry.NewGauge("tenant_known",
		"tenants currently tracked by the admission table")
	liveServicesGauge = telemetry.NewLabeledGauge("tenant_live_services",
		"live advertisements per tenant, against the max-live-services quota", "tenant")
	publishesMinuteGauge = telemetry.NewLabeledGauge("tenant_publishes_minute",
		"publishes in the current wall-clock minute per tenant, against the per-minute quota", "tenant")
)
