package tenant

import (
	"strings"
	"testing"
	"time"

	"sariadne/internal/testutil"
)

func staticAuth(t *testing.T, table string) *Static {
	t.Helper()
	s, err := ParseStatic(strings.NewReader(table))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGatekeeperOpenMode(t *testing.T) {
	g := NewGatekeeper(Config{})
	if g.Enforcing() {
		t.Fatal("open gate claims to enforce")
	}
	if g.AuthName() != "open" {
		t.Fatalf("AuthName = %q", g.AuthName())
	}
	id, err := g.Authenticate("")
	if err != nil || !id.Open {
		t.Fatalf("open Authenticate = %+v, %v", id, err)
	}
	// Everything is admitted, even un-namespaced names.
	if err := g.AdmitPublish(id, "HomeMediaCenter", true); err != nil {
		t.Fatalf("open publish denied: %v", err)
	}
	if err := g.AdmitDeregister(id, "HomeMediaCenter"); err != nil {
		t.Fatalf("open deregister denied: %v", err)
	}
	if err := g.AdmitAdmin(id); err != nil {
		t.Fatalf("open admin denied: %v", err)
	}
}

func TestGatekeeperNamespaceRules(t *testing.T) {
	g := NewGatekeeper(Config{Auth: staticAuth(t, "ta alice\ntb bob reader\ntr root admin\n")})
	alice, err := g.Authenticate("ta")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := g.Authenticate("tb")
	if err != nil {
		t.Fatal(err)
	}
	root, err := g.Authenticate("tr")
	if err != nil {
		t.Fatal(err)
	}

	if err := g.AdmitPublish(alice, "alice/MediaServer", true); err != nil {
		t.Fatalf("own-namespace publish denied: %v", err)
	}
	// Un-namespaced names are rejected with a hint.
	err = g.AdmitPublish(alice, "MediaServer", true)
	d, ok := Denied(err)
	if !ok || d.Code != CodeForbidden || !strings.Contains(d.Reason, "alice/MediaServer") {
		t.Fatalf("un-namespaced publish = %v", err)
	}
	// Cross-tenant publish is forbidden for non-admins...
	if err := g.AdmitPublish(alice, "bob/Printer", true); err == nil {
		t.Fatal("cross-tenant publish admitted")
	}
	// ...but admins may repair any namespace.
	if err := g.AdmitPublish(root, "bob/Printer", true); err != nil {
		t.Fatalf("admin cross-tenant publish denied: %v", err)
	}
	// Readers cannot mutate at all.
	if err := g.AdmitPublish(bob, "bob/Printer", true); err == nil {
		t.Fatal("reader publish admitted")
	}
	if err := g.AdmitDeregister(bob, "bob/Printer"); err == nil {
		t.Fatal("reader deregister admitted")
	}
	if err := g.AdmitOntology(bob); err == nil {
		t.Fatal("reader ontology upload admitted")
	}
	// Deregister follows the same ownership rule.
	if err := g.AdmitDeregister(alice, "bob/Printer"); err == nil {
		t.Fatal("cross-tenant deregister admitted")
	}
	if err := g.AdmitDeregister(alice, "alice/MediaServer"); err != nil {
		t.Fatalf("own deregister denied: %v", err)
	}
	// Legacy (un-namespaced) records can only be withdrawn by admins.
	if err := g.AdmitDeregister(alice, "LegacyService"); err == nil {
		t.Fatal("legacy deregister admitted for non-admin")
	}
	if err := g.AdmitDeregister(root, "LegacyService"); err != nil {
		t.Fatalf("admin legacy deregister denied: %v", err)
	}
	// The admin surface is role-gated.
	if err := g.AdmitAdmin(alice); err == nil {
		t.Fatal("publisher read the admission table")
	}
	if err := g.AdmitAdmin(root); err != nil {
		t.Fatalf("admin table read denied: %v", err)
	}
}

func TestGatekeeperAnonymousReads(t *testing.T) {
	auth := staticAuth(t, "ta alice\n")
	strict := NewGatekeeper(Config{Auth: auth})
	if _, err := strict.Authenticate(""); err == nil {
		t.Fatal("strict gate admitted a token-less request")
	}
	lax := NewGatekeeper(Config{Auth: auth, AnonymousReads: true})
	id, err := lax.Authenticate("")
	if err != nil || id.Tenant != Anonymous || id.Role != RoleReader {
		t.Fatalf("anonymous identity = %+v, %v", id, err)
	}
	if err := lax.AdmitPublish(id, "anonymous/x", true); err == nil {
		t.Fatal("anonymous reader published")
	}
}

func TestGatekeeperQuotas(t *testing.T) {
	clock := testutil.NewClock(time.Time{})
	g := NewGatekeeper(Config{
		Auth:                  staticAuth(t, "ta alice\n"),
		MaxLiveServices:       2,
		MaxPublishesPerMinute: 5,
		Now:                   clock.Now,
	})
	alice, err := g.Authenticate("ta")
	if err != nil {
		t.Fatal(err)
	}

	// Live-services quota: two fresh services fit, the third is refused.
	for i, name := range []string{"alice/a", "alice/b"} {
		if err := g.AdmitPublish(alice, name, true); err != nil {
			t.Fatalf("publish %d denied: %v", i, err)
		}
		g.ServiceLive("alice", +1)
	}
	err = g.AdmitPublish(alice, "alice/c", true)
	if d, ok := Denied(err); !ok || d.Code != CodeRateLimited {
		t.Fatalf("over-quota publish = %v", err)
	}
	// Refreshing an existing advertisement is not a new service.
	if err := g.AdmitPublish(alice, "alice/a", false); err != nil {
		t.Fatalf("refresh denied: %v", err)
	}
	// Withdraw one and the slot frees up.
	g.ServiceLive("alice", -1)
	if err := g.AdmitPublish(alice, "alice/c", true); err != nil {
		t.Fatalf("publish after withdraw denied: %v", err)
	}

	// Minute quota: 4 ops are already booked this minute; the 5th books,
	// the 6th trips.
	if err := g.AdmitPublish(alice, "alice/a", false); err != nil {
		t.Fatalf("5th op denied: %v", err)
	}
	err = g.AdmitPublish(alice, "alice/a", false)
	if d, ok := Denied(err); !ok || d.Code != CodeRateLimited {
		t.Fatalf("over-minute publish = %v", err)
	}
	// The window rolls with the clock.
	clock.Advance(time.Minute)
	if err := g.AdmitPublish(alice, "alice/a", false); err != nil {
		t.Fatalf("publish in fresh minute denied: %v", err)
	}

	rows := g.Tenants()
	if len(rows) != 1 || rows[0].Tenant != "alice" {
		t.Fatalf("Tenants = %+v", rows)
	}
	r := rows[0]
	if r.LiveServices != 1 || r.PublishesTotal != 6 || r.PublishesThisMinute != 1 || r.RateLimitedTotal != 2 {
		t.Fatalf("status row = %+v", r)
	}
}

func TestGatekeeperRateLimit(t *testing.T) {
	clock := testutil.NewClock(time.Time{})
	g := NewGatekeeper(Config{
		Auth:  staticAuth(t, "ta alice\n"),
		Rate:  1,
		Burst: 2,
		Now:   clock.Now,
	})
	alice, err := g.Authenticate("ta")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := g.AdmitPublish(alice, "alice/x", false); err != nil {
			t.Fatalf("burst publish %d denied: %v", i, err)
		}
	}
	err = g.AdmitPublish(alice, "alice/x", false)
	if d, ok := Denied(err); !ok || d.Code != CodeRateLimited {
		t.Fatalf("drained-bucket publish = %v", err)
	}
	clock.Advance(time.Second)
	if err := g.AdmitPublish(alice, "alice/x", false); err != nil {
		t.Fatalf("refilled publish denied: %v", err)
	}
}

func TestGatekeeperSeedsStaticTenants(t *testing.T) {
	g := NewGatekeeper(Config{Auth: staticAuth(t, "ta alice\ntb bob\n")})
	rows := g.Tenants()
	if len(rows) != 2 || rows[0].Tenant != "alice" || rows[1].Tenant != "bob" {
		t.Fatalf("seeded table = %+v", rows)
	}
	// ServiceLive replay path: rebuilding live counts books the gauge and
	// the table; tenant "" (legacy records) books nothing.
	g.ServiceLive("alice", +1)
	g.ServiceLive("alice", +1)
	g.ServiceLive("", +1)
	rows = g.Tenants()
	if rows[0].LiveServices != 2 {
		t.Fatalf("replayed live count = %d", rows[0].LiveServices)
	}
	if len(rows) != 2 {
		t.Fatalf("legacy replay grew the table: %+v", rows)
	}
	// Underflow clamps at zero.
	g.ServiceLive("bob", -3)
	if rows := g.Tenants(); rows[1].LiveServices != 0 {
		t.Fatalf("underflowed live count = %d", rows[1].LiveServices)
	}
}
