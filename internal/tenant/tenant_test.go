package tenant

import "testing"

func TestSplitAndQualify(t *testing.T) {
	cases := []struct {
		name            string
		tenant, service string
		ok              bool
	}{
		{"alice/MediaServer", "alice", "MediaServer", true},
		{"alice/a/b", "alice", "a/b", true}, // only the first slash namespaces
		{"MediaServer", "", "MediaServer", false},
		{"/MediaServer", "", "/MediaServer", false},
		{"alice/", "", "alice/", false},
	}
	for _, c := range cases {
		tn, svc, ok := SplitName(c.name)
		if tn != c.tenant || svc != c.service || ok != c.ok {
			t.Errorf("SplitName(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.name, tn, svc, ok, c.tenant, c.service, c.ok)
		}
	}
	if got := Qualify("alice", "MediaServer"); got != "alice/MediaServer" {
		t.Errorf("Qualify = %q", got)
	}
	if got := Qualify("alice", "alice/MediaServer"); got != "alice/MediaServer" {
		t.Errorf("Qualify must be idempotent, got %q", got)
	}
	// A name under another tenant's namespace gets the caller's prefix on
	// top; ownership validation is the gatekeeper's job.
	if got := Qualify("alice", "bob/MediaServer"); got != "alice/bob/MediaServer" {
		t.Errorf("Qualify over foreign prefix = %q", got)
	}
}

func TestValidName(t *testing.T) {
	for _, good := range []string{"alice", "a", "team-42", "a0-b1"} {
		if !ValidName(good) {
			t.Errorf("ValidName(%q) = false", good)
		}
	}
	for _, bad := range []string{"", "Alice", "a_b", "-alice", "alice-", "a/b", Anonymous} {
		if ValidName(bad) {
			t.Errorf("ValidName(%q) = true", bad)
		}
	}
}

func TestRoleRoundTrip(t *testing.T) {
	for _, r := range []Role{RoleReader, RolePublisher, RoleAdmin} {
		got, err := ParseRole(r.String())
		if err != nil || got != r {
			t.Errorf("ParseRole(%q) = %v, %v", r.String(), got, err)
		}
	}
	if _, err := ParseRole("root"); err == nil {
		t.Error("ParseRole accepted an unknown role")
	}
	if RoleReader >= RolePublisher || RolePublisher >= RoleAdmin {
		t.Error("roles are not strictly ordered")
	}
}

func TestDenialCodes(t *testing.T) {
	err := unauthenticated("x")
	d, ok := Denied(err)
	if !ok || d.Code != CodeUnauthenticated {
		t.Fatalf("Denied(unauthenticated) = %v, %v", d, ok)
	}
	if d, _ := Denied(forbidden("x")); d.Code != CodeForbidden {
		t.Fatalf("forbidden code = %q", d.Code)
	}
	if d, _ := Denied(rateLimited("x")); d.Code != CodeRateLimited {
		t.Fatalf("rateLimited code = %q", d.Code)
	}
}
