package tenant

import (
	"bufio"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"
)

// Authenticator resolves a bearer token into an identity. Implementations
// must be safe for concurrent use; every request authenticates.
//
// A nil error means the token is good. A failed authentication returns a
// *Denial with CodeUnauthenticated; any other error is an internal fault
// (unreadable token file) the caller surfaces as such.
type Authenticator interface {
	// Name identifies the authenticator in logs and /tenants output
	// ("static", "hmac", "chain").
	Name() string
	// Authenticate resolves token ("" = no credential presented).
	Authenticate(token string) (Identity, error)
}

// Static authenticates against a fixed token table loaded from a file:
// one `<token> <tenant> [role]` triple per line, '#' comments and blank
// lines ignored, role defaulting to publisher. The file is read once;
// rotating tokens is a daemon restart (operator tokens, not sessions).
type Static struct {
	byToken map[string]Identity
}

// Name implements Authenticator.
func (s *Static) Name() string { return "static" }

// Authenticate implements Authenticator.
func (s *Static) Authenticate(token string) (Identity, error) {
	if token == "" {
		return Identity{}, unauthenticated("no token presented")
	}
	id, ok := s.byToken[token]
	if !ok {
		return Identity{}, unauthenticated("unknown token")
	}
	return id, nil
}

// Tenants lists the distinct tenant names in the table, for seeding the
// admission table before any tenant has published.
func (s *Static) Tenants() []string {
	seen := make(map[string]bool)
	var out []string
	for _, id := range s.byToken {
		if !seen[id.Tenant] {
			seen[id.Tenant] = true
			out = append(out, id.Tenant)
		}
	}
	return out
}

// LoadStaticFile reads a static token table from path.
func LoadStaticFile(path string) (*Static, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: token file: %w", err)
	}
	defer f.Close()
	s, err := ParseStatic(f)
	if err != nil {
		return nil, fmt.Errorf("tenant: token file %s: %w", path, err)
	}
	return s, nil
}

// ParseStatic reads a static token table from r.
func ParseStatic(r io.Reader) (*Static, error) {
	s := &Static{byToken: make(map[string]Identity)}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("line %d: want `token tenant [role]`, got %d field(s)", line, len(fields))
		}
		token, name := fields[0], fields[1]
		if !ValidName(name) {
			return nil, fmt.Errorf("line %d: invalid tenant name %q", line, name)
		}
		role := RolePublisher
		if len(fields) == 3 {
			var err error
			if role, err = ParseRole(fields[2]); err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
		}
		if _, dup := s.byToken[token]; dup {
			return nil, fmt.Errorf("line %d: duplicate token", line)
		}
		s.byToken[token] = Identity{Tenant: name, Role: role}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// HMAC token format: three dot-separated parts, a fixed prefix naming the
// scheme version, a base64url JSON claims payload, and a base64url
// HMAC-SHA256 of the payload under the shared secret. The token is
// self-describing — sdpctl parses the payload to learn which tenant it
// publishes as — and stateless: any daemon holding the secret verifies it
// without a token table.
const hmacPrefix = "sdp1"

// claims is the signed payload of an HMAC token.
type claims struct {
	Tenant string `json:"tenant"`
	Role   string `json:"role"`
	// Exp is the expiry as a Unix second; 0 never expires.
	Exp int64 `json:"exp,omitempty"`
}

// HMACAuthenticator verifies sdp1 tokens minted under a shared secret.
type HMACAuthenticator struct {
	secret []byte
	// now is the expiry clock, injectable for tests; nil means time.Now.
	now func() time.Time
}

// NewHMAC builds an authenticator over the shared secret. now may be nil.
func NewHMAC(secret []byte, now func() time.Time) (*HMACAuthenticator, error) {
	if len(secret) < 16 {
		return nil, fmt.Errorf("tenant: HMAC secret must be at least 16 bytes, got %d", len(secret))
	}
	if now == nil {
		now = time.Now
	}
	return &HMACAuthenticator{secret: append([]byte(nil), secret...), now: now}, nil
}

// Name implements Authenticator.
func (h *HMACAuthenticator) Name() string { return "hmac" }

// Authenticate implements Authenticator.
func (h *HMACAuthenticator) Authenticate(token string) (Identity, error) {
	if token == "" {
		return Identity{}, unauthenticated("no token presented")
	}
	c, err := verifyToken(h.secret, token)
	if err != nil {
		return Identity{}, err
	}
	if c.Exp != 0 && h.now().Unix() > c.Exp {
		return Identity{}, unauthenticated("token expired")
	}
	role, err := ParseRole(c.Role)
	if err != nil {
		return Identity{}, unauthenticated("token claims a bad role")
	}
	if !ValidName(c.Tenant) {
		return Identity{}, unauthenticated("token claims an invalid tenant name")
	}
	return Identity{Tenant: c.Tenant, Role: role}, nil
}

// MintToken signs a self-describing token for tenant with the given role.
// ttl 0 mints a token that never expires; now anchors the expiry (nil =
// time.Now). This is what `sdpctl login` calls client-side with the
// shared secret.
func MintToken(secret []byte, tenant string, role Role, ttl time.Duration, now func() time.Time) (string, error) {
	if len(secret) < 16 {
		return "", fmt.Errorf("tenant: HMAC secret must be at least 16 bytes, got %d", len(secret))
	}
	if !ValidName(tenant) {
		return "", fmt.Errorf("tenant: invalid tenant name %q", tenant)
	}
	if now == nil {
		now = time.Now
	}
	c := claims{Tenant: tenant, Role: role.String()}
	if ttl > 0 {
		c.Exp = now().Add(ttl).Unix()
	}
	payload, err := json.Marshal(c)
	if err != nil {
		return "", err
	}
	enc := base64.RawURLEncoding.EncodeToString(payload)
	return hmacPrefix + "." + enc + "." + sign(secret, enc), nil
}

// TokenTenant parses an sdp1 token's claims without verifying the
// signature — the "self-describing" half of the contract, used by sdpctl
// to qualify advertisement names client-side. Opaque (static) tokens
// return ok=false.
func TokenTenant(token string) (tenant string, role Role, ok bool) {
	parts := strings.Split(token, ".")
	if len(parts) != 3 || parts[0] != hmacPrefix {
		return "", RoleReader, false
	}
	payload, err := base64.RawURLEncoding.DecodeString(parts[1])
	if err != nil {
		return "", RoleReader, false
	}
	var c claims
	if json.Unmarshal(payload, &c) != nil {
		return "", RoleReader, false
	}
	r, err := ParseRole(c.Role)
	if err != nil {
		return "", RoleReader, false
	}
	return c.Tenant, r, c.Tenant != ""
}

func sign(secret []byte, payload string) string {
	mac := hmac.New(sha256.New, secret)
	mac.Write([]byte(payload))
	return base64.RawURLEncoding.EncodeToString(mac.Sum(nil))
}

func verifyToken(secret []byte, token string) (claims, error) {
	parts := strings.Split(token, ".")
	if len(parts) != 3 || parts[0] != hmacPrefix {
		return claims{}, unauthenticated("malformed token")
	}
	if !hmac.Equal([]byte(sign(secret, parts[1])), []byte(parts[2])) {
		return claims{}, unauthenticated("bad token signature")
	}
	payload, err := base64.RawURLEncoding.DecodeString(parts[1])
	if err != nil {
		return claims{}, unauthenticated("malformed token payload")
	}
	var c claims
	if err := json.Unmarshal(payload, &c); err != nil {
		return claims{}, unauthenticated("malformed token claims")
	}
	return c, nil
}

// Chain tries authenticators in order, returning the first success. Only
// when every link rejects does the chain reject — so a daemon can accept
// both operator tokens from a static file and minted HMAC tokens.
type Chain []Authenticator

// Name implements Authenticator.
func (c Chain) Name() string {
	names := make([]string, len(c))
	for i, a := range c {
		names[i] = a.Name()
	}
	return strings.Join(names, "+")
}

// Authenticate implements Authenticator.
func (c Chain) Authenticate(token string) (Identity, error) {
	var lastErr error = unauthenticated("no authenticators configured")
	for _, a := range c {
		id, err := a.Authenticate(token)
		if err == nil {
			return id, nil
		}
		if _, isDenial := Denied(err); !isDenial {
			return Identity{}, err // internal fault, not a rejection
		}
		lastErr = err
	}
	return Identity{}, lastErr
}
