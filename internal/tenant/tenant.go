// Package tenant is the multi-tenant admission layer in front of a
// directory daemon: it decides who may publish what, and how fast.
//
// The paper's directory architecture assumes cooperative publishers; a
// production registry cannot. This package adds the management layer the
// surveyed semantic-discovery systems lack (El Bitar et al.,
// arXiv:1409.3021 §4): pluggable authenticators behind one interface
// (static bearer tokens, HMAC-signed self-describing tokens, an explicit
// anonymous read-only mode), tenant-namespaced publication where every
// advertisement name carries its owner as a `tenant/` prefix, per-tenant
// token-bucket rate limiting, and quota counters (max live services, max
// publishes per minute) surfaced as labeled gauges on /metrics.
//
// The Gatekeeper facade (gatekeeper.go) composes the pieces and is what
// sdpd's front ends call; everything runs before the advertisement
// touches the semantic backend, so a denied publish never reaches the
// capability DAG and can never leak into a Bloom summary pushed to
// federation peers.
package tenant

import (
	"errors"
	"fmt"
	"regexp"
	"strings"
)

// Role orders what an identity may do. Roles are strictly increasing:
// an admin can do everything a publisher can, a publisher everything a
// reader can.
type Role int

const (
	// RoleReader may query and read public surfaces but not mutate.
	RoleReader Role = iota
	// RolePublisher may additionally publish and withdraw advertisements
	// inside its own tenant namespace, and upload ontologies.
	RolePublisher
	// RoleAdmin may publish into any namespace and read the tenant
	// admission table (GET /tenants).
	RoleAdmin
)

// String returns the wire spelling used in token files and minted tokens.
func (r Role) String() string {
	switch r {
	case RoleReader:
		return "reader"
	case RolePublisher:
		return "publisher"
	case RoleAdmin:
		return "admin"
	}
	return fmt.Sprintf("role(%d)", int(r))
}

// ParseRole parses the wire spelling of a role.
func ParseRole(s string) (Role, error) {
	switch s {
	case "reader":
		return RoleReader, nil
	case "publisher":
		return RolePublisher, nil
	case "admin":
		return RoleAdmin, nil
	}
	return RoleReader, fmt.Errorf("tenant: unknown role %q (want reader, publisher or admin)", s)
}

// Anonymous is the tenant name of unauthenticated read-only access.
const Anonymous = "anonymous"

// Identity is an authenticated caller: which tenant it publishes as and
// what it may do. The zero Identity is an anonymous reader.
type Identity struct {
	// Tenant is the namespace the identity owns ("anonymous" for the
	// read-only mode, "" for the open-mode wildcard).
	Tenant string `json:"tenant"`
	// Role bounds the identity's operations.
	Role Role `json:"role"`
	// Open marks the wildcard identity of a daemon running without any
	// authenticator: every op is allowed and no namespace is enforced,
	// which is exactly the pre-tenancy behavior.
	Open bool `json:"-"`
}

// Anonymous reports whether this is the unauthenticated read-only
// identity.
func (id Identity) Anonymous() bool { return !id.Open && id.Tenant == Anonymous }

// nameRe bounds tenant names: lowercase DNS-label-ish, so names embed
// cleanly in advertisement names, metrics labels and token files.
var nameRe = regexp.MustCompile(`^[a-z0-9]([a-z0-9-]*[a-z0-9])?$`)

// ValidName reports whether s is a well-formed tenant name.
func ValidName(s string) bool {
	return s != "" && len(s) <= 63 && s != Anonymous && nameRe.MatchString(s)
}

// Qualify prepends the tenant namespace to a bare service name. A name
// already carrying the prefix is returned unchanged.
func Qualify(tenant, name string) string {
	if owner, _, ok := SplitName(name); ok && owner == tenant {
		return name
	}
	return tenant + "/" + name
}

// SplitName splits a namespaced advertisement name into its tenant prefix
// and bare service name. ok is false for un-namespaced (legacy) names.
func SplitName(name string) (tenant, service string, ok bool) {
	i := strings.IndexByte(name, '/')
	if i <= 0 || i == len(name)-1 {
		return "", name, false
	}
	return name[:i], name[i+1:], true
}

// Denial codes, aligned with sdpd's typed error-code scheme (PR 2): the
// gateway maps them onto 401 / 403 / 429.
const (
	// CodeUnauthenticated: no token, an unknown token, a bad signature or
	// an expired token.
	CodeUnauthenticated = "unauthenticated"
	// CodeForbidden: the token is good but the op is outside the
	// identity's role or namespace.
	CodeForbidden = "forbidden"
	// CodeRateLimited: the tenant exhausted its token bucket or a quota.
	CodeRateLimited = "rate_limited"
)

// Denial is a typed admission refusal. It implements error; callers
// branch on Code, render Reason.
type Denial struct {
	Code   string // CodeUnauthenticated, CodeForbidden or CodeRateLimited
	Reason string
}

func (d *Denial) Error() string { return "tenant: " + d.Reason }

// Denied extracts the *Denial from err, if it is one.
func Denied(err error) (*Denial, bool) {
	var d *Denial
	ok := errors.As(err, &d)
	return d, ok
}

func unauthenticated(format string, args ...any) *Denial {
	return &Denial{Code: CodeUnauthenticated, Reason: fmt.Sprintf(format, args...)}
}

func forbidden(format string, args ...any) *Denial {
	return &Denial{Code: CodeForbidden, Reason: fmt.Sprintf(format, args...)}
}

func rateLimited(format string, args ...any) *Denial {
	return &Denial{Code: CodeRateLimited, Reason: fmt.Sprintf(format, args...)}
}
