package tenant

import (
	"sync"
	"testing"
	"time"

	"sariadne/internal/testutil"
)

// TestLimiterBurstThenSustain drives one tenant through the canonical
// token-bucket shape: the initial burst drains the bucket, then admission
// settles to exactly the refill rate.
func TestLimiterBurstThenSustain(t *testing.T) {
	clock := testutil.NewClock(time.Time{})
	l := NewLimiter(2, 5, clock.Now) // 2/sec, burst 5

	for i := 0; i < 5; i++ {
		if !l.Allow("alice") {
			t.Fatalf("burst publish %d denied", i)
		}
	}
	if l.Allow("alice") {
		t.Fatal("6th publish admitted from an empty bucket")
	}

	// Sustain: each 500ms refills exactly one token.
	for i := 0; i < 10; i++ {
		clock.Advance(500 * time.Millisecond)
		if !l.Allow("alice") {
			t.Fatalf("sustain publish %d denied after refill", i)
		}
		if l.Allow("alice") {
			t.Fatalf("sustain publish %d admitted twice on one token", i)
		}
	}

	// Idle refill caps at burst, never beyond.
	clock.Advance(time.Hour)
	if got := l.Tokens("alice"); got != 5 {
		t.Fatalf("Tokens after idle = %g, want burst 5", got)
	}
	for i := 0; i < 5; i++ {
		if !l.Allow("alice") {
			t.Fatalf("post-idle publish %d denied", i)
		}
	}
	if l.Allow("alice") {
		t.Fatal("bucket overfilled past burst")
	}
}

// TestLimiterRefillDeterminism pins the refill arithmetic to the injected
// clock: fractional refills accumulate and admit only on whole tokens.
func TestLimiterRefillDeterminism(t *testing.T) {
	clock := testutil.NewClock(time.Time{})
	l := NewLimiter(1, 1, clock.Now) // 1/sec, burst 1

	if !l.Allow("a") {
		t.Fatal("first publish denied")
	}
	// 3 × 300ms = 0.9 tokens: still short of one.
	for i := 0; i < 3; i++ {
		clock.Advance(300 * time.Millisecond)
		if l.Allow("a") {
			t.Fatalf("admitted at %d ms with a fractional bucket", (i+1)*300)
		}
	}
	// The 4th step crosses 1.0.
	clock.Advance(300 * time.Millisecond)
	if !l.Allow("a") {
		t.Fatal("denied after a full token accumulated")
	}
}

// TestLimiterTenantsIndependent verifies one tenant draining its bucket
// never touches a neighbor's.
func TestLimiterTenantsIndependent(t *testing.T) {
	clock := testutil.NewClock(time.Time{})
	l := NewLimiter(1, 3, clock.Now)
	for i := 0; i < 3; i++ {
		if !l.Allow("noisy") {
			t.Fatalf("noisy publish %d denied", i)
		}
	}
	if l.Allow("noisy") {
		t.Fatal("noisy admitted past burst")
	}
	for i := 0; i < 3; i++ {
		if !l.Allow("quiet") {
			t.Fatalf("quiet publish %d denied after noisy drained", i)
		}
	}
}

// TestLimiterConcurrentTenants hammers the limiter from many goroutines
// (run under -race) and checks per-tenant token conservation: with a
// frozen clock every tenant admits exactly burst operations no matter how
// many goroutines contend.
func TestLimiterConcurrentTenants(t *testing.T) {
	clock := testutil.NewClock(time.Time{})
	const (
		tenantsN   = 4
		goroutines = 8
		attempts   = 50
		burst      = 20
	)
	l := NewLimiter(5, burst, clock.Now)
	names := []string{"t0", "t1", "t2", "t3"}

	admitted := make([]int64, tenantsN)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < attempts; i++ {
				tn := (g + i) % tenantsN
				if l.Allow(names[tn]) {
					mu.Lock()
					admitted[tn]++
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
	for i, n := range admitted {
		if n != burst {
			t.Errorf("tenant %s admitted %d ops, want exactly burst %d", names[i], n, burst)
		}
	}
}

func TestLimiterDisabled(t *testing.T) {
	l := NewLimiter(0, 1, nil)
	for i := 0; i < 1000; i++ {
		if !l.Allow("anyone") {
			t.Fatal("disabled limiter denied")
		}
	}
}

func TestMinuteWindow(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 30, 10, 0, time.UTC)
	var w minuteWindow
	if got := w.tick(base); got != 0 {
		t.Fatalf("fresh window = %d", got)
	}
	w.count = 7
	if got := w.tick(base.Add(40 * time.Second)); got != 7 {
		t.Fatalf("same minute = %d, want 7", got)
	}
	// 12:30:50 + 20s = 12:31:10 — a new wall-clock minute resets.
	if got := w.tick(base.Add(60 * time.Second)); got != 0 {
		t.Fatalf("next minute = %d, want 0", got)
	}
}
