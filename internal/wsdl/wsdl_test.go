package wsdl

import (
	"errors"
	"strings"
	"testing"
)

// videoServerDef builds a WSDL-style description of the Figure 1
// workstation, as Ariadne would see it.
func videoServerDef(name string) *Definition {
	return &Definition{
		Name:            name,
		TargetNamespace: "http://amigo.example/wsdl/" + name,
		Messages: []Message{
			{Name: "StreamRequest", Parts: []Part{{Name: "title", Type: "xsd:string"}}},
			{Name: "StreamResponse", Parts: []Part{{Name: "stream", Type: "tns:Stream"}}},
		},
		PortTypes: []PortType{
			{
				Name: "DigitalServerPort",
				Operations: []Operation{
					{Name: "SendDigitalStream", Input: "StreamRequest", Output: "StreamResponse"},
				},
			},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := videoServerDef("s").Validate(); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name   string
		mutate func(*Definition)
		want   error
	}{
		{"no name", func(d *Definition) { d.Name = "" }, ErrNoName},
		{"anon message", func(d *Definition) { d.Messages[0].Name = "" }, ErrNoName},
		{"anon porttype", func(d *Definition) { d.PortTypes[0].Name = "" }, ErrNoName},
		{"anon operation", func(d *Definition) { d.PortTypes[0].Operations[0].Name = "" }, ErrNoName},
		{"dangling input", func(d *Definition) { d.PortTypes[0].Operations[0].Input = "Nope" }, ErrUnknownMessage},
		{"dangling output", func(d *Definition) { d.PortTypes[0].Operations[0].Output = "Nope" }, ErrUnknownMessage},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := videoServerDef("s")
			tt.mutate(d)
			if err := d.Validate(); !errors.Is(err, tt.want) {
				t.Fatalf("got %v, want %v", err, tt.want)
			}
		})
	}
}

func TestCodecRoundTrip(t *testing.T) {
	d := videoServerDef("media")
	data, err := Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != d.Name || len(back.Messages) != 2 || len(back.PortTypes) != 1 {
		t.Fatalf("round trip mangled: %+v", back)
	}
	if !Satisfies(back, d) || !Satisfies(d, back) {
		t.Fatal("round-tripped definition no longer satisfies itself")
	}
	if _, err := Unmarshal([]byte("garbage")); err == nil {
		t.Fatal("accepted garbage")
	}
	if _, err := Marshal(&Definition{}); err == nil {
		t.Fatal("marshaled invalid definition")
	}
}

func TestSatisfiesExact(t *testing.T) {
	p := videoServerDef("provider")
	r := videoServerDef("required")
	if !Satisfies(p, r) {
		t.Fatal("identical structure must satisfy")
	}
}

func TestSatisfiesRejectsRenames(t *testing.T) {
	// The motivating failure of syntactic discovery: any rename breaks it.
	tests := []struct {
		name   string
		mutate func(*Definition)
	}{
		{"operation rename", func(d *Definition) { d.PortTypes[0].Operations[0].Name = "GetVideoStream" }},
		{"port rename", func(d *Definition) { d.PortTypes[0].Name = "VideoServerPort" }},
		{"part type change", func(d *Definition) { d.Messages[0].Parts[0].Type = "xsd:anyURI" }},
		{"part rename", func(d *Definition) { d.Messages[0].Parts[0].Name = "videoTitle" }},
		{"extra required part", func(d *Definition) {
			d.Messages[0].Parts = append(d.Messages[0].Parts, Part{Name: "lang", Type: "xsd:string"})
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := videoServerDef("provider")
			r := videoServerDef("required")
			tt.mutate(r)
			if Satisfies(p, r) {
				t.Fatal("rename should break syntactic match")
			}
		})
	}
}

func TestSatisfiesPartOrderInsensitive(t *testing.T) {
	p := videoServerDef("provider")
	r := videoServerDef("required")
	p.Messages[0].Parts = []Part{
		{Name: "lang", Type: "xsd:string"},
		{Name: "title", Type: "xsd:string"},
	}
	r.Messages[0].Parts = []Part{
		{Name: "title", Type: "xsd:string"},
		{Name: "lang", Type: "xsd:string"},
	}
	if !Satisfies(p, r) {
		t.Fatal("part order must not matter")
	}
}

func TestSatisfiesMissingMessages(t *testing.T) {
	p := videoServerDef("provider")
	r := videoServerDef("required")
	// Required op with no input vs provided op with input.
	r.PortTypes[0].Operations[0].Input = ""
	if Satisfies(p, r) {
		t.Fatal("presence/absence of input must matter")
	}
}

func TestKeywordMatch(t *testing.T) {
	d := videoServerDef("MediaWorkstation")
	if !KeywordMatch(d, "media") || !KeywordMatch(d, "WORKSTATION") {
		t.Fatal("case-insensitive keyword match failed")
	}
	if KeywordMatch(d, "printer") {
		t.Fatal("false keyword match")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Publish(&Definition{}); err == nil {
		t.Fatal("published invalid definition")
	}
	for _, name := range []string{"media1", "media2", "printer"} {
		if err := r.Publish(videoServerDef(name)); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	req := videoServerDef("anything")
	if got := r.Query(req); len(got) != 3 {
		t.Fatalf("Query = %d results, want 3", len(got))
	}
	req.PortTypes[0].Operations[0].Name = "Renamed"
	if got := r.Query(req); len(got) != 0 {
		t.Fatalf("Query after rename = %d results, want 0", len(got))
	}
	if got := r.QueryKeyword("media"); len(got) != 2 {
		t.Fatalf("QueryKeyword = %d, want 2", len(got))
	}
	if !r.Remove("media1") || r.Remove("media1") {
		t.Fatal("Remove semantics wrong")
	}
	if r.Len() != 2 {
		t.Fatalf("Len after remove = %d", r.Len())
	}
}

func TestEncodeOutputIsXML(t *testing.T) {
	data, err := Marshal(videoServerDef("x"))
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{"<definitions", "<message", "<portType", "operation"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}
