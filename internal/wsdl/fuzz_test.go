package wsdl

import "testing"

// FuzzDecode hardens the WSDL-lite parser: no panics, and successful
// decodes keep satisfying themselves after a round trip.
func FuzzDecode(f *testing.F) {
	valid, err := Marshal(&Definition{
		Name: "svc",
		Messages: []Message{
			{Name: "In", Parts: []Part{{Name: "a", Type: "xsd:string"}}},
		},
		PortTypes: []PortType{
			{Name: "P", Operations: []Operation{{Name: "op", Input: "In"}}},
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte(`<definitions name="x"/>`))
	f.Add([]byte(`<definitions`))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Unmarshal(data)
		if err != nil {
			return
		}
		out, err := Marshal(d)
		if err != nil {
			t.Fatalf("decoded definition fails to marshal: %v", err)
		}
		back, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("marshal output fails to decode: %v", err)
		}
		if !Satisfies(back, d) || !Satisfies(d, back) {
			t.Fatal("round trip broke self-satisfaction")
		}
	})
}
