// Package wsdl implements the syntactic service descriptions and matching
// that the original Ariadne discovery protocol uses — the baseline
// S-Ariadne is compared against in Figure 10 — plus a flat UDDI-style
// registry providing the syntactic reference point of Section 2.4.
//
// A description is a WSDL-like interface: named messages made of typed
// parts, and port types whose operations reference those messages.
// Syntactic matching is purely structural: a provided description
// satisfies a required one exactly when every required operation appears
// with the same name and structurally identical input and output messages.
// There is no semantic substitution — which is precisely the weakness the
// paper's semantic discovery removes.
package wsdl

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Validation errors.
var (
	// ErrNoName is returned when a definition lacks a name.
	ErrNoName = errors.New("wsdl: missing name")
	// ErrUnknownMessage is returned when an operation references an
	// undeclared message.
	ErrUnknownMessage = errors.New("wsdl: unknown message")
)

// Part is a typed message fragment.
type Part struct {
	Name string `xml:"name,attr"`
	Type string `xml:"type,attr"`
}

// Message is a named list of parts.
type Message struct {
	Name  string `xml:"name,attr"`
	Parts []Part `xml:"part"`
}

// Operation pairs an input and an output message by name.
type Operation struct {
	Name   string `xml:"name,attr"`
	Input  string `xml:"input,attr,omitempty"`
	Output string `xml:"output,attr,omitempty"`
}

// PortType is a named set of operations (the WSDL interface unit).
type PortType struct {
	Name       string      `xml:"name,attr"`
	Operations []Operation `xml:"operation"`
}

// Definition is one service's syntactic description.
type Definition struct {
	XMLName         xml.Name   `xml:"definitions"`
	Name            string     `xml:"name,attr"`
	TargetNamespace string     `xml:"targetNamespace,attr,omitempty"`
	Messages        []Message  `xml:"message"`
	PortTypes       []PortType `xml:"portType"`
}

// Validate checks naming and referential integrity.
func (d *Definition) Validate() error {
	if d.Name == "" {
		return ErrNoName
	}
	msgs := make(map[string]bool, len(d.Messages))
	for _, m := range d.Messages {
		if m.Name == "" {
			return fmt.Errorf("%w: message in %q", ErrNoName, d.Name)
		}
		msgs[m.Name] = true
	}
	for _, pt := range d.PortTypes {
		if pt.Name == "" {
			return fmt.Errorf("%w: portType in %q", ErrNoName, d.Name)
		}
		for _, op := range pt.Operations {
			if op.Name == "" {
				return fmt.Errorf("%w: operation in %q", ErrNoName, pt.Name)
			}
			if op.Input != "" && !msgs[op.Input] {
				return fmt.Errorf("%w: %q input %q", ErrUnknownMessage, op.Name, op.Input)
			}
			if op.Output != "" && !msgs[op.Output] {
				return fmt.Errorf("%w: %q output %q", ErrUnknownMessage, op.Name, op.Output)
			}
		}
	}
	return nil
}

// message returns the named message, if declared.
func (d *Definition) message(name string) (Message, bool) {
	for _, m := range d.Messages {
		if m.Name == name {
			return m, true
		}
	}
	return Message{}, false
}

// Decode parses and validates a WSDL-like document.
func Decode(r io.Reader) (*Definition, error) {
	var d Definition
	if err := xml.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("wsdl: decode: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Unmarshal parses a document from a byte slice.
func Unmarshal(data []byte) (*Definition, error) {
	return Decode(bytes.NewReader(data))
}

// Encode writes the definition as XML.
func Encode(w io.Writer, d *Definition) error {
	if err := d.Validate(); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("wsdl: encode: %w", err)
	}
	return enc.Close()
}

// Marshal renders the definition as XML.
func Marshal(d *Definition) ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, d); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// messagesEqual compares two messages structurally, order-insensitively on
// parts.
func messagesEqual(a, b Message) bool {
	if len(a.Parts) != len(b.Parts) {
		return false
	}
	ap := append([]Part(nil), a.Parts...)
	bp := append([]Part(nil), b.Parts...)
	less := func(s []Part) func(i, j int) bool {
		return func(i, j int) bool {
			if s[i].Name != s[j].Name {
				return s[i].Name < s[j].Name
			}
			return s[i].Type < s[j].Type
		}
	}
	sort.Slice(ap, less(ap))
	sort.Slice(bp, less(bp))
	for i := range ap {
		if ap[i] != bp[i] {
			return false
		}
	}
	return true
}

// Satisfies reports whether the provided definition syntactically satisfies
// the required one: every required port type has a provided port type with
// the same name containing every required operation with identical name
// and structurally equal input/output messages. This models the syntactic
// interface conformance of classical SDPs — renaming a type or operation
// breaks it, which is the paper's motivating limitation.
func Satisfies(provided, required *Definition) bool {
	for _, rpt := range required.PortTypes {
		ppt, ok := findPortType(provided, rpt.Name)
		if !ok {
			return false
		}
		for _, rop := range rpt.Operations {
			if !portTypeHasOperation(provided, required, ppt, rop) {
				return false
			}
		}
	}
	return true
}

func findPortType(d *Definition, name string) (PortType, bool) {
	for _, pt := range d.PortTypes {
		if pt.Name == name {
			return pt, true
		}
	}
	return PortType{}, false
}

func portTypeHasOperation(provided, required *Definition, ppt PortType, rop Operation) bool {
	for _, pop := range ppt.Operations {
		if pop.Name != rop.Name {
			continue
		}
		if !operationMessagesEqual(provided, required, pop.Input, rop.Input) {
			continue
		}
		if !operationMessagesEqual(provided, required, pop.Output, rop.Output) {
			continue
		}
		return true
	}
	return false
}

func operationMessagesEqual(provided, required *Definition, pname, rname string) bool {
	if (pname == "") != (rname == "") {
		return false
	}
	if pname == "" {
		return true
	}
	pm, ok1 := provided.message(pname)
	rm, ok2 := required.message(rname)
	return ok1 && ok2 && messagesEqual(pm, rm)
}

// KeywordMatch reports whether the definition's name contains the keyword,
// case-insensitively — the weaker discovery mode of UDDI-style registries.
func KeywordMatch(d *Definition, keyword string) bool {
	return strings.Contains(strings.ToLower(d.Name), strings.ToLower(keyword))
}

// Registry is a flat, UDDI-style syntactic registry: publication appends,
// queries scan every stored definition. Registry is safe for concurrent
// use.
type Registry struct {
	mu   sync.RWMutex
	defs []*Definition
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Publish stores a definition.
func (r *Registry) Publish(d *Definition) error {
	if err := d.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.defs = append(r.defs, d)
	return nil
}

// Remove deletes the definition with the given name; it reports whether
// one was removed.
func (r *Registry) Remove(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, d := range r.defs {
		if d.Name == name {
			r.defs = append(r.defs[:i], r.defs[i+1:]...)
			return true
		}
	}
	return false
}

// Query returns every published definition that syntactically satisfies
// the required interface — a full scan, by design.
func (r *Registry) Query(required *Definition) []*Definition {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*Definition
	for _, d := range r.defs {
		if Satisfies(d, required) {
			out = append(out, d)
		}
	}
	return out
}

// QueryKeyword returns definitions whose names contain the keyword.
func (r *Registry) QueryKeyword(keyword string) []*Definition {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []*Definition
	for _, d := range r.defs {
		if KeywordMatch(d, keyword) {
			out = append(out, d)
		}
	}
	return out
}

// Len returns the number of published definitions.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.defs)
}
