// Package boltlike is the embedded binary storage backend for
// single-node production: a bitcask/bolt-inspired log-structured store in
// one file. Records are length-prefixed, CRC-checksummed frames; an
// in-memory keydir tracks the live advertisement set; compaction rewrites
// the log copy-on-write and swaps it in with an atomic rename.
//
// Layout:
//
//	header  : 8-byte magic "SDPBOLT\x01" + uint32 LE schema version
//	record  : uint32 LE payload length + uint32 LE CRC-32 (IEEE) of the
//	          payload + payload (one codec-encoded store record)
//
// Crash recovery is scan-stop: opening walks the frames and truncates
// the file at the first incomplete or checksum-failing record — after a
// crash everything durable before the tear is recovered and the tear
// itself is dropped and counted. Only header damage refuses to open
// (store.CorruptError): a file that is not ours should never be
// silently overwritten.
package boltlike

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"sariadne/internal/store"
)

const (
	headerSize  = 12      // magic + version
	frameHeader = 8       // length + crc
	maxPayload  = 1 << 26 // 64 MiB sanity cap; larger lengths read as damage
)

// Store is a boltlike store over one file.
type Store struct {
	path      string
	syncEvery int

	mu       sync.Mutex
	f        *os.File        // append handle, guarded by mu
	size     int64           // bytes of validated frames (and header), guarded by mu
	pending  int             // appends since the last fsync, guarded by mu
	tornTail bool            // open truncated damaged frames, guarded by mu
	live     map[string]bool // keydir: live service names, guarded by mu
	closed   bool            // guarded by mu
}

// Open opens (creating if needed) the store at path, validating every
// frame and truncating crash damage at the tail.
func Open(path string, opts store.Options) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("boltlike: %w", err)
	}
	s := &Store{path: path, syncEvery: opts.Interval(), f: f, live: make(map[string]bool)}
	s.mu.Lock()
	err = s.recoverLocked()
	s.mu.Unlock()
	if err != nil {
		_ = f.Close() // the recovery failure is the diagnosis
		return nil, err
	}
	return s, nil
}

// writeHeaderLocked initializes an empty file.
func (s *Store) writeHeaderLocked() error {
	var hdr [headerSize]byte
	copy(hdr[:], store.BoltMagic)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(store.RecordVersion))
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("boltlike: %w", err)
	}
	if _, err := s.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("boltlike: writing header: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("boltlike: %w", err)
	}
	s.size = headerSize
	return nil
}

// recoverLocked validates the header and scans frames, rebuilding the
// keydir and truncating everything from the first damaged frame on.
func (s *Store) recoverLocked() error {
	info, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("boltlike: %w", err)
	}
	if info.Size() == 0 {
		return s.writeHeaderLocked()
	}
	hdr := make([]byte, headerSize)
	n, err := s.f.ReadAt(hdr, 0)
	if n < headerSize {
		_ = err // the short read is the diagnosis
		// A crash while creating the file can leave a truncated header;
		// anything else this short that matches the magic prefix is ours.
		if bytes.Equal(hdr[:n], store.BoltMagic[:min(n, len(store.BoltMagic))]) {
			s.tornTail = true
			store.CountTornTail()
			if err := s.f.Truncate(0); err != nil {
				return fmt.Errorf("boltlike: %w", err)
			}
			return s.writeHeaderLocked()
		}
		return &store.CorruptError{Path: s.path, Offset: 0, Reason: "not a boltlike store (short, unrecognized header)"}
	}
	if !bytes.Equal(hdr[:len(store.BoltMagic)], store.BoltMagic) {
		return &store.CorruptError{Path: s.path, Offset: 0, Reason: "bad magic (not a boltlike store)"}
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v > store.RecordVersion {
		return &store.VersionError{Got: int(v), Max: store.RecordVersion}
	}

	// Scan frames from the header on.
	if _, err := s.f.Seek(headerSize, io.SeekStart); err != nil {
		return fmt.Errorf("boltlike: %w", err)
	}
	r := bufio.NewReader(s.f)
	offset := int64(headerSize)
	for {
		rec, frameLen, ok, err := readFrame(r)
		if err != nil {
			return fmt.Errorf("boltlike: scanning %s: %w", s.path, err)
		}
		if !ok {
			break // clean EOF
		}
		if frameLen == 0 {
			// Damaged frame: stop the scan and drop the rest.
			s.tornTail = true
			break
		}
		s.applyKeydirLocked(rec)
		offset += frameLen
	}
	if s.tornTail {
		store.CountTornTail()
		if err := s.f.Truncate(offset); err != nil {
			return fmt.Errorf("boltlike: truncating torn tail: %w", err)
		}
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("boltlike: %w", err)
		}
	}
	s.size = offset
	if _, err := s.f.Seek(offset, io.SeekStart); err != nil {
		return fmt.Errorf("boltlike: %w", err)
	}
	return nil
}

// readFrame reads one frame. Returns ok=false on clean EOF; a damaged
// frame (incomplete, oversized, checksum or decode failure) returns
// frameLen 0 with ok=true; err is reserved for I/O failures.
func readFrame(r *bufio.Reader) (rec store.Record, frameLen int64, ok bool, err error) {
	var head [frameHeader]byte
	n, err := io.ReadFull(r, head[:])
	if err == io.EOF && n == 0 {
		return store.Record{}, 0, false, nil
	}
	if err == io.ErrUnexpectedEOF || err == io.EOF {
		return store.Record{}, 0, true, nil // torn frame header
	}
	if err != nil {
		return store.Record{}, 0, false, err
	}
	length := binary.LittleEndian.Uint32(head[:4])
	sum := binary.LittleEndian.Uint32(head[4:])
	if length == 0 || length > maxPayload {
		return store.Record{}, 0, true, nil
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			return store.Record{}, 0, true, nil // torn payload
		}
		return store.Record{}, 0, false, err
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return store.Record{}, 0, true, nil
	}
	decoded, err := store.DecodeRecord(payload)
	if err != nil {
		// A checksummed frame that fails to decode was written by code
		// this binary does not understand; scan-stop treats it like
		// damage rather than guessing.
		return store.Record{}, 0, true, nil
	}
	return decoded, frameHeader + int64(length), true, nil
}

// applyKeydirLocked folds one record into the live-name index.
func (s *Store) applyKeydirLocked(rec store.Record) {
	switch rec.Op {
	case store.OpRegister:
		if rec.Name != "" {
			s.live[rec.Name] = true
		}
	case store.OpDeregister:
		delete(s.live, rec.Name)
	}
}

// LiveServices reports the keydir's live advertisement count — an O(1)
// stat no replay needs.
func (s *Store) LiveServices() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.live)
}

// Append implements store.Store.
func (s *Store) Append(rec store.Record) error {
	start := time.Now()
	payload, err := store.EncodeRecord(rec)
	if err != nil {
		return err
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return store.ErrClosed
	}
	if _, err := s.f.Write(frame); err != nil {
		return fmt.Errorf("boltlike: append: %w", err)
	}
	s.size += int64(len(frame))
	s.applyKeydirLocked(rec)
	s.pending++
	if s.pending >= s.syncEvery {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("boltlike: sync: %w", err)
		}
		s.pending = 0
		store.CountSync()
	}
	store.CountAppend(start)
	return nil
}

// Replay implements store.Store, streaming a consistent prefix through
// an independent read handle. Frames inside the validated prefix were
// either checked at open or written by this process, so damage here is
// reported as corruption rather than skipped.
func (s *Store) Replay(apply func(rec store.Record) error) (store.ReplayStats, error) {
	var stats store.ReplayStats
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return stats, store.ErrClosed
	}
	size := s.size
	stats.TornTail = s.tornTail
	s.mu.Unlock()

	rf, err := os.Open(s.path)
	if err != nil {
		return stats, fmt.Errorf("boltlike: replay: %w", err)
	}
	defer rf.Close()
	if _, err := rf.Seek(headerSize, io.SeekStart); err != nil {
		return stats, fmt.Errorf("boltlike: replay: %w", err)
	}
	r := bufio.NewReader(io.LimitReader(rf, size-headerSize))
	offset := int64(headerSize)
	for {
		rec, frameLen, ok, err := readFrame(r)
		if err != nil {
			return stats, fmt.Errorf("boltlike: replay: %w", err)
		}
		if !ok {
			break
		}
		if frameLen == 0 {
			return stats, &store.CorruptError{Path: s.path, Offset: offset, Reason: "damaged frame inside validated prefix"}
		}
		if err := apply(rec); err != nil {
			return stats, err
		}
		stats.Records++
		offset += frameLen
	}
	store.CountReplayRecords(stats.Records)
	return stats, nil
}

// Snapshot implements store.Store.
func (s *Store) Snapshot() ([]store.Record, error) {
	var history []store.Record
	if _, err := s.Replay(func(rec store.Record) error {
		history = append(history, rec)
		return nil
	}); err != nil {
		return nil, err
	}
	return store.Fold(history), nil
}

// Compact implements store.Store: copy-on-write into a temporary file,
// fsync, atomic rename. The lock is held throughout.
func (s *Store) Compact() error {
	return store.TimeCompact(func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.closed {
			return store.ErrClosed
		}
		history, err := s.scanLocked()
		if err != nil {
			return err
		}
		tmpPath := s.path + ".compact"
		tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return fmt.Errorf("boltlike: compact: %w", err)
		}
		defer os.Remove(tmpPath) // no-op after the rename succeeds
		var hdr [headerSize]byte
		copy(hdr[:], store.BoltMagic)
		binary.LittleEndian.PutUint32(hdr[8:], uint32(store.RecordVersion))
		w := bufio.NewWriter(tmp)
		size := int64(headerSize)
		if _, err := w.Write(hdr[:]); err != nil {
			tmp.Close()
			return fmt.Errorf("boltlike: compact: %w", err)
		}
		live := make(map[string]bool)
		canonical := store.Fold(history)
		for _, rec := range canonical {
			payload, err := store.EncodeRecord(rec)
			if err != nil {
				tmp.Close()
				return err
			}
			var fh [frameHeader]byte
			binary.LittleEndian.PutUint32(fh[:4], uint32(len(payload)))
			binary.LittleEndian.PutUint32(fh[4:], crc32.ChecksumIEEE(payload))
			if _, err := w.Write(fh[:]); err != nil {
				tmp.Close()
				return fmt.Errorf("boltlike: compact: %w", err)
			}
			if _, err := w.Write(payload); err != nil {
				tmp.Close()
				return fmt.Errorf("boltlike: compact: %w", err)
			}
			size += frameHeader + int64(len(payload))
			if rec.Op == store.OpRegister && rec.Name != "" {
				live[rec.Name] = true
			}
		}
		if err := w.Flush(); err != nil {
			tmp.Close()
			return fmt.Errorf("boltlike: compact: %w", err)
		}
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("boltlike: compact: %w", err)
		}
		if err := tmp.Close(); err != nil {
			return fmt.Errorf("boltlike: compact: %w", err)
		}
		if err := os.Rename(tmpPath, s.path); err != nil {
			return fmt.Errorf("boltlike: compact: %w", err)
		}
		if err := syncDir(s.path); err != nil {
			return err
		}
		old := s.f
		f, err := os.OpenFile(s.path, os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("boltlike: compact: reopening: %w", err)
		}
		if _, err := f.Seek(size, io.SeekStart); err != nil {
			f.Close()
			return fmt.Errorf("boltlike: compact: %w", err)
		}
		if err := old.Close(); err != nil {
			f.Close()
			return fmt.Errorf("boltlike: compact: closing old handle: %w", err)
		}
		s.f = f
		s.size = size
		s.pending = 0
		s.tornTail = false
		s.live = live
		return nil
	})
}

// scanLocked reads the current history (mu held) through an independent
// handle.
func (s *Store) scanLocked() ([]store.Record, error) {
	rf, err := os.Open(s.path)
	if err != nil {
		return nil, fmt.Errorf("boltlike: %w", err)
	}
	defer rf.Close()
	if _, err := rf.Seek(headerSize, io.SeekStart); err != nil {
		return nil, fmt.Errorf("boltlike: %w", err)
	}
	r := bufio.NewReader(io.LimitReader(rf, s.size-headerSize))
	var history []store.Record
	for {
		rec, frameLen, ok, err := readFrame(r)
		if err != nil {
			return nil, fmt.Errorf("boltlike: %w", err)
		}
		if !ok || frameLen == 0 {
			break
		}
		history = append(history, rec)
	}
	return history, nil
}

// syncDir fsyncs the directory containing path, making a rename durable.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("boltlike: syncing directory: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("boltlike: syncing directory: %w", err)
	}
	return nil
}

// Close implements store.Store: outstanding appends are synced, then the
// handle is released. Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var syncErr error
	if s.pending > 0 {
		if syncErr = s.f.Sync(); syncErr == nil {
			store.CountSync()
		}
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("boltlike: close: %w", err)
	}
	if syncErr != nil {
		return fmt.Errorf("boltlike: close: %w", syncErr)
	}
	return nil
}

// Healthy implements store.Prober.
func (s *Store) Healthy() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return store.ErrClosed
	}
	if _, err := s.f.Stat(); err != nil {
		return fmt.Errorf("boltlike: %w", err)
	}
	return nil
}

var _ store.Store = (*Store)(nil)
var _ store.Prober = (*Store)(nil)
