package boltlike_test

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"sariadne/internal/store"
	"sariadne/internal/store/boltlike"
	"sariadne/internal/store/storetest"
)

func boltMedium(t *testing.T, opts store.Options) storetest.Medium {
	path := filepath.Join(t.TempDir(), "store.bolt")
	return storetest.Medium{
		Open: func() (store.Store, error) { return boltlike.Open(path, opts) },
		Truncate: func(n int64) error {
			info, err := os.Stat(path)
			if err != nil {
				return err
			}
			size := info.Size() - n
			if size < 0 {
				size = 0
			}
			return os.Truncate(path, size)
		},
	}
}

func TestConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) storetest.Medium {
		return boltMedium(t, store.Options{})
	})
}

func TestConformanceGroupedSync(t *testing.T) {
	storetest.Run(t, func(t *testing.T) storetest.Medium {
		return boltMedium(t, store.Options{SyncEvery: 8})
	})
}

func openWithRecords(t *testing.T, path string, recs []store.Record) {
	t.Helper()
	s, err := boltlike.Open(path, store.Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i, rec := range recs {
		if err := s.Append(rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestCRCCorruptionScanStop flips one payload bit in the middle frame:
// recovery must stop the scan there, keep everything before it, and
// report the tear.
func TestCRCCorruptionScanStop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crc.bolt")
	openWithRecords(t, path, []store.Record{
		{Op: store.OpRegister, Name: "a", Doc: `<service name="a"/>`, Version: 1},
		{Op: store.OpRegister, Name: "b", Doc: `<service name="b"/>`, Version: 1},
		{Op: store.OpRegister, Name: "c", Doc: `<service name="c"/>`, Version: 1},
	})
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	// Frames are identical length; flip a bit inside the second payload.
	frameLen := (len(data) - 12) / 3
	data[12+frameLen+8+4] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	s, err := boltlike.Open(path, store.Options{})
	if err != nil {
		t.Fatalf("open after corruption: %v", err)
	}
	defer func() { _ = s.Close() }()
	var got []store.Record
	stats, err := s.Replay(func(rec store.Record) error {
		got = append(got, rec)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !stats.TornTail {
		t.Fatal("corruption not reported as a torn tail")
	}
	if len(got) != 1 || got[0].Name != "a" {
		t.Fatalf("replayed %v, want only the frame before the corruption", got)
	}
}

// TestBadMagicRefuses pins the refusal contract: a file that is not ours
// must not be silently overwritten.
func TestBadMagicRefuses(t *testing.T) {
	path := filepath.Join(t.TempDir(), "other.bin")
	if err := os.WriteFile(path, []byte("GIF89a...definitely not a store"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	_, err := boltlike.Open(path, store.Options{})
	var corrupt *store.CorruptError
	if !errors.As(err, &corrupt) {
		t.Fatalf("open = %v, want CorruptError", err)
	}
}

// TestFutureVersionRefuses pins forward-compatibility: a header written
// by a newer schema fails with VersionError, not silent misreads.
func TestFutureVersionRefuses(t *testing.T) {
	path := filepath.Join(t.TempDir(), "future.bolt")
	hdr := make([]byte, 12)
	copy(hdr, store.BoltMagic)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(store.RecordVersion+1))
	if err := os.WriteFile(path, hdr, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	_, err := boltlike.Open(path, store.Options{})
	var ver *store.VersionError
	if !errors.As(err, &ver) {
		t.Fatalf("open = %v, want VersionError", err)
	}
	if ver.Got != store.RecordVersion+1 || ver.Max != store.RecordVersion {
		t.Fatalf("VersionError = %+v", ver)
	}
}

// TestKeydir pins the O(1) live-service index across appends,
// supersedes, deregisters and reopen.
func TestKeydir(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keydir.bolt")
	s, err := boltlike.Open(path, store.Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	recs := []store.Record{
		{Op: store.OpRegister, Name: "a", Doc: `<service name="a"/>`, Version: 1},
		{Op: store.OpRegister, Name: "b", Doc: `<service name="b"/>`, Version: 1},
		{Op: store.OpRegister, Name: "a", Doc: `<service name="a"/>`, Version: 2}, // supersede, not a new key
		{Op: store.OpDeregister, Name: "b"},
	}
	for i, rec := range recs {
		if err := s.Append(rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if n := s.LiveServices(); n != 1 {
		t.Fatalf("LiveServices = %d, want 1", n)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	s, err = boltlike.Open(path, store.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() { _ = s.Close() }()
	if n := s.LiveServices(); n != 1 {
		t.Fatalf("LiveServices after reopen = %d, want 1", n)
	}
}
