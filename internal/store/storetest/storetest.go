// Package storetest is the conformance suite every storage backend must
// pass: ordered replay equivalence, idempotent re-open, snapshot and
// compaction semantics defined by store.Fold, concurrent append/replay
// safety under the race detector, and crash recovery via injected write
// truncation. A future backend (SQL, remote) is validated by
// construction: implement store.Store, describe its medium here, run
// Run.
package storetest

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"sariadne/internal/store"
)

// Medium describes one backend's persistent substrate to the suite: how
// to open (and re-open) a store over it, and how to injure it the way a
// crash would. A Medium's lifetime spans many Open/Close cycles, like a
// file spans many process lifetimes.
type Medium struct {
	// Open opens a store session over the medium. The suite calls it
	// repeatedly, always after closing the previous session.
	Open func() (store.Store, error)
	// Truncate chops n bytes off the persisted tail — the crash-injection
	// hook. Called only between sessions. Truncating past the start of the
	// medium must leave it empty (or as an empty store), not fail. Nil
	// skips the crash-recovery cases (a backend whose medium cannot tear).
	Truncate func(n int64) error
}

// Run executes the conformance suite. newMedium must return a fresh,
// empty medium on each call (each subtest gets its own).
func Run(t *testing.T, newMedium func(t *testing.T) Medium) {
	t.Run("EmptyReplay", func(t *testing.T) { testEmptyReplay(t, newMedium(t)) })
	t.Run("AppendReplayOrder", func(t *testing.T) { testAppendReplayOrder(t, newMedium(t)) })
	t.Run("ReopenIdempotent", func(t *testing.T) { testReopenIdempotent(t, newMedium(t)) })
	t.Run("SnapshotCanonical", func(t *testing.T) { testSnapshotCanonical(t, newMedium(t)) })
	t.Run("CompactFolds", func(t *testing.T) { testCompactFolds(t, newMedium(t)) })
	t.Run("ClosedErrors", func(t *testing.T) { testClosedErrors(t, newMedium(t)) })
	t.Run("ConcurrentAppendReplay", func(t *testing.T) { testConcurrentAppendReplay(t, newMedium(t)) })
	t.Run("CrashTornTail", func(t *testing.T) { testCrashTornTail(t, newMedium(t)) })
	t.Run("CrashProgressiveTruncation", func(t *testing.T) { testCrashProgressive(t, newMedium(t)) })
}

// open fails the test on error.
func open(t *testing.T, m Medium) store.Store {
	t.Helper()
	s, err := m.Open()
	if err != nil {
		t.Fatalf("opening store: %v", err)
	}
	return s
}

// closeStore fails the test on error.
func closeStore(t *testing.T, s store.Store) {
	t.Helper()
	if err := s.Close(); err != nil {
		t.Fatalf("closing store: %v", err)
	}
}

// replayAll collects the full replay stream.
func replayAll(t *testing.T, s store.Store) ([]store.Record, store.ReplayStats) {
	t.Helper()
	var recs []store.Record
	stats, err := s.Replay(func(rec store.Record) error {
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs, stats
}

// appendAll appends every record, failing fast.
func appendAll(t *testing.T, s store.Store, recs []store.Record) {
	t.Helper()
	for i, rec := range recs {
		if err := s.Append(rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

// sampleHistory is a representative mutation history: two ontologies
// (one duplicated), a service registered then superseded, a transient
// service registered and withdrawn, and a second live service.
func sampleHistory() []store.Record {
	return []store.Record{
		{Op: store.OpAddOntology, Doc: `<ontology uri="u1"><class name="A"/></ontology>`},
		{Op: store.OpRegister, Name: "alpha", Doc: `<service name="alpha"/>`, Version: 1},
		{Op: store.OpAddOntology, Doc: `<ontology uri="u2"><class name="B"/></ontology>`},
		{Op: store.OpRegister, Name: "transient", Doc: `<service name="transient"/>`, Version: 1},
		{Op: store.OpAddOntology, Doc: `<ontology uri="u1"><class name="A"/></ontology>`},
		{Op: store.OpRegister, Name: "alpha", Doc: `<service name="alpha" provider="p2"/>`, Version: 2},
		{Op: store.OpDeregister, Name: "transient"},
		{Op: store.OpRegister, Name: "beta", Doc: `<service name="beta"/>`, Version: 1},
	}
}

func equalRecords(a, b []store.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func testEmptyReplay(t *testing.T, m Medium) {
	s := open(t, m)
	defer closeStore(t, s)
	recs, stats := replayAll(t, s)
	if len(recs) != 0 || stats.Records != 0 || stats.Skipped != 0 || stats.TornTail {
		t.Fatalf("fresh store replayed %d records, stats %+v", len(recs), stats)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if len(snap) != 0 {
		t.Fatalf("fresh store snapshot = %v", snap)
	}
}

func testAppendReplayOrder(t *testing.T, m Medium) {
	history := sampleHistory()
	s := open(t, m)
	appendAll(t, s, history)
	recs, stats := replayAll(t, s)
	if !equalRecords(recs, history) {
		t.Fatalf("replay order diverged:\n got %v\nwant %v", recs, history)
	}
	if stats.Records != len(history) || stats.Skipped != 0 {
		t.Fatalf("stats = %+v, want %d records", stats, len(history))
	}
	closeStore(t, s)
}

func testReopenIdempotent(t *testing.T, m Medium) {
	history := sampleHistory()
	s := open(t, m)
	appendAll(t, s, history)
	closeStore(t, s)

	// Re-opening without writes must be stable, however many times.
	for i := 0; i < 3; i++ {
		s = open(t, m)
		recs, stats := replayAll(t, s)
		if !equalRecords(recs, history) {
			t.Fatalf("reopen %d: replay diverged: got %d records, want %d", i, len(recs), len(history))
		}
		if stats.TornTail {
			t.Fatalf("reopen %d: clean history reported a torn tail", i)
		}
		closeStore(t, s)
	}

	// Appends after a reopen extend the same history.
	extra := store.Record{Op: store.OpRegister, Name: "late", Doc: `<service name="late"/>`, Version: 1}
	s = open(t, m)
	if err := s.Append(extra); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	closeStore(t, s)
	s = open(t, m)
	recs, _ := replayAll(t, s)
	if !equalRecords(recs, append(append([]store.Record(nil), history...), extra)) {
		t.Fatalf("history+extra diverged after reopen: %v", recs)
	}
	closeStore(t, s)
}

func testSnapshotCanonical(t *testing.T, m Medium) {
	history := sampleHistory()
	s := open(t, m)
	defer closeStore(t, s)
	appendAll(t, s, history)
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if want := store.Fold(history); !equalRecords(snap, want) {
		t.Fatalf("snapshot is not the folded history:\n got %v\nwant %v", snap, want)
	}
	// Snapshot must not mutate: the raw history still replays.
	recs, _ := replayAll(t, s)
	if !equalRecords(recs, history) {
		t.Fatalf("snapshot mutated the store: replay now %v", recs)
	}
}

func testCompactFolds(t *testing.T, m Medium) {
	history := sampleHistory()
	s := open(t, m)
	appendAll(t, s, history)
	want, err := s.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	recs, _ := replayAll(t, s)
	if !equalRecords(recs, want) {
		t.Fatalf("post-compact replay is not the pre-compact snapshot:\n got %v\nwant %v", recs, want)
	}
	// Compaction is idempotent.
	if err := s.Compact(); err != nil {
		t.Fatalf("second compact: %v", err)
	}
	recs, _ = replayAll(t, s)
	if !equalRecords(recs, want) {
		t.Fatalf("second compact changed the state: %v", recs)
	}
	// Appends continue after compaction and survive a reopen.
	extra := store.Record{Op: store.OpDeregister, Name: "beta"}
	if err := s.Append(extra); err != nil {
		t.Fatalf("append after compact: %v", err)
	}
	closeStore(t, s)
	s = open(t, m)
	recs, _ = replayAll(t, s)
	if !equalRecords(recs, append(append([]store.Record(nil), want...), extra)) {
		t.Fatalf("compacted history + append diverged after reopen: %v", recs)
	}
	closeStore(t, s)
}

func testClosedErrors(t *testing.T, m Medium) {
	s := open(t, m)
	appendAll(t, s, sampleHistory()[:2])
	closeStore(t, s)
	if err := s.Append(store.Record{Op: store.OpDeregister, Name: "x"}); !errors.Is(err, store.ErrClosed) {
		t.Fatalf("Append on closed store = %v, want ErrClosed", err)
	}
	if _, err := s.Replay(func(store.Record) error { return nil }); !errors.Is(err, store.ErrClosed) {
		t.Fatalf("Replay on closed store = %v, want ErrClosed", err)
	}
	if _, err := s.Snapshot(); !errors.Is(err, store.ErrClosed) {
		t.Fatalf("Snapshot on closed store = %v, want ErrClosed", err)
	}
	if err := s.Compact(); !errors.Is(err, store.ErrClosed) {
		t.Fatalf("Compact on closed store = %v, want ErrClosed", err)
	}
	// Close is idempotent.
	if err := s.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
}

// testConcurrentAppendReplay races writers against replayers (run the
// suite under -race). Correctness bar: no data race, every append
// present exactly once afterwards, and each writer's records appear in
// its own append order.
func testConcurrentAppendReplay(t *testing.T, m Medium) {
	const writers, perWriter = 4, 25
	s := open(t, m)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := store.Record{
					Op:      store.OpRegister,
					Name:    fmt.Sprintf("svc-%d-%d", w, i),
					Doc:     fmt.Sprintf(`<service name="svc-%d-%d"/>`, w, i),
					Version: uint64(i + 1),
				}
				if err := s.Append(rec); err != nil {
					t.Errorf("writer %d append %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	// Replay concurrently with the writers: each pass must observe a
	// consistent prefix (no decode errors, no partial records).
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := s.Replay(func(store.Record) error { return nil }); err != nil {
					t.Errorf("concurrent replay: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	recs, stats := replayAll(t, s)
	if len(recs) != writers*perWriter || stats.Skipped != 0 {
		t.Fatalf("final replay = %d records (%d skipped), want %d", len(recs), stats.Skipped, writers*perWriter)
	}
	// Per-writer order: versions of each writer's records must ascend.
	lastVer := make(map[string]uint64)
	for _, rec := range recs {
		w := rec.Name[:len(rec.Name)-len(fmt.Sprintf("-%d", rec.Version-1))]
		if rec.Version <= lastVer[w] {
			t.Fatalf("writer %s order violated: version %d after %d", w, rec.Version, lastVer[w])
		}
		lastVer[w] = rec.Version
	}
	closeStore(t, s)
}

// testCrashTornTail is the canonical crash: one byte lost off the tail
// mid-append. Every complete record must be recovered, the tear
// reported, and the store must accept new appends afterwards.
func testCrashTornTail(t *testing.T, m Medium) {
	if m.Truncate == nil {
		t.Skip("medium does not support crash injection")
	}
	history := sampleHistory()
	s := open(t, m)
	appendAll(t, s, history)
	closeStore(t, s)

	if err := m.Truncate(1); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	s = open(t, m)
	recs, stats := replayAll(t, s)
	if !stats.TornTail {
		t.Fatalf("torn tail not reported; stats %+v", stats)
	}
	if want := history[:len(history)-1]; !equalRecords(recs, want) {
		t.Fatalf("crash recovery diverged:\n got %v\nwant %v", recs, want)
	}
	// The recovered store keeps working: append, close, reopen, replay.
	marker := store.Record{Op: store.OpRegister, Name: "after-crash", Doc: `<service name="after-crash"/>`, Version: 1}
	if err := s.Append(marker); err != nil {
		t.Fatalf("append after crash recovery: %v", err)
	}
	closeStore(t, s)
	s = open(t, m)
	recs, _ = replayAll(t, s)
	if want := append(append([]store.Record(nil), history[:len(history)-1]...), marker); !equalRecords(recs, want) {
		t.Fatalf("post-recovery history diverged:\n got %v\nwant %v", recs, want)
	}
	closeStore(t, s)
}

// testCrashProgressive grinds the medium down a few bytes at a time:
// every truncation point must open successfully and replay a strict
// prefix of the original history — no crash offset may brick the store.
func testCrashProgressive(t *testing.T, m Medium) {
	if m.Truncate == nil {
		t.Skip("medium does not support crash injection")
	}
	history := sampleHistory()
	s := open(t, m)
	appendAll(t, s, history)
	closeStore(t, s)

	prev := len(history)
	for iter := 0; prev > 0; iter++ {
		if iter > 10000 {
			t.Fatal("progressive truncation did not terminate")
		}
		if err := m.Truncate(7); err != nil {
			t.Fatalf("truncate at iter %d: %v", iter, err)
		}
		s = open(t, m)
		recs, _ := replayAll(t, s)
		if len(recs) > prev {
			t.Fatalf("iter %d: replay grew from %d to %d records after truncation", iter, prev, len(recs))
		}
		if !equalRecords(recs, history[:len(recs)]) {
			t.Fatalf("iter %d: replay is not a prefix of the original history: %v", iter, recs)
		}
		prev = len(recs)
		closeStore(t, s)
	}
}
