package store

import (
	"time"

	"sariadne/internal/telemetry"
)

// Storage-engine instruments, shared by every backend so dashboards read
// one set of series regardless of which engine a daemon runs. Backends
// call the Count/Observe helpers; the metric namespace stays declared in
// one place.
var (
	appendsTotal = telemetry.NewCounter("store_appends_total",
		"records appended to the directory store")
	syncsTotal = telemetry.NewCounter("store_syncs_total",
		"fsyncs issued by the directory store (grouped sync batches appends)")
	compactionsTotal = telemetry.NewCounter("store_compactions_total",
		"log compactions folding history into canonical snapshots")
	tornTailsTotal = telemetry.NewCounter("store_torn_tails_total",
		"incomplete trailing records dropped while recovering from a crash")
	replayRecordsTotal = telemetry.NewCounter("store_replay_records_total",
		"records streamed out of the store during replay")
	compactSeconds = telemetry.NewHistogram("store_compact_seconds",
		"latency of one store compaction")
	appendSeconds = telemetry.NewHistogram("store_append_seconds",
		"latency of one store append, including any fsync the sync policy charges to it")
)

// Metric helpers for the backend subpackages.

// CountAppend records one appended record that started at start — it
// both counts the append and times it, so the soak watchdog's
// append_latency_step detector sees a per-append latency series.
func CountAppend(start time.Time) {
	appendsTotal.Inc()
	appendSeconds.ObserveSince(start)
}

// CountSync records one fsync (or in-memory sync point).
func CountSync() { syncsTotal.Inc() }

// CountTornTail records one torn tail dropped at open.
func CountTornTail() { tornTailsTotal.Inc() }

// CountReplayRecords records n records streamed by a replay.
func CountReplayRecords(n int) { replayRecordsTotal.Add(uint64(n)) }

// TimeCompact runs fn as one compaction, timing and counting it.
func TimeCompact(fn func() error) error {
	start := time.Now()
	err := fn()
	compactSeconds.ObserveSince(start)
	if err == nil {
		compactionsTotal.Inc()
	}
	return err
}
