package store_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"sariadne/internal/store"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	recs := []store.Record{
		{Op: store.OpRegister, Doc: `<service name="a"/>`, Name: "a", Version: 3},
		{Op: store.OpDeregister, Name: "a"},
		{Op: store.OpAddOntology, Doc: `<ontology uri="u"/>`},
		{Op: "future-op", Doc: "payload"}, // unknown ops round-trip too
		{Op: store.OpRegister, Doc: `<service name="alice/a"/>`, Name: "alice/a", Version: 1, Tenant: "alice"},
		{Op: store.OpDeregister, Name: "alice/a", Tenant: "alice"},
	}
	for _, rec := range recs {
		data, err := store.EncodeRecord(rec)
		if err != nil {
			t.Fatalf("encode %+v: %v", rec, err)
		}
		got, err := store.DecodeRecord(data)
		if err != nil {
			t.Fatalf("decode %s: %v", data, err)
		}
		if got != rec {
			t.Fatalf("round trip: %+v -> %s -> %+v", rec, data, got)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	rec := store.Record{Op: store.OpRegister, Doc: `<service name="a" x="<&>"/>`, Name: "a", Version: 1}
	a, err := store.EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := store.EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("encoding is not deterministic: %s vs %s", a, b)
	}
	if bytes.ContainsRune(a, '\n') {
		t.Fatalf("encoded record contains a newline: %s", a)
	}
}

// TestEncodeTenantlessUnchanged pins the compatibility contract of the
// tenant field: a record without one encodes byte-identically to what
// pre-tenancy daemons wrote (no "tenant" key at all), so golden migration
// files and byte-stable snapshots survive the schema growth; a record
// with one carries it at the end of the line.
func TestEncodeTenantlessUnchanged(t *testing.T) {
	legacy, err := store.EncodeRecord(store.Record{Op: store.OpRegister, Doc: `<service name="a"/>`, Name: "a", Version: 2})
	if err != nil {
		t.Fatal(err)
	}
	// json.Marshal HTML-escapes angle brackets; these are the bytes every
	// pre-tenancy daemon wrote.
	if want := `{"v":2,"op":"register","doc":"\u003cservice name=\"a\"/\u003e","name":"a","ver":2}`; string(legacy) != want {
		t.Fatalf("tenant-less encoding changed:\n got %s\nwant %s", legacy, want)
	}
	stamped, err := store.EncodeRecord(store.Record{Op: store.OpRegister, Doc: `<service name="alice/a"/>`, Name: "alice/a", Version: 1, Tenant: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(string(stamped), `,"tenant":"alice"}`) {
		t.Fatalf("tenant not at end of line: %s", stamped)
	}
	// An old decoder's view of a stamped record: drop the field, keep the
	// rest — which is exactly what decoding into the v1 shape does here.
	rec, err := store.DecodeRecord([]byte(`{"op":"deregister","name":"alice/a","tenant":"alice"}`))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Tenant != "alice" || rec.Name != "alice/a" {
		t.Fatalf("decoded %+v", rec)
	}
}

func TestEncodeRejectsEmptyOp(t *testing.T) {
	if _, err := store.EncodeRecord(store.Record{Doc: "x"}); err == nil {
		t.Fatal("encoding a record without an op succeeded")
	}
}

// TestDecodeV1JournalLine pins backward compatibility with the original
// journal format: no "v" field, HTML-escaped XML as json.Marshal wrote
// it, no advertisement version.
func TestDecodeV1JournalLine(t *testing.T) {
	line := `{"op":"register","doc":"<service name=\"cam\" provider=\"hall\"></service>"}`
	rec, err := store.DecodeRecord([]byte(line))
	if err != nil {
		t.Fatalf("decoding v1 line: %v", err)
	}
	want := store.Record{Op: store.OpRegister, Doc: `<service name="cam" provider="hall"></service>`}
	if rec != want {
		t.Fatalf("decoded %+v, want %+v", rec, want)
	}

	dereg, err := store.DecodeRecord([]byte(`{"op":"deregister","name":"cam"}`))
	if err != nil {
		t.Fatalf("decoding v1 deregister: %v", err)
	}
	if dereg.Op != store.OpDeregister || dereg.Name != "cam" || dereg.Version != 0 {
		t.Fatalf("v1 deregister = %+v", dereg)
	}
}

func TestDecodeFutureVersion(t *testing.T) {
	_, err := store.DecodeRecord([]byte(`{"v":3,"op":"register","doc":"x"}`))
	var ver *store.VersionError
	if !errors.As(err, &ver) {
		t.Fatalf("decode = %v, want VersionError", err)
	}
	if ver.Got != 3 || ver.Max != store.RecordVersion {
		t.Fatalf("VersionError = %+v", ver)
	}
	if !strings.Contains(ver.Error(), "migrate") {
		t.Fatalf("VersionError message gives no migration hint: %s", ver)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		``,
		`not json`,
		`{"doc":"no op"}`,
		`{"op":"register"} {"op":"register"}`, // two values on one line
		`[1,2,3]`,
	} {
		if _, err := store.DecodeRecord([]byte(bad)); err == nil {
			t.Errorf("decoding %q succeeded", bad)
		}
	}
}

func TestFileHeader(t *testing.T) {
	header := store.EncodeFileHeader()
	isHeader, err := store.DecodeFileHeader(header)
	if err != nil || !isHeader {
		t.Fatalf("own header not recognized: %v, %v", isHeader, err)
	}
	// A record line is not a header.
	isHeader, err = store.DecodeFileHeader([]byte(`{"v":2,"op":"register","doc":"x"}`))
	if err != nil || isHeader {
		t.Fatalf("record line recognized as header")
	}
	// A v1 journal line is not a header.
	isHeader, err = store.DecodeFileHeader([]byte(`{"op":"register","doc":"x"}`))
	if err != nil || isHeader {
		t.Fatalf("v1 line recognized as header")
	}
	// A future header is recognized but unsupported.
	isHeader, err = store.DecodeFileHeader([]byte(`{"format":"sdp-store","v":99}`))
	var ver *store.VersionError
	if !isHeader || !errors.As(err, &ver) {
		t.Fatalf("future header: isHeader=%v err=%v", isHeader, err)
	}
}
