// Package store defines the pluggable persistence engine behind a
// directory daemon: an append-only log of registry mutations that a
// restarted sdpd replays to recover its advertisements, with snapshotting
// and compaction so replay cost stops growing with history length.
//
// The contract is deliberately small — five methods — so backends stay
// honest and interchangeable:
//
//   - memstore: an in-memory byte log for tests, sdpsim and ephemeral
//     daemons (sdpd -store mem).
//   - filestore: the JSON-lines journal, now with a schema-version
//     header, torn-tail recovery and atomic compaction.
//   - boltlike: an embedded log-structured binary store with per-record
//     checksums for single-node production.
//
// Every backend must pass the same conformance suite
// (internal/store/storetest), including crash recovery via injected
// write truncation, so a future backend (SQL) is validated by
// construction.
package store

import (
	"errors"
	"fmt"
	"strings"
)

// Op names one kind of persisted registry mutation. The values are the
// wire strings of the v1 journal, so v1 histories replay unchanged.
type Op string

// The mutations a directory persists.
const (
	OpRegister    Op = "register"     // publish an advertisement document
	OpDeregister  Op = "deregister"   // withdraw a service by name
	OpAddOntology Op = "add-ontology" // upload an ontology document
)

// Record is one persisted mutation. Records are versioned on disk (see
// codec.go); this struct is the decoded, version-independent form.
type Record struct {
	Op   Op     `json:"op"`
	Doc  string `json:"doc,omitempty"`  // XML document for register/add-ontology
	Name string `json:"name,omitempty"` // service name for deregister
	// Version is the advertisement version assigned by the directory when
	// a register op supersedes an earlier advertisement of the same name.
	// Zero on v1 records (the replaying server assigns versions by count).
	Version uint64 `json:"ver,omitempty"`
	// Tenant is the admitted tenant behind a mutating op, "" on records
	// written before multi-tenancy (or by an open-mode daemon). Replay
	// rebuilds per-tenant live-service counts from it, which is what makes
	// tenant quotas durable across restarts.
	Tenant string `json:"tenant,omitempty"`
}

// ReplayStats summarizes one replay pass.
type ReplayStats struct {
	// Records is the number of decoded records delivered to the callback.
	Records int
	// Skipped counts complete but undecodable entries tolerated by
	// lenient backends (legacy JSON-lines histories may contain junk).
	Skipped int
	// TornTail reports that the history ended in an incomplete record — a
	// crash mid-append — which the backend dropped on open. All complete
	// records before the tear were recovered.
	TornTail bool
}

// Store is an append-only mutation log with snapshot-based compaction.
// Implementations must be safe for concurrent use; Append during Replay
// must not corrupt either (the replay sees a consistent prefix).
type Store interface {
	// Append durably persists one record at the end of the log. The
	// durability point is governed by the backend's sync policy
	// (Options.SyncEvery); Close and Compact always sync.
	Append(rec Record) error
	// Replay streams every record in append order into apply. A non-nil
	// error from apply aborts the replay and is returned verbatim with
	// the stats so far.
	Replay(apply func(rec Record) error) (ReplayStats, error)
	// Snapshot returns the canonical folded state of the log — exactly
	// Fold of the replayed records — without mutating the store.
	Snapshot() ([]Record, error)
	// Compact atomically rewrites the log to its canonical folded state:
	// after Compact, Replay yields what Snapshot returned before it, and
	// subsequent Appends extend the compacted log.
	Compact() error
	// Close syncs and releases the store. Close is idempotent; every
	// other method fails with ErrClosed afterwards.
	Close() error
}

// Prober is implemented by stores that can cheaply verify their backing
// medium is still usable (sdpd's health checker probes it).
type Prober interface {
	Healthy() error
}

// ErrClosed is returned by any operation on a closed store.
var ErrClosed = errors.New("store: closed")

// CorruptError reports storage damage that is not a torn tail: a broken
// file header or a checksum mismatch on a complete record. Opening stops
// rather than silently dropping data the operator may want to salvage.
type CorruptError struct {
	// Path locates the damaged medium ("" for in-memory stores).
	Path string
	// Offset is the byte offset of the damage, -1 when unknown.
	Offset int64
	// Reason describes the damage.
	Reason string
}

func (e *CorruptError) Error() string {
	where := e.Path
	if where == "" {
		where = "store"
	}
	if e.Offset >= 0 {
		return fmt.Sprintf("store: %s corrupt at byte %d: %s", where, e.Offset, e.Reason)
	}
	return fmt.Sprintf("store: %s corrupt: %s", where, e.Reason)
}

// VersionError reports a record or header written by a newer schema
// version than this binary understands. Downgrades are explicit — the
// operator migrates with sdpd -migrate-store instead of a silent
// misparse.
type VersionError struct {
	Got, Max int
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("store: record version %d newer than supported %d (migrate with a newer sdpd)", e.Got, e.Max)
}

// Options tunes durability behavior shared by the on-disk backends.
type Options struct {
	// SyncEvery groups fsyncs: the file is synced once every N appends
	// instead of on each one. 0 or 1 means per-entry sync (the default,
	// and the safest); Close and Compact always sync regardless, so a
	// cleanly shut down store loses nothing. Grouped sync trades up to
	// N-1 trailing records on power loss for an order of magnitude more
	// append throughput.
	SyncEvery int
}

// Interval normalizes SyncEvery to at least 1.
func (o Options) Interval() int {
	if o.SyncEvery < 1 {
		return 1
	}
	return o.SyncEvery
}

// Fold collapses a replayed history into its canonical live state — the
// shared compaction rule every backend and the migration path apply:
//
//   - add-ontology records come first, deduplicated by document, in
//     first-appearance order (advertisements need their code tables
//     before they can replay);
//   - then one register record per still-live service — the latest
//     document and version — in the order the services first went live
//     (a superseding register keeps its slot, a re-register after
//     deregister is a fresh arrival);
//   - deregister records of dropped services fold away entirely;
//   - records with unknown ops are preserved verbatim at the end, in
//     order, so a newer schema's data survives a round trip through an
//     older binary's compaction.
func Fold(history []Record) []Record {
	var ontologies []Record
	seenOnt := make(map[string]bool)
	var live []Record
	liveIdx := make(map[string]int)
	var unknown []Record
	for _, rec := range history {
		switch rec.Op {
		case OpAddOntology:
			if !seenOnt[rec.Doc] {
				seenOnt[rec.Doc] = true
				ontologies = append(ontologies, rec)
			}
		case OpRegister:
			name, ok := registerName(rec)
			if !ok {
				continue
			}
			if i, exists := liveIdx[name]; exists {
				live[i] = rec
				continue
			}
			liveIdx[name] = len(live)
			live = append(live, rec)
		case OpDeregister:
			i, exists := liveIdx[rec.Name]
			if !exists {
				continue
			}
			live = append(live[:i], live[i+1:]...)
			delete(liveIdx, rec.Name)
			for name, j := range liveIdx {
				if j > i {
					liveIdx[name] = j - 1
				}
			}
		default:
			unknown = append(unknown, rec)
		}
	}
	out := make([]Record, 0, len(ontologies)+len(live)+len(unknown))
	out = append(out, ontologies...)
	out = append(out, live...)
	out = append(out, unknown...)
	return out
}

// registerName extracts the service name a register record advertises.
// v2 records carry it explicitly; v1 journal lines only carried the
// document, so supersession falls back to the name="..." attribute of
// the document's root element — how every Amigo-S advertisement this
// repo produces names itself. Records whose document has no discernible
// name fold away (they cannot replay anyway).
func registerName(rec Record) (string, bool) {
	if rec.Name != "" {
		return rec.Name, true
	}
	const attr = `name="`
	doc := rec.Doc
	// Only look inside the root element's opening tag.
	end := strings.IndexByte(doc, '>')
	if end < 0 {
		return "", false
	}
	head := doc[:end]
	i := strings.Index(head, attr)
	if i < 0 {
		return "", false
	}
	rest := head[i+len(attr):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return "", false
	}
	return rest[:j], j > 0
}
