// Package filestore is the JSON-lines storage backend: the original sdpd
// journal refactored behind the store interface. One mutation per line,
// readable with standard tools, preceded (in files this version creates)
// by a schema-version header line. It adds what the bespoke journal
// lacked:
//
//   - torn-tail recovery: a crash mid-append leaves an incomplete final
//     line, which open detects, truncates away and reports instead of
//     letting it poison the next append;
//   - grouped sync: fsync every N appends instead of every one
//     (store.Options.SyncEvery), with per-entry sync the default;
//   - snapshot + compaction: the log is atomically rewritten to its
//     canonical folded state, so replay cost stops growing with history.
//
// Files written by the v1 journal (no header) open and replay unchanged;
// appends extend them with v2 records and the first compaction upgrades
// the file to the headered format.
package filestore

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"sariadne/internal/store"
)

// Store is a JSON-lines store over one file.
type Store struct {
	path      string
	syncEvery int

	mu        sync.Mutex
	f         *os.File // append handle, guarded by mu
	size      int64    // bytes of complete records (and header), guarded by mu
	pending   int      // appends since the last fsync, guarded by mu
	hasHeader bool     // file starts with a schema header line, guarded by mu
	tornTail  bool     // open dropped a torn tail, guarded by mu
	closed    bool     // guarded by mu
}

// Open opens (creating if needed) the store at path. A fresh file gets a
// schema-version header; an existing file is scanned for a torn tail,
// which is truncated away so the next append starts on a record
// boundary.
func Open(path string, opts store.Options) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("filestore: %w", err)
	}
	s := &Store{path: path, syncEvery: opts.Interval(), f: f}
	s.mu.Lock()
	err = s.recoverLocked()
	s.mu.Unlock()
	if err != nil {
		_ = f.Close() // the recovery failure is the diagnosis
		return nil, err
	}
	return s, nil
}

// recoverLocked initializes a fresh file or scans an existing one: header
// detection, torn-tail truncation, and positioning for appends.
func (s *Store) recoverLocked() error {
	info, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("filestore: %w", err)
	}
	if info.Size() == 0 {
		header := append(store.EncodeFileHeader(), '\n')
		if _, err := s.f.Write(header); err != nil {
			return fmt.Errorf("filestore: writing header: %w", err)
		}
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("filestore: syncing header: %w", err)
		}
		s.size = int64(len(header))
		s.hasHeader = true
		return nil
	}
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("filestore: %w", err)
	}
	r := bufio.NewReader(s.f)
	var offset int64
	first := true
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			// A final chunk without its newline is a torn record.
			if len(line) > 0 {
				s.tornTail = true
			}
			break
		}
		if err != nil {
			return fmt.Errorf("filestore: scanning %s: %w", s.path, err)
		}
		if first {
			first = false
			isHeader, err := store.DecodeFileHeader(line[:len(line)-1])
			if err != nil {
				return err // VersionError: a newer daemon's file
			}
			s.hasHeader = isHeader
		}
		offset += int64(len(line))
	}
	if s.tornTail {
		store.CountTornTail()
		if err := s.f.Truncate(offset); err != nil {
			return fmt.Errorf("filestore: truncating torn tail: %w", err)
		}
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("filestore: %w", err)
		}
	}
	s.size = offset
	if _, err := s.f.Seek(offset, io.SeekStart); err != nil {
		return fmt.Errorf("filestore: %w", err)
	}
	return nil
}

// Append implements store.Store. The write lands immediately; the fsync
// is issued every syncEvery appends (and always on Close and Compact).
func (s *Store) Append(rec store.Record) error {
	start := time.Now()
	data, err := store.EncodeRecord(rec)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return store.ErrClosed
	}
	if _, err := s.f.Write(data); err != nil {
		return fmt.Errorf("filestore: append: %w", err)
	}
	s.size += int64(len(data))
	s.pending++
	if s.pending >= s.syncEvery {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("filestore: sync: %w", err)
		}
		s.pending = 0
		store.CountSync()
	}
	store.CountAppend(start)
	return nil
}

// Replay implements store.Store. It reads a consistent prefix through an
// independent read handle, so appends may continue concurrently;
// complete lines that fail to decode are counted as skipped (legacy
// journals may contain junk — the v1 contract was to tolerate it).
func (s *Store) Replay(apply func(rec store.Record) error) (store.ReplayStats, error) {
	var stats store.ReplayStats
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return stats, store.ErrClosed
	}
	size := s.size
	hasHeader := s.hasHeader
	stats.TornTail = s.tornTail
	s.mu.Unlock()

	rf, err := os.Open(s.path)
	if err != nil {
		return stats, fmt.Errorf("filestore: replay: %w", err)
	}
	defer rf.Close()
	r := bufio.NewReader(io.LimitReader(rf, size))
	first := true
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			break
		}
		if err != nil {
			return stats, fmt.Errorf("filestore: replay: %w", err)
		}
		line = line[:len(line)-1]
		if first {
			first = false
			if hasHeader {
				continue
			}
		}
		if len(line) == 0 {
			continue
		}
		rec, err := store.DecodeRecord(line)
		if err != nil {
			stats.Skipped++
			continue
		}
		if err := apply(rec); err != nil {
			return stats, err
		}
		stats.Records++
	}
	store.CountReplayRecords(stats.Records)
	return stats, nil
}

// Snapshot implements store.Store.
func (s *Store) Snapshot() ([]store.Record, error) {
	var history []store.Record
	if _, err := s.Replay(func(rec store.Record) error {
		history = append(history, rec)
		return nil
	}); err != nil {
		return nil, err
	}
	return store.Fold(history), nil
}

// Compact implements store.Store: the canonical folded state is written
// to a temporary file, synced, and atomically renamed over the log. The
// lock is held throughout, so no append can land between reading the
// history and replacing it.
func (s *Store) Compact() error {
	return store.TimeCompact(func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.closed {
			return store.ErrClosed
		}
		history, err := s.scanLocked()
		if err != nil {
			return err
		}
		tmpPath := s.path + ".compact"
		tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return fmt.Errorf("filestore: compact: %w", err)
		}
		defer os.Remove(tmpPath) // no-op after the rename succeeds
		w := bufio.NewWriter(tmp)
		var size int64
		header := append(store.EncodeFileHeader(), '\n')
		n, err := w.Write(header)
		if err != nil {
			tmp.Close()
			return fmt.Errorf("filestore: compact: %w", err)
		}
		size += int64(n)
		for _, rec := range store.Fold(history) {
			data, err := store.EncodeRecord(rec)
			if err != nil {
				tmp.Close()
				return err
			}
			data = append(data, '\n')
			n, err := w.Write(data)
			if err != nil {
				tmp.Close()
				return fmt.Errorf("filestore: compact: %w", err)
			}
			size += int64(n)
		}
		if err := w.Flush(); err != nil {
			tmp.Close()
			return fmt.Errorf("filestore: compact: %w", err)
		}
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("filestore: compact: %w", err)
		}
		if err := tmp.Close(); err != nil {
			return fmt.Errorf("filestore: compact: %w", err)
		}
		if err := os.Rename(tmpPath, s.path); err != nil {
			return fmt.Errorf("filestore: compact: %w", err)
		}
		if err := syncDir(s.path); err != nil {
			return err
		}
		old := s.f
		f, err := os.OpenFile(s.path, os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("filestore: compact: reopening: %w", err)
		}
		if _, err := f.Seek(size, io.SeekStart); err != nil {
			f.Close()
			return fmt.Errorf("filestore: compact: %w", err)
		}
		if err := old.Close(); err != nil {
			// The rename already replaced the file; failing to close the
			// orphaned handle leaks a descriptor but loses nothing.
			f.Close()
			return fmt.Errorf("filestore: compact: closing old handle: %w", err)
		}
		s.f = f
		s.size = size
		s.pending = 0
		s.hasHeader = true
		s.tornTail = false
		return nil
	})
}

// scanLocked reads the current history (mu held) through an independent
// handle, mirroring Replay's lenient decoding.
func (s *Store) scanLocked() ([]store.Record, error) {
	rf, err := os.Open(s.path)
	if err != nil {
		return nil, fmt.Errorf("filestore: %w", err)
	}
	defer rf.Close()
	r := bufio.NewReader(io.LimitReader(rf, s.size))
	var history []store.Record
	first := true
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("filestore: %w", err)
		}
		line = line[:len(line)-1]
		if first {
			first = false
			if s.hasHeader {
				continue
			}
		}
		if len(line) == 0 {
			continue
		}
		rec, err := store.DecodeRecord(line)
		if err != nil {
			continue
		}
		history = append(history, rec)
	}
	return history, nil
}

// syncDir fsyncs the directory containing path, making a rename durable.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("filestore: syncing directory: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("filestore: syncing directory: %w", err)
	}
	return nil
}

// Close implements store.Store: outstanding appends are synced, then the
// handle is released. Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var syncErr error
	if s.pending > 0 {
		if syncErr = s.f.Sync(); syncErr == nil {
			store.CountSync()
		}
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("filestore: close: %w", err)
	}
	if syncErr != nil {
		return fmt.Errorf("filestore: close: %w", syncErr)
	}
	return nil
}

// Healthy implements store.Prober: a closed or deleted-out-from-under
// file fails the daemon's store probe.
func (s *Store) Healthy() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return store.ErrClosed
	}
	if _, err := s.f.Stat(); err != nil {
		return fmt.Errorf("filestore: %w", err)
	}
	return nil
}

var _ store.Store = (*Store)(nil)
var _ store.Prober = (*Store)(nil)
