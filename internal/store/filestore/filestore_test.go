package filestore_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sariadne/internal/store"
	"sariadne/internal/store/filestore"
	"sariadne/internal/store/storetest"
)

// fileMedium adapts a path on disk to the conformance suite's medium.
func fileMedium(t *testing.T, opts store.Options) storetest.Medium {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	return storetest.Medium{
		Open: func() (store.Store, error) { return filestore.Open(path, opts) },
		Truncate: func(n int64) error {
			info, err := os.Stat(path)
			if err != nil {
				return err
			}
			size := info.Size() - n
			if size < 0 {
				size = 0
			}
			return os.Truncate(path, size)
		},
	}
}

func TestConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) storetest.Medium {
		return fileMedium(t, store.Options{})
	})
}

func TestConformanceGroupedSync(t *testing.T) {
	storetest.Run(t, func(t *testing.T) storetest.Medium {
		return fileMedium(t, store.Options{SyncEvery: 8})
	})
}

// TestGroupedSyncRegression pins the grouped-fsync contract: with
// SyncEvery=N the file is synced once per N appends plus once at Close,
// and a clean close loses nothing.
func TestGroupedSyncRegression(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grouped.jsonl")
	s, err := filestore.Open(path, store.Options{SyncEvery: 4})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	var want []store.Record
	for i := 0; i < 10; i++ { // 10 appends: 2 full groups + 2 pending at close
		rec := store.Record{Op: store.OpRegister, Name: strings.Repeat("x", i+1), Doc: "<service/>", Version: 1}
		if err := s.Append(rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		want = append(want, rec)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	s, err = filestore.Open(path, store.Options{SyncEvery: 4})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() { _ = s.Close() }()
	var got []store.Record
	stats, err := s.Replay(func(rec store.Record) error {
		got = append(got, rec)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if stats.TornTail {
		t.Fatal("clean close reported a torn tail")
	}
	if len(got) != len(want) {
		t.Fatalf("clean close lost records: replayed %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestTornTailPartialRecord pins the torn-tail behavior at the byte
// level: a file ending in half a record opens, reports the tear, and
// replays only the complete records.
func TestTornTailPartialRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.jsonl")
	whole := `{"v":2,"op":"register","doc":"<service name=\"a\"/>","name":"a","ver":1}` + "\n"
	torn := `{"v":2,"op":"register","doc":"<service nam` // crash mid-write: no newline
	if err := os.WriteFile(path, []byte(string(store.EncodeFileHeader())+"\n"+whole+torn), 0o644); err != nil {
		t.Fatalf("writing fixture: %v", err)
	}
	s, err := filestore.Open(path, store.Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer func() { _ = s.Close() }()
	var got []store.Record
	stats, err := s.Replay(func(rec store.Record) error {
		got = append(got, rec)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !stats.TornTail {
		t.Fatal("torn tail not reported")
	}
	if len(got) != 1 || got[0].Name != "a" {
		t.Fatalf("replayed %v, want the one whole record", got)
	}
	// The torn bytes are gone from disk: a fresh append must not collide.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if strings.Contains(string(data), "nam") && !strings.Contains(string(data), `name=\"a\"`) {
		t.Fatalf("torn bytes survived on disk: %q", data)
	}
	if strings.HasSuffix(string(data), "nam") {
		t.Fatalf("torn tail still present: %q", data)
	}
}

// TestLegacyJournalCompatibility proves a v1 journal (no header, HTML-
// escaped docs, junk tolerated) opens and replays under filestore — the
// old journal_test contract carried forward.
func TestLegacyJournalCompatibility(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.jsonl")
	lines := strings.Join([]string{
		`{"op":"add-ontology","doc":"<ontology uri=\"u1\"/>"}`,
		`not json at all`,
		`{"op":"register","doc":"<service name=\"legacy\"/>"}`,
		`{"weird":"shape"}`, // decodes to no op: skipped
	}, "\n") + "\n"
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatalf("writing fixture: %v", err)
	}
	s, err := filestore.Open(path, store.Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer func() { _ = s.Close() }()
	var got []store.Record
	stats, err := s.Replay(func(rec store.Record) error {
		got = append(got, rec)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if stats.Records != 2 || stats.Skipped != 2 {
		t.Fatalf("stats = %+v, want 2 records and 2 skipped", stats)
	}
	if got[0].Op != store.OpAddOntology || got[0].Doc != `<ontology uri="u1"/>` {
		t.Fatalf("ontology record = %+v", got[0])
	}
	if got[1].Op != store.OpRegister || got[1].Doc != `<service name="legacy"/>` {
		t.Fatalf("register record = %+v", got[1])
	}
}
