package store_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sariadne/internal/ontology"
	"sariadne/internal/profile"
	"sariadne/internal/store"
	"sariadne/internal/store/boltlike"
	"sariadne/internal/store/filestore"
)

var update = flag.Bool("update", false, "rewrite the migration golden files (and the v1 fixture)")

// v1Entry reproduces the original journalEntry wire shape so the checked-
// in fixture is byte-for-byte what an old sdpd wrote (including
// json.Marshal's HTML escaping of the XML payloads).
type v1Entry struct {
	Op   string `json:"op"`
	Doc  string `json:"doc,omitempty"`
	Name string `json:"name,omitempty"`
}

// v1Fixture builds the legacy journal: two ontology uploads, a
// registration, a register/deregister pair, a junk line, and a torn
// final record — every hazard the migration path must absorb.
func v1Fixture(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	add := func(e v1Entry) {
		data, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(data)
		buf.WriteByte('\n')
	}
	for _, o := range []*ontology.Ontology{profile.MediaOntology(), profile.ServersOntology()} {
		doc, err := ontology.Marshal(o)
		if err != nil {
			t.Fatal(err)
		}
		add(v1Entry{Op: "add-ontology", Doc: string(doc)})
	}
	ws, err := profile.Marshal(profile.WorkstationService())
	if err != nil {
		t.Fatal(err)
	}
	add(v1Entry{Op: "register", Doc: string(ws)})
	transient := profile.WorkstationService()
	transient.Name = "Transient"
	trDoc, err := profile.Marshal(transient)
	if err != nil {
		t.Fatal(err)
	}
	add(v1Entry{Op: "register", Doc: string(trDoc)})
	add(v1Entry{Op: "deregister", Name: "Transient"})
	buf.WriteString("not json at all\n")
	// A crash mid-append: half a record, no newline.
	pda, err := profile.Marshal(profile.PDAService())
	if err != nil {
		t.Fatal(err)
	}
	torn, err := json.Marshal(v1Entry{Op: "register", Doc: string(pda)})
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(torn[:len(torn)/2])
	return buf.Bytes()
}

// fixturePath returns the checked-in v1 journal, regenerating it under
// -update and verifying it matches the generator otherwise (the fixture
// is itself golden: it must stay what the old code wrote).
func fixturePath(t *testing.T) string {
	t.Helper()
	path := filepath.Join("testdata", "v1_journal.jsonl")
	want := v1Fixture(t)
	if *update {
		if err := os.WriteFile(path, want, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading fixture (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("checked-in v1 fixture drifted from the legacy format (regenerate with -update)")
	}
	return path
}

// checkGolden compares got against the checked-in golden, rewriting it
// under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden %s (regenerate with -update): %v", name, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: migration output is not byte-identical to the golden file\n got %d bytes\nwant %d bytes", name, len(got), len(want))
	}
}

// migrateFixture copies the v1 fixture to a scratch dir (opening mutates
// the file: the torn tail is truncated), migrates it into dst, and
// checks the migration stats.
func migrateFixture(t *testing.T, dst store.Store) {
	t.Helper()
	data, err := os.ReadFile(fixturePath(t))
	if err != nil {
		t.Fatal(err)
	}
	srcPath := filepath.Join(t.TempDir(), "v1.jsonl")
	if err := os.WriteFile(srcPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := filestore.Open(srcPath, store.Options{})
	if err != nil {
		t.Fatalf("opening v1 journal: %v", err)
	}
	defer func() { _ = src.Close() }()
	stats, err := store.Migrate(src, dst)
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}
	// 5 good records, 1 junk line, 1 torn record; 2 ontologies + the one
	// live service survive the fold.
	want := store.MigrateStats{Replayed: 5, Skipped: 1, TornTail: true, Live: 3}
	if stats != want {
		t.Fatalf("stats = %+v, want %+v", stats, want)
	}
}

// TestMigrateV1GoldenJSONL is the journal→v2 upgrade path pinned to the
// byte: the same v1 journal must always produce the identical canonical
// v2 store.
func TestMigrateV1GoldenJSONL(t *testing.T) {
	run := func(t *testing.T) []byte {
		dstPath := filepath.Join(t.TempDir(), "v2.jsonl")
		dst, err := filestore.Open(dstPath, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		migrateFixture(t, dst)
		if err := dst.Close(); err != nil {
			t.Fatal(err)
		}
		out, err := os.ReadFile(dstPath)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	out := run(t)
	checkGolden(t, "v2_migrated.golden.jsonl", out)
	// Determinism: a second migration of the same journal is identical.
	if again := run(t); !bytes.Equal(out, again) {
		t.Fatal("two migrations of the same journal produced different bytes")
	}
}

// TestMigrateV1GoldenBolt pins the same upgrade into the binary backend.
func TestMigrateV1GoldenBolt(t *testing.T) {
	dstPath := filepath.Join(t.TempDir(), "v2.bolt")
	dst, err := boltlike.Open(dstPath, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	migrateFixture(t, dst)
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(dstPath)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "v2_migrated.golden.bolt", out)
}
