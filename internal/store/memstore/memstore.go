// Package memstore is the in-memory storage backend: the same JSON-lines
// log as filestore, kept in a byte buffer instead of a file. It exists
// for tests, sdpsim and ephemeral daemons (sdpd -store mem) — and because
// it shares the real codec and a truncatable medium, it passes the full
// conformance suite including the injected-truncation crash cases, so
// test doubles exercise exactly the production semantics.
package memstore

import (
	"bytes"
	"sync"
	"time"

	"sariadne/internal/store"
)

// Medium is the in-memory byte log a Store persists into. It outlives
// any one Store handle the way a file outlives a process: closing a
// store and reopening the medium replays the same history. Tests inject
// crashes by truncating it between sessions.
type Medium struct {
	mu  sync.Mutex
	buf []byte // guarded by mu
}

// NewMedium returns an empty in-memory log.
func NewMedium() *Medium { return &Medium{} }

// Len returns the current log size in bytes.
func (m *Medium) Len() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int64(len(m.buf))
}

// Truncate drops the last n bytes of the log — the in-memory analogue of
// a crash tearing the tail of a file mid-write.
func (m *Medium) Truncate(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n >= int64(len(m.buf)) {
		m.buf = nil
		return
	}
	m.buf = m.buf[:int64(len(m.buf))-n]
}

// Store is one open session over a Medium.
type Store struct {
	med *Medium

	mu       sync.Mutex
	closed   bool // guarded by mu
	tornTail bool // guarded by mu; open dropped an incomplete trailing line
}

// New returns a store over a fresh private medium — the common case for
// tests that do not exercise reopen.
func New() *Store {
	s, err := Open(NewMedium())
	if err != nil {
		// An empty medium cannot fail to open.
		panic(err)
	}
	return s
}

// Open starts a session over med, recovering from a torn tail the way
// filestore does: the bytes after the last complete line are dropped.
func Open(med *Medium) (*Store, error) {
	s := &Store{med: med}
	med.mu.Lock()
	defer med.mu.Unlock()
	if i := bytes.LastIndexByte(med.buf, '\n'); i < len(med.buf)-1 {
		med.buf = med.buf[:i+1]
		s.tornTail = true
		store.CountTornTail()
	}
	return s, nil
}

// Append implements store.Store.
func (s *Store) Append(rec store.Record) error {
	start := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return store.ErrClosed
	}
	data, err := store.EncodeRecord(rec)
	if err != nil {
		return err
	}
	s.med.mu.Lock()
	s.med.buf = append(s.med.buf, data...)
	s.med.buf = append(s.med.buf, '\n')
	s.med.mu.Unlock()
	store.CountAppend(start)
	store.CountSync() // memory is always "synced"
	return nil
}

// snapshotBuf copies the current log so decoding happens outside the
// medium lock and concurrent appends extend past a consistent prefix.
func (s *Store) snapshotBuf() ([]byte, error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, store.ErrClosed
	}
	s.med.mu.Lock()
	defer s.med.mu.Unlock()
	return append([]byte(nil), s.med.buf...), nil
}

// Replay implements store.Store.
func (s *Store) Replay(apply func(rec store.Record) error) (store.ReplayStats, error) {
	var stats store.ReplayStats
	buf, err := s.snapshotBuf()
	if err != nil {
		return stats, err
	}
	s.mu.Lock()
	stats.TornTail = s.tornTail
	s.mu.Unlock()
	for _, line := range bytes.Split(buf, []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		rec, err := store.DecodeRecord(line)
		if err != nil {
			stats.Skipped++
			continue
		}
		if err := apply(rec); err != nil {
			return stats, err
		}
		stats.Records++
	}
	store.CountReplayRecords(stats.Records)
	return stats, nil
}

// Snapshot implements store.Store.
func (s *Store) Snapshot() ([]store.Record, error) {
	var history []store.Record
	if _, err := s.Replay(func(rec store.Record) error {
		history = append(history, rec)
		return nil
	}); err != nil {
		return nil, err
	}
	return store.Fold(history), nil
}

// Compact implements store.Store: the medium is rebuilt from the folded
// state. Both locks are held across the fold and the swap so no
// concurrent append lands between reading the history and replacing it.
func (s *Store) Compact() error {
	return store.TimeCompact(func() error {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.closed {
			return store.ErrClosed
		}
		s.med.mu.Lock()
		defer s.med.mu.Unlock()
		var history []store.Record
		for _, line := range bytes.Split(s.med.buf, []byte{'\n'}) {
			if len(line) == 0 {
				continue
			}
			rec, err := store.DecodeRecord(line)
			if err != nil {
				continue // junk lines fold away
			}
			history = append(history, rec)
		}
		var buf []byte
		for _, rec := range store.Fold(history) {
			data, err := store.EncodeRecord(rec)
			if err != nil {
				return err
			}
			buf = append(buf, data...)
			buf = append(buf, '\n')
		}
		s.med.buf = buf
		s.tornTail = false
		return nil
	})
}

// Close implements store.Store. Closing is idempotent; the medium keeps
// the history for a later Open.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// Healthy implements store.Prober.
func (s *Store) Healthy() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return store.ErrClosed
	}
	return nil
}

var _ store.Store = (*Store)(nil)
var _ store.Prober = (*Store)(nil)
