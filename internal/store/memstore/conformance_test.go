package memstore_test

import (
	"testing"

	"sariadne/internal/store"
	"sariadne/internal/store/memstore"
	"sariadne/internal/store/storetest"
)

func TestConformance(t *testing.T) {
	storetest.Run(t, func(t *testing.T) storetest.Medium {
		med := memstore.NewMedium()
		return storetest.Medium{
			Open: func() (store.Store, error) { return memstore.Open(med) },
			Truncate: func(n int64) error {
				med.Truncate(n)
				return nil
			},
		}
	})
}
