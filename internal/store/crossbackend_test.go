package store_test

import (
	"path/filepath"
	"reflect"
	"testing"

	"sariadne/internal/store"
	"sariadne/internal/store/boltlike"
	"sariadne/internal/store/filestore"
	"sariadne/internal/store/memstore"
)

// openAll returns one fresh store per backend, closed via t.Cleanup.
func openAll(t *testing.T) map[string]store.Store {
	t.Helper()
	dir := t.TempDir()
	fs, err := filestore.Open(filepath.Join(dir, "s.jsonl"), store.Options{})
	if err != nil {
		t.Fatalf("filestore: %v", err)
	}
	bs, err := boltlike.Open(filepath.Join(dir, "s.bolt"), store.Options{})
	if err != nil {
		t.Fatalf("boltlike: %v", err)
	}
	all := map[string]store.Store{"mem": memstore.New(), "jsonl": fs, "bolt": bs}
	t.Cleanup(func() {
		for _, s := range all {
			_ = s.Close()
		}
	})
	return all
}

// TestCrossBackendReplayEquivalence is the interchangeability contract:
// the same history appended to every backend replays and snapshots
// identically, so `sdpd -store` is a pure deployment choice.
func TestCrossBackendReplayEquivalence(t *testing.T) {
	history := []store.Record{
		{Op: store.OpAddOntology, Doc: `<ontology uri="u1"/>`},
		{Op: store.OpRegister, Name: "alpha", Doc: `<service name="alpha"/>`, Version: 1},
		{Op: store.OpRegister, Name: "beta", Doc: `<service name="beta"/>`, Version: 1},
		{Op: store.OpRegister, Name: "alpha", Doc: `<service name="alpha" provider="p"/>`, Version: 2},
		{Op: store.OpDeregister, Name: "beta"},
	}
	all := openAll(t)
	replays := make(map[string][]store.Record)
	snapshots := make(map[string][]store.Record)
	for name, s := range all {
		for i, rec := range history {
			if err := s.Append(rec); err != nil {
				t.Fatalf("%s append %d: %v", name, i, err)
			}
		}
		var recs []store.Record
		if _, err := s.Replay(func(rec store.Record) error {
			recs = append(recs, rec)
			return nil
		}); err != nil {
			t.Fatalf("%s replay: %v", name, err)
		}
		replays[name] = recs
		snap, err := s.Snapshot()
		if err != nil {
			t.Fatalf("%s snapshot: %v", name, err)
		}
		snapshots[name] = snap
	}
	for name, recs := range replays {
		if !reflect.DeepEqual(recs, history) {
			t.Fatalf("%s replay diverged:\n got %+v\nwant %+v", name, recs, history)
		}
	}
	want := store.Fold(history)
	for name, snap := range snapshots {
		if !reflect.DeepEqual(snap, want) {
			t.Fatalf("%s snapshot diverged:\n got %+v\nwant %+v", name, snap, want)
		}
	}
}

// TestMigrateBetweenBackends moves a history through every ordered pair
// of backends: the destination must hold exactly the folded source
// state.
func TestMigrateBetweenBackends(t *testing.T) {
	history := []store.Record{
		{Op: store.OpAddOntology, Doc: `<ontology uri="u1"/>`},
		{Op: store.OpRegister, Name: "alpha", Doc: `<service name="alpha"/>`, Version: 1},
		{Op: store.OpRegister, Name: "gone", Doc: `<service name="gone"/>`, Version: 1},
		{Op: store.OpDeregister, Name: "gone"},
	}
	want := store.Fold(history)
	for _, srcKind := range []string{"mem", "jsonl", "bolt"} {
		for _, dstKind := range []string{"mem", "jsonl", "bolt"} {
			if srcKind == dstKind {
				continue
			}
			t.Run(srcKind+"_to_"+dstKind, func(t *testing.T) {
				all := openAll(t)
				src, dst := all[srcKind], all[dstKind]
				for i, rec := range history {
					if err := src.Append(rec); err != nil {
						t.Fatalf("append %d: %v", i, err)
					}
				}
				stats, err := store.Migrate(src, dst)
				if err != nil {
					t.Fatalf("migrate: %v", err)
				}
				if stats.Replayed != len(history) || stats.Live != len(want) {
					t.Fatalf("stats = %+v, want %d replayed / %d live", stats, len(history), len(want))
				}
				var got []store.Record
				if _, err := dst.Replay(func(rec store.Record) error {
					got = append(got, rec)
					return nil
				}); err != nil {
					t.Fatalf("destination replay: %v", err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("destination holds %+v, want %+v", got, want)
				}
			})
		}
	}
}

func TestMigrateRefusesNonEmptyDestination(t *testing.T) {
	all := openAll(t)
	src, dst := all["mem"], all["jsonl"]
	if err := src.Append(store.Record{Op: store.OpRegister, Name: "a", Doc: `<service name="a"/>`, Version: 1}); err != nil {
		t.Fatal(err)
	}
	if err := dst.Append(store.Record{Op: store.OpRegister, Name: "b", Doc: `<service name="b"/>`, Version: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Migrate(src, dst); err != store.ErrDestinationNotEmpty {
		t.Fatalf("migrate into non-empty destination = %v, want ErrDestinationNotEmpty", err)
	}
}
