package store

import (
	"bytes"
	"fmt"
	"io"
	"os"
)

// Kind names a storage backend.
type Kind string

// The built-in backends.
const (
	KindMem   Kind = "mem"   // volatile in-memory log
	KindJSONL Kind = "jsonl" // JSON-lines file (v1 journal or v2 headered)
	KindBolt  Kind = "bolt"  // embedded binary log-structured store
)

// BoltMagic is the file magic of the boltlike backend, shared here so
// Detect does not import the backend packages (they import store).
var BoltMagic = []byte("SDPBOLT\x01")

// Detect sniffs the on-disk format of an existing store file: the
// boltlike magic, a v2 JSON-lines header, or (for any other non-empty
// content) a headerless v1 journal. A missing or empty file detects as
// KindJSONL — the default format a fresh daemon creates.
func Detect(path string) (Kind, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return KindJSONL, nil
		}
		return "", fmt.Errorf("store: detect: %w", err)
	}
	defer f.Close()
	buf := make([]byte, len(BoltMagic))
	n, _ := io.ReadFull(f, buf)
	if n == len(BoltMagic) && bytes.Equal(buf, BoltMagic) {
		return KindBolt, nil
	}
	// Anything else — headered v2, headerless v1, even a short or empty
	// file — is JSON lines.
	return KindJSONL, nil
}
