package store_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sariadne/internal/store"
)

func TestFold(t *testing.T) {
	ontA := store.Record{Op: store.OpAddOntology, Doc: `<ontology uri="a"/>`}
	ontB := store.Record{Op: store.OpAddOntology, Doc: `<ontology uri="b"/>`}
	regX1 := store.Record{Op: store.OpRegister, Name: "x", Doc: `<service name="x"/>`, Version: 1}
	regX2 := store.Record{Op: store.OpRegister, Name: "x", Doc: `<service name="x" provider="p"/>`, Version: 2}
	regY := store.Record{Op: store.OpRegister, Name: "y", Doc: `<service name="y"/>`, Version: 1}
	deregX := store.Record{Op: store.OpDeregister, Name: "x"}
	deregY := store.Record{Op: store.OpDeregister, Name: "y"}
	unknown := store.Record{Op: "checkpoint", Doc: "opaque"}

	cases := []struct {
		name    string
		history []store.Record
		want    []store.Record
	}{
		{"empty", nil, []store.Record{}},
		{"ontologies dedupe in order", []store.Record{ontB, ontA, ontB}, []store.Record{ontB, ontA}},
		{"supersede keeps slot", []store.Record{regX1, regY, regX2}, []store.Record{regX2, regY}},
		{"deregister folds away", []store.Record{regX1, regY, deregX}, []store.Record{regY}},
		{"re-register after deregister is a fresh arrival", []store.Record{regX1, regY, deregX, regX2}, []store.Record{regY, regX2}},
		{"ontologies precede services", []store.Record{regX1, ontA}, []store.Record{ontA, regX1}},
		{"unknown ops preserved at end", []store.Record{unknown, regX1, ontA}, []store.Record{ontA, regX1, unknown}},
		{"deregister of unknown name ignored", []store.Record{regX1, deregY}, []store.Record{regX1}},
		{"everything deregistered", []store.Record{regX1, regY, deregX, deregY}, []store.Record{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := store.Fold(tc.history)
			if len(got) == 0 && len(tc.want) == 0 {
				return
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("Fold = %+v\nwant %+v", got, tc.want)
			}
		})
	}
}

// TestFoldV1NameSniffing pins supersession for v1 records, which carry
// no explicit name: the doc's root-element name attribute identifies
// the advertisement.
func TestFoldV1NameSniffing(t *testing.T) {
	first := store.Record{Op: store.OpRegister, Doc: `<service name="cam" provider="hall"><provided/></service>`}
	second := store.Record{Op: store.OpRegister, Doc: `<service name="cam" provider="porch"><provided/></service>`}
	got := store.Fold([]store.Record{first, second})
	if len(got) != 1 || got[0] != second {
		t.Fatalf("v1 supersession failed: %+v", got)
	}
	// A v1 deregister matches the sniffed name.
	got = store.Fold([]store.Record{first, {Op: store.OpDeregister, Name: "cam"}})
	if len(got) != 0 {
		t.Fatalf("v1 deregister failed: %+v", got)
	}
	// A nameless register folds away — it could never replay.
	got = store.Fold([]store.Record{{Op: store.OpRegister, Doc: `<malformed`}})
	if len(got) != 0 {
		t.Fatalf("nameless register survived the fold: %+v", got)
	}
	// name="..." beyond the root tag must not be mistaken for the service
	// name.
	got = store.Fold([]store.Record{{Op: store.OpRegister, Doc: `<service id="1"><capability name="video"/></service>`}})
	if len(got) != 0 {
		t.Fatalf("nested attribute sniffed as service name: %+v", got)
	}
}

func TestOptionsInterval(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{-1, 1}, {0, 1}, {1, 1}, {64, 64}} {
		if got := (store.Options{SyncEvery: tc.in}).Interval(); got != tc.want {
			t.Errorf("Interval(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestDetect(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cases := []struct {
		name string
		path string
		want store.Kind
	}{
		{"missing file", filepath.Join(dir, "absent"), store.KindJSONL},
		{"empty file", write("empty", nil), store.KindJSONL},
		{"bolt store", write("bolt", append(append([]byte(nil), store.BoltMagic...), 0, 0, 0, 2)), store.KindBolt},
		{"v2 jsonl", write("v2", append(store.EncodeFileHeader(), '\n')), store.KindJSONL},
		{"v1 journal", write("v1", []byte(`{"op":"register","doc":"x"}`+"\n")), store.KindJSONL},
		{"short non-magic", write("short", []byte("hi")), store.KindJSONL},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := store.Detect(tc.path)
			if err != nil {
				t.Fatalf("Detect: %v", err)
			}
			if got != tc.want {
				t.Fatalf("Detect = %q, want %q", got, tc.want)
			}
		})
	}
}

func TestCorruptErrorMessage(t *testing.T) {
	e := &store.CorruptError{Path: "/tmp/s", Offset: 42, Reason: "bad crc"}
	if msg := e.Error(); msg != "store: /tmp/s corrupt at byte 42: bad crc" {
		t.Fatalf("message = %q", msg)
	}
	e = &store.CorruptError{Offset: -1, Reason: "bad magic"}
	if msg := e.Error(); msg != "store: store corrupt: bad magic" {
		t.Fatalf("message = %q", msg)
	}
}
