package store

import (
	"errors"
	"fmt"
)

// MigrateStats reports what a migration moved.
type MigrateStats struct {
	// Replayed is the number of records read from the source history.
	Replayed int
	// Skipped counts undecodable source entries tolerated by the source
	// backend (junk lines in a legacy journal).
	Skipped int
	// TornTail reports the source history ended in a crash-torn record.
	TornTail bool
	// Live is the number of canonical records written to the destination
	// — the folded state, not the raw history.
	Live int
}

// ErrDestinationNotEmpty guards migrations from clobbering an existing
// history: the destination store must replay zero records.
var ErrDestinationNotEmpty = errors.New("store: migration destination is not empty")

// Migrate folds the source store's history into its canonical state and
// writes it to the (empty) destination store: the journal→v2 upgrade
// path, and the generic cross-backend mover. The destination is synced
// via its own Append contract; neither store is closed.
//
// Migration writes the *folded* state, so the destination replays in
// canonical order and byte-identical output is guaranteed for identical
// source state — the golden-file property.
func Migrate(src, dst Store) (MigrateStats, error) {
	var stats MigrateStats
	probe, err := dst.Replay(func(Record) error { return nil })
	if err != nil {
		return stats, fmt.Errorf("store: migrate: probing destination: %w", err)
	}
	if probe.Records > 0 || probe.Skipped > 0 {
		return stats, ErrDestinationNotEmpty
	}
	var history []Record
	srcStats, err := src.Replay(func(rec Record) error {
		history = append(history, rec)
		return nil
	})
	stats.Replayed = srcStats.Records
	stats.Skipped = srcStats.Skipped
	stats.TornTail = srcStats.TornTail
	if err != nil {
		return stats, fmt.Errorf("store: migrate: reading source: %w", err)
	}
	canonical := Fold(history)
	for _, rec := range canonical {
		if err := dst.Append(rec); err != nil {
			return stats, fmt.Errorf("store: migrate: writing destination: %w", err)
		}
		stats.Live++
	}
	return stats, nil
}
