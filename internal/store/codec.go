// The on-disk record codec. Two schema versions exist:
//
//	v1 — the original sdpd journal line: {"op":...,"doc":...,"name":...}
//	     with no version marker. Still decoded forever, so any journal
//	     written by an older daemon replays unchanged.
//	v2 — the current record: {"v":2,"op":...,...,"ver":N}. The leading
//	     "v" field names the schema; "ver" is the advertisement version
//	     the directory assigned.
//
// Encoding always writes the current version. Decoding accepts any
// version up to the current one and fails newer ones with a typed
// VersionError, so a rollback cannot silently misread records. The
// encoder goes through encoding/json with a fixed field order, making
// encoded bytes deterministic — the property the golden migration test
// and byte-stable canonical snapshots rest on.
package store

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// RecordVersion is the schema version EncodeRecord writes.
const RecordVersion = 2

// wireRecord is the serialized form: Record plus the schema marker. The
// field order here is the on-disk field order.
type wireRecord struct {
	V    int    `json:"v,omitempty"`
	Op   Op     `json:"op"`
	Doc  string `json:"doc,omitempty"`
	Name string `json:"name,omitempty"`
	Ver  uint64 `json:"ver,omitempty"`
	// Tenant rides at the end with omitempty, so tenant-less records
	// encode byte-identically to pre-tenancy daemons (golden migration
	// files stay valid) and old daemons decoding a tenant-stamped record
	// simply drop the field.
	Tenant string `json:"tenant,omitempty"`
}

// EncodeRecord serializes one record as a current-version JSON line
// (without the trailing newline). Encoding is deterministic: the same
// record always yields the same bytes.
func EncodeRecord(rec Record) ([]byte, error) {
	if rec.Op == "" {
		return nil, fmt.Errorf("store: encode: record has no op")
	}
	data, err := json.Marshal(wireRecord{
		V:      RecordVersion,
		Op:     rec.Op,
		Doc:    rec.Doc,
		Name:   rec.Name,
		Ver:    rec.Version,
		Tenant: rec.Tenant,
	})
	if err != nil {
		return nil, fmt.Errorf("store: encode: %w", err)
	}
	return data, nil
}

// DecodeRecord parses one serialized record of any supported schema
// version. A record from a newer schema fails with *VersionError; any
// other malformed input fails with a plain error (backends decide
// whether that is a skippable legacy line or corruption).
func DecodeRecord(data []byte) (Record, error) {
	var w wireRecord
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(&w); err != nil {
		return Record{}, fmt.Errorf("store: decode: %w", err)
	}
	// A second JSON value on the line means this is not one record.
	if dec.More() {
		return Record{}, fmt.Errorf("store: decode: trailing data after record")
	}
	if w.V > RecordVersion {
		return Record{}, &VersionError{Got: w.V, Max: RecordVersion}
	}
	if w.Op == "" {
		return Record{}, fmt.Errorf("store: decode: record has no op")
	}
	return Record{Op: w.Op, Doc: w.Doc, Name: w.Name, Version: w.Ver, Tenant: w.Tenant}, nil
}

// fileHeader is the first line of a v2 JSON-lines store file. The format
// tag keeps Detect honest; the version gates decoding.
type fileHeader struct {
	Format  string `json:"format"`
	Version int    `json:"v"`
}

// FileFormat is the format tag in the JSON-lines store header.
const FileFormat = "sdp-store"

// EncodeFileHeader renders the header line (without trailing newline)
// for a freshly created JSON-lines store.
func EncodeFileHeader() []byte {
	data, err := json.Marshal(fileHeader{Format: FileFormat, Version: RecordVersion})
	if err != nil {
		// Marshal of a two-field struct cannot fail.
		panic(err)
	}
	return data
}

// DecodeFileHeader reports whether line is a store file header and, if
// so, whether its version is supported.
func DecodeFileHeader(line []byte) (isHeader bool, err error) {
	var h fileHeader
	if json.Unmarshal(line, &h) != nil || h.Format != FileFormat {
		return false, nil
	}
	if h.Version > RecordVersion {
		return true, &VersionError{Got: h.Version, Max: RecordVersion}
	}
	return true, nil
}
