package store_test

import (
	"errors"
	"testing"

	"sariadne/internal/store"
)

// FuzzDecodeRecord hammers the versioned record codec with arbitrary
// bytes. Invariants: decoding never panics; anything that decodes
// re-encodes and decodes back to the same record (v1 lines normalize to
// v2 losslessly); version rejections are typed.
func FuzzDecodeRecord(f *testing.F) {
	// Real v1 journal lines (json.Marshal HTML-escapes angle brackets).
	f.Add([]byte(`{"op":"register","doc":"<service name=\"MediaWorkstation\" provider=\"livingroom-pc\"></service>"}`))
	f.Add([]byte(`{"op":"deregister","name":"Transient"}`))
	f.Add([]byte(`{"op":"add-ontology","doc":"<ontology uri=\"u\"></ontology>"}`))
	// Current v2 lines.
	f.Add([]byte(`{"v":2,"op":"register","doc":"<service name=\"a\"/>","name":"a","ver":3}`))
	f.Add([]byte(`{"v":2,"op":"deregister","name":"a"}`))
	// Hostile shapes.
	f.Add([]byte(`{"v":99,"op":"register","doc":"x"}`))
	f.Add([]byte(`{"op":"register"} {"op":"register"}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Add([]byte(`{"op":""}`))
	f.Add([]byte("{\"op\":\"register\",\"doc\":\"\x00\xff\"}"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := store.DecodeRecord(data)
		if err != nil {
			var ver *store.VersionError
			if errors.As(err, &ver) && ver.Got <= store.RecordVersion {
				t.Fatalf("VersionError for supported version %d", ver.Got)
			}
			return
		}
		if rec.Op == "" {
			t.Fatalf("decode accepted a record with no op: %q", data)
		}
		// Round trip: whatever decodes must survive re-encoding.
		encoded, err := store.EncodeRecord(rec)
		if err != nil {
			t.Fatalf("re-encoding decoded record %+v: %v", rec, err)
		}
		again, err := store.DecodeRecord(encoded)
		if err != nil {
			t.Fatalf("decoding re-encoded record %s: %v", encoded, err)
		}
		if again != rec {
			t.Fatalf("round trip diverged: %+v -> %s -> %+v", rec, encoded, again)
		}
	})
}
