package discovery

import (
	"context"
	"testing"
	"time"

	"sariadne/internal/bloom"
	"sariadne/internal/election"
	"sariadne/internal/simnet"
)

// TestSelectForwardTargetsDeterministic: with identical hop counts and no
// Bloom filters to discriminate, the ranking must fall back to NodeID
// order — retries, hedging and seeded chaos runs all assume the target
// list does not depend on map iteration order.
func TestSelectForwardTargetsDeterministic(t *testing.T) {
	net := simnet.New(simnet.Config{})
	t.Cleanup(net.Close)
	ep, err := net.AddNode("n0")
	if err != nil {
		t.Fatal(err)
	}
	node := NewNode(ep, NewSemanticBackend(fixtureRegistry(t)), Config{MaxForwardPeers: 2})
	node.mu.Lock()
	for _, id := range []simnet.NodeID{"pz", "pa", "pm", "pc", "pq"} {
		node.peers[id] = &peerState{hops: 3} // equal scores on purpose
	}
	node.mu.Unlock()

	doc := pdaRequestDoc(t)
	wantTargets := []simnet.NodeID{"pa", "pc"}
	wantSpares := []simnet.NodeID{"pm", "pq", "pz"}
	for run := 0; run < 25; run++ {
		targets, spares, pruned := node.selectForwardTargets(doc)
		if len(pruned) != 0 {
			t.Fatalf("run %d: pruned %v with no filters set", run, pruned)
		}
		for i, id := range wantTargets {
			if targets[i] != id {
				t.Fatalf("run %d: targets = %v, want %v", run, targets, wantTargets)
			}
		}
		for i, id := range wantSpares {
			if spares[i] != id {
				t.Fatalf("run %d: spares = %v, want %v", run, spares, wantSpares)
			}
		}
	}
}

// hedgeHarness wires the entry directory n0 against three leaves on a
// star: n1 (controlled by the test, never a real node), and real
// directories n2 and n3, both holding the workstation advertisement.
// With equal hop counts the deterministic NodeID ranking makes n1 and n2
// the two MaxForwardPeers targets and n3 the hedge spare.
func hedgeHarness(t *testing.T, cfg Config) (*simnet.Network, *simnet.Endpoint, []*Node) {
	t.Helper()
	leakCheck(t)
	net := simnet.New(simnet.Config{})
	t.Cleanup(net.Close)
	eps, err := simnet.BuildStar(net, "n", 4)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(i int) *Node {
		n := NewNode(eps[i], NewSemanticBackend(fixtureRegistry(t)), cfg)
		n.Start(context.Background())
		t.Cleanup(n.Stop)
		n.BecomeDirectory()
		return n
	}
	nodes := []*Node{mk(0), nil, mk(2), mk(3)}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	for _, i := range []int{2, 3} {
		if err := nodes[i].Publish(ctx, workstationDoc(t)); err != nil {
			t.Fatal(err)
		}
	}
	// The fake peer n1 introduces itself with a summary that admits the
	// request key, so n0 ranks it as a viable target.
	key, err := nodes[0].backend.RequestKey(pdaRequestDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	fake := bloom.MustNew(64, 2)
	fake.Add(key)
	if err := eps[1].Send("n0", SummaryPush{From: "n1", Filter: fake.Marshal(), Count: 1}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 3*time.Second, "n0 knows all three peers with usable summaries", func() bool {
		nodes[0].mu.Lock()
		defer nodes[0].mu.Unlock()
		for _, id := range []simnet.NodeID{"n1", "n2", "n3"} {
			ps := nodes[0].peers[id]
			if ps == nil || ps.filter == nil || !ps.filter.Test(key) {
				return false
			}
		}
		return true
	})
	return net, eps[1], nodes
}

// drainSilently consumes the fake peer's inbox until test cleanup,
// optionally reacting to each message; the done channel joins the
// goroutine so nothing leaks past the test.
func drainSilently(t *testing.T, ep *simnet.Endpoint, react func(simnet.Message)) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			msg, err := ep.Recv(ctx)
			if err != nil {
				return
			}
			if react != nil {
				react(msg)
			}
		}
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
}

func hedgeConfig() Config {
	return Config{
		QueryTimeout:     300 * time.Millisecond,
		TickInterval:     2 * time.Millisecond,
		SummaryPushEvery: 1,
		MaxForwardPeers:  2,
		HedgeSpares:      1,
		ForwardRetries:   2,
		RetryBackoff:     10 * time.Millisecond,
		RetryBackoffMax:  40 * time.Millisecond,
		Election: election.Config{
			AdvertiseInterval: 20 * time.Millisecond,
			AdvertiseTTL:      2,
			ElectionTimeout:   time.Hour,
		},
	}
}

// TestHedgeRecoversFromSilentPeer: the best-ranked peer n1 stays
// completely silent, so after the first unacknowledged retransmission n0
// hedges the query to spare n3 — which holds the answer. The final reply
// has the hit AND the unreachable marker for n1.
func TestHedgeRecoversFromSilentPeer(t *testing.T) {
	_, fakeEp, nodes := hedgeHarness(t, hedgeConfig())
	// Drain the fake peer's inbox so forwarded queries vanish silently.
	drainSilently(t, fakeEp, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	res, err := nodes[0].DiscoverResult(ctx, pdaRequestDoc(t))
	if err != nil {
		t.Fatalf("DiscoverResult: %v", err)
	}
	hedged := false
	for _, h := range res.Hits {
		if h.Directory == "n3" {
			hedged = true
		}
	}
	if !hedged {
		t.Fatalf("hits = %v, want a hedged hit from n3", res.Hits)
	}
	if !res.Partial() || len(res.Unreachable) != 1 || res.Unreachable[0] != "n1" {
		t.Fatalf("unreachable = %v, want [n1]", res.Unreachable)
	}
	st := nodes[0].Stats()
	if st.ForwardHedges != 1 {
		t.Fatalf("stats = %+v, want exactly one hedge", st)
	}
	if st.ForwardRetries == 0 || st.ForwardGiveups == 0 {
		t.Fatalf("stats = %+v, want retries and a give-up on n1", st)
	}
}

// TestAckSuppressesHedge: n1 acknowledges every forward but never
// replies. The ack proves it alive, so no hedge fires and n1 is not
// pushed toward eviction — but the reply still times out and the result
// carries the completeness marker.
func TestAckSuppressesHedge(t *testing.T) {
	_, fakeEp, nodes := hedgeHarness(t, hedgeConfig())
	drainSilently(t, fakeEp, func(msg simnet.Message) {
		if q, ok := msg.Payload.(QueryRequest); ok && q.Forwarded {
			_ = fakeEp.Send(msg.From, ForwardAck{ID: q.ID, From: "n1"})
		}
	})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	res, err := nodes[0].DiscoverResult(ctx, pdaRequestDoc(t))
	if err != nil {
		t.Fatalf("DiscoverResult: %v", err)
	}
	if !res.Partial() || len(res.Unreachable) != 1 || res.Unreachable[0] != "n1" {
		t.Fatalf("unreachable = %v, want [n1]", res.Unreachable)
	}
	st := nodes[0].Stats()
	if st.ForwardHedges != 0 {
		t.Fatalf("stats = %+v, hedge fired despite the ack", st)
	}
	if st.ForwardAcks == 0 {
		t.Fatalf("stats = %+v, want acks recorded", st)
	}
	nodes[0].mu.Lock()
	ps := nodes[0].peers["n1"]
	nodes[0].mu.Unlock()
	if ps == nil || ps.failures != 0 {
		t.Fatalf("acked peer accrued failures toward eviction: %+v", ps)
	}
}

// TestSilentPeerEventuallyEvicted: consecutive unacknowledged give-ups
// cross PeerFailureLimit and the peer disappears from the backbone view,
// so later queries stop wasting their deadline on it.
func TestSilentPeerEventuallyEvicted(t *testing.T) {
	cfg := hedgeConfig()
	cfg.HedgeSpares = 0
	cfg.PeerFailureLimit = 2
	_, fakeEp, nodes := hedgeHarness(t, cfg)
	drainSilently(t, fakeEp, nil)

	for i := 0; i < 2; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		res, err := nodes[0].DiscoverResult(ctx, pdaRequestDoc(t))
		cancel()
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if !res.Partial() {
			t.Fatalf("query %d: no completeness marker while n1 is silent", i)
		}
	}
	st := nodes[0].Stats()
	if st.PeersEvicted != 1 {
		t.Fatalf("stats = %+v, want n1 evicted after 2 give-ups", st)
	}
	for _, id := range nodes[0].Peers() {
		if id == "n1" {
			t.Fatal("n1 still in the backbone view after eviction")
		}
	}
}
