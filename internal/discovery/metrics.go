package discovery

import "sariadne/internal/telemetry"

// Process-wide protocol instruments. Per-node counts stay in Stats; these
// aggregate every Node in the process so /metrics, sdpsim and benchfig
// see the whole deployment, and they make the StaleRatio reactive-refresh
// machinery observable instead of inferred.
var (
	registrationsTotal = telemetry.NewCounter("discovery_registrations_total",
		"advertisements accepted by directories")
	queriesServedTotal = telemetry.NewCounter("discovery_queries_served_total",
		"queries answered from a local directory store")
	queriesForwardedTotal = telemetry.NewCounter("discovery_queries_forwarded_total",
		"origin queries fanned out to peer directories")
	forwardsSentTotal = telemetry.NewCounter("discovery_forwards_sent_total",
		"peer directories contacted by forwarded queries")
	forwardsPrunedTotal = telemetry.NewCounter("discovery_forwards_pruned_total",
		"peers skipped because their Bloom summary cannot match")
	forwardEmptyTotal = telemetry.NewCounter("discovery_forward_empty_total",
		"Bloom-selected forwards that returned no hits (false positives)")
	remoteHitsTotal = telemetry.NewCounter("discovery_remote_hits_total",
		"hits contributed by peer directories")
	forwardRetriesTotal = telemetry.NewCounter("discovery_forward_retries_total",
		"forwarded queries retransmitted after a silent backoff window")
	forwardAcksTotal = telemetry.NewCounter("discovery_forward_acks_total",
		"forward acknowledgements received from peer directories")
	forwardHedgesTotal = telemetry.NewCounter("discovery_forward_hedges_total",
		"queries hedged to a spare peer after a forward went unacknowledged")
	forwardGiveupsTotal = telemetry.NewCounter("discovery_forward_giveups_total",
		"forwards abandoned after exhausting retries or the query deadline")
	peersEvictedTotal = telemetry.NewCounter("discovery_peers_evicted_total",
		"peer directories evicted after consecutive unacknowledged give-ups")
	partialRepliesTotal = telemetry.NewCounter("discovery_partial_replies_total",
		"final query replies carrying an unreachable-peers completeness marker")
	summaryPushesTotal = telemetry.NewCounter("discovery_summary_pushes_total",
		"Bloom summaries pushed to peer directories")
	summaryRefreshesTotal = telemetry.NewCounter("discovery_summary_refreshes_total",
		"reactive summary refresh requests triggered by the StaleRatio rule")
	electionTransitionsTotal = telemetry.NewCounter("discovery_election_transitions_total",
		"election role changes observed by nodes; a climbing rate means the backbone is flapping")
	localMatchSeconds = telemetry.NewHistogram("discovery_local_match_seconds",
		"latency of the backend match phase while serving one query")
	querySeconds = telemetry.NewHistogram("discovery_query_seconds",
		"end-to-end latency of origin discovery queries")
	tracesSampledTotal = telemetry.NewCounter("discovery_traces_sampled_total",
		"origin queries traced by the 1-in-N sampler or the slow-query latch")
	tracesSlowTotal = telemetry.NewCounter("discovery_traces_slow_total",
		"origin queries whose end-to-end latency reached the slow-query threshold")
	// bloomFPRGauge is the live false-positive-rate estimator: of all
	// Bloom membership probes whose key turned out absent at the probed
	// peer, the fraction that tested positive anyway. Pruned peers are
	// true negatives; Bloom-selected forwards that came back empty are
	// false positives (the filter has no false negatives, so a peer
	// holding a match is never pruned).
	bloomFPRGauge = telemetry.NewFloatGauge("discovery_bloom_false_positive_rate",
		"observed Bloom false-positive rate: empty forwards / (empty forwards + prunes)")
	summaryFPRGauge = telemetry.NewFloatGauge("bloom_summary_estimated_fpr",
		"analytic (1-e^(-kn/m))^k estimate of the most recently rebuilt summary")
)

// updateBloomFPR recomputes the live false-positive-rate gauge from the
// outcome counters. Called after prunes and after empty partial replies.
func updateBloomFPR() {
	fp := forwardEmptyTotal.Value()
	tn := forwardsPrunedTotal.Value()
	if fp+tn == 0 {
		return
	}
	bloomFPRGauge.Set(float64(fp) / float64(fp+tn))
}
