package discovery

import (
	"context"
	"errors"
	"testing"
	"time"

	"sariadne/internal/election"
	"sariadne/internal/ontology"
	"sariadne/internal/profile"
	"sariadne/internal/simnet"
	"sariadne/internal/testutil"
)

// testCluster wires count nodes on a line topology with semantic backends.
// Directories must be promoted by the caller (static mode).
func testCluster(t *testing.T, count int) (*simnet.Network, []*Node) {
	t.Helper()
	net := simnet.New(simnet.Config{})
	t.Cleanup(net.Close)
	eps, err := simnet.BuildLine(net, "n", count)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		QueryTimeout:     500 * time.Millisecond,
		TickInterval:     2 * time.Millisecond,
		SummaryPushEvery: 1,
		Election: election.Config{
			AdvertiseInterval: 20 * time.Millisecond,
			// Vicinity of 2 hops: on the 5-node line, n1 covers n0..n3 and
			// n3 covers n1..n5, so edge nodes have a unique directory.
			AdvertiseTTL: 2,
			// Static deployments promote explicitly; keep the timeout huge
			// so members never self-elect in these tests.
			ElectionTimeout: time.Hour,
		},
	}
	nodes := make([]*Node, count)
	for i, ep := range eps {
		nodes[i] = NewNode(ep, NewSemanticBackend(fixtureRegistry(t)), cfg)
		nodes[i].Start(context.Background())
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
	})
	return net, nodes
}

func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	testutil.WaitFor(t, timeout, cond, "%s", what)
}

func TestPublishDiscoverSingleDirectory(t *testing.T) {
	_, nodes := testCluster(t, 3)
	nodes[1].BecomeDirectory()

	// Members learn the directory via advertisements.
	waitUntil(t, 2*time.Second, "directory advertisement", func() bool {
		_, ok0 := nodes[0].DirectoryID()
		_, ok2 := nodes[2].DirectoryID()
		return ok0 && ok2
	})

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := nodes[0].Publish(ctx, workstationDoc(t)); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	hits, err := nodes[2].Discover(ctx, pdaRequestDoc(t))
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if len(hits) != 1 || hits[0].Capability != "SendDigitalStream" || hits[0].Distance != 3 {
		t.Fatalf("hits = %v", hits)
	}
	if hits[0].Directory != "n1" {
		t.Fatalf("answering directory = %q, want n1", hits[0].Directory)
	}
	st := nodes[1].Stats()
	if st.Registrations != 1 || st.QueriesServed != 1 {
		t.Fatalf("directory stats = %+v", st)
	}
}

func TestDiscoverSelfDirectory(t *testing.T) {
	_, nodes := testCluster(t, 1)
	nodes[0].BecomeDirectory()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := nodes[0].Publish(ctx, workstationDoc(t)); err != nil {
		t.Fatal(err)
	}
	hits, err := nodes[0].Discover(ctx, pdaRequestDoc(t))
	if err != nil || len(hits) != 1 {
		t.Fatalf("hits = %v, err = %v", hits, err)
	}
}

func TestDiscoverNoDirectory(t *testing.T) {
	_, nodes := testCluster(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := nodes[0].Discover(ctx, pdaRequestDoc(t)); !errors.Is(err, ErrNoDirectory) {
		t.Fatalf("Discover = %v, want ErrNoDirectory", err)
	}
	if err := nodes[0].Publish(ctx, workstationDoc(t)); !errors.Is(err, ErrNoDirectory) {
		t.Fatalf("Publish = %v, want ErrNoDirectory", err)
	}
}

func TestPublishRejectedDocument(t *testing.T) {
	_, nodes := testCluster(t, 2)
	nodes[1].BecomeDirectory()
	waitUntil(t, 2*time.Second, "advertisement", func() bool {
		_, ok := nodes[0].DirectoryID()
		return ok
	})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := nodes[0].Publish(ctx, []byte("garbage")); err == nil {
		t.Fatal("Publish accepted garbage")
	}
}

// TestGlobalDiscoveryForwarding is the Figure 6 walk-through: the query
// reaches directory A, which has no local match, consults its peers'
// Bloom filters, forwards to directory B, and relays B's hits back to the
// requester.
func TestGlobalDiscoveryForwarding(t *testing.T) {
	_, nodes := testCluster(t, 5)
	// n1 and n3 are directories; n0 publishes at n1... actually the
	// workstation sits next to n3 so its advertisement lands there.
	nodes[1].BecomeDirectory()
	nodes[3].BecomeDirectory()

	// Backbone handshake: each directory learns the other.
	waitUntil(t, 2*time.Second, "backbone handshake", func() bool {
		return len(nodes[1].Peers()) == 1 && len(nodes[3].Peers()) == 1
	})

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()

	// n4's vicinity directory is n3 (publish there).
	waitUntil(t, 2*time.Second, "n4 directory", func() bool {
		d, ok := nodes[4].DirectoryID()
		return ok && d == "n3"
	})
	if err := nodes[4].Publish(ctx, workstationDoc(t)); err != nil {
		t.Fatal(err)
	}

	// n0 queries via n1, which must forward to n3.
	waitUntil(t, 2*time.Second, "n0 directory", func() bool {
		d, ok := nodes[0].DirectoryID()
		return ok && d == "n1"
	})
	// Wait for n3's summary to have reached n1 (SummaryPushEvery=1).
	waitUntil(t, 2*time.Second, "summary propagation", func() bool {
		for _, st := range []Stats{nodes[1].Stats()} {
			_ = st
		}
		return true
	})
	hits, err := nodes[0].Discover(ctx, pdaRequestDoc(t))
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if len(hits) != 1 || hits[0].Directory != "n3" {
		t.Fatalf("hits = %v, want one from n3", hits)
	}
	st := nodes[1].Stats()
	if st.QueriesForwarded != 1 || st.ForwardsSent != 1 || st.RemoteHits != 1 {
		t.Fatalf("forwarding stats = %+v", st)
	}
}

// TestBloomPruningSkipsIrrelevantPeers: a directory whose summary cannot
// cover the request is not contacted.
func TestBloomPruningSkipsIrrelevantPeers(t *testing.T) {
	_, nodes := testCluster(t, 5)
	nodes[1].BecomeDirectory()
	nodes[3].BecomeDirectory()
	waitUntil(t, 2*time.Second, "backbone handshake", func() bool {
		return len(nodes[1].Peers()) == 1 && len(nodes[3].Peers()) == 1
	})

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()

	// n3 stores a service over completely different ontologies: a summary
	// push must have happened so n1 can prune it.
	other := &profile.Service{
		Name:     "OtherService",
		Provider: "other-host",
		Provided: []*profile.Capability{{
			Name:     "OtherCap",
			Category: ontology.Ref{Ontology: "http://elsewhere.example/ont", Name: "Thing"},
		}},
	}
	otherDoc, err := profile.Marshal(other)
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 2*time.Second, "n4 directory", func() bool {
		d, ok := nodes[4].DirectoryID()
		return ok && d == "n3"
	})
	// The "elsewhere" ontology has no code table at n3, but registration
	// only fails on version mismatch; unknown ontologies are stored and
	// simply never match semantic requests... the Bloom key still differs,
	// which is what this test needs.
	if err := nodes[4].Publish(ctx, otherDoc); err != nil {
		t.Fatal(err)
	}

	// Give the summary push time to land at n1.
	waitUntil(t, 2*time.Second, "summary at n1", func() bool {
		nodes[1].mu.Lock()
		defer nodes[1].mu.Unlock()
		f := nodes[1].peers["n3"]
		return f != nil
	})

	waitUntil(t, 2*time.Second, "n0 directory", func() bool {
		d, ok := nodes[0].DirectoryID()
		return ok && d == "n1"
	})
	hits, err := nodes[0].Discover(ctx, pdaRequestDoc(t))
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if len(hits) != 0 {
		t.Fatalf("hits = %v, want none", hits)
	}
	st := nodes[1].Stats()
	if st.ForwardsPruned != 1 {
		t.Fatalf("stats = %+v, want ForwardsPruned=1", st)
	}
	if st.ForwardsSent != 0 {
		t.Fatalf("stats = %+v, want ForwardsSent=0", st)
	}
}

// TestElectedDirectoryIntegration: with no static promotion, nodes elect a
// directory and discovery works end to end; when the directory dies, the
// re-elected one receives re-publications and keeps answering.
func TestElectedDirectoryIntegration(t *testing.T) {
	net := simnet.New(simnet.Config{})
	t.Cleanup(net.Close)
	eps, err := simnet.BuildGrid(net, "n", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		QueryTimeout:     500 * time.Millisecond,
		TickInterval:     2 * time.Millisecond,
		SummaryPushEvery: 1,
		Election: election.Config{
			AdvertiseInterval: 15 * time.Millisecond,
			AdvertiseTTL:      4,
			ElectionTimeout:   50 * time.Millisecond,
			CandidacyWait:     20 * time.Millisecond,
		},
	}
	nodes := make([]*Node, len(eps))
	for i, ep := range eps {
		nodes[i] = NewNode(ep, NewSemanticBackend(fixtureRegistry(t)), cfg)
		nodes[i].Start(context.Background())
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
	})

	waitUntil(t, 5*time.Second, "election", func() bool {
		for _, n := range nodes {
			if _, ok := n.DirectoryID(); !ok {
				return false
			}
		}
		return true
	})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := nodes[0].Publish(ctx, workstationDoc(t)); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	var publisherDir simnet.NodeID
	if d, ok := nodes[0].DirectoryID(); ok {
		publisherDir = d
	}

	hits, err := nodes[0].Discover(ctx, pdaRequestDoc(t))
	if err != nil || len(hits) != 1 {
		t.Fatalf("hits = %v, err = %v", hits, err)
	}

	// Kill the elected directory (unless the publisher itself is it — then
	// this test's churn scenario does not apply to node 0's store).
	var victim *Node
	for _, n := range nodes {
		if n.ID() == publisherDir && n.ID() != nodes[0].ID() {
			victim = n
			break
		}
	}
	if victim == nil {
		t.Skip("publisher was elected directory; churn scenario not applicable")
	}
	victim.Stop()
	net.RemoveNode(victim.ID())

	// Re-election happens, node 0 re-publishes automatically, discovery
	// works again.
	waitUntil(t, 5*time.Second, "re-election and republication", func() bool {
		d, ok := nodes[0].DirectoryID()
		if !ok || d == victim.ID() {
			return false
		}
		ctx2, cancel2 := context.WithTimeout(context.Background(), 300*time.Millisecond)
		defer cancel2()
		hits, err := nodes[0].Discover(ctx2, pdaRequestDoc(t))
		return err == nil && len(hits) == 1
	})
}

func TestNodeAccessors(t *testing.T) {
	_, nodes := testCluster(t, 2)
	if nodes[0].ID() != "n0" {
		t.Fatalf("ID = %s", nodes[0].ID())
	}
	if nodes[0].Backend().Name() != "s-ariadne" {
		t.Fatalf("backend = %s", nodes[0].Backend().Name())
	}
	if nodes[0].Role() != election.Member {
		t.Fatalf("Role = %v", nodes[0].Role())
	}
	nodes[1].BecomeDirectory()
	waitUntil(t, time.Second, "role", func() bool {
		return nodes[1].Role() == election.Directory
	})
}
