package discovery

import (
	"reflect"
	"testing"

	"sariadne/internal/simnet"
	"sariadne/internal/telemetry"
)

// wireFixtures is one instance of every protocol message, with enough
// fields populated to make shallow encodings fail the comparison.
func wireFixtures() []any {
	return []any{
		RegisterRequest{ID: 7, Doc: []byte("<service/>")},
		RegisterReply{ID: 7, Err: "duplicate"},
		DeregisterRequest{ID: 9, Service: "printer"},
		QueryRequest{ID: 3, Origin: "n0", Forwarded: true, Trace: 42, Doc: []byte("<request/>")},
		QueryReply{
			ID: 3, From: "n5", Partial: true,
			Hits:        []Hit{{Service: "ws", Capability: "print", Provider: "p", Distance: 2, For: "print", Directory: "n5"}},
			Unreachable: []simnet.NodeID{"n7"},
			Spans:       []telemetry.Span{{Trace: 42, Node: "n5", Event: telemetry.EventReply, Seq: 1}},
		},
		DirectoryAnnounce{From: "n3"},
		SummaryPush{From: "n3", Filter: []byte{1, 2, 3}, Count: 4},
		SummaryRequest{From: "n1"},
		ForwardAck{ID: 3, From: "n5"},
		RepublishSolicit{From: "n3"},
	}
}

func TestCodecRoundTripsEveryMessage(t *testing.T) {
	for _, msg := range wireFixtures() {
		frame, err := EncodeMessage(msg)
		if err != nil {
			t.Fatalf("encode %T: %v", msg, err)
		}
		back, err := DecodeMessage(frame)
		if err != nil {
			t.Fatalf("decode %T: %v", msg, err)
		}
		if !reflect.DeepEqual(msg, back) {
			t.Fatalf("round trip changed %T:\n in: %#v\nout: %#v", msg, msg, back)
		}
	}
}

func TestCodecRejectsMalformedFrames(t *testing.T) {
	if _, err := EncodeMessage(struct{ X int }{1}); err == nil {
		t.Fatal("encoding an unknown type succeeded")
	}
	for _, frame := range [][]byte{
		nil,
		{},
		{0},                       // tag zero is reserved
		{200, '{', '}'},           // unknown tag
		{tagQueryRequest},         // empty body
		{tagQueryRequest, 'x'},    // not JSON
		{tagQueryReply, '[', ']'}, // wrong JSON shape
	} {
		if _, err := DecodeMessage(frame); err == nil {
			t.Fatalf("decoding %v succeeded", frame)
		}
	}
}
