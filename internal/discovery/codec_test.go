package discovery

import (
	"errors"
	"reflect"
	"testing"

	"sariadne/internal/simnet"
	"sariadne/internal/telemetry"
)

// wireFixtures is one instance of every protocol message, with enough
// fields populated to make shallow encodings fail the comparison.
func wireFixtures() []any {
	return []any{
		RegisterRequest{ID: 7, Doc: []byte("<service/>")},
		RegisterReply{ID: 7, Err: "duplicate"},
		DeregisterRequest{ID: 9, Service: "printer"},
		QueryRequest{ID: 3, Origin: "n0", Forwarded: true, Trace: 42, Doc: []byte("<request/>")},
		QueryReply{
			ID: 3, From: "n5", Partial: true,
			Hits:        []Hit{{Service: "ws", Capability: "print", Provider: "p", Distance: 2, For: "print", Directory: "n5"}},
			Unreachable: []simnet.NodeID{"n7"},
			Spans:       []telemetry.Span{{Trace: 42, Node: "n5", Event: telemetry.EventReply, Seq: 1}},
		},
		DirectoryAnnounce{From: "n3"},
		SummaryPush{From: "n3", Filter: []byte{1, 2, 3}, Count: 4},
		SummaryRequest{From: "n1"},
		ForwardAck{ID: 3, From: "n5"},
		RepublishSolicit{From: "n3"},
	}
}

func TestCodecRoundTripsEveryMessage(t *testing.T) {
	for _, msg := range wireFixtures() {
		frame, err := EncodeMessage(msg)
		if err != nil {
			t.Fatalf("encode %T: %v", msg, err)
		}
		back, err := DecodeMessage(frame)
		if err != nil {
			t.Fatalf("decode %T: %v", msg, err)
		}
		if !reflect.DeepEqual(msg, back) {
			t.Fatalf("round trip changed %T:\n in: %#v\nout: %#v", msg, msg, back)
		}
	}
}

func TestCodecRejectsMalformedFrames(t *testing.T) {
	if _, err := EncodeMessage(struct{ X int }{1}); err == nil {
		t.Fatal("encoding an unknown type succeeded")
	}
	for _, frame := range [][]byte{
		nil,
		{},
		{0},                       // tag zero is reserved
		{200, '{', '}'},           // unknown tag
		{tagQueryRequest},         // empty body
		{tagQueryRequest, 'x'},    // not JSON
		{tagQueryReply, '[', ']'}, // wrong JSON shape
	} {
		if _, err := DecodeMessage(frame); err == nil {
			t.Fatalf("decoding %v succeeded", frame)
		}
	}
}

// TestCodecFixturesCoverEveryTag fails when a message type is added to
// the wire format without a round-trip fixture: every tag from 1 through
// the newest must encode from exactly one fixture.
func TestCodecFixturesCoverEveryTag(t *testing.T) {
	seen := make(map[byte]bool)
	for _, msg := range wireFixtures() {
		frame, err := EncodeMessage(msg)
		if err != nil {
			t.Fatalf("encode %T: %v", msg, err)
		}
		tag := frame[1] // frame[0] is WireVersion
		if seen[tag] {
			t.Fatalf("two fixtures share tag %d", tag)
		}
		seen[tag] = true
	}
	for tag := byte(1); tag <= tagRepublishSolicit; tag++ {
		if !seen[tag] {
			t.Fatalf("no fixture encodes tag %d — extend wireFixtures for new message types", tag)
		}
	}
	if len(seen) != int(tagRepublishSolicit) {
		t.Fatalf("fixtures produced %d tags, want %d", len(seen), tagRepublishSolicit)
	}
}

// TestCodecRejectsForeignWireVersion pins the cross-version contract:
// frames minted by a build speaking another wire dialect come back as a
// typed *VersionError, never as a misparsed message.
func TestCodecRejectsForeignWireVersion(t *testing.T) {
	frame, err := EncodeMessage(DirectoryAnnounce{From: "n3"})
	if err != nil {
		t.Fatal(err)
	}
	if frame[0] != WireVersion {
		t.Fatalf("frame starts with %d, want WireVersion %d", frame[0], WireVersion)
	}
	frame[0] = WireVersion + 1
	_, err = DecodeMessage(frame)
	var ve *VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("decode error = %v, want *VersionError", err)
	}
	if ve.Got != WireVersion+1 {
		t.Fatalf("Got = %d", ve.Got)
	}
	if ve.Error() == "" {
		t.Fatal("empty error text")
	}
	// A frame that is only a version byte errors without panicking.
	if _, err := DecodeMessage([]byte{WireVersion}); err == nil {
		t.Fatal("version-only frame decoded")
	}
}
