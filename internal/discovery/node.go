package discovery

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"sariadne/internal/bloom"
	"sariadne/internal/election"
	"sariadne/internal/telemetry"
	"sariadne/internal/transport"
)

// Protocol errors.
var (
	// ErrNoDirectory is returned when a node knows no directory to talk to.
	ErrNoDirectory = errors.New("discovery: no directory known")
	// ErrNotDirectory is reported by a node asked to serve while not being
	// a directory (transient during elections).
	ErrNotDirectory = errors.New("discovery: node is not a directory")
)

// Config parameterizes a discovery node.
type Config struct {
	// Election configures directory self-deployment. Zero values get the
	// election package defaults.
	Election election.Config
	// StaticDirectory pins the node to a fixed directory and disables the
	// election timeout machinery (infrastructure mode).
	StaticDirectory transport.Addr
	// QueryTimeout bounds the wait for remote directories when a query is
	// forwarded. Defaults to 2s.
	QueryTimeout time.Duration
	// AnnounceTTL is the hop radius for directory backbone announcements;
	// it should exceed the election vicinity. Defaults to 8.
	AnnounceTTL int
	// BloomBits and BloomHashes shape content summaries. Defaults: 1024, 4.
	BloomBits   int
	BloomHashes int
	// SummaryPushEvery pushes the updated summary to peers after this many
	// registrations. Defaults to 4.
	SummaryPushEvery int
	// AnnounceInterval re-broadcasts a directory's backbone announcement,
	// repairing handshakes missed during concurrent elections. Defaults to
	// 500ms.
	AnnounceInterval time.Duration
	// MaxForwardPeers bounds how many peer directories an unresolved query
	// is forwarded to, chosen nearest-first (the paper selects forwarding
	// targets by Bloom filter, distance and remaining resources). Zero
	// means no bound.
	MaxForwardPeers int
	// ForwardRetries bounds retransmissions per forward after the first
	// attempt; a forward is abandoned (and the peer marked unreachable in
	// the reply) once they are exhausted. Defaults to 2; negative disables
	// retries and hedging entirely, restoring fire-and-forget forwarding
	// where pending forwards wait out the full QueryTimeout.
	ForwardRetries int
	// RetryBackoff is the delay before the first retransmission of a
	// forward with no reply; it doubles per attempt up to RetryBackoffMax.
	// Defaults to QueryTimeout/8.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the exponential retransmission backoff.
	// Defaults to QueryTimeout/2.
	RetryBackoffMax time.Duration
	// HedgeSpares allows dispatching the query to up to this many
	// next-best peers that MaxForwardPeers cut off, when a forward reaches
	// its first retransmission without even an ack. Zero disables hedging.
	HedgeSpares int
	// PeerFailureLimit evicts a peer from the backbone view after this
	// many consecutive forwards that were abandoned without any sign of
	// life (no ack, no reply); a reply resets the count. Defaults to 3;
	// negative disables eviction.
	PeerFailureLimit int
	// StaleRatio triggers a reactive summary refresh: when more than this
	// fraction of a peer's Bloom-selected forwards come back empty (false
	// positives), the peer is asked for a fresh summary (Section 4's
	// reactive exchange). Defaults to 0.5; negative disables.
	StaleRatio float64
	// LeaseTTL expires advertisements that have not been refreshed
	// (soft state). Zero disables expiry.
	LeaseTTL time.Duration
	// RefreshInterval makes nodes re-publish their own services
	// periodically so leases stay fresh. Defaults to LeaseTTL/3 when
	// leases are enabled.
	RefreshInterval time.Duration
	// TickInterval is the loop timer resolution. Defaults to 10ms.
	TickInterval time.Duration
	// TraceSampleEvery turns on always-on sampled tracing: every Nth
	// origin query dispatched through Discover/DiscoverResult carries a
	// trace ID as if DiscoverTrace had been called, and its merged span
	// tree is deposited into the flight recorder. Defaults to 64;
	// negative disables sampling.
	TraceSampleEvery int
	// SlowQueryThreshold retains queries whose end-to-end latency reaches
	// it: a traced slow query's record is flagged slow, and an untraced
	// one deposits a spanless record and arms a latch so the next query
	// is traced. Defaults to QueryTimeout/2; negative disables.
	SlowQueryThreshold time.Duration
	// Recorder receives retained traces and protocol events. Nil uses
	// the process-wide telemetry.FlightRecorder(); tests inject private
	// recorders.
	Recorder *telemetry.Recorder
}

func (c Config) withDefaults() Config {
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 2 * time.Second
	}
	if c.AnnounceTTL <= 0 {
		c.AnnounceTTL = 8
	}
	if c.BloomBits <= 0 {
		c.BloomBits = 1024
	}
	if c.BloomHashes <= 0 {
		c.BloomHashes = 4
	}
	if c.SummaryPushEvery <= 0 {
		c.SummaryPushEvery = 4
	}
	if c.AnnounceInterval <= 0 {
		c.AnnounceInterval = 500 * time.Millisecond
	}
	if c.StaleRatio == 0 {
		c.StaleRatio = 0.5
	}
	if c.ForwardRetries == 0 {
		c.ForwardRetries = 2
	} else if c.ForwardRetries < 0 {
		c.ForwardRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = c.QueryTimeout / 8
	}
	if c.RetryBackoffMax <= 0 {
		c.RetryBackoffMax = c.QueryTimeout / 2
	}
	if c.PeerFailureLimit == 0 {
		c.PeerFailureLimit = 3
	} else if c.PeerFailureLimit < 0 {
		c.PeerFailureLimit = 0
	}
	if c.LeaseTTL > 0 && c.RefreshInterval <= 0 {
		c.RefreshInterval = c.LeaseTTL / 3
	}
	if c.TickInterval <= 0 {
		c.TickInterval = 10 * time.Millisecond
	}
	if c.TraceSampleEvery == 0 {
		c.TraceSampleEvery = 64
	} else if c.TraceSampleEvery < 0 {
		c.TraceSampleEvery = 0
	}
	if c.SlowQueryThreshold == 0 {
		c.SlowQueryThreshold = c.QueryTimeout / 2
	} else if c.SlowQueryThreshold < 0 {
		c.SlowQueryThreshold = 0
	}
	if c.Recorder == nil {
		c.Recorder = telemetry.FlightRecorder()
	}
	return c
}

// Stats counts protocol activity on one node.
type Stats struct {
	Registrations    uint64
	QueriesServed    uint64 // queries answered from the local store
	QueriesForwarded uint64 // origin queries fanned out to peers
	ForwardsSent     uint64 // peer directories contacted
	ForwardsPruned   uint64 // peers skipped thanks to Bloom summaries
	RemoteHits       uint64 // hits contributed by peers
	ForwardRetries   uint64 // forwards retransmitted after a silent backoff
	ForwardAcks      uint64 // forward acknowledgements received
	ForwardHedges    uint64 // queries hedged to a spare peer
	ForwardGiveups   uint64 // forwards abandoned after exhausting retries
	PeersEvicted     uint64 // peers dropped after consecutive give-ups
	PartialReplies   uint64 // final replies sent with an unreachable marker
}

// Node is one participant of the discovery protocol: always a potential
// client (Publish/Discover), sometimes an elected or static directory.
type Node struct {
	ep      transport.Transport
	backend Backend
	cfg     Config

	mu          sync.Mutex
	elect       *election.Machine             // guarded by mu
	filter      *bloom.Filter                 // guarded by mu
	peers       map[transport.Addr]*peerState // guarded by mu
	published   map[string][]byte             // guarded by mu
	publishedAt transport.Addr                // guarded by mu
	nextID      uint64                        // guarded by mu
	queryWait   map[uint64]chan QueryReply    // guarded by mu
	regWait     map[uint64]chan RegisterReply // guarded by mu
	aggregates  map[uint64]*aggregation       // guarded by mu
	// leases tracks, per registered service, when its advertisement was
	// last (re)registered; stale ones are swept when LeaseTTL is set.
	leases       map[string]time.Time // guarded by mu
	regSince     int                  // guarded by mu
	lastAnnounce time.Time            // guarded by mu
	lastRefresh  time.Time            // guarded by mu
	stats        Stats                // guarded by mu
	// sampleCount counts origin queries for the 1-in-N trace sampler;
	// traceNext is the slow-query latch: set when an untraced query came
	// back slow, so the next query is traced regardless of the sampler.
	sampleCount uint64 // guarded by mu
	traceNext   bool   // guarded by mu

	cancel context.CancelFunc // guarded by mu
	done   chan struct{}      // guarded by mu
}

// peerState is what a directory knows about a backbone peer: its latest
// Bloom summary, its hop distance (observed from received messages, used
// to rank forwarding targets), forwarding outcome counters driving the
// reactive summary refresh, and a consecutive-give-up count driving
// eviction of peers that stopped responding entirely.
type peerState struct {
	filter       *bloom.Filter
	entries      int // service count carried by the latest summary
	hops         int
	forwards     int
	empties      int
	failures     int
	lastAnnounce time.Time // last DirectoryAnnounce or SummaryPush heard
}

// forwardState is the per-peer retransmission state machine for one
// forwarded query: attempt counting with capped exponential backoff until
// a reply arrives (done), the retries are exhausted, or the aggregation
// deadline passes (failed). An ack proves the peer alive — it suppresses
// hedging and the eviction counter — but does not stop retransmissions,
// because a lost reply is only recovered by the duplicate request
// provoking a re-answer.
type forwardState struct {
	attempts  int
	acked     bool
	done      bool // a reply arrived
	failed    bool // gave up waiting
	nextRetry time.Time
	backoff   time.Duration
}

// aggregation tracks one origin query fanned out to peer directories.
type aggregation struct {
	origin   transport.Addr
	originID uint64
	trace    uint64
	doc      []byte // forwarded subset document, kept for retransmissions
	deadline time.Time
	forwards map[transport.Addr]*forwardState
	// spares are ranked peers MaxForwardPeers cut off, available for
	// hedged re-dispatch when a forward goes silent.
	spares      []transport.Addr
	hedges      int
	hits        []Hit
	unreachable []transport.Addr
	spans       []telemetry.Span // mutated under the owning node's mu
}

// pending reports whether any forward is still awaiting a reply.
func (a *aggregation) pending() bool {
	for _, fs := range a.forwards {
		if !fs.done && !fs.failed {
			return true
		}
	}
	return false
}

// outMsg is a message staged under the lock for sending after release.
type outMsg struct {
	to      transport.Addr
	payload any
}

// NewNode creates a discovery node over an endpoint and backend. The
// endpoint may be a bare *simnet.Endpoint (simulations, tests) or any
// transport.Transport (UDP/TCP federation); either way the node speaks
// only the transport interface.
func NewNode(ep transport.Endpoint, backend Backend, cfg Config) *Node {
	cfg = cfg.withDefaults()
	n := &Node{
		ep:         transport.Wrap(ep),
		backend:    backend,
		cfg:        cfg,
		elect:      election.NewMachine(ep.ID(), cfg.Election, time.Now()),
		filter:     bloom.MustNew(cfg.BloomBits, cfg.BloomHashes),
		peers:      make(map[transport.Addr]*peerState),
		published:  make(map[string][]byte),
		queryWait:  make(map[uint64]chan QueryReply),
		regWait:    make(map[uint64]chan RegisterReply),
		aggregates: make(map[uint64]*aggregation),
		leases:     make(map[string]time.Time),
	}
	return n
}

// ID returns the node's network ID.
func (n *Node) ID() transport.Addr { return n.ep.ID() }

// Backend returns the node's directory backend.
func (n *Node) Backend() Backend { return n.backend }

// Stats returns a snapshot of the node's protocol counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Role returns the node's current election role.
func (n *Node) Role() election.Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.elect.Role()
}

// DirectoryID returns the directory this node currently uses.
func (n *Node) DirectoryID() (transport.Addr, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.directoryLocked()
}

func (n *Node) directoryLocked() (transport.Addr, bool) {
	if n.cfg.StaticDirectory != "" && n.elect.Role() != election.Directory {
		return n.cfg.StaticDirectory, true
	}
	return n.elect.Directory()
}

// Peers returns the directory peers this node knows about (meaningful on
// directories).
func (n *Node) Peers() []transport.Addr {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]transport.Addr, 0, len(n.peers))
	for id := range n.peers {
		out = append(out, id)
	}
	return out
}

// PeerInfo is one directory peer as seen by this node's protocol layer,
// for diagnostics surfaces (sdpd's GET /peers, sdpctl peers). Transport
// socket stats live one layer down in transport.Peer; this view carries
// what the discovery protocol itself knows.
type PeerInfo struct {
	// Addr is the peer's transport address.
	Addr transport.Addr `json:"addr"`
	// LastAnnounce is when this peer last announced itself or pushed a
	// summary (zero when it never has).
	LastAnnounce time.Time `json:"last_announce,omitzero"`
	// Failures counts consecutive forwards to this peer abandoned with no
	// sign of life; PeerFailureLimit of them evict the peer.
	Failures int `json:"failures"`
	// HasSummary reports whether a Bloom summary from this peer is held.
	HasSummary bool `json:"has_summary"`
	// Entries is the service count the latest summary advertised.
	Entries int `json:"entries"`
	// Hops is the observed network distance to the peer.
	Hops int `json:"hops"`
}

// PeerInfos returns a snapshot of the node's backbone view, sorted by
// address.
func (n *Node) PeerInfos() []PeerInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]PeerInfo, 0, len(n.peers))
	for id, ps := range n.peers {
		out = append(out, PeerInfo{
			Addr:         id,
			LastAnnounce: ps.lastAnnounce,
			Failures:     ps.failures,
			HasSummary:   ps.filter != nil,
			Entries:      ps.entries,
			Hops:         ps.hops,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// RefreshSummary recomputes the Bloom summary from the backend and
// pushes it to every known peer. Embedders that register services
// directly on the backend — sdpd's client front ends do — call this so
// remote directories' views keep up with out-of-band registrations.
func (n *Node) RefreshSummary() {
	n.rebuildFilter()
	n.pushSummary()
}

// Start launches the protocol loop.
func (n *Node) Start(ctx context.Context) {
	ctx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	n.mu.Lock()
	n.cancel = cancel
	n.done = done
	n.mu.Unlock()
	go n.loop(ctx, done)
}

// Stop terminates the loop and waits for it.
func (n *Node) Stop() {
	n.mu.Lock()
	cancel, done := n.cancel, n.done
	n.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if done != nil {
		<-done
	}
}

// BecomeDirectory promotes the node immediately (static deployment) and
// announces it to the backbone.
func (n *Node) BecomeDirectory() {
	n.mu.Lock()
	actions := n.elect.BecomeDirectory(time.Now())
	n.mu.Unlock()
	n.runElectionActions(actions)
}

func (n *Node) loop(ctx context.Context, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(n.cfg.TickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case msg, ok := <-n.ep.Inbox():
			if !ok {
				return
			}
			n.handleMessage(msg)
		case <-ticker.C:
			n.tick()
		}
	}
}

// tick drives election timers (unless statically configured), aggregation
// deadlines and re-publication.
func (n *Node) tick() {
	now := time.Now()
	var electionActions []any
	announce := false
	n.mu.Lock()
	if n.cfg.StaticDirectory == "" {
		electionActions = n.elect.Tick(now)
	} else if n.elect.Role() == election.Directory {
		electionActions = n.elect.Tick(now) // keep advertising
	}
	if n.elect.Role() == election.Directory && now.Sub(n.lastAnnounce) >= n.cfg.AnnounceInterval {
		n.lastAnnounce = now
		announce = true
	}
	resends, finished := n.maintainAggregationsLocked(now)
	n.mu.Unlock()

	if announce {
		_, _ = n.ep.Broadcast(n.cfg.AnnounceTTL, DirectoryAnnounce{From: n.ID()})
	}

	n.runElectionActions(electionActions)
	for _, m := range resends {
		_ = n.ep.Send(m.to, m.payload)
	}
	for _, agg := range finished {
		n.finishAggregation(agg)
	}
	n.sweepLeases(now)
	n.refreshOwnLeases(now)
	n.republishIfMoved()
}

// sweepLeases expires advertisements whose lease ran out (soft state:
// departed devices silently disappear from the directory).
func (n *Node) sweepLeases(now time.Time) {
	if n.cfg.LeaseTTL <= 0 {
		return
	}
	n.mu.Lock()
	var stale []string
	for svc, at := range n.leases {
		if now.Sub(at) > n.cfg.LeaseTTL {
			stale = append(stale, svc)
			delete(n.leases, svc)
		}
	}
	n.mu.Unlock()
	if len(stale) == 0 {
		return
	}
	for _, svc := range stale {
		n.backend.Deregister(svc)
	}
	n.rebuildFilter()
}

// refreshOwnLeases re-publishes this node's services so their leases stay
// fresh at the directory.
func (n *Node) refreshOwnLeases(now time.Time) {
	if n.cfg.RefreshInterval <= 0 {
		return
	}
	n.mu.Lock()
	if now.Sub(n.lastRefresh) < n.cfg.RefreshInterval || len(n.published) == 0 {
		n.mu.Unlock()
		return
	}
	n.lastRefresh = now
	dir, ok := n.directoryLocked()
	if !ok {
		n.mu.Unlock()
		return
	}
	docs := make([][]byte, 0, len(n.published))
	for _, doc := range n.published {
		docs = append(docs, doc)
	}
	n.nextID++
	id := n.nextID
	n.mu.Unlock()
	for _, doc := range docs {
		_ = n.ep.Send(dir, RegisterRequest{ID: id, Doc: doc})
	}
}

// handleMessage dispatches one inbound message.
func (n *Node) handleMessage(msg transport.Message) {
	switch p := msg.Payload.(type) {
	case RegisterRequest:
		n.onRegister(msg.From, p)
	case RegisterReply:
		n.mu.Lock()
		ch := n.regWait[p.ID]
		delete(n.regWait, p.ID)
		n.mu.Unlock()
		if ch != nil {
			ch <- p
		}
	case DeregisterRequest:
		found := n.backend.Deregister(p.Service)
		n.mu.Lock()
		delete(n.leases, p.Service)
		n.mu.Unlock()
		n.rebuildFilter()
		errStr := ""
		if !found {
			errStr = fmt.Sprintf("service %q not registered", p.Service)
		}
		_ = n.ep.Send(msg.From, RegisterReply{ID: p.ID, Err: errStr})
	case QueryRequest:
		n.onQuery(msg.From, p)
	case QueryReply:
		n.onQueryReply(p)
	case ForwardAck:
		n.mu.Lock()
		if agg, ok := n.aggregates[p.ID]; ok {
			if fs, known := agg.forwards[p.From]; known && !fs.acked {
				fs.acked = true
				n.stats.ForwardAcks++
				forwardAcksTotal.Inc()
			}
		}
		n.mu.Unlock()
	case RepublishSolicit:
		n.onSolicit(p)
	case DirectoryAnnounce:
		n.onAnnounce(p)
	case SummaryPush:
		n.onSummary(p, msg.Hops)
	case SummaryRequest:
		n.mu.Lock()
		data := n.filter.Marshal()
		count := n.backend.Len()
		n.mu.Unlock()
		summaryPushesTotal.Inc()
		_ = n.ep.Send(msg.From, SummaryPush{From: n.ID(), Filter: data, Count: count})
	default:
		// Election traffic.
		n.mu.Lock()
		actions := n.elect.HandleMessage(msg.From, msg.Payload, time.Now())
		n.mu.Unlock()
		n.runElectionActions(actions)
		n.republishIfMoved()
	}
}

// runElectionActions executes transport actions emitted by the election
// machine and reacts to role changes.
func (n *Node) runElectionActions(actions []any) {
	for _, a := range actions {
		switch act := a.(type) {
		case election.SendAction:
			_ = n.ep.Send(act.To, act.Payload)
		case election.BroadcastAction:
			_, _ = n.ep.Broadcast(act.TTL, act.Payload)
		case election.RoleChange:
			electionTransitionsTotal.Inc()
			n.cfg.Recorder.RecordEvent(string(n.ID()), telemetry.ProtoElection, "", act.Role.String())
			if act.Role == election.Directory {
				// Join the directory backbone and solicit summaries.
				_, _ = n.ep.Broadcast(n.cfg.AnnounceTTL, DirectoryAnnounce{From: n.ID()})
				// Ask the vicinity to re-register: if this node crashed
				// and won re-election with an empty store, publishers
				// believing themselves registered here must re-send.
				_, _ = n.ep.Broadcast(n.cfg.AnnounceTTL, RepublishSolicit{From: n.ID()})
			}
		}
	}
}

// republishIfMoved re-registers this node's own services when its
// directory changed (including when the node itself just became one) —
// the paper's "a new directory has to host the service descriptions
// available in its vicinity".
func (n *Node) republishIfMoved() {
	n.mu.Lock()
	dir, ok := n.directoryLocked()
	if !ok || dir == n.publishedAt || len(n.published) == 0 {
		n.mu.Unlock()
		return
	}
	n.publishedAt = dir
	docs := make([][]byte, 0, len(n.published))
	for _, doc := range n.published {
		docs = append(docs, doc)
	}
	n.mu.Unlock()
	for _, doc := range docs {
		id := n.allocID()
		_ = n.ep.Send(dir, RegisterRequest{ID: id, Doc: doc})
	}
}

// onSolicit re-registers this node's published services at a freshly
// (re-)elected directory. Unlike republishIfMoved this fires even when
// publishedAt already names the soliciting directory — that is exactly
// the crash-and-re-elect case where the directory's store is empty while
// the publishers believe themselves registered.
func (n *Node) onSolicit(s RepublishSolicit) {
	n.mu.Lock()
	dir, ok := n.directoryLocked()
	if !ok || dir != s.From || len(n.published) == 0 {
		n.mu.Unlock()
		return
	}
	n.publishedAt = dir
	docs := make([][]byte, 0, len(n.published))
	for _, doc := range n.published {
		docs = append(docs, doc)
	}
	n.mu.Unlock()
	for _, doc := range docs {
		id := n.allocID()
		_ = n.ep.Send(dir, RegisterRequest{ID: id, Doc: doc})
	}
}

func (n *Node) allocID() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nextID++
	return n.nextID
}

// onRegister stores an advertisement (directory side).
func (n *Node) onRegister(from transport.Addr, req RegisterRequest) {
	var errStr string
	if name, err := n.backend.Register(req.Doc); err != nil {
		errStr = err.Error()
	} else {
		n.mu.Lock()
		n.leases[name] = time.Now()
		n.stats.Registrations++
		registrationsTotal.Inc()
		n.regSince++
		push := n.regSince >= n.cfg.SummaryPushEvery
		if push {
			n.regSince = 0
		}
		n.mu.Unlock()
		n.rebuildFilter()
		if push {
			n.pushSummary()
		}
	}
	_ = n.ep.Send(from, RegisterReply{ID: req.ID, Err: errStr})
}

// rebuildFilter recomputes the Bloom summary from the backend's keys.
func (n *Node) rebuildFilter() {
	f := bloom.MustNew(n.cfg.BloomBits, n.cfg.BloomHashes)
	for _, k := range n.backend.Keys() {
		f.Add(k)
	}
	summaryFPRGauge.Set(f.EstimateFPR())
	n.mu.Lock()
	n.filter = f
	n.mu.Unlock()
}

// pushSummary sends the current filter to every known peer.
func (n *Node) pushSummary() {
	n.mu.Lock()
	data := n.filter.Marshal()
	count := n.backend.Len()
	peers := make([]transport.Addr, 0, len(n.peers))
	for id := range n.peers {
		peers = append(peers, id)
	}
	n.mu.Unlock()
	summaryPushesTotal.Add(uint64(len(peers)))
	for _, id := range peers {
		_ = n.ep.Send(id, SummaryPush{From: n.ID(), Filter: data, Count: count})
	}
}

// onAnnounce reacts to a new directory joining the backbone.
func (n *Node) onAnnounce(a DirectoryAnnounce) {
	n.mu.Lock()
	isDir := n.elect.Role() == election.Directory
	if isDir && a.From != n.ID() {
		ps, known := n.peers[a.From]
		if !known {
			ps = &peerState{}
			n.peers[a.From] = ps
			n.cfg.Recorder.RecordEvent(string(n.ID()), telemetry.ProtoPeerUp, string(a.From), "announce")
		}
		ps.lastAnnounce = time.Now()
	}
	data := n.filter.Marshal()
	count := n.backend.Len()
	n.mu.Unlock()
	if isDir && a.From != n.ID() {
		// Introduce ourselves with our summary; the peer records us.
		summaryPushesTotal.Inc()
		_ = n.ep.Send(a.From, SummaryPush{From: n.ID(), Filter: data, Count: count})
	}
}

// onSummary records a peer directory's filter and observed distance.
func (n *Node) onSummary(s SummaryPush, hops int) {
	f, err := bloom.Unmarshal(s.Filter)
	if err != nil {
		return
	}
	n.mu.Lock()
	ps, known := n.peers[s.From]
	if !known {
		ps = &peerState{}
		n.peers[s.From] = ps
		n.cfg.Recorder.RecordEvent(string(n.ID()), telemetry.ProtoPeerUp, string(s.From), "summary")
	}
	ps.filter = f
	ps.entries = s.Count
	ps.hops = hops
	ps.lastAnnounce = time.Now()
	// A fresh summary resets the staleness counters.
	ps.forwards, ps.empties = 0, 0
	data := n.filter.Marshal()
	count := n.backend.Len()
	n.mu.Unlock()
	if !known {
		// First contact from an unknown peer: send our summary back so
		// the relationship is symmetric.
		summaryPushesTotal.Inc()
		_ = n.ep.Send(s.From, SummaryPush{From: n.ID(), Filter: data, Count: count})
	}
}

// onQuery is the directory-side request path: local discovery first; an
// origin query with no local hits fans out to the peers whose Bloom
// summaries pass (Section 4, Figure 6).
func (n *Node) onQuery(from transport.Addr, q QueryRequest) {
	var spans []telemetry.Span
	if q.Trace != 0 {
		s := telemetry.NewSpan(q.Trace, string(n.ID()), telemetry.EventReceived)
		s.Peer = string(from)
		spans = append(spans, s)
	}
	if q.Forwarded {
		// Ack first, before the possibly slow match: the aggregator needs
		// a fast liveness signal to steer hedging and eviction.
		_ = n.ep.Send(from, ForwardAck{ID: q.ID, From: n.ID()})
	}
	n.mu.Lock()
	isDir := n.elect.Role() == election.Directory
	n.mu.Unlock()
	if !isDir {
		if q.Forwarded {
			// A demoted peer answers partial so the aggregator settles the
			// forward instead of retrying into a node that cannot serve.
			_ = n.ep.Send(from, QueryReply{ID: q.ID, From: n.ID(), Partial: true, Err: ErrNotDirectory.Error(), Spans: spans})
			return
		}
		n.replyQuery(q, from, nil, ErrNotDirectory.Error(), spans)
		return
	}

	matchStart := time.Now()
	hits, err := n.backend.Query(q.Doc)
	matchDur := time.Since(matchStart)
	localMatchSeconds.Observe(matchDur)
	if err != nil {
		n.replyQuery(q, from, nil, err.Error(), spans)
		return
	}
	for i := range hits {
		hits[i].Directory = string(n.ID())
	}
	if q.Trace != 0 {
		s := telemetry.NewSpan(q.Trace, string(n.ID()), telemetry.EventLocalMatch)
		s.Hits = len(hits)
		s.Dur = matchDur
		spans = append(spans, s)
	}
	n.mu.Lock()
	n.stats.QueriesServed++
	n.mu.Unlock()
	queriesServedTotal.Inc()

	if q.Forwarded {
		if q.Trace != 0 {
			s := telemetry.NewSpan(q.Trace, string(n.ID()), telemetry.EventReply)
			s.Peer = string(from)
			s.Hits = len(hits)
			spans = append(spans, s)
		}
		_ = n.ep.Send(from, QueryReply{ID: q.ID, From: n.ID(), Partial: true, Hits: hits, Spans: spans})
		return
	}

	// Figure 6, step 3: forward only the required capabilities the local
	// store could not answer.
	missing := n.missingRequirements(q.Doc, hits)
	if len(missing) == 0 {
		n.replyQuery(q, q.Origin, hits, "", spans)
		return
	}
	fwdDoc, err := n.backend.Subset(q.Doc, missing)
	if err != nil {
		// Cannot build the partial request; answer with what we have.
		n.replyQuery(q, q.Origin, hits, "", spans)
		return
	}

	targets, spares, pruned := n.selectForwardTargets(fwdDoc)
	updateBloomFPR()
	if q.Trace != 0 {
		for _, id := range pruned {
			s := telemetry.NewSpan(q.Trace, string(n.ID()), telemetry.EventBloomPrune)
			s.Peer = string(id)
			spans = append(spans, s)
		}
		for _, id := range targets {
			s := telemetry.NewSpan(q.Trace, string(n.ID()), telemetry.EventForward)
			s.Peer = string(id)
			spans = append(spans, s)
		}
	}
	if len(targets) == 0 {
		n.replyQuery(q, q.Origin, hits, "", spans)
		return
	}
	now := time.Now()
	n.mu.Lock()
	n.stats.QueriesForwarded++
	n.stats.ForwardsSent += uint64(len(targets))
	agg := &aggregation{
		origin:   q.Origin,
		originID: q.ID,
		trace:    q.Trace,
		doc:      fwdDoc,
		deadline: now.Add(n.cfg.QueryTimeout),
		forwards: make(map[transport.Addr]*forwardState, len(targets)),
		spares:   spares,
		hits:     hits, // local answers ride along with the remote ones
		spans:    spans,
	}
	n.nextID++
	fwdID := n.nextID
	for _, id := range targets {
		agg.forwards[id] = &forwardState{
			attempts:  1,
			backoff:   n.cfg.RetryBackoff,
			nextRetry: now.Add(n.cfg.RetryBackoff),
		}
	}
	n.aggregates[fwdID] = agg
	n.mu.Unlock()
	queriesForwardedTotal.Inc()
	forwardsSentTotal.Add(uint64(len(targets)))

	for _, id := range targets {
		_ = n.ep.Send(id, QueryRequest{ID: fwdID, Origin: n.ID(), Forwarded: true, Trace: q.Trace, Doc: fwdDoc})
	}
}

// missingRequirements returns the request's required capabilities that no
// local hit answers.
func (n *Node) missingRequirements(doc []byte, hits []Hit) []string {
	names, err := n.backend.RequiredNames(doc)
	if err != nil {
		return nil
	}
	answered := make(map[string]bool, len(hits))
	for _, h := range hits {
		answered[h.For] = true
	}
	var missing []string
	for _, name := range names {
		if !answered[name] {
			missing = append(missing, name)
		}
	}
	return missing
}

// selectForwardTargets picks peer directories for an unresolved query:
// Bloom-filtered first (peers whose summary cannot contain the request are
// pruned and counted), then ranked nearest-first and truncated to
// MaxForwardPeers — the paper's "Bloom filters and additional parameters
// such as ... the distance between the respective directories". The
// ranking breaks hop-count ties by NodeID so the order is deterministic
// regardless of map iteration, which retries, hedging, and seeded tests
// all depend on. Candidates the bound cut off come back as spares, in
// rank order, for hedged re-dispatch.
func (n *Node) selectForwardTargets(doc []byte) (targets, spares, pruned []transport.Addr) {
	key, keyErr := n.backend.RequestKey(doc)
	n.mu.Lock()
	defer n.mu.Unlock()
	type cand struct {
		id   transport.Addr
		hops int
	}
	var cands []cand
	for id, ps := range n.peers {
		if keyErr == nil && ps.filter != nil && !ps.filter.Test(key) {
			n.stats.ForwardsPruned++
			forwardsPrunedTotal.Inc()
			pruned = append(pruned, id)
			continue
		}
		cands = append(cands, cand{id: id, hops: ps.hops})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].hops != cands[j].hops {
			return cands[i].hops < cands[j].hops
		}
		return cands[i].id < cands[j].id
	})
	if n.cfg.MaxForwardPeers > 0 && len(cands) > n.cfg.MaxForwardPeers {
		for _, c := range cands[n.cfg.MaxForwardPeers:] {
			spares = append(spares, c.id)
		}
		cands = cands[:n.cfg.MaxForwardPeers]
	}
	targets = make([]transport.Addr, 0, len(cands))
	for _, c := range cands {
		n.peers[c.id].forwards++
		targets = append(targets, c.id)
	}
	sort.Slice(pruned, func(i, j int) bool { return pruned[i] < pruned[j] })
	return targets, spares, pruned
}

// onQueryReply routes replies: partial ones feed an aggregation, final
// ones wake a waiting client call.
func (n *Node) onQueryReply(r QueryReply) {
	if r.Partial {
		n.mu.Lock()
		agg, ok := n.aggregates[r.ID]
		if !ok {
			n.mu.Unlock()
			return
		}
		fs, known := agg.forwards[r.From]
		if !known || fs.done {
			// Unsolicited or duplicate (a retransmitted request provokes a
			// re-answer): the first reply already counted.
			n.mu.Unlock()
			return
		}
		fs.done = true
		if r.Err == "" {
			agg.hits = append(agg.hits, r.Hits...)
			n.stats.RemoteHits += uint64(len(r.Hits))
			remoteHitsTotal.Add(uint64(len(r.Hits)))
		} else {
			// The peer answered but could not serve (typically demoted
			// mid-election): its cached content is unavailable, so the
			// final reply must carry the completeness marker.
			agg.unreachable = append(agg.unreachable, r.From)
			if r.Err == ErrNotDirectory.Error() {
				delete(n.peers, r.From)
			}
		}
		agg.spans = append(agg.spans, r.Spans...)
		var askRefresh bool
		emptyForward := false
		if ps, stillPeer := n.peers[r.From]; stillPeer {
			// Any reply proves the peer alive; forget past give-ups.
			ps.failures = 0
			if r.Err == "" && len(r.Hits) == 0 {
				// A Bloom-selected peer with no answer is a false
				// positive; enough of them means the summary went stale
				// (Section 4's reactive exchange trigger).
				ps.empties++
				emptyForward = true
				if n.cfg.StaleRatio > 0 && ps.forwards >= 4 &&
					float64(ps.empties)/float64(ps.forwards) > n.cfg.StaleRatio {
					askRefresh = true
					ps.forwards, ps.empties = 0, 0
				}
			}
		}
		done := !agg.pending()
		if done {
			delete(n.aggregates, r.ID)
		}
		n.mu.Unlock()
		if emptyForward {
			forwardEmptyTotal.Inc()
			updateBloomFPR()
		}
		if askRefresh {
			summaryRefreshesTotal.Inc()
			_ = n.ep.Send(r.From, SummaryRequest{From: n.ID()})
		}
		if done {
			n.finishAggregation(agg)
		}
		return
	}
	n.mu.Lock()
	ch := n.queryWait[r.ID]
	delete(n.queryWait, r.ID)
	n.mu.Unlock()
	if ch != nil {
		ch <- r
	}
}

// maintainAggregationsLocked drives every pending forward's state machine
// one step: retransmit forwards whose backoff window elapsed, hedge to a
// spare peer when a forward reaches its first retransmission without an
// ack, abandon forwards out of retries, and collect aggregations that are
// complete (all forwards answered or abandoned) or past their deadline.
// Messages are staged and sent by the caller after releasing n.mu.
func (n *Node) maintainAggregationsLocked(now time.Time) (resends []outMsg, finished []*aggregation) {
	for id, agg := range n.aggregates {
		if now.After(agg.deadline) {
			for peer, fs := range agg.forwards {
				if !fs.done && !fs.failed {
					n.giveUpForwardLocked(agg, peer, fs, telemetry.ReasonTimeout)
				}
			}
			delete(n.aggregates, id)
			finished = append(finished, agg)
			continue
		}
		for peer, fs := range agg.forwards {
			if fs.done || fs.failed || now.Before(fs.nextRetry) {
				continue
			}
			// Fire-and-forget mode: pending forwards simply wait out the
			// aggregation deadline, as before the retry machinery existed.
			if n.cfg.ForwardRetries == 0 {
				continue
			}
			if fs.attempts > n.cfg.ForwardRetries {
				n.giveUpForwardLocked(agg, peer, fs, telemetry.ReasonRetries)
				continue
			}
			fs.attempts++
			fs.backoff *= 2
			if fs.backoff > n.cfg.RetryBackoffMax {
				fs.backoff = n.cfg.RetryBackoffMax
			}
			fs.nextRetry = now.Add(fs.backoff)
			n.stats.ForwardRetries++
			forwardRetriesTotal.Inc()
			if agg.trace != 0 {
				s := telemetry.NewSpan(agg.trace, string(n.ID()), telemetry.EventRetry)
				s.Peer = string(peer)
				agg.spans = append(agg.spans, s)
			}
			resends = append(resends, outMsg{to: peer, payload: QueryRequest{
				ID: id, Origin: n.ID(), Forwarded: true, Trace: agg.trace, Doc: agg.doc,
			}})
			// First retransmission with no ack: the peer may be gone, so
			// hedge the query to the next-best spare in parallel.
			if fs.attempts == 2 && !fs.acked {
				if m := n.hedgeLocked(agg, id, now); m != nil {
					resends = append(resends, *m)
				}
			}
		}
		if !agg.pending() {
			delete(n.aggregates, id)
			finished = append(finished, agg)
		}
	}
	return resends, finished
}

// hedgeLocked dispatches the aggregation's query to the next spare peer,
// if the hedge budget allows, returning the staged message.
func (n *Node) hedgeLocked(agg *aggregation, id uint64, now time.Time) *outMsg {
	if n.cfg.HedgeSpares <= 0 || agg.hedges >= n.cfg.HedgeSpares {
		return nil
	}
	for len(agg.spares) > 0 {
		peer := agg.spares[0]
		agg.spares = agg.spares[1:]
		if _, dup := agg.forwards[peer]; dup {
			continue
		}
		if ps, known := n.peers[peer]; known {
			ps.forwards++
		}
		agg.hedges++
		agg.forwards[peer] = &forwardState{
			attempts:  1,
			backoff:   n.cfg.RetryBackoff,
			nextRetry: now.Add(n.cfg.RetryBackoff),
		}
		n.stats.ForwardHedges++
		n.stats.ForwardsSent++
		forwardHedgesTotal.Inc()
		forwardsSentTotal.Inc()
		if agg.trace != 0 {
			s := telemetry.NewSpan(agg.trace, string(n.ID()), telemetry.EventHedge)
			s.Peer = string(peer)
			agg.spans = append(agg.spans, s)
		}
		return &outMsg{to: peer, payload: QueryRequest{
			ID: id, Origin: n.ID(), Forwarded: true, Trace: agg.trace, Doc: agg.doc,
		}}
	}
	return nil
}

// giveUpForwardLocked abandons a forward that never produced a reply: the
// peer joins the reply's unreachable marker — its span carrying why the
// forward was abandoned (deadline vs. exhausted retries) — and, if it
// never even acked, its consecutive-failure count grows toward eviction
// from the backbone view.
func (n *Node) giveUpForwardLocked(agg *aggregation, peer transport.Addr, fs *forwardState, reason string) {
	fs.failed = true
	n.stats.ForwardGiveups++
	forwardGiveupsTotal.Inc()
	agg.unreachable = append(agg.unreachable, peer)
	if agg.trace != 0 {
		s := telemetry.NewSpan(agg.trace, string(n.ID()), telemetry.EventUnreach)
		s.Peer = string(peer)
		s.Reason = reason
		agg.spans = append(agg.spans, s)
	}
	n.cfg.Recorder.RecordEvent(string(n.ID()), telemetry.ProtoGiveUp, string(peer), reason)
	if fs.acked {
		return // alive but slow or reply-lossy: not an eviction candidate
	}
	if ps, known := n.peers[peer]; known {
		ps.failures++
		if n.cfg.PeerFailureLimit > 0 && ps.failures >= n.cfg.PeerFailureLimit {
			delete(n.peers, peer)
			n.stats.PeersEvicted++
			peersEvictedTotal.Inc()
			n.cfg.Recorder.RecordEvent(string(n.ID()), telemetry.ProtoPeerEvicted, string(peer),
				fmt.Sprintf("%d consecutive give-ups", ps.failures))
		}
	}
}

// finishAggregation sends the collected hits to the origin client,
// carrying the unreachable-peers marker when forwards were abandoned.
func (n *Node) finishAggregation(agg *aggregation) {
	spans := agg.spans
	if agg.trace != 0 {
		s := telemetry.NewSpan(agg.trace, string(n.ID()), telemetry.EventReply)
		s.Peer = string(agg.origin)
		s.Hits = len(agg.hits)
		spans = append(spans, s)
	}
	sort.Slice(agg.unreachable, func(i, j int) bool { return agg.unreachable[i] < agg.unreachable[j] })
	if len(agg.unreachable) > 0 {
		n.mu.Lock()
		n.stats.PartialReplies++
		n.mu.Unlock()
		partialRepliesTotal.Inc()
	}
	_ = n.ep.Send(agg.origin, QueryReply{
		ID: agg.originID, From: n.ID(), Hits: agg.hits,
		Unreachable: agg.unreachable, Spans: spans,
	})
}

// replyQuery sends a final reply toward the origin.
func (n *Node) replyQuery(q QueryRequest, to transport.Addr, hits []Hit, errStr string, spans []telemetry.Span) {
	if q.Trace != 0 {
		s := telemetry.NewSpan(q.Trace, string(n.ID()), telemetry.EventReply)
		s.Peer = string(to)
		s.Hits = len(hits)
		spans = append(spans, s)
	}
	_ = n.ep.Send(to, QueryReply{ID: q.ID, From: n.ID(), Hits: hits, Err: errStr, Spans: spans})
}

// Publish registers a service advertisement document with this node's
// directory (possibly itself) and waits for the acknowledgement.
func (n *Node) Publish(ctx context.Context, doc []byte) error {
	n.mu.Lock()
	dir, ok := n.directoryLocked()
	if !ok {
		n.mu.Unlock()
		return ErrNoDirectory
	}
	n.nextID++
	id := n.nextID
	ch := make(chan RegisterReply, 1)
	n.regWait[id] = ch
	n.mu.Unlock()

	if err := n.ep.Send(dir, RegisterRequest{ID: id, Doc: doc}); err != nil {
		n.mu.Lock()
		delete(n.regWait, id)
		n.mu.Unlock()
		return err
	}
	select {
	case rep := <-ch:
		if rep.Err != "" {
			return fmt.Errorf("discovery: publish rejected: %s", rep.Err)
		}
		// Remember the doc for re-publication after directory churn.
		if name, err := n.backendServiceName(doc); err == nil {
			n.mu.Lock()
			n.published[name] = doc
			n.publishedAt = dir
			n.mu.Unlock()
		}
		return nil
	case <-ctx.Done():
		n.mu.Lock()
		delete(n.regWait, id)
		n.mu.Unlock()
		return ctx.Err()
	}
}

// backendServiceName extracts the service name from a document without
// registering it, by asking the backend to parse it into a request key...
// backends know their own formats, so delegate: Register is not suitable,
// and parsing twice is acceptable at publication time.
func (n *Node) backendServiceName(doc []byte) (string, error) {
	type namer interface {
		ServiceName(doc []byte) (string, error)
	}
	if b, ok := n.backend.(namer); ok {
		return b.ServiceName(doc)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return fmt.Sprintf("doc-%d", len(n.published)), nil
}

// StepDown gracefully retires this node's directory role: its cached
// advertisements are transferred to the named peer directory (the paper's
// scenario for Figure 7 — a departing directory's vicinity content must be
// re-hosted), its summary state is cleared, and the node returns to the
// Member role. The transfer is best-effort: lost registrations are
// repaired later by lease refreshes from the publishers.
func (n *Node) StepDown(successor transport.Addr) error {
	n.mu.Lock()
	if n.elect.Role() != election.Directory {
		n.mu.Unlock()
		return ErrNotDirectory
	}
	n.mu.Unlock()

	docs := n.backend.Snapshot()
	for name, doc := range docs {
		id := n.allocID()
		if err := n.ep.Send(successor, RegisterRequest{ID: id, Doc: doc}); err != nil {
			return fmt.Errorf("discovery: handover of %q: %w", name, err)
		}
		n.backend.Deregister(name)
	}

	n.mu.Lock()
	actions := n.elect.Demote(time.Now())
	n.peers = make(map[transport.Addr]*peerState)
	n.leases = make(map[string]time.Time)
	n.mu.Unlock()
	n.rebuildFilter()
	n.runElectionActions(actions)
	return nil
}

// Deregister withdraws a previously published service from this node's
// directory and stops refreshing its lease.
func (n *Node) Deregister(ctx context.Context, service string) error {
	n.mu.Lock()
	dir, ok := n.directoryLocked()
	if !ok {
		n.mu.Unlock()
		return ErrNoDirectory
	}
	delete(n.published, service)
	n.nextID++
	id := n.nextID
	ch := make(chan RegisterReply, 1)
	n.regWait[id] = ch
	n.mu.Unlock()

	if err := n.ep.Send(dir, DeregisterRequest{ID: id, Service: service}); err != nil {
		n.mu.Lock()
		delete(n.regWait, id)
		n.mu.Unlock()
		return err
	}
	select {
	case rep := <-ch:
		if rep.Err != "" {
			return fmt.Errorf("discovery: deregister rejected: %s", rep.Err)
		}
		return nil
	case <-ctx.Done():
		n.mu.Lock()
		delete(n.regWait, id)
		n.mu.Unlock()
		return ctx.Err()
	}
}

// Result is the complete outcome of a discovery call: the hits, the
// hop-level trace for traced queries, and the completeness marker.
type Result struct {
	Hits []Hit
	// Trace is the query's trace ID when it was traced — explicitly via
	// DiscoverTrace, by the 1-in-N sampler, or by the slow-query latch.
	// Zero means untraced. Traced queries are retrievable from the flight
	// recorder under this ID.
	Trace uint64
	// Spans is the hop-level trace (traced queries only).
	Spans []telemetry.Span
	// Unreachable lists peer directories that never answered despite
	// retries; non-empty means remote content may be missing.
	Unreachable []transport.Addr
}

// Partial reports whether the result may be incomplete because some peer
// directories were unreachable.
func (r Result) Partial() bool { return len(r.Unreachable) > 0 }

// Discover resolves a request document through this node's directory and
// returns the hits (best first for semantic backends). Use DiscoverResult
// to also observe the partial-result completeness marker.
func (n *Node) Discover(ctx context.Context, doc []byte) ([]Hit, error) {
	res, err := n.discover(ctx, doc, 0)
	return res.Hits, err
}

// DiscoverResult resolves a request like Discover and returns the full
// Result, including the unreachable-peers completeness marker: under
// partitions or churn the query degrades gracefully to whatever hits
// arrived, flagged Partial instead of failing closed.
func (n *Node) DiscoverResult(ctx context.Context, doc []byte) (Result, error) {
	return n.discover(ctx, doc, 0)
}

// DiscoverTrace resolves a request like DiscoverResult while recording
// the hop-level trace: every directory that touches the query appends
// spans (received, local-match, Bloom prunes, forwards, retries, hedges,
// reply) which come back inside the Result, ordered by recording
// sequence.
func (n *Node) DiscoverTrace(ctx context.Context, doc []byte) (Result, error) {
	return n.discover(ctx, doc, telemetry.NextTraceID())
}

func (n *Node) discover(ctx context.Context, doc []byte, trace uint64) (Result, error) {
	sampled := false
	n.mu.Lock()
	dir, ok := n.directoryLocked()
	if !ok {
		n.mu.Unlock()
		return Result{}, ErrNoDirectory
	}
	if trace == 0 {
		// Always-on sampled tracing: every Nth query carries a trace ID,
		// as does the first query after an untraced one came back slow.
		n.sampleCount++
		if n.traceNext || (n.cfg.TraceSampleEvery > 0 && n.sampleCount%uint64(n.cfg.TraceSampleEvery) == 0) {
			trace = telemetry.NextTraceID()
			sampled = true
			n.traceNext = false
		}
	}
	n.nextID++
	id := n.nextID
	ch := make(chan QueryReply, 1)
	n.queryWait[id] = ch
	n.mu.Unlock()
	if sampled {
		tracesSampledTotal.Inc()
	}

	start := time.Now()
	if err := n.ep.Send(dir, QueryRequest{ID: id, Origin: n.ID(), Trace: trace, Doc: doc}); err != nil {
		n.mu.Lock()
		delete(n.queryWait, id)
		n.mu.Unlock()
		return Result{}, err
	}
	select {
	case rep := <-ch:
		telemetry.SortSpans(rep.Spans)
		res := Result{Hits: rep.Hits, Trace: trace, Spans: rep.Spans, Unreachable: rep.Unreachable}
		n.retainQuery(trace, sampled, start, res)
		if rep.Err != "" {
			return Result{Trace: trace, Spans: rep.Spans}, fmt.Errorf("discovery: query failed: %s", rep.Err)
		}
		return res, nil
	case <-ctx.Done():
		n.mu.Lock()
		delete(n.queryWait, id)
		n.mu.Unlock()
		return Result{}, ctx.Err()
	}
}

// retainQuery deposits a finished origin query into the flight recorder:
// traced queries always, untraced ones only when they came back slow —
// those leave a spanless record and arm the latch that traces the next
// query, so a latency regression starts producing span trees within one
// query of being noticed.
func (n *Node) retainQuery(trace uint64, sampled bool, start time.Time, res Result) {
	dur := time.Since(start)
	querySeconds.Observe(dur)
	slow := n.cfg.SlowQueryThreshold > 0 && dur >= n.cfg.SlowQueryThreshold
	if slow {
		tracesSlowTotal.Inc()
	}
	if trace == 0 {
		if !slow {
			return
		}
		n.mu.Lock()
		n.traceNext = true
		n.mu.Unlock()
		trace = telemetry.NextTraceID()
	}
	n.cfg.Recorder.RecordTrace(telemetry.TraceRecord{
		ID:      trace,
		Node:    string(n.ID()),
		Start:   start,
		Dur:     dur,
		Hits:    len(res.Hits),
		Partial: res.Partial(),
		Sampled: sampled,
		Slow:    slow,
		Spans:   res.Spans,
	})
}
