package discovery

import (
	"encoding/json"
	"fmt"
)

// Wire codec for the discovery protocol. Inside the simulator payloads
// travel as Go values, but a real deployment (and the fuzz harness) needs
// a byte form: a one-byte wire version, a one-byte message tag, then the
// JSON encoding of the message struct. The tagged envelope keeps decoding
// total — every input either yields exactly one known message type or an
// error, never a panic — so malformed or replayed frames cannot take down
// a node. The version byte guards the "append only" tag promise across
// deployments: a node never guesses at frames minted by a build speaking
// a different wire dialect, it rejects them with *VersionError.

// WireVersion is the codec version this build emits and accepts. Bump it
// on any change that re-reads an existing tag differently; appending new
// tags does not require a bump.
const WireVersion byte = 1

// VersionError reports a frame whose wire version this build does not
// speak.
type VersionError struct {
	// Got is the version byte found on the wire.
	Got byte
}

// Error implements error.
func (e *VersionError) Error() string {
	return fmt.Sprintf("discovery: wire version %d, this build speaks %d", e.Got, WireVersion)
}

// Message tags. The values are part of the wire format; append only.
const (
	tagRegisterRequest byte = iota + 1
	tagRegisterReply
	tagDeregisterRequest
	tagQueryRequest
	tagQueryReply
	tagDirectoryAnnounce
	tagSummaryPush
	tagSummaryRequest
	tagForwardAck
	tagRepublishSolicit
)

// EncodeMessage serializes one protocol message into its tagged wire
// form. Unknown payload types are an error, not a panic.
func EncodeMessage(payload any) ([]byte, error) {
	var tag byte
	switch payload.(type) {
	case RegisterRequest:
		tag = tagRegisterRequest
	case RegisterReply:
		tag = tagRegisterReply
	case DeregisterRequest:
		tag = tagDeregisterRequest
	case QueryRequest:
		tag = tagQueryRequest
	case QueryReply:
		tag = tagQueryReply
	case DirectoryAnnounce:
		tag = tagDirectoryAnnounce
	case SummaryPush:
		tag = tagSummaryPush
	case SummaryRequest:
		tag = tagSummaryRequest
	case ForwardAck:
		tag = tagForwardAck
	case RepublishSolicit:
		tag = tagRepublishSolicit
	default:
		return nil, fmt.Errorf("discovery: encode: unknown message type %T", payload)
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("discovery: encode %T: %w", payload, err)
	}
	return append([]byte{WireVersion, tag}, body...), nil
}

// decodeAs unmarshals a frame body into M and returns it by value,
// matching what nodes put on the simulated wire and what handleMessage
// switches on.
func decodeAs[M any](tag byte, body []byte) (any, error) {
	var m M
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("discovery: decode tag %d: %w", tag, err)
	}
	return m, nil
}

// DecodeMessage parses a tagged wire frame back into the concrete message
// struct. Every failure mode returns an error; arbitrary input never
// panics.
func DecodeMessage(frame []byte) (any, error) {
	if len(frame) == 0 {
		return nil, fmt.Errorf("discovery: decode: empty frame")
	}
	if frame[0] != WireVersion {
		return nil, &VersionError{Got: frame[0]}
	}
	if len(frame) < 2 {
		return nil, fmt.Errorf("discovery: decode: frame lacks message tag")
	}
	tag, body := frame[1], frame[2:]
	switch tag {
	case tagRegisterRequest:
		return decodeAs[RegisterRequest](tag, body)
	case tagRegisterReply:
		return decodeAs[RegisterReply](tag, body)
	case tagDeregisterRequest:
		return decodeAs[DeregisterRequest](tag, body)
	case tagQueryRequest:
		return decodeAs[QueryRequest](tag, body)
	case tagQueryReply:
		return decodeAs[QueryReply](tag, body)
	case tagDirectoryAnnounce:
		return decodeAs[DirectoryAnnounce](tag, body)
	case tagSummaryPush:
		return decodeAs[SummaryPush](tag, body)
	case tagSummaryRequest:
		return decodeAs[SummaryRequest](tag, body)
	case tagForwardAck:
		return decodeAs[ForwardAck](tag, body)
	case tagRepublishSolicit:
		return decodeAs[RepublishSolicit](tag, body)
	default:
		return nil, fmt.Errorf("discovery: decode: unknown tag %d", tag)
	}
}

// WireCodec exposes the package codec through the transport.Codec
// interface, so socket transports can serialize discovery traffic
// without importing this package (the dependency points the other way).
type WireCodec struct{}

// Encode implements transport.Codec.
func (WireCodec) Encode(payload any) ([]byte, error) { return EncodeMessage(payload) }

// Decode implements transport.Codec.
func (WireCodec) Decode(frame []byte) (any, error) { return DecodeMessage(frame) }
