// Package discovery implements the S-Ariadne service discovery protocol
// (Section 4 of the paper): a semi-distributed SDP where elected directory
// nodes cache and classify the service advertisements of their vicinity,
// summarize their content with Bloom filters, and cooperate to answer
// queries across the network — local discovery first, then selective
// forwarding to the peer directories whose summaries may cover the
// request.
//
// The protocol shell is parameterized by a Backend: the semantic backend
// (SemanticBackend, this package) classifies Amigo-S capabilities into
// graphs over encoded ontologies — S-Ariadne proper; the syntactic WSDL
// backend (package ariadne) is the paper's baseline. Figure 10 is exactly
// this pair measured against each other.
package discovery

import (
	"errors"
	"fmt"
	"sync"

	"sariadne/internal/codes"
	"sariadne/internal/match"
	"sariadne/internal/profile"
	"sariadne/internal/registry"
)

// Backend is the pluggable directory store behind a discovery node.
// Implementations must be safe for concurrent use.
type Backend interface {
	// Name identifies the backend for reports ("s-ariadne", "ariadne").
	Name() string
	// Register parses and stores a service advertisement document,
	// returning the service's name.
	Register(doc []byte) (string, error)
	// Deregister removes a previously registered service by name.
	Deregister(service string) bool
	// Query parses a request document and returns matching hits, best
	// first.
	Query(doc []byte) ([]Hit, error)
	// Keys returns the summary keys of the stored content — the unit
	// hashed into the directory's Bloom filter.
	Keys() []string
	// RequestKey derives the Bloom probe key for a request document.
	RequestKey(doc []byte) (string, error)
	// RequiredNames lists the required capabilities of a request document,
	// so the protocol can detect partially answered queries.
	RequiredNames(doc []byte) ([]string, error)
	// Subset rebuilds a request document keeping only the named required
	// capabilities (used when forwarding just the unresolved part of a
	// query, Figure 6 step 3).
	Subset(doc []byte, names []string) ([]byte, error)
	// Snapshot returns the original advertisement documents by service
	// name, for directory handover (a departing directory transfers its
	// cache to a peer so the vicinity keeps its advertisements).
	Snapshot() map[string][]byte
	// Len returns the number of stored advertisements.
	Len() int
}

// Hit is one discovery answer.
type Hit struct {
	// Service and Capability name the advertisement.
	Service    string
	Capability string
	// Provider is the advertised provider/host.
	Provider string
	// Distance is the semantic distance (0 for syntactic backends).
	Distance int
	// For names the required capability of the request this hit answers.
	For string
	// Directory is filled by the protocol with the answering directory.
	Directory string
}

// String renders the hit compactly.
func (h Hit) String() string {
	return fmt.Sprintf("%s/%s@%d", h.Service, h.Capability, h.Distance)
}

// ErrNoRequiredCapability is returned when a request document carries no
// required capability.
var ErrNoRequiredCapability = errors.New("discovery: request has no required capability")

// SemanticBackend is the S-Ariadne directory store: Amigo-S documents
// parsed at publication time, capabilities classified into the DAG
// registry, matching over encoded ontologies.
type SemanticBackend struct {
	dir     *registry.Directory
	matcher *match.CodeMatcher

	mu   sync.Mutex
	docs map[string][]byte
}

// NewSemanticBackend builds the backend over encoded code tables.
func NewSemanticBackend(reg *codes.Registry) *SemanticBackend {
	m := match.NewCodeMatcher(reg)
	return &SemanticBackend{
		dir:     registry.NewDirectory(m),
		matcher: m,
		docs:    make(map[string][]byte),
	}
}

// Name implements Backend.
func (b *SemanticBackend) Name() string { return "s-ariadne" }

// Register implements Backend: parse the Amigo-S document, check embedded
// code versions, classify the provided capabilities.
func (b *SemanticBackend) Register(doc []byte) (string, error) {
	svc, err := profile.Unmarshal(doc)
	if err != nil {
		return "", err
	}
	if err := b.matcher.CheckVersions(svc); err != nil {
		return "", err
	}
	if err := b.dir.Register(svc); err != nil {
		return "", err
	}
	b.mu.Lock()
	b.docs[svc.Name] = append([]byte(nil), doc...)
	b.mu.Unlock()
	return svc.Name, nil
}

// Deregister implements Backend.
func (b *SemanticBackend) Deregister(service string) bool {
	b.mu.Lock()
	delete(b.docs, service)
	b.mu.Unlock()
	return b.dir.Deregister(service)
}

// Snapshot implements Backend.
func (b *SemanticBackend) Snapshot() map[string][]byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string][]byte, len(b.docs))
	for name, doc := range b.docs {
		out[name] = append([]byte(nil), doc...)
	}
	return out
}

// Query implements Backend: every required capability of the request
// document is resolved against the classified directory; hits are the
// union, best-first per capability.
func (b *SemanticBackend) Query(doc []byte) ([]Hit, error) {
	svc, err := profile.Unmarshal(doc)
	if err != nil {
		return nil, err
	}
	reqs := svc.Required
	if len(reqs) == 0 {
		return nil, ErrNoRequiredCapability
	}
	var hits []Hit
	for _, req := range reqs {
		for _, r := range b.dir.Query(req) {
			hits = append(hits, Hit{
				Service:    r.Entry.Service,
				Capability: r.Entry.Capability.Name,
				Provider:   r.Entry.Provider,
				Distance:   r.Distance,
				For:        req.Name,
			})
		}
	}
	return hits, nil
}

// RequiredNames implements Backend.
func (b *SemanticBackend) RequiredNames(doc []byte) ([]string, error) {
	svc, err := profile.Unmarshal(doc)
	if err != nil {
		return nil, err
	}
	if len(svc.Required) == 0 {
		return nil, ErrNoRequiredCapability
	}
	names := make([]string, 0, len(svc.Required))
	for _, c := range svc.Required {
		names = append(names, c.Name)
	}
	return names, nil
}

// Subset implements Backend: the request document restricted to the named
// required capabilities.
func (b *SemanticBackend) Subset(doc []byte, names []string) ([]byte, error) {
	svc, err := profile.Unmarshal(doc)
	if err != nil {
		return nil, err
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	kept := svc.Required[:0]
	for _, c := range svc.Required {
		if want[c.Name] {
			kept = append(kept, c)
		}
	}
	svc.Required = kept
	if len(svc.Required) == 0 {
		return nil, ErrNoRequiredCapability
	}
	return profile.Marshal(svc)
}

// Keys implements Backend: the distinct ontology-set keys of stored
// capabilities (Section 4 hashes O(C) per capability).
func (b *SemanticBackend) Keys() []string { return b.dir.OntologyKeys() }

// RequestKey implements Backend: the ontology-set key of the first
// required capability.
func (b *SemanticBackend) RequestKey(doc []byte) (string, error) {
	svc, err := profile.Unmarshal(doc)
	if err != nil {
		return "", err
	}
	if len(svc.Required) == 0 {
		return "", ErrNoRequiredCapability
	}
	return svc.Required[0].OntologyKey(), nil
}

// Len implements Backend.
func (b *SemanticBackend) Len() int { return b.dir.NumCapabilities() }

// ServiceName parses just enough of a document to name the service; the
// protocol uses it to track a node's own publications across directory
// churn.
func (b *SemanticBackend) ServiceName(doc []byte) (string, error) {
	svc, err := profile.Unmarshal(doc)
	if err != nil {
		return "", err
	}
	return svc.Name, nil
}

// Directory exposes the underlying classified directory for diagnostics
// and benchmarks.
func (b *SemanticBackend) Directory() *registry.Directory { return b.dir }

var _ Backend = (*SemanticBackend)(nil)
