package discovery

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"sariadne/internal/election"
	"sariadne/internal/simnet"
)

// TestPropertyChaosEventualDiscovery is the liveness property behind the
// robustness layer: under ANY generated fault plan whose every window
// eventually closes (partitions heal, bursts drain, crashed nodes
// restart), every published capability becomes discoverable again. The
// generator draws partitions, burst loss up to 50%, and churn of either
// directory; testing/quick shrinks the seed space on failure.
func TestPropertyChaosEventualDiscovery(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep is slow")
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net := simnet.New(simnet.Config{Seed: seed})
		defer net.Close()
		eps, err := simnet.BuildStar(net, "n", 3)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			QueryTimeout:     200 * time.Millisecond,
			TickInterval:     2 * time.Millisecond,
			SummaryPushEvery: 1,
			AnnounceInterval: 50 * time.Millisecond,
			ForwardRetries:   6,
			RetryBackoff:     3 * time.Millisecond,
			RetryBackoffMax:  12 * time.Millisecond,
			Election: election.Config{
				AdvertiseInterval: 20 * time.Millisecond,
				AdvertiseTTL:      2,
				ElectionTimeout:   time.Hour,
			},
		}
		nodes := make([]*Node, len(eps))
		for i, ep := range eps {
			nodes[i] = NewNode(ep, NewSemanticBackend(fixtureRegistry(t)), cfg)
			nodes[i].Start(context.Background())
		}
		defer func() {
			for _, n := range nodes {
				n.Stop()
			}
		}()
		for _, n := range nodes {
			n.BecomeDirectory()
		}
		setup, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		deadlineReached := func(cond func() bool) bool {
			for !cond() {
				if setup.Err() != nil {
					return true
				}
				qctx, qcancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
				<-qctx.Done() // paced re-check without busy spinning
				qcancel()
			}
			return false
		}
		if deadlineReached(func() bool { return len(nodes[0].Peers()) == 2 }) {
			t.Logf("seed=%d: backbone handshake never completed", seed)
			return false
		}
		// The capability under test lives at n1 only.
		if err := nodes[1].Publish(setup, workstationDoc(t)); err != nil {
			t.Logf("seed=%d: publish: %v", seed, err)
			return false
		}
		key, err := nodes[0].backend.RequestKey(pdaRequestDoc(t))
		if err != nil {
			t.Fatal(err)
		}
		if deadlineReached(func() bool {
			nodes[0].mu.Lock()
			defer nodes[0].mu.Unlock()
			ps := nodes[0].peers["n1"]
			return ps != nil && ps.filter != nil && ps.filter.Test(key)
		}) {
			t.Logf("seed=%d: n1 summary never reached n0", seed)
			return false
		}

		// A random, always-healing fault plan.
		window := func(max time.Duration) (at, until time.Duration) {
			at = time.Duration(rng.Intn(50)) * time.Millisecond
			until = at + time.Duration(1+rng.Intn(int(max/time.Millisecond)))*time.Millisecond
			return at, until
		}
		var plan simnet.FaultPlan
		if rng.Intn(2) == 0 {
			at, heal := window(400 * time.Millisecond)
			cut := simnet.NodeID([]string{"n1", "n2"}[rng.Intn(2)])
			var rest []simnet.NodeID
			for _, id := range []simnet.NodeID{"n0", "n1", "n2"} {
				if id != cut {
					rest = append(rest, id)
				}
			}
			plan.Partitions = append(plan.Partitions, simnet.Partition{
				Name: "cut", Groups: [][]simnet.NodeID{rest, {cut}}, At: at, Heal: heal,
			})
		}
		if rng.Intn(2) == 0 {
			at, until := window(300 * time.Millisecond)
			plan.Bursts = append(plan.Bursts, simnet.Burst{Drop: rng.Float64() * 0.5, At: at, Until: until})
		}
		if rng.Intn(2) == 0 {
			at, until := window(300 * time.Millisecond)
			plan.Churn = append(plan.Churn, simnet.Churn{
				Node: simnet.NodeID([]string{"n1", "n2"}[rng.Intn(2)]), DownAt: at, UpAt: until,
			})
		}
		net.ApplyFaultPlan(plan)

		// Query throughout the turbulence; after every window closes, the
		// capability must be found again within the recovery budget.
		rbudget, rcancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer rcancel()
		for {
			qctx, qcancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
			hits, err := nodes[0].Discover(qctx, pdaRequestDoc(t))
			qcancel()
			if len(net.ActiveFaults()) == 0 && err == nil && len(hits) >= 1 {
				return true
			}
			if rbudget.Err() != nil {
				t.Logf("seed=%d: capability not rediscovered after plan %v drained (last: hits=%d err=%v)",
					seed, plan, len(hits), err)
				return false
			}
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}
