package discovery

import (
	"strings"
	"testing"

	"sariadne/internal/codes"
	"sariadne/internal/ontology"
	"sariadne/internal/profile"
)

// fixtureRegistry encodes the Figure 1 ontologies.
func fixtureRegistry(t testing.TB) *codes.Registry {
	t.Helper()
	reg := codes.NewRegistry()
	for _, o := range []*ontology.Ontology{profile.MediaOntology(), profile.ServersOntology()} {
		reg.Register(codes.MustEncode(ontology.MustClassify(o), codes.DefaultParams))
	}
	return reg
}

func workstationDoc(t testing.TB) []byte {
	t.Helper()
	doc, err := profile.Marshal(profile.WorkstationService())
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func pdaRequestDoc(t testing.TB) []byte {
	t.Helper()
	doc, err := profile.Marshal(profile.PDAService())
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestSemanticBackendRegisterQuery(t *testing.T) {
	b := NewSemanticBackend(fixtureRegistry(t))
	if b.Name() != "s-ariadne" {
		t.Fatalf("Name = %q", b.Name())
	}
	name, err := b.Register(workstationDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	if name != "MediaWorkstation" {
		t.Fatalf("name = %q", name)
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2 capabilities", b.Len())
	}

	hits, err := b.Query(pdaRequestDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Capability != "SendDigitalStream" || hits[0].Distance != 3 {
		t.Fatalf("hits = %v", hits)
	}
	if s := hits[0].String(); !strings.Contains(s, "SendDigitalStream") {
		t.Errorf("Hit.String = %q", s)
	}
}

func TestSemanticBackendRejects(t *testing.T) {
	b := NewSemanticBackend(fixtureRegistry(t))
	if _, err := b.Register([]byte("garbage")); err == nil {
		t.Fatal("registered garbage")
	}
	if _, err := b.Query([]byte("garbage")); err == nil {
		t.Fatal("queried garbage")
	}
	// A request with no required capability is an error.
	doc, err := profile.Marshal(profile.WorkstationService())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Query(doc); err == nil {
		t.Fatal("accepted request without required capabilities")
	}
	if _, err := b.RequestKey(doc); err == nil {
		t.Fatal("RequestKey accepted request without required capabilities")
	}
	// Stale code versions are refused at publication (Section 3.2).
	svc := profile.WorkstationService()
	svc.CodeVersions = map[string]string{profile.MediaOntologyURI: "99"}
	stale, err := profile.Marshal(svc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Register(stale); err == nil {
		t.Fatal("accepted stale code versions")
	}
}

func TestSemanticBackendDeregister(t *testing.T) {
	b := NewSemanticBackend(fixtureRegistry(t))
	if _, err := b.Register(workstationDoc(t)); err != nil {
		t.Fatal(err)
	}
	if !b.Deregister("MediaWorkstation") {
		t.Fatal("Deregister failed")
	}
	if b.Len() != 0 {
		t.Fatalf("Len = %d after deregister", b.Len())
	}
	hits, err := b.Query(pdaRequestDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Fatalf("hits after deregister = %v", hits)
	}
}

func TestSemanticBackendKeys(t *testing.T) {
	b := NewSemanticBackend(fixtureRegistry(t))
	if _, err := b.Register(workstationDoc(t)); err != nil {
		t.Fatal(err)
	}
	keys := b.Keys()
	if len(keys) != 1 {
		t.Fatalf("Keys = %v", keys)
	}
	reqKey, err := b.RequestKey(pdaRequestDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	if reqKey != keys[0] {
		t.Fatalf("request key %q != stored key %q", reqKey, keys[0])
	}
	name, err := b.ServiceName(workstationDoc(t))
	if err != nil || name != "MediaWorkstation" {
		t.Fatalf("ServiceName = %q, %v", name, err)
	}
	if _, err := b.ServiceName([]byte("zz")); err == nil {
		t.Fatal("ServiceName accepted garbage")
	}
}
