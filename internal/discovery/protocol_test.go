package discovery

import (
	"context"
	"errors"
	"testing"
	"time"

	"sariadne/internal/election"
	"sariadne/internal/ontology"
	"sariadne/internal/profile"
	"sariadne/internal/simnet"
)

// twoCapRequestDoc builds a request with two required capabilities: the
// PDA's video request plus a game request.
func twoCapRequestDoc(t *testing.T) []byte {
	t.Helper()
	svc := profile.PDAService()
	svc.Required = append(svc.Required, &profile.Capability{
		Name:     "GetGame",
		Category: ontology.Ref{Ontology: profile.ServersOntologyURI, Name: "GameServer"},
		Inputs:   []ontology.Ref{{Ontology: profile.MediaOntologyURI, Name: "GameResource"}},
		Outputs:  []ontology.Ref{{Ontology: profile.MediaOntologyURI, Name: "Stream"}},
	})
	doc, err := profile.Marshal(svc)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// gameOnlyServiceDoc advertises just the ProvideGame capability.
func gameOnlyServiceDoc(t *testing.T) []byte {
	t.Helper()
	svc := profile.WorkstationService()
	svc.Name = "GameBox"
	svc.Provided = svc.Provided[1:] // ProvideGame only
	doc, err := profile.Marshal(svc)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// videoOnlyServiceDoc advertises a narrow video capability (VideoServer,
// VideoResource in, Stream out) that cannot substitute for a game request.
func videoOnlyServiceDoc(t *testing.T) []byte {
	t.Helper()
	svc := &profile.Service{
		Name:     "VideoBox",
		Provider: "video-host",
		Provided: []*profile.Capability{{
			Name:     "StreamVideo",
			Category: ontology.Ref{Ontology: profile.ServersOntologyURI, Name: "VideoServer"},
			Inputs:   []ontology.Ref{{Ontology: profile.MediaOntologyURI, Name: "VideoResource"}},
			Outputs:  []ontology.Ref{{Ontology: profile.MediaOntologyURI, Name: "Stream"}},
		}},
	}
	doc, err := profile.Marshal(svc)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestPartialForwarding: a two-capability request where the local
// directory answers one capability and a remote directory the other —
// Figure 6's "if some capabilities have not been found locally" path.
func TestPartialForwarding(t *testing.T) {
	_, nodes := testCluster(t, 5)
	nodes[1].BecomeDirectory()
	nodes[3].BecomeDirectory()
	waitUntil(t, 2*time.Second, "backbone handshake", func() bool {
		return len(nodes[1].Peers()) == 1 && len(nodes[3].Peers()) == 1
	})

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()

	// Video service next to n1; game service next to n3.
	waitUntil(t, 2*time.Second, "n0 directory", func() bool {
		d, ok := nodes[0].DirectoryID()
		return ok && d == "n1"
	})
	waitUntil(t, 2*time.Second, "n4 directory", func() bool {
		d, ok := nodes[4].DirectoryID()
		return ok && d == "n3"
	})
	if err := nodes[0].Publish(ctx, videoOnlyServiceDoc(t)); err != nil {
		t.Fatal(err)
	}
	if err := nodes[4].Publish(ctx, gameOnlyServiceDoc(t)); err != nil {
		t.Fatal(err)
	}

	hits, err := nodes[0].Discover(ctx, twoCapRequestDoc(t))
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	byFor := map[string]Hit{}
	for _, h := range hits {
		byFor[h.For] = h
	}
	if len(byFor) != 2 {
		t.Fatalf("hits = %v, want answers for both capabilities", hits)
	}
	if h := byFor["GetVideoStream"]; h.Service != "VideoBox" || h.Directory != "n1" {
		t.Errorf("video hit = %+v", h)
	}
	if h := byFor["GetGame"]; h.Service != "GameBox" || h.Directory != "n3" {
		t.Errorf("game hit = %+v", h)
	}
	st := nodes[1].Stats()
	if st.QueriesForwarded != 1 {
		t.Errorf("stats = %+v, want exactly one forwarded query", st)
	}
}

// TestMaxForwardPeers bounds the fan-out to the nearest directories.
func TestMaxForwardPeers(t *testing.T) {
	net := simnet.New(simnet.Config{})
	t.Cleanup(net.Close)
	eps, err := simnet.BuildLine(net, "n", 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		QueryTimeout:     300 * time.Millisecond,
		TickInterval:     2 * time.Millisecond,
		SummaryPushEvery: 1,
		MaxForwardPeers:  1,
		Election: election.Config{
			AdvertiseInterval: 15 * time.Millisecond,
			AdvertiseTTL:      1,
			ElectionTimeout:   time.Hour,
		},
	}
	nodes := make([]*Node, len(eps))
	for i, ep := range eps {
		nodes[i] = NewNode(ep, NewSemanticBackend(fixtureRegistry(t)), cfg)
		nodes[i].Start(context.Background())
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
	})
	// Directories at n1, n3, n5; client at n0 uses n1.
	nodes[1].BecomeDirectory()
	nodes[3].BecomeDirectory()
	nodes[5].BecomeDirectory()
	waitUntil(t, 2*time.Second, "backbone", func() bool {
		return len(nodes[1].Peers()) == 2
	})
	waitUntil(t, 2*time.Second, "n0 directory", func() bool {
		_, ok := nodes[0].DirectoryID()
		return ok
	})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	// Both remote directories hold a matching service, so both pass the
	// Bloom probe; the fan-out bound must pick only the nearer one (n3).
	if err := nodes[3].Publish(ctx, workstationDoc(t)); err != nil {
		t.Fatal(err)
	}
	if err := nodes[5].Publish(ctx, workstationDoc(t)); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 2*time.Second, "summaries at n1", func() bool {
		nodes[1].mu.Lock()
		defer nodes[1].mu.Unlock()
		for _, id := range []simnet.NodeID{"n3", "n5"} {
			ps := nodes[1].peers[id]
			if ps == nil || ps.filter == nil || ps.filter.Additions() == 0 {
				return false
			}
		}
		return true
	})
	hits, err := nodes[0].Discover(ctx, pdaRequestDoc(t))
	if err != nil || len(hits) == 0 {
		t.Fatalf("Discover: hits=%v err=%v", hits, err)
	}
	if hits[0].Directory != "n3" {
		t.Errorf("answering directory = %s, want nearest (n3)", hits[0].Directory)
	}
	st := nodes[1].Stats()
	if st.ForwardsSent != 1 {
		t.Fatalf("stats = %+v, want ForwardsSent=1 (MaxForwardPeers)", st)
	}
}

// TestLeaseExpiry: with soft-state leases, advertisements of a dead
// publisher disappear; a live publisher's refresh keeps them alive.
func TestLeaseExpiry(t *testing.T) {
	net := simnet.New(simnet.Config{})
	t.Cleanup(net.Close)
	eps, err := simnet.BuildLine(net, "n", 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		QueryTimeout:     300 * time.Millisecond,
		TickInterval:     2 * time.Millisecond,
		SummaryPushEvery: 1,
		LeaseTTL:         120 * time.Millisecond,
		RefreshInterval:  30 * time.Millisecond,
		Election: election.Config{
			AdvertiseInterval: 15 * time.Millisecond,
			AdvertiseTTL:      3,
			ElectionTimeout:   time.Hour,
		},
	}
	nodes := make([]*Node, len(eps))
	for i, ep := range eps {
		nodes[i] = NewNode(ep, NewSemanticBackend(fixtureRegistry(t)), cfg)
		nodes[i].Start(context.Background())
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
	})
	nodes[1].BecomeDirectory()
	waitUntil(t, 2*time.Second, "directory", func() bool {
		_, ok0 := nodes[0].DirectoryID()
		_, ok2 := nodes[2].DirectoryID()
		return ok0 && ok2
	})

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := nodes[0].Publish(ctx, workstationDoc(t)); err != nil {
		t.Fatal(err)
	}

	// The publisher refreshes, so the advertisement must stay discoverable
	// continuously for several TTLs: poll Discover until the window has
	// elapsed, failing the moment the advertisement drops out.
	refreshWindow := time.Now().Add(3 * cfg.LeaseTTL)
	waitUntil(t, 10*cfg.LeaseTTL, "advertisement to survive 3 lease TTLs", func() bool {
		hits, err := nodes[2].Discover(ctx, pdaRequestDoc(t))
		if err != nil || len(hits) != 1 {
			t.Fatalf("hits during refresh window = %v, err = %v", hits, err)
		}
		return time.Now().After(refreshWindow)
	})

	// Kill the publisher: its lease lapses and the directory forgets it.
	nodes[0].Stop()
	net.RemoveNode("n0")
	waitUntil(t, 3*time.Second, "lease expiry", func() bool {
		ctx2, cancel2 := context.WithTimeout(context.Background(), 200*time.Millisecond)
		defer cancel2()
		hits, err := nodes[2].Discover(ctx2, pdaRequestDoc(t))
		return err == nil && len(hits) == 0
	})
}

// TestReactiveSummaryRefresh: a peer whose summary went stale (service
// deregistered without a push) keeps attracting forwards until the
// stale-ratio trigger requests a fresh summary, after which the peer is
// pruned.
func TestReactiveSummaryRefresh(t *testing.T) {
	_, nodes := testCluster(t, 5)
	nodes[1].BecomeDirectory()
	nodes[3].BecomeDirectory()
	waitUntil(t, 2*time.Second, "backbone handshake", func() bool {
		return len(nodes[1].Peers()) == 1 && len(nodes[3].Peers()) == 1
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// n4 publishes the workstation at n3, then deregisters it directly at
	// the backend (simulating silent departure): n3's pushed summary at n1
	// is now stale.
	waitUntil(t, 2*time.Second, "n4 directory", func() bool {
		d, ok := nodes[4].DirectoryID()
		return ok && d == "n3"
	})
	if err := nodes[4].Publish(ctx, workstationDoc(t)); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 2*time.Second, "stale summary at n1", func() bool {
		nodes[1].mu.Lock()
		defer nodes[1].mu.Unlock()
		ps := nodes[1].peers["n3"]
		return ps != nil && ps.filter != nil
	})
	// The service departs via the protocol: n3's own filter is rebuilt,
	// but the summary n1 already holds is now stale (no push on removal).
	if err := nodes[4].Deregister(ctx, "MediaWorkstation"); err != nil {
		t.Fatal(err)
	}

	// Repeated unresolvable queries through n1 hit the stale filter,
	// forward to n3, come back empty, and eventually trigger the refresh.
	waitUntil(t, 2*time.Second, "n0 directory", func() bool {
		d, ok := nodes[0].DirectoryID()
		return ok && d == "n1"
	})
	for i := 0; i < 6; i++ {
		if _, err := nodes[0].Discover(ctx, pdaRequestDoc(t)); err != nil {
			t.Fatalf("Discover %d: %v", i, err)
		}
	}
	// After the refresh, the fresh (empty) summary prunes n3.
	waitUntil(t, 3*time.Second, "pruning after refresh", func() bool {
		before := nodes[1].Stats().ForwardsPruned
		if _, err := nodes[0].Discover(ctx, pdaRequestDoc(t)); err != nil {
			return false
		}
		return nodes[1].Stats().ForwardsPruned > before
	})
}

// TestForwardTimeout: when a peer directory dies mid-query, the
// aggregation deadline still delivers an answer (with whatever was
// collected) instead of hanging the client.
func TestForwardTimeout(t *testing.T) {
	net, nodes := testCluster(t, 5)
	nodes[1].BecomeDirectory()
	nodes[3].BecomeDirectory()
	waitUntil(t, 2*time.Second, "backbone handshake", func() bool {
		return len(nodes[1].Peers()) == 1 && len(nodes[3].Peers()) == 1
	})
	waitUntil(t, 2*time.Second, "n0 directory", func() bool {
		d, ok := nodes[0].DirectoryID()
		return ok && d == "n1"
	})
	// Kill n3's process but leave it wired into n1's peer set: forwarded
	// queries to it go unanswered.
	nodes[3].Stop()
	net.RemoveNode("n3")

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	start := time.Now()
	hits, err := nodes[0].Discover(ctx, pdaRequestDoc(t))
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if len(hits) != 0 {
		t.Fatalf("hits = %v, want none", hits)
	}
	// The answer must have waited for the aggregation deadline, not the
	// client context.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("answer took %v, aggregation deadline did not fire", elapsed)
	}
}

// TestDeregisterErrors covers the client-side failure paths.
func TestDeregisterErrors(t *testing.T) {
	_, nodes := testCluster(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	// No directory known yet.
	if err := nodes[0].Deregister(ctx, "anything"); !errors.Is(err, ErrNoDirectory) {
		t.Fatalf("Deregister = %v, want ErrNoDirectory", err)
	}
	nodes[1].BecomeDirectory()
	waitUntil(t, 2*time.Second, "directory", func() bool {
		_, ok := nodes[0].DirectoryID()
		return ok
	})
	// Unknown service is rejected by the directory.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	if err := nodes[0].Deregister(ctx2, "ghost"); err == nil {
		t.Fatal("Deregister of unknown service succeeded")
	}
	// Publish then deregister cleanly.
	if err := nodes[0].Publish(ctx2, workstationDoc(t)); err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].Deregister(ctx2, "MediaWorkstation"); err != nil {
		t.Fatalf("Deregister: %v", err)
	}
	hits, err := nodes[0].Discover(ctx2, pdaRequestDoc(t))
	if err != nil || len(hits) != 0 {
		t.Fatalf("after deregister: hits=%v err=%v", hits, err)
	}
}
