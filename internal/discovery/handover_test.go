package discovery

import (
	"context"
	"errors"
	"testing"
	"time"

	"sariadne/internal/election"
)

// TestStepDownHandover: a directory gracefully retires, transferring its
// cached advertisements to a peer directory; queries keep resolving
// through the successor without waiting for lease-refresh repair.
func TestStepDownHandover(t *testing.T) {
	_, nodes := testCluster(t, 5)
	nodes[1].BecomeDirectory()
	nodes[3].BecomeDirectory()
	waitUntil(t, 2*time.Second, "backbone handshake", func() bool {
		return len(nodes[1].Peers()) == 1 && len(nodes[3].Peers()) == 1
	})

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	waitUntil(t, 2*time.Second, "n0 directory", func() bool {
		d, ok := nodes[0].DirectoryID()
		return ok && d == "n1"
	})
	if err := nodes[0].Publish(ctx, workstationDoc(t)); err != nil {
		t.Fatal(err)
	}
	if nodes[1].Backend().Len() == 0 {
		t.Fatal("setup: n1 holds nothing")
	}

	// n1 steps down, handing its cache to n3.
	if err := nodes[1].StepDown("n3"); err != nil {
		t.Fatalf("StepDown: %v", err)
	}
	if nodes[1].Role() == election.Directory {
		t.Fatal("n1 still a directory after StepDown")
	}
	if nodes[1].Backend().Len() != 0 {
		t.Fatal("n1 still holds advertisements after StepDown")
	}
	waitUntil(t, 2*time.Second, "handover arrival", func() bool {
		return nodes[3].Backend().Len() == 2
	})

	// Discovery through the remaining directory resolves the transferred
	// advertisement. (n0 may need to re-learn its directory first.)
	waitUntil(t, 3*time.Second, "post-handover discovery", func() bool {
		qctx, qcancel := context.WithTimeout(ctx, 300*time.Millisecond)
		defer qcancel()
		hits, err := nodes[4].Discover(qctx, pdaRequestDoc(t))
		return err == nil && len(hits) == 1 && hits[0].Directory == "n3"
	})
}

func TestStepDownRequiresDirectoryRole(t *testing.T) {
	_, nodes := testCluster(t, 2)
	if err := nodes[0].StepDown("n1"); !errors.Is(err, ErrNotDirectory) {
		t.Fatalf("StepDown on member = %v, want ErrNotDirectory", err)
	}
}
