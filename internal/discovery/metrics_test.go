package discovery

import (
	"context"
	"fmt"
	"testing"
	"time"

	"sariadne/internal/election"
	"sariadne/internal/ontology"
	"sariadne/internal/profile"
	"sariadne/internal/simnet"
	"sariadne/internal/telemetry"
)

func memberDoc(t *testing.T, i int) []byte {
	t.Helper()
	svc := &profile.Service{
		Name:     fmt.Sprintf("member-%03d", i),
		Provider: "member-host",
		Provided: []*profile.Capability{{
			Name:     fmt.Sprintf("MemberCap%03d", i),
			Category: ontology.Ref{Ontology: fmt.Sprintf("http://member.example/ont%03d", i), Name: "Thing"},
		}},
	}
	doc, err := profile.Marshal(svc)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func absentRequestDoc(t *testing.T, i int) []byte {
	t.Helper()
	svc := &profile.Service{
		Name: fmt.Sprintf("probe-%03d", i),
		Required: []*profile.Capability{{
			Name:     "Want",
			Category: ontology.Ref{Ontology: fmt.Sprintf("http://absent.example/ont%03d", i), Name: "Thing"},
		}},
	}
	doc, err := profile.Marshal(svc)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestBloomFPRGaugeTracksEstimate drives the evaluation workload through a
// deliberately small summary filter and checks the live false-positive-rate
// gauge (empty forwards / probes of absent keys) against the analytic
// (1-e^(-kn/m))^k estimate carried by the filter itself — the same model
// bloom's TestFalsePositiveRateNearEstimate validates offline.
func TestBloomFPRGaugeTracksEstimate(t *testing.T) {
	const stored = 48  // distinct ontology keys registered at the far directory
	const probes = 200 // queries for keys absent everywhere

	net := simnet.New(simnet.Config{})
	t.Cleanup(net.Close)
	eps, err := simnet.BuildLine(net, "n", 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		QueryTimeout:     500 * time.Millisecond,
		TickInterval:     2 * time.Millisecond,
		SummaryPushEvery: 1,
		// Small filter so the false-positive rate is large enough to
		// observe in a couple hundred probes (~0.1 at k=2, n=48, m=256).
		BloomBits:   256,
		BloomHashes: 2,
		// Disable reactive refresh: every probe here is a true negative at
		// n3, so the stale-summary heuristic would otherwise fire
		// constantly and add noise.
		StaleRatio: -1,
		Election: election.Config{
			AdvertiseInterval: 20 * time.Millisecond,
			AdvertiseTTL:      2,
			ElectionTimeout:   time.Hour,
		},
	}
	nodes := make([]*Node, len(eps))
	for i, ep := range eps {
		nodes[i] = NewNode(ep, NewSemanticBackend(fixtureRegistry(t)), cfg)
		nodes[i].Start(context.Background())
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
	})
	nodes[1].BecomeDirectory()
	nodes[3].BecomeDirectory()
	waitUntil(t, 2*time.Second, "backbone handshake", func() bool {
		return len(nodes[1].Peers()) == 1 && len(nodes[3].Peers()) == 1
	})
	waitUntil(t, 2*time.Second, "directories known", func() bool {
		d0, ok0 := nodes[0].DirectoryID()
		d4, ok4 := nodes[4].DirectoryID()
		return ok0 && d0 == "n1" && ok4 && d4 == "n3"
	})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < stored; i++ {
		if err := nodes[4].Publish(ctx, memberDoc(t, i)); err != nil {
			t.Fatalf("Publish %d: %v", i, err)
		}
	}
	// SummaryPushEvery=1: n1 eventually holds n3's full 48-key summary.
	waitUntil(t, 2*time.Second, "full summary at n1", func() bool {
		nodes[1].mu.Lock()
		defer nodes[1].mu.Unlock()
		ps := nodes[1].peers["n3"]
		return ps != nil && ps.filter != nil && ps.filter.Additions() == stored
	})

	nodes[1].mu.Lock()
	estimate := nodes[1].peers["n3"].filter.EstimateFPR()
	nodes[1].mu.Unlock()
	if estimate < 0.01 {
		t.Fatalf("analytic estimate %v too small for a meaningful comparison", estimate)
	}

	// Clear counters accumulated by earlier tests in this binary so the
	// gauge reflects only this workload's probes.
	telemetry.Default().Reset()

	for i := 0; i < probes; i++ {
		hits, err := nodes[0].Discover(ctx, absentRequestDoc(t, i))
		if err != nil {
			t.Fatalf("Discover %d: %v", i, err)
		}
		if len(hits) != 0 {
			t.Fatalf("Discover %d returned hits %v for an absent key", i, hits)
		}
	}

	// Every probe tested exactly one peer summary: outcomes partition into
	// prunes (true negatives) and empty forwards (false positives).
	fp := forwardEmptyTotal.Value()
	tn := forwardsPrunedTotal.Value()
	if fp+tn != probes {
		t.Fatalf("fp=%d tn=%d, want %d total Bloom probe outcomes", fp, tn, probes)
	}
	measured := bloomFPRGauge.Value()
	if want := float64(fp) / float64(fp+tn); measured != want {
		t.Fatalf("gauge = %v, inconsistent with counters fp=%d tn=%d", measured, fp, tn)
	}
	if measured > 3*estimate+0.01 || measured < estimate/3-0.01 {
		t.Fatalf("measured FPR %v not within tolerance of analytic estimate %v (fp=%d/%d)",
			measured, estimate, fp, probes)
	}
	t.Logf("measured FPR %.4f vs analytic %.4f (fp=%d of %d probes)", measured, estimate, fp, probes)
}
