package discovery

import (
	"sariadne/internal/telemetry"
	"sariadne/internal/transport"
)

// Wire messages of the discovery protocol. Service and request documents
// travel as serialized XML ([]byte) so that the parse costs the paper
// measures (Figures 7 and 8) occur where they would in a real deployment:
// at the receiving directory.

// RegisterRequest publishes a service advertisement at a directory.
type RegisterRequest struct {
	ID  uint64
	Doc []byte
}

// RegisterReply acknowledges a registration.
type RegisterReply struct {
	ID  uint64
	Err string
}

// DeregisterRequest withdraws a service by name.
type DeregisterRequest struct {
	ID      uint64
	Service string
}

// QueryRequest asks a directory to resolve a request document.
type QueryRequest struct {
	ID uint64
	// Origin is the client node awaiting the final answer.
	Origin transport.Addr
	// Forwarded marks directory-to-directory hops; forwarded queries are
	// answered locally only (no second-level fan-out).
	Forwarded bool
	// Trace, when non-zero, asks every directory touching the query to
	// record hop-level spans that travel back inside QueryReply.
	Trace uint64
	Doc   []byte
}

// QueryReply carries hits back. For forwarded queries the replying
// directory sends it to the forwarding directory, which aggregates and
// relays to the origin. Directories answer every forwarded QueryRequest
// they receive, including retransmitted duplicates — re-answering is the
// recovery path for lost replies, and the aggregator deduplicates.
type QueryReply struct {
	ID      uint64
	From    transport.Addr
	Partial bool // true for peer replies consumed by the aggregator
	Hits    []Hit
	// Unreachable lists peer directories the aggregator gave up on after
	// exhausting retries; a non-empty list marks the result as possibly
	// incomplete (graceful degradation instead of failing closed).
	Unreachable []transport.Addr
	// Spans carries the hop-level trace for traced queries (empty
	// otherwise); aggregators merge partial spans into the final reply.
	Spans []telemetry.Span
	Err   string
}

// ForwardAck is sent immediately by a directory receiving a forwarded
// query, before the (possibly slow) match runs. It tells the aggregator
// the peer is alive — suppressing hedges and unreachable marking — but
// does not stop retransmissions: only a QueryReply does, so a lost reply
// is recovered by the duplicate request provoking a re-answer.
type ForwardAck struct {
	ID   uint64
	From transport.Addr
}

// RepublishSolicit is broadcast by a node that just won a directory
// election. Members whose current directory is the sender re-register
// their published services even if they believe them already registered
// there — the recovery path for a directory that crashed, lost its store,
// and was re-elected under the same identity.
type RepublishSolicit struct {
	From transport.Addr
}

// DirectoryAnnounce advertises a (new) directory to the directory
// backbone; receivers respond with their summary.
type DirectoryAnnounce struct {
	From transport.Addr
}

// SummaryPush carries a directory's Bloom filter to a peer (Section 4's
// exchange of directory content summaries).
type SummaryPush struct {
	From   transport.Addr
	Filter []byte // bloom.Filter wire form
	Count  int    // number of stored advertisements, for diagnostics
}

// SummaryRequest asks a peer directory for a fresh Bloom summary; sent
// reactively when too many Bloom-selected forwards to that peer come back
// empty (stale-summary detection, Section 4).
type SummaryRequest struct {
	From transport.Addr
}
