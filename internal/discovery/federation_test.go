package discovery

import (
	"context"
	"testing"
	"time"

	"sariadne/internal/election"
	"sariadne/internal/transport"
)

// fedNode is one UDP-federated directory: a discovery node over a real
// loopback socket, the shape sdpd -federate deploys.
type fedNode struct {
	node *Node
	tr   *transport.UDP
}

// kill simulates the node's host dying: the protocol loop stops and the
// socket closes, so frames sent to it vanish without errors — exactly
// what peers of a crashed or partitioned daemon observe.
func (f *fedNode) kill() {
	f.node.Stop()
	_ = f.tr.Close()
}

// newFedNode boots one federated directory on a fresh loopback UDP port.
func newFedNode(t *testing.T, seeds ...string) *fedNode {
	t.Helper()
	tr, err := transport.NewUDP(transport.UDPConfig{
		Listen: "127.0.0.1:0",
		Codec:  WireCodec{},
		Seeds:  seeds,
	})
	if err != nil {
		t.Fatalf("NewUDP: %v", err)
	}
	n := NewNode(tr, NewSemanticBackend(fixtureRegistry(t)), Config{
		QueryTimeout:     time.Second,
		TickInterval:     2 * time.Millisecond,
		SummaryPushEvery: 1,
		AnnounceInterval: 50 * time.Millisecond,
		Election: election.Config{
			// Directories are promoted explicitly; election traffic is not
			// codec-encodable and never crosses a socket backbone.
			ElectionTimeout: time.Hour,
		},
	})
	n.Start(context.Background())
	n.BecomeDirectory()
	f := &fedNode{node: n, tr: tr}
	t.Cleanup(f.kill)
	return f
}

// TestUDPFederationThreeNodes boots three directories federated over
// loopback UDP sockets — real frames, real codec, no simulator — and
// resolves a two-capability query end to end: registered content on B
// and C is found from A via Bloom-selected forwarding. Killing B then
// degrades the same query to a partial result naming B unreachable,
// with C's hit still present.
func TestUDPFederationThreeNodes(t *testing.T) {
	a := newFedNode(t)
	b := newFedNode(t, string(a.node.ID()))
	c := newFedNode(t, string(a.node.ID()))

	// The star settles: A hears both announces and the summary handshake
	// completes in both directions.
	waitUntil(t, 5*time.Second, "backbone handshake", func() bool {
		infos := a.node.PeerInfos()
		if len(infos) != 2 {
			return false
		}
		for _, pi := range infos {
			if !pi.HasSummary || pi.LastAnnounce.IsZero() {
				return false
			}
		}
		return len(b.node.Peers()) == 1 && len(c.node.Peers()) == 1
	})

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	// Video service on B, game service on C, nothing on A.
	if err := b.node.Publish(ctx, videoOnlyServiceDoc(t)); err != nil {
		t.Fatalf("publish on B: %v", err)
	}
	if err := c.node.Publish(ctx, gameOnlyServiceDoc(t)); err != nil {
		t.Fatalf("publish on C: %v", err)
	}
	// A's view catches the pushed summaries before it is asked to rank
	// forwarding targets by them.
	waitUntil(t, 5*time.Second, "summaries at A", func() bool {
		for _, pi := range a.node.PeerInfos() {
			if pi.Entries == 0 {
				return false
			}
		}
		return true
	})

	res, err := a.node.DiscoverResult(ctx, twoCapRequestDoc(t))
	if err != nil {
		t.Fatalf("DiscoverResult: %v", err)
	}
	if res.Partial() {
		t.Fatalf("fully-live federation returned partial result: %+v", res)
	}
	byFor := map[string]Hit{}
	for _, h := range res.Hits {
		byFor[h.For] = h
	}
	if h := byFor["GetVideoStream"]; h.Service != "VideoBox" || h.Directory != string(b.node.ID()) {
		t.Errorf("video hit = %+v, want VideoBox via %s", h, b.node.ID())
	}
	if h := byFor["GetGame"]; h.Service != "GameBox" || h.Directory != string(c.node.ID()) {
		t.Errorf("game hit = %+v, want GameBox via %s", h, c.node.ID())
	}

	// Kill B. The same query now degrades gracefully: C's hit arrives,
	// B's forward exhausts its retries, and the result is flagged partial
	// with B listed unreachable.
	b.kill()
	res, err = a.node.DiscoverResult(ctx, twoCapRequestDoc(t))
	if err != nil {
		t.Fatalf("DiscoverResult after kill: %v", err)
	}
	if !res.Partial() {
		t.Fatalf("result after killing B not partial: %+v", res)
	}
	if len(res.Unreachable) != 1 || res.Unreachable[0] != b.node.ID() {
		t.Fatalf("Unreachable = %v, want [%s]", res.Unreachable, b.node.ID())
	}
	byFor = map[string]Hit{}
	for _, h := range res.Hits {
		byFor[h.For] = h
	}
	if h := byFor["GetGame"]; h.Service != "GameBox" || h.Directory != string(c.node.ID()) {
		t.Errorf("game hit after kill = %+v, want GameBox via %s", h, c.node.ID())
	}
	if h, ok := byFor["GetVideoStream"]; ok {
		t.Errorf("dead directory still answered: %+v", h)
	}
}
