package discovery

import (
	"context"
	"fmt"
	"testing"
	"time"

	"sariadne/internal/codes"
	"sariadne/internal/election"
	"sariadne/internal/gen"
	"sariadne/internal/profile"
	"sariadne/internal/simnet"
)

// TestLargeNetworkIntegration runs the whole protocol at a size closer to
// a real deployment: a 7×7 grid, elections only (no static directories),
// 30 services published from scattered nodes, discovery issued from every
// corner. Skipped with -short.
func TestLargeNetworkIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("large integration test skipped in -short mode")
	}

	w := gen.MustNewWorkload(gen.WorkloadConfig{
		Ontologies: 10,
		Services:   30,
		Seed:       17,
	})
	reg, err := w.Registry(codes.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}

	net := simnet.New(simnet.Config{Seed: 3})
	t.Cleanup(net.Close)
	eps, err := simnet.BuildGrid(net, "n", 7, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		QueryTimeout:     time.Second,
		TickInterval:     2 * time.Millisecond,
		SummaryPushEvery: 1,
		AnnounceInterval: 50 * time.Millisecond,
		// The 7x7 grid has diameter 12; the default AnnounceTTL of 8 would
		// leave far-corner directory pairs permanently unaware of each
		// other whenever election timing puts directories there, and the
		// backbone-settle wait below would never finish.
		AnnounceTTL: 13,
		Election: election.Config{
			AdvertiseInterval: 20 * time.Millisecond,
			AdvertiseTTL:      2,
			ElectionTimeout:   80 * time.Millisecond,
			CandidacyWait:     30 * time.Millisecond,
		},
	}
	nodes := make([]*Node, len(eps))
	for i, ep := range eps {
		nodes[i] = NewNode(ep, NewSemanticBackend(reg), cfg)
		nodes[i].Start(context.Background())
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
	})

	waitUntil(t, 15*time.Second, "all nodes covered by a directory", func() bool {
		for _, n := range nodes {
			if _, ok := n.DirectoryID(); !ok {
				return false
			}
		}
		return true
	})
	directories := 0
	for _, n := range nodes {
		if n.Role() == election.Directory {
			directories++
		}
	}
	if directories < 2 {
		t.Fatalf("only %d directories elected on a 7x7 grid with TTL 2", directories)
	}
	t.Logf("elected %d directories", directories)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i, doc := range w.ServiceDocs {
		publisher := nodes[(i*7)%len(nodes)]
		ok := false
		for attempt := 0; attempt < 5 && !ok; attempt++ {
			pctx, pcancel := context.WithTimeout(ctx, time.Second)
			if err := publisher.Publish(pctx, doc); err == nil {
				ok = true
			}
			pcancel()
		}
		if !ok {
			t.Fatalf("service %d never published", i)
		}
	}
	// Summaries settle once every directory has heard from every other
	// directory on the backbone; residual filter staleness is absorbed by
	// the per-query retries below. The budget matches the election wait —
	// under the race detector a 49-node grid needs well over 5s.
	waitUntil(t, 15*time.Second, "directory backbone to settle", func() bool {
		var dirs []*Node
		for _, n := range nodes {
			if n.Role() == election.Directory {
				dirs = append(dirs, n)
			}
		}
		if len(dirs) < 2 {
			return false
		}
		for _, d := range dirs {
			if len(d.Peers()) < len(dirs)-1 {
				return false
			}
		}
		return true
	})

	success := 0
	const queries = 30
	for q := 0; q < queries; q++ {
		reqDoc, err := profile.Marshal(&profile.Service{
			Name:     fmt.Sprintf("req%d", q),
			Required: []*profile.Capability{w.Request(q%30, 1)},
		})
		if err != nil {
			t.Fatal(err)
		}
		from := nodes[(q*11)%len(nodes)]
		for attempt := 0; attempt < 3; attempt++ {
			qctx, qcancel := context.WithTimeout(ctx, time.Second)
			hits, err := from.Discover(qctx, reqDoc)
			qcancel()
			if err == nil && len(hits) > 0 {
				success++
				break
			}
			//sdplint:ignore sleeptest retry backoff between query attempts, not a synchronization wait
			time.Sleep(50 * time.Millisecond)
		}
	}
	if success < queries*9/10 {
		t.Fatalf("only %d/%d queries resolved", success, queries)
	}
	t.Logf("%d/%d queries resolved across the backbone", success, queries)
}
