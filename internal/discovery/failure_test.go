package discovery

import (
	"context"
	"testing"
	"time"

	"sariadne/internal/codes"
	"sariadne/internal/election"
	"sariadne/internal/ontology"
	"sariadne/internal/profile"
	"sariadne/internal/simnet"
)

// TestDiscoveryOverLossyNetwork: with 20% per-link loss, clients that
// retry (as any pervasive client must) still publish and discover; the
// protocol itself never wedges.
func TestDiscoveryOverLossyNetwork(t *testing.T) {
	net := simnet.New(simnet.Config{DropRate: 0.2, Seed: 9})
	t.Cleanup(net.Close)
	eps, err := simnet.BuildLine(net, "n", 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		QueryTimeout:     100 * time.Millisecond,
		TickInterval:     2 * time.Millisecond,
		SummaryPushEvery: 1,
		Election: election.Config{
			AdvertiseInterval: 10 * time.Millisecond,
			AdvertiseTTL:      3,
			ElectionTimeout:   time.Hour,
		},
	}
	nodes := make([]*Node, len(eps))
	for i, ep := range eps {
		nodes[i] = NewNode(ep, NewSemanticBackend(fixtureRegistry(t)), cfg)
		nodes[i].Start(context.Background())
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
	})
	nodes[1].BecomeDirectory()
	waitUntil(t, 5*time.Second, "advertisement through loss", func() bool {
		_, ok0 := nodes[0].DirectoryID()
		_, ok2 := nodes[2].DirectoryID()
		return ok0 && ok2
	})

	publish := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
		defer cancel()
		return nodes[0].Publish(ctx, workstationDoc(t))
	}
	ok := false
	for attempt := 0; attempt < 20; attempt++ {
		if err := publish(); err == nil {
			ok = true
			break
		}
	}
	if !ok {
		t.Fatal("publish never succeeded through 20% loss in 20 attempts")
	}

	found := false
	for attempt := 0; attempt < 20; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
		hits, err := nodes[2].Discover(ctx, pdaRequestDoc(t))
		cancel()
		if err == nil && len(hits) == 1 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("discovery never succeeded through 20% loss in 20 attempts")
	}
}

// TestQueryToNonDirectoryFails: a query landing on a node that is not (or
// no longer) a directory is answered with an explicit error, not silence.
func TestQueryToNonDirectoryFails(t *testing.T) {
	net := simnet.New(simnet.Config{})
	t.Cleanup(net.Close)
	eps, err := simnet.BuildLine(net, "n", 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		QueryTimeout: 200 * time.Millisecond,
		TickInterval: 2 * time.Millisecond,
		// Pin n1 as the (wrong) static directory: it never promotes.
		StaticDirectory: "n1",
		Election: election.Config{
			AdvertiseInterval: 10 * time.Millisecond,
			ElectionTimeout:   time.Hour,
		},
	}
	nodes := make([]*Node, len(eps))
	for i, ep := range eps {
		nodes[i] = NewNode(ep, NewSemanticBackend(fixtureRegistry(t)), cfg)
		nodes[i].Start(context.Background())
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := nodes[0].Discover(ctx, pdaRequestDoc(t)); err == nil {
		t.Fatal("query to a non-directory should fail explicitly")
	}
}

// TestOntologyEvolution is the Section 3.2 versioning rule end to end:
// after the ontology evolves and the directory re-encodes, advertisements
// still carrying old-version codes are refused until refreshed.
func TestOntologyEvolution(t *testing.T) {
	// Version 1 world.
	mediaV1 := profile.MediaOntology()
	servers := profile.ServersOntology()
	regV1 := codes.NewRegistry()
	regV1.Register(codes.MustEncode(ontology.MustClassify(mediaV1), codes.DefaultParams))
	regV1.Register(codes.MustEncode(ontology.MustClassify(servers), codes.DefaultParams))

	svc := profile.WorkstationService()
	svc.CodeVersions = map[string]string{profile.MediaOntologyURI: "1"}
	docV1, err := profile.Marshal(svc)
	if err != nil {
		t.Fatal(err)
	}

	b1 := NewSemanticBackend(regV1)
	if _, err := b1.Register(docV1); err != nil {
		t.Fatalf("v1 registration: %v", err)
	}

	// The media ontology evolves to version 2 (a new class appears); the
	// directory re-encodes.
	mediaV2 := profile.MediaOntology()
	mediaV2.Version = "2"
	mediaV2.MustAddClass(ontology.Class{Name: "Series", SubClassOf: []string{"VideoResource"}})
	regV2 := codes.NewRegistry()
	regV2.Register(codes.MustEncode(ontology.MustClassify(mediaV2), codes.DefaultParams))
	regV2.Register(codes.MustEncode(ontology.MustClassify(servers), codes.DefaultParams))

	b2 := NewSemanticBackend(regV2)
	if _, err := b2.Register(docV1); err == nil {
		t.Fatal("v2 directory accepted advertisement carrying v1 codes")
	}

	// The service refreshes its codes (per the paper, services
	// periodically check the code version and update).
	svc.CodeVersions[profile.MediaOntologyURI] = "2"
	docV2, err := profile.Marshal(svc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b2.Register(docV2); err != nil {
		t.Fatalf("refreshed advertisement rejected: %v", err)
	}
	hits, err := b2.Query(pdaRequestDoc(t))
	if err != nil || len(hits) != 1 {
		t.Fatalf("post-evolution query: hits=%v err=%v", hits, err)
	}
}
