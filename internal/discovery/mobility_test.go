package discovery

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"sariadne/internal/election"
	"sariadne/internal/simnet"
)

// TestMobilityChurn stresses the protocol under link churn: while a
// client keeps discovering, random links of a 4×4 grid flap. The protocol
// must neither wedge nor crash, and once the topology stabilizes
// discovery must succeed again.
func TestMobilityChurn(t *testing.T) {
	net := simnet.New(simnet.Config{Seed: 21})
	t.Cleanup(net.Close)
	eps, err := simnet.BuildGrid(net, "n", 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		QueryTimeout:     200 * time.Millisecond,
		TickInterval:     2 * time.Millisecond,
		SummaryPushEvery: 1,
		AnnounceInterval: 40 * time.Millisecond,
		// Periodic re-publication repairs any registration lost while the
		// publisher's directory view flapped during churn.
		LeaseTTL:        2 * time.Second,
		RefreshInterval: 100 * time.Millisecond,
		Election: election.Config{
			AdvertiseInterval: 15 * time.Millisecond,
			AdvertiseTTL:      3,
			ElectionTimeout:   60 * time.Millisecond,
			CandidacyWait:     25 * time.Millisecond,
		},
	}
	nodes := make([]*Node, len(eps))
	for i, ep := range eps {
		nodes[i] = NewNode(ep, NewSemanticBackend(fixtureRegistry(t)), cfg)
		nodes[i].Start(context.Background())
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
	})

	waitUntil(t, 5*time.Second, "initial election", func() bool {
		for _, n := range nodes {
			if _, ok := n.DirectoryID(); !ok {
				return false
			}
		}
		return true
	})

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	publishOK := false
	for attempt := 0; attempt < 10 && !publishOK; attempt++ {
		pctx, pcancel := context.WithTimeout(ctx, 300*time.Millisecond)
		publishOK = nodes[5].Publish(pctx, workstationDoc(t)) == nil
		pcancel()
	}
	if !publishOK {
		t.Fatal("initial publish failed")
	}

	// Churn phase: flap random internal links while querying. Grid links
	// are (r,c)-(r,c+1) and (r,c)-(r+1,c); pick from that set.
	type link struct{ a, b simnet.NodeID }
	var links []link
	id := func(r, c int) simnet.NodeID {
		return eps[r*4+c].ID()
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if c+1 < 4 {
				links = append(links, link{id(r, c), id(r, c+1)})
			}
			if r+1 < 4 {
				links = append(links, link{id(r, c), id(r+1, c)})
			}
		}
	}
	rng := rand.New(rand.NewSource(4))
	down := map[int]bool{}
	for round := 0; round < 30; round++ {
		// Flap up to 3 links (never partitioning permanently: they come
		// back in later rounds).
		for k := 0; k < 3; k++ {
			i := rng.Intn(len(links))
			if down[i] {
				if err := net.Connect(links[i].a, links[i].b); err != nil {
					t.Fatal(err)
				}
				delete(down, i)
			} else {
				net.Disconnect(links[i].a, links[i].b)
				down[i] = true
			}
		}
		// Queries during churn may fail; they must not hang past their
		// timeout or panic.
		qctx, qcancel := context.WithTimeout(ctx, 250*time.Millisecond)
		_, _ = nodes[10].Discover(qctx, pdaRequestDoc(t))
		qcancel()
		//sdplint:ignore sleeptest paces link churn so elections overlap topology changes; not a wait for a condition
		time.Sleep(5 * time.Millisecond)
	}
	// Heal every link.
	for i := range links {
		if down[i] {
			if err := net.Connect(links[i].a, links[i].b); err != nil {
				t.Fatal(err)
			}
		}
	}

	// After healing, discovery must work again (allowing time for
	// re-election, re-publication and summary repair; generous timeout so
	// the 10x slowdown of -race runs stays inside it).
	waitUntil(t, 30*time.Second, "recovery after churn", func() bool {
		qctx, qcancel := context.WithTimeout(ctx, 300*time.Millisecond)
		defer qcancel()
		hits, err := nodes[10].Discover(qctx, pdaRequestDoc(t))
		return err == nil && len(hits) == 1
	})
}
