package discovery

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"sariadne/internal/election"
	"sariadne/internal/simnet"
	"sariadne/internal/testutil"
)

// Chaos suite: scripted fault plans over the simulated network, with
// fixed seeds so a failing run reproduces. The scenarios mirror the
// failure modes the paper's hybrid MANETs exhibit: congestion bursts,
// partitions that heal, and directory crashes.

// leakCheck fails the test if goroutines outlive the cluster teardown.
// Registered before the cluster so its cleanup runs after the nodes and
// network have been stopped.
func leakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		testutil.WaitFor(t, 3*time.Second, func() bool {
			return runtime.NumGoroutine() <= before
		}, "goroutines to drain after teardown (leaked: %d -> %d)",
			before, runtime.NumGoroutine())
	})
}

// chaosCluster builds the chaos topology: a star whose center n0 is the
// query entry directory with an empty store, and whose leaves n1 and n2
// are redundant directories both holding the workstation advertisement.
// The backbone handshake and publications complete on a clean network;
// the caller injects faults afterwards.
func chaosCluster(t *testing.T, seed int64, retries int, queryTimeout time.Duration) (*simnet.Network, []*Node) {
	t.Helper()
	leakCheck(t)
	net := simnet.New(simnet.Config{Seed: seed})
	t.Cleanup(net.Close)
	eps, err := simnet.BuildStar(net, "n", 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		QueryTimeout:     queryTimeout,
		TickInterval:     2 * time.Millisecond,
		SummaryPushEvery: 1,
		AnnounceInterval: 100 * time.Millisecond,
		ForwardRetries:   retries,
		RetryBackoff:     3 * time.Millisecond,
		RetryBackoffMax:  12 * time.Millisecond,
		Election: election.Config{
			AdvertiseInterval: 20 * time.Millisecond,
			AdvertiseTTL:      2,
			ElectionTimeout:   time.Hour, // promotions are manual here
		},
	}
	nodes := make([]*Node, len(eps))
	for i, ep := range eps {
		nodes[i] = NewNode(ep, NewSemanticBackend(fixtureRegistry(t)), cfg)
		nodes[i].Start(context.Background())
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
	})
	for _, n := range nodes {
		n.BecomeDirectory()
	}
	waitUntil(t, 3*time.Second, "backbone handshake", func() bool {
		return len(nodes[0].Peers()) == 2
	})
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	for _, i := range []int{1, 2} {
		if err := nodes[i].Publish(ctx, workstationDoc(t)); err != nil {
			t.Fatalf("publish at n%d: %v", i, err)
		}
	}
	// n0 must see summaries that admit the request, or it would prune the
	// very peers holding the answer.
	key, err := nodes[0].backend.RequestKey(pdaRequestDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 3*time.Second, "content summaries at n0", func() bool {
		nodes[0].mu.Lock()
		defer nodes[0].mu.Unlock()
		for _, id := range []simnet.NodeID{"n1", "n2"} {
			ps := nodes[0].peers[id]
			if ps == nil || ps.filter == nil || !ps.filter.Test(key) {
				return false
			}
		}
		return true
	})
	return net, nodes
}

// chaosPlan is the pinned acceptance scenario: 30% burst loss for the
// whole run plus a partition isolating directory n2, healed at half time.
func chaosPlan() simnet.FaultPlan {
	return simnet.FaultPlan{
		Bursts: []simnet.Burst{{Drop: 0.3}},
		Partitions: []simnet.Partition{{
			Name:   "isolate-n2",
			Groups: [][]simnet.NodeID{{"n0", "n1"}, {"n2"}},
			Heal:   1200 * time.Millisecond,
		}},
	}
}

func partitionActive(net *simnet.Network) bool {
	for _, f := range net.ActiveFaults() {
		if strings.HasPrefix(f, "partition:") {
			return true
		}
	}
	return false
}

// chaosQueryRun issues total queries through the chaos plan: as many as
// the partitioned first half allows, the remainder after the heal. It
// reports per-phase outcomes.
type chaosOutcome struct {
	total, successes int
	partialSeen      bool // a reply carried the unreachable marker
	healedComplete   bool // a post-heal reply was complete with hits
}

func chaosQueryRun(t *testing.T, net *simnet.Network, nodes []*Node, total int) chaosOutcome {
	t.Helper()
	var out chaosOutcome
	query := func() (Result, error) {
		ctx, cancel := context.WithTimeout(context.Background(), 600*time.Millisecond)
		defer cancel()
		return nodes[0].DiscoverResult(ctx, pdaRequestDoc(t))
	}
	record := func(res Result, err error) {
		out.total++
		if err == nil && len(res.Hits) > 0 {
			out.successes++
		}
		if res.Partial() {
			out.partialSeen = true
		}
	}
	net.ApplyFaultPlan(chaosPlan())
	for partitionActive(net) && out.total < total/2 {
		record(query())
	}
	// Healed half: wait for n2 to rejoin the backbone view (it may have
	// been evicted during the partition; the periodic announces re-add it)
	// before resuming, so the second phase exercises both directories.
	waitUntil(t, 5*time.Second, "n2 re-admitted after heal", func() bool {
		if partitionActive(net) {
			return false
		}
		for _, id := range nodes[0].Peers() {
			if id == "n2" {
				return true
			}
		}
		return false
	})
	for out.total < total {
		res, err := query()
		record(res, err)
		if err == nil && !res.Partial() && len(res.Hits) > 0 {
			out.healedComplete = true
		}
	}
	return out
}

// TestChaosPartitionBurstRetries is the acceptance scenario: under 30%
// burst loss with n2 partitioned away for the first half, retrying and
// degrading gracefully keeps the query success rate at 99%+, partial
// results carry the unreachable marker, and results are complete again
// after the heal.
func TestChaosPartitionBurstRetries(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			net, nodes := chaosCluster(t, seed, 8, 400*time.Millisecond)
			out := chaosQueryRun(t, net, nodes, 100)
			rate := float64(out.successes) / float64(out.total)
			t.Logf("seed=%d: %d/%d queries succeeded (%.1f%%)", seed, out.successes, out.total, 100*rate)
			if rate < 0.99 {
				t.Errorf("success rate %.3f < 0.99 with retries enabled", rate)
			}
			if !out.partialSeen {
				t.Error("no reply carried the unreachable marker while n2 was partitioned")
			}
			if !out.healedComplete {
				t.Error("no complete result observed after the partition healed")
			}
			st := nodes[0].Stats()
			if st.ForwardRetries == 0 {
				t.Error("retries enabled but none recorded under 30% loss")
			}
			if st.PartialReplies == 0 {
				t.Error("partial replies seen by client but not counted by the directory")
			}
		})
	}
}

// TestChaosRetriesDisabledDegrades runs the same scenario with retries
// off: one lost packet costs the remote result set, so the success rate
// collapses — the before/after pair for EXPERIMENTS.md.
func TestChaosRetriesDisabledDegrades(t *testing.T) {
	// QueryTimeout 100ms keeps the run short: with fire-and-forget, any
	// lost reply stalls the query for the full timeout (exactly the
	// failure mode the retry machinery removes).
	net, nodes := chaosCluster(t, 42, -1, 100*time.Millisecond)
	out := chaosQueryRun(t, net, nodes, 60)
	rate := float64(out.successes) / float64(out.total)
	t.Logf("retries disabled: %d/%d queries succeeded (%.1f%%)", out.successes, out.total, 100*rate)
	if rate >= 0.90 {
		t.Errorf("success rate %.3f with retries disabled; expected measurable degradation (< 0.90)", rate)
	}
	if rate == 0 {
		t.Error("zero successes: degradation should be partial, not total")
	}
}

// TestChaosDirectoryCrashMidQuery crashes the only directory while a
// query is in flight: the query fails cleanly, the survivors re-run the
// election, the publisher re-registers at the new directory, and
// discovery recovers without restarting anything.
func TestChaosDirectoryCrashMidQuery(t *testing.T) {
	leakCheck(t)
	net := simnet.New(simnet.Config{Seed: 3})
	t.Cleanup(net.Close)
	ids := []simnet.NodeID{"n0", "n1", "n2"}
	eps := make([]*simnet.Endpoint, len(ids))
	for i, id := range ids {
		ep, err := net.AddNode(id)
		if err != nil {
			t.Fatal(err)
		}
		eps[i] = ep
	}
	// Full triangle so the survivors stay connected when n1 crashes.
	for i := range ids {
		for j := i + 1; j < len(ids); j++ {
			if err := net.Connect(ids[i], ids[j]); err != nil {
				t.Fatal(err)
			}
		}
	}
	cfg := Config{
		QueryTimeout:     200 * time.Millisecond,
		TickInterval:     2 * time.Millisecond,
		SummaryPushEvery: 1,
		Election: election.Config{
			AdvertiseInterval: 20 * time.Millisecond,
			AdvertiseTTL:      2,
			ElectionTimeout:   150 * time.Millisecond,
			CandidacyWait:     30 * time.Millisecond,
		},
	}
	nodes := make([]*Node, len(eps))
	for i, ep := range eps {
		nodes[i] = NewNode(ep, NewSemanticBackend(fixtureRegistry(t)), cfg)
		nodes[i].Start(context.Background())
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
	})
	nodes[1].BecomeDirectory()
	waitUntil(t, 3*time.Second, "n1 adopted as directory", func() bool {
		d0, ok0 := nodes[0].DirectoryID()
		d2, ok2 := nodes[2].DirectoryID()
		return ok0 && ok2 && d0 == "n1" && d2 == "n1"
	})
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := nodes[0].Publish(ctx, workstationDoc(t)); err != nil {
		t.Fatal(err)
	}
	if hits, err := nodes[2].Discover(ctx, pdaRequestDoc(t)); err != nil || len(hits) != 1 {
		t.Fatalf("pre-crash discovery: hits=%v err=%v", hits, err)
	}

	// Crash the directory and immediately query into the void: the call
	// must fail by its own deadline, not wedge.
	net.SetNodeDown("n1", true)
	qctx, qcancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	_, err := nodes[2].Discover(qctx, pdaRequestDoc(t))
	qcancel()
	if err == nil {
		t.Fatal("query into a crashed directory succeeded")
	}

	// Recovery: a survivor wins the re-run election, solicits
	// re-registration, and the capability is discoverable again.
	waitUntil(t, 10*time.Second, "discovery to recover after re-election", func() bool {
		qctx, qcancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
		defer qcancel()
		hits, err := nodes[2].Discover(qctx, pdaRequestDoc(t))
		return err == nil && len(hits) >= 1
	})
	if d, ok := nodes[2].DirectoryID(); !ok || d == "n1" {
		t.Fatalf("directory after recovery = %q, %v; want a survivor", d, ok)
	}
}

// TestChaosRepublishSolicitRestoresCrashedStore is the crash-with-state-
// loss case republishIfMoved cannot see: the directory keeps its identity
// but loses its store, so on re-election its RepublishSolicit must make
// publishers re-register even though their publishedAt never changed.
func TestChaosRepublishSolicitRestoresCrashedStore(t *testing.T) {
	leakCheck(t)
	_, nodes := testCluster(t, 2)
	nodes[1].BecomeDirectory()
	waitUntil(t, 2*time.Second, "n0 adopted n1", func() bool {
		d, ok := nodes[0].DirectoryID()
		return ok && d == "n1"
	})
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := nodes[0].Publish(ctx, workstationDoc(t)); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash: the store evaporates, the identity survives.
	for name := range nodes[1].Backend().Snapshot() {
		nodes[1].Backend().Deregister(name)
	}
	nodes[1].rebuildFilter()
	if hits, err := nodes[0].Discover(ctx, pdaRequestDoc(t)); err != nil || len(hits) != 0 {
		t.Fatalf("wiped directory still answers: hits=%v err=%v", hits, err)
	}

	// Re-election of the same identity triggers the solicit broadcast.
	nodes[1].BecomeDirectory()
	waitUntil(t, 3*time.Second, "store restored by solicited republication", func() bool {
		qctx, qcancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
		defer qcancel()
		hits, err := nodes[0].Discover(qctx, pdaRequestDoc(t))
		return err == nil && len(hits) == 1
	})
}
