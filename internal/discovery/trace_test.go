package discovery

import (
	"context"
	"testing"
	"time"

	"sariadne/internal/election"
	"sariadne/internal/simnet"
	"sariadne/internal/telemetry"
)

// spanWith reports whether spans contain an entry matching node/event and
// (when non-empty) peer.
func spanWith(spans []telemetry.Span, node, event, peer string) bool {
	for _, s := range spans {
		if s.Node == node && s.Event == event && (peer == "" || s.Peer == peer) {
			return true
		}
	}
	return false
}

// TestDiscoverTraceRecordsForwardingHops publishes on one side of a
// three-directory line and queries from the other: the returned trace
// must show the entry directory receiving the query, missing locally,
// pruning the empty middle directory via its Bloom summary, forwarding
// to the directory that holds the service, and both replies.
func TestDiscoverTraceRecordsForwardingHops(t *testing.T) {
	_, nodes := testCluster(t, 7)
	nodes[1].BecomeDirectory()
	nodes[3].BecomeDirectory()
	nodes[5].BecomeDirectory()

	waitUntil(t, 2*time.Second, "backbone handshake", func() bool {
		return len(nodes[1].Peers()) == 2 && len(nodes[3].Peers()) == 2 && len(nodes[5].Peers()) == 2
	})

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()

	// n6's vicinity directory is n5: the workstation advertisement lands
	// there. n3 stores nothing, so its summary stays empty and n1 must
	// prune it for any request.
	waitUntil(t, 2*time.Second, "n6 directory", func() bool {
		d, ok := nodes[6].DirectoryID()
		return ok && d == "n5"
	})
	if err := nodes[6].Publish(ctx, workstationDoc(t)); err != nil {
		t.Fatal(err)
	}

	key, err := nodes[1].backend.RequestKey(pdaRequestDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 2*time.Second, "summaries at n1", func() bool {
		nodes[1].mu.Lock()
		defer nodes[1].mu.Unlock()
		ps3, ps5 := nodes[1].peers["n3"], nodes[1].peers["n5"]
		return ps3 != nil && ps3.filter != nil &&
			ps5 != nil && ps5.filter != nil && ps5.filter.Test(key)
	})

	waitUntil(t, 2*time.Second, "n0 directory", func() bool {
		d, ok := nodes[0].DirectoryID()
		return ok && d == "n1"
	})
	res, err := nodes[0].DiscoverTrace(ctx, pdaRequestDoc(t))
	if err != nil {
		t.Fatalf("DiscoverTrace: %v", err)
	}
	hits, spans := res.Hits, res.Spans
	if len(hits) != 1 || hits[0].Directory != "n5" {
		t.Fatalf("hits = %v, want one from n5", hits)
	}
	if res.Partial() {
		t.Fatalf("healthy cluster returned partial result: %v", res.Unreachable)
	}

	trace := spans[0].Trace
	if trace == 0 {
		t.Fatal("zero trace ID on spans")
	}
	for _, s := range spans {
		if s.Trace != trace {
			t.Fatalf("mixed trace IDs in %v", spans)
		}
	}
	for _, want := range []struct{ node, event, peer string }{
		{"n1", telemetry.EventReceived, "n0"},
		{"n1", telemetry.EventLocalMatch, ""},
		{"n1", telemetry.EventBloomPrune, "n3"},
		{"n1", telemetry.EventForward, "n5"},
		{"n5", telemetry.EventReceived, "n1"},
		{"n5", telemetry.EventLocalMatch, ""},
		{"n5", telemetry.EventReply, "n1"},
		{"n1", telemetry.EventReply, "n0"},
	} {
		if !spanWith(spans, want.node, want.event, want.peer) {
			t.Errorf("missing span %s/%s peer=%q in:\n%s",
				want.node, want.event, want.peer, telemetry.FormatSpans(spans))
		}
	}

	// The local-match at n5 found the hit; n1 found nothing.
	for _, s := range spans {
		if s.Event != telemetry.EventLocalMatch {
			continue
		}
		switch s.Node {
		case "n1":
			if s.Hits != 0 {
				t.Errorf("n1 local-match hits = %d, want 0", s.Hits)
			}
		case "n5":
			if s.Hits != 1 {
				t.Errorf("n5 local-match hits = %d, want 1", s.Hits)
			}
		}
	}

	// Spans come back in causal order: n1 received the query before
	// forwarding, and n5's work happened between forward and final reply.
	idx := func(node, event string) int {
		for i, s := range spans {
			if s.Node == node && s.Event == event {
				return i
			}
		}
		return -1
	}
	if !(idx("n1", telemetry.EventReceived) < idx("n1", telemetry.EventForward) &&
		idx("n1", telemetry.EventForward) < idx("n5", telemetry.EventReceived) &&
		idx("n5", telemetry.EventReply) < idx("n1", telemetry.EventReply)) {
		t.Fatalf("spans out of causal order:\n%s", telemetry.FormatSpans(spans))
	}

	// Untraced queries stay untraced: no spans on the plain path.
	plainHits, err := nodes[0].Discover(ctx, pdaRequestDoc(t))
	if err != nil || len(plainHits) != 1 {
		t.Fatalf("plain Discover: %v, %v", plainHits, err)
	}
}

// samplerCluster wires a member n0 against directory n1 with a mutated
// config, for sampled-tracing and slow-query tests that need private
// recorders and aggressive thresholds.
func samplerCluster(t *testing.T, mutate func(*Config)) []*Node {
	t.Helper()
	net := simnet.New(simnet.Config{})
	t.Cleanup(net.Close)
	eps, err := simnet.BuildLine(net, "n", 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		QueryTimeout:     500 * time.Millisecond,
		TickInterval:     2 * time.Millisecond,
		SummaryPushEvery: 1,
		Election: election.Config{
			AdvertiseInterval: 20 * time.Millisecond,
			AdvertiseTTL:      2,
			ElectionTimeout:   time.Hour,
		},
	}
	mutate(&cfg)
	nodes := make([]*Node, len(eps))
	for i, ep := range eps {
		nodes[i] = NewNode(ep, NewSemanticBackend(fixtureRegistry(t)), cfg)
		nodes[i].Start(context.Background())
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
	})
	nodes[1].BecomeDirectory()
	waitUntil(t, 2*time.Second, "n0 directory", func() bool {
		d, ok := nodes[0].DirectoryID()
		return ok && d == "n1"
	})
	return nodes
}

// TestSampledTracingDepositsIntoRecorder: with TraceSampleEvery=2 the
// first plain query stays untraced and the second carries a trace ID
// whose merged span tree lands in the recorder, marked sampled.
func TestSampledTracingDepositsIntoRecorder(t *testing.T) {
	rec := telemetry.NewRecorder(8, 8)
	nodes := samplerCluster(t, func(c *Config) {
		c.TraceSampleEvery = 2
		c.SlowQueryThreshold = -1 // isolate the sampler from timing noise
		c.Recorder = rec
	})
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := nodes[0].Publish(ctx, workstationDoc(t)); err != nil {
		t.Fatal(err)
	}

	first, err := nodes[0].DiscoverResult(ctx, pdaRequestDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	if first.Trace != 0 || len(first.Spans) != 0 {
		t.Fatalf("query 1 of 2 should be unsampled, got trace %#x spans %v", first.Trace, first.Spans)
	}
	second, err := nodes[0].DiscoverResult(ctx, pdaRequestDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	if second.Trace == 0 || len(second.Spans) == 0 {
		t.Fatalf("query 2 of 2 should be sampled, got trace %#x spans %v", second.Trace, second.Spans)
	}

	recd, ok := rec.Trace(second.Trace)
	if !ok {
		t.Fatalf("sampled trace %#x not in recorder", second.Trace)
	}
	if !recd.Sampled || recd.Slow || recd.Node != "n0" {
		t.Fatalf("record = %+v, want sampled non-slow from n0", recd)
	}
	if recd.Hits != len(second.Hits) || len(recd.Spans) != len(second.Spans) {
		t.Fatalf("record %+v does not match result %+v", recd, second)
	}
	if got := rec.Traces(); len(got) != 1 {
		t.Fatalf("recorder holds %d traces, want 1", len(got))
	}
}

// TestSlowQueryLatchTracesNextQuery: an untraced query that comes back
// slow deposits a spanless record and arms the latch, so the NEXT query
// is traced even with the sampler disabled.
func TestSlowQueryLatchTracesNextQuery(t *testing.T) {
	rec := telemetry.NewRecorder(8, 8)
	nodes := samplerCluster(t, func(c *Config) {
		c.TraceSampleEvery = -1                // sampler off: only the latch can trace
		c.SlowQueryThreshold = time.Nanosecond // everything counts as slow
		c.Recorder = rec
	})
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()

	first, err := nodes[0].DiscoverResult(ctx, pdaRequestDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	if first.Trace != 0 {
		t.Fatalf("first query traced (%#x) with the sampler off", first.Trace)
	}
	traces := rec.Traces()
	if len(traces) != 1 || !traces[0].Slow || len(traces[0].Spans) != 0 {
		t.Fatalf("slow untraced query should leave one spanless slow record, got %+v", traces)
	}

	second, err := nodes[0].DiscoverResult(ctx, pdaRequestDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	if second.Trace == 0 || len(second.Spans) == 0 {
		t.Fatalf("latch did not trace the next query: %+v", second)
	}
	recd, ok := rec.Trace(second.Trace)
	if !ok || len(recd.Spans) == 0 || !recd.Slow {
		t.Fatalf("latched trace record = %+v, %v", recd, ok)
	}
}

// TestGiveUpReasonRetriesExhausted: a silent peer burns through the
// retransmission budget, so its unreachable span says so — and the
// give-up lands in the flight recorder's protocol-event ring.
func TestGiveUpReasonRetriesExhausted(t *testing.T) {
	rec := telemetry.NewRecorder(8, 64)
	cfg := hedgeConfig()
	cfg.HedgeSpares = 0
	cfg.Recorder = rec
	_, fakeEp, nodes := hedgeHarness(t, cfg)
	drainSilently(t, fakeEp, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	res, err := nodes[0].DiscoverTrace(ctx, pdaRequestDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	assertUnreachReason(t, res.Spans, "n1", telemetry.ReasonRetries)
	assertGiveUpEvent(t, rec, "n1", telemetry.ReasonRetries)
}

// TestGiveUpReasonTimeout: with retries disabled (fire-and-forget) a
// pending forward can only die at the aggregation deadline, and its
// unreachable span must carry the timeout reason.
func TestGiveUpReasonTimeout(t *testing.T) {
	rec := telemetry.NewRecorder(8, 64)
	cfg := hedgeConfig()
	cfg.HedgeSpares = 0
	cfg.ForwardRetries = -1 // fire-and-forget: only the deadline gives up
	cfg.Recorder = rec
	_, fakeEp, nodes := hedgeHarness(t, cfg)
	drainSilently(t, fakeEp, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	res, err := nodes[0].DiscoverTrace(ctx, pdaRequestDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	assertUnreachReason(t, res.Spans, "n1", telemetry.ReasonTimeout)
	assertGiveUpEvent(t, rec, "n1", telemetry.ReasonTimeout)
}

func assertUnreachReason(t *testing.T, spans []telemetry.Span, peer, reason string) {
	t.Helper()
	for _, s := range spans {
		if s.Event == telemetry.EventUnreach && s.Peer == peer {
			if s.Reason != reason {
				t.Fatalf("unreachable span reason = %q, want %q", s.Reason, reason)
			}
			return
		}
	}
	t.Fatalf("no unreachable span for %s in:\n%s", peer, telemetry.FormatSpans(spans))
}

func assertGiveUpEvent(t *testing.T, rec *telemetry.Recorder, peer, reason string) {
	t.Helper()
	for _, ev := range rec.Events() {
		if ev.Kind == telemetry.ProtoGiveUp && ev.Peer == peer {
			if ev.Detail != reason {
				t.Fatalf("give-up event detail = %q, want %q", ev.Detail, reason)
			}
			return
		}
	}
	t.Fatalf("no give-up event for %s in %+v", peer, rec.Events())
}
