package discovery

import (
	"context"
	"testing"
	"time"

	"sariadne/internal/telemetry"
)

// spanWith reports whether spans contain an entry matching node/event and
// (when non-empty) peer.
func spanWith(spans []telemetry.Span, node, event, peer string) bool {
	for _, s := range spans {
		if s.Node == node && s.Event == event && (peer == "" || s.Peer == peer) {
			return true
		}
	}
	return false
}

// TestDiscoverTraceRecordsForwardingHops publishes on one side of a
// three-directory line and queries from the other: the returned trace
// must show the entry directory receiving the query, missing locally,
// pruning the empty middle directory via its Bloom summary, forwarding
// to the directory that holds the service, and both replies.
func TestDiscoverTraceRecordsForwardingHops(t *testing.T) {
	_, nodes := testCluster(t, 7)
	nodes[1].BecomeDirectory()
	nodes[3].BecomeDirectory()
	nodes[5].BecomeDirectory()

	waitUntil(t, 2*time.Second, "backbone handshake", func() bool {
		return len(nodes[1].Peers()) == 2 && len(nodes[3].Peers()) == 2 && len(nodes[5].Peers()) == 2
	})

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()

	// n6's vicinity directory is n5: the workstation advertisement lands
	// there. n3 stores nothing, so its summary stays empty and n1 must
	// prune it for any request.
	waitUntil(t, 2*time.Second, "n6 directory", func() bool {
		d, ok := nodes[6].DirectoryID()
		return ok && d == "n5"
	})
	if err := nodes[6].Publish(ctx, workstationDoc(t)); err != nil {
		t.Fatal(err)
	}

	key, err := nodes[1].backend.RequestKey(pdaRequestDoc(t))
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 2*time.Second, "summaries at n1", func() bool {
		nodes[1].mu.Lock()
		defer nodes[1].mu.Unlock()
		ps3, ps5 := nodes[1].peers["n3"], nodes[1].peers["n5"]
		return ps3 != nil && ps3.filter != nil &&
			ps5 != nil && ps5.filter != nil && ps5.filter.Test(key)
	})

	waitUntil(t, 2*time.Second, "n0 directory", func() bool {
		d, ok := nodes[0].DirectoryID()
		return ok && d == "n1"
	})
	res, err := nodes[0].DiscoverTrace(ctx, pdaRequestDoc(t))
	if err != nil {
		t.Fatalf("DiscoverTrace: %v", err)
	}
	hits, spans := res.Hits, res.Spans
	if len(hits) != 1 || hits[0].Directory != "n5" {
		t.Fatalf("hits = %v, want one from n5", hits)
	}
	if res.Partial() {
		t.Fatalf("healthy cluster returned partial result: %v", res.Unreachable)
	}

	trace := spans[0].Trace
	if trace == 0 {
		t.Fatal("zero trace ID on spans")
	}
	for _, s := range spans {
		if s.Trace != trace {
			t.Fatalf("mixed trace IDs in %v", spans)
		}
	}
	for _, want := range []struct{ node, event, peer string }{
		{"n1", telemetry.EventReceived, "n0"},
		{"n1", telemetry.EventLocalMatch, ""},
		{"n1", telemetry.EventBloomPrune, "n3"},
		{"n1", telemetry.EventForward, "n5"},
		{"n5", telemetry.EventReceived, "n1"},
		{"n5", telemetry.EventLocalMatch, ""},
		{"n5", telemetry.EventReply, "n1"},
		{"n1", telemetry.EventReply, "n0"},
	} {
		if !spanWith(spans, want.node, want.event, want.peer) {
			t.Errorf("missing span %s/%s peer=%q in:\n%s",
				want.node, want.event, want.peer, telemetry.FormatSpans(spans))
		}
	}

	// The local-match at n5 found the hit; n1 found nothing.
	for _, s := range spans {
		if s.Event != telemetry.EventLocalMatch {
			continue
		}
		switch s.Node {
		case "n1":
			if s.Hits != 0 {
				t.Errorf("n1 local-match hits = %d, want 0", s.Hits)
			}
		case "n5":
			if s.Hits != 1 {
				t.Errorf("n5 local-match hits = %d, want 1", s.Hits)
			}
		}
	}

	// Spans come back in causal order: n1 received the query before
	// forwarding, and n5's work happened between forward and final reply.
	idx := func(node, event string) int {
		for i, s := range spans {
			if s.Node == node && s.Event == event {
				return i
			}
		}
		return -1
	}
	if !(idx("n1", telemetry.EventReceived) < idx("n1", telemetry.EventForward) &&
		idx("n1", telemetry.EventForward) < idx("n5", telemetry.EventReceived) &&
		idx("n5", telemetry.EventReply) < idx("n1", telemetry.EventReply)) {
		t.Fatalf("spans out of causal order:\n%s", telemetry.FormatSpans(spans))
	}

	// Untraced queries stay untraced: no spans on the plain path.
	plainHits, err := nodes[0].Discover(ctx, pdaRequestDoc(t))
	if err != nil || len(plainHits) != 1 {
		t.Fatalf("plain Discover: %v, %v", plainHits, err)
	}
}
