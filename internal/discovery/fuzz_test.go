package discovery

import (
	"bytes"
	"reflect"
	"testing"

	"sariadne/internal/simnet"
	"sariadne/internal/transport"
)

// FuzzDecodeMessage hardens the full wire path a federated daemon reads:
// the transport's length/version envelope and the protocol codec behind
// it. Arbitrary bytes never panic either decoder, successful decodes
// round trip exactly, and every decoded message — malformed documents,
// replayed replies, stray acks — passes through a live node's handler
// without crashing it.
func FuzzDecodeMessage(f *testing.F) {
	for _, msg := range wireFixtures() {
		frame, err := EncodeMessage(msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
		// The same frame as a transport datagram, so the corpus explores
		// both decoder layers.
		if wrapped, err := transport.EncodeFrame("127.0.0.1:8474", frame); err == nil {
			f.Add(wrapped)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{tagQueryRequest, '{', '}'})
	f.Add([]byte{255, 0, 1, 2})
	f.Add([]byte{transport.FrameVersion, 0, 0, 0, 0, 0, 0})

	net := simnet.New(simnet.Config{})
	defer net.Close()
	ep, err := net.AddNode("fuzz-node")
	if err != nil {
		f.Fatal(err)
	}
	if _, err := net.AddNode("fuzz-peer"); err != nil {
		f.Fatal(err)
	}
	if err := net.Connect("fuzz-node", "fuzz-peer"); err != nil {
		f.Fatal(err)
	}
	node := NewNode(ep, NewSemanticBackend(fixtureRegistry(f)), Config{})
	// The node is deliberately not Started: handleMessage runs inline so a
	// panic surfaces in the fuzzing process instead of a goroutine.

	f.Fuzz(func(t *testing.T, data []byte) {
		// The transport envelope decoder must be total, and any body it
		// accepts must survive an envelope round trip bit-exactly.
		if from, body, err := transport.DecodeFrame(data); err == nil {
			rewrapped, err := transport.EncodeFrame(from, body)
			if err != nil {
				t.Fatalf("decoded frame failed to re-encode: %v", err)
			}
			from2, body2, err := transport.DecodeFrame(rewrapped)
			if err != nil {
				t.Fatalf("re-decode of frame failed: %v", err)
			}
			if from2 != from || !bytes.Equal(body2, body) {
				t.Fatalf("envelope round trip changed frame: %q/%x -> %q/%x", from, body, from2, body2)
			}
		}
		// Stream form: one well-formed write must read back as one frame.
		if _, _, err := transport.DecodeFrame(data); err == nil {
			var buf bytes.Buffer
			buf.Write(data)
			if _, _, _, err := transport.ReadFrame(&buf); err != nil || buf.Len() != 0 {
				t.Fatalf("stream reader disagreed with datagram decoder: err=%v leftover=%d", err, buf.Len())
			}
		}

		msg, err := DecodeMessage(data)
		if err != nil {
			return
		}
		reenc, err := EncodeMessage(msg)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		back, err := DecodeMessage(reenc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(msg, back) {
			t.Fatalf("round trip changed message:\n in: %#v\nout: %#v", msg, back)
		}
		node.handleMessage(simnet.Message{From: "fuzz-peer", To: "fuzz-node", Payload: msg})
	})
}
