package discovery

import (
	"reflect"
	"testing"

	"sariadne/internal/simnet"
)

// FuzzDecodeMessage hardens the protocol wire decoder and the node's
// message dispatch: arbitrary frames never panic the decoder, successful
// decodes round trip exactly, and every decoded message — malformed
// documents, replayed replies, stray acks — passes through a live node's
// handler without crashing it.
func FuzzDecodeMessage(f *testing.F) {
	for _, msg := range wireFixtures() {
		frame, err := EncodeMessage(msg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add([]byte{tagQueryRequest, '{', '}'})
	f.Add([]byte{255, 0, 1, 2})

	net := simnet.New(simnet.Config{})
	defer net.Close()
	ep, err := net.AddNode("fuzz-node")
	if err != nil {
		f.Fatal(err)
	}
	if _, err := net.AddNode("fuzz-peer"); err != nil {
		f.Fatal(err)
	}
	if err := net.Connect("fuzz-node", "fuzz-peer"); err != nil {
		f.Fatal(err)
	}
	node := NewNode(ep, NewSemanticBackend(fixtureRegistry(f)), Config{})
	// The node is deliberately not Started: handleMessage runs inline so a
	// panic surfaces in the fuzzing process instead of a goroutine.

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := DecodeMessage(data)
		if err != nil {
			return
		}
		reenc, err := EncodeMessage(msg)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		back, err := DecodeMessage(reenc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(msg, back) {
			t.Fatalf("round trip changed message:\n in: %#v\nout: %#v", msg, back)
		}
		node.handleMessage(simnet.Message{From: "fuzz-peer", To: "fuzz-node", Payload: msg})
	})
}
