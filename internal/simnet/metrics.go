package simnet

import "sariadne/internal/telemetry"

// Process-wide traffic instruments mirroring Stats: per-network counters
// stay in Stats for scoped assertions, while these aggregate every
// simulated network in the process for the /metrics and end-of-run views.
var (
	unicastsTotal = telemetry.NewCounter("simnet_unicasts_total",
		"unicast messages sent across all simulated networks")
	broadcastsTotal = telemetry.NewCounter("simnet_broadcasts_total",
		"hop-limited broadcasts initiated")
	deliveredTotal = telemetry.NewCounter("simnet_delivered_total",
		"messages delivered to an inbox")
	dropsTotal = telemetry.NewCounter("simnet_link_drops_total",
		"messages lost to link drops")
	overflowsTotal = telemetry.NewCounter("simnet_overflows_total",
		"messages lost to full inboxes")
	traversalsTotal = telemetry.NewCounter("simnet_link_traversals_total",
		"individual link traversals (the paper's generated-traffic axis)")
	unicastHops = telemetry.NewSizeHistogram("simnet_unicast_hops",
		"route length in hops of each unicast send")
	faultDropsTotal = telemetry.NewCounter("simnet_fault_drops_total",
		"messages lost to injected faults: bursts, link overrides, crashed nodes")
	partitionBlocksTotal = telemetry.NewCounter("simnet_partition_blocks_total",
		"unicast sends refused because an active partition cut every route")
)
