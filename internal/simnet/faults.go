package simnet

import (
	"fmt"
	"sort"
	"time"

	"sariadne/internal/telemetry"
)

// Fault injection: a deterministic, scripted layer over the simulated
// network that reproduces the failure modes the paper's hybrid MANETs
// exhibit — partitions that later heal, asymmetric lossy or slow links,
// bursts of congestion loss, and node churn. A FaultPlan is a schedule of
// such conditions relative to the instant it is applied; the same plan
// over the same seeded network yields the same drop decisions, so chaos
// experiments replay deterministically.
//
// Faults are evaluated at send/delivery time rather than by mutating the
// topology, which means healing is automatic (the schedule simply stops
// matching) and the underlying link set stays intact for inspection.

// Partition severs every link between nodes of different groups for the
// window [At, Heal). Nodes not listed in any group are unaffected. A zero
// Heal means the partition never heals.
type Partition struct {
	// Name labels the partition in ActiveFaults output and logs.
	Name string
	// Groups are the sides of the cut; links inside a group stay up.
	Groups [][]NodeID
	// At and Heal are offsets from the moment the plan is applied.
	At, Heal time.Duration
}

// LinkFault overrides the conditions of one directional link From → To
// for the window [At, Until). Asymmetric behaviour (a link lossy one way,
// clean the other) is expressed with two entries. A zero Until means the
// fault persists.
type LinkFault struct {
	From, To NodeID
	// Drop replaces the network-wide DropRate on this link (0 keeps the
	// traversal reliable, so a LinkFault can also repair a lossy base).
	Drop float64
	// ExtraLatency is added to the delivery delay per traversal.
	ExtraLatency time.Duration
	At, Until    time.Duration
}

// Burst raises the loss probability of every link traversal during the
// window [At, Until) — congestion or interference bursts. The effective
// rate on a link is the maximum of the base rate, any LinkFault override,
// and every active burst.
type Burst struct {
	Drop      float64
	At, Until time.Duration
}

// Churn crashes a node for the window [DownAt, UpAt): a down node neither
// sends, receives, nor relays traffic, but keeps its identity and links —
// the model of a process crash followed by a restart. A zero UpAt means
// the node stays down.
type Churn struct {
	Node         NodeID
	DownAt, UpAt time.Duration
}

// FaultPlan is a complete scripted fault schedule.
type FaultPlan struct {
	Partitions []Partition
	Links      []LinkFault
	Bursts     []Burst
	Churn      []Churn
}

// faultState is the plan plus its activation instant.
type faultState struct {
	plan  FaultPlan
	start time.Time
	// groupOf caches partition group membership: partition index -> node
	// -> group index.
	groupOf []map[NodeID]int
}

// ApplyFaultPlan activates a fault plan now, replacing any previous one.
// All plan offsets are relative to this call.
func (n *Network) ApplyFaultPlan(p FaultPlan) {
	st := &faultState{plan: p, start: time.Now()}
	st.groupOf = make([]map[NodeID]int, len(p.Partitions))
	for i, part := range p.Partitions {
		m := make(map[NodeID]int)
		for g, group := range part.Groups {
			for _, id := range group {
				m[id] = g
			}
		}
		st.groupOf[i] = m
	}
	n.mu.Lock()
	n.faults = st
	n.mu.Unlock()
	telemetry.FlightRecorder().RecordEvent("simnet", telemetry.ProtoFault, "",
		fmt.Sprintf("plan applied: %d partitions, %d link overrides, %d bursts, %d churn entries",
			len(p.Partitions), len(p.Links), len(p.Bursts), len(p.Churn)))
}

// ClearFaults removes the active fault plan (manual down flags set with
// SetNodeDown persist until cleared individually).
func (n *Network) ClearFaults() {
	n.mu.Lock()
	n.faults = nil
	n.mu.Unlock()
}

// SetNodeDown crashes or restarts a node manually, outside any plan. A
// down node neither sends, receives, nor relays traffic.
func (n *Network) SetNodeDown(id NodeID, down bool) {
	n.mu.Lock()
	if down {
		n.manualDown[id] = true
	} else {
		delete(n.manualDown, id)
	}
	n.mu.Unlock()
	detail := "restarted"
	if down {
		detail = "crashed"
	}
	telemetry.FlightRecorder().RecordEvent("simnet", telemetry.ProtoFault, string(id), detail)
}

// ActiveFaults describes the currently active fault conditions, sorted,
// for test synchronization ("wait until the plan has drained") and
// operator reports. Manual down flags are included.
func (n *Network) ActiveFaults() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	now := time.Now()
	var out []string
	for id := range n.manualDown {
		out = append(out, fmt.Sprintf("down:%s", id))
	}
	if n.faults != nil {
		off := now.Sub(n.faults.start)
		for _, p := range n.faults.plan.Partitions {
			if windowActive(off, p.At, p.Heal) {
				out = append(out, fmt.Sprintf("partition:%s", p.Name))
			}
		}
		for _, l := range n.faults.plan.Links {
			if windowActive(off, l.At, l.Until) {
				out = append(out, fmt.Sprintf("link:%s->%s", l.From, l.To))
			}
		}
		for _, b := range n.faults.plan.Bursts {
			if windowActive(off, b.At, b.Until) {
				out = append(out, fmt.Sprintf("burst:%.2f", b.Drop))
			}
		}
		for _, c := range n.faults.plan.Churn {
			if windowActive(off, c.DownAt, c.UpAt) {
				out = append(out, fmt.Sprintf("down:%s", c.Node))
			}
		}
	}
	sort.Strings(out)
	return out
}

// windowActive reports whether offset off falls in [at, until); a zero
// until means the window never closes.
func windowActive(off, at, until time.Duration) bool {
	if off < at {
		return false
	}
	return until == 0 || off < until
}

// nodeDownLocked reports whether a node is crashed at offset time now.
// Callers hold n.mu.
func (n *Network) nodeDownLocked(id NodeID, now time.Time) bool {
	if n.manualDown[id] {
		return true
	}
	if n.faults == nil {
		return false
	}
	off := now.Sub(n.faults.start)
	for _, c := range n.faults.plan.Churn {
		if c.Node == id && windowActive(off, c.DownAt, c.UpAt) {
			return true
		}
	}
	return false
}

// linkCutLocked reports whether an active partition severs the link
// between a and b. Callers hold n.mu.
func (n *Network) linkCutLocked(a, b NodeID, now time.Time) bool {
	if n.faults == nil {
		return false
	}
	off := now.Sub(n.faults.start)
	for i, p := range n.faults.plan.Partitions {
		if !windowActive(off, p.At, p.Heal) {
			continue
		}
		ga, oka := n.faults.groupOf[i][a]
		gb, okb := n.faults.groupOf[i][b]
		if oka && okb && ga != gb {
			return true
		}
	}
	return false
}

// linkConditionsLocked returns the effective drop probability and extra
// latency for one directional traversal from → to, and whether a fault
// (override or burst) shaped the drop rate. Callers hold n.mu.
func (n *Network) linkConditionsLocked(from, to NodeID, now time.Time) (drop float64, extra time.Duration, faulted bool) {
	drop = n.cfg.DropRate
	if n.faults == nil {
		return drop, 0, false
	}
	off := now.Sub(n.faults.start)
	for _, l := range n.faults.plan.Links {
		if l.From == from && l.To == to && windowActive(off, l.At, l.Until) {
			drop = l.Drop
			extra += l.ExtraLatency
			faulted = true
		}
	}
	for _, b := range n.faults.plan.Bursts {
		if windowActive(off, b.At, b.Until) && b.Drop > drop {
			drop = b.Drop
			faulted = true
		}
	}
	return drop, extra, faulted
}

// usableLinkLocked reports whether a message can traverse from u to v at
// time now: the physical link exists, no partition cuts it, and the far
// end is not crashed. Callers hold n.mu.
func (n *Network) usableLinkLocked(u, v NodeID, now time.Time) bool {
	if _, ok := n.links[u][v]; !ok {
		return false
	}
	if n.linkCutLocked(u, v, now) {
		return false
	}
	return !n.nodeDownLocked(v, now)
}

// pathLocked computes a shortest usable path (including both endpoints)
// honoring active faults when faultAware is true. Callers hold n.mu.
func (n *Network) pathLocked(from, to NodeID, now time.Time, faultAware bool) ([]NodeID, bool) {
	if from == to {
		return []NodeID{from}, true
	}
	parent := map[NodeID]NodeID{from: from}
	frontier := []NodeID{from}
	for len(frontier) > 0 {
		var next []NodeID
		for _, u := range frontier {
			for v := range n.links[u] {
				if _, seen := parent[v]; seen {
					continue
				}
				if faultAware && (n.linkCutLocked(u, v, now) || (v != to && n.nodeDownLocked(v, now))) {
					continue
				}
				parent[v] = u
				if v == to {
					// Walk back to build the path.
					path := []NodeID{v}
					for cur := v; cur != from; {
						cur = parent[cur]
						path = append(path, cur)
					}
					for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
						path[i], path[j] = path[j], path[i]
					}
					return path, true
				}
				next = append(next, v)
			}
		}
		frontier = next
	}
	return nil, false
}
