package simnet

import (
	"context"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestAddRemoveNodes(t *testing.T) {
	n := New(Config{})
	a, err := n.AddNode("a")
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() != "a" {
		t.Fatalf("ID = %s", a.ID())
	}
	if _, err := n.AddNode("a"); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("duplicate add = %v", err)
	}
	if _, err := n.AddNode("b"); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("a", "b"); err != nil {
		t.Fatal(err)
	}
	if got := n.Neighbors("a"); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Neighbors = %v", got)
	}
	n.RemoveNode("b")
	if got := n.Neighbors("a"); len(got) != 0 {
		t.Fatalf("Neighbors after removal = %v", got)
	}
	if got := n.Nodes(); len(got) != 1 {
		t.Fatalf("Nodes = %v", got)
	}
	n.RemoveNode("nope") // no-op
}

func TestConnectValidation(t *testing.T) {
	n := New(Config{})
	if _, err := n.AddNode("a"); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("a", "missing"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Connect = %v", err)
	}
	if err := n.Connect("missing", "a"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Connect = %v", err)
	}
	if err := n.Connect("a", "a"); err != nil {
		t.Fatalf("self connect should be a no-op, got %v", err)
	}
}

func TestUnicastRouting(t *testing.T) {
	n := New(Config{})
	eps, err := BuildLine(n, "n", 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := eps[0].Send("n4", "hello"); err != nil {
		t.Fatal(err)
	}
	msg, err := eps[4].Recv(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if msg.From != "n0" || msg.To != "n4" || msg.Hops != 4 || msg.Payload != "hello" {
		t.Fatalf("msg = %+v", msg)
	}
	st := n.Stats()
	if st.UnicastsSent != 1 || st.MessagesDelivered != 1 || st.LinkTraversals != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestUnicastNoRoute(t *testing.T) {
	n := New(Config{})
	a, _ := n.AddNode("a")
	if _, err := n.AddNode("b"); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", 1); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("Send = %v, want ErrNoRoute", err)
	}
	if err := a.Send("missing", 1); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Send = %v, want ErrUnknownNode", err)
	}
	// Self-send is hop 0 and always deliverable.
	if err := a.Send("a", "self"); err != nil {
		t.Fatal(err)
	}
	msg, err := a.Recv(context.Background())
	if err != nil || msg.Hops != 0 {
		t.Fatalf("self recv = %+v, %v", msg, err)
	}
}

func TestBroadcastTTL(t *testing.T) {
	n := New(Config{})
	eps, err := BuildLine(n, "n", 6)
	if err != nil {
		t.Fatal(err)
	}
	reached, err := eps[0].Broadcast(2, "adv")
	if err != nil {
		t.Fatal(err)
	}
	if reached != 2 { // n1 and n2
		t.Fatalf("reached = %d, want 2", reached)
	}
	for i, want := range []int{0, 1, 1, 0, 0, 0} {
		got := len(eps[i].Inbox())
		if got != want {
			t.Errorf("node %d inbox = %d, want %d", i, got, want)
		}
	}
	// Hop count on delivered broadcast.
	msg := <-eps[2].Inbox()
	if !msg.Broadcast || msg.Hops != 2 {
		t.Fatalf("broadcast msg = %+v", msg)
	}
}

func TestDropRate(t *testing.T) {
	n := New(Config{DropRate: 1.0})
	eps, err := BuildLine(n, "n", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := eps[0].Send("n1", "x"); err != nil {
		t.Fatal(err) // loss is silent
	}
	if got := len(eps[1].Inbox()); got != 0 {
		t.Fatalf("inbox = %d, want 0 (all dropped)", got)
	}
	if st := n.Stats(); st.MessagesDropped != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if reached, err := eps[0].Broadcast(3, "y"); err != nil || reached != 0 {
		t.Fatalf("broadcast reached %d, %v", reached, err)
	}
}

func TestQueueOverflow(t *testing.T) {
	n := New(Config{QueueSize: 2})
	eps, err := BuildLine(n, "n", 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := eps[0].Send("n1", i); err != nil {
			t.Fatal(err)
		}
	}
	st := n.Stats()
	if st.MessagesDelivered != 2 || st.MessagesOverflowed != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLatencyDelivery(t *testing.T) {
	n := New(Config{LatencyPerHop: 5 * time.Millisecond})
	eps, err := BuildLine(n, "n", 3)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := eps[0].Send("n2", "slow"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	msg, err := eps[2].Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("delivered after %v, want >= 10ms (2 hops)", elapsed)
	}
	if msg.Hops != 2 {
		t.Fatalf("Hops = %d", msg.Hops)
	}
	n.Close()
}

func TestRecvContextCancel(t *testing.T) {
	n := New(Config{})
	a, _ := n.AddNode("a")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.Recv(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Recv = %v", err)
	}
}

func TestClose(t *testing.T) {
	n := New(Config{})
	a, _ := n.AddNode("a")
	n.Close()
	n.Close() // idempotent
	if err := a.Send("a", 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after close = %v", err)
	}
	if _, err := a.Broadcast(1, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Broadcast after close = %v", err)
	}
	if _, err := n.AddNode("b"); !errors.Is(err, ErrClosed) {
		t.Fatalf("AddNode after close = %v", err)
	}
	if _, ok := <-a.Inbox(); ok {
		t.Fatal("inbox not closed")
	}
	if _, err := a.Recv(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv after close = %v", err)
	}
}

func TestHopDistance(t *testing.T) {
	n := New(Config{})
	if _, err := BuildRing(n, "r", 6); err != nil {
		t.Fatal(err)
	}
	d, ok := n.HopDistance("r0", "r3")
	if !ok || d != 3 {
		t.Fatalf("HopDistance = %d, %v; want 3", d, ok)
	}
	d, ok = n.HopDistance("r0", "r5") // around the ring
	if !ok || d != 1 {
		t.Fatalf("HopDistance = %d, %v; want 1", d, ok)
	}
	if _, ok := n.HopDistance("r0", "missing"); ok {
		t.Fatal("HopDistance to unknown node succeeded")
	}
	n.Disconnect("r0", "r1")
	n.Disconnect("r0", "r5")
	if _, ok := n.HopDistance("r0", "r3"); ok {
		t.Fatal("HopDistance across partition succeeded")
	}
}

func TestNodesWithin(t *testing.T) {
	n := New(Config{})
	if _, err := BuildLine(n, "n", 6); err != nil {
		t.Fatal(err)
	}
	got := n.NodesWithin("n0", 2)
	if len(got) != 2 || got[0] != "n1" || got[1] != "n2" {
		t.Fatalf("NodesWithin = %v", got)
	}
}

func TestTopologies(t *testing.T) {
	t.Run("grid", func(t *testing.T) {
		n := New(Config{})
		eps, err := BuildGrid(n, "g", 3, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(eps) != 12 {
			t.Fatalf("len = %d", len(eps))
		}
		// Corner has 2 neighbors, center has 4.
		if got := len(n.Neighbors("g0")); got != 2 {
			t.Errorf("corner neighbors = %d", got)
		}
		if got := len(n.Neighbors("g5")); got != 4 {
			t.Errorf("center neighbors = %d", got)
		}
		d, ok := n.HopDistance("g0", "g11")
		if !ok || d != 5 { // manhattan distance (2,3)
			t.Errorf("grid distance = %d, %v", d, ok)
		}
	})
	t.Run("star", func(t *testing.T) {
		n := New(Config{})
		if _, err := BuildStar(n, "s", 5); err != nil {
			t.Fatal(err)
		}
		if got := len(n.Neighbors("s0")); got != 4 {
			t.Errorf("hub neighbors = %d", got)
		}
		d, _ := n.HopDistance("s1", "s4")
		if d != 2 {
			t.Errorf("leaf-to-leaf = %d", d)
		}
	})
	t.Run("geometric deterministic", func(t *testing.T) {
		n1 := New(Config{})
		n2 := New(Config{})
		if _, err := BuildGeometric(n1, "p", 30, 0.3, 7); err != nil {
			t.Fatal(err)
		}
		if _, err := BuildGeometric(n2, "p", 30, 0.3, 7); err != nil {
			t.Fatal(err)
		}
		for _, id := range n1.Nodes() {
			a := n1.Neighbors(id)
			b := n2.Neighbors(id)
			if len(a) != len(b) {
				t.Fatalf("nondeterministic layout at %s", id)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("nondeterministic layout at %s", id)
				}
			}
		}
	})
}

// TestPropertyBroadcastReach: on random geometric topologies with no loss,
// a TTL-bounded broadcast reaches exactly the nodes NodesWithin reports,
// each with the minimal hop count.
func TestPropertyBroadcastReach(t *testing.T) {
	prop := func(seed int64, sz, ttl8 uint8) bool {
		count := int(sz%20) + 2
		ttl := int(ttl8%4) + 1
		n := New(Config{QueueSize: 1024})
		defer n.Close()
		eps, err := BuildGeometric(n, "p", count, 0.4, seed)
		if err != nil {
			return false
		}
		origin := eps[int(seed%int64(count)+int64(count))%count]
		reached, err := origin.Broadcast(ttl, "x")
		if err != nil {
			return false
		}
		want := n.NodesWithin(origin.ID(), ttl)
		if reached != len(want) {
			return false
		}
		wantSet := map[NodeID]bool{}
		for _, id := range want {
			wantSet[id] = true
		}
		for _, ep := range eps {
			got := len(ep.Inbox())
			if wantSet[ep.ID()] {
				if got != 1 {
					return false
				}
				msg := <-ep.Inbox()
				d, ok := n.HopDistance(origin.ID(), ep.ID())
				if !ok || msg.Hops != d {
					return false
				}
			} else if got != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
