package simnet

import (
	"context"
	"strings"
	"testing"
	"time"

	"sariadne/internal/telemetry"
	"sariadne/internal/testutil"
)

// drain empties an endpoint's inbox, returning how many messages were
// pending.
func drain(e *Endpoint) int {
	n := 0
	for {
		select {
		case <-e.inbox:
			n++
		default:
			return n
		}
	}
}

// TestPartitionCutsAndHeals: during an active partition no unicast
// crosses the cut and Send reports no route; after the heal offset the
// same call delivers again without any topology surgery.
func TestPartitionCutsAndHeals(t *testing.T) {
	net := New(Config{})
	t.Cleanup(net.Close)
	eps, err := BuildLine(net, "n", 4)
	if err != nil {
		t.Fatal(err)
	}
	net.ApplyFaultPlan(FaultPlan{Partitions: []Partition{{
		Name:   "split",
		Groups: [][]NodeID{{"n0", "n1"}, {"n2", "n3"}},
		Heal:   60 * time.Millisecond,
	}}})

	if err := eps[0].Send("n3", "blocked"); err == nil {
		t.Fatal("Send across an active partition succeeded")
	}
	if _, ok := net.HopDistance("n0", "n3"); ok {
		t.Fatal("HopDistance crossed an active partition")
	}
	if got := net.NodesWithin("n0", 8); len(got) != 1 || got[0] != "n1" {
		t.Fatalf("NodesWithin during partition = %v, want [n1]", got)
	}
	if st := net.Stats(); st.PartitionBlocks == 0 {
		t.Fatalf("stats = %+v, want PartitionBlocks > 0", st)
	}
	// Broadcast stays on the near side of the cut.
	reached, err := eps[0].Broadcast(8, "flood")
	if err != nil || reached != 1 {
		t.Fatalf("broadcast during partition reached %d (%v), want 1", reached, err)
	}

	// After the heal offset the route is back.
	testutil.WaitFor(t, time.Second, func() bool {
		return len(net.ActiveFaults()) == 0
	}, "partition to heal")
	if err := eps[0].Send("n3", "healed"); err != nil {
		t.Fatalf("Send after heal: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	msg, err := eps[3].Recv(ctx)
	if err != nil || msg.Payload != "healed" {
		t.Fatalf("Recv after heal = %v, %v", msg, err)
	}
}

// TestLinkFaultAsymmetric: a directional 100% drop override loses every
// message one way while the reverse direction stays reliable, and the
// drops are attributed to the fault counters.
func TestLinkFaultAsymmetric(t *testing.T) {
	net := New(Config{})
	t.Cleanup(net.Close)
	eps, err := BuildLine(net, "n", 2)
	if err != nil {
		t.Fatal(err)
	}
	net.ApplyFaultPlan(FaultPlan{Links: []LinkFault{{From: "n0", To: "n1", Drop: 1}}})

	for i := 0; i < 5; i++ {
		if err := eps[0].Send("n1", i); err != nil {
			t.Fatalf("Send: %v", err)
		}
		if err := eps[1].Send("n0", i); err != nil {
			t.Fatalf("reverse Send: %v", err)
		}
	}
	if got := drain(eps[1]); got != 0 {
		t.Fatalf("lossy direction delivered %d messages, want 0", got)
	}
	if got := drain(eps[0]); got != 5 {
		t.Fatalf("clean direction delivered %d messages, want 5", got)
	}
	st := net.Stats()
	if st.FaultDrops != 5 || st.MessagesDropped != 5 {
		t.Fatalf("stats = %+v, want 5 fault drops", st)
	}
}

// TestLinkFaultExtraLatency: a latency override defers delivery, and the
// message still arrives once the delay elapses.
func TestLinkFaultExtraLatency(t *testing.T) {
	net := New(Config{})
	t.Cleanup(net.Close)
	eps, err := BuildLine(net, "n", 2)
	if err != nil {
		t.Fatal(err)
	}
	net.ApplyFaultPlan(FaultPlan{Links: []LinkFault{
		{From: "n0", To: "n1", ExtraLatency: 30 * time.Millisecond},
	}})
	start := time.Now()
	if err := eps[0].Send("n1", "slow"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := eps[1].Recv(ctx); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("delivery took %v, want >= 30ms", elapsed)
	}
}

// TestBurstLossWindow: a total-loss burst swallows everything inside its
// window; sends after the window deliver again. Seeded, so the outcome is
// reproducible.
func TestBurstLossWindow(t *testing.T) {
	net := New(Config{Seed: 5})
	t.Cleanup(net.Close)
	eps, err := BuildLine(net, "n", 2)
	if err != nil {
		t.Fatal(err)
	}
	net.ApplyFaultPlan(FaultPlan{Bursts: []Burst{{Drop: 1, Until: 50 * time.Millisecond}}})
	for i := 0; i < 5; i++ {
		if err := eps[0].Send("n1", i); err != nil {
			t.Fatal(err)
		}
	}
	if got := drain(eps[1]); got != 0 {
		t.Fatalf("burst window delivered %d messages, want 0", got)
	}
	testutil.WaitFor(t, time.Second, func() bool {
		return len(net.ActiveFaults()) == 0
	}, "burst to end")
	if err := eps[0].Send("n1", "after"); err != nil {
		t.Fatal(err)
	}
	if got := drain(eps[1]); got != 1 {
		t.Fatalf("after the burst %d messages, want 1", got)
	}
	if st := net.Stats(); st.FaultDrops != 5 {
		t.Fatalf("stats = %+v, want FaultDrops=5", st)
	}
}

// TestChurnCrashRestart: a crashed node is unreachable as a destination
// and as a relay; SetNodeDown(false) restores it.
func TestChurnCrashRestart(t *testing.T) {
	net := New(Config{})
	t.Cleanup(net.Close)
	eps, err := BuildLine(net, "n", 3)
	if err != nil {
		t.Fatal(err)
	}
	net.SetNodeDown("n1", true)

	// Sends to the crashed node are silently lost; routes through it fail.
	if err := eps[0].Send("n1", "x"); err != nil {
		t.Fatalf("Send to down node should be silently lost, got %v", err)
	}
	if got := drain(eps[1]); got != 0 {
		t.Fatalf("down node received %d messages", got)
	}
	if err := eps[0].Send("n2", "via"); err == nil {
		t.Fatal("route through a crashed relay should fail")
	}
	// Sends from the crashed node vanish.
	if err := eps[1].Send("n0", "ghost"); err != nil {
		t.Fatalf("Send from down node: %v", err)
	}
	if got := drain(eps[0]); got != 0 {
		t.Fatalf("crashed node's message was delivered (%d)", got)
	}

	net.SetNodeDown("n1", false)
	if err := eps[0].Send("n2", "back"); err != nil {
		t.Fatalf("Send after restart: %v", err)
	}
	if got := drain(eps[2]); got != 1 {
		t.Fatalf("after restart delivered %d, want 1", got)
	}
}

// TestScriptedChurnWindow: plan-driven crash windows open and close on
// schedule without manual intervention.
func TestScriptedChurnWindow(t *testing.T) {
	net := New(Config{})
	t.Cleanup(net.Close)
	eps, err := BuildLine(net, "n", 2)
	if err != nil {
		t.Fatal(err)
	}
	net.ApplyFaultPlan(FaultPlan{Churn: []Churn{{Node: "n1", UpAt: 50 * time.Millisecond}}})
	if err := eps[0].Send("n1", "lost"); err != nil {
		t.Fatal(err)
	}
	if got := drain(eps[1]); got != 0 {
		t.Fatalf("delivered %d during crash window", got)
	}
	testutil.WaitFor(t, time.Second, func() bool {
		return len(net.ActiveFaults()) == 0
	}, "churn window to close")
	if err := eps[0].Send("n1", "alive"); err != nil {
		t.Fatal(err)
	}
	if got := drain(eps[1]); got != 1 {
		t.Fatalf("delivered %d after restart, want 1", got)
	}
}

// TestFaultPlanDeterminism: two identically seeded networks replaying the
// same plan and traffic lose exactly the same messages.
func TestFaultPlanDeterminism(t *testing.T) {
	run := func() (delivered int, stats Stats) {
		net := New(Config{Seed: 11})
		defer net.Close()
		eps, err := BuildLine(net, "n", 3)
		if err != nil {
			t.Fatal(err)
		}
		net.ApplyFaultPlan(FaultPlan{Bursts: []Burst{{Drop: 0.4}}})
		for i := 0; i < 200; i++ {
			if err := eps[0].Send("n2", i); err != nil {
				t.Fatal(err)
			}
		}
		return drain(eps[2]), net.Stats()
	}
	d1, s1 := run()
	d2, s2 := run()
	if d1 != d2 || s1 != s2 {
		t.Fatalf("same seed, same plan diverged: %d/%+v vs %d/%+v", d1, s1, d2, s2)
	}
	if d1 == 0 || s1.FaultDrops == 0 {
		t.Fatalf("burst at 0.4 should both deliver and drop: delivered=%d stats=%+v", d1, s1)
	}
}

// TestFaultInjectionRecorded: arming a plan and crashing a node land as
// protocol events in the process flight recorder, so post-hoc trace
// reading can correlate query behaviour with the faults active at the
// time.
func TestFaultInjectionRecorded(t *testing.T) {
	net := New(Config{})
	t.Cleanup(net.Close)
	if _, err := BuildLine(net, "fr", 2); err != nil {
		t.Fatal(err)
	}
	net.ApplyFaultPlan(FaultPlan{Bursts: []Burst{{Drop: 0.5, Until: time.Millisecond}}})
	net.SetNodeDown("fr1", true)
	net.SetNodeDown("fr1", false)

	var planSeen, crashSeen, restartSeen bool
	for _, ev := range telemetry.FlightRecorder().Events() {
		if ev.Kind != telemetry.ProtoFault || ev.Node != "simnet" {
			continue
		}
		switch {
		case ev.Peer == "" && strings.Contains(ev.Detail, "1 bursts"):
			planSeen = true
		case ev.Peer == "fr1" && ev.Detail == "crashed":
			crashSeen = true
		case ev.Peer == "fr1" && ev.Detail == "restarted":
			restartSeen = true
		}
	}
	if !planSeen || !crashSeen || !restartSeen {
		t.Fatalf("fault events missing: plan=%v crash=%v restart=%v", planSeen, crashSeen, restartSeen)
	}
}
