// Package simnet simulates the hybrid wireless network S-Ariadne is
// deployed on: nodes joined by bidirectional links (the ad hoc topology),
// hop-limited broadcast (the paper's vicinity advertisements and election
// messages), multi-hop unicast routing, link churn, message loss and
// per-hop latency.
//
// The paper evaluates on real devices in a MANET; this simulator is the
// substitution documented in DESIGN.md: the discovery and election
// protocols only require hop-limited broadcast and unicast with observable
// hop counts, which the simulator provides deterministically (seeded), so
// protocol behaviour — who is elected, where queries are forwarded, how
// much traffic is generated — is preserved and measurable.
package simnet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Common errors.
var (
	// ErrUnknownNode is returned when addressing an unregistered node.
	ErrUnknownNode = errors.New("simnet: unknown node")
	// ErrNoRoute is returned by Send when no path exists to the target.
	ErrNoRoute = errors.New("simnet: no route to node")
	// ErrClosed is returned after the network has been shut down.
	ErrClosed = errors.New("simnet: network closed")
	// ErrDuplicateNode is returned when adding an existing node ID.
	ErrDuplicateNode = errors.New("simnet: duplicate node")
)

// NodeID identifies a node in the network.
type NodeID string

// Message is a delivered payload with routing metadata.
type Message struct {
	// From is the originating node.
	From NodeID
	// To is the destination (the receiving node for broadcasts).
	To NodeID
	// Hops is the number of links the message traversed.
	Hops int
	// Broadcast marks messages delivered by hop-limited flooding.
	Broadcast bool
	// Payload is the protocol-level content.
	Payload any
}

// Config parameterizes the simulation.
type Config struct {
	// LatencyPerHop delays delivery by Hops × LatencyPerHop. Zero (the
	// default) delivers synchronously, which keeps tests deterministic.
	LatencyPerHop time.Duration
	// DropRate is the probability that a single link traversal loses the
	// message. Zero means a reliable network.
	DropRate float64
	// QueueSize bounds each node's inbox; deliveries to a full inbox are
	// dropped and counted. Defaults to 128.
	QueueSize int
	// Seed makes loss and jitter reproducible. Defaults to 1.
	Seed int64
	// Rand, when non-nil, supplies the randomness source directly and
	// takes precedence over Seed. Injecting one generator lets an
	// experiment share a single seeded stream across its network and
	// workload. The network serializes access under its own mutex, so the
	// caller must not use the generator concurrently afterwards.
	Rand *rand.Rand
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 128
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Stats aggregates traffic counters, the "generated traffic" axis of the
// paper's efficiency argument.
type Stats struct {
	UnicastsSent       uint64
	BroadcastsSent     uint64
	MessagesDelivered  uint64
	MessagesDropped    uint64 // lost to link drops
	MessagesOverflowed uint64 // lost to full inboxes
	LinkTraversals     uint64
	FaultDrops         uint64 // drops attributed to an injected fault (bursts, link overrides, down nodes)
	PartitionBlocks    uint64 // sends refused because an active partition cut every route
}

// Network is the simulated topology. All methods are safe for concurrent
// use.
type Network struct {
	mu         sync.Mutex
	cfg        Config
	rng        *rand.Rand                     // guarded by mu
	nodes      map[NodeID]*Endpoint           // guarded by mu
	links      map[NodeID]map[NodeID]struct{} // guarded by mu
	stats      Stats                          // guarded by mu
	closed     bool                           // guarded by mu
	faults     *faultState                    // guarded by mu
	manualDown map[NodeID]bool                // guarded by mu
	wg         sync.WaitGroup
}

// New returns an empty network.
func New(cfg Config) *Network {
	cfg = cfg.withDefaults()
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}
	return &Network{
		cfg:        cfg,
		rng:        rng,
		nodes:      make(map[NodeID]*Endpoint),
		links:      make(map[NodeID]map[NodeID]struct{}),
		manualDown: make(map[NodeID]bool),
	}
}

// Endpoint is a node's attachment to the network.
type Endpoint struct {
	id    NodeID
	net   *Network
	inbox chan Message
}

// ID returns the endpoint's node ID.
func (e *Endpoint) ID() NodeID { return e.id }

// Inbox exposes the delivery channel for select-based consumers.
func (e *Endpoint) Inbox() <-chan Message { return e.inbox }

// Recv blocks until a message arrives or the context is done.
func (e *Endpoint) Recv(ctx context.Context) (Message, error) {
	select {
	case msg, ok := <-e.inbox:
		if !ok {
			return Message{}, ErrClosed
		}
		return msg, nil
	case <-ctx.Done():
		return Message{}, ctx.Err()
	}
}

// AddNode registers a node and returns its endpoint.
func (n *Network) AddNode(id NodeID) (*Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	if _, ok := n.nodes[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateNode, id)
	}
	e := &Endpoint{id: id, net: n, inbox: make(chan Message, n.cfg.QueueSize)}
	n.nodes[id] = e
	n.links[id] = make(map[NodeID]struct{})
	return e, nil
}

// RemoveNode detaches a node and all its links (a device leaving the
// network). Its inbox is closed.
func (n *Network) RemoveNode(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	e, ok := n.nodes[id]
	if !ok {
		return
	}
	delete(n.nodes, id)
	for peer := range n.links[id] {
		delete(n.links[peer], id)
	}
	delete(n.links, id)
	close(e.inbox)
}

// Connect adds a bidirectional link between two registered nodes.
func (n *Network) Connect(a, b NodeID) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[a]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, a)
	}
	if _, ok := n.nodes[b]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, b)
	}
	if a == b {
		return nil
	}
	n.links[a][b] = struct{}{}
	n.links[b][a] = struct{}{}
	return nil
}

// Disconnect removes the link between two nodes (mobility/churn).
func (n *Network) Disconnect(a, b NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if l, ok := n.links[a]; ok {
		delete(l, b)
	}
	if l, ok := n.links[b]; ok {
		delete(l, a)
	}
}

// Neighbors returns the sorted direct neighbors of a node.
func (n *Network) Neighbors(id NodeID) []NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]NodeID, 0, len(n.links[id]))
	for peer := range n.links[id] {
		out = append(out, peer)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Nodes returns the sorted IDs of all registered nodes.
func (n *Network) Nodes() []NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]NodeID, 0, len(n.nodes))
	for id := range n.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats returns a snapshot of the traffic counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Close shuts the network down: all inboxes are closed after in-flight
// delayed deliveries finish, and further sends fail with ErrClosed.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()
	n.wg.Wait()
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, e := range n.nodes {
		close(e.inbox)
	}
}

// Send routes a unicast message along a shortest usable path to the
// target. The per-link drop probability (base rate, link-fault overrides
// and burst windows) applies to every link on the path; a dropped message
// is silently lost (the network is unreliable by design) but counted in
// Stats. Messages from or to a crashed node are silently lost too — a
// dead radio, not an error the sender can observe. Send fails only when
// the network is closed, the nodes are unknown, or no usable route
// exists (including routes cut by an active partition).
func (e *Endpoint) Send(to NodeID, payload any) error {
	n := e.net
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	if _, ok := n.nodes[e.id]; !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownNode, e.id)
	}
	target, ok := n.nodes[to]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownNode, to)
	}
	now := time.Now()
	if n.nodeDownLocked(e.id, now) || n.nodeDownLocked(to, now) {
		n.stats.MessagesDropped++
		n.stats.FaultDrops++
		dropsTotal.Inc()
		faultDropsTotal.Inc()
		n.mu.Unlock()
		return nil
	}
	path, reachable := n.pathLocked(e.id, to, now, true)
	if !reachable {
		// Distinguish "partitioned" from "physically unreachable" for the
		// fault counters: a route that exists without faults was blocked
		// by the plan.
		if _, physical := n.pathLocked(e.id, to, now, false); physical {
			n.stats.PartitionBlocks++
			partitionBlocksTotal.Inc()
		}
		n.mu.Unlock()
		return fmt.Errorf("%w: %s -> %s", ErrNoRoute, e.id, to)
	}
	hops := len(path) - 1
	n.stats.UnicastsSent++
	n.stats.LinkTraversals += uint64(hops)
	unicastsTotal.Inc()
	traversalsTotal.Add(uint64(hops))
	unicastHops.ObserveInt(int64(hops))
	// Per-link loss and latency along the path.
	var extra time.Duration
	for i := 0; i+1 < len(path); i++ {
		drop, lat, faulted := n.linkConditionsLocked(path[i], path[i+1], now)
		extra += lat
		if drop > 0 && n.rng.Float64() < drop {
			n.stats.MessagesDropped++
			dropsTotal.Inc()
			if faulted {
				n.stats.FaultDrops++
				faultDropsTotal.Inc()
			}
			n.mu.Unlock()
			return nil
		}
	}
	msg := Message{From: e.id, To: to, Hops: hops, Payload: payload}
	n.deliverLocked(target, msg, time.Duration(hops)*n.cfg.LatencyPerHop+extra)
	n.mu.Unlock()
	return nil
}

// Broadcast floods a message up to ttl hops from the sender (the sender
// itself does not receive it). It returns the number of nodes the message
// reached. Crashed nodes neither receive nor relay; partitioned links do
// not propagate the flood.
func (e *Endpoint) Broadcast(ttl int, payload any) (int, error) {
	n := e.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return 0, ErrClosed
	}
	if _, ok := n.nodes[e.id]; !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownNode, e.id)
	}
	now := time.Now()
	if n.nodeDownLocked(e.id, now) {
		// A crashed sender's broadcast reaches nobody; it is not an error
		// the (crashed) caller can act on.
		return 0, nil
	}
	n.stats.BroadcastsSent++
	broadcastsTotal.Inc()
	reached := 0
	visited := map[NodeID]int{e.id: 0}
	frontier := []NodeID{e.id}
	for depth := 1; depth <= ttl && len(frontier) > 0; depth++ {
		var next []NodeID
		for _, u := range frontier {
			for v := range n.links[u] {
				if _, seen := visited[v]; seen {
					continue
				}
				if !n.usableLinkLocked(u, v, now) {
					continue
				}
				n.stats.LinkTraversals++
				traversalsTotal.Inc()
				drop, lat, faulted := n.linkConditionsLocked(u, v, now)
				if drop > 0 && n.rng.Float64() < drop {
					n.stats.MessagesDropped++
					dropsTotal.Inc()
					if faulted {
						n.stats.FaultDrops++
						faultDropsTotal.Inc()
					}
					continue
				}
				visited[v] = depth
				next = append(next, v)
				msg := Message{From: e.id, To: v, Hops: depth, Broadcast: true, Payload: payload}
				n.deliverLocked(n.nodes[v], msg, time.Duration(depth)*n.cfg.LatencyPerHop+lat)
				reached++
			}
		}
		frontier = next
	}
	return reached, nil
}

// deliverLocked hands a message to an inbox after the given delay,
// honoring queue bounds. A target that crashed or left the network by
// delivery time loses the message. Callers hold n.mu.
func (n *Network) deliverLocked(target *Endpoint, msg Message, delay time.Duration) {
	if delay > 0 {
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			time.Sleep(delay)
			n.mu.Lock()
			defer n.mu.Unlock()
			if _, ok := n.nodes[target.id]; !ok {
				n.stats.MessagesDropped++
				dropsTotal.Inc()
				return
			}
			if n.nodeDownLocked(target.id, time.Now()) {
				n.stats.MessagesDropped++
				n.stats.FaultDrops++
				dropsTotal.Inc()
				faultDropsTotal.Inc()
				return
			}
			select {
			case target.inbox <- msg:
				n.stats.MessagesDelivered++
				deliveredTotal.Inc()
			default:
				n.stats.MessagesOverflowed++
				overflowsTotal.Inc()
			}
		}()
		return
	}
	select {
	case target.inbox <- msg:
		n.stats.MessagesDelivered++
		deliveredTotal.Inc()
	default:
		n.stats.MessagesOverflowed++
		overflowsTotal.Inc()
	}
}

// HopDistance returns the current hop count between two nodes along
// usable links (active faults included).
func (n *Network) HopDistance(from, to NodeID) (int, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[from]; !ok {
		return 0, false
	}
	if _, ok := n.nodes[to]; !ok {
		return 0, false
	}
	path, ok := n.pathLocked(from, to, time.Now(), true)
	if !ok {
		return 0, false
	}
	return len(path) - 1, true
}

// NodesWithin returns all nodes at most ttl hops from the origin along
// usable links, excluding the origin, sorted by ID.
func (n *Network) NodesWithin(origin NodeID, ttl int) []NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	now := time.Now()
	var out []NodeID
	visited := map[NodeID]bool{origin: true}
	frontier := []NodeID{origin}
	for depth := 1; depth <= ttl && len(frontier) > 0; depth++ {
		var next []NodeID
		for _, u := range frontier {
			for v := range n.links[u] {
				if visited[v] || !n.usableLinkLocked(u, v, now) {
					continue
				}
				visited[v] = true
				next = append(next, v)
				out = append(out, v)
			}
		}
		frontier = next
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
