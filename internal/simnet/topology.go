package simnet

import (
	"fmt"
	"math"
	"math/rand"
)

// Topology builders: convenience constructors for common test and
// evaluation layouts. Each registers nodes named prefix0..prefixN-1 and
// returns the endpoints in index order.

// BuildLine creates a chain: node i linked to node i+1.
func BuildLine(n *Network, prefix string, count int) ([]*Endpoint, error) {
	eps, err := addNodes(n, prefix, count)
	if err != nil {
		return nil, err
	}
	for i := 0; i+1 < count; i++ {
		if err := n.Connect(eps[i].ID(), eps[i+1].ID()); err != nil {
			return nil, err
		}
	}
	return eps, nil
}

// BuildRing creates a cycle: a line with the ends joined.
func BuildRing(n *Network, prefix string, count int) ([]*Endpoint, error) {
	eps, err := BuildLine(n, prefix, count)
	if err != nil {
		return nil, err
	}
	if count > 2 {
		if err := n.Connect(eps[count-1].ID(), eps[0].ID()); err != nil {
			return nil, err
		}
	}
	return eps, nil
}

// BuildStar links node 0 to every other node.
func BuildStar(n *Network, prefix string, count int) ([]*Endpoint, error) {
	eps, err := addNodes(n, prefix, count)
	if err != nil {
		return nil, err
	}
	for i := 1; i < count; i++ {
		if err := n.Connect(eps[0].ID(), eps[i].ID()); err != nil {
			return nil, err
		}
	}
	return eps, nil
}

// BuildGrid lays nodes on a rows×cols lattice with 4-neighbor links.
func BuildGrid(n *Network, prefix string, rows, cols int) ([]*Endpoint, error) {
	eps, err := addNodes(n, prefix, rows*cols)
	if err != nil {
		return nil, err
	}
	at := func(r, c int) *Endpoint { return eps[r*cols+c] }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				if err := n.Connect(at(r, c).ID(), at(r, c+1).ID()); err != nil {
					return nil, err
				}
			}
			if r+1 < rows {
				if err := n.Connect(at(r, c).ID(), at(r+1, c).ID()); err != nil {
					return nil, err
				}
			}
		}
	}
	return eps, nil
}

// BuildGeometric places nodes uniformly at random on the unit square and
// links pairs within the given radio radius (a unit-disk graph, the
// standard MANET model). The layout is deterministic for a given seed.
func BuildGeometric(n *Network, prefix string, count int, radius float64, seed int64) ([]*Endpoint, error) {
	eps, err := addNodes(n, prefix, count)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	type pt struct{ x, y float64 }
	pts := make([]pt, count)
	for i := range pts {
		pts[i] = pt{x: rng.Float64(), y: rng.Float64()}
	}
	for i := 0; i < count; i++ {
		for j := i + 1; j < count; j++ {
			dx, dy := pts[i].x-pts[j].x, pts[i].y-pts[j].y
			if math.Hypot(dx, dy) <= radius {
				if err := n.Connect(eps[i].ID(), eps[j].ID()); err != nil {
					return nil, err
				}
			}
		}
	}
	return eps, nil
}

func addNodes(n *Network, prefix string, count int) ([]*Endpoint, error) {
	eps := make([]*Endpoint, 0, count)
	for i := 0; i < count; i++ {
		e, err := n.AddNode(NodeID(fmt.Sprintf("%s%d", prefix, i)))
		if err != nil {
			return nil, err
		}
		eps = append(eps, e)
	}
	return eps, nil
}
