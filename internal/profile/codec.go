package profile

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"time"

	"sariadne/internal/ontology"
	"sariadne/internal/process"
)

// The Amigo-S XML vocabulary. A service document looks like:
//
//	<service name="MediaWorkstation" provider="livingroom-pc">
//	  <codeVersion ontology="http://amigo.example/ont/media" version="1"/>
//	  <provided name="SendDigitalStream"
//	            category="http://amigo.example/ont/servers#DigitalServer">
//	    <input>http://amigo.example/ont/media#DigitalResource</input>
//	    <output>http://amigo.example/ont/media#Stream</output>
//	    <property>http://amigo.example/ont/qos#HighBandwidth</property>
//	  </provided>
//	  <required name="GetVideoStream"
//	            category="http://amigo.example/ont/servers#VideoServer">
//	    <input>http://amigo.example/ont/media#VideoResource</input>
//	    <output>http://amigo.example/ont/media#Stream</output>
//	  </required>
//	</service>

type xmlService struct {
	XMLName      xml.Name         `xml:"service"`
	Name         string           `xml:"name,attr"`
	Provider     string           `xml:"provider,attr,omitempty"`
	CodeVersions []xmlCodeVersion `xml:"codeVersion"`
	Provided     []xmlCapability  `xml:"provided"`
	Required     []xmlCapability  `xml:"required"`
	Process      *xmlProcess      `xml:"process"`
}

// xmlProcess wraps the process tree: the single child element of
// <process> is the root construct.
type xmlProcess struct {
	Root process.XMLNode `xml:",any"`
}

type xmlCodeVersion struct {
	Ontology string `xml:"ontology,attr"`
	Version  string `xml:"version,attr"`
}

type xmlCapability struct {
	Name        string          `xml:"name,attr"`
	Category    string          `xml:"category,attr"`
	Inputs      []string        `xml:"input"`
	Outputs     []string        `xml:"output"`
	Properties  []string        `xml:"property"`
	QoSProvided []xmlQoSValue   `xml:"qos"`
	QoSRequired []xmlQoSRequire `xml:"qosRequire"`
}

type xmlQoSValue struct {
	Name  string  `xml:"name,attr"`
	Value float64 `xml:"value,attr"`
}

// xmlQoSRequire carries bounds as string attributes so one-sided
// constraints can omit a side entirely.
type xmlQoSRequire struct {
	Name string `xml:"name,attr"`
	Min  string `xml:"min,attr,omitempty"`
	Max  string `xml:"max,attr,omitempty"`
}

// Decode parses and validates an Amigo-S service document.
func Decode(r io.Reader) (*Service, error) {
	start := time.Now()
	defer parseSeconds.ObserveSince(start)
	var doc xmlService
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("profile: decode: %w", err)
	}
	s := &Service{Name: doc.Name, Provider: doc.Provider}
	if len(doc.CodeVersions) > 0 {
		s.CodeVersions = make(map[string]string, len(doc.CodeVersions))
		for _, cv := range doc.CodeVersions {
			s.CodeVersions[cv.Ontology] = cv.Version
		}
	}
	for _, xc := range doc.Provided {
		c, err := capabilityFromXML(xc)
		if err != nil {
			return nil, err
		}
		s.Provided = append(s.Provided, c)
	}
	for _, xc := range doc.Required {
		c, err := capabilityFromXML(xc)
		if err != nil {
			return nil, err
		}
		s.Required = append(s.Required, c)
	}
	if doc.Process != nil {
		s.Process = doc.Process.Root.Node
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Unmarshal parses a service document from a byte slice.
func Unmarshal(data []byte) (*Service, error) {
	return Decode(bytes.NewReader(data))
}

func capabilityFromXML(xc xmlCapability) (*Capability, error) {
	c := &Capability{Name: xc.Name}
	var err error
	if xc.Category != "" {
		if c.Category, err = ontology.ParseRef(xc.Category); err != nil {
			return nil, fmt.Errorf("%w: capability %q category: %v", ErrBadRef, xc.Name, err)
		}
	}
	parse := func(vals []string, what string) ([]ontology.Ref, error) {
		refs := make([]ontology.Ref, 0, len(vals))
		for _, v := range vals {
			ref, err := ontology.ParseRef(v)
			if err != nil {
				return nil, fmt.Errorf("%w: capability %q %s: %v", ErrBadRef, xc.Name, what, err)
			}
			refs = append(refs, ref)
		}
		return refs, nil
	}
	if c.Inputs, err = parse(xc.Inputs, "input"); err != nil {
		return nil, err
	}
	if c.Outputs, err = parse(xc.Outputs, "output"); err != nil {
		return nil, err
	}
	if c.Properties, err = parse(xc.Properties, "property"); err != nil {
		return nil, err
	}
	for _, q := range xc.QoSProvided {
		c.QoSProvided = append(c.QoSProvided, QoSValue{Name: q.Name, Value: q.Value})
	}
	for _, q := range xc.QoSRequired {
		constraint := QoSConstraint{Name: q.Name, Min: Unbounded(), Max: Unbounded()}
		if q.Min != "" {
			if constraint.Min, err = strconv.ParseFloat(q.Min, 64); err != nil {
				return nil, fmt.Errorf("%w: qosRequire %q min: %v", ErrBadQoS, q.Name, err)
			}
		}
		if q.Max != "" {
			if constraint.Max, err = strconv.ParseFloat(q.Max, 64); err != nil {
				return nil, fmt.Errorf("%w: qosRequire %q max: %v", ErrBadQoS, q.Name, err)
			}
		}
		c.QoSRequired = append(c.QoSRequired, constraint)
	}
	return c, nil
}

func capabilityToXML(c *Capability) xmlCapability {
	xc := xmlCapability{Name: c.Name, Category: c.Category.String()}
	for _, r := range c.Inputs {
		xc.Inputs = append(xc.Inputs, r.String())
	}
	for _, r := range c.Outputs {
		xc.Outputs = append(xc.Outputs, r.String())
	}
	for _, r := range c.Properties {
		xc.Properties = append(xc.Properties, r.String())
	}
	for _, q := range c.QoSProvided {
		xc.QoSProvided = append(xc.QoSProvided, xmlQoSValue{Name: q.Name, Value: q.Value})
	}
	for _, q := range c.QoSRequired {
		xq := xmlQoSRequire{Name: q.Name}
		if !math.IsNaN(q.Min) {
			xq.Min = strconv.FormatFloat(q.Min, 'g', -1, 64)
		}
		if !math.IsNaN(q.Max) {
			xq.Max = strconv.FormatFloat(q.Max, 'g', -1, 64)
		}
		xc.QoSRequired = append(xc.QoSRequired, xq)
	}
	return xc
}

// Encode writes the service as an Amigo-S XML document.
func Encode(w io.Writer, s *Service) error {
	if err := s.Validate(); err != nil {
		return err
	}
	doc := xmlService{Name: s.Name, Provider: s.Provider}
	for _, uri := range sortedKeys(s.CodeVersions) {
		doc.CodeVersions = append(doc.CodeVersions, xmlCodeVersion{Ontology: uri, Version: s.CodeVersions[uri]})
	}
	for _, c := range s.Provided {
		doc.Provided = append(doc.Provided, capabilityToXML(c))
	}
	for _, c := range s.Required {
		doc.Required = append(doc.Required, capabilityToXML(c))
	}
	if s.Process != nil {
		doc.Process = &xmlProcess{Root: process.XMLNode{Node: s.Process}}
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("profile: encode: %w", err)
	}
	return enc.Close()
}

// Marshal renders the service as an Amigo-S XML document.
func Marshal(s *Service) ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func sortedKeys(m map[string]string) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
