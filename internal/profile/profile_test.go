package profile

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"sariadne/internal/ontology"
	"sariadne/internal/process"
)

func TestFixtureServicesValid(t *testing.T) {
	for _, s := range []*Service{WorkstationService(), PDAService()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	for _, o := range []*ontology.Ontology{MediaOntology(), ServersOntology()} {
		if err := o.Validate(); err != nil {
			t.Errorf("ontology %s: %v", o.URI, err)
		}
	}
}

func TestCapabilityValidate(t *testing.T) {
	valid := Capability{
		Name:     "C",
		Category: ontology.Ref{Ontology: "u", Name: "Cat"},
		Inputs:   []ontology.Ref{{Ontology: "u", Name: "In"}},
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid capability rejected: %v", err)
	}

	tests := []struct {
		name    string
		mutate  func(*Capability)
		wantErr error
	}{
		{"no name", func(c *Capability) { c.Name = "" }, ErrNoName},
		{"no category", func(c *Capability) { c.Category = ontology.Ref{} }, ErrNoCategory},
		{"bad input ref", func(c *Capability) { c.Inputs = []ontology.Ref{{Name: "x"}} }, ErrBadRef},
		{"bad output ref", func(c *Capability) { c.Outputs = []ontology.Ref{{Ontology: "u"}} }, ErrBadRef},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := *valid.Clone()
			tt.mutate(&c)
			if err := c.Validate(); !errors.Is(err, tt.wantErr) {
				t.Fatalf("got %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestServiceValidate(t *testing.T) {
	s := WorkstationService()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	s.Name = ""
	if err := s.Validate(); !errors.Is(err, ErrNoName) {
		t.Fatalf("got %v, want ErrNoName", err)
	}
	s = WorkstationService()
	s.Provided = append(s.Provided, s.Provided[0].Clone())
	if err := s.Validate(); !errors.Is(err, ErrDuplicateCapability) {
		t.Fatalf("got %v, want ErrDuplicateCapability", err)
	}
}

func TestPropertySetIncludesCategory(t *testing.T) {
	c := WorkstationService().Provided[0]
	props := c.PropertySet()
	if len(props) != 1 || props[0] != c.Category {
		t.Fatalf("PropertySet = %v", props)
	}
	c.Properties = append(c.Properties, ontology.Ref{Ontology: "u", Name: "Fast"})
	if got := c.PropertySet(); len(got) != 2 {
		t.Fatalf("PropertySet = %v, want category + 1", got)
	}
}

func TestOntologies(t *testing.T) {
	c := WorkstationService().Provided[0]
	uris := c.Ontologies()
	if len(uris) != 2 || uris[0] != MediaOntologyURI || uris[1] != ServersOntologyURI {
		t.Fatalf("Ontologies = %v", uris)
	}
	key := c.OntologyKey()
	if !strings.Contains(key, MediaOntologyURI) || !strings.Contains(key, ServersOntologyURI) {
		t.Fatalf("OntologyKey = %q", key)
	}

	s := WorkstationService()
	if got := s.Ontologies(); len(got) != 2 {
		t.Fatalf("Service.Ontologies = %v", got)
	}
}

func TestCapabilityLookup(t *testing.T) {
	s := WorkstationService()
	if c := s.Capability("SendDigitalStream"); c == nil {
		t.Fatal("SendDigitalStream not found")
	}
	if c := s.Capability("NoSuch"); c != nil {
		t.Fatal("found a missing capability")
	}
}

func TestCapabilityEqual(t *testing.T) {
	a := WorkstationService().Provided[0]
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	// Order-insensitive.
	b.Inputs = append(b.Inputs, ontology.Ref{Ontology: "u", Name: "X"})
	b.Inputs[0], b.Inputs[1] = b.Inputs[1], b.Inputs[0]
	a2 := a.Clone()
	a2.Inputs = append(a2.Inputs, ontology.Ref{Ontology: "u", Name: "X"})
	if !a2.Equal(b) {
		t.Fatal("order-insensitive equality failed")
	}
	if a.Equal(b) {
		t.Fatal("unequal capabilities reported equal")
	}
	c := a.Clone()
	c.Name = "Other"
	if a.Equal(c) {
		t.Fatal("differing names reported equal")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := WorkstationService()
	s.CodeVersions = map[string]string{MediaOntologyURI: "1"}
	cp := s.Clone()
	cp.Provided[0].Inputs[0] = ontology.Ref{Ontology: "u", Name: "Mutated"}
	cp.CodeVersions[MediaOntologyURI] = "2"
	if s.Provided[0].Inputs[0].Name == "Mutated" {
		t.Fatal("Clone shares input slice")
	}
	if s.CodeVersions[MediaOntologyURI] != "1" {
		t.Fatal("Clone shares CodeVersions map")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	s := WorkstationService()
	s.CodeVersions = map[string]string{
		MediaOntologyURI:   "1",
		ServersOntologyURI: "1",
	}
	s.Required = append(s.Required, PDAService().Required[0].Clone())

	data, err := Marshal(s)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.Name != s.Name || back.Provider != s.Provider {
		t.Fatalf("identity mismatch: %+v", back)
	}
	if len(back.Provided) != len(s.Provided) || len(back.Required) != len(s.Required) {
		t.Fatalf("capability counts changed: %d/%d", len(back.Provided), len(back.Required))
	}
	for i := range s.Provided {
		if !back.Provided[i].Equal(s.Provided[i]) {
			t.Errorf("provided[%d] mismatch: %v vs %v", i, back.Provided[i], s.Provided[i])
		}
	}
	if back.CodeVersions[MediaOntologyURI] != "1" {
		t.Errorf("CodeVersions lost: %v", back.CodeVersions)
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name string
		doc  string
	}{
		{"garbage", "nope"},
		{"missing name", `<service provider="p"><provided name="c" category="u#C"/></service>`},
		{"bad category ref", `<service name="s"><provided name="c" category="nocat"/></service>`},
		{"bad input ref", `<service name="s"><provided name="c" category="u#C"><input>bad</input></provided></service>`},
		{"missing category", `<service name="s"><provided name="c"/></service>`},
		{"duplicate capability", `<service name="s"><provided name="c" category="u#C"/><provided name="c" category="u#C"/></service>`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(strings.NewReader(tt.doc)); err == nil {
				t.Fatal("Decode accepted invalid document")
			}
		})
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, &Service{}); err == nil {
		t.Fatal("Encode accepted invalid service")
	}
}

func TestStringSummaries(t *testing.T) {
	s := WorkstationService()
	if got := s.String(); !strings.Contains(got, "2 provided") {
		t.Errorf("Service.String = %q", got)
	}
	if got := s.Provided[0].String(); !strings.Contains(got, "SendDigitalStream") {
		t.Errorf("Capability.String = %q", got)
	}
}

func TestServiceProcessModel(t *testing.T) {
	svc := PDAService()
	svc.Required = append(svc.Required, &Capability{
		Name:     "GetSubtitles",
		Category: serversRef("DigitalServer"),
		Outputs:  []ontology.Ref{mediaRef("Stream")},
	})
	svc.Process = process.Sequence(
		process.Invoke("GetVideoStream"),
		process.Choice(
			process.Invoke("GetSubtitles"),
			process.Invoke("GetVideoStream"),
		),
	)
	if err := svc.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	// XML round trip preserves the conversation.
	data, err := Marshal(svc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<process>") {
		t.Fatalf("document missing process:\n%s", data)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Process == nil || back.Process.String() != svc.Process.String() {
		t.Fatalf("process changed: %v vs %v", back.Process, svc.Process)
	}

	// Clone is deep.
	cp := svc.Clone()
	cp.Process.Children[0].Capability = "Mutated"
	if svc.Process.Children[0].Capability == "Mutated" {
		t.Fatal("Clone shares process tree")
	}

	// A process referencing an undeclared capability fails validation.
	svc.Process = process.Invoke("NoSuchRequirement")
	if err := svc.Validate(); err == nil {
		t.Fatal("Validate accepted dangling process reference")
	}
}
