package profile

import "sariadne/internal/ontology"

// This file reconstructs the running example of the paper's Figure 1: a PDA
// requiring a GetVideoStream capability and a workstation providing
// SendDigitalStream (which includes ProvideGame). It is shared by tests,
// examples and documentation.

// Fixture ontology URIs.
const (
	MediaOntologyURI   = "http://amigo.example/ont/media"
	ServersOntologyURI = "http://amigo.example/ont/servers"
)

// MediaOntology builds the digital-resource ontology of Figure 1 (left).
func MediaOntology() *ontology.Ontology {
	o := ontology.New(MediaOntologyURI, "1")
	for _, c := range []ontology.Class{
		{Name: "Resource", Label: "Any resource"},
		{Name: "DigitalResource", SubClassOf: []string{"Resource"}},
		{Name: "VideoResource", SubClassOf: []string{"DigitalResource"}},
		{Name: "SoundResource", SubClassOf: []string{"DigitalResource"}},
		{Name: "GameResource", SubClassOf: []string{"DigitalResource"}},
		{Name: "Movie", SubClassOf: []string{"VideoResource"}},
		{Name: "Documentary", SubClassOf: []string{"VideoResource"}},
		{Name: "Stream"},
		{Name: "VideoStream", SubClassOf: []string{"Stream"}},
		{Name: "AudioStream", SubClassOf: []string{"Stream"}},
	} {
		o.MustAddClass(c)
	}
	if err := o.AddProperty(ontology.Property{Name: "hasTitle", Domain: "DigitalResource"}); err != nil {
		panic(err)
	}
	return o
}

// ServersOntology builds the server-category ontology of Figure 1 (right).
// The chain DigitalServer → StreamingServer → VideoServer gives the
// category pair of the paper's worked example a level distance of 2, which
// together with the input distance of 1 reproduces the paper's
// SemanticDistance(SendDigitalStream, GetVideoStream) = 3.
func ServersOntology() *ontology.Ontology {
	o := ontology.New(ServersOntologyURI, "1")
	for _, c := range []ontology.Class{
		{Name: "Server"},
		{Name: "DigitalServer", SubClassOf: []string{"Server"}},
		{Name: "StreamingServer", SubClassOf: []string{"DigitalServer"}},
		{Name: "VideoServer", SubClassOf: []string{"StreamingServer"}},
		{Name: "SoundServer", SubClassOf: []string{"StreamingServer"}},
		{Name: "GameServer", SubClassOf: []string{"DigitalServer"}},
	} {
		o.MustAddClass(c)
	}
	return o
}

// mediaRef and serversRef abbreviate fixture concept references.
func mediaRef(name string) ontology.Ref {
	return ontology.Ref{Ontology: MediaOntologyURI, Name: name}
}

func serversRef(name string) ontology.Ref {
	return ontology.Ref{Ontology: ServersOntologyURI, Name: name}
}

// WorkstationService builds Figure 1's workstation: it provides
// SendDigitalStream (category DigitalServer, input DigitalResource, output
// Stream) and ProvideGame (category GameServer, input GameResource, output
// Stream).
func WorkstationService() *Service {
	return &Service{
		Name:     "MediaWorkstation",
		Provider: "livingroom-pc",
		Provided: []*Capability{
			{
				Name:     "SendDigitalStream",
				Category: serversRef("DigitalServer"),
				Inputs:   []ontology.Ref{mediaRef("DigitalResource")},
				Outputs:  []ontology.Ref{mediaRef("Stream")},
			},
			{
				Name:     "ProvideGame",
				Category: serversRef("GameServer"),
				Inputs:   []ontology.Ref{mediaRef("GameResource")},
				Outputs:  []ontology.Ref{mediaRef("Stream")},
			},
		},
	}
}

// PDAService builds Figure 1's PDA: it requires GetVideoStream (category
// VideoServer, input VideoResource title, output Stream).
func PDAService() *Service {
	return &Service{
		Name:     "PDAVideoPlayer",
		Provider: "hallway-pda",
		Required: []*Capability{
			{
				Name:     "GetVideoStream",
				Category: serversRef("VideoServer"),
				Inputs:   []ontology.Ref{mediaRef("VideoResource")},
				Outputs:  []ontology.Ref{mediaRef("Stream")},
			},
		},
	}
}
