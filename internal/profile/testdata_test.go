package profile

import (
	"os"
	"path/filepath"
	"testing"

	"sariadne/internal/ontology"
)

// loadTestdata opens a file from the testdata corpus.
func loadTestdata(t *testing.T, name string) *os.File {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestTestdataOntologies(t *testing.T) {
	media, err := ontology.Decode(loadTestdata(t, "media-ontology.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if media.URI != "http://testdata.example/ont/media" || media.Version != "3" {
		t.Fatalf("identity = %q v%q", media.URI, media.Version)
	}
	if media.NumClasses() != 10 || media.NumProperties() != 3 {
		t.Fatalf("shape = %d classes, %d properties", media.NumClasses(), media.NumProperties())
	}
	cl, err := ontology.Classify(media)
	if err != nil {
		t.Fatal(err)
	}
	if !cl.Subsumes("Resource", "Film") { // via Movie ≡ Film
		t.Error("Resource must subsume Film through the equivalence")
	}
	if d, ok := cl.Distance("DigitalResource", "Movie"); !ok || d != 2 {
		t.Errorf("Distance(DigitalResource, Movie) = %d, %v", d, ok)
	}

	servers, err := ontology.Decode(loadTestdata(t, "servers-ontology.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if servers.NumClasses() != 5 {
		t.Fatalf("servers shape = %d classes", servers.NumClasses())
	}
}

func TestTestdataMediaCenter(t *testing.T) {
	svc, err := Decode(loadTestdata(t, "media-center.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if svc.Name != "HomeMediaCenter" || svc.Provider != "livingroom-rack" {
		t.Fatalf("identity = %q/%q", svc.Name, svc.Provider)
	}
	if len(svc.Provided) != 2 || len(svc.Required) != 1 {
		t.Fatalf("capabilities = %d provided, %d required", len(svc.Provided), len(svc.Required))
	}
	if svc.CodeVersions["http://testdata.example/ont/media"] != "3" {
		t.Fatalf("code versions = %v", svc.CodeVersions)
	}

	stream := svc.Capability("StreamAnyDigital")
	if stream == nil {
		t.Fatal("StreamAnyDigital missing")
	}
	if len(stream.QoSProvided) != 2 || stream.QoSProvided[0].Name != "latencyMs" || stream.QoSProvided[0].Value != 15 {
		t.Fatalf("QoS provided = %v", stream.QoSProvided)
	}

	fetch := svc.Required[0]
	if len(fetch.QoSRequired) != 2 {
		t.Fatalf("QoS required = %v", fetch.QoSRequired)
	}
	if !fetch.QoSRequired[0].Accepts(40) || fetch.QoSRequired[0].Accepts(41) {
		t.Fatalf("latency constraint wrong: %+v", fetch.QoSRequired[0])
	}

	// Round trip preserves everything.
	data, err := Marshal(svc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := range svc.Provided {
		if !back.Provided[i].Equal(svc.Provided[i]) {
			t.Errorf("provided[%d] changed in round trip", i)
		}
	}
	if !back.Required[0].Equal(svc.Required[0]) {
		t.Error("required[0] changed in round trip")
	}
}

func TestTestdataTabletRequest(t *testing.T) {
	req, err := Decode(loadTestdata(t, "tablet-request.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Required) != 1 || req.Required[0].Name != "WatchFilm" {
		t.Fatalf("request = %+v", req)
	}
	if len(req.Required[0].QoSRequired) != 1 {
		t.Fatalf("QoS constraints = %v", req.Required[0].QoSRequired)
	}
	// The full cross-package pipeline over this corpus is exercised by
	// TestCorpusEndToEnd in the registry package.
}
