// Package profile implements Amigo-S service descriptions (Section 2.2 of
// the paper): OWL-S-style profiles extended so that one service advertises
// several named capabilities, each a semantic concept with its own inputs,
// outputs and properties, while sharing service-level attributes.
//
// A capability's inputs, outputs, category and extra properties are
// concept references into ontologies (ontology.Ref). Descriptions travel
// as XML documents (see codec.go); parsing them is the dominant cost the
// paper measures in its publication experiments (Figures 7 and 8).
package profile

import (
	"errors"
	"fmt"
	"sort"

	"sariadne/internal/ontology"
	"sariadne/internal/process"
)

// Validation errors.
var (
	// ErrNoName is returned when a service or capability lacks a name.
	ErrNoName = errors.New("profile: missing name")
	// ErrNoCategory is returned when a capability lacks a service category.
	ErrNoCategory = errors.New("profile: capability missing category")
	// ErrBadRef is returned when a concept reference is malformed.
	ErrBadRef = errors.New("profile: malformed concept reference")
	// ErrDuplicateCapability is returned when two capabilities of the same
	// service share a name.
	ErrDuplicateCapability = errors.New("profile: duplicate capability name")
)

// Capability is a specific functionality offered (or sought) by a service:
// the unit of advertisement, matching and discovery throughout the system.
type Capability struct {
	// Name identifies the capability within its service (e.g.
	// "GetVideoStream").
	Name string
	// Category is the service-category concept (e.g. servers#VideoServer).
	// It participates in matching as a required/provided property.
	Category ontology.Ref
	// Inputs are the concepts the capability expects (provided capability)
	// or offers (required capability).
	Inputs []ontology.Ref
	// Outputs are the concepts the capability offers (provided capability)
	// or expects (required capability).
	Outputs []ontology.Ref
	// Properties are additional semantic properties beyond the category
	// (QoS classes, context classes, ...).
	Properties []ontology.Ref
	// QoSProvided declares measured non-functional guarantees of a
	// provided capability (Amigo-S QoS-awareness).
	QoSProvided []QoSValue
	// QoSRequired declares acceptable ranges a requested capability
	// demands; see QoSSatisfies.
	QoSRequired []QoSConstraint
}

// Validate checks structural well-formedness.
func (c *Capability) Validate() error {
	if c.Name == "" {
		return ErrNoName
	}
	if c.Category.IsZero() {
		return fmt.Errorf("%w: capability %q", ErrNoCategory, c.Name)
	}
	for _, r := range c.refs() {
		if r.Ontology == "" || r.Name == "" {
			return fmt.Errorf("%w: %q in capability %q", ErrBadRef, r, c.Name)
		}
	}
	return c.validateQoS()
}

func (c *Capability) refs() []ontology.Ref {
	refs := make([]ontology.Ref, 0, 1+len(c.Inputs)+len(c.Outputs)+len(c.Properties))
	refs = append(refs, c.Category)
	refs = append(refs, c.Inputs...)
	refs = append(refs, c.Outputs...)
	refs = append(refs, c.Properties...)
	return refs
}

// PropertySet returns the capability's full property set as used by the
// matching relation: the category plus any extra properties.
func (c *Capability) PropertySet() []ontology.Ref {
	out := make([]ontology.Ref, 0, 1+len(c.Properties))
	out = append(out, c.Category)
	out = append(out, c.Properties...)
	return out
}

// Ontologies returns the sorted set of ontology URIs referenced by the
// capability. Directories index capability graphs by this set (Section
// 3.3) and hash it into Bloom filters (Section 4).
func (c *Capability) Ontologies() []string {
	seen := make(map[string]bool)
	for _, r := range c.refs() {
		if r.Ontology != "" {
			seen[r.Ontology] = true
		}
	}
	out := make([]string, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// RequiredOntologies returns the sorted set of ontology URIs a provider
// matching this (requested) capability must itself use: the ontologies of
// the expected outputs and of the required properties (category included).
// Offered-input ontologies are excluded — a provider need not consume
// every input the requester can supply — which makes this the sound
// graph-index filter for directory queries.
func (c *Capability) RequiredOntologies() []string {
	seen := make(map[string]bool)
	for _, r := range c.Outputs {
		if r.Ontology != "" {
			seen[r.Ontology] = true
		}
	}
	for _, r := range c.PropertySet() {
		if r.Ontology != "" {
			seen[r.Ontology] = true
		}
	}
	out := make([]string, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// OntologyKey returns the canonical string form of Ontologies, suitable as
// a map key or Bloom-filter hash input.
func (c *Capability) OntologyKey() string {
	uris := c.Ontologies()
	key := ""
	for i, u := range uris {
		if i > 0 {
			key += "\x00"
		}
		key += u
	}
	return key
}

// Clone returns a deep copy of the capability.
func (c *Capability) Clone() *Capability {
	cc := &Capability{Name: c.Name, Category: c.Category}
	cc.Inputs = append([]ontology.Ref(nil), c.Inputs...)
	cc.Outputs = append([]ontology.Ref(nil), c.Outputs...)
	cc.Properties = append([]ontology.Ref(nil), c.Properties...)
	cloneQoS(cc, c)
	return cc
}

// Equal reports whether two capabilities are structurally identical
// (order-insensitive on inputs, outputs and properties).
func (c *Capability) Equal(other *Capability) bool {
	if c.Name != other.Name || c.Category != other.Category {
		return false
	}
	return refSetEqual(c.Inputs, other.Inputs) &&
		refSetEqual(c.Outputs, other.Outputs) &&
		refSetEqual(c.Properties, other.Properties) &&
		qosEqual(c, other)
}

func refSetEqual(a, b []ontology.Ref) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]ontology.Ref(nil), a...)
	bs := append([]ontology.Ref(nil), b...)
	ontology.SortRefs(as)
	ontology.SortRefs(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// String renders a compact one-line summary.
func (c *Capability) String() string {
	return fmt.Sprintf("%s[cat=%s in=%d out=%d]", c.Name, c.Category.Name, len(c.Inputs), len(c.Outputs))
}

// Service is an Amigo-S service description: shared attributes plus the
// capabilities the service provides and the capabilities it requires from
// peers (enabling peer-to-peer composition, Section 2.2).
type Service struct {
	// Name identifies the service.
	Name string
	// Provider describes the providing party or device.
	Provider string
	// CodeVersions records, per ontology URI, the code-table version the
	// description's embedded codes were generated against (Section 3.2's
	// versioning rule). Empty when the description carries no codes.
	CodeVersions map[string]string
	// Provided lists capabilities the service offers.
	Provided []*Capability
	// Required lists capabilities the service needs from the network.
	Required []*Capability
	// Process is the optional conversation model (OWL-S process model,
	// Section 2.1): a tree of sequence/parallel/choice constructs over
	// invocations of the Required capabilities.
	Process *process.Node
}

// Validate checks the service and all its capabilities.
func (s *Service) Validate() error {
	if s.Name == "" {
		return ErrNoName
	}
	seen := make(map[string]bool)
	for _, c := range append(append([]*Capability(nil), s.Provided...), s.Required...) {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("service %q: %w", s.Name, err)
		}
		if seen[c.Name] {
			return fmt.Errorf("%w: %q in service %q", ErrDuplicateCapability, c.Name, s.Name)
		}
		seen[c.Name] = true
	}
	if s.Process != nil {
		known := make(map[string]bool, len(s.Required))
		for _, c := range s.Required {
			known[c.Name] = true
		}
		if err := s.Process.Validate(known); err != nil {
			return fmt.Errorf("service %q: %w", s.Name, err)
		}
	}
	return nil
}

// Capability returns the provided capability with the given name, or nil.
func (s *Service) Capability(name string) *Capability {
	for _, c := range s.Provided {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Ontologies returns the sorted union of ontology URIs across all provided
// and required capabilities.
func (s *Service) Ontologies() []string {
	seen := make(map[string]bool)
	for _, c := range s.Provided {
		for _, u := range c.Ontologies() {
			seen[u] = true
		}
	}
	for _, c := range s.Required {
		for _, u := range c.Ontologies() {
			seen[u] = true
		}
	}
	out := make([]string, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the service.
func (s *Service) Clone() *Service {
	ss := &Service{Name: s.Name, Provider: s.Provider}
	if s.CodeVersions != nil {
		ss.CodeVersions = make(map[string]string, len(s.CodeVersions))
		for k, v := range s.CodeVersions {
			ss.CodeVersions[k] = v
		}
	}
	for _, c := range s.Provided {
		ss.Provided = append(ss.Provided, c.Clone())
	}
	for _, c := range s.Required {
		ss.Required = append(ss.Required, c.Clone())
	}
	ss.Process = cloneProcess(s.Process)
	return ss
}

func cloneProcess(n *process.Node) *process.Node {
	if n == nil {
		return nil
	}
	cp := &process.Node{Kind: n.Kind, Capability: n.Capability}
	for _, c := range n.Children {
		cp.Children = append(cp.Children, cloneProcess(c))
	}
	return cp
}

// String renders a compact one-line summary.
func (s *Service) String() string {
	return fmt.Sprintf("service %s (%d provided, %d required)", s.Name, len(s.Provided), len(s.Required))
}
