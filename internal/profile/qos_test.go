package profile

import (
	"errors"
	"math"
	"testing"

	"sariadne/internal/ontology"
)

func qosCap(name string) *Capability {
	return &Capability{
		Name:     name,
		Category: ontology.Ref{Ontology: "u", Name: "Server"},
	}
}

func TestQoSConstraintAccepts(t *testing.T) {
	tests := []struct {
		c    QoSConstraint
		v    float64
		want bool
	}{
		{QoSConstraint{Name: "lat", Min: Unbounded(), Max: 50}, 20, true},
		{QoSConstraint{Name: "lat", Min: Unbounded(), Max: 50}, 50, true},
		{QoSConstraint{Name: "lat", Min: Unbounded(), Max: 50}, 51, false},
		{QoSConstraint{Name: "bw", Min: 10, Max: Unbounded()}, 9, false},
		{QoSConstraint{Name: "bw", Min: 10, Max: Unbounded()}, 10, true},
		{QoSConstraint{Name: "x", Min: 1, Max: 2}, 1.5, true},
		{QoSConstraint{Name: "x", Min: Unbounded(), Max: Unbounded()}, math.Inf(1), true},
	}
	for _, tt := range tests {
		if got := tt.c.Accepts(tt.v); got != tt.want {
			t.Errorf("%+v.Accepts(%v) = %v, want %v", tt.c, tt.v, got, tt.want)
		}
	}
}

func TestQoSSatisfies(t *testing.T) {
	provider := qosCap("P")
	provider.QoSProvided = []QoSValue{
		{Name: "latencyMs", Value: 20},
		{Name: "bandwidthMbps", Value: 54},
	}

	tests := []struct {
		name string
		reqs []QoSConstraint
		want bool
	}{
		{"no constraints", nil, true},
		{"satisfied max", []QoSConstraint{{Name: "latencyMs", Min: Unbounded(), Max: 50}}, true},
		{"violated max", []QoSConstraint{{Name: "latencyMs", Min: Unbounded(), Max: 10}}, false},
		{"satisfied min", []QoSConstraint{{Name: "bandwidthMbps", Min: 10, Max: Unbounded()}}, true},
		{"violated min", []QoSConstraint{{Name: "bandwidthMbps", Min: 100, Max: Unbounded()}}, false},
		{"undeclared dimension", []QoSConstraint{{Name: "jitterMs", Min: Unbounded(), Max: 5}}, false},
		{
			"all satisfied",
			[]QoSConstraint{
				{Name: "latencyMs", Min: Unbounded(), Max: 50},
				{Name: "bandwidthMbps", Min: 10, Max: 100},
			},
			true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			req := qosCap("R")
			req.QoSRequired = tt.reqs
			if got := QoSSatisfies(provider, req); got != tt.want {
				t.Fatalf("QoSSatisfies = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestQoSValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Capability)
		ok     bool
	}{
		{"valid", func(c *Capability) {
			c.QoSProvided = []QoSValue{{Name: "lat", Value: 5}}
			c.QoSRequired = []QoSConstraint{{Name: "lat", Min: 0, Max: 10}}
		}, true},
		{"unnamed value", func(c *Capability) {
			c.QoSProvided = []QoSValue{{Value: 5}}
		}, false},
		{"duplicate value", func(c *Capability) {
			c.QoSProvided = []QoSValue{{Name: "lat", Value: 5}, {Name: "lat", Value: 6}}
		}, false},
		{"unnamed constraint", func(c *Capability) {
			c.QoSRequired = []QoSConstraint{{Min: 0, Max: 1}}
		}, false},
		{"duplicate constraint", func(c *Capability) {
			c.QoSRequired = []QoSConstraint{
				{Name: "lat", Min: 0, Max: 1},
				{Name: "lat", Min: 0, Max: 2},
			}
		}, false},
		{"empty range", func(c *Capability) {
			c.QoSRequired = []QoSConstraint{{Name: "lat", Min: 5, Max: 1}}
		}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := qosCap("C")
			tt.mutate(c)
			err := c.Validate()
			if tt.ok && err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if !tt.ok && !errors.Is(err, ErrBadQoS) {
				t.Fatalf("Validate = %v, want ErrBadQoS", err)
			}
		})
	}
}

func TestQoSCodecRoundTrip(t *testing.T) {
	svc := WorkstationService()
	svc.Provided[0].QoSProvided = []QoSValue{
		{Name: "latencyMs", Value: 12.5},
		{Name: "bandwidthMbps", Value: 54},
	}
	svc.Required = append(svc.Required, &Capability{
		Name:     "NeedFastStream",
		Category: serversRef("VideoServer"),
		QoSRequired: []QoSConstraint{
			{Name: "latencyMs", Min: Unbounded(), Max: 30},
			{Name: "bandwidthMbps", Min: 10, Max: Unbounded()},
			{Name: "uptime", Min: 0.99, Max: 1},
		},
	})

	data, err := Marshal(svc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v\n%s", err, data)
	}
	if !back.Provided[0].Equal(svc.Provided[0]) {
		t.Fatalf("provided QoS lost:\ngot %+v\nwant %+v", back.Provided[0], svc.Provided[0])
	}
	gotReq := back.Required[len(back.Required)-1]
	wantReq := svc.Required[len(svc.Required)-1]
	if !gotReq.Equal(wantReq) {
		t.Fatalf("required QoS lost:\ngot %+v\nwant %+v", gotReq, wantReq)
	}
	// NaN bounds survive as absent attributes.
	if !math.IsNaN(gotReq.QoSRequired[0].Min) {
		t.Fatalf("unbounded min became %v", gotReq.QoSRequired[0].Min)
	}
}

func TestQoSDecodeErrors(t *testing.T) {
	docs := map[string]string{
		"bad min": `<service name="s"><provided name="c" category="u#C"><qosRequire name="lat" min="abc"/></provided></service>`,
		"bad max": `<service name="s"><provided name="c" category="u#C"><qosRequire name="lat" max="abc"/></provided></service>`,
	}
	for name, doc := range docs {
		if _, err := Unmarshal([]byte(doc)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestQoSCloneAndEqual(t *testing.T) {
	a := qosCap("C")
	a.QoSProvided = []QoSValue{{Name: "lat", Value: 5}}
	a.QoSRequired = []QoSConstraint{{Name: "bw", Min: 10, Max: Unbounded()}}
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.QoSProvided[0].Value = 6
	if a.Equal(b) {
		t.Fatal("mutated clone still equal")
	}
	if a.QoSProvided[0].Value != 5 {
		t.Fatal("clone shares QoS slice")
	}
	c := a.Clone()
	c.QoSRequired[0].Max = 99
	if a.Equal(c) {
		t.Fatal("constraint change not detected")
	}
}
