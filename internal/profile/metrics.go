package profile

import "sariadne/internal/telemetry"

// parseSeconds times Amigo-S service document parsing — the "parse"
// share of the paper's Fig. 2 response-time decomposition.
var parseSeconds = telemetry.NewHistogram("profile_parse_seconds",
	"latency of parsing one Amigo-S service document")
