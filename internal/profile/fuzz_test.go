package profile

import "testing"

// FuzzDecode hardens the Amigo-S parser: no panic on arbitrary bytes, and
// successful decodes survive a marshal/decode round trip structurally.
func FuzzDecode(f *testing.F) {
	valid, err := Marshal(WorkstationService())
	if err != nil {
		f.Fatal(err)
	}
	seeds := [][]byte{
		valid,
		[]byte(`<service name="s"><provided name="c" category="u#C"><qos name="l" value="1"/><qosRequire name="l" max="5"/></provided></service>`),
		[]byte(`<service name="s"><required name="c" category="u#C"><input>u#I</input></required></service>`),
		[]byte(`<service`),
		[]byte(``),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		svc, err := Unmarshal(data)
		if err != nil {
			return
		}
		out, err := Marshal(svc)
		if err != nil {
			t.Fatalf("decoded service fails to marshal: %v", err)
		}
		back, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("marshal output fails to decode: %v\n%s", err, out)
		}
		if back.Name != svc.Name ||
			len(back.Provided) != len(svc.Provided) ||
			len(back.Required) != len(svc.Required) {
			t.Fatal("structure changed across round trip")
		}
		for i := range svc.Provided {
			if !back.Provided[i].Equal(svc.Provided[i]) {
				t.Fatalf("provided[%d] changed across round trip", i)
			}
		}
	})
}
