package profile

import (
	"errors"
	"fmt"
	"math"
)

// Amigo-S extends OWL-S with QoS-awareness (Section 2.2 of the paper: the
// language "enables QoS- and context-awareness for service provisioning").
// A provided capability declares measured QoS values; a required
// capability declares acceptable ranges. QoS acts as a filter on top of
// the functional Match relation — deliberately not part of the semantic
// distance or of the capability-graph ordering, because range constraints
// are not transitive and would break the DAG classification's soundness.

// ErrBadQoS is returned for malformed QoS declarations.
var ErrBadQoS = errors.New("profile: invalid QoS declaration")

// QoSValue is a provided non-functional guarantee, e.g. {LatencyMs, 20}.
type QoSValue struct {
	Name  string
	Value float64
}

// QoSConstraint is a required acceptable range for a named QoS dimension.
// Min/Max are inclusive; NaN means unbounded on that side.
type QoSConstraint struct {
	Name string
	Min  float64
	Max  float64
}

// Unbounded is the NaN sentinel for one-sided constraints.
func Unbounded() float64 { return math.NaN() }

// Accepts reports whether a value satisfies the constraint.
func (c QoSConstraint) Accepts(v float64) bool {
	if !math.IsNaN(c.Min) && v < c.Min {
		return false
	}
	if !math.IsNaN(c.Max) && v > c.Max {
		return false
	}
	return true
}

// validateQoS checks the capability's QoS declarations.
func (c *Capability) validateQoS() error {
	seen := make(map[string]bool)
	for _, v := range c.QoSProvided {
		if v.Name == "" {
			return fmt.Errorf("%w: provided value without name in %q", ErrBadQoS, c.Name)
		}
		if seen[v.Name] {
			return fmt.Errorf("%w: duplicate provided dimension %q in %q", ErrBadQoS, v.Name, c.Name)
		}
		seen[v.Name] = true
	}
	seen = make(map[string]bool)
	for _, r := range c.QoSRequired {
		if r.Name == "" {
			return fmt.Errorf("%w: constraint without name in %q", ErrBadQoS, c.Name)
		}
		if seen[r.Name] {
			return fmt.Errorf("%w: duplicate constraint dimension %q in %q", ErrBadQoS, r.Name, c.Name)
		}
		seen[r.Name] = true
		if !math.IsNaN(r.Min) && !math.IsNaN(r.Max) && r.Min > r.Max {
			return fmt.Errorf("%w: empty range [%v,%v] for %q in %q", ErrBadQoS, r.Min, r.Max, r.Name, c.Name)
		}
	}
	return nil
}

// QoSSatisfies reports whether the provided capability's QoS values meet
// every constraint required by the requested capability. A constraint on
// a dimension the provider does not declare fails (no silent optimism).
func QoSSatisfies(provided, requested *Capability) bool {
	if len(requested.QoSRequired) == 0 {
		return true
	}
	values := make(map[string]float64, len(provided.QoSProvided))
	for _, v := range provided.QoSProvided {
		values[v.Name] = v.Value
	}
	for _, c := range requested.QoSRequired {
		v, ok := values[c.Name]
		if !ok || !c.Accepts(v) {
			return false
		}
	}
	return true
}

func cloneQoS(dst, src *Capability) {
	dst.QoSProvided = append([]QoSValue(nil), src.QoSProvided...)
	dst.QoSRequired = append([]QoSConstraint(nil), src.QoSRequired...)
}

func qosEqual(a, b *Capability) bool {
	if len(a.QoSProvided) != len(b.QoSProvided) || len(a.QoSRequired) != len(b.QoSRequired) {
		return false
	}
	av := make(map[string]float64, len(a.QoSProvided))
	for _, v := range a.QoSProvided {
		av[v.Name] = v.Value
	}
	for _, v := range b.QoSProvided {
		if w, ok := av[v.Name]; !ok || w != v.Value {
			return false
		}
	}
	ar := make(map[string]QoSConstraint, len(a.QoSRequired))
	for _, r := range a.QoSRequired {
		ar[r.Name] = r
	}
	for _, r := range b.QoSRequired {
		w, ok := ar[r.Name]
		if !ok || !floatEq(w.Min, r.Min) || !floatEq(w.Max, r.Max) {
			return false
		}
	}
	return true
}

func floatEq(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return a == b
}
