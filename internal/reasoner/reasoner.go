// Package reasoner implements online ontology reasoners: engines that load
// an ontology, classify it, and answer subsumption and level-distance
// queries at request time.
//
// The paper's Figure 2 measures capability matching on top of three real DL
// reasoners — Racer, FaCT++ and Pellet — and finds the load-and-classify
// phase dominates (76–78% of 4–5 seconds). Those systems are closed or
// JVM/Lisp-hosted and cannot be embedded here, so this package provides
// three from-scratch profiles with deliberately different algorithmic
// shapes standing in for them:
//
//   - Naive: dense Floyd–Warshall-style closure over the whole concept set,
//     the "compute everything up front" school.
//   - Rule: semi-naive datalog-style fixpoint over subsumption facts,
//     the rule-engine school.
//   - Tableau: classification by pairwise satisfiability-style tests with
//     per-test completion-graph bookkeeping, the tableau school; its match
//     phase re-runs tests on demand instead of consulting a closure.
//
// All three produce identical answers (property-tested against
// ontology.Classify); they differ only in where the time goes, which is
// exactly the axis Figure 2 reports.
package reasoner

import (
	"fmt"
	"io"

	"sariadne/internal/ontology"
)

// Hierarchy answers subsumption and level-distance queries over class
// names, as a classified ontology does.
type Hierarchy interface {
	// Subsumes reports whether class a subsumes class b.
	Subsumes(a, b string) bool
	// Distance returns the paper's d(a, b): hierarchy levels from a down to
	// b when a subsumes b, ok=false otherwise.
	Distance(a, b string) (int, bool)
}

// Reasoner is an online reasoning engine. Load parses and indexes an
// ontology document; Classify computes the full taxonomy. Both are
// per-engine expensive — that is the point of the paper's measurements.
type Reasoner interface {
	// Name identifies the engine profile (for reports).
	Name() string
	// Load parses an ontology document and builds the engine's internal
	// representation.
	Load(r io.Reader) error
	// LoadOntology indexes an already-parsed ontology.
	LoadOntology(o *ontology.Ontology) error
	// Classify computes the taxonomy of the loaded ontology and returns a
	// query handle. Classify must be called after Load.
	Classify() (Hierarchy, error)
}

// New returns the reasoner with the given profile name: "naive", "rule" or
// "tableau".
func New(name string) (Reasoner, error) {
	switch name {
	case "naive":
		return NewNaive(), nil
	case "rule":
		return NewRule(), nil
	case "tableau":
		return NewTableau(), nil
	default:
		return nil, fmt.Errorf("reasoner: unknown profile %q", name)
	}
}

// Profiles lists the available engine profile names in presentation order.
func Profiles() []string { return []string{"naive", "rule", "tableau"} }

// graph is the shared loaded representation after preprocessing: mutual
// subsumption (equivalence axioms and subclass cycles) is collapsed, so the
// remaining structure is a DAG of canonical concepts with unit-weight
// parent edges. Collapsing is part of every real engine's load phase: a
// taxonomy cannot be built over raw, possibly cyclic axioms.
type graph struct {
	// names maps every declared class name to its canonical concept index.
	names map[string]int
	n     int
	// up[i] lists direct parent concept indices (deduplicated).
	up [][]int
	// down is the reverse adjacency.
	down [][]int
}

// loadGraph converts an ontology into the engine representation: build the
// raw axiom graph (subclass edges up, equivalence edges both ways), find
// its strongly connected components with an iterative Kosaraju pass, and
// condense.
func loadGraph(o *ontology.Ontology) (*graph, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	classes := o.Classes()
	n := len(classes)
	idx := make(map[string]int, n)
	for i, c := range classes {
		idx[c.Name] = i
	}
	fwd := make([][]int, n)
	rev := make([][]int, n)
	add := func(from, to int) {
		fwd[from] = append(fwd[from], to)
		rev[to] = append(rev[to], from)
	}
	for i, c := range classes {
		for _, sup := range c.SubClassOf {
			add(i, idx[sup])
		}
		for _, eq := range c.EquivalentTo {
			j := idx[eq]
			add(i, j)
			add(j, i)
		}
	}

	comp := sccKosaraju(fwd, rev)
	nc := 0
	for _, c := range comp {
		if c+1 > nc {
			nc = c + 1
		}
	}

	g := &graph{names: make(map[string]int, n), n: nc, up: make([][]int, nc), down: make([][]int, nc)}
	for i, c := range classes {
		g.names[c.Name] = comp[i]
	}
	seen := make(map[[2]int]bool)
	for i := range fwd {
		for _, j := range fwd[i] {
			ci, cj := comp[i], comp[j]
			if ci == cj {
				continue
			}
			key := [2]int{ci, cj}
			if seen[key] {
				continue
			}
			seen[key] = true
			g.up[ci] = append(g.up[ci], cj)
			g.down[cj] = append(g.down[cj], ci)
		}
	}
	return g, nil
}

// sccKosaraju computes strongly connected components of the graph given by
// forward and reverse adjacency, returning a component index per vertex.
func sccKosaraju(fwd, rev [][]int) []int {
	n := len(fwd)
	order := make([]int, 0, n)
	visited := make([]bool, n)
	// First pass: finish-order DFS on fwd, iterative.
	type frame struct {
		v, ei int
	}
	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		stack := []frame{{v: s}}
		visited[s] = true
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.ei < len(fwd[f.v]) {
				w := fwd[f.v][f.ei]
				f.ei++
				if !visited[w] {
					visited[w] = true
					stack = append(stack, frame{v: w})
				}
				continue
			}
			order = append(order, f.v)
			stack = stack[:len(stack)-1]
		}
	}
	// Second pass: reverse finish order on rev.
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	for i := n - 1; i >= 0; i-- {
		s := order[i]
		if comp[s] >= 0 {
			continue
		}
		comp[s] = next
		stack := []int{s}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range rev[v] {
				if comp[w] < 0 {
					comp[w] = next
					stack = append(stack, w)
				}
			}
		}
		next++
	}
	return comp
}

// closure is a dense answer table shared by the Naive and Rule engines.
type closure struct {
	names map[string]int
	// dist[b][a] is the minimal level count from ancestor a down to b;
	// -1 when a does not subsume b.
	dist [][]int16
}

const noPath int16 = -1

func newClosure(g *graph) *closure {
	n := g.n
	c := &closure{names: g.names, dist: make([][]int16, n)}
	for i := range c.dist {
		row := make([]int16, n)
		for j := range row {
			row[j] = noPath
		}
		row[i] = 0
		c.dist[i] = row
	}
	return c
}

func (c *closure) Subsumes(a, b string) bool {
	ai, ok := c.names[a]
	if !ok {
		return false
	}
	bi, ok := c.names[b]
	if !ok {
		return false
	}
	return c.dist[bi][ai] >= 0
}

func (c *closure) Distance(a, b string) (int, bool) {
	ai, ok := c.names[a]
	if !ok {
		return 0, false
	}
	bi, ok := c.names[b]
	if !ok {
		return 0, false
	}
	d := c.dist[bi][ai]
	if d < 0 {
		return 0, false
	}
	return int(d), true
}

var _ Hierarchy = (*closure)(nil)
