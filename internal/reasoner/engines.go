package reasoner

import (
	"errors"
	"io"
	"time"

	"sariadne/internal/ontology"
)

// ErrNotLoaded is returned by Classify before a successful Load.
var ErrNotLoaded = errors.New("reasoner: no ontology loaded")

// baseEngine carries the shared Load plumbing.
type baseEngine struct {
	g *graph
}

func (b *baseEngine) load(r io.Reader) error {
	o, err := ontology.Decode(r)
	if err != nil {
		return err
	}
	return b.loadOntology(o)
}

func (b *baseEngine) loadOntology(o *ontology.Ontology) error {
	start := time.Now()
	defer loadSeconds.ObserveSince(start)
	g, err := loadGraph(o)
	if err != nil {
		return err
	}
	b.g = g
	return nil
}

// Naive classifies with a dense Floyd–Warshall-style min-plus closure:
// O(n³) over the concept count, trading memory and up-front work for O(1)
// queries. It stands in for engines that eagerly materialize the taxonomy.
type Naive struct {
	baseEngine
}

// NewNaive returns a Naive engine.
func NewNaive() *Naive { return &Naive{} }

// Name implements Reasoner.
func (e *Naive) Name() string { return "naive" }

// Load implements Reasoner.
func (e *Naive) Load(r io.Reader) error { return e.load(r) }

// LoadOntology implements Reasoner.
func (e *Naive) LoadOntology(o *ontology.Ontology) error { return e.loadOntology(o) }

// Classify implements Reasoner.
func (e *Naive) Classify() (Hierarchy, error) {
	if e.g == nil {
		return nil, ErrNotLoaded
	}
	start := time.Now()
	defer classifySeconds.ObserveSince(start)
	g := e.g
	n := g.n
	c := newClosure(g)
	// Seed with direct edges: dist[child][parent] = 1.
	for child := 0; child < n; child++ {
		for _, parent := range g.up[child] {
			c.dist[child][parent] = 1
		}
	}
	// Min-plus closure: dist[b][a] = min over mid of dist[b][mid] +
	// dist[mid][a]. The DAG has no negative cycles, so plain FW applies.
	for mid := 0; mid < n; mid++ {
		for b := 0; b < n; b++ {
			dbm := c.dist[b][mid]
			if dbm < 0 {
				continue
			}
			rowB, rowM := c.dist[b], c.dist[mid]
			for a := 0; a < n; a++ {
				dma := rowM[a]
				if dma < 0 {
					continue
				}
				if d := dbm + dma; rowB[a] < 0 || d < rowB[a] {
					rowB[a] = d
				}
			}
		}
	}
	return c, nil
}

// Rule classifies with a semi-naive datalog-style fixpoint over the facts
// subsumes(child, ancestor, levels): each round joins the newly derived
// delta with the direct-edge relation until no new facts appear. It stands
// in for rule-engine reasoners.
type Rule struct {
	baseEngine
}

// NewRule returns a Rule engine.
func NewRule() *Rule { return &Rule{} }

// Name implements Reasoner.
func (e *Rule) Name() string { return "rule" }

// Load implements Reasoner.
func (e *Rule) Load(r io.Reader) error { return e.load(r) }

// LoadOntology implements Reasoner.
func (e *Rule) LoadOntology(o *ontology.Ontology) error { return e.loadOntology(o) }

// Classify implements Reasoner.
func (e *Rule) Classify() (Hierarchy, error) {
	if e.g == nil {
		return nil, ErrNotLoaded
	}
	start := time.Now()
	defer classifySeconds.ObserveSince(start)
	g := e.g
	n := g.n
	c := newClosure(g)

	type fact struct {
		child, anc int
		d          int16
	}
	var delta []fact
	for child := 0; child < n; child++ {
		for _, parent := range g.up[child] {
			if c.dist[child][parent] < 0 || 1 < c.dist[child][parent] {
				c.dist[child][parent] = 1
				delta = append(delta, fact{child: child, anc: parent, d: 1})
			}
		}
	}
	// Semi-naive iteration: subsumes(c, a, d) ∧ direct(a, p) ⊢
	// subsumes(c, p, d+1), joining only against the last round's delta.
	for len(delta) > 0 {
		var next []fact
		for _, f := range delta {
			for _, p := range g.up[f.anc] {
				nd := f.d + 1
				if cur := c.dist[f.child][p]; cur < 0 || nd < cur {
					c.dist[f.child][p] = nd
					next = append(next, fact{child: f.child, anc: p, d: nd})
				}
			}
		}
		delta = next
	}
	return c, nil
}

// Tableau classifies by running an independent satisfiability-style
// subsumption test for every concept pair, maintaining a fresh completion
// set per test the way tableau engines expand a completion graph; queries
// after classification re-run tests on demand rather than consulting a
// cache. It stands in for tableau-based engines and is deliberately the
// most expensive profile.
type Tableau struct {
	baseEngine
}

// NewTableau returns a Tableau engine.
func NewTableau() *Tableau { return &Tableau{} }

// Name implements Reasoner.
func (e *Tableau) Name() string { return "tableau" }

// Load implements Reasoner.
func (e *Tableau) Load(r io.Reader) error { return e.load(r) }

// LoadOntology implements Reasoner.
func (e *Tableau) LoadOntology(o *ontology.Ontology) error { return e.loadOntology(o) }

// Classify implements Reasoner. The returned hierarchy keeps a reference to
// the loaded graph and answers every query with a fresh expansion.
func (e *Tableau) Classify() (Hierarchy, error) {
	if e.g == nil {
		return nil, ErrNotLoaded
	}
	start := time.Now()
	defer classifySeconds.ObserveSince(start)
	h := &tableauHierarchy{g: e.g}
	// Classification: verify the taxonomy by testing every ordered concept
	// pair once, exactly as tableau engines do to publish a taxonomy. The
	// results are recomputed on demand at query time (kept unstored on
	// purpose: this profile models engines whose query path goes back to
	// the prover).
	for a := 0; a < e.g.n; a++ {
		for b := 0; b < e.g.n; b++ {
			h.expand(b, a)
		}
	}
	return h, nil
}

type tableauHierarchy struct {
	g *graph
}

// expand runs one subsumption test: does ancestor `a` subsume `sub`? It
// simulates the completion-graph expansion of a tableau prover — building
// the set of all superconcepts of sub and testing whether adding ¬a closes
// the branch — and returns the minimal expansion depth at which a appears.
func (h *tableauHierarchy) expand(sub, a int) (int, bool) {
	if sub == a {
		return 0, true
	}
	// Fresh per-test allocation is intrinsic to the profile being modeled.
	labels := make([]int8, h.g.n) // 0 unseen, 1 in completion set
	depth := make([]int16, h.g.n)
	labels[sub] = 1
	frontier := []int{sub}
	for len(frontier) > 0 {
		var next []int
		for _, v := range frontier {
			for _, p := range h.g.up[v] {
				if labels[p] == 0 {
					labels[p] = 1
					depth[p] = depth[v] + 1
					next = append(next, p)
				}
			}
		}
		frontier = next
	}
	if labels[a] == 0 {
		return 0, false
	}
	return int(depth[a]), true
}

func (h *tableauHierarchy) Subsumes(a, b string) bool {
	ai, ok := h.g.names[a]
	if !ok {
		return false
	}
	bi, ok := h.g.names[b]
	if !ok {
		return false
	}
	_, ok = h.expand(bi, ai)
	return ok
}

func (h *tableauHierarchy) Distance(a, b string) (int, bool) {
	ai, ok := h.g.names[a]
	if !ok {
		return 0, false
	}
	bi, ok := h.g.names[b]
	if !ok {
		return 0, false
	}
	return h.expand(bi, ai)
}

var (
	_ Reasoner = (*Naive)(nil)
	_ Reasoner = (*Rule)(nil)
	_ Reasoner = (*Tableau)(nil)
)
