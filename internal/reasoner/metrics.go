package reasoner

import "sariadne/internal/telemetry"

// Fig. 2's "load + classify" phase: how long online reasoners spend
// building taxonomies, the cost encoded code tables amortize away.
var (
	loadSeconds = telemetry.NewHistogram("reasoner_load_seconds",
		"latency of loading one ontology into a reasoner engine")
	classifySeconds = telemetry.NewHistogram("reasoner_classify_seconds",
		"latency of one reasoner Classify run (any engine)")
)
