package reasoner

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"sariadne/internal/ontology"
)

func fixtureOntology(t testing.TB) *ontology.Ontology {
	t.Helper()
	o := ontology.New("http://amigo.example/ont/media", "1")
	for _, c := range []ontology.Class{
		{Name: "Resource"},
		{Name: "DigitalResource", SubClassOf: []string{"Resource"}},
		{Name: "VideoResource", SubClassOf: []string{"DigitalResource"}},
		{Name: "Movie", SubClassOf: []string{"VideoResource"}},
		{Name: "Film", EquivalentTo: []string{"Movie"}},
		{Name: "Stream"},
	} {
		o.MustAddClass(c)
	}
	return o
}

func TestNewByName(t *testing.T) {
	for _, name := range Profiles() {
		r, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if r.Name() != name {
			t.Errorf("Name() = %q, want %q", r.Name(), name)
		}
	}
	if _, err := New("pellet"); err == nil {
		t.Error("New accepted unknown profile")
	}
}

func TestClassifyBeforeLoad(t *testing.T) {
	for _, name := range Profiles() {
		r, _ := New(name)
		if _, err := r.Classify(); err == nil {
			t.Errorf("%s: Classify before Load succeeded", name)
		}
	}
}

func TestLoadRejectsBadDocument(t *testing.T) {
	for _, name := range Profiles() {
		r, _ := New(name)
		if err := r.Load(strings.NewReader("not xml")); err == nil {
			t.Errorf("%s: Load accepted garbage", name)
		}
		bad := ontology.New("u", "1")
		bad.MustAddClass(ontology.Class{Name: "A", SubClassOf: []string{"Missing"}})
		if err := r.LoadOntology(bad); err == nil {
			t.Errorf("%s: LoadOntology accepted invalid ontology", name)
		}
	}
}

func TestEnginesAgreeOnFixture(t *testing.T) {
	o := fixtureOntology(t)
	want := ontology.MustClassify(o)
	names := []string{"Resource", "DigitalResource", "VideoResource", "Movie", "Film", "Stream", "Unknown"}

	for _, profile := range Profiles() {
		t.Run(profile, func(t *testing.T) {
			r, _ := New(profile)
			if err := r.LoadOntology(o); err != nil {
				t.Fatalf("LoadOntology: %v", err)
			}
			h, err := r.Classify()
			if err != nil {
				t.Fatalf("Classify: %v", err)
			}
			for _, a := range names {
				for _, b := range names {
					if got, wantV := h.Subsumes(a, b), want.Subsumes(a, b); got != wantV {
						t.Errorf("Subsumes(%q,%q) = %v, want %v", a, b, got, wantV)
					}
					gd, gok := h.Distance(a, b)
					wd, wok := want.Distance(a, b)
					if gd != wd || gok != wok {
						t.Errorf("Distance(%q,%q) = (%d,%v), want (%d,%v)", a, b, gd, gok, wd, wok)
					}
				}
			}
		})
	}
}

func TestEnginesHandleSubclassCycle(t *testing.T) {
	o := ontology.New("u", "1")
	o.MustAddClass(ontology.Class{Name: "A", SubClassOf: []string{"C"}})
	o.MustAddClass(ontology.Class{Name: "B", SubClassOf: []string{"A"}})
	o.MustAddClass(ontology.Class{Name: "C", SubClassOf: []string{"B"}})
	o.MustAddClass(ontology.Class{Name: "D", SubClassOf: []string{"A"}})

	for _, profile := range Profiles() {
		r, _ := New(profile)
		if err := r.LoadOntology(o); err != nil {
			t.Fatalf("%s: %v", profile, err)
		}
		h, err := r.Classify()
		if err != nil {
			t.Fatalf("%s: %v", profile, err)
		}
		if !h.Subsumes("A", "B") || !h.Subsumes("B", "A") {
			t.Errorf("%s: cycle members must mutually subsume", profile)
		}
		if d, ok := h.Distance("C", "A"); !ok || d != 0 {
			t.Errorf("%s: Distance(C,A) = (%d,%v), want (0,true)", profile, d, ok)
		}
		if d, ok := h.Distance("B", "D"); !ok || d != 1 {
			t.Errorf("%s: Distance(B,D) = (%d,%v), want (1,true)", profile, d, ok)
		}
	}
}

// randomOntology mirrors the generator in codes tests: random DAG plus
// sparse equivalences.
func randomOntology(rng *rand.Rand, n int) *ontology.Ontology {
	o := ontology.New("http://rand.example/ont", "1")
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("C%03d", i)
	}
	for i := 0; i < n; i++ {
		c := ontology.Class{Name: names[i]}
		if i > 0 {
			for j := 0; j < rng.Intn(3); j++ {
				c.SubClassOf = append(c.SubClassOf, names[rng.Intn(i)])
			}
		}
		if i > 1 && rng.Intn(8) == 0 {
			c.EquivalentTo = append(c.EquivalentTo, names[rng.Intn(i)])
		}
		o.MustAddClass(c)
	}
	return o
}

// TestPropertyEnginesAgree cross-checks all three engines against the
// reference classifier on random ontologies.
func TestPropertyEnginesAgree(t *testing.T) {
	engines := make([]Reasoner, 0, 3)
	for _, p := range Profiles() {
		r, _ := New(p)
		engines = append(engines, r)
	}
	prop := func(seed int64, sz uint8) bool {
		n := int(sz%25) + 2
		rng := rand.New(rand.NewSource(seed))
		o := randomOntology(rng, n)
		want, err := ontology.Classify(o)
		if err != nil {
			return false
		}
		for _, r := range engines {
			if err := r.LoadOntology(o); err != nil {
				return false
			}
			h, err := r.Classify()
			if err != nil {
				return false
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					a, b := fmt.Sprintf("C%03d", i), fmt.Sprintf("C%03d", j)
					if h.Subsumes(a, b) != want.Subsumes(a, b) {
						t.Logf("%s: Subsumes(%s,%s) disagrees (seed %d)", r.Name(), a, b, seed)
						return false
					}
					gd, gok := h.Distance(a, b)
					wd, wok := want.Distance(a, b)
					if gd != wd || gok != wok {
						t.Logf("%s: Distance(%s,%s) = (%d,%v) want (%d,%v) (seed %d)", r.Name(), a, b, gd, gok, wd, wok, seed)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadFromDocument(t *testing.T) {
	data, err := ontology.Marshal(fixtureOntology(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, profile := range Profiles() {
		r, _ := New(profile)
		if err := r.Load(strings.NewReader(string(data))); err != nil {
			t.Fatalf("%s: Load: %v", profile, err)
		}
		h, err := r.Classify()
		if err != nil {
			t.Fatalf("%s: Classify: %v", profile, err)
		}
		if !h.Subsumes("Resource", "Movie") {
			t.Errorf("%s: lost subsumption after document load", profile)
		}
	}
}
