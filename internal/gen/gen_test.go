package gen

import (
	"math/rand"
	"testing"

	"sariadne/internal/codes"
	"sariadne/internal/match"
	"sariadne/internal/ontology"
	"sariadne/internal/profile"
	"sariadne/internal/wsdl"
)

func TestOntologyShape(t *testing.T) {
	o := Ontology(OntologyConfig{URI: "u", Classes: 50, Properties: 10, Seed: 1})
	if o.NumClasses() != 50 || o.NumProperties() != 10 {
		t.Fatalf("shape = %d classes, %d properties", o.NumClasses(), o.NumProperties())
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	cl, err := ontology.Classify(o)
	if err != nil {
		t.Fatal(err)
	}
	if cl.NumConcepts() != 50 {
		t.Fatalf("concepts = %d", cl.NumConcepts())
	}
	// Tree skeleton: single root (class C000).
	if roots := cl.Roots(); len(roots) != 1 {
		t.Fatalf("roots = %v, want 1", roots)
	}
}

func TestOntologyDeterministic(t *testing.T) {
	a := Ontology(OntologyConfig{URI: "u", Classes: 30, Properties: 5, Seed: 7})
	b := Ontology(OntologyConfig{URI: "u", Classes: 30, Properties: 5, Seed: 7})
	da, err := ontology.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := ontology.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(da) != string(db) {
		t.Fatal("same seed produced different ontologies")
	}
}

// TestWorkloadInjectedRandDeterministic: an injected generator takes
// precedence over Seed and two equal generators reproduce the workload
// byte for byte.
func TestWorkloadInjectedRandDeterministic(t *testing.T) {
	build := func() *Workload {
		return MustNewWorkload(WorkloadConfig{
			Ontologies: 2, Services: 4,
			Seed: 999, // must be ignored in favour of Rand
			Rand: rand.New(rand.NewSource(42)),
		})
	}
	a, b := build(), build()
	if len(a.ServiceDocs) != len(b.ServiceDocs) {
		t.Fatalf("workload sizes differ: %d vs %d", len(a.ServiceDocs), len(b.ServiceDocs))
	}
	for i := range a.ServiceDocs {
		if string(a.ServiceDocs[i]) != string(b.ServiceDocs[i]) {
			t.Fatalf("service %d differs between identically-seeded generators", i)
		}
	}
	// A different stream must actually change the output, proving Rand is
	// consumed rather than Seed.
	c := MustNewWorkload(WorkloadConfig{
		Ontologies: 2, Services: 4,
		Seed: 999,
		Rand: rand.New(rand.NewSource(43)),
	})
	same := true
	for i := range a.ServiceDocs {
		if string(a.ServiceDocs[i]) != string(c.ServiceDocs[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("changing the injected generator did not change the workload; Rand is not being used")
	}
}

func TestWorkloadGeneration(t *testing.T) {
	w, err := NewWorkload(WorkloadConfig{Ontologies: 5, Services: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Ontologies) != 5 || len(w.Services) != 20 || len(w.Definitions) != 20 || len(w.ServiceDocs) != 20 {
		t.Fatalf("sizes: %d/%d/%d/%d", len(w.Ontologies), len(w.Services), len(w.Definitions), len(w.ServiceDocs))
	}
	for i, svc := range w.Services {
		if err := svc.Validate(); err != nil {
			t.Fatalf("service %d: %v", i, err)
		}
		if len(svc.Provided) != 1 {
			t.Fatalf("service %d has %d capabilities, want 1", i, len(svc.Provided))
		}
	}
	for i, doc := range w.ServiceDocs {
		back, err := profile.Unmarshal(doc)
		if err != nil {
			t.Fatalf("doc %d: %v", i, err)
		}
		if back.Name != w.Services[i].Name {
			t.Fatalf("doc %d names %q, want %q", i, back.Name, w.Services[i].Name)
		}
	}
}

func TestWorkloadRequestsMatchTheirService(t *testing.T) {
	w := MustNewWorkload(WorkloadConfig{Ontologies: 4, Services: 15, Seed: 5})
	reg, err := w.Registry(codes.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	m := match.NewCodeMatcher(reg)
	for depth := 0; depth <= 2; depth++ {
		for i := range w.Services {
			req := w.Request(i, depth)
			provided := w.Services[i].Provided[0]
			d, ok := match.SemanticDistance(m, provided, req)
			if !ok {
				t.Fatalf("depth %d: request %d does not match its source service", depth, i)
			}
			if depth == 0 && d != 0 {
				t.Fatalf("depth 0 request %d has distance %d, want 0", i, d)
			}
		}
	}
}

func TestWorkloadWSDLRequestsMatch(t *testing.T) {
	w := MustNewWorkload(WorkloadConfig{Ontologies: 4, Services: 15, Seed: 5})
	for i := range w.Definitions {
		req := w.WSDLRequest(i)
		if err := req.Validate(); err != nil {
			t.Fatalf("wsdl request %d invalid: %v", i, err)
		}
		if !wsdl.Satisfies(w.Definitions[i], req) {
			t.Fatalf("wsdl request %d not satisfied by its source", i)
		}
	}
}

func TestRegistryCoversAllOntologies(t *testing.T) {
	w := MustNewWorkload(WorkloadConfig{Ontologies: 6, Services: 1, Seed: 9})
	reg, err := w.Registry(codes.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 6 {
		t.Fatalf("registry has %d tables, want 6", reg.Len())
	}
	for _, o := range w.Ontologies {
		if _, ok := reg.Resolve(o.URI); !ok {
			t.Fatalf("missing table for %s", o.URI)
		}
	}
}

func TestFig2Fixtures(t *testing.T) {
	o := Fig2Ontology()
	if o.NumClasses() != 99 || o.NumProperties() != 39 {
		t.Fatalf("Fig2 ontology = %d classes, %d properties; want 99/39", o.NumClasses(), o.NumProperties())
	}
	provided, requested := Fig2Capabilities()
	if len(provided.Inputs) != 7 || len(provided.Outputs) != 3 {
		t.Fatalf("provided shape = %d in, %d out", len(provided.Inputs), len(provided.Outputs))
	}
	if len(requested.Inputs) != 7 || len(requested.Outputs) != 3 {
		t.Fatalf("requested shape = %d in, %d out", len(requested.Inputs), len(requested.Outputs))
	}
	reg := codes.NewRegistry()
	reg.Register(codes.MustEncode(ontology.MustClassify(o), codes.DefaultParams))
	m := match.NewCodeMatcher(reg)
	if !match.Match(m, provided, requested) {
		t.Fatal("Figure 2 capability pair must match")
	}
}
