// Package gen generates evaluation workloads matching the paper's setup:
// random class hierarchies, pools of ontologies (the evaluation uses 22),
// Amigo-S services with a single provided capability each, semantic
// requests derived from stored advertisements, and paired WSDL-style
// descriptions so the syntactic baseline can be driven by the very same
// workload (Figure 10's comparison).
package gen

import (
	"fmt"
	"math/rand"

	"sariadne/internal/codes"
	"sariadne/internal/ontology"
	"sariadne/internal/profile"
	"sariadne/internal/wsdl"
)

// OntologyConfig shapes one random ontology.
type OntologyConfig struct {
	// URI identifies the ontology.
	URI string
	// Version defaults to "1".
	Version string
	// Classes is the number of classes (the paper's Figure 2 ontology has
	// 99).
	Classes int
	// Properties is the number of properties (39 in Figure 2's ontology).
	Properties int
	// Branching bounds the fan-out of the class tree skeleton; defaults
	// to 4.
	Branching int
	// ExtraParents adds this many additional DAG edges; defaults to
	// Classes/10.
	ExtraParents int
	// Seed drives the layout.
	Seed int64
	// Rand, when non-nil, supplies randomness directly and takes
	// precedence over Seed, letting callers thread one seeded generator
	// through several generation steps.
	Rand *rand.Rand
}

// Ontology builds a random class hierarchy: a tree skeleton (guaranteeing
// connectivity and interesting depth) plus a sprinkling of extra parents
// making it a DAG.
func Ontology(cfg OntologyConfig) *ontology.Ontology {
	if cfg.Version == "" {
		cfg.Version = "1"
	}
	if cfg.Branching <= 0 {
		cfg.Branching = 4
	}
	if cfg.ExtraParents < 0 {
		cfg.ExtraParents = 0
	} else if cfg.ExtraParents == 0 {
		cfg.ExtraParents = cfg.Classes / 10
	}
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}
	o := ontology.New(cfg.URI, cfg.Version)

	names := make([]string, cfg.Classes)
	for i := range names {
		names[i] = fmt.Sprintf("C%03d", i)
	}
	childCount := make([]int, cfg.Classes)
	for i := 0; i < cfg.Classes; i++ {
		c := ontology.Class{Name: names[i], Label: "class " + names[i]}
		if i > 0 {
			// Pick a parent with remaining fan-out budget, preferring
			// recent classes to grow depth.
			parent := -1
			for attempt := 0; attempt < 8; attempt++ {
				cand := rng.Intn(i)
				if childCount[cand] < cfg.Branching {
					parent = cand
					break
				}
			}
			if parent < 0 {
				parent = 0
			}
			childCount[parent]++
			c.SubClassOf = append(c.SubClassOf, names[parent])
		}
		o.MustAddClass(c)
	}
	// Extra DAG edges: random class gains a second parent that is not a
	// descendant (guaranteed by only linking to lower indices, which the
	// tree construction keeps acyclic).
	for e := 0; e < cfg.ExtraParents && cfg.Classes > 2; e++ {
		child := rng.Intn(cfg.Classes-1) + 1
		parent := rng.Intn(child)
		cl := o.Class(names[child])
		dup := false
		for _, p := range cl.SubClassOf {
			if p == names[parent] {
				dup = true
				break
			}
		}
		if !dup {
			cl.SubClassOf = append(cl.SubClassOf, names[parent])
		}
	}
	for p := 0; p < cfg.Properties; p++ {
		o.AddProperty(ontology.Property{ //nolint:errcheck // names are unique by construction
			Name:   fmt.Sprintf("p%03d", p),
			Domain: names[rng.Intn(cfg.Classes)],
			Range:  names[rng.Intn(cfg.Classes)],
		})
	}
	return o
}

// WorkloadConfig shapes a full evaluation workload.
type WorkloadConfig struct {
	// Ontologies is the size of the ontology pool (the paper uses 22).
	Ontologies int
	// ClassesPerOntology sizes each ontology; defaults to 40.
	ClassesPerOntology int
	// PropertiesPerOntology defaults to ClassesPerOntology/3.
	PropertiesPerOntology int
	// Services is the number of generated service descriptions.
	Services int
	// CapabilitiesPerService defaults to 1, the paper's setting.
	CapabilitiesPerService int
	// InputsPerCapability and OutputsPerCapability default to 3 and 2.
	InputsPerCapability  int
	OutputsPerCapability int
	// Seed drives all randomness.
	Seed int64
	// Rand, when non-nil, supplies randomness directly and takes
	// precedence over Seed (the ontologies then draw from the same
	// stream instead of per-ontology derived seeds).
	Rand *rand.Rand
}

func (c WorkloadConfig) withDefaults() WorkloadConfig {
	if c.Ontologies <= 0 {
		c.Ontologies = 22
	}
	if c.ClassesPerOntology <= 0 {
		c.ClassesPerOntology = 40
	}
	if c.PropertiesPerOntology <= 0 {
		c.PropertiesPerOntology = c.ClassesPerOntology / 3
	}
	if c.CapabilitiesPerService <= 0 {
		c.CapabilitiesPerService = 1
	}
	if c.InputsPerCapability <= 0 {
		c.InputsPerCapability = 3
	}
	if c.OutputsPerCapability <= 0 {
		c.OutputsPerCapability = 2
	}
	return c
}

// Workload bundles everything an experiment needs.
type Workload struct {
	cfg        WorkloadConfig
	rng        *rand.Rand
	Ontologies []*ontology.Ontology
	classified []*ontology.Classified
	// Services are the Amigo-S descriptions.
	Services []*profile.Service
	// ServiceDocs are the serialized XML documents of Services, for
	// experiments that measure parsing.
	ServiceDocs [][]byte
	// Definitions are the paired WSDL-style descriptions of the same
	// services, for the syntactic baseline.
	Definitions []*wsdl.Definition
}

// NewWorkload generates a workload.
func NewWorkload(cfg WorkloadConfig) (*Workload, error) {
	cfg = cfg.withDefaults()
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}
	w := &Workload{cfg: cfg, rng: rng}
	for i := 0; i < cfg.Ontologies; i++ {
		oc := OntologyConfig{
			URI:        fmt.Sprintf("http://amigo.example/gen/ont%02d", i),
			Classes:    cfg.ClassesPerOntology,
			Properties: cfg.PropertiesPerOntology,
			Seed:       cfg.Seed + int64(i) + 1,
		}
		if cfg.Rand != nil {
			oc.Rand = rng
		}
		o := Ontology(oc)
		cl, err := ontology.Classify(o)
		if err != nil {
			return nil, fmt.Errorf("gen: classify %s: %w", o.URI, err)
		}
		w.Ontologies = append(w.Ontologies, o)
		w.classified = append(w.classified, cl)
	}
	for s := 0; s < cfg.Services; s++ {
		svc, def, err := w.generateService(s)
		if err != nil {
			return nil, err
		}
		doc, err := profile.Marshal(svc)
		if err != nil {
			return nil, fmt.Errorf("gen: marshal service %d: %w", s, err)
		}
		w.Services = append(w.Services, svc)
		w.ServiceDocs = append(w.ServiceDocs, doc)
		w.Definitions = append(w.Definitions, def)
	}
	return w, nil
}

// MustNewWorkload panics on generation failure; for benchmarks.
func MustNewWorkload(cfg WorkloadConfig) *Workload {
	w, err := NewWorkload(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

// randomConcept picks a uniformly random class of ontology oi.
func (w *Workload) randomConcept(oi int) ontology.Ref {
	o := w.Ontologies[oi]
	classes := o.Classes()
	return ontology.Ref{Ontology: o.URI, Name: classes[w.rng.Intn(len(classes))].Name}
}

// generateService builds one service plus its WSDL twin.
func (w *Workload) generateService(index int) (*profile.Service, *wsdl.Definition, error) {
	name := fmt.Sprintf("svc%04d", index)
	svc := &profile.Service{Name: name, Provider: name + "-host"}
	def := &wsdl.Definition{Name: name, TargetNamespace: "http://amigo.example/gen/wsdl/" + name}

	for ci := 0; ci < w.cfg.CapabilitiesPerService; ci++ {
		oi := w.rng.Intn(len(w.Ontologies))
		cap := &profile.Capability{
			Name:     fmt.Sprintf("cap%d", ci),
			Category: w.randomConcept(oi),
		}
		for i := 0; i < w.cfg.InputsPerCapability; i++ {
			cap.Inputs = append(cap.Inputs, w.randomConcept(oi))
		}
		for i := 0; i < w.cfg.OutputsPerCapability; i++ {
			cap.Outputs = append(cap.Outputs, w.randomConcept(oi))
		}
		svc.Provided = append(svc.Provided, cap)

		// WSDL twin: one port type per capability. The main operation's
		// message parts mirror the semantic inputs/outputs as named types;
		// per-input accessor operations round the interface out to a
		// realistic size (real WSDL documents carry many operations, and
		// the syntactic baseline pays for comparing all of them).
		inMsg := wsdl.Message{Name: fmt.Sprintf("cap%dIn", ci)}
		for i, ref := range cap.Inputs {
			inMsg.Parts = append(inMsg.Parts, wsdl.Part{Name: fmt.Sprintf("in%d", i), Type: "tns:" + ref.Name})
		}
		outMsg := wsdl.Message{Name: fmt.Sprintf("cap%dOut", ci)}
		for i, ref := range cap.Outputs {
			outMsg.Parts = append(outMsg.Parts, wsdl.Part{Name: fmt.Sprintf("out%d", i), Type: "tns:" + ref.Name})
		}
		def.Messages = append(def.Messages, inMsg, outMsg)
		pt := wsdl.PortType{
			Name: cap.Category.Name + "Port",
			Operations: []wsdl.Operation{
				{Name: cap.Name, Input: inMsg.Name, Output: outMsg.Name},
			},
		}
		for i, ref := range cap.Inputs {
			req := wsdl.Message{
				Name: fmt.Sprintf("cap%dGet%dIn", ci, i),
				Parts: []wsdl.Part{
					{Name: "selector", Type: "xsd:string"},
					{Name: "mode", Type: "xsd:int"},
				},
			}
			res := wsdl.Message{
				Name: fmt.Sprintf("cap%dGet%dOut", ci, i),
				Parts: []wsdl.Part{
					{Name: "value", Type: "tns:" + ref.Name},
					{Name: "status", Type: "xsd:int"},
				},
			}
			def.Messages = append(def.Messages, req, res)
			pt.Operations = append(pt.Operations, wsdl.Operation{
				Name:  fmt.Sprintf("describe%sVariant%d", ref.Name, i),
				Input: req.Name, Output: res.Name,
			})
		}
		def.PortTypes = append(def.PortTypes, pt)
	}
	if err := svc.Validate(); err != nil {
		return nil, nil, fmt.Errorf("gen: service %d invalid: %w", index, err)
	}
	if err := def.Validate(); err != nil {
		return nil, nil, fmt.Errorf("gen: wsdl %d invalid: %w", index, err)
	}
	return svc, def, nil
}

// Registry encodes every ontology of the workload into code tables.
func (w *Workload) Registry(params codes.Params) (*codes.Registry, error) {
	reg := codes.NewRegistry()
	for _, cl := range w.classified {
		t, err := codes.Encode(cl, params)
		if err != nil {
			return nil, err
		}
		reg.Register(t)
	}
	return reg, nil
}

// Classified returns the classified hierarchy for ontology i.
func (w *Workload) Classified(i int) *ontology.Classified { return w.classified[i] }

// Request derives a semantic request from the service at the given index:
// the request asks for that service's first capability, with each concept
// optionally specialized by walking down the hierarchy up to depth levels
// (producing nonzero semantic distances while guaranteeing at least one
// stored match).
func (w *Workload) Request(serviceIndex, depth int) *profile.Capability {
	src := w.Services[serviceIndex].Provided[0]
	req := src.Clone()
	req.Name = "request-" + src.Name
	specialize := func(ref ontology.Ref) ontology.Ref {
		cl := w.classifiedFor(ref.Ontology)
		if cl == nil {
			return ref
		}
		cur, ok := cl.Concept(ref.Name)
		if !ok {
			return ref
		}
		for i := 0; i < depth; i++ {
			kids := cl.Children(cur)
			if len(kids) == 0 {
				break
			}
			cur = kids[w.rng.Intn(len(kids))]
		}
		return ontology.Ref{Ontology: ref.Ontology, Name: cl.CanonicalName(cur)}
	}
	// Inputs the requester offers may be more specific than what the
	// provider expects; outputs and category it expects may be more
	// specific than what the provider offers.
	for i, ref := range req.Inputs {
		req.Inputs[i] = specialize(ref)
	}
	for i, ref := range req.Outputs {
		req.Outputs[i] = specialize(ref)
	}
	req.Category = specialize(req.Category)
	return req
}

// WSDLRequest derives the syntactic request for the service at the given
// index: the exact required interface of its first port type (syntactic
// discovery can only ever ask for exact structure), carrying only the
// messages that interface references.
func (w *Workload) WSDLRequest(serviceIndex int) *wsdl.Definition {
	src := w.Definitions[serviceIndex]
	pt := src.PortTypes[0]
	needed := make(map[string]bool)
	for _, op := range pt.Operations {
		if op.Input != "" {
			needed[op.Input] = true
		}
		if op.Output != "" {
			needed[op.Output] = true
		}
	}
	req := &wsdl.Definition{
		Name:            "request-" + src.Name,
		TargetNamespace: src.TargetNamespace,
		PortTypes:       []wsdl.PortType{pt},
	}
	for _, m := range src.Messages {
		if needed[m.Name] {
			req.Messages = append(req.Messages, m)
		}
	}
	return req
}

func (w *Workload) classifiedFor(uri string) *ontology.Classified {
	for i, o := range w.Ontologies {
		if o.URI == uri {
			return w.classified[i]
		}
	}
	return nil
}

// Fig2Ontology reproduces the measurement ontology of Figure 2: 99 OWL
// classes and 39 properties.
func Fig2Ontology() *ontology.Ontology {
	return Ontology(OntologyConfig{
		URI:        "http://amigo.example/gen/fig2",
		Classes:    99,
		Properties: 39,
		Seed:       2006,
	})
}

// Fig2Capabilities reproduces Figure 2's matching pair: a requested and a
// provided capability with 7 inputs and 3 outputs each, over the Figure 2
// ontology, constructed so that the provided capability matches the
// requested one.
func Fig2Capabilities() (provided, requested *profile.Capability) {
	o := Fig2Ontology()
	cl := ontology.MustClassify(o)
	rng := rand.New(rand.NewSource(2006))

	uri := o.URI
	classes := o.Classes()
	pick := func() (string, int) {
		name := classes[rng.Intn(len(classes))].Name
		idx, _ := cl.Concept(name)
		return name, idx
	}
	specialize := func(idx int) string {
		for i := 0; i < 2; i++ {
			kids := cl.Children(idx)
			if len(kids) == 0 {
				break
			}
			idx = kids[rng.Intn(len(kids))]
		}
		return cl.CanonicalName(idx)
	}

	provided = &profile.Capability{Name: "ProvidedCap"}
	requested = &profile.Capability{Name: "RequestedCap"}
	catName, catIdx := pick()
	provided.Category = ontology.Ref{Ontology: uri, Name: catName}
	requested.Category = ontology.Ref{Ontology: uri, Name: specialize(catIdx)}
	for i := 0; i < 7; i++ {
		name, idx := pick()
		provided.Inputs = append(provided.Inputs, ontology.Ref{Ontology: uri, Name: name})
		requested.Inputs = append(requested.Inputs, ontology.Ref{Ontology: uri, Name: specialize(idx)})
	}
	for i := 0; i < 3; i++ {
		name, idx := pick()
		provided.Outputs = append(provided.Outputs, ontology.Ref{Ontology: uri, Name: name})
		requested.Outputs = append(requested.Outputs, ontology.Ref{Ontology: uri, Name: specialize(idx)})
	}
	return provided, requested
}
