package registry

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"sariadne/internal/profile"
)

func TestLinearRegisterQuery(t *testing.T) {
	_, m := newFixtureDirectory(t)
	d := NewLinearDirectory(m)
	if err := d.Register(profile.WorkstationService()); err != nil {
		t.Fatal(err)
	}
	if err := d.Register(&profile.Service{}); err == nil {
		t.Fatal("accepted invalid service")
	}
	req := profile.PDAService().Required[0]
	results := d.Query(req)
	if len(results) != 1 || results[0].Distance != 3 {
		t.Fatalf("Query = %v, want SendDigitalStream at 3", results)
	}
	best, ok := d.Best(req)
	if !ok || best.Entry.Capability.Name != "SendDigitalStream" {
		t.Fatalf("Best = %v, %v", best, ok)
	}
	if d.NumCapabilities() != 2 {
		t.Fatalf("NumCapabilities = %d, want 2", d.NumCapabilities())
	}
	if d.MatchOps() == 0 {
		t.Fatal("MatchOps not counted")
	}
}

func TestLinearDeregister(t *testing.T) {
	_, m := newFixtureDirectory(t)
	d := NewLinearDirectory(m)
	if err := d.Register(profile.WorkstationService()); err != nil {
		t.Fatal(err)
	}
	if !d.Deregister("MediaWorkstation") {
		t.Fatal("Deregister failed")
	}
	if d.Deregister("MediaWorkstation") {
		t.Fatal("double Deregister succeeded")
	}
	if d.NumCapabilities() != 0 {
		t.Fatal("entries remain after Deregister")
	}
	if _, ok := d.Best(profile.PDAService().Required[0]); ok {
		t.Fatal("Best found something in an empty directory")
	}
}

// TestPropertyLinearAndClassifiedAgree: both directory implementations
// answer every query with the same matches and distances.
func TestPropertyLinearAndClassifiedAgree(t *testing.T) {
	categories := []string{"Server", "DigitalServer", "StreamingServer", "VideoServer", "GameServer"}
	inputs := []string{"Resource", "DigitalResource", "VideoResource", "GameResource", "Movie"}
	outputs := []string{"Stream", "VideoStream", "AudioStream"}

	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		classified, m := newFixtureDirectory(t)
		linear := NewLinearDirectory(m)
		n := rng.Intn(12) + 1
		for i := 0; i < n; i++ {
			c := capability(
				fmt.Sprintf("C%d", i),
				categories[rng.Intn(len(categories))],
				inputs[rng.Intn(len(inputs))],
				outputs[rng.Intn(len(outputs))],
			)
			s := service(fmt.Sprintf("s%d", i), c)
			if err := classified.Register(s); err != nil {
				return false
			}
			if err := linear.Register(s); err != nil {
				return false
			}
		}
		for trial := 0; trial < 5; trial++ {
			req := capability("Req",
				categories[rng.Intn(len(categories))],
				inputs[rng.Intn(len(inputs))],
				outputs[rng.Intn(len(outputs))],
			)
			a := classified.Query(req)
			b := linear.Query(req)
			if len(a) != len(b) {
				t.Logf("seed %d: %d vs %d results", seed, len(a), len(b))
				return false
			}
			for i := range a {
				if a[i].Entry.Capability.Name != b[i].Entry.Capability.Name || a[i].Distance != b[i].Distance {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestLinearConcurrentQueries is the regression test for the read-path
// fix found while converting matchOps to an atomic: Query used to take
// the write lock solely to bump the mu-protected counter, serializing
// every reader. Under -race this proves queries can share the read lock
// with each other and with MatchOps/NumCapabilities while a writer
// churns registrations, and that no match operation goes uncounted.
func TestLinearConcurrentQueries(t *testing.T) {
	_, m := newFixtureDirectory(t)
	d := NewLinearDirectory(m)
	if err := d.Register(profile.WorkstationService()); err != nil {
		t.Fatal(err)
	}
	req := profile.PDAService().Required[0]
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				d.Query(req)
				d.MatchOps()
				d.NumCapabilities()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if i%3 == 0 {
				d.Deregister("PDAVideoPlayer")
			} else if err := d.Register(profile.PDAService()); err != nil {
				t.Errorf("register: %v", err)
			}
		}
	}()
	wg.Wait()
	// Each query matched against at least the workstation's entries, so
	// the atomic counter must have kept pace with all readers.
	if ops := d.MatchOps(); ops < 4*iters {
		t.Fatalf("MatchOps = %d, want at least %d", ops, 4*iters)
	}
}
