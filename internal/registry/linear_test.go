package registry

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"sariadne/internal/profile"
)

func TestLinearRegisterQuery(t *testing.T) {
	_, m := newFixtureDirectory(t)
	d := NewLinearDirectory(m)
	if err := d.Register(profile.WorkstationService()); err != nil {
		t.Fatal(err)
	}
	if err := d.Register(&profile.Service{}); err == nil {
		t.Fatal("accepted invalid service")
	}
	req := profile.PDAService().Required[0]
	results := d.Query(req)
	if len(results) != 1 || results[0].Distance != 3 {
		t.Fatalf("Query = %v, want SendDigitalStream at 3", results)
	}
	best, ok := d.Best(req)
	if !ok || best.Entry.Capability.Name != "SendDigitalStream" {
		t.Fatalf("Best = %v, %v", best, ok)
	}
	if d.NumCapabilities() != 2 {
		t.Fatalf("NumCapabilities = %d, want 2", d.NumCapabilities())
	}
	if d.MatchOps() == 0 {
		t.Fatal("MatchOps not counted")
	}
}

func TestLinearDeregister(t *testing.T) {
	_, m := newFixtureDirectory(t)
	d := NewLinearDirectory(m)
	if err := d.Register(profile.WorkstationService()); err != nil {
		t.Fatal(err)
	}
	if !d.Deregister("MediaWorkstation") {
		t.Fatal("Deregister failed")
	}
	if d.Deregister("MediaWorkstation") {
		t.Fatal("double Deregister succeeded")
	}
	if d.NumCapabilities() != 0 {
		t.Fatal("entries remain after Deregister")
	}
	if _, ok := d.Best(profile.PDAService().Required[0]); ok {
		t.Fatal("Best found something in an empty directory")
	}
}

// TestPropertyLinearAndClassifiedAgree: both directory implementations
// answer every query with the same matches and distances.
func TestPropertyLinearAndClassifiedAgree(t *testing.T) {
	categories := []string{"Server", "DigitalServer", "StreamingServer", "VideoServer", "GameServer"}
	inputs := []string{"Resource", "DigitalResource", "VideoResource", "GameResource", "Movie"}
	outputs := []string{"Stream", "VideoStream", "AudioStream"}

	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		classified, m := newFixtureDirectory(t)
		linear := NewLinearDirectory(m)
		n := rng.Intn(12) + 1
		for i := 0; i < n; i++ {
			c := capability(
				fmt.Sprintf("C%d", i),
				categories[rng.Intn(len(categories))],
				inputs[rng.Intn(len(inputs))],
				outputs[rng.Intn(len(outputs))],
			)
			s := service(fmt.Sprintf("s%d", i), c)
			if err := classified.Register(s); err != nil {
				return false
			}
			if err := linear.Register(s); err != nil {
				return false
			}
		}
		for trial := 0; trial < 5; trial++ {
			req := capability("Req",
				categories[rng.Intn(len(categories))],
				inputs[rng.Intn(len(inputs))],
				outputs[rng.Intn(len(outputs))],
			)
			a := classified.Query(req)
			b := linear.Query(req)
			if len(a) != len(b) {
				t.Logf("seed %d: %d vs %d results", seed, len(a), len(b))
				return false
			}
			for i := range a {
				if a[i].Entry.Capability.Name != b[i].Entry.Capability.Name || a[i].Distance != b[i].Distance {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
