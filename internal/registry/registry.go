// Package registry implements the directory-side classification of service
// advertisements from Section 3.3 of the paper: capabilities of networked
// services are organized into directed acyclic graphs of related
// capabilities, indexed by the set of ontologies they use, so that a
// request is matched against a handful of graph roots instead of every
// advertisement in the directory.
//
// Graph structure (paper, Section 3.3):
//
//   - two capabilities that match in both directions with semantic
//     distance 0 share a single vertex;
//   - otherwise, when Match(C1, C2) holds, C1 and C2 are distinct vertices
//     with a directed edge from the more generic C1 to C2;
//   - Roots(G) are vertices without predecessors (the most generic
//     capabilities), Leaves(G) those without successors.
//
// The Match relation is transitive, which gives the two facts the paper's
// algorithms rely on: if no root of a graph matches a request, nothing in
// the graph does (sound filtering), and the set of vertices matching a
// request is closed downward from the roots that match (so insertion and
// query only ever traverse matching regions).
package registry

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sariadne/internal/match"
	"sariadne/internal/profile"
)

// Common errors.
var (
	// ErrInvalidCapability is returned when registering a capability that
	// fails validation.
	ErrInvalidCapability = errors.New("registry: invalid capability")
)

// Entry is one advertised capability with its provenance.
type Entry struct {
	// Capability is the advertised provided capability.
	Capability *profile.Capability
	// Service and Provider identify the advertisement's origin.
	Service  string
	Provider string
}

// String renders the entry as service/capability.
func (e *Entry) String() string {
	return e.Service + "/" + e.Capability.Name
}

// Result is a query answer: a matching advertisement and its semantic
// distance from the request (lower is better).
type Result struct {
	Entry    *Entry
	Distance int
}

// vertex is an equivalence class of capabilities in one graph.
type vertex struct {
	// rep is the representative capability used for graph navigation; all
	// entries in the vertex match rep mutually.
	rep     *profile.Capability
	entries []*Entry
	preds   map[*vertex]struct{}
	succs   map[*vertex]struct{}
}

// graph is one DAG of related capabilities plus its ontology index.
type graph struct {
	// ontologies is the union of ontology URIs used by member capabilities.
	ontologies map[string]struct{}
	vertices   map[*vertex]struct{}
	roots      map[*vertex]struct{}
	leaves     map[*vertex]struct{}
}

func newGraph() *graph {
	return &graph{
		ontologies: make(map[string]struct{}),
		vertices:   make(map[*vertex]struct{}),
		roots:      make(map[*vertex]struct{}),
		leaves:     make(map[*vertex]struct{}),
	}
}

// covers reports whether the graph's ontology set contains every URI the
// capability uses — the paper's graph pre-selection index.
func (g *graph) covers(uris []string) bool {
	for _, u := range uris {
		if _, ok := g.ontologies[u]; !ok {
			return false
		}
	}
	return true
}

func (g *graph) addOntologies(uris []string) {
	for _, u := range uris {
		g.ontologies[u] = struct{}{}
	}
}

// Directory is a semantic service directory: it caches advertised
// capabilities classified into graphs and answers capability queries.
// Directory is safe for concurrent use: writers serialize on mu and
// publish immutable snapshots through snap, which readers load without
// taking any lock (see snapshot.go for the publish invariant).
type Directory struct {
	// mu serializes writers only; the read path never takes it.
	mu      sync.Mutex
	matcher match.ConceptMatcher
	graphs  []*graph // guarded by mu
	// byOntology indexes graphs by the ontology URIs they contain, so
	// query-time graph pre-selection does not scan every graph.
	byOntology map[string][]*graph // guarded by mu
	// byService tracks entries for deregistration.
	byService map[string][]*Entry // guarded by mu
	// compiled caches the immutable compiled form of each graph;
	// dirty marks graphs whose cached form is stale, so a publish
	// recompiles only what the write touched (copy-on-write at graph
	// granularity).
	compiled map[*graph]*snapGraph // guarded by mu
	dirty    map[*graph]struct{}   // guarded by mu
	// snap is the published immutable view served to readers.
	snap atomic.Pointer[snapshot]
	// matchOps counts capability-level match operations (monotonic).
	matchOps atomic.Uint64
}

// NewDirectory returns an empty directory matching with m.
func NewDirectory(m match.ConceptMatcher) *Directory {
	d := &Directory{
		matcher:    m,
		byOntology: make(map[string][]*graph),
		byService:  make(map[string][]*Entry),
		compiled:   make(map[*graph]*snapGraph),
		dirty:      make(map[*graph]struct{}),
	}
	d.snap.Store(newSnapshot(d, d.compiled))
	return d
}

// markDirtyLocked records that g's compiled form is stale.
func (d *Directory) markDirtyLocked(g *graph) {
	d.dirty[g] = struct{}{}
}

// publishLocked recompiles every dirty graph, reusing the cached compiled
// form of clean ones, and atomically publishes the new snapshot. Writers
// call it once per Register/Deregister, so a service advertising many
// capabilities pays for one snapshot (and one ontology-key regeneration),
// not one per capability.
func (d *Directory) publishLocked() {
	compiled := make(map[*graph]*snapGraph, len(d.graphs))
	for _, g := range d.graphs {
		sg, ok := d.compiled[g]
		if _, stale := d.dirty[g]; stale || !ok {
			sg = newSnapGraph(g)
		}
		compiled[g] = sg
	}
	d.compiled = compiled
	d.dirty = make(map[*graph]struct{})
	d.snap.Store(newSnapshot(d, compiled))
}

// indexGraphLocked records g under every URI in uris not yet indexed for it.
func (d *Directory) indexGraphLocked(g *graph, uris []string) {
	for _, u := range uris {
		if _, ok := g.ontologies[u]; ok {
			continue // already indexed when first added
		}
		d.byOntology[u] = append(d.byOntology[u], g)
	}
	g.addOntologies(uris)
}

// unindexGraphLocked removes g from the ontology index.
func (d *Directory) unindexGraphLocked(g *graph) {
	for u := range g.ontologies {
		list := d.byOntology[u]
		for i, gg := range list {
			if gg == g {
				d.byOntology[u] = append(list[:i], list[i+1:]...)
				break
			}
		}
		if len(d.byOntology[u]) == 0 {
			delete(d.byOntology, u)
		}
	}
}

// candidateGraphsLocked returns the graphs whose ontology set covers uris,
// using the index: it scans only the graphs listed under the rarest URI.
// With no URI constraint every graph qualifies.
func (d *Directory) candidateGraphsLocked(uris []string) []*graph {
	if len(uris) == 0 {
		return d.graphs
	}
	var smallest []*graph
	for i, u := range uris {
		list, ok := d.byOntology[u]
		if !ok {
			return nil
		}
		if i == 0 || len(list) < len(smallest) {
			smallest = list
		}
	}
	out := make([]*graph, 0, len(smallest))
	for _, g := range smallest {
		if g.covers(uris) {
			out = append(out, g)
		}
	}
	return out
}

// distance wraps match.SemanticDistance and counts match operations, the
// quantity the paper's directory optimization minimizes.
func (d *Directory) distance(c1, c2 *profile.Capability) (int, bool) {
	d.matchOps.Add(1)
	return match.SemanticDistance(d.matcher, c1, c2)
}

func (d *Directory) matches(c1, c2 *profile.Capability) bool {
	_, ok := d.distance(c1, c2)
	return ok
}

// MatchOps returns the cumulative number of capability-level semantic
// match operations performed by the directory (insertions and queries).
func (d *Directory) MatchOps() uint64 { return d.matchOps.Load() }

// NumGraphs returns the number of capability graphs.
func (d *Directory) NumGraphs() int {
	return len(d.snap.Load().graphs)
}

// NumCapabilities returns the number of stored advertisements (entries).
func (d *Directory) NumCapabilities() int {
	return d.snap.Load().stats.Entries
}

// Services returns the sorted names of registered services.
func (d *Directory) Services() []string {
	return append([]string(nil), d.snap.Load().services...)
}

// Register classifies every provided capability of the service into the
// directory's graphs (the paper's "adding a new service advertisement").
// Re-registering a service name replaces its previous advertisement, so
// periodic re-publication after directory churn stays idempotent.
func (d *Directory) Register(s *profile.Service) error {
	if err := s.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidCapability, err)
	}
	start := time.Now()
	opsBefore := d.matchOps.Load()
	d.mu.Lock()
	defer d.mu.Unlock()
	if old, ok := d.byService[s.Name]; ok {
		delete(d.byService, s.Name)
		for _, e := range old {
			d.removeEntryLocked(e)
		}
	}
	for _, c := range s.Provided {
		e := &Entry{Capability: c.Clone(), Service: s.Name, Provider: s.Provider}
		d.insertLocked(e)
		d.byService[s.Name] = append(d.byService[s.Name], e)
	}
	d.publishLocked()
	match.CountOps(d.matcher, d.matchOps.Load()-opsBefore)
	insertSeconds.ObserveSince(start)
	return nil
}

// insert classifies one entry. Candidate graphs are those whose ontology
// index covers the capability's ontologies; the first graph where the
// capability relates to existing vertices receives it, otherwise a new
// graph is created (capabilities unrelated to everything become singleton
// graphs, preserving the "graphs contain related capabilities" invariant).
func (d *Directory) insertLocked(e *Entry) {
	c := e.Capability
	uris := c.Ontologies()
	for _, g := range d.candidateGraphsLocked(uris) {
		if d.insertIntoGraphLocked(g, e) {
			return
		}
	}
	// No graph accepted the capability: start a new one.
	g := newGraph()
	v := &vertex{rep: c, entries: []*Entry{e}, preds: map[*vertex]struct{}{}, succs: map[*vertex]struct{}{}}
	g.vertices[v] = struct{}{}
	g.roots[v] = struct{}{}
	g.leaves[v] = struct{}{}
	d.graphs = append(d.graphs, g)
	d.indexGraphLocked(g, uris)
	d.markDirtyLocked(g)
	graphsGauge.Add(1)
	verticesGauge.Add(1)
	entriesGauge.Add(1)
	insertDepth.ObserveInt(0)
}

// insertIntoGraphLocked tries to place the entry inside g. It returns false when
// the capability is unrelated to every vertex of g.
//
// The matching region M = {V : Match(V, C)} is explored top-down from the
// matching roots (M is downward-closed along edges into it); the region
// S = {V : Match(C, V)} is explored bottom-up from the matching leaves.
// Parents of C are the minimal frontier of M, children the maximal
// frontier of S — a robust completion of the paper's root/leaf probing
// algorithm.
func (d *Directory) insertIntoGraphLocked(g *graph, e *Entry) bool {
	c := e.Capability

	// M: vertices that subsume C (can substitute for C).
	m := make(map[*vertex]struct{})
	var frontier []*vertex
	for r := range g.roots {
		if d.matches(r.rep, c) {
			m[r] = struct{}{}
			frontier = append(frontier, r)
		}
	}
	depth := 0
	for len(frontier) > 0 {
		var next []*vertex
		for _, v := range frontier {
			for s := range v.succs {
				if _, seen := m[s]; seen {
					continue
				}
				if d.matches(s.rep, c) {
					m[s] = struct{}{}
					next = append(next, s)
				}
			}
		}
		if len(next) > 0 {
			depth++
		}
		frontier = next
	}

	// S: vertices that C subsumes.
	sset := make(map[*vertex]struct{})
	frontier = frontier[:0]
	for l := range g.leaves {
		if d.matches(c, l.rep) {
			sset[l] = struct{}{}
			frontier = append(frontier, l)
		}
	}
	for len(frontier) > 0 {
		var next []*vertex
		for _, v := range frontier {
			for p := range v.preds {
				if _, seen := sset[p]; seen {
					continue
				}
				if d.matches(c, p.rep) {
					sset[p] = struct{}{}
					next = append(next, p)
				}
			}
		}
		frontier = next
	}

	if len(m) == 0 && len(sset) == 0 {
		return false
	}

	// Mutual match: join the existing equivalence vertex. Transitivity
	// guarantees at most one vertex sits in both regions.
	for v := range m {
		if _, both := sset[v]; both {
			v.entries = append(v.entries, e)
			d.indexGraphLocked(g, c.Ontologies())
			d.markDirtyLocked(g)
			entriesGauge.Add(1)
			insertDepth.ObserveInt(int64(depth))
			return true
		}
	}

	// Parents: minimal frontier of M (no successor also in M).
	parents := make([]*vertex, 0, len(m))
	for v := range m {
		minimal := true
		for s := range v.succs {
			if _, ok := m[s]; ok {
				minimal = false
				break
			}
		}
		if minimal {
			parents = append(parents, v)
		}
	}
	// Children: maximal frontier of S (no predecessor also in S).
	children := make([]*vertex, 0, len(sset))
	for v := range sset {
		maximal := true
		for p := range v.preds {
			if _, ok := sset[p]; ok {
				maximal = false
				break
			}
		}
		if maximal {
			children = append(children, v)
		}
	}

	nv := &vertex{rep: c, entries: []*Entry{e}, preds: map[*vertex]struct{}{}, succs: map[*vertex]struct{}{}}
	g.vertices[nv] = struct{}{}
	edgeDelta := 0
	for _, p := range parents {
		// Drop direct edges p→child that the new vertex now mediates.
		for _, ch := range children {
			if _, ok := p.succs[ch]; ok {
				delete(p.succs, ch)
				delete(ch.preds, p)
				edgeDelta--
			}
		}
		p.succs[nv] = struct{}{}
		nv.preds[p] = struct{}{}
		edgeDelta++
		delete(g.leaves, p)
	}
	for _, ch := range children {
		nv.succs[ch] = struct{}{}
		ch.preds[nv] = struct{}{}
		edgeDelta++
		delete(g.roots, ch)
	}
	if len(parents) == 0 {
		g.roots[nv] = struct{}{}
	}
	if len(children) == 0 {
		g.leaves[nv] = struct{}{}
	}
	d.indexGraphLocked(g, c.Ontologies())
	d.markDirtyLocked(g)
	verticesGauge.Add(1)
	entriesGauge.Add(1)
	edgesGauge.Add(int64(edgeDelta))
	insertDepth.ObserveInt(int64(depth))
	return true
}

// Deregister removes every capability advertised by the named service.
// It reports whether the service was present.
func (d *Directory) Deregister(service string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	entries, ok := d.byService[service]
	if !ok {
		return false
	}
	delete(d.byService, service)
	for _, e := range entries {
		d.removeEntryLocked(e)
	}
	d.publishLocked()
	return true
}

// removeEntryLocked drops one entry; vertices left without entries are removed
// and their predecessors reconnected to their successors.
func (d *Directory) removeEntryLocked(e *Entry) {
	for gi, g := range d.graphs {
		for v := range g.vertices {
			idx := -1
			for i, ve := range v.entries {
				if ve == e {
					idx = i
					break
				}
			}
			if idx < 0 {
				continue
			}
			v.entries = append(v.entries[:idx], v.entries[idx+1:]...)
			d.markDirtyLocked(g)
			entriesGauge.Add(-1)
			if len(v.entries) > 0 {
				return
			}
			// Vertex emptied: splice it out.
			delete(g.vertices, v)
			delete(g.roots, v)
			delete(g.leaves, v)
			edgeDelta := -len(v.preds) - len(v.succs)
			for p := range v.preds {
				delete(p.succs, v)
			}
			for s := range v.succs {
				delete(s.preds, v)
			}
			for p := range v.preds {
				for s := range v.succs {
					// Reconnect unless another path already implies it.
					if _, ok := p.succs[s]; !ok {
						p.succs[s] = struct{}{}
						s.preds[p] = struct{}{}
						edgeDelta++
					}
				}
			}
			verticesGauge.Add(-1)
			edgesGauge.Add(int64(edgeDelta))
			for p := range v.preds {
				if len(p.succs) == 0 {
					g.leaves[p] = struct{}{}
				}
			}
			for s := range v.succs {
				if len(s.preds) == 0 {
					g.roots[s] = struct{}{}
				}
			}
			if len(g.vertices) == 0 {
				d.graphs = append(d.graphs[:gi], d.graphs[gi+1:]...)
				d.unindexGraphLocked(g)
				graphsGauge.Add(-1)
			}
			return
		}
	}
}

// Query returns every advertisement matching the required capability,
// sorted by ascending semantic distance (ties broken by service then
// capability name for determinism). It implements the paper's "answering
// user requests": graphs are pre-selected by ontology index, only matching
// roots are expanded, and only matching vertices are traversed.
//
// The read path is lock-free: it loads the current immutable snapshot
// and walks compiled graphs with pooled scratch, so queries never block
// writers and scale with reader parallelism.
func (d *Directory) Query(req *profile.Capability) []Result {
	start := time.Now()
	opsBefore := d.matchOps.Load()
	rootProbes := 0
	snap := d.snap.Load()
	// Filter graphs by the ontologies a matching provider must use (the
	// request's outputs and properties); the request's offered inputs may
	// go unused by a provider, so their ontologies must not prune.
	uris := req.RequiredOntologies()
	var results []Result
	for _, g := range snap.candidateGraphs(uris) {
		sp := scratchFor(len(g.vertices))
		matched := *sp
		rootProbes += d.walkGraph(g, req, matched)
		for i := range g.vertices {
			if !matched[i] {
				continue
			}
			for _, e := range g.vertices[i].entries {
				dist, ok := d.distance(e.Capability, req)
				if !ok {
					continue
				}
				// QoS constraints filter individual advertisements after
				// functional matching; they stay out of the graph order
				// because range constraints are not transitive.
				if !profile.QoSSatisfies(e.Capability, req) {
					continue
				}
				results = append(results, Result{Entry: e, Distance: dist})
			}
		}
		matchScratch.Put(sp)
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Distance != results[j].Distance {
			return results[i].Distance < results[j].Distance
		}
		if results[i].Entry.Service != results[j].Entry.Service {
			return results[i].Entry.Service < results[j].Entry.Service
		}
		return results[i].Entry.Capability.Name < results[j].Entry.Capability.Name
	})
	rootProbesTotal.Add(uint64(rootProbes))
	match.CountOps(d.matcher, d.matchOps.Load()-opsBefore)
	querySeconds.ObserveSince(start)
	return results
}

// walkGraph marks the vertices of g matching req in the caller-supplied
// scratch bitmap and returns the number of root probes. Because the
// compiled vertex slice is topologically ordered, one forward scan
// visits parents before children: a non-root vertex is probed exactly
// when some predecessor matched, which performs the same match
// operations as the paper's frontier expansion without allocating
// traversal state.
//
//sdp:hotpath
func (d *Directory) walkGraph(g *snapGraph, req *profile.Capability, matched []bool) int {
	rootProbes := 0
	for i := range g.vertices {
		v := &g.vertices[i]
		probe := v.root
		if probe {
			rootProbes++
		} else {
			for _, p := range v.preds {
				if matched[p] {
					probe = true
					break
				}
			}
		}
		matched[i] = probe && d.matches(v.rep, req)
	}
	return rootProbes
}

// Best returns the advertisement with minimal semantic distance from the
// request, if any matches.
func (d *Directory) Best(req *profile.Capability) (Result, bool) {
	results := d.Query(req)
	if len(results) == 0 {
		return Result{}, false
	}
	return results[0], true
}

// Ontologies returns the sorted union of ontology URIs across all graphs;
// Bloom summaries (Section 4) hash over capability ontology sets, which
// this exposes for tests and diagnostics.
func (d *Directory) Ontologies() []string {
	return append([]string(nil), d.snap.Load().ontologies...)
}

// OntologyKeys returns the distinct capability ontology-set keys stored in
// the directory, the unit hashed into Bloom filters by Section 4. The key
// list is regenerated once per published snapshot (a batched write-side
// cost), so summary rebuilds on the read side are a lock-free copy.
func (d *Directory) OntologyKeys() []string {
	return append([]string(nil), d.snap.Load().ontologyKeys...)
}

// Snapshot returns a human-readable dump of the graph structure, mainly
// for debugging and the examples. It renders the current published
// snapshot, so it is safe to call concurrently with writers.
func (d *Directory) Snapshot() string {
	snap := d.snap.Load()
	var b strings.Builder
	for i, g := range snap.graphs {
		fmt.Fprintf(&b, "graph %d (ontologies: %s)\n", i, strings.Join(g.ontologies, ", "))
		order := make([]int, len(g.vertices))
		for j := range order {
			order[j] = j
		}
		sort.Slice(order, func(a, c int) bool {
			return g.vertices[order[a]].rep.Name < g.vertices[order[c]].rep.Name
		})
		for _, j := range order {
			v := &g.vertices[j]
			names := make([]string, 0, len(v.entries))
			for _, e := range v.entries {
				names = append(names, e.String())
			}
			succs := make([]string, 0, len(v.succs))
			for _, s := range v.succs {
				succs = append(succs, g.vertices[s].rep.Name)
			}
			sort.Strings(succs)
			marker := ""
			if v.root {
				marker += " [root]"
			}
			if v.leaf {
				marker += " [leaf]"
			}
			fmt.Fprintf(&b, "  %s%s -> {%s} entries: %s\n", v.rep.Name, marker, strings.Join(succs, ", "), strings.Join(names, ", "))
		}
	}
	return b.String()
}

// checkInvariants verifies structural invariants; tests call it after
// mutation sequences. It returns a description of the first violation.
func (d *Directory) checkInvariants() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for gi, g := range d.graphs {
		// Roots/leaves bookkeeping.
		for v := range g.vertices {
			if (len(v.preds) == 0) != isIn(g.roots, v) {
				return fmt.Errorf("graph %d: root bookkeeping wrong for %s", gi, v.rep.Name)
			}
			if (len(v.succs) == 0) != isIn(g.leaves, v) {
				return fmt.Errorf("graph %d: leaf bookkeeping wrong for %s", gi, v.rep.Name)
			}
			for s := range v.succs {
				if _, ok := s.preds[v]; !ok {
					return fmt.Errorf("graph %d: asymmetric edge %s -> %s", gi, v.rep.Name, s.rep.Name)
				}
			}
			if len(v.entries) == 0 {
				return fmt.Errorf("graph %d: empty vertex %s", gi, v.rep.Name)
			}
		}
		// Acyclicity via DFS coloring.
		color := make(map[*vertex]int)
		var cyc func(v *vertex) bool
		cyc = func(v *vertex) bool {
			color[v] = 1
			for s := range v.succs {
				switch color[s] {
				case 1:
					return true
				case 0:
					if cyc(s) {
						return true
					}
				}
			}
			color[v] = 2
			return false
		}
		for v := range g.vertices {
			if color[v] == 0 && cyc(v) {
				return fmt.Errorf("graph %d: cycle detected", gi)
			}
		}
		// Edges respect Match.
		for v := range g.vertices {
			for s := range v.succs {
				if !match.Match(d.matcher, v.rep, s.rep) {
					return fmt.Errorf("graph %d: edge %s -> %s violates Match", gi, v.rep.Name, s.rep.Name)
				}
			}
		}
	}
	// The published snapshot must agree with the builder state: same
	// graph count and entry total, and every compiled graph genuinely
	// topologically ordered with consistent root/leaf flags.
	snap := d.snap.Load()
	if len(snap.graphs) != len(d.graphs) {
		return fmt.Errorf("snapshot has %d graphs, builder %d", len(snap.graphs), len(d.graphs))
	}
	wantEntries := 0
	for _, entries := range d.byService {
		wantEntries += len(entries)
	}
	if snap.stats.Entries != wantEntries {
		return fmt.Errorf("snapshot has %d entries, builder %d", snap.stats.Entries, wantEntries)
	}
	for gi, sg := range snap.graphs {
		if len(sg.vertices) != len(d.graphs[gi].vertices) {
			return fmt.Errorf("snapshot graph %d has %d vertices, builder %d", gi, len(sg.vertices), len(d.graphs[gi].vertices))
		}
		for i := range sg.vertices {
			v := &sg.vertices[i]
			if v.root != (len(v.preds) == 0) {
				return fmt.Errorf("snapshot graph %d: root flag wrong for %s", gi, v.rep.Name)
			}
			if v.leaf != (len(v.succs) == 0) {
				return fmt.Errorf("snapshot graph %d: leaf flag wrong for %s", gi, v.rep.Name)
			}
			for _, p := range v.preds {
				if int(p) >= i {
					return fmt.Errorf("snapshot graph %d: vertex %d not topologically after pred %d", gi, i, p)
				}
			}
		}
	}
	return nil
}

func isIn(set map[*vertex]struct{}, v *vertex) bool {
	_, ok := set[v]
	return ok
}

// Stats summarizes the directory's graph structure for diagnostics and
// capacity monitoring.
type Stats struct {
	Graphs   int
	Vertices int
	Edges    int
	Entries  int
	// MaxGraphVertices is the size of the largest graph.
	MaxGraphVertices int
	// Roots and Leaves count across all graphs.
	Roots  int
	Leaves int
}

// Stats returns the structural counters of the current published
// snapshot. The counters are precomputed at publish time, so this is a
// lock-free pointer load.
func (d *Directory) Stats() Stats {
	return d.snap.Load().stats
}
