package registry

import (
	"testing"

	"sariadne/internal/profile"
)

// TestQueryQoSFilter: functional matches that violate the request's QoS
// constraints are filtered out of query answers, in both directory
// implementations.
func TestQueryQoSFilter(t *testing.T) {
	d, m := newFixtureDirectory(t)
	lin := NewLinearDirectory(m)

	fast := capability("FastStream", "VideoServer", "VideoResource", "Stream")
	fast.QoSProvided = []profile.QoSValue{{Name: "latencyMs", Value: 10}}
	slow := capability("SlowStream", "VideoServer", "VideoResource", "Stream")
	slow.QoSProvided = []profile.QoSValue{{Name: "latencyMs", Value: 200}}
	unknown := capability("OpaqueStream", "VideoServer", "VideoResource", "Stream")

	for i, c := range []*profile.Capability{fast, slow, unknown} {
		s := service([]string{"sf", "ss", "su"}[i], c)
		if err := d.Register(s); err != nil {
			t.Fatal(err)
		}
		if err := lin.Register(s); err != nil {
			t.Fatal(err)
		}
	}

	req := capability("Req", "VideoServer", "VideoResource", "Stream")
	req.QoSRequired = []profile.QoSConstraint{
		{Name: "latencyMs", Min: profile.Unbounded(), Max: 50},
	}
	for name, results := range map[string][]Result{
		"classified": d.Query(req),
		"linear":     lin.Query(req),
	} {
		if len(results) != 1 || results[0].Entry.Capability.Name != "FastStream" {
			t.Errorf("%s: results = %v, want FastStream only", name, results)
		}
	}

	// Without constraints all three qualify.
	req.QoSRequired = nil
	if results := d.Query(req); len(results) != 3 {
		t.Fatalf("unconstrained results = %v, want 3", results)
	}
}
