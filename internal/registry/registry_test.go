package registry

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"sariadne/internal/codes"
	"sariadne/internal/match"
	"sariadne/internal/ontology"
	"sariadne/internal/profile"
)

// newFixtureDirectory builds a directory wired to the Figure 1 ontologies.
func newFixtureDirectory(t testing.TB) (*Directory, match.ConceptMatcher) {
	t.Helper()
	reg := codes.NewRegistry()
	for _, o := range []*ontology.Ontology{profile.MediaOntology(), profile.ServersOntology()} {
		reg.Register(codes.MustEncode(ontology.MustClassify(o), codes.DefaultParams))
	}
	m := match.NewCodeMatcher(reg)
	return NewDirectory(m), m
}

func mediaRef(name string) ontology.Ref {
	return ontology.Ref{Ontology: profile.MediaOntologyURI, Name: name}
}

func serversRef(name string) ontology.Ref {
	return ontology.Ref{Ontology: profile.ServersOntologyURI, Name: name}
}

// capability builds a test capability with one input/output and a category.
func capability(name, category, input, output string) *profile.Capability {
	c := &profile.Capability{Name: name, Category: serversRef(category)}
	if input != "" {
		c.Inputs = []ontology.Ref{mediaRef(input)}
	}
	if output != "" {
		c.Outputs = []ontology.Ref{mediaRef(output)}
	}
	return c
}

func service(name string, caps ...*profile.Capability) *profile.Service {
	return &profile.Service{Name: name, Provider: name + "-host", Provided: caps}
}

func TestRegisterAndQueryFigure1(t *testing.T) {
	d, _ := newFixtureDirectory(t)
	if err := d.Register(profile.WorkstationService()); err != nil {
		t.Fatal(err)
	}
	req := profile.PDAService().Required[0]
	results := d.Query(req)
	if len(results) != 1 {
		t.Fatalf("Query returned %d results, want 1: %v", len(results), results)
	}
	if got := results[0].Entry.Capability.Name; got != "SendDigitalStream" {
		t.Fatalf("matched %q, want SendDigitalStream", got)
	}
	if results[0].Distance != 3 {
		t.Fatalf("distance = %d, want 3 (paper's worked example)", results[0].Distance)
	}
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterInvalidService(t *testing.T) {
	d, _ := newFixtureDirectory(t)
	if err := d.Register(&profile.Service{}); err == nil {
		t.Fatal("Register accepted invalid service")
	}
}

func TestGraphStructureGenericToSpecific(t *testing.T) {
	d, _ := newFixtureDirectory(t)
	// Three capabilities forming a chain: digital ⊐ streaming video ⊐ movie.
	general := capability("ServeDigital", "DigitalServer", "DigitalResource", "Stream")
	middle := capability("ServeVideo", "VideoServer", "VideoResource", "Stream")
	specific := capability("ServeMovies", "VideoServer", "Movie", "Stream")

	// Insert out of order to exercise all insertion positions.
	for i, c := range []*profile.Capability{middle, general, specific} {
		if err := d.Register(service(fmt.Sprintf("s%d", i), c)); err != nil {
			t.Fatal(err)
		}
		if err := d.checkInvariants(); err != nil {
			t.Fatalf("after insert %d: %v", i, err)
		}
	}
	if d.NumGraphs() != 1 {
		t.Fatalf("NumGraphs = %d, want 1\n%s", d.NumGraphs(), d.Snapshot())
	}

	snap := d.Snapshot()
	if !strings.Contains(snap, "ServeDigital [root]") {
		t.Errorf("ServeDigital should be the root:\n%s", snap)
	}
	if !strings.Contains(snap, "ServeMovies") || !strings.Contains(snap, "[leaf]") {
		t.Errorf("ServeMovies should be present and a leaf exists:\n%s", snap)
	}

	// A movie request matches all three, ranked most-specific first.
	req := capability("WantMovie", "VideoServer", "Movie", "Stream")
	// The request offers Movie input and expects Stream output; category
	// required VideoServer.
	results := d.Query(req)
	if len(results) != 3 {
		t.Fatalf("Query = %v, want 3 matches\n%s", results, snap)
	}
	if results[0].Entry.Capability.Name != "ServeMovies" {
		t.Errorf("best match = %s, want ServeMovies", results[0].Entry.Capability.Name)
	}
	for i := 1; i < len(results); i++ {
		if results[i-1].Distance > results[i].Distance {
			t.Errorf("results not sorted by distance: %v", results)
		}
	}
}

func TestEquivalentCapabilitiesShareVertex(t *testing.T) {
	d, _ := newFixtureDirectory(t)
	a := capability("StreamA", "VideoServer", "VideoResource", "Stream")
	b := capability("StreamB", "VideoServer", "VideoResource", "Stream")
	if err := d.Register(service("sa", a)); err != nil {
		t.Fatal(err)
	}
	if err := d.Register(service("sb", b)); err != nil {
		t.Fatal(err)
	}
	if d.NumGraphs() != 1 {
		t.Fatalf("NumGraphs = %d, want 1", d.NumGraphs())
	}
	// One vertex holding two entries: snapshot shows both on one line.
	snap := d.Snapshot()
	if !strings.Contains(snap, "sa/StreamA") || !strings.Contains(snap, "sb/StreamB") {
		t.Fatalf("entries missing:\n%s", snap)
	}
	lines := strings.Count(snap, "entries:")
	if lines != 1 {
		t.Fatalf("want 1 vertex, snapshot:\n%s", snap)
	}
}

func TestUnrelatedCapabilitiesSeparateGraphs(t *testing.T) {
	d, _ := newFixtureDirectory(t)
	video := capability("ServeVideo", "VideoServer", "VideoResource", "Stream")
	game := capability("ServeGame", "GameServer", "GameResource", "Stream")
	if err := d.Register(service("sv", video)); err != nil {
		t.Fatal(err)
	}
	if err := d.Register(service("sg", game)); err != nil {
		t.Fatal(err)
	}
	// Same ontologies but unrelated capabilities: two graphs.
	if d.NumGraphs() != 2 {
		t.Fatalf("NumGraphs = %d, want 2\n%s", d.NumGraphs(), d.Snapshot())
	}
}

func TestDiamondInsertion(t *testing.T) {
	d, _ := newFixtureDirectory(t)
	top := capability("Top", "DigitalServer", "DigitalResource", "Stream")
	left := capability("Left", "StreamingServer", "DigitalResource", "Stream")
	right := capability("Right", "DigitalServer", "VideoResource", "Stream")
	bottom := capability("Bottom", "StreamingServer", "VideoResource", "Stream")

	for i, c := range []*profile.Capability{top, bottom, left, right} {
		if err := d.Register(service(fmt.Sprintf("s%d", i), c)); err != nil {
			t.Fatal(err)
		}
		if err := d.checkInvariants(); err != nil {
			t.Fatalf("after insert %d (%s): %v\n%s", i, c.Name, err, d.Snapshot())
		}
	}
	if d.NumGraphs() != 1 {
		t.Fatalf("NumGraphs = %d, want 1\n%s", d.NumGraphs(), d.Snapshot())
	}
	snap := d.Snapshot()
	if !strings.Contains(snap, "Top [root]") {
		t.Errorf("Top must be the sole root:\n%s", snap)
	}
	// Bottom matches a bottom-shaped request at distance 0 and everything
	// else above it.
	req := capability("Req", "StreamingServer", "VideoResource", "Stream")
	results := d.Query(req)
	if len(results) != 4 {
		t.Fatalf("Query = %d results, want 4\n%s", len(results), snap)
	}
	if results[0].Entry.Capability.Name != "Bottom" || results[0].Distance != 0 {
		t.Errorf("best = %v, want Bottom at 0", results[0])
	}
}

func TestDeregister(t *testing.T) {
	d, _ := newFixtureDirectory(t)
	a := capability("A", "DigitalServer", "DigitalResource", "Stream")
	b := capability("B", "VideoServer", "VideoResource", "Stream")
	c := capability("C", "VideoServer", "Movie", "Stream")
	for i, cap := range []*profile.Capability{a, b, c} {
		if err := d.Register(service(fmt.Sprintf("s%d", i), cap)); err != nil {
			t.Fatal(err)
		}
	}
	if !d.Deregister("s1") { // remove the middle vertex
		t.Fatal("Deregister(s1) = false")
	}
	if d.Deregister("s1") {
		t.Fatal("double Deregister succeeded")
	}
	if err := d.checkInvariants(); err != nil {
		t.Fatalf("invariants after removal: %v\n%s", err, d.Snapshot())
	}
	if n := d.NumCapabilities(); n != 2 {
		t.Fatalf("NumCapabilities = %d, want 2", n)
	}
	// Chain must be reconnected: a movie request still finds A and C.
	req := capability("Req", "VideoServer", "Movie", "Stream")
	results := d.Query(req)
	if len(results) != 2 {
		t.Fatalf("Query after removal = %v, want 2 results\n%s", results, d.Snapshot())
	}
	// Removing everything empties the directory.
	d.Deregister("s0")
	d.Deregister("s2")
	if d.NumGraphs() != 0 || d.NumCapabilities() != 0 {
		t.Fatalf("directory not empty: %d graphs, %d caps", d.NumGraphs(), d.NumCapabilities())
	}
}

func TestDeregisterSharedVertex(t *testing.T) {
	d, _ := newFixtureDirectory(t)
	a := capability("Same", "VideoServer", "VideoResource", "Stream")
	b := capability("Same2", "VideoServer", "VideoResource", "Stream")
	if err := d.Register(service("sa", a)); err != nil {
		t.Fatal(err)
	}
	if err := d.Register(service("sb", b)); err != nil {
		t.Fatal(err)
	}
	d.Deregister("sa")
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	req := capability("Req", "VideoServer", "VideoResource", "Stream")
	if results := d.Query(req); len(results) != 1 || results[0].Entry.Service != "sb" {
		t.Fatalf("Query = %v, want sb only", results)
	}
}

func TestQueryFiltersGraphsByOntology(t *testing.T) {
	d, _ := newFixtureDirectory(t)
	if err := d.Register(profile.WorkstationService()); err != nil {
		t.Fatal(err)
	}
	// A request over an unknown ontology matches nothing and — importantly
	// — performs no semantic match operations (the graph index filters it).
	before := d.MatchOps()
	req := &profile.Capability{
		Name:     "Req",
		Category: ontology.Ref{Ontology: "http://other.example/ont", Name: "Thing"},
	}
	if results := d.Query(req); len(results) != 0 {
		t.Fatalf("Query = %v, want none", results)
	}
	if ops := d.MatchOps() - before; ops != 0 {
		t.Fatalf("unknown-ontology query performed %d match ops, want 0", ops)
	}
}

func TestBest(t *testing.T) {
	d, _ := newFixtureDirectory(t)
	if _, ok := d.Best(profile.PDAService().Required[0]); ok {
		t.Fatal("Best on empty directory returned ok")
	}
	if err := d.Register(profile.WorkstationService()); err != nil {
		t.Fatal(err)
	}
	res, ok := d.Best(profile.PDAService().Required[0])
	if !ok || res.Entry.Capability.Name != "SendDigitalStream" {
		t.Fatalf("Best = %v, %v", res, ok)
	}
}

func TestServicesAndOntologies(t *testing.T) {
	d, _ := newFixtureDirectory(t)
	if err := d.Register(profile.WorkstationService()); err != nil {
		t.Fatal(err)
	}
	svcs := d.Services()
	if len(svcs) != 1 || svcs[0] != "MediaWorkstation" {
		t.Fatalf("Services = %v", svcs)
	}
	uris := d.Ontologies()
	if len(uris) != 2 {
		t.Fatalf("Ontologies = %v", uris)
	}
	keys := d.OntologyKeys()
	if len(keys) != 1 { // both capabilities use the same ontology pair
		t.Fatalf("OntologyKeys = %v", keys)
	}
}

func TestQueryPrunesMatchOps(t *testing.T) {
	// The pruning claim behind Figure 9: with capabilities classified into
	// graphs, answering a request costs far fewer match operations than
	// matching against every advertisement.
	d, _ := newFixtureDirectory(t)
	// Build 30 unrelated game services and a 3-deep video chain.
	for i := 0; i < 30; i++ {
		c := capability(fmt.Sprintf("Game%d", i), "GameServer", "GameResource", "Stream")
		c.Properties = append(c.Properties, mediaRef("GameResource")) // distinct props keep them non-equivalent? no — same refs
		if err := d.Register(service(fmt.Sprintf("g%d", i), c)); err != nil {
			t.Fatal(err)
		}
	}
	for i, c := range []*profile.Capability{
		capability("ServeDigital", "DigitalServer", "DigitalResource", "Stream"),
		capability("ServeVideo", "VideoServer", "VideoResource", "Stream"),
		capability("ServeMovies", "VideoServer", "Movie", "Stream"),
	} {
		if err := d.Register(service(fmt.Sprintf("v%d", i), c)); err != nil {
			t.Fatal(err)
		}
	}

	req := capability("Req", "VideoServer", "Movie", "Stream")
	before := d.MatchOps()
	results := d.Query(req)
	ops := d.MatchOps() - before
	if len(results) != 3 {
		t.Fatalf("Query = %d results, want 3", len(results))
	}
	// Linear matching would need >= 33 match ops; the classified directory
	// needs root probes (2 graphs cover the ontologies) plus the matching
	// chain and final rescoring.
	if ops >= 33 {
		t.Fatalf("classified query used %d match ops, want < 33", ops)
	}
}

// TestPropertyInsertionOrderIrrelevant: any insertion order of the same
// capability set yields a directory that answers queries identically.
func TestPropertyInsertionOrderIrrelevant(t *testing.T) {
	categories := []string{"Server", "DigitalServer", "StreamingServer", "VideoServer", "SoundServer", "GameServer"}
	inputs := []string{"Resource", "DigitalResource", "VideoResource", "SoundResource", "GameResource", "Movie"}
	outputs := []string{"Stream", "VideoStream", "AudioStream"}

	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(8) + 3
		caps := make([]*profile.Capability, n)
		for i := range caps {
			caps[i] = capability(
				fmt.Sprintf("C%d", i),
				categories[rng.Intn(len(categories))],
				inputs[rng.Intn(len(inputs))],
				outputs[rng.Intn(len(outputs))],
			)
		}
		req := capability("Req",
			categories[rng.Intn(len(categories))],
			inputs[rng.Intn(len(inputs))],
			outputs[rng.Intn(len(outputs))],
		)

		baseline := ""
		for trial := 0; trial < 3; trial++ {
			d, _ := newFixtureDirectory(t)
			perm := rng.Perm(n)
			for _, i := range perm {
				if err := d.Register(service(fmt.Sprintf("s%d", i), caps[i])); err != nil {
					return false
				}
			}
			if err := d.checkInvariants(); err != nil {
				t.Logf("seed %d trial %d: %v", seed, trial, err)
				return false
			}
			var b strings.Builder
			for _, r := range d.Query(req) {
				fmt.Fprintf(&b, "%s@%d;", r.Entry.Capability.Name, r.Distance)
			}
			if trial == 0 {
				baseline = b.String()
			} else if b.String() != baseline {
				t.Logf("seed %d: order dependence: %q vs %q", seed, baseline, b.String())
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyQueryEqualsLinearScan: the classified directory returns
// exactly the same match set and distances as a brute-force scan over all
// stored capabilities.
func TestPropertyQueryEqualsLinearScan(t *testing.T) {
	categories := []string{"Server", "DigitalServer", "StreamingServer", "VideoServer", "SoundServer", "GameServer"}
	inputs := []string{"Resource", "DigitalResource", "VideoResource", "SoundResource", "GameResource", "Movie"}
	outputs := []string{"Stream", "VideoStream", "AudioStream"}

	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, m := newFixtureDirectory(t)
		n := rng.Intn(15) + 1
		var all []*profile.Capability
		for i := 0; i < n; i++ {
			c := capability(
				fmt.Sprintf("C%d", i),
				categories[rng.Intn(len(categories))],
				inputs[rng.Intn(len(inputs))],
				outputs[rng.Intn(len(outputs))],
			)
			all = append(all, c)
			if err := d.Register(service(fmt.Sprintf("s%d", i), c)); err != nil {
				return false
			}
		}
		for trial := 0; trial < 5; trial++ {
			req := capability("Req",
				categories[rng.Intn(len(categories))],
				inputs[rng.Intn(len(inputs))],
				outputs[rng.Intn(len(outputs))],
			)
			want := map[string]int{}
			for _, c := range all {
				if dist, ok := match.SemanticDistance(m, c, req); ok {
					want[c.Name] = dist
				}
			}
			got := map[string]int{}
			for _, r := range d.Query(req) {
				got[r.Entry.Capability.Name] = r.Distance
			}
			if len(got) != len(want) {
				t.Logf("seed %d: got %v want %v\n%s", seed, got, want, d.Snapshot())
				return false
			}
			for k, v := range want {
				if got[k] != v {
					t.Logf("seed %d: distance mismatch on %s: got %d want %d", seed, k, got[k], v)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	d, _ := newFixtureDirectory(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			c := capability(fmt.Sprintf("C%d", i), "VideoServer", "VideoResource", "Stream")
			if err := d.Register(service(fmt.Sprintf("s%d", i), c)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	req := capability("Req", "VideoServer", "Movie", "Stream")
	for i := 0; i < 50; i++ {
		d.Query(req)
		d.NumCapabilities()
	}
	<-done
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDirectoryStats(t *testing.T) {
	d, _ := newFixtureDirectory(t)
	if s := d.Stats(); s != (Stats{}) {
		t.Fatalf("empty stats = %+v", s)
	}
	for i, c := range []*profile.Capability{
		capability("ServeDigital", "DigitalServer", "DigitalResource", "Stream"),
		capability("ServeVideo", "VideoServer", "VideoResource", "Stream"),
		capability("ServeMovies", "VideoServer", "Movie", "Stream"),
		capability("ServeGames", "GameServer", "GameResource", "Stream"),
	} {
		if err := d.Register(service(fmt.Sprintf("s%d", i), c)); err != nil {
			t.Fatal(err)
		}
	}
	// ServeDigital subsumes all three others (DigitalServer ⊒ VideoServer
	// and GameServer; DigitalResource ⊒ everything): one graph rooted at
	// ServeDigital with chains to ServeMovies and ServeGames.
	s := d.Stats()
	want := Stats{Graphs: 1, Vertices: 4, Edges: 3, Entries: 4, MaxGraphVertices: 4, Roots: 1, Leaves: 2}
	if s != want {
		t.Fatalf("stats = %+v, want %+v", s, want)
	}
}
