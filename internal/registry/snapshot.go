// Snapshot read path: the directory publishes an immutable, compiled
// view of its graphs through an atomic pointer, so queries never take a
// lock. Writers (Register/Deregister) serialize on Directory.mu, mutate
// the builder-side graph structures, recompile only the graphs they
// touched (copy-on-write at graph granularity), and publish a fresh
// snapshot with a single atomic store.
//
// The publish invariant: every object reachable from a published
// *snapshot is never written again. The //sdp:immutable annotations
// below make the immutcheck analyzer enforce that mechanically — any
// field write outside a new*/make*/clone* construction function is a
// lint error, so the lock-free readers stay sound by construction.
package registry

import (
	"sort"
	"sync"

	"sariadne/internal/profile"
)

// snapVertex is the compiled form of one graph vertex. Predecessors and
// successors are indices into the owning snapGraph's vertex slice.
//
//sdp:immutable
type snapVertex struct {
	rep     *profile.Capability
	entries []*Entry
	// preds indices are all smaller than this vertex's own index: the
	// owning snapGraph stores vertices in topological order, which is
	// what lets the query walk visit parents before children in one
	// forward scan.
	preds []int32
	succs []int32
	root  bool
	leaf  bool
}

// snapGraph is the compiled, immutable form of one capability DAG.
//
//sdp:immutable
type snapGraph struct {
	// vertices is topologically ordered: every predecessor of
	// vertices[i] has an index < i.
	vertices []snapVertex
	// ontologies is the sorted union of ontology URIs used by member
	// capabilities; ontoSet is the same set keyed for covers().
	ontologies []string
	ontoSet    map[string]struct{}
	edges      int
	entries    int
	roots      int
	leaves     int
}

// covers reports whether the graph's ontology set contains every URI the
// capability uses — the paper's graph pre-selection index.
func (g *snapGraph) covers(uris []string) bool {
	for _, u := range uris {
		if _, ok := g.ontoSet[u]; !ok {
			return false
		}
	}
	return true
}

// snapshot is one published, immutable view of the whole directory.
// Readers load it from Directory.snap and use it without locks.
//
//sdp:immutable
type snapshot struct {
	graphs []*snapGraph
	// byOntology indexes graphs by the ontology URIs they contain, so
	// query-time graph pre-selection does not scan every graph.
	byOntology map[string][]*snapGraph
	byService  map[string][]*Entry
	// services, ontologies and ontologyKeys are precomputed sorted, so
	// the corresponding reader methods are allocation-plus-copy only.
	// ontologyKeys in particular is the unit hashed into the Section 4
	// Bloom summaries: regenerating it here, once per batched publish,
	// replaces the per-query scan over every stored entry.
	services     []string
	ontologies   []string
	ontologyKeys []string
	stats        Stats
}

// candidateGraphs returns the graphs whose ontology set covers uris,
// using the index: it scans only the graphs listed under the rarest URI.
// With no URI constraint every graph qualifies.
func (s *snapshot) candidateGraphs(uris []string) []*snapGraph {
	if len(uris) == 0 {
		return s.graphs
	}
	var smallest []*snapGraph
	for i, u := range uris {
		list, ok := s.byOntology[u]
		if !ok {
			return nil
		}
		if i == 0 || len(list) < len(smallest) {
			smallest = list
		}
	}
	out := make([]*snapGraph, 0, len(smallest))
	for _, g := range smallest {
		if g.covers(uris) {
			out = append(out, g)
		}
	}
	return out
}

// newSnapGraph compiles one builder graph into its immutable form. The
// vertex order is a deterministic topological sort (lexicographic by
// representative capability name among ready vertices), so snapshots of
// the same graph are structurally identical across publishes.
func newSnapGraph(g *graph) *snapGraph {
	verts := make([]*vertex, 0, len(g.vertices))
	for v := range g.vertices {
		verts = append(verts, v)
	}
	sort.Slice(verts, func(i, j int) bool { return verts[i].rep.Name < verts[j].rep.Name })

	remaining := make(map[*vertex]int, len(verts))
	for _, v := range verts {
		remaining[v] = len(v.preds)
	}
	order := make([]*vertex, 0, len(verts))
	placed := make(map[*vertex]bool, len(verts))
	for len(order) < len(verts) {
		advanced := false
		for _, v := range verts {
			if placed[v] || remaining[v] != 0 {
				continue
			}
			placed[v] = true
			order = append(order, v)
			for s := range v.succs {
				remaining[s]--
			}
			advanced = true
			break
		}
		if !advanced {
			// A cycle would violate the DAG invariant; degrade to name
			// order rather than spin (checkInvariants reports the cycle).
			for _, v := range verts {
				if !placed[v] {
					placed[v] = true
					order = append(order, v)
				}
			}
		}
	}

	idx := make(map[*vertex]int32, len(order))
	for i, v := range order {
		idx[v] = int32(i)
	}
	sg := &snapGraph{
		vertices:   make([]snapVertex, len(order)),
		ontologies: make([]string, 0, len(g.ontologies)),
		ontoSet:    make(map[string]struct{}, len(g.ontologies)),
	}
	for u := range g.ontologies {
		sg.ontologies = append(sg.ontologies, u)
		sg.ontoSet[u] = struct{}{}
	}
	sort.Strings(sg.ontologies)
	for i, v := range order {
		sv := snapVertex{
			// Entries are copied: the builder removes entries in place,
			// and a published snapshot must not share a backing array
			// with anything the builder will mutate.
			rep:     v.rep,
			entries: append([]*Entry(nil), v.entries...),
			root:    len(v.preds) == 0,
			leaf:    len(v.succs) == 0,
		}
		for p := range v.preds {
			sv.preds = append(sv.preds, idx[p])
		}
		for s := range v.succs {
			sv.succs = append(sv.succs, idx[s])
		}
		sort.Slice(sv.preds, func(a, b int) bool { return sv.preds[a] < sv.preds[b] })
		sort.Slice(sv.succs, func(a, b int) bool { return sv.succs[a] < sv.succs[b] })
		sg.vertices[i] = sv
		sg.edges += len(sv.succs)
		sg.entries += len(sv.entries)
		if sv.root {
			sg.roots++
		}
		if sv.leaf {
			sg.leaves++
		}
	}
	return sg
}

// newSnapshot assembles a publishable snapshot from the builder state and
// the per-graph compile cache. Caller holds d.mu.
func newSnapshot(d *Directory, compiled map[*graph]*snapGraph) *snapshot {
	s := &snapshot{
		graphs:     make([]*snapGraph, 0, len(d.graphs)),
		byOntology: make(map[string][]*snapGraph, len(d.byOntology)),
		byService:  make(map[string][]*Entry, len(d.byService)),
		services:   make([]string, 0, len(d.byService)),
	}
	for _, g := range d.graphs {
		s.graphs = append(s.graphs, compiled[g])
	}
	for u, list := range d.byOntology {
		sl := make([]*snapGraph, 0, len(list))
		for _, g := range list {
			sl = append(sl, compiled[g])
		}
		s.byOntology[u] = sl
	}
	keySet := make(map[string]struct{})
	for svc, entries := range d.byService {
		s.byService[svc] = append([]*Entry(nil), entries...)
		s.services = append(s.services, svc)
		for _, e := range entries {
			keySet[e.Capability.OntologyKey()] = struct{}{}
		}
	}
	sort.Strings(s.services)
	s.ontologyKeys = make([]string, 0, len(keySet))
	for k := range keySet {
		s.ontologyKeys = append(s.ontologyKeys, k)
	}
	sort.Strings(s.ontologyKeys)
	uriSet := make(map[string]struct{})
	for _, g := range s.graphs {
		for _, u := range g.ontologies {
			uriSet[u] = struct{}{}
		}
	}
	s.ontologies = make([]string, 0, len(uriSet))
	for u := range uriSet {
		s.ontologies = append(s.ontologies, u)
	}
	sort.Strings(s.ontologies)
	s.stats.Graphs = len(s.graphs)
	for _, g := range s.graphs {
		s.stats.Vertices += len(g.vertices)
		s.stats.Edges += g.edges
		s.stats.Entries += g.entries
		s.stats.Roots += g.roots
		s.stats.Leaves += g.leaves
		if len(g.vertices) > s.stats.MaxGraphVertices {
			s.stats.MaxGraphVertices = len(g.vertices)
		}
	}
	return s
}

// matchScratch pools the per-graph matched bitmaps used by the query
// walk, so steady-state queries allocate nothing for traversal state.
// The pool holds *[]bool (not []bool) to keep Put from boxing a fresh
// interface allocation on every cycle.
var matchScratch = sync.Pool{New: func() any { return new([]bool) }}

// scratchFor returns a pooled bool slice of length n. The contents are
// arbitrary: the topological walk assigns every index before reading it,
// so no clearing is needed.
func scratchFor(n int) *[]bool {
	sp := matchScratch.Get().(*[]bool)
	if cap(*sp) < n {
		*sp = make([]bool, n)
	}
	*sp = (*sp)[:n]
	return sp
}
