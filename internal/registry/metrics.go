package registry

import "sariadne/internal/telemetry"

// Process-wide instruments for the directory core. Structural gauges are
// maintained with signed deltas at every mutation site, so when several
// Directory instances live in one process (each simulated node runs one)
// the gauges read the sum over all of them.
var (
	insertSeconds = telemetry.NewHistogram("registry_insert_seconds",
		"latency of Directory.Register calls (classification of one advertisement)")
	querySeconds = telemetry.NewHistogram("registry_query_seconds",
		"latency of Directory.Query calls (the paper's match phase)")
	insertDepth = telemetry.NewSizeHistogram("registry_insert_depth",
		"BFS levels explored below the roots while classifying a capability")
	rootProbesTotal = telemetry.NewCounter("registry_root_probes_total",
		"graph roots probed during queries (the paper's root-filtering work)")
	graphsGauge = telemetry.NewGauge("registry_graphs",
		"capability DAGs across all directories in the process")
	verticesGauge = telemetry.NewGauge("registry_vertices",
		"capability-graph vertices across all directories")
	edgesGauge = telemetry.NewGauge("registry_edges",
		"capability-graph edges across all directories")
	entriesGauge = telemetry.NewGauge("registry_entries",
		"stored advertisements across all directories")
)
