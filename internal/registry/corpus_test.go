package registry

import (
	"os"
	"path/filepath"
	"testing"

	"sariadne/internal/codes"
	"sariadne/internal/match"
	"sariadne/internal/ontology"
	"sariadne/internal/profile"
)

// TestCorpusEndToEnd drives the XML corpus under internal/profile/testdata
// through the full local pipeline: parse + classify + encode the
// ontologies, register the media center, resolve the tablet's request.
// Both provided capabilities of the media center match the WatchFilm
// request functionally, but its QoS bound (latency ≤ 30ms) keeps both:
// StreamMovies at 25ms (distance 1: Film ≡ Movie, exact category and
// output) and StreamAnyDigital at 15ms (higher distance, generic). The
// ranking must put the dedicated movie capability first.
func TestCorpusEndToEnd(t *testing.T) {
	base := filepath.Join("..", "profile", "testdata")
	open := func(name string) *os.File {
		f, err := os.Open(filepath.Join(base, name))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { f.Close() })
		return f
	}

	reg := codes.NewRegistry()
	for _, name := range []string{"media-ontology.xml", "servers-ontology.xml"} {
		o, err := ontology.Decode(open(name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cl, err := ontology.Classify(o)
		if err != nil {
			t.Fatal(err)
		}
		table, err := codes.Encode(cl, codes.DefaultParams)
		if err != nil {
			t.Fatal(err)
		}
		reg.Register(table)
	}
	m := match.NewCodeMatcher(reg)
	dir := NewDirectory(m)

	svc, err := profile.Decode(open("media-center.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckVersions(svc); err != nil {
		t.Fatalf("code versions: %v", err)
	}
	if err := dir.Register(svc); err != nil {
		t.Fatal(err)
	}

	request, err := profile.Decode(open("tablet-request.xml"))
	if err != nil {
		t.Fatal(err)
	}
	results := dir.Query(request.Required[0])
	if len(results) != 2 {
		t.Fatalf("results = %v, want both media-center capabilities", results)
	}
	if results[0].Entry.Capability.Name != "StreamMovies" {
		t.Fatalf("best = %s, want StreamMovies", results[0].Entry.Capability.Name)
	}
	if results[0].Distance >= results[1].Distance {
		t.Fatalf("ranking broken: %v", results)
	}

	// Tighten the latency bound to 20ms: the 25ms movie capability drops,
	// the 15ms generic one stays.
	tight := request.Required[0].Clone()
	tight.QoSRequired = []profile.QoSConstraint{
		{Name: "latencyMs", Min: profile.Unbounded(), Max: 20},
	}
	results = dir.Query(tight)
	if len(results) != 1 || results[0].Entry.Capability.Name != "StreamAnyDigital" {
		t.Fatalf("tight-QoS results = %v, want StreamAnyDigital only", results)
	}
}
