package registry

import (
	"fmt"
	"testing"

	"sariadne/internal/codes"
	"sariadne/internal/gen"
	"sariadne/internal/match"
	"sariadne/internal/telemetry"
)

// findGauge returns the value of a named gauge in the default registry.
func findMetric(t *testing.T, name string) telemetry.MetricSnapshot {
	t.Helper()
	for _, s := range telemetry.Default().Snapshot() {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("metric %q not registered", name)
	return telemetry.MetricSnapshot{}
}

// TestStructuralGaugesTrackStats churns a directory through register /
// re-register / deregister cycles on a generated workload and checks the
// delta-maintained process gauges agree exactly with the O(V+E) Stats()
// recount at every step.
func TestStructuralGaugesTrackStats(t *testing.T) {
	w := gen.MustNewWorkload(gen.WorkloadConfig{Ontologies: 6, Services: 40, Seed: 7})
	reg, err := w.Registry(codes.DefaultParams)
	if err != nil {
		t.Fatal(err)
	}
	telemetry.Default().Reset()
	d := NewDirectory(match.NewCodeMatcher(reg))

	check := func(step string) {
		t.Helper()
		s := d.Stats()
		for _, probe := range []struct {
			name string
			want int
		}{
			{"registry_graphs", s.Graphs},
			{"registry_vertices", s.Vertices},
			{"registry_edges", s.Edges},
			{"registry_entries", s.Entries},
		} {
			if got := findMetric(t, probe.name).Value; got != float64(probe.want) {
				t.Fatalf("%s: %s = %v, want %d\n%s", step, probe.name, got, probe.want, d.Snapshot())
			}
		}
		if err := d.checkInvariants(); err != nil {
			t.Fatalf("%s: %v", step, err)
		}
	}

	for i, svc := range w.Services {
		if err := d.Register(svc); err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			check(fmt.Sprintf("after register %d", i))
		}
	}
	check("fully populated")

	// Re-registration replaces in place.
	for _, svc := range w.Services[:10] {
		if err := d.Register(svc); err != nil {
			t.Fatal(err)
		}
	}
	check("after re-register")

	for i, svc := range w.Services {
		if !d.Deregister(svc.Name) {
			t.Fatalf("service %s not registered", svc.Name)
		}
		if i%7 == 0 {
			check(fmt.Sprintf("after deregister %d", i))
		}
	}
	check("emptied")
	if s := d.Stats(); s.Entries != 0 || s.Graphs != 0 {
		t.Fatalf("directory not empty: %+v", s)
	}
}

// TestQueryAndInsertInstrumentsMove checks the latency histograms and the
// root-probe counter record activity.
func TestQueryAndInsertInstrumentsMove(t *testing.T) {
	telemetry.Default().Reset()
	d, _ := newFixtureDirectory(t)
	if err := d.Register(service("s1", capability("Print", "Server", "File", "Paper"))); err != nil {
		t.Fatal(err)
	}
	d.Query(capability("req", "Server", "File", "Paper"))

	if got := findMetric(t, "registry_insert_seconds").Count; got == 0 {
		t.Error("registry_insert_seconds never observed")
	}
	if got := findMetric(t, "registry_query_seconds").Count; got != 1 {
		t.Errorf("registry_query_seconds count = %d, want 1", got)
	}
	if got := findMetric(t, "registry_root_probes_total").Value; got == 0 {
		t.Error("registry_root_probes_total = 0 after query")
	}
	if got := findMetric(t, "registry_insert_depth").Count; got == 0 {
		t.Error("registry_insert_depth never observed")
	}
	if got := findMetric(t, "match_encoded_ops_total").Value; got == 0 {
		t.Error("match_encoded_ops_total = 0 after encoded-matcher query")
	}
}
