package registry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"sariadne/internal/match"
	"sariadne/internal/profile"
)

// LinearDirectory is the unclassified baseline of Figure 9: advertisements
// are stored in a flat list and every query is matched against every
// stored capability. It shares the Entry/Result vocabulary with Directory
// so the two are drop-in comparable. LinearDirectory is safe for
// concurrent use.
type LinearDirectory struct {
	mu        sync.RWMutex
	matcher   match.ConceptMatcher
	entries   []*Entry            // guarded by mu
	byService map[string][]*Entry // guarded by mu
	// matchOps counts match operations (monotonic). It is atomic rather
	// than mu-protected, so concurrent queries share a read lock instead
	// of serializing on a write lock just to bump the counter.
	matchOps atomic.Uint64
}

// NewLinearDirectory returns an empty flat directory matching with m.
func NewLinearDirectory(m match.ConceptMatcher) *LinearDirectory {
	return &LinearDirectory{matcher: m, byService: make(map[string][]*Entry)}
}

// Register stores every provided capability of the service.
func (d *LinearDirectory) Register(s *profile.Service) error {
	if err := s.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidCapability, err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, c := range s.Provided {
		e := &Entry{Capability: c.Clone(), Service: s.Name, Provider: s.Provider}
		d.entries = append(d.entries, e)
		d.byService[s.Name] = append(d.byService[s.Name], e)
	}
	return nil
}

// Deregister removes all capabilities of the named service.
func (d *LinearDirectory) Deregister(service string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	entries, ok := d.byService[service]
	if !ok {
		return false
	}
	delete(d.byService, service)
	dead := make(map[*Entry]bool, len(entries))
	for _, e := range entries {
		dead[e] = true
	}
	kept := d.entries[:0]
	for _, e := range d.entries {
		if !dead[e] {
			kept = append(kept, e)
		}
	}
	d.entries = kept
	return true
}

// Query matches the request against every stored capability and returns
// the matches sorted by ascending distance. Queries only read the entry
// list, so they take the read lock and run concurrently with each other.
func (d *LinearDirectory) Query(req *profile.Capability) []Result {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var results []Result
	for _, e := range d.entries {
		d.matchOps.Add(1)
		if dist, ok := match.SemanticDistance(d.matcher, e.Capability, req); ok {
			if !profile.QoSSatisfies(e.Capability, req) {
				continue
			}
			results = append(results, Result{Entry: e, Distance: dist})
		}
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Distance != results[j].Distance {
			return results[i].Distance < results[j].Distance
		}
		if results[i].Entry.Service != results[j].Entry.Service {
			return results[i].Entry.Service < results[j].Entry.Service
		}
		return results[i].Entry.Capability.Name < results[j].Entry.Capability.Name
	})
	return results
}

// Best returns the closest match, if any.
func (d *LinearDirectory) Best(req *profile.Capability) (Result, bool) {
	results := d.Query(req)
	if len(results) == 0 {
		return Result{}, false
	}
	return results[0], true
}

// MatchOps returns the cumulative number of match operations performed.
func (d *LinearDirectory) MatchOps() uint64 {
	return d.matchOps.Load()
}

// NumCapabilities returns the number of stored advertisements.
func (d *LinearDirectory) NumCapabilities() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.entries)
}
