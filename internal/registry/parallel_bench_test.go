package registry

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"sariadne/internal/codes"
	"sariadne/internal/gen"
	"sariadne/internal/match"
	"sariadne/internal/profile"
)

// parallelFixture builds one populated directory plus a rotation of
// requests derived from stored advertisements, the same workload shape
// benchfig's Figure 9 uses.
func parallelFixture(tb testing.TB, services int) (*Directory, []*profile.Capability) {
	tb.Helper()
	w := gen.MustNewWorkload(gen.WorkloadConfig{
		Ontologies:           22,
		Services:             services,
		InputsPerCapability:  5,
		OutputsPerCapability: 3,
		Seed:                 42,
	})
	reg, err := w.Registry(codes.DefaultParams)
	if err != nil {
		tb.Fatal(err)
	}
	d := NewDirectory(match.NewCodeMatcher(reg))
	for _, svc := range w.Services {
		if err := d.Register(svc); err != nil {
			tb.Fatal(err)
		}
	}
	reqs := make([]*profile.Capability, 0, 8)
	for i := 0; i < 8; i++ {
		reqs = append(reqs, w.Request((services/8)*i%services, 1))
	}
	return d, reqs
}

// BenchmarkParallelDiscovery measures concurrent Query throughput on a
// populated directory. With the lock-free snapshot read path, per-op time
// should stay roughly flat as parallelism grows (near-linear aggregate
// throughput up to GOMAXPROCS); under a mutex-guarded read path it
// degrades as every query serializes on the same lock.
func BenchmarkParallelDiscovery(b *testing.B) {
	d, reqs := parallelFixture(b, 100)
	maxProcs := runtime.GOMAXPROCS(0)
	procList := []int{1, 2, 4}
	if maxProcs > 4 {
		procList = append(procList, maxProcs)
	}
	for _, procs := range procList {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			b.SetParallelism(1)
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if res := d.Query(reqs[i%len(reqs)]); len(res) == 0 {
						b.Fatal("request must match")
					}
					i++
				}
			})
		})
	}
}

// BenchmarkParallelDiscoveryMixed adds a 1:64 writer stream (service
// re-registrations) to the parallel query load, exercising the
// copy-on-write publish path under read concurrency.
func BenchmarkParallelDiscoveryMixed(b *testing.B) {
	d, reqs := parallelFixture(b, 100)
	w := gen.MustNewWorkload(gen.WorkloadConfig{
		Ontologies:           22,
		Services:             100,
		InputsPerCapability:  5,
		OutputsPerCapability: 3,
		Seed:                 42,
	})
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i%64 == 63 {
				if err := d.Register(w.Services[i%len(w.Services)]); err != nil {
					b.Fatal(err)
				}
			} else if res := d.Query(reqs[i%len(reqs)]); len(res) == 0 {
				b.Fatal("request must match")
			}
			i++
		}
	})
}

// TestParallelDiscoveryRace drives concurrent queries against concurrent
// register/deregister churn; run under -race it proves the read path
// needs no locks. It doubles as the CI race smoke for the parallel
// benchmark workload.
func TestParallelDiscoveryRace(t *testing.T) {
	d, reqs := parallelFixture(t, 60)
	w := gen.MustNewWorkload(gen.WorkloadConfig{
		Ontologies:           22,
		Services:             60,
		InputsPerCapability:  5,
		OutputsPerCapability: 3,
		Seed:                 42,
	})
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				d.Query(reqs[(g+i)%len(reqs)])
				d.Stats()
				d.OntologyKeys()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			svc := w.Services[i%len(w.Services)]
			if i%3 == 0 {
				d.Deregister(svc.Name)
			} else if err := d.Register(svc); err != nil {
				t.Errorf("register: %v", err)
			}
		}
	}()
	wg.Wait()
	if err := d.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}
