package bloom

import "sariadne/internal/telemetry"

// Summary-exchange instruments: how often filters cross the wire and how
// big they are. The Add/Test hot paths stay uninstrumented on purpose —
// they run once per peer per query.
var (
	marshalsTotal = telemetry.NewCounter("bloom_marshals_total",
		"Bloom filters serialized for transmission")
	unmarshalsTotal = telemetry.NewCounter("bloom_unmarshals_total",
		"Bloom filters parsed from the wire")
	summaryBytes = telemetry.NewSizeHistogram("bloom_summary_bytes",
		"wire size in bytes of serialized Bloom summaries")
)
