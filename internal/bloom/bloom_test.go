package bloom

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for _, tc := range [][2]int{{0, 1}, {1, 0}, {-5, 3}, {128, -1}} {
		if _, err := New(tc[0], tc[1]); !errors.Is(err, ErrBadShape) {
			t.Errorf("New(%d,%d) = %v, want ErrBadShape", tc[0], tc[1], err)
		}
	}
	if _, err := New(128, 3); err != nil {
		t.Fatalf("New(128,3): %v", err)
	}
}

func TestOptimalShape(t *testing.T) {
	f, err := Optimal(100, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Standard formulas: m ≈ 958.5, k ≈ 7 for n=100, p=1%.
	if f.Bits() < 900 || f.Bits() > 1000 {
		t.Errorf("Bits = %d, want ~959", f.Bits())
	}
	if f.Hashes() != 7 {
		t.Errorf("Hashes = %d, want 7", f.Hashes())
	}
	for _, tc := range []struct {
		n int
		p float64
	}{{0, 0.5}, {10, 0}, {10, 1}, {10, -0.1}} {
		if _, err := Optimal(tc.n, tc.p); err == nil {
			t.Errorf("Optimal(%d, %v) accepted", tc.n, tc.p)
		}
	}
}

func TestAddTest(t *testing.T) {
	f := MustNew(1024, 5)
	keys := []string{"http://a.example/ont", "http://b.example/ont\x00http://c.example/ont", ""}
	for _, k := range keys {
		f.Add(k)
	}
	for _, k := range keys {
		if !f.Test(k) {
			t.Errorf("Test(%q) = false after Add", k)
		}
	}
	if f.Additions() != len(keys) {
		t.Errorf("Additions = %d, want %d", f.Additions(), len(keys))
	}
}

// TestPropertyNoFalseNegatives is the load-bearing property: a key that was
// added is always reported present — otherwise S-Ariadne would silently
// skip directories holding real matches.
func TestPropertyNoFalseNegatives(t *testing.T) {
	prop := func(seed int64, nKeys uint8, mExp, k uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 64 << (mExp % 6) // 64..2048
		kk := int(k%8) + 1
		f := MustNew(m, kk)
		n := int(nKeys) + 1
		keys := make([]string, n)
		for i := range keys {
			keys[i] = fmt.Sprintf("ont-%d-%d", rng.Int63(), i)
			f.Add(keys[i])
		}
		for _, key := range keys {
			if !f.Test(key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFalsePositiveRateNearEstimate(t *testing.T) {
	f := MustNew(4096, 5)
	rng := rand.New(rand.NewSource(42))
	n := 400
	for i := 0; i < n; i++ {
		f.Add(fmt.Sprintf("member-%d", i))
	}
	trials := 20000
	fp := 0
	for i := 0; i < trials; i++ {
		if f.Test(fmt.Sprintf("nonmember-%d-%d", rng.Int63(), i)) {
			fp++
		}
	}
	got := float64(fp) / float64(trials)
	want := f.EstimateFPR()
	if got > want*3+0.01 {
		t.Fatalf("measured FPR %v far above estimate %v", got, want)
	}
}

func TestFillRatioAndReset(t *testing.T) {
	f := MustNew(256, 4)
	if f.FillRatio() != 0 {
		t.Fatal("fresh filter not empty")
	}
	f.Add("x")
	if f.FillRatio() <= 0 {
		t.Fatal("fill ratio did not grow")
	}
	if f.EstimateFPR() <= 0 {
		t.Fatal("EstimateFPR = 0 after Add")
	}
	f.Reset()
	if f.FillRatio() != 0 || f.Additions() != 0 {
		t.Fatal("Reset incomplete")
	}
	if f.EstimateFPR() != 0 {
		t.Fatal("EstimateFPR after Reset should be 0")
	}
}

func TestUnion(t *testing.T) {
	a := MustNew(512, 4)
	b := MustNew(512, 4)
	a.Add("alpha")
	b.Add("beta")
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	if !a.Test("alpha") || !a.Test("beta") {
		t.Fatal("union lost keys")
	}
	c := MustNew(256, 4)
	if err := a.Union(c); !errors.Is(err, ErrBadShape) {
		t.Fatalf("Union with mismatched shape = %v", err)
	}
}

func TestClone(t *testing.T) {
	a := MustNew(512, 4)
	a.Add("alpha")
	b := a.Clone()
	b.Add("beta")
	if a.Test("beta") {
		t.Fatal("Clone shares bits")
	}
	if !b.Test("alpha") {
		t.Fatal("Clone lost keys")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := MustNew(777, 6)
	keys := []string{"a", "b", "c", "d"}
	for _, k := range keys {
		f.Add(k)
	}
	data := f.Marshal()
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Bits() != f.Bits() || back.Hashes() != f.Hashes() || back.Additions() != f.Additions() {
		t.Fatalf("shape changed: %d/%d/%d", back.Bits(), back.Hashes(), back.Additions())
	}
	for _, k := range keys {
		if !back.Test(k) {
			t.Errorf("key %q lost in round trip", k)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("accepted nil")
	}
	if _, err := Unmarshal(make([]byte, 5)); err == nil {
		t.Fatal("accepted truncated header")
	}
	f := MustNew(128, 3)
	data := f.Marshal()
	if _, err := Unmarshal(data[:len(data)-1]); err == nil {
		t.Fatal("accepted truncated payload")
	}
	zero := make([]byte, 12)
	if _, err := Unmarshal(zero); err == nil {
		t.Fatal("accepted zero shape")
	}
}

// TestPropertyMarshalPreservesMembership: serialization never changes
// membership answers.
func TestPropertyMarshalPreservesMembership(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		f := MustNew(1024, 5)
		keys := make([]string, int(n)+1)
		for i := range keys {
			keys[i] = fmt.Sprintf("k%d", rng.Int63())
			f.Add(keys[i])
		}
		back, err := Unmarshal(f.Marshal())
		if err != nil {
			return false
		}
		probes := append([]string{}, keys...)
		for i := 0; i < 50; i++ {
			probes = append(probes, fmt.Sprintf("probe%d", rng.Int63()))
		}
		for _, p := range probes {
			if f.Test(p) != back.Test(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
