// Package bloom implements the Bloom filters S-Ariadne directories use to
// summarize their content (Section 4 of the paper): for every cached
// capability C, the set of ontology URIs O(C) used by its description is
// hashed with k independent hash functions into an m-bit vector. A remote
// directory receives the vector and forwards a request only when all k
// positions for the request's ontology set are set — so a directory that
// may hold a match is never skipped (no false negatives), and false
// positives are bounded by the usual (1 - e^(-kn/m))^k estimate.
package bloom

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrBadShape is returned for invalid (m, k) parameters.
var ErrBadShape = errors.New("bloom: bits and hashes must be positive")

// Filter is an m-bit Bloom filter with k hash functions. The zero value is
// not usable; construct with New or Optimal. Filter is not safe for
// concurrent mutation.
type Filter struct {
	bits      []uint64
	m         uint32
	k         uint32
	additions int
}

// New returns a filter with m bits and k hash functions.
func New(m, k int) (*Filter, error) {
	if m <= 0 || k <= 0 {
		return nil, fmt.Errorf("%w: m=%d k=%d", ErrBadShape, m, k)
	}
	return &Filter{bits: make([]uint64, (m+63)/64), m: uint32(m), k: uint32(k)}, nil
}

// Optimal returns a filter sized for n expected entries at the target
// false-positive rate p: m = -n·ln(p)/ln(2)², k = (m/n)·ln(2).
func Optimal(n int, p float64) (*Filter, error) {
	if n <= 0 || p <= 0 || p >= 1 {
		return nil, fmt.Errorf("%w: n=%d p=%v", ErrBadShape, n, p)
	}
	m := int(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return New(m, k)
}

// MustNew is New that panics on error; for static configuration.
func MustNew(m, k int) *Filter {
	f, err := New(m, k)
	if err != nil {
		panic(err)
	}
	return f
}

// hashPair returns the two Kirsch–Mitzenmacher base hashes for a key:
// the low and high halves of its FNV-1a digest. The digest is computed
// inline over the string — hash/fnv would box a hash.Hash64 and copy
// the key to []byte on every probe, and remote-summary probes run on
// the forwarding hot path.
//
//sdp:hotpath
func hashPair(key string) (uint32, uint32) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	sum := uint64(offset64)
	for i := 0; i < len(key); i++ {
		sum ^= uint64(key[i])
		sum *= prime64
	}
	h1 := uint32(sum)
	h2 := uint32(sum >> 32)
	if h2 == 0 {
		h2 = 0x9e3779b9
	}
	return h1, h2
}

// Add inserts a key, setting its k double-hashed bit positions.
func (f *Filter) Add(key string) {
	h1, h2 := hashPair(key)
	for i := uint32(0); i < f.k; i++ {
		pos := (h1 + i*h2) % f.m
		f.bits[pos/64] |= 1 << (pos % 64)
	}
	f.additions++
}

// Test reports whether the key may have been added: false means definitely
// absent, true means present or a false positive.
//
//sdp:hotpath
func (f *Filter) Test(key string) bool {
	h1, h2 := hashPair(key)
	for i := uint32(0); i < f.k; i++ {
		pos := (h1 + i*h2) % f.m
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// Bits returns the filter size in bits.
func (f *Filter) Bits() int { return int(f.m) }

// Hashes returns the number of hash functions.
func (f *Filter) Hashes() int { return int(f.k) }

// Additions returns the number of Add calls.
func (f *Filter) Additions() int { return f.additions }

// FillRatio returns the fraction of set bits.
func (f *Filter) FillRatio() float64 {
	set := 0
	for _, w := range f.bits {
		for ; w != 0; w &= w - 1 {
			set++
		}
	}
	return float64(set) / float64(f.m)
}

// EstimateFPR estimates the false-positive rate from the standard model
// (1 - e^(-kn/m))^k with n the number of additions.
func (f *Filter) EstimateFPR() float64 {
	if f.additions == 0 {
		return 0
	}
	exp := -float64(f.k) * float64(f.additions) / float64(f.m)
	return math.Pow(1-math.Exp(exp), float64(f.k))
}

// Union merges other into f. Both filters must share (m, k).
func (f *Filter) Union(other *Filter) error {
	if f.m != other.m || f.k != other.k {
		return fmt.Errorf("%w: (%d,%d) vs (%d,%d)", ErrBadShape, f.m, f.k, other.m, other.k)
	}
	for i := range f.bits {
		f.bits[i] |= other.bits[i]
	}
	if other.additions > f.additions {
		f.additions = other.additions
	}
	return nil
}

// Clone returns an independent copy.
func (f *Filter) Clone() *Filter {
	cp := &Filter{bits: append([]uint64(nil), f.bits...), m: f.m, k: f.k, additions: f.additions}
	return cp
}

// Reset clears all bits.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
	f.additions = 0
}

// Marshal serializes the filter for transmission between directories:
// 4-byte m, 4-byte k, 4-byte additions, then the bit words, little endian.
func (f *Filter) Marshal() []byte {
	marshalsTotal.Inc()
	summaryBytes.ObserveInt(int64(12 + 8*len(f.bits)))
	out := make([]byte, 12+8*len(f.bits))
	binary.LittleEndian.PutUint32(out[0:], f.m)
	binary.LittleEndian.PutUint32(out[4:], f.k)
	binary.LittleEndian.PutUint32(out[8:], uint32(f.additions))
	for i, w := range f.bits {
		binary.LittleEndian.PutUint64(out[12+8*i:], w)
	}
	return out
}

// Unmarshal parses a filter serialized by Marshal.
func Unmarshal(data []byte) (*Filter, error) {
	unmarshalsTotal.Inc()
	if len(data) < 12 {
		return nil, fmt.Errorf("bloom: truncated filter (%d bytes)", len(data))
	}
	m := binary.LittleEndian.Uint32(data[0:])
	k := binary.LittleEndian.Uint32(data[4:])
	additions := binary.LittleEndian.Uint32(data[8:])
	if m == 0 || k == 0 {
		return nil, fmt.Errorf("%w: m=%d k=%d", ErrBadShape, m, k)
	}
	words := (int(m) + 63) / 64
	if len(data) != 12+8*words {
		return nil, fmt.Errorf("bloom: filter payload size %d, want %d", len(data), 12+8*words)
	}
	f := &Filter{bits: make([]uint64, words), m: m, k: k, additions: int(additions)}
	for i := range f.bits {
		f.bits[i] = binary.LittleEndian.Uint64(data[12+8*i:])
	}
	return f, nil
}
