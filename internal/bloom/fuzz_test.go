package bloom

import "testing"

// FuzzUnmarshal hardens the filter wire decoder: no panic on arbitrary
// bytes, and successful decodes round trip bit-for-bit.
func FuzzUnmarshal(f *testing.F) {
	good := MustNew(256, 4)
	good.Add("seed-key")
	f.Add(good.Marshal())
	f.Add([]byte{})
	f.Add(make([]byte, 12))
	f.Fuzz(func(t *testing.T, data []byte) {
		fl, err := Unmarshal(data)
		if err != nil {
			return
		}
		out := fl.Marshal()
		back, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.Bits() != fl.Bits() || back.Hashes() != fl.Hashes() {
			t.Fatal("shape changed across round trip")
		}
		for _, probe := range []string{"a", "b", "seed-key"} {
			if fl.Test(probe) != back.Test(probe) {
				t.Fatal("membership changed across round trip")
			}
		}
	})
}
