package testutil

import (
	"fmt"
	"testing"
	"time"
)

// fakeT captures Fatalf so the timeout path can be tested without
// failing the real test.
type fakeT struct {
	failed bool
	msg    string
}

func (f *fakeT) Helper() {}
func (f *fakeT) Fatalf(format string, args ...any) {
	f.failed = true
	f.msg = fmt.Sprintf(format, args...)
}

func TestWaitForImmediate(t *testing.T) {
	calls := 0
	WaitFor(t, time.Second, func() bool { calls++; return true })
	if calls != 1 {
		t.Fatalf("already-true condition evaluated %d times, want 1", calls)
	}
}

func TestWaitForEventually(t *testing.T) {
	done := make(chan struct{})
	go func() { close(done) }()
	WaitFor(t, 5*time.Second, func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	})
}

func TestWaitForTimeout(t *testing.T) {
	ft := &fakeT{}
	start := time.Now()
	WaitFor(ft, 10*time.Millisecond, func() bool { return false }, "count=%d", 7)
	if !ft.failed {
		t.Fatal("WaitFor did not fail on timeout")
	}
	if ft.msg != "timed out after 10ms: count=7" {
		t.Fatalf("unexpected failure message %q", ft.msg)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("timeout took %v, far past the 10ms deadline", elapsed)
	}
}
