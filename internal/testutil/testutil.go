// Package testutil holds shared test helpers for the S-Ariadne test
// suites. Its main export, WaitFor, replaces time.Sleep-based
// synchronization: instead of guessing how long the goroutine meshes
// (discovery loops, elections, simnet delivery) need, tests poll for the
// condition they actually care about. The sleeptest analyzer in
// internal/analysis enforces the habit.
package testutil

import (
	"fmt"
	"sync"
	"time"
)

// PollInterval is how often WaitFor re-evaluates its condition. 2ms is
// fine-grained enough for the discovery tick intervals used in tests
// (10ms and below) while keeping the race detector's slowdown harmless.
const PollInterval = 2 * time.Millisecond

// failer is the subset of testing.TB WaitFor needs; taking the interface
// keeps testutil importable from benchmarks and example tests alike.
type failer interface {
	Helper()
	Fatalf(format string, args ...any)
}

// WaitFor polls cond every PollInterval until it returns true or timeout
// elapses, then fails the test with the optional printf-style message.
// The condition is evaluated once before any waiting, so already-true
// conditions return immediately.
func WaitFor(t failer, timeout time.Duration, cond func() bool, msgAndArgs ...any) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			msg := "condition not reached"
			if len(msgAndArgs) > 0 {
				msg = fmt.Sprintf(msgAndArgs[0].(string), msgAndArgs[1:]...)
			}
			t.Fatalf("timed out after %v: %s", timeout, msg)
			// Fatalf normally does not return; the explicit return keeps
			// non-testing.T failers (which do return) out of a spin loop.
			return
		}
		time.Sleep(PollInterval)
	}
}

// Eventually is WaitFor with a conventional default timeout, for the
// common "the mesh settles within a few seconds" waits.
func Eventually(t failer, cond func() bool, msgAndArgs ...any) {
	t.Helper()
	WaitFor(t, 5*time.Second, cond, msgAndArgs...)
}

// Clock is a manually advanced clock for components that take an
// injectable `now func() time.Time` (the tenant rate limiter, quota
// windows). Tests drive refill and window rollover deterministically with
// Advance instead of sleeping. Safe for concurrent use, so -race tests
// can hammer a limiter from many goroutines while another advances time.
type Clock struct {
	mu sync.Mutex
	t  time.Time
}

// NewClock returns a clock frozen at start. A zero start picks an
// arbitrary fixed epoch so durations still behave.
func NewClock(start time.Time) *Clock {
	if start.IsZero() {
		start = time.Date(2006, time.November, 27, 12, 0, 0, 0, time.UTC)
	}
	return &Clock{t: start}
}

// Now returns the current fake time; pass c.Now as the `now` dependency.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d.
func (c *Clock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}
