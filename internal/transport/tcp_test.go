package transport

import (
	"strings"
	"testing"
	"time"

	"sariadne/internal/testutil"
)

func newTestTCP(t *testing.T, seeds ...string) *TCP {
	t.Helper()
	tr, err := NewTCP(TCPConfig{Listen: "127.0.0.1:0", Codec: testCodec{}, Seeds: seeds})
	if err != nil {
		t.Fatalf("NewTCP: %v", err)
	}
	t.Cleanup(func() {
		if err := tr.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return tr
}

func TestTCPExchange(t *testing.T) {
	a := newTestTCP(t)
	b := newTestTCP(t)

	if err := a.Send(b.ID(), testPayload{Seq: 1, Note: "a to b"}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	from, p := recvPayload(t, b)
	if from != a.ID() || p.Seq != 1 {
		t.Fatalf("got from=%q payload=%+v", from, p)
	}

	// b learned a's advertised address from the envelope and dials back
	// on its own connection.
	if err := b.Send(a.ID(), testPayload{Seq: 2, Note: "b to a"}); err != nil {
		t.Fatalf("reply Send: %v", err)
	}
	from, p = recvPayload(t, a)
	if from != b.ID() || p.Seq != 2 {
		t.Fatalf("got from=%q payload=%+v", from, p)
	}
}

func TestTCPLargePayloadExceedsDatagram(t *testing.T) {
	a := newTestTCP(t)
	b := newTestTCP(t)

	// Well past the 64KiB datagram ceiling — the reason TCP exists here.
	big := testPayload{Seq: 3, Note: strings.Repeat("bloom-summary ", 10_000)}
	if err := a.Send(b.ID(), big); err != nil {
		t.Fatalf("Send: %v", err)
	}
	_, p := recvPayload(t, b)
	if p.Note != big.Note {
		t.Fatalf("large payload corrupted: %d bytes in, %d out", len(big.Note), len(p.Note))
	}
}

func TestTCPConnectionReuse(t *testing.T) {
	a := newTestTCP(t)
	b := newTestTCP(t)

	for i := 0; i < 10; i++ {
		if err := a.Send(b.ID(), testPayload{Seq: i}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, p := recvPayload(t, b); p.Seq != i {
			t.Fatalf("message %d arrived out of order: %+v", i, p)
		}
	}
	waitPeerFrames(t, b, a.ID(), 10)
	for _, p := range a.Peers() {
		if p.Addr == b.ID() && p.DialCount != 1 {
			t.Fatalf("10 sends used %d dials, want 1 (connection reuse)", p.DialCount)
		}
	}
}

func TestTCPSelfSendLoopsBack(t *testing.T) {
	a := newTestTCP(t)
	if err := a.Send(a.ID(), testPayload{Seq: 7}); err != nil {
		t.Fatalf("self Send: %v", err)
	}
	if from, p := recvPayload(t, a); from != a.ID() || p.Seq != 7 {
		t.Fatalf("got from=%q payload=%+v", from, p)
	}
}

func TestTCPBroadcastReachesAllPeers(t *testing.T) {
	a := newTestTCP(t)
	b := newTestTCP(t)
	c := newTestTCP(t)

	if err := b.Send(a.ID(), testPayload{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(a.ID(), testPayload{Seq: 2}); err != nil {
		t.Fatal(err)
	}
	recvPayload(t, a)
	recvPayload(t, a)

	n, err := a.Broadcast(3, testPayload{Seq: 9})
	if err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	if n != 2 {
		t.Fatalf("Broadcast queued for %d peers, want 2", n)
	}
	for _, peer := range []*TCP{b, c} {
		if from, p := recvPayload(t, peer); from != a.ID() || p.Seq != 9 {
			t.Fatalf("%s got from=%q payload=%+v", peer.ID(), from, p)
		}
	}
}

func TestTCPSendToDeadPeerDropsWithoutBlocking(t *testing.T) {
	a := newTestTCP(t)
	dead := newTestTCP(t)
	deadAddr := dead.ID()
	if err := dead.Close(); err != nil {
		t.Fatal(err)
	}

	// Queueing succeeds (the writer drops on dial failure); the protocol
	// sees the loss through its own retry machinery, not a stuck Send.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			_ = a.Send(deadAddr, testPayload{Seq: i})
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Send to dead peer blocked")
	}
	testutil.WaitFor(t, 5*time.Second, func() bool {
		for _, p := range a.Peers() {
			if p.Addr == deadAddr && p.DialCount > 0 && p.FramesSent == 0 {
				return true
			}
		}
		return false
	}, "dial failures never recorded")
}

func TestTCPCloseJoinsEverything(t *testing.T) {
	a := newTestTCP(t)
	b := newTestTCP(t)
	if err := a.Send(b.ID(), testPayload{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	recvPayload(t, b)

	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, ok := <-a.Inbox(); ok {
		t.Fatal("inbox still open after Close")
	}
	if err := a.Send(b.ID(), testPayload{}); err == nil {
		t.Fatal("Send succeeded after Close")
	}
}
