package transport

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	bodies := [][]byte{
		nil,
		{},
		[]byte("x"),
		[]byte(strings.Repeat("payload", 1000)),
		bytes.Repeat([]byte{0}, MaxFrameBody),
	}
	for _, body := range bodies {
		frame, err := EncodeFrame("127.0.0.1:7946", body)
		if err != nil {
			t.Fatalf("EncodeFrame(%d bytes): %v", len(body), err)
		}
		from, got, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("DecodeFrame(%d bytes): %v", len(body), err)
		}
		if from != "127.0.0.1:7946" {
			t.Fatalf("from = %q", from)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("body mismatch: %d bytes in, %d out", len(body), len(got))
		}
	}
}

func TestFrameStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	bodies := [][]byte{[]byte("first"), []byte("second"), bytes.Repeat([]byte("z"), 100_000)}
	for _, body := range bodies {
		if _, err := WriteFrame(&buf, "node-a:1", body); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for _, want := range bodies {
		from, body, n, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		if from != "node-a:1" || !bytes.Equal(body, want) {
			t.Fatalf("ReadFrame = %q, %d bytes; want %d bytes", from, len(body), len(want))
		}
		if n != frameHeaderLen+len("node-a:1")+len(want) {
			t.Fatalf("ReadFrame count = %d", n)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("%d bytes left over", buf.Len())
	}
}

func TestFrameRejectsForeignVersion(t *testing.T) {
	frame, err := EncodeFrame("a:1", []byte("body"))
	if err != nil {
		t.Fatal(err)
	}
	frame[0] = FrameVersion + 1

	_, _, err = DecodeFrame(frame)
	var ve *FrameVersionError
	if !errors.As(err, &ve) {
		t.Fatalf("DecodeFrame error = %v, want *FrameVersionError", err)
	}
	if ve.Got != FrameVersion+1 {
		t.Fatalf("Got = %d", ve.Got)
	}

	_, _, _, err = ReadFrame(bytes.NewReader(frame))
	if !errors.As(err, &ve) {
		t.Fatalf("ReadFrame error = %v, want *FrameVersionError", err)
	}
}

func TestFrameRejectsTruncation(t *testing.T) {
	frame, err := EncodeFrame("host:9", []byte("some body bytes"))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := DecodeFrame(frame[:cut]); !errors.Is(err, ErrFrameTruncated) {
			t.Fatalf("DecodeFrame(%d of %d bytes) = %v, want ErrFrameTruncated", cut, len(frame), err)
		}
		if cut == 0 {
			continue // ReadFrame reports io.EOF before any header byte
		}
		_, _, _, err := ReadFrame(bytes.NewReader(frame[:cut]))
		if err == nil {
			t.Fatalf("ReadFrame(%d of %d bytes) succeeded", cut, len(frame))
		}
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	if _, err := EncodeFrame(Addr(strings.Repeat("a", MaxAddrLen+1)), nil); !errors.Is(err, ErrFrameOversize) {
		t.Fatalf("oversize addr: %v", err)
	}
	if _, err := EncodeFrame("a:1", make([]byte, MaxFrameBody+1)); !errors.Is(err, ErrFrameOversize) {
		t.Fatalf("oversize body: %v", err)
	}

	// Hand-craft an envelope whose declared body length is hostile; the
	// reader must reject it before allocating.
	frame, err := EncodeFrame("a:1", []byte("ok"))
	if err != nil {
		t.Fatal(err)
	}
	lenOff := 1 + 2 + len("a:1")
	frame[lenOff] = 0xff
	frame[lenOff+1] = 0xff
	frame[lenOff+2] = 0xff
	frame[lenOff+3] = 0xff
	if _, _, err := DecodeFrame(frame); !errors.Is(err, ErrFrameOversize) {
		t.Fatalf("hostile body length, DecodeFrame: %v", err)
	}
	if _, _, _, err := ReadFrame(bytes.NewReader(frame)); !errors.Is(err, ErrFrameOversize) {
		t.Fatalf("hostile body length, ReadFrame: %v", err)
	}
}

func TestFrameRejectsTrailingGarbage(t *testing.T) {
	frame, err := EncodeFrame("a:1", []byte("body"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeFrame(append(frame, 0xde, 0xad)); err == nil {
		t.Fatal("DecodeFrame accepted trailing garbage")
	}
}
