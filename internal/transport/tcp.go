package transport

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"
)

// TCPConfig parameterizes a TCP stream transport.
type TCPConfig struct {
	// Listen is the TCP address to bind ("127.0.0.1:0" picks a free
	// port). Required.
	Listen string
	// Advertise is the address announced to peers as this node's
	// identity; defaults to the bound address.
	Advertise string
	// Codec serializes protocol payloads. Required.
	Codec Codec
	// Seeds are peer addresses known before any traffic arrives.
	Seeds []string
	// QueueSize bounds the inbox and each per-peer write queue. Frames
	// offered to a full queue are dropped and counted. Defaults to 128.
	QueueSize int
	// DialTimeout bounds one connection attempt. Defaults to 2s.
	DialTimeout time.Duration
}

// TCP is the stream transport: frames (frame.go envelopes) ride
// length-delimited on persistent connections. Each peer gets one
// outbound connection, dialed on first send and reused after, fed by a
// dedicated writer goroutine draining a bounded queue — so a slow or
// dead peer backpressures into drops on its own queue instead of
// stalling the protocol loop. Inbound connections get their own reader
// until the remote closes; peer identity comes from the envelope's
// advertised address, never the socket's source address.
type TCP struct {
	ln    net.Listener
	codec Codec
	self  Addr
	inbox chan Message
	queue int
	dialT time.Duration

	mu     sync.Mutex
	peers  map[Addr]*tcpPeer // guarded by mu
	conns  map[net.Conn]bool // guarded by mu; every live conn, for Close
	closed bool              // guarded by mu

	wg sync.WaitGroup
}

// tcpPeer holds the outbound side of one peer: the write queue its
// writer goroutine drains (nil until first send) and the diagnostics
// snapshot.
type tcpPeer struct {
	sendq chan []byte
	stat  Peer
}

// NewTCP binds a TCP transport and starts its acceptor.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	if cfg.Codec == nil {
		return nil, fmt.Errorf("transport: tcp: nil codec")
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: tcp listen %q: %w", cfg.Listen, err)
	}
	self := cfg.Advertise
	if self == "" {
		self = ln.Addr().String()
	}
	queue := cfg.QueueSize
	if queue <= 0 {
		queue = 128
	}
	dialT := cfg.DialTimeout
	if dialT <= 0 {
		dialT = 2 * time.Second
	}
	t := &TCP{
		ln:    ln,
		codec: cfg.Codec,
		self:  Addr(self),
		inbox: make(chan Message, queue),
		queue: queue,
		dialT: dialT,
		peers: make(map[Addr]*tcpPeer),
		conns: make(map[net.Conn]bool),
	}
	for _, s := range cfg.Seeds {
		if Addr(s) == t.self || s == "" {
			continue
		}
		t.peers[Addr(s)] = &tcpPeer{}
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// ID implements Endpoint.
func (t *TCP) ID() Addr { return t.self }

// Inbox implements Endpoint.
func (t *TCP) Inbox() <-chan Message { return t.inbox }

// acceptLoop takes inbound connections and spawns a reader per
// connection. It exits when Close shuts the listener down.
func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !t.track(conn) {
			_ = conn.Close()
			return
		}
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

// track registers a live connection for Close to tear down; it reports
// false when the transport has already closed.
func (t *TCP) track(conn net.Conn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return false
	}
	t.conns[conn] = true
	return true
}

// untrack forgets a connection once its owner has closed it.
func (t *TCP) untrack(conn net.Conn) {
	t.mu.Lock()
	delete(t.conns, conn)
	t.mu.Unlock()
}

// readLoop drains frames from one connection (inbound or outbound —
// peers may reply down a connection we dialed) until it fails or the
// transport closes.
func (t *TCP) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer t.untrack(conn)
	defer conn.Close()
	for {
		from, body, n, err := t.readOne(conn)
		if err != nil {
			return
		}
		if from == t.self {
			framesDroppedTotal.Inc()
			continue
		}
		payload, err := t.codec.Decode(body)
		if err != nil {
			framesDroppedTotal.Inc()
			continue
		}
		bytesReceivedTotal.Add(uint64(n))
		framesReceivedTotal.Inc()
		t.mu.Lock()
		p := t.peerLocked(from)
		p.stat.FramesReceived++
		p.stat.BytesReceived += uint64(n)
		p.stat.LastSeen = time.Now()
		t.deliverLocked(Message{From: from, To: t.self, Hops: 1, Payload: payload})
		t.mu.Unlock()
	}
}

// readOne reads a single envelope, treating a foreign frame version as
// fatal for the connection (the stream cannot be resynchronized past an
// envelope we cannot parse).
func (t *TCP) readOne(conn net.Conn) (Addr, []byte, int, error) {
	from, body, n, err := ReadFrame(conn)
	if err != nil {
		framesDroppedTotal.Inc()
		return "", nil, n, err
	}
	return from, body, n, nil
}

// peerLocked returns the peer record for addr, creating it on first
// contact. Callers hold t.mu.
func (t *TCP) peerLocked(addr Addr) *tcpPeer {
	p, ok := t.peers[addr]
	if !ok {
		p = &tcpPeer{}
		t.peers[addr] = p
	}
	return p
}

// deliverLocked hands a message to the inbox, dropping (and counting)
// when full or closed; it never blocks. Callers hold t.mu.
func (t *TCP) deliverLocked(msg Message) {
	if t.closed {
		framesDroppedTotal.Inc()
		return
	}
	select {
	case t.inbox <- msg:
	default:
		framesDroppedTotal.Inc()
	}
}

// Send implements Endpoint: the frame is queued for the peer's writer
// goroutine, which dials on first use and reuses the connection after.
// A full queue drops the frame — retries and leases up in discovery are
// the recovery story, exactly as for datagram loss.
func (t *TCP) Send(to Addr, payload any) error {
	if to == t.self {
		t.mu.Lock()
		defer t.mu.Unlock()
		if t.closed {
			return fmt.Errorf("transport: tcp: closed")
		}
		t.deliverLocked(Message{From: t.self, To: t.self, Hops: 0, Payload: payload})
		return nil
	}
	body, err := t.codec.Encode(payload)
	if err != nil {
		return err
	}
	frame, err := EncodeFrame(t.self, body)
	if err != nil {
		return err
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return fmt.Errorf("transport: tcp: closed")
	}
	p := t.peerLocked(to)
	if p.sendq == nil {
		p.sendq = make(chan []byte, t.queue)
		t.wg.Add(1)
		go t.writeLoop(to, p.sendq)
	}
	select {
	case p.sendq <- frame:
		t.mu.Unlock()
		return nil
	default:
		t.mu.Unlock()
		framesDroppedTotal.Inc()
		return fmt.Errorf("transport: tcp send to %s: queue full", to)
	}
}

// writeLoop owns the outbound connection to one peer: dial on demand,
// write queued frames, drop the connection (to be re-dialed) on write
// failure. It exits when Close drains the transport.
func (t *TCP) writeLoop(to Addr, sendq chan []byte) {
	defer t.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			t.untrack(conn)
			_ = conn.Close()
		}
	}()
	for frame := range sendq {
		if conn == nil {
			c, err := t.dial(to)
			if err != nil {
				framesDroppedTotal.Inc()
				continue
			}
			conn = c
		}
		start := time.Now()
		n, err := conn.Write(frame)
		sendSeconds.ObserveSince(start)
		if err != nil {
			framesDroppedTotal.Inc()
			t.untrack(conn)
			_ = conn.Close()
			conn = nil
			continue
		}
		bytesSentTotal.Add(uint64(n))
		framesSentTotal.Inc()
		t.mu.Lock()
		st := &t.peerLocked(to).stat
		st.FramesSent++
		st.BytesSent += uint64(n)
		st.SendCount++
		st.SendNanos += int64(time.Since(start))
		t.mu.Unlock()
	}
}

// dial opens (and starts reading from) a fresh connection to a peer,
// recording dial latency per peer and process-wide.
func (t *TCP) dial(to Addr) (net.Conn, error) {
	start := time.Now()
	conn, err := net.DialTimeout("tcp", string(to), t.dialT)
	dialSeconds.ObserveSince(start)
	t.mu.Lock()
	st := &t.peerLocked(to).stat
	st.DialCount++
	st.DialNanos += int64(time.Since(start))
	t.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if !t.track(conn) {
		_ = conn.Close()
		return nil, fmt.Errorf("transport: tcp: closed")
	}
	// Read replies arriving on the dialed connection too: some peers
	// answer on the socket the request came in on.
	t.wg.Add(1)
	go t.readLoop(conn)
	return conn, nil
}

// Broadcast implements Endpoint: one frame to every known peer (the
// overlay backbone is fully meshed, so ttl is accepted but unused).
func (t *TCP) Broadcast(_ int, payload any) (int, error) {
	if _, err := t.codec.Encode(payload); err != nil {
		return 0, err
	}
	t.mu.Lock()
	targets := make([]Addr, 0, len(t.peers))
	for addr := range t.peers {
		targets = append(targets, addr)
	}
	t.mu.Unlock()
	sent := 0
	for _, to := range targets {
		if t.Send(to, payload) == nil {
			sent++
		}
	}
	return sent, nil
}

// Peers implements PeerLister.
func (t *TCP) Peers() []Peer {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Peer, 0, len(t.peers))
	for addr, p := range t.peers {
		st := p.stat
		st.Addr = addr
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Healthy implements the optional liveness probe health surfaces use: a
// closed transport cannot carry backbone traffic.
func (t *TCP) Healthy() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fmt.Errorf("transport: tcp: closed")
	}
	return nil
}

// Close implements Transport: stop the listener, close send queues and
// live connections, join every goroutine, then close the inbox.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for _, p := range t.peers {
		if p.sendq != nil {
			close(p.sendq)
			p.sendq = nil
		}
	}
	conns := make([]net.Conn, 0, len(t.conns))
	for c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	err := t.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	t.wg.Wait()
	// closed is set, so no deliverLocked can race this close.
	close(t.inbox)
	return err
}

var (
	_ Transport  = (*TCP)(nil)
	_ PeerLister = (*TCP)(nil)
)
