package transport

import (
	"net"
	"testing"
	"time"

	"sariadne/internal/testutil"
)

// sendRaw writes one datagram straight to a transport's socket,
// bypassing the framing — the hostile-peer case.
func sendRaw(t *testing.T, to Addr, datagram []byte) error {
	t.Helper()
	conn, err := net.Dial("udp", string(to))
	if err != nil {
		return err
	}
	defer conn.Close()
	_, err = conn.Write(datagram)
	return err
}

func newTestUDP(t *testing.T, seeds ...string) *UDP {
	t.Helper()
	u, err := NewUDP(UDPConfig{Listen: "127.0.0.1:0", Codec: testCodec{}, Seeds: seeds})
	if err != nil {
		t.Fatalf("NewUDP: %v", err)
	}
	t.Cleanup(func() {
		if err := u.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return u
}

func TestUDPExchange(t *testing.T) {
	a := newTestUDP(t)
	b := newTestUDP(t)

	if err := a.Send(b.ID(), testPayload{Seq: 1, Note: "a to b"}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	from, p := recvPayload(t, b)
	if from != a.ID() || p.Seq != 1 || p.Note != "a to b" {
		t.Fatalf("got from=%q payload=%+v", from, p)
	}

	// b learned a from the envelope; the reply needs no seeding.
	if err := b.Send(a.ID(), testPayload{Seq: 2, Note: "b to a"}); err != nil {
		t.Fatalf("reply Send: %v", err)
	}
	from, p = recvPayload(t, a)
	if from != b.ID() || p.Seq != 2 {
		t.Fatalf("got from=%q payload=%+v", from, p)
	}

	// Per-peer stats reflect the exchange on both sides.
	waitPeerFrames(t, b, a.ID(), 1)
	peers := a.Peers()
	if len(peers) != 1 || peers[0].Addr != b.ID() {
		t.Fatalf("a.Peers() = %+v", peers)
	}
	if peers[0].FramesSent != 1 || peers[0].BytesSent == 0 || peers[0].SendCount != 1 {
		t.Fatalf("a's send stats = %+v", peers[0])
	}
	testutil.WaitFor(t, 5*time.Second, func() bool {
		return a.Peers()[0].FramesReceived == 1 && !a.Peers()[0].LastSeen.IsZero()
	}, "a never recorded b's frame")
}

func TestUDPSelfSendLoopsBack(t *testing.T) {
	a := newTestUDP(t)
	if err := a.Send(a.ID(), testPayload{Seq: 7}); err != nil {
		t.Fatalf("self Send: %v", err)
	}
	from, p := recvPayload(t, a)
	if from != a.ID() || p.Seq != 7 {
		t.Fatalf("got from=%q payload=%+v", from, p)
	}
	if len(a.Peers()) != 0 {
		t.Fatalf("self-send created a peer: %+v", a.Peers())
	}
}

func TestUDPBroadcastReachesAllPeers(t *testing.T) {
	a := newTestUDP(t)
	b := newTestUDP(t, string(a.ID()))
	c := newTestUDP(t, string(a.ID()))

	// a hears from both, learning them as peers.
	if err := b.Send(a.ID(), testPayload{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Send(a.ID(), testPayload{Seq: 2}); err != nil {
		t.Fatal(err)
	}
	recvPayload(t, a)
	recvPayload(t, a)

	n, err := a.Broadcast(3, testPayload{Seq: 9, Note: "flood"})
	if err != nil {
		t.Fatalf("Broadcast: %v", err)
	}
	if n != 2 {
		t.Fatalf("Broadcast reached %d peers, want 2", n)
	}
	for _, peer := range []*UDP{b, c} {
		from, p := recvPayload(t, peer)
		if from != a.ID() || p.Seq != 9 {
			t.Fatalf("%s got from=%q payload=%+v", peer.ID(), from, p)
		}
	}
}

func TestUDPBroadcastRejectsUnencodablePayload(t *testing.T) {
	a := newTestUDP(t, "127.0.0.1:9")
	if _, err := a.Broadcast(3, struct{ C chan int }{}); err == nil {
		t.Fatal("Broadcast encoded the unencodable")
	}
	if err := a.Send("127.0.0.1:9", struct{ C chan int }{}); err == nil {
		t.Fatal("Send encoded the unencodable")
	}
}

func TestUDPCloseClosesInboxAndRefusesSends(t *testing.T) {
	a := newTestUDP(t)
	b := newTestUDP(t)
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, ok := <-a.Inbox(); ok {
		t.Fatal("inbox still open after Close")
	}
	if err := a.Send(b.ID(), testPayload{}); err == nil {
		t.Fatal("Send succeeded after Close")
	}
	if err := a.Send(a.ID(), testPayload{}); err == nil {
		t.Fatal("self Send succeeded after Close")
	}
}

func TestUDPDropsMalformedDatagrams(t *testing.T) {
	a := newTestUDP(t)
	b := newTestUDP(t)

	// A foreign-version frame and raw garbage must both be dropped
	// without wedging the reader.
	frame, err := EncodeFrame(b.ID(), []byte(`{"seq":1}`))
	if err != nil {
		t.Fatal(err)
	}
	frame[0] = FrameVersion + 9
	if err := sendRaw(t, a.ID(), frame); err != nil {
		t.Fatal(err)
	}
	if err := sendRaw(t, a.ID(), []byte("not a frame")); err != nil {
		t.Fatal(err)
	}

	// A well-formed frame after the garbage still arrives.
	if err := b.Send(a.ID(), testPayload{Seq: 42}); err != nil {
		t.Fatal(err)
	}
	if _, p := recvPayload(t, a); p.Seq != 42 {
		t.Fatalf("payload = %+v", p)
	}
	if len(a.Peers()) != 1 {
		t.Fatalf("malformed frames created peers: %+v", a.Peers())
	}
}
