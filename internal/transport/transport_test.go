package transport

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"sariadne/internal/simnet"
	"sariadne/internal/testutil"
)

// testPayload is the message type the transport tests ship around; the
// real protocol's codec is injected the same way by discovery.
type testPayload struct {
	Seq  int    `json:"seq"`
	Note string `json:"note"`
}

// testCodec is a minimal Codec over testPayload.
type testCodec struct{}

func (testCodec) Encode(payload any) ([]byte, error) {
	p, ok := payload.(testPayload)
	if !ok {
		return nil, fmt.Errorf("testCodec: unencodable %T", payload)
	}
	return json.Marshal(p)
}

func (testCodec) Decode(frame []byte) (any, error) {
	var p testPayload
	if err := json.Unmarshal(frame, &p); err != nil {
		return nil, err
	}
	return p, nil
}

// recvPayload waits for one message on tr's inbox and returns its
// payload, failing the test on timeout.
func recvPayload(t *testing.T, tr Transport) (Addr, testPayload) {
	t.Helper()
	select {
	case msg, ok := <-tr.Inbox():
		if !ok {
			t.Fatalf("%s: inbox closed", tr.ID())
		}
		p, ok := msg.Payload.(testPayload)
		if !ok {
			t.Fatalf("%s: payload %T", tr.ID(), msg.Payload)
		}
		return msg.From, p
	case <-time.After(5 * time.Second):
		t.Fatalf("%s: no message within 5s", tr.ID())
	}
	panic("unreachable")
}

func TestWrapAdaptsSimnetEndpoint(t *testing.T) {
	net := simnet.New(simnet.Config{})
	defer net.Close()
	a, err := net.AddNode("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.AddNode("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Connect("a", "b"); err != nil {
		t.Fatal(err)
	}

	ta := Wrap(a)
	tb := Wrap(b)
	if ta.ID() != "a" || tb.ID() != "b" {
		t.Fatalf("IDs = %q, %q", ta.ID(), tb.ID())
	}
	if err := ta.Send("b", "hello"); err != nil {
		t.Fatalf("Send: %v", err)
	}
	select {
	case msg := <-tb.Inbox():
		if msg.From != "a" || msg.Payload != "hello" {
			t.Fatalf("got %+v", msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery through adapter")
	}
	// Close must be a no-op: the network owns the endpoint's lifetime.
	if err := ta.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := ta.Send("b", "still alive"); err != nil {
		t.Fatalf("Send after adapter Close: %v", err)
	}
}

func TestWrapPassesTransportsThrough(t *testing.T) {
	u, err := NewUDP(UDPConfig{Listen: "127.0.0.1:0", Codec: testCodec{}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := u.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	if Wrap(u) != Transport(u) {
		t.Fatal("Wrap re-wrapped a Transport")
	}
}

func TestPeersSortedAndSnapshotted(t *testing.T) {
	u, err := NewUDP(UDPConfig{
		Listen: "127.0.0.1:0",
		Codec:  testCodec{},
		Seeds:  []string{"127.0.0.1:9002", "127.0.0.1:9001"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := u.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	peers := u.Peers()
	if len(peers) != 2 || peers[0].Addr != "127.0.0.1:9001" || peers[1].Addr != "127.0.0.1:9002" {
		t.Fatalf("Peers = %+v", peers)
	}
	if !peers[0].LastSeen.IsZero() {
		t.Fatalf("seed never heard from has LastSeen %v", peers[0].LastSeen)
	}
}

// waitPeerFrames blocks until the transport's stats for peer show at
// least n received frames.
func waitPeerFrames(t *testing.T, pl PeerLister, peer Addr, n uint64) {
	t.Helper()
	testutil.WaitFor(t, 5*time.Second, func() bool {
		for _, p := range pl.Peers() {
			if p.Addr == peer && p.FramesReceived >= n {
				return true
			}
		}
		return false
	}, "peer %s never reached %d received frames", peer, n)
}
