// Package transport abstracts how S-Ariadne protocol messages move
// between nodes: addressing, unicast send, vicinity broadcast, an inbox
// channel, and shutdown. The discovery and election layers speak only
// this interface, so the same protocol code runs over three substrates:
//
//   - the in-memory simulator (internal/simnet), whose *Endpoint already
//     satisfies Endpoint and is adapted by Wrap — every simulation and
//     test keeps its deterministic hop-limited semantics;
//   - UDP datagrams (NewUDP), one message per datagram, for real
//     federation of sdpd directories over loopback or a LAN;
//   - TCP streams (NewTCP), with connection reuse and per-peer write
//     queues, for payloads that outgrow a datagram (Bloom summary
//     pushes, RepublishSolicit bursts).
//
// The socket transports serialize payloads through a Codec — supplied by
// the protocol layer, so transport stays ignorant of message types and
// the discovery package stays ignorant of sockets — and wrap the encoded
// bytes in the version/length envelope of frame.go.
//
// Addr and Message alias the simulator's NodeID and Message types rather
// than redefining them: the fields (From, To, Hops, Broadcast, Payload)
// are substrate-agnostic, and sharing one address namespace is what lets
// the protocol packages migrate without touching every test. Over socket
// transports an Addr is a dialable "host:port" string.
package transport

import (
	"time"

	"sariadne/internal/simnet"
)

// Addr identifies a protocol participant: a node name on the simulator,
// a dialable host:port on the socket transports.
type Addr = simnet.NodeID

// Message is one delivered payload with routing metadata. Socket
// transports deliver every frame with Hops 1 (the backbone mesh is one
// overlay hop wide); the simulator reports real path lengths.
type Message = simnet.Message

// Codec serializes protocol payloads for the socket transports. The
// discovery package's wire codec implements it; injecting the codec here
// keeps transport free of protocol types (and of import cycles).
type Codec interface {
	// Encode turns one protocol message into a self-describing frame.
	Encode(payload any) ([]byte, error)
	// Decode parses a frame back into the concrete message value.
	Decode(frame []byte) (any, error)
}

// Endpoint is the sender/receiver surface the protocol layers consume.
// *simnet.Endpoint satisfies it as-is.
type Endpoint interface {
	// ID returns this endpoint's own address.
	ID() Addr
	// Send unicasts a payload. Delivery is best-effort: losses are the
	// protocol's problem (retries, leases), only addressing and shutdown
	// errors are reported.
	Send(to Addr, payload any) error
	// Broadcast floods a payload to the vicinity, up to ttl hops on the
	// simulator; socket transports send to every known peer (the overlay
	// backbone is fully meshed, so ttl is accepted but moot) and return
	// how many peers were addressed.
	Broadcast(ttl int, payload any) (int, error)
	// Inbox is the delivery channel; it closes when the transport shuts
	// down.
	Inbox() <-chan Message
}

// Transport is an Endpoint whose lifetime the owner controls.
type Transport interface {
	Endpoint
	// Close releases sockets and goroutines and closes the inbox.
	Close() error
}

// endpointTransport adapts a bare Endpoint (typically *simnet.Endpoint,
// whose lifecycle the owning simnet.Network manages) into a Transport
// with a no-op Close.
type endpointTransport struct {
	Endpoint
}

func (endpointTransport) Close() error { return nil }

// Wrap adapts an Endpoint into a Transport. Values that already are
// Transports (the socket transports) pass through unchanged; simulator
// endpoints get a no-op Close, since simnet.Network owns their lifetime.
func Wrap(ep Endpoint) Transport {
	if t, ok := ep.(Transport); ok {
		return t
	}
	return endpointTransport{ep}
}

// Peer is a snapshot of one live peer of a socket transport, for
// diagnostics surfaces (sdpd's GET /peers). Latency totals are kept
// per-peer here — the process-wide telemetry registry is a flat literal
// namespace, so per-peer histograms live in these counters instead —
// and a mean is Nanos/Count.
type Peer struct {
	// Addr is the peer's advertised (dialable) address.
	Addr Addr `json:"addr"`
	// LastSeen is when a frame from this peer last arrived (zero for
	// seeds never heard from).
	LastSeen time.Time `json:"last_seen,omitzero"`
	// Frame and byte counters for traffic attributed to this peer.
	FramesSent     uint64 `json:"frames_sent"`
	FramesReceived uint64 `json:"frames_received"`
	BytesSent      uint64 `json:"bytes_sent"`
	BytesReceived  uint64 `json:"bytes_received"`
	// SendCount/SendNanos accumulate send-call latency to this peer.
	SendCount uint64 `json:"send_count"`
	SendNanos int64  `json:"send_nanos"`
	// DialCount/DialNanos accumulate dial latency (TCP only).
	DialCount uint64 `json:"dial_count"`
	DialNanos int64  `json:"dial_nanos"`
}

// PeerLister is implemented by transports that track live peers.
type PeerLister interface {
	// Peers returns a snapshot of known peers, sorted by address.
	Peers() []Peer
}
