package transport

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"
)

// UDPConfig parameterizes a UDP datagram transport.
type UDPConfig struct {
	// Listen is the UDP address to bind ("127.0.0.1:0" picks a free
	// port). Required.
	Listen string
	// Advertise is the address announced to peers as this node's
	// identity. It defaults to the bound address, which is only dialable
	// when Listen names a concrete interface; daemons binding 0.0.0.0 or
	// sitting behind NAT must set it explicitly.
	Advertise string
	// Codec serializes protocol payloads. Required.
	Codec Codec
	// Seeds are peer addresses known before any traffic arrives; they
	// bootstrap Broadcast so a fresh daemon can announce itself.
	Seeds []string
	// QueueSize bounds the inbox; deliveries to a full inbox are dropped
	// and counted, mirroring the simulator. Defaults to 128.
	QueueSize int
}

// UDP is the datagram transport: one protocol message per datagram,
// wrapped in the frame.go envelope. Peers are the configured seeds plus
// every address a valid frame ever arrived from, so the mesh fills in as
// daemons announce themselves. Sends to this node's own address bypass
// the socket and go straight to the inbox, which is how a federated
// directory queries itself.
type UDP struct {
	conn  *net.UDPConn
	codec Codec
	self  Addr
	inbox chan Message

	mu     sync.Mutex
	peers  map[Addr]*udpPeer // guarded by mu
	closed bool              // guarded by mu

	readerDone chan struct{}
}

// udpPeer is what the transport tracks per peer: the resolved socket
// address (lazily, so peers learned from inbound traffic cost nothing
// until addressed) and the diagnostics snapshot.
type udpPeer struct {
	raddr *net.UDPAddr
	stat  Peer
}

// NewUDP binds a UDP transport and starts its reader.
func NewUDP(cfg UDPConfig) (*UDP, error) {
	if cfg.Codec == nil {
		return nil, fmt.Errorf("transport: udp: nil codec")
	}
	laddr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: udp listen %q: %w", cfg.Listen, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("transport: udp listen %q: %w", cfg.Listen, err)
	}
	self := cfg.Advertise
	if self == "" {
		self = conn.LocalAddr().String()
	}
	queue := cfg.QueueSize
	if queue <= 0 {
		queue = 128
	}
	u := &UDP{
		conn:       conn,
		codec:      cfg.Codec,
		self:       Addr(self),
		inbox:      make(chan Message, queue),
		peers:      make(map[Addr]*udpPeer),
		readerDone: make(chan struct{}),
	}
	for _, s := range cfg.Seeds {
		if Addr(s) == u.self || s == "" {
			continue
		}
		u.peers[Addr(s)] = &udpPeer{}
	}
	go u.readLoop()
	return u, nil
}

// ID implements Endpoint.
func (u *UDP) ID() Addr { return u.self }

// Inbox implements Endpoint.
func (u *UDP) Inbox() <-chan Message { return u.inbox }

// readLoop is the single socket reader: it decodes envelopes and bodies,
// learns peers from the advertised sender address, and delivers to the
// inbox. It exits when Close shuts the socket down, then hands the inbox
// back to Close for the final close.
func (u *UDP) readLoop() {
	defer close(u.readerDone)
	buf := make([]byte, 64*1024)
	for {
		n, _, err := u.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		from, body, err := DecodeFrame(buf[:n])
		if err != nil || from == u.self {
			framesDroppedTotal.Inc()
			continue
		}
		payload, err := u.codec.Decode(body)
		if err != nil {
			framesDroppedTotal.Inc()
			continue
		}
		bytesReceivedTotal.Add(uint64(n))
		framesReceivedTotal.Inc()
		u.mu.Lock()
		p := u.peerLocked(from)
		p.stat.FramesReceived++
		p.stat.BytesReceived += uint64(n)
		p.stat.LastSeen = time.Now()
		u.deliverLocked(Message{From: from, To: u.self, Hops: 1, Payload: payload})
		u.mu.Unlock()
	}
}

// peerLocked returns the peer record for addr, creating it on first
// contact. Callers hold u.mu.
func (u *UDP) peerLocked(addr Addr) *udpPeer {
	p, ok := u.peers[addr]
	if !ok {
		p = &udpPeer{}
		u.peers[addr] = p
	}
	return p
}

// deliverLocked hands a message to the inbox, dropping (and counting)
// when it is full or the transport is closed. Running under u.mu is what
// makes the close-vs-deliver race impossible; the send never blocks, so
// the lock is held only momentarily. Callers hold u.mu.
func (u *UDP) deliverLocked(msg Message) {
	if u.closed {
		framesDroppedTotal.Inc()
		return
	}
	select {
	case u.inbox <- msg:
	default:
		framesDroppedTotal.Inc()
	}
}

// Send implements Endpoint. Sending to this node's own address delivers
// straight to the inbox (zero hops, no serialization), matching how a
// directory node addresses itself through the protocol.
func (u *UDP) Send(to Addr, payload any) error {
	if to == u.self {
		u.mu.Lock()
		defer u.mu.Unlock()
		if u.closed {
			return fmt.Errorf("transport: udp: closed")
		}
		u.deliverLocked(Message{From: u.self, To: u.self, Hops: 0, Payload: payload})
		return nil
	}
	body, err := u.codec.Encode(payload)
	if err != nil {
		return err
	}
	frame, err := EncodeFrame(u.self, body)
	if err != nil {
		return err
	}
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return fmt.Errorf("transport: udp: closed")
	}
	p := u.peerLocked(to)
	if p.raddr == nil {
		raddr, err := net.ResolveUDPAddr("udp", string(to))
		if err != nil {
			u.mu.Unlock()
			framesDroppedTotal.Inc()
			return fmt.Errorf("transport: udp resolve %q: %w", to, err)
		}
		p.raddr = raddr
	}
	raddr := p.raddr
	u.mu.Unlock()

	start := time.Now()
	n, err := u.conn.WriteToUDP(frame, raddr)
	sendSeconds.ObserveSince(start)
	if err != nil {
		framesDroppedTotal.Inc()
		return fmt.Errorf("transport: udp send to %s: %w", to, err)
	}
	bytesSentTotal.Add(uint64(n))
	framesSentTotal.Inc()
	u.mu.Lock()
	st := &u.peerLocked(to).stat
	st.FramesSent++
	st.BytesSent += uint64(n)
	st.SendCount++
	st.SendNanos += int64(time.Since(start))
	u.mu.Unlock()
	return nil
}

// Broadcast implements Endpoint: the payload goes to every known peer
// (seeds plus learned). The backbone overlay is fully meshed, so the
// simulator's hop-limited flood degenerates to one round of unicasts and
// ttl is accepted but unused. The count of peers successfully written is
// returned; individual losses are the protocol's to absorb.
func (u *UDP) Broadcast(_ int, payload any) (int, error) {
	if _, err := u.codec.Encode(payload); err != nil {
		// Unencodable payloads (e.g. election vicinity traffic, which
		// never crosses a socket backbone) are reported, not sent.
		return 0, err
	}
	u.mu.Lock()
	targets := make([]Addr, 0, len(u.peers))
	for addr := range u.peers {
		targets = append(targets, addr)
	}
	u.mu.Unlock()
	sent := 0
	for _, to := range targets {
		if u.Send(to, payload) == nil {
			sent++
		}
	}
	return sent, nil
}

// Peers implements PeerLister.
func (u *UDP) Peers() []Peer {
	u.mu.Lock()
	defer u.mu.Unlock()
	out := make([]Peer, 0, len(u.peers))
	for addr, p := range u.peers {
		st := p.stat
		st.Addr = addr
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// Healthy implements the optional liveness probe health surfaces use: a
// closed transport cannot carry backbone traffic.
func (u *UDP) Healthy() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.closed {
		return fmt.Errorf("transport: udp: closed")
	}
	return nil
}

// Close implements Transport: it stops the reader, then closes the
// inbox. Safe to call twice.
func (u *UDP) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	u.closed = true
	u.mu.Unlock()
	err := u.conn.Close()
	<-u.readerDone
	// closed is set, so no deliverLocked can race this close.
	close(u.inbox)
	return err
}

var (
	_ Transport  = (*UDP)(nil)
	_ PeerLister = (*UDP)(nil)
)
