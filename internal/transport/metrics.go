package transport

import "sariadne/internal/telemetry"

// Process-wide transport instruments, aggregated over every socket
// transport in the process. Per-peer latency breakdowns live in the Peer
// snapshots (the telemetry namespace is flat and literal, so per-peer
// metric names cannot be registered there); these histograms carry the
// process-level distributions.
var (
	bytesSentTotal = telemetry.NewCounter("transport_bytes_sent_total",
		"bytes written to peer sockets (envelope included)")
	bytesReceivedTotal = telemetry.NewCounter("transport_bytes_received_total",
		"bytes of well-formed frames read from peer sockets")
	framesSentTotal = telemetry.NewCounter("transport_frames_sent_total",
		"frames written to peer sockets")
	framesReceivedTotal = telemetry.NewCounter("transport_frames_received_total",
		"well-formed frames read from peer sockets")
	framesDroppedTotal = telemetry.NewCounter("transport_frames_dropped_total",
		"frames lost in the transport: malformed or foreign-version envelopes, undecodable bodies, full inboxes and write queues, failed dials and writes")
	dialSeconds = telemetry.NewHistogram("transport_dial_seconds",
		"latency of TCP dials to backbone peers")
	sendSeconds = telemetry.NewHistogram("transport_send_seconds",
		"latency of one frame write to a peer socket")
)
