package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire envelope shared by the UDP and TCP transports. Every frame is
//
//	[1]  envelope version (FrameVersion)
//	[2]  big-endian length of the sender address
//	[n]  sender's advertised address (a dialable host:port)
//	[4]  big-endian length of the body
//	[m]  body: one Codec frame (the discovery codec's tagged message)
//
// The explicit sender address makes identity independent of socket
// source addresses — a daemon behind NAT or bound to 0.0.0.0 advertises
// the address peers can actually dial. The length prefix makes frames
// self-delimiting on TCP streams; on UDP (one frame per datagram) it
// cross-checks against the datagram size, catching truncation.

// FrameVersion is the envelope version emitted by this build. Frames
// carrying any other version are rejected with *FrameVersionError; the
// body's own compatibility is the codec's concern (see
// discovery.WireVersion).
const FrameVersion byte = 1

// Envelope size limits. MaxFrameBody bounds a body so a malformed or
// hostile length prefix cannot make a TCP reader allocate without bound;
// it is far above any real payload (Bloom pushes are ~1KiB, query
// replies tens of KiB).
const (
	// MaxAddrLen bounds the advertised sender address.
	MaxAddrLen = 256
	// MaxFrameBody bounds one encoded message body (1 MiB).
	MaxFrameBody = 1 << 20
)

// FrameVersionError reports a frame whose envelope version this build
// does not speak.
type FrameVersionError struct {
	// Got is the version byte found on the wire.
	Got byte
}

// Error implements error.
func (e *FrameVersionError) Error() string {
	return fmt.Sprintf("transport: frame version %d, this build speaks %d", e.Got, FrameVersion)
}

// ErrFrameTruncated reports an envelope shorter than its own length
// fields claim.
var ErrFrameTruncated = errors.New("transport: truncated frame")

// ErrFrameOversize reports an envelope whose declared lengths exceed the
// wire limits.
var ErrFrameOversize = errors.New("transport: oversize frame")

// frameHeaderLen is the fixed part of the envelope: version byte,
// address length, body length.
const frameHeaderLen = 1 + 2 + 4

// EncodeFrame wraps an encoded message body in the wire envelope.
func EncodeFrame(from Addr, body []byte) ([]byte, error) {
	if len(from) > MaxAddrLen {
		return nil, fmt.Errorf("%w: address %d bytes", ErrFrameOversize, len(from))
	}
	if len(body) > MaxFrameBody {
		return nil, fmt.Errorf("%w: body %d bytes", ErrFrameOversize, len(body))
	}
	buf := make([]byte, 0, frameHeaderLen+len(from)+len(body))
	buf = append(buf, FrameVersion)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(from)))
	buf = append(buf, from...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(body)))
	buf = append(buf, body...)
	return buf, nil
}

// DecodeFrame parses one datagram-shaped envelope: the buffer must hold
// exactly one frame. Every failure mode is an error, never a panic, and
// a foreign version is reported as *FrameVersionError before anything
// else is trusted.
func DecodeFrame(buf []byte) (from Addr, body []byte, err error) {
	if len(buf) < frameHeaderLen {
		return "", nil, ErrFrameTruncated
	}
	if buf[0] != FrameVersion {
		return "", nil, &FrameVersionError{Got: buf[0]}
	}
	addrLen := int(binary.BigEndian.Uint16(buf[1:3]))
	if addrLen > MaxAddrLen {
		return "", nil, fmt.Errorf("%w: address %d bytes", ErrFrameOversize, addrLen)
	}
	rest := buf[3:]
	if len(rest) < addrLen+4 {
		return "", nil, ErrFrameTruncated
	}
	from = Addr(rest[:addrLen])
	rest = rest[addrLen:]
	bodyLen := int(binary.BigEndian.Uint32(rest[:4]))
	if bodyLen > MaxFrameBody {
		return "", nil, fmt.Errorf("%w: body %d bytes", ErrFrameOversize, bodyLen)
	}
	rest = rest[4:]
	if len(rest) != bodyLen {
		return "", nil, fmt.Errorf("%w: body %d of %d bytes", ErrFrameTruncated, len(rest), bodyLen)
	}
	return from, rest, nil
}

// WriteFrame writes one envelope to a stream, returning the bytes
// written.
func WriteFrame(w io.Writer, from Addr, body []byte) (int, error) {
	frame, err := EncodeFrame(from, body)
	if err != nil {
		return 0, err
	}
	return w.Write(frame)
}

// ReadFrame reads exactly one envelope from a stream. Limits are
// enforced before allocation, so a hostile peer cannot provoke unbounded
// reads. The returned byte count includes the header.
func ReadFrame(r io.Reader) (from Addr, body []byte, n int, err error) {
	var hdr [3]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return "", nil, 0, err
	}
	n = 3
	if hdr[0] != FrameVersion {
		return "", nil, n, &FrameVersionError{Got: hdr[0]}
	}
	addrLen := int(binary.BigEndian.Uint16(hdr[1:3]))
	if addrLen > MaxAddrLen {
		return "", nil, n, fmt.Errorf("%w: address %d bytes", ErrFrameOversize, addrLen)
	}
	addrBuf := make([]byte, addrLen+4)
	if _, err := io.ReadFull(r, addrBuf); err != nil {
		return "", nil, n, fmt.Errorf("%w: %w", ErrFrameTruncated, err)
	}
	n += len(addrBuf)
	from = Addr(addrBuf[:addrLen])
	bodyLen := int(binary.BigEndian.Uint32(addrBuf[addrLen:]))
	if bodyLen > MaxFrameBody {
		return "", nil, n, fmt.Errorf("%w: body %d bytes", ErrFrameOversize, bodyLen)
	}
	body = make([]byte, bodyLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return "", nil, n, fmt.Errorf("%w: %w", ErrFrameTruncated, err)
	}
	n += bodyLen
	return from, body, n, nil
}
