package match

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"sariadne/internal/codes"
	"sariadne/internal/ontology"
	"sariadne/internal/profile"
	"sariadne/internal/reasoner"
)

// fixtureMatchers returns both matcher backends loaded with the Figure 1
// fixture ontologies.
func fixtureMatchers(t testing.TB) (*HierarchyMatcher, *CodeMatcher) {
	t.Helper()
	media := profile.MediaOntology()
	servers := profile.ServersOntology()

	hm := NewHierarchyMatcher()
	for _, o := range []*ontology.Ontology{media, servers} {
		r := reasoner.NewNaive()
		if err := r.LoadOntology(o); err != nil {
			t.Fatal(err)
		}
		h, err := r.Classify()
		if err != nil {
			t.Fatal(err)
		}
		hm.Add(o.URI, h)
	}

	reg := codes.NewRegistry()
	for _, o := range []*ontology.Ontology{media, servers} {
		reg.Register(codes.MustEncode(ontology.MustClassify(o), codes.DefaultParams))
	}
	return hm, NewCodeMatcher(reg)
}

// TestFigure1WorkedExample reproduces the paper's example: the provided
// SendDigitalStream matches the requested GetVideoStream with semantic
// distance 3, and the more specific ProvideGame does not match it.
func TestFigure1WorkedExample(t *testing.T) {
	hm, cm := fixtureMatchers(t)
	provided := profile.WorkstationService()
	requested := profile.PDAService().Required[0]
	sendDigital := provided.Capability("SendDigitalStream")
	provideGame := provided.Capability("ProvideGame")

	for name, m := range map[string]ConceptMatcher{"hierarchy": hm, "codes": cm} {
		t.Run(name, func(t *testing.T) {
			if !Match(m, sendDigital, requested) {
				t.Fatal("Match(SendDigitalStream, GetVideoStream) must hold")
			}
			d, ok := SemanticDistance(m, sendDigital, requested)
			if !ok || d != 3 {
				t.Fatalf("SemanticDistance = (%d, %v), want (3, true)", d, ok)
			}
			if Match(m, provideGame, requested) {
				t.Fatal("Match(ProvideGame, GetVideoStream) must not hold")
			}
		})
	}
}

func TestMatchSelfIsZero(t *testing.T) {
	hm, cm := fixtureMatchers(t)
	caps := append(profile.WorkstationService().Provided, profile.PDAService().Required...)
	for name, m := range map[string]ConceptMatcher{"hierarchy": hm, "codes": cm} {
		for _, c := range caps {
			d, ok := SemanticDistance(m, c, c)
			if !ok || d != 0 {
				t.Errorf("%s: SemanticDistance(%s, self) = (%d, %v), want (0, true)", name, c.Name, d, ok)
			}
			if !Equivalent(m, c, c) {
				t.Errorf("%s: capability %s not equivalent to itself", name, c.Name)
			}
		}
	}
}

func TestMatchFailsAcrossOntologies(t *testing.T) {
	_, cm := fixtureMatchers(t)
	a := &profile.Capability{
		Name:     "A",
		Category: ontology.Ref{Ontology: "http://other.example/ont", Name: "Server"},
	}
	b := profile.PDAService().Required[0]
	if Match(cm, a, b) {
		t.Fatal("capabilities from unrelated ontologies must not match")
	}
}

func TestMatchMissingTable(t *testing.T) {
	cm := NewCodeMatcher(codes.NewRegistry())
	req := profile.PDAService().Required[0]
	if Match(cm, req, req) {
		t.Fatal("match must fail when no table is registered")
	}
}

func TestMatchDirectionality(t *testing.T) {
	_, cm := fixtureMatchers(t)
	// A provider expecting the more specific input must NOT match a request
	// offering only the more general concept.
	provider := &profile.Capability{
		Name:     "P",
		Category: ontology.Ref{Ontology: profile.ServersOntologyURI, Name: "Server"},
		Inputs:   []ontology.Ref{{Ontology: profile.MediaOntologyURI, Name: "Movie"}},
	}
	request := &profile.Capability{
		Name:     "R",
		Category: ontology.Ref{Ontology: profile.ServersOntologyURI, Name: "Server"},
		Inputs:   []ontology.Ref{{Ontology: profile.MediaOntologyURI, Name: "DigitalResource"}},
	}
	if Match(cm, provider, request) {
		t.Fatal("provider expecting Movie must not accept offered DigitalResource")
	}
	// The reverse direction holds: provider expects the general concept.
	if !Match(cm, request, provider) {
		t.Fatal("provider expecting DigitalResource must accept offered Movie")
	}

	// Outputs: provider offering the more general output matches a request
	// expecting the more specific one (the paper's subsumes degree).
	provOut := &profile.Capability{
		Name:     "PO",
		Category: ontology.Ref{Ontology: profile.ServersOntologyURI, Name: "Server"},
		Outputs:  []ontology.Ref{{Ontology: profile.MediaOntologyURI, Name: "Stream"}},
	}
	reqOut := &profile.Capability{
		Name:     "RO",
		Category: ontology.Ref{Ontology: profile.ServersOntologyURI, Name: "Server"},
		Outputs:  []ontology.Ref{{Ontology: profile.MediaOntologyURI, Name: "VideoStream"}},
	}
	d, ok := SemanticDistance(cm, provOut, reqOut)
	if !ok || d != 1 {
		t.Fatalf("subsumes-degree output match = (%d, %v), want (1, true)", d, ok)
	}
	// A provider offering VideoStream does not satisfy a request expecting
	// the broader Stream under the paper's direction.
	if Match(cm, reqOut, provOut) {
		t.Fatal("provider offering VideoStream must not match request expecting Stream (paper's direction)")
	}
}

func TestMatchCategory(t *testing.T) {
	_, cm := fixtureMatchers(t)
	video := &profile.Capability{
		Name:     "V",
		Category: ontology.Ref{Ontology: profile.ServersOntologyURI, Name: "VideoServer"},
	}
	game := &profile.Capability{
		Name:     "G",
		Category: ontology.Ref{Ontology: profile.ServersOntologyURI, Name: "GameServer"},
	}
	digital := &profile.Capability{
		Name:     "D",
		Category: ontology.Ref{Ontology: profile.ServersOntologyURI, Name: "DigitalServer"},
	}
	if !Match(cm, digital, video) {
		t.Error("DigitalServer provider must satisfy VideoServer request")
	}
	if Match(cm, video, game) {
		t.Error("VideoServer provider must not satisfy GameServer request")
	}
	if d, _ := SemanticDistance(cm, digital, video); d != 2 {
		t.Errorf("category distance = %d, want 2", d)
	}
}

func TestExplain(t *testing.T) {
	_, cm := fixtureMatchers(t)
	provided := profile.WorkstationService().Capability("SendDigitalStream")
	requested := profile.PDAService().Required[0]

	rep := Explain(cm, provided, requested)
	if !rep.Matched || rep.Distance != 3 {
		t.Fatalf("Explain = matched=%v distance=%d, want matched,3", rep.Matched, rep.Distance)
	}
	if len(rep.Pairs) != 3 { // 1 input, 1 output, 1 property (category)
		t.Fatalf("Pairs = %v, want 3 entries", rep.Pairs)
	}
	kinds := map[string]int{}
	for _, p := range rep.Pairs {
		kinds[p.Kind]++
	}
	if kinds["input"] != 1 || kinds["output"] != 1 || kinds["property"] != 1 {
		t.Fatalf("pair kinds = %v", kinds)
	}

	// Failure case names the culprit.
	game := profile.WorkstationService().Capability("ProvideGame")
	rep = Explain(cm, game, requested)
	if rep.Matched || rep.Failed == nil {
		t.Fatalf("Explain on non-match: %+v", rep)
	}
}

func TestCheckVersions(t *testing.T) {
	_, cm := fixtureMatchers(t)
	s := profile.WorkstationService()
	s.CodeVersions = map[string]string{profile.MediaOntologyURI: "1"}
	if err := cm.CheckVersions(s); err != nil {
		t.Fatalf("CheckVersions: %v", err)
	}
	s.CodeVersions[profile.MediaOntologyURI] = "0"
	if err := cm.CheckVersions(s); err == nil {
		t.Fatal("CheckVersions accepted stale codes")
	}
	s.CodeVersions = map[string]string{"http://unknown.example": "1"}
	if err := cm.CheckVersions(s); err == nil {
		t.Fatal("CheckVersions accepted unknown ontology")
	}
}

// TestPropertyBackendsAgree: on random ontologies and random capabilities,
// the reasoner-backed and code-backed matchers agree on Match and
// SemanticDistance. This is the keystone property: it certifies that the
// paper's optimization does not change discovery semantics.
func TestPropertyBackendsAgree(t *testing.T) {
	prop := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sz%30) + 5
		o := ontology.New("http://rand.example/ont", "1")
		names := make([]string, n)
		for i := range names {
			names[i] = fmt.Sprintf("C%03d", i)
			c := ontology.Class{Name: names[i]}
			if i > 0 {
				for j := 0; j < rng.Intn(3); j++ {
					c.SubClassOf = append(c.SubClassOf, names[rng.Intn(i)])
				}
			}
			o.MustAddClass(c)
		}

		r := reasoner.NewRule()
		if err := r.LoadOntology(o); err != nil {
			return false
		}
		h, err := r.Classify()
		if err != nil {
			return false
		}
		hm := NewHierarchyMatcher()
		hm.Add(o.URI, h)

		reg := codes.NewRegistry()
		cl, err := ontology.Classify(o)
		if err != nil {
			return false
		}
		tbl, err := codes.Encode(cl, codes.DefaultParams)
		if err != nil {
			return false
		}
		reg.Register(tbl)
		cm := NewCodeMatcher(reg)

		ref := func() ontology.Ref {
			return ontology.Ref{Ontology: o.URI, Name: names[rng.Intn(n)]}
		}
		randomCap := func(name string) *profile.Capability {
			c := &profile.Capability{Name: name, Category: ref()}
			for i := 0; i < rng.Intn(4); i++ {
				c.Inputs = append(c.Inputs, ref())
			}
			for i := 0; i < rng.Intn(4); i++ {
				c.Outputs = append(c.Outputs, ref())
			}
			return c
		}
		for trial := 0; trial < 20; trial++ {
			c1 := randomCap("P")
			c2 := randomCap("R")
			d1, ok1 := SemanticDistance(hm, c1, c2)
			d2, ok2 := SemanticDistance(cm, c1, c2)
			if ok1 != ok2 || (ok1 && d1 != d2) {
				t.Logf("seed=%d trial=%d: hierarchy=(%d,%v) codes=(%d,%v)", seed, trial, d1, ok1, d2, ok2)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestExplainDegrees(t *testing.T) {
	_, cm := fixtureMatchers(t)
	provided := profile.WorkstationService().Capability("SendDigitalStream")
	requested := profile.PDAService().Required[0]

	rep := Explain(cm, provided, requested)
	if rep.Degree != DegreeInclusive {
		t.Fatalf("Degree = %q, want inclusive (distance 3)", rep.Degree)
	}
	kinds := map[string]Degree{}
	for _, p := range rep.Pairs {
		kinds[p.Kind] = p.Degree
	}
	if kinds["output"] != DegreeExact { // Stream = Stream
		t.Errorf("output degree = %q, want exact", kinds["output"])
	}
	if kinds["input"] != DegreeInclusive || kinds["property"] != DegreeInclusive {
		t.Errorf("pair degrees = %v", kinds)
	}

	// A self-match is exact throughout.
	rep = Explain(cm, requested, requested)
	if rep.Degree != DegreeExact {
		t.Fatalf("self Degree = %q, want exact", rep.Degree)
	}
	// No degree on failed matches.
	game := profile.WorkstationService().Capability("ProvideGame")
	rep = Explain(cm, game, requested)
	if rep.Matched || rep.Degree != "" {
		t.Fatalf("failed match report = %+v", rep)
	}
}
