// Package match implements the paper's capability matching relation
// (Section 2.3): Match(C1, C2) decides whether provided capability C1 can
// substitute for required capability C2, and SemanticDistance(C1, C2)
// scores how far apart the two are in ontology levels, which ranks
// candidate advertisements.
//
// Concept-level subsumption and level distances are obtained through a
// ConceptMatcher, with two interchangeable backends: one backed by an
// online reasoner hierarchy (expensive, Figure 2's baseline) and one backed
// by encoded code tables (numeric comparisons only, the paper's
// optimization).
//
// # Direction of the relation
//
// Match(C1, C2) holds when:
//
//   - every input expected by C1 is matched by an input offered by C2,
//     where the expected (more general) concept must subsume the offered
//     one: d(in′, in) ≥ 0 for in′ ∈ C1.In, in ∈ C2.In;
//   - every output expected by C2 is matched by an output offered by C1,
//     where the offered concept must subsume the expected one:
//     d(out, out′) ≥ 0 for out ∈ C1.Out, out′ ∈ C2.Out (the paper's own
//     direction, after Paolucci et al.'s "subsumes" degree); and
//   - every property required by C2 (including the service category) is
//     matched by a provided property of C1 that subsumes it.
//
// Note on fidelity: the paper's formula prints the input condition as
// d(in, in′) ≥ 0, which makes its own worked example (Figure 1, where
// provided SendDigitalStream expects DigitalResource and requested
// GetVideoStream offers the more specific VideoResource, yet
// SemanticDistance = 3) unsatisfiable; we use the direction under which the
// worked example holds and reproduce its distance of 3 exactly.
package match

import (
	"errors"
	"fmt"

	"sariadne/internal/codes"
	"sariadne/internal/ontology"
	"sariadne/internal/profile"
	"sariadne/internal/reasoner"
)

// ErrNoTable is returned by CodeMatcher when a referenced ontology has no
// registered code table.
var ErrNoTable = errors.New("match: no code table for ontology")

// ConceptMatcher answers the paper's d(a, b) over fully qualified concept
// references: the number of hierarchy levels from a down to b when a
// subsumes b, and ok=false (NULL) otherwise.
type ConceptMatcher interface {
	Distance(a, b ontology.Ref) (int, bool)
}

// HierarchyMatcher is a ConceptMatcher backed by online reasoner results,
// one Hierarchy per ontology URI. It represents the unoptimized semantic
// matching whose cost Figure 2 reports.
type HierarchyMatcher struct {
	hierarchies map[string]reasoner.Hierarchy
}

// NewHierarchyMatcher returns an empty HierarchyMatcher. Add populates it.
func NewHierarchyMatcher() *HierarchyMatcher {
	return &HierarchyMatcher{hierarchies: make(map[string]reasoner.Hierarchy)}
}

// Add registers the classified hierarchy for an ontology URI.
func (m *HierarchyMatcher) Add(uri string, h reasoner.Hierarchy) {
	m.hierarchies[uri] = h
}

// Distance implements ConceptMatcher. Concepts from different ontologies
// never match (the paper matches concept pairs within shared ontologies).
func (m *HierarchyMatcher) Distance(a, b ontology.Ref) (int, bool) {
	if a.Ontology != b.Ontology {
		return 0, false
	}
	h, ok := m.hierarchies[a.Ontology]
	if !ok {
		return 0, false
	}
	return h.Distance(a.Name, b.Name)
}

// CodeMatcher is a ConceptMatcher backed by encoded code tables: every
// distance query reduces to numeric interval comparisons plus a
// precomputed level lookup. This is the paper's optimized matcher.
type CodeMatcher struct {
	reg *codes.Registry
}

// NewCodeMatcher returns a CodeMatcher over the given table registry.
func NewCodeMatcher(reg *codes.Registry) *CodeMatcher {
	return &CodeMatcher{reg: reg}
}

// Distance implements ConceptMatcher.
//
//sdp:hotpath
func (m *CodeMatcher) Distance(a, b ontology.Ref) (int, bool) {
	if a.Ontology != b.Ontology {
		return 0, false
	}
	t, ok := m.reg.Resolve(a.Ontology)
	if !ok {
		return 0, false
	}
	return t.Distance(a.Name, b.Name)
}

// CheckVersions verifies that a service description's embedded code
// versions agree with the registry's tables, per the consistency rule of
// Section 3.2. Descriptions without embedded versions pass vacuously.
func (m *CodeMatcher) CheckVersions(s *profile.Service) error {
	for uri, version := range s.CodeVersions {
		if _, err := m.reg.ResolveVersion(uri, version); err != nil {
			return fmt.Errorf("service %q: %w", s.Name, err)
		}
	}
	return nil
}

var (
	_ ConceptMatcher = (*HierarchyMatcher)(nil)
	_ ConceptMatcher = (*CodeMatcher)(nil)
)

// Match reports whether provided capability c1 can substitute for required
// capability c2 under the relation described in the package comment.
//
//sdp:hotpath
func Match(m ConceptMatcher, c1, c2 *profile.Capability) bool {
	_, ok := SemanticDistance(m, c1, c2)
	return ok
}

// SemanticDistance returns the paper's capability-level distance: the sum,
// over every matched concept pair, of the concept-level distance, choosing
// for each required element the offered counterpart with minimal distance.
// ok is false when Match(c1, c2) does not hold.
//
//sdp:hotpath
func SemanticDistance(m ConceptMatcher, c1, c2 *profile.Capability) (int, bool) {
	total := 0

	// Inputs: every input expected by the provider c1 must subsume an
	// input offered by the requester c2.
	for _, expected := range c1.Inputs {
		d, ok := bestDistanceFrom(m, expected, c2.Inputs)
		if !ok {
			return 0, false
		}
		total += d
	}
	// Outputs: every output expected by the requester c2 must be matched
	// by a (possibly more general) output offered by the provider c1.
	for _, expected := range c2.Outputs {
		d, ok := bestDistanceTo(m, c1.Outputs, expected)
		if !ok {
			return 0, false
		}
		total += d
	}
	// Properties (service category and any additional properties): every
	// property required by c2 must be matched by a provided property of c1
	// that subsumes it; the direction mirrors the category example of
	// Figure 1 (provided DigitalServer subsumes required VideoServer).
	// Iterated without materializing PropertySet: this path runs once per
	// visited vertex of every directory query.
	d, ok := bestPropertyDistance(m, c1, c2.Category)
	if !ok {
		return 0, false
	}
	total += d
	for _, required := range c2.Properties {
		d, ok := bestPropertyDistance(m, c1, required)
		if !ok {
			return 0, false
		}
		total += d
	}
	return total, true
}

// bestPropertyDistance finds min d(p, to) over c1's category and extra
// properties.
//
//sdp:hotpath
func bestPropertyDistance(m ConceptMatcher, c1 *profile.Capability, to ontology.Ref) (int, bool) {
	best, found := 0, false
	if d, ok := m.Distance(c1.Category, to); ok {
		best, found = d, true
	}
	for _, p := range c1.Properties {
		if d, ok := m.Distance(p, to); ok && (!found || d < best) {
			best, found = d, true
		}
	}
	return best, found
}

// bestDistanceFrom finds min d(from, cand) over candidates.
//
//sdp:hotpath
func bestDistanceFrom(m ConceptMatcher, from ontology.Ref, candidates []ontology.Ref) (int, bool) {
	best, found := 0, false
	for _, cand := range candidates {
		if d, ok := m.Distance(from, cand); ok && (!found || d < best) {
			best, found = d, true
		}
	}
	return best, found
}

// bestDistanceTo finds min d(cand, to) over candidates.
//
//sdp:hotpath
func bestDistanceTo(m ConceptMatcher, candidates []ontology.Ref, to ontology.Ref) (int, bool) {
	best, found := 0, false
	for _, cand := range candidates {
		if d, ok := m.Distance(cand, to); ok && (!found || d < best) {
			best, found = d, true
		}
	}
	return best, found
}

// Degree classifies a match following the vocabulary of the paper's
// companion work ([9], Ben Mokhtar et al., WS-MATE 2006, after Paolucci et
// al.): Exact when the concepts (or whole capabilities) coincide
// semantically, Inclusive when the provider is strictly more general.
type Degree string

// Degrees.
const (
	// DegreeExact: semantic distance zero.
	DegreeExact Degree = "exact"
	// DegreeInclusive: the provided concept strictly subsumes the
	// required one (the paper's "subsumes" degree).
	DegreeInclusive Degree = "inclusive"
)

// degreeOf maps a concept distance to its degree.
func degreeOf(d int) Degree {
	if d == 0 {
		return DegreeExact
	}
	return DegreeInclusive
}

// PairReport details one matched concept pair for diagnostics.
type PairReport struct {
	Kind     string // "input", "output" or "property"
	Required ontology.Ref
	Matched  ontology.Ref
	Distance int
	Degree   Degree
}

// Report is a full explanation of a capability match attempt.
type Report struct {
	Matched  bool
	Distance int
	// Degree is DegreeExact when every pair matched exactly, otherwise
	// DegreeInclusive; empty when Matched is false.
	Degree Degree
	Pairs  []PairReport
	// Failed identifies the first unmatched element when Matched is false.
	Failed *PairReport
}

// Explain evaluates Match(c1, c2) and returns a detailed report, pairing
// every required element with the counterpart that minimized its distance.
func Explain(m ConceptMatcher, c1, c2 *profile.Capability) Report {
	var rep Report
	fail := func(kind string, req ontology.Ref) Report {
		rep.Failed = &PairReport{Kind: kind, Required: req}
		rep.Matched = false
		return rep
	}
	for _, expected := range c1.Inputs {
		ref, d, ok := bestPairFrom(m, expected, c2.Inputs)
		if !ok {
			return fail("input", expected)
		}
		rep.Pairs = append(rep.Pairs, PairReport{Kind: "input", Required: expected, Matched: ref, Distance: d, Degree: degreeOf(d)})
		rep.Distance += d
	}
	for _, expected := range c2.Outputs {
		ref, d, ok := bestPairTo(m, c1.Outputs, expected)
		if !ok {
			return fail("output", expected)
		}
		rep.Pairs = append(rep.Pairs, PairReport{Kind: "output", Required: expected, Matched: ref, Distance: d, Degree: degreeOf(d)})
		rep.Distance += d
	}
	for _, required := range c2.PropertySet() {
		ref, d, ok := bestPairTo(m, c1.PropertySet(), required)
		if !ok {
			return fail("property", required)
		}
		rep.Pairs = append(rep.Pairs, PairReport{Kind: "property", Required: required, Matched: ref, Distance: d, Degree: degreeOf(d)})
		rep.Distance += d
	}
	rep.Matched = true
	rep.Degree = degreeOf(rep.Distance)
	return rep
}

func bestPairFrom(m ConceptMatcher, from ontology.Ref, candidates []ontology.Ref) (ontology.Ref, int, bool) {
	var bestRef ontology.Ref
	best, found := 0, false
	for _, cand := range candidates {
		if d, ok := m.Distance(from, cand); ok && (!found || d < best) {
			best, bestRef, found = d, cand, true
		}
	}
	return bestRef, best, found
}

func bestPairTo(m ConceptMatcher, candidates []ontology.Ref, to ontology.Ref) (ontology.Ref, int, bool) {
	var bestRef ontology.Ref
	best, found := 0, false
	for _, cand := range candidates {
		if d, ok := m.Distance(cand, to); ok && (!found || d < best) {
			best, bestRef, found = d, cand, true
		}
	}
	return bestRef, best, found
}

// Equivalent reports whether the two capabilities match in both directions
// with zero distance — the paper's condition for representing them by a
// single vertex in a capability graph (Section 3.3).
func Equivalent(m ConceptMatcher, c1, c2 *profile.Capability) bool {
	d1, ok1 := SemanticDistance(m, c1, c2)
	if !ok1 || d1 != 0 {
		return false
	}
	d2, ok2 := SemanticDistance(m, c2, c1)
	return ok2 && d2 == 0
}
