package match

import "sariadne/internal/telemetry"

// The paper's central performance claim (Fig. 9) is that encoded code
// tables replace online reasoner calls during matching; these counters
// attribute capability-level match work to one side or the other.
var (
	encodedOpsTotal = telemetry.NewCounter("match_encoded_ops_total",
		"capability match operations answered by encoded code tables")
	reasonerOpsTotal = telemetry.NewCounter("match_reasoner_ops_total",
		"capability match operations answered by reasoner-backed hierarchies")
)

// CountOps attributes n capability-level match operations to m's kind.
// Callers batch their counts (e.g. one call per directory query) so the
// per-match hot path stays free of atomics.
func CountOps(m ConceptMatcher, n uint64) {
	if n == 0 {
		return
	}
	switch m.(type) {
	case *CodeMatcher:
		encodedOpsTotal.Add(n)
	default:
		reasonerOpsTotal.Add(n)
	}
}
