// Package load type-checks packages for the analysis framework without
// golang.org/x/tools/go/packages. Module-local packages are parsed and
// checked from source recursively; standard-library imports fall back to
// go/importer's source importer, which compiles from $GOROOT and needs no
// network or pre-built export data.
package load

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked unit ready for analysis.
type Package struct {
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Loader loads and caches packages over a shared FileSet.
type Loader struct {
	Fset *token.FileSet
	// ModulePath is the module's import path prefix (e.g. "sariadne").
	ModulePath string
	// ModuleFiles maps a module-local import path to the absolute paths of
	// its non-test Go files. It is consulted when type-checking imports.
	ModuleFiles map[string][]string

	std   types.Importer
	cache map[string]*Package
}

// NewLoader returns a loader for one module.
func NewLoader(modulePath string, moduleFiles map[string][]string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:        fset,
		ModulePath:  modulePath,
		ModuleFiles: moduleFiles,
		std:         importer.ForCompiler(fset, "source", nil),
		cache:       make(map[string]*Package),
	}
}

// Import implements types.Importer so module-local dependencies resolve
// through the loader itself.
func (l *Loader) Import(path string) (*types.Package, error) {
	if files, ok := l.ModuleFiles[path]; ok {
		p, err := l.loadCached(path, files)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.Import(path)
}

func (l *Loader) loadCached(path string, files []string) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	p, err := l.check(path, files)
	if err != nil {
		return nil, err
	}
	l.cache[path] = p
	return p, nil
}

// Load type-checks the module-local package at the given import path from
// its registered non-test files.
func (l *Loader) Load(path string) (*Package, error) {
	files, ok := l.ModuleFiles[path]
	if !ok {
		return nil, fmt.Errorf("load: %s is not a registered module package", path)
	}
	return l.loadCached(path, files)
}

// LoadFiles type-checks an explicit file list as one package (used for
// package+test units and external _test packages). The result is not
// cached, so test symbols never leak into import resolution.
func (l *Loader) LoadFiles(path string, files []string) (*Package, error) {
	return l.check(path, files)
}

// LoadDir parses every .go file in dir (including _test.go files) and
// type-checks them as one package — the analysistest entry point. Files
// with distinct package clauses (e.g. an external test package) are
// checked as separate units and their syntax is merged into one Package
// for matching; the returned Pkg/Info describe the primary (first) unit.
func (l *Loader) LoadDir(dir string) ([]*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	byPkg := make(map[string][]string)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		fn := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(l.Fset, fn, nil, parser.PackageClauseOnly)
		if err != nil {
			return nil, err
		}
		byPkg[f.Name.Name] = append(byPkg[f.Name.Name], fn)
	}
	var names []string
	for name := range byPkg {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []*Package
	for _, name := range names {
		p, err := l.check(name, byPkg[name])
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

func (l *Loader) check(path string, filenames []string) (*Package, error) {
	filenames = append([]string(nil), filenames...)
	sort.Strings(filenames)
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.Fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	return &Package{Path: path, Files: files, Pkg: pkg, Info: info}, nil
}
