package a

import (
	"context"
	"sync"
)

func badNaked() {
	go func() { // want `no join signal`
		println("fire and forget")
	}()
}

func badInLoop(items []int) {
	for range items {
		go func() { // want `inside a loop with no join signal`
			println("leak per iteration")
		}()
	}
}

func goodWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		println("joined via WaitGroup")
	}()
}

func goodChannel() error {
	errCh := make(chan error, 1)
	go func() {
		errCh <- nil
	}()
	return <-errCh
}

func goodClose() {
	done := make(chan struct{})
	go func() {
		defer close(done)
		println("joined via close")
	}()
	<-done
}

func goodContext(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// goodNamed launches a named function: join discipline lives in its own
// body, out of intraprocedural reach, so it is not flagged.
func goodNamed() {
	go worker()
}

func worker() {}

// suppressed documents a deliberate fire-and-forget goroutine.
func suppressed() {
	//sdplint:ignore goroutinecheck process-lifetime goroutine, exits with main
	go func() {
		println("daemon")
	}()
}
