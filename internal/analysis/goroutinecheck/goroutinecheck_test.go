package goroutinecheck_test

import (
	"testing"

	"sariadne/internal/analysis/analysistest"
	"sariadne/internal/analysis/goroutinecheck"
)

func TestGoroutinecheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), goroutinecheck.Analyzer, "a")
}
