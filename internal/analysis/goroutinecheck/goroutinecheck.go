// Package goroutinecheck flags goroutine launches with no visible join.
//
// The discovery and election runners are goroutine meshes whose shutdown
// paths (Stop, StepDown, test teardown) must be able to wait for every
// goroutine they started. A naked `go func() { ... }()` whose body never
// touches a WaitGroup, a channel, or a select has no way to signal
// completion: nothing can join it, and under churn it leaks. Launches
// inside loops are the worst offenders — every iteration leaks one.
//
// A goroutine body counts as joinable when it contains any of:
//   - a channel send, receive, close, select, or range over a channel
//     (this includes <-ctx.Done()),
//   - a call to (*sync.WaitGroup).Done / .Add / .Wait.
//
// Launches of named functions or methods (`go n.loop(ctx)`) are not
// flagged: their join discipline lives in their own body, which this
// intraprocedural pass cannot see. Genuinely fire-and-forget goroutines
// can be suppressed with an explanatory sdplint:ignore comment.
package goroutinecheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"sariadne/internal/analysis"
)

// Analyzer flags naked `go func` launches lacking a join mechanism.
var Analyzer = &analysis.Analyzer{
	Name: "goroutinecheck",
	Doc: "flag `go func` launches whose body has no WaitGroup, channel, " +
		"or select join signal; such goroutines cannot be waited on and leak",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			if hasJoinSignal(lit.Body, pass.TypesInfo) {
				return true
			}
			if inLoop(stack) {
				pass.Reportf(g.Pos(),
					"goroutine launched inside a loop with no join signal; every iteration leaks one goroutine — add a WaitGroup or collect results on a channel")
			} else {
				pass.Reportf(g.Pos(),
					"goroutine has no join signal (no WaitGroup, channel op, or select); nothing can wait for it to finish")
			}
			return true
		})
	}
	return nil
}

// inLoop reports whether the innermost enclosing statement context of the
// node on top of the stack, up to the nearest function boundary, contains
// a for or range loop. Crossing a function literal stops the scan: how
// often an enclosing closure runs is not knowable here.
func inLoop(stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		}
	}
	return false
}

// hasJoinSignal reports whether body contains a channel operation or a
// sync.WaitGroup call through which the goroutine's completion can be
// observed.
func hasJoinSignal(body *ast.BlockStmt, info *types.Info) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if obj, ok := info.Uses[fun].(*types.Builtin); ok && obj.Name() == "close" {
					found = true
				}
			case *ast.SelectorExpr:
				if fn, ok := info.Uses[fun.Sel].(*types.Func); ok && isWaitGroupMethod(fn) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func isWaitGroupMethod(fn *types.Func) bool {
	switch fn.Name() {
	case "Done", "Add", "Wait", "Go":
	default:
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}
