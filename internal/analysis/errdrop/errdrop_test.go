package errdrop_test

import (
	"path/filepath"
	"testing"

	"sariadne/internal/analysis/analysistest"
	"sariadne/internal/analysis/errdrop"
)

// TestErrdrop exercises the analyzer against stand-in transport and store
// packages mapped to the real sariadne import paths, so the package-path
// scoping rules run exactly as they do on production code.
func TestErrdrop(t *testing.T) {
	testdata := analysistest.TestData(t)
	transportStub, err := filepath.Abs(filepath.Join(testdata, "src", "transportstub", "transport.go"))
	if err != nil {
		t.Fatal(err)
	}
	storeStub, err := filepath.Abs(filepath.Join(testdata, "src", "storestub", "store.go"))
	if err != nil {
		t.Fatal(err)
	}
	telemetryStub, err := filepath.Abs(filepath.Join(testdata, "src", "telemetrystub", "telemetry.go"))
	if err != nil {
		t.Fatal(err)
	}
	analysistest.RunWithModule(t, testdata, errdrop.Analyzer, "a",
		"sariadne", map[string][]string{
			"sariadne/internal/transport": {transportStub},
			"sariadne/internal/store":     {storeStub},
			"sariadne/internal/telemetry": {telemetryStub},
		})
}
