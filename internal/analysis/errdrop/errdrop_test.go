package errdrop_test

import (
	"path/filepath"
	"testing"

	"sariadne/internal/analysis/analysistest"
	"sariadne/internal/analysis/errdrop"
)

// TestErrdrop exercises the analyzer against a stand-in transport package
// mapped to the real sariadne/internal/transport import path, so the
// package-path scoping rule runs exactly as it does on production code.
func TestErrdrop(t *testing.T) {
	testdata := analysistest.TestData(t)
	stub, err := filepath.Abs(filepath.Join(testdata, "src", "transportstub", "transport.go"))
	if err != nil {
		t.Fatal(err)
	}
	analysistest.RunWithModule(t, testdata, errdrop.Analyzer, "a",
		"sariadne", map[string][]string{
			"sariadne/internal/transport": {stub},
		})
}
