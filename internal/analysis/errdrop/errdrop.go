// Package errdrop flags silently discarded errors on the calls where a
// dropped error loses data: transport sends and closes, store mutations
// and journal appends. A federation daemon that ignores a journal append
// error acknowledges a write it will not replay after a crash; a dropped
// transport close leaks the peer's writer queue.
//
// Scope — a call is in scope when its callee is
//
//   - a function or method of sariadne/internal/transport,
//     sariadne/internal/store or sariadne/internal/telemetry (or any
//     package under them), or
//   - a method whose receiver type name contains "journal" or "store"
//     (case-insensitive), wherever it is declared.
//
// The store path prefix covers the pluggable backends too
// (internal/store/filestore, memstore, boltlike): a dropped Append error
// there acknowledges a write the directory will not replay.
//
// A finding is an in-scope call whose error result is discarded
// *implicitly*: used as a bare expression statement, or launched with go
// or defer. Assigning the error to blank (`_ = j.close()`) is NOT
// flagged — the repo's convention is that a visible blank assignment is
// an acknowledged, reviewable drop (fire-and-forget sends on lossy
// links), while a bare call is presumed an accident. Suppress deliberate
// bare drops with an //sdplint:ignore errdrop comment instead.
package errdrop

import (
	"go/ast"
	"go/types"
	"strings"

	"sariadne/internal/analysis"
)

// Analyzer flags implicitly discarded errors on transport, store and
// journal calls.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc: "check that errors returned by transport, store and journal calls are " +
		"handled or explicitly assigned to blank, never silently dropped",
	Run: run,
}

// guardedPathPrefixes scopes rule 1: every function or method declared
// under these package paths is in scope regardless of receiver name. Kept
// a var so the analyzer tests can exercise the path logic with testdata
// packages.
var guardedPathPrefixes = []string{
	"sariadne/internal/transport",
	"sariadne/internal/store",
	// The telemetry journal is the soak record of truth: an append error
	// dropped on the floor silently forfeits the history the drift
	// watchdog and post-mortems read. The prefix covers the whole
	// package, so exposition writers and profile captures are guarded
	// too.
	"sariadne/internal/telemetry",
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					check(pass, call, "")
				}
			case *ast.GoStmt:
				check(pass, n.Call, "go ")
			case *ast.DeferStmt:
				check(pass, n.Call, "defer ")
			}
			return true
		})
	}
	return nil
}

// check reports the call when it is in scope and returns an error that
// the surrounding statement discards.
func check(pass *analysis.Pass, call *ast.CallExpr, how string) {
	fn := callee(pass, call)
	if fn == nil || !inScope(fn) {
		return
	}
	if !returnsError(fn) {
		return
	}
	pass.Reportf(call.Pos(),
		"%serror returned by %s.%s is silently dropped; handle it or assign it to _ with a reason",
		how, receiverOrPkg(fn), fn.Name())
}

// callee resolves the called function object, for both plain calls and
// method calls.
func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// inScope applies the transport/store/journal scoping rules.
func inScope(fn *types.Func) bool {
	if fn.Pkg() != nil {
		path := fn.Pkg().Path()
		for _, prefix := range guardedPathPrefixes {
			if path == prefix || strings.HasPrefix(path, prefix+"/") {
				return true
			}
		}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	name := strings.ToLower(receiverTypeName(sig.Recv().Type()))
	return strings.Contains(name, "journal") || strings.Contains(name, "store")
}

func receiverTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Interface:
		return ""
	}
	return ""
}

func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		if isErrorType(results.At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

func receiverOrPkg(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if name := receiverTypeName(sig.Recv().Type()); name != "" {
			return name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name()
	}
	return "?"
}
