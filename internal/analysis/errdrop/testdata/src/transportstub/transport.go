// Package transport is a minimal stand-in for sariadne/internal/transport
// used by the errdrop analyzer tests: the analyzer scopes by import path,
// so these declarations exercise the same resolution as production code.
package transport

// Addr identifies a peer.
type Addr string

// Endpoint is the messaging surface whose dropped errors errdrop guards.
type Endpoint interface {
	Send(to Addr, payload []byte) error
	Close() error
}

// Dial is a package-level transport function returning an error.
func Dial(addr Addr) (Endpoint, error) { return nil, nil }

// Flush is a package-level transport function with a lone error result.
func Flush() error { return nil }
