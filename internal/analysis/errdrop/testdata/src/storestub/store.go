// Package store is a minimal stand-in for sariadne/internal/store used by
// the errdrop analyzer tests. Its receiver names deliberately avoid the
// substrings "store" and "journal" so that a finding on them proves the
// package-path scoping rule fired, not the receiver-name rule.
package store

// Medium is a crash-injection handle like the conformance suite's: its
// name matches neither receiver-name substring.
type Medium struct{}

// Truncate chops the tail off the backing medium.
func (m *Medium) Truncate(n int64) error { return nil }

// Detect sniffs a path's backend kind; package-level, lone error result.
func Detect(path string) error { return nil }
