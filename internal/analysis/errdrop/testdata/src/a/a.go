package a

import (
	"sariadne/internal/store"
	"sariadne/internal/telemetry"
	"sariadne/internal/transport"
)

// journal matches the receiver-name rule (contains "journal").
type journal struct{}

func (j *journal) append(e string) error { return nil }
func (j *journal) close() error          { return nil }
func (j *journal) size() int             { return 0 }

// diskStore matches the receiver-name rule (contains "store").
type diskStore struct{}

func (s *diskStore) Put(k, v string) error { return nil }

// logger is out of scope: dropped errors on it are someone else's lint.
type logger struct{}

func (l *logger) Log(msg string) error { return nil }

func bareDrops(ep transport.Endpoint, j *journal, s *diskStore) {
	ep.Send("peer", nil)  // want `error returned by Endpoint.Send is silently dropped`
	ep.Close()            // want `error returned by Endpoint.Close is silently dropped`
	transport.Flush()     // want `error returned by transport.Flush is silently dropped`
	j.append("entry")     // want `error returned by journal.append is silently dropped`
	j.close()             // want `error returned by journal.close is silently dropped`
	s.Put("k", "v")       // want `error returned by diskStore.Put is silently dropped`
}

func storePathDrops(m *store.Medium) {
	// Medium's name matches no receiver-name rule: these findings prove
	// the sariadne/internal/store path prefix is in scope.
	m.Truncate(4)      // want `error returned by Medium.Truncate is silently dropped`
	store.Detect("db") // want `error returned by store.Detect is silently dropped`
	_ = m.Truncate(4)  // acknowledged blank drop stays silent
}

func telemetryPathDrops(r *telemetry.Recorder) {
	// Recorder's name matches no receiver-name rule either: these prove
	// the sariadne/internal/telemetry path prefix guards the journal and
	// profile write paths.
	r.Flush()                                // want `error returned by Recorder.Flush is silently dropped`
	telemetry.CaptureHeapProfile("/tmp/h")   // want `error returned by telemetry.CaptureHeapProfile is silently dropped`
	go telemetry.CaptureHeapProfile("/tmp/h") // want `go error returned by telemetry.CaptureHeapProfile is silently dropped`
	_ = r.Flush()                            // acknowledged blank drop stays silent
}

func goDeferDrops(ep transport.Endpoint, j *journal) {
	go ep.Send("peer", nil) // want `go error returned by Endpoint.Send is silently dropped`
	defer j.close()         // want `defer error returned by journal.close is silently dropped`
}

func handled(ep transport.Endpoint, j *journal) error {
	if err := ep.Send("peer", nil); err != nil {
		return err
	}
	return j.close()
}

func acknowledgedBlank(ep transport.Endpoint, j *journal) {
	// Explicit blank assignment is the audited fire-and-forget idiom.
	_ = ep.Send("peer", nil)
	_ = j.close()
}

func outOfScope(l *logger) {
	l.Log("hello") // no finding: logger is neither transport nor store/journal
}

func noErrorResult(j *journal) {
	_ = j.size() // no error in the signature: nothing to drop
}

func suppressed(ep transport.Endpoint) {
	//sdplint:ignore errdrop best-effort beacon on a lossy link
	ep.Send("peer", nil)
}
