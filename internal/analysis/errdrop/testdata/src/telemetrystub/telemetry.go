// Package telemetry is a minimal stand-in for sariadne/internal/telemetry
// used by the errdrop analyzer tests. Its receiver name deliberately
// avoids the substrings "store" and "journal" so a finding on it proves
// the package-path scoping rule fired, not the receiver-name rule.
package telemetry

// Recorder stands in for the exposition/profile side of the package:
// neither receiver-name substring matches.
type Recorder struct{}

// Flush persists buffered samples.
func (r *Recorder) Flush() error { return nil }

// CaptureHeapProfile writes a pprof snapshot; package-level, lone error
// result.
func CaptureHeapProfile(path string) error { return nil }
