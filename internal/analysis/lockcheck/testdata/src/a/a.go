package a

import (
	"sort"
	"sync"
)

// Counter exercises the plain-Mutex discipline.
type Counter struct {
	mu sync.Mutex
	n  int            // guarded by mu
	m  map[string]int // guarded by mu

	free int // not guarded: may be accessed lock-free
}

func (c *Counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *Counter) Bad() int {
	return c.n // want `access to c\.n without holding mu`
}

func (c *Counter) BadWrite() {
	c.m["k"] = 1 // want `access to c\.m without holding mu`
}

func (c *Counter) FreeOK() int {
	return c.free
}

// EarlyReturn unlocks on a terminating branch; the fall-through path
// still holds the lock and must not be flagged.
func (c *Counter) EarlyReturn() int {
	c.mu.Lock()
	if len(c.m) == 0 {
		c.mu.Unlock()
		return 0
	}
	v := c.n
	c.mu.Unlock()
	return v
}

func (c *Counter) BadAfterUnlock() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.n++ // want `access to c\.n without holding mu`
}

// bumpLocked is a caller-holds-the-lock helper: the Locked suffix
// exempts it.
func (c *Counter) bumpLocked() {
	c.n++
}

// GoroutineBad launches a goroutine: the launcher's lock does not
// transfer, so the access inside starts unheld.
func (c *Counter) GoroutineBad() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want `access to c\.n without holding mu`
	}()
}

// GoroutineGood relocks inside the goroutine.
func (c *Counter) GoroutineGood() {
	go func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.n++
	}()
}

// CallbackUnderLock runs a synchronous closure while the lock is held;
// the closure inherits the held state.
func (c *Counter) CallbackUnderLock(keys []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		return c.m[keys[i]] < c.m[keys[j]]
	})
}

// LoopLock locks per iteration; accesses inside the held window are fine
// and the state after the loop is unchanged.
func (c *Counter) LoopLock(keys []string) {
	for range keys {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
	c.n++ // want `access to c\.n without holding mu`
}

// Table exercises the RWMutex discipline.
type Table struct {
	mu sync.RWMutex
	v  int // guarded by mu
}

func (t *Table) ReadGood() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.v
}

func (t *Table) ReadBad() int {
	return t.v // want `access to t\.v without holding mu`
}

// Misannotated names a guard that is not a mutex field.
type Misannotated struct {
	x int // guarded by lock // want `not a sync\.Mutex or sync\.RWMutex field`
}
