package lockcheck_test

import (
	"testing"

	"sariadne/internal/analysis/analysistest"
	"sariadne/internal/analysis/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), lockcheck.Analyzer, "a")
}
